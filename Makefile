# Standard verify recipe; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build vet lint lint-intra lint-inter lint-conc lint-json lint-update test race bench-smoke sweep-bench obs-bench mem-smoke profile metrics-check serve-smoke verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint: lint-intra lint-inter lint-conc

# Package-scoped rules only: fast, no whole-program load. Stale baseline
# entries are fatal: the baseline may only shrink (prune with
# `make lint-update`), never silently rot.
lint-intra:
	$(GO) run ./cmd/mctlint -skip detflow,allochot,lockflow,racecand,atomicmix,chanmisuse,nodeprecated -baseline lint/baseline.json -stale-fatal ./...

# Interprocedural rules (call graph + summaries) plus the CI artifacts:
# the static call graph and the ranked hot-path allocation worklist.
lint-inter:
	$(GO) run ./cmd/mctlint -only detflow,allochot,lockflow,nodeprecated -baseline lint/baseline.json -stale-fatal \
		-graph-json results/callgraph.json -allochot-json results/allochot.json ./...

# Concurrency rules (MHP + guarded-by inference) plus the inferred
# guard-domain dump as a CI artifact.
lint-conc:
	$(GO) run ./cmd/mctlint -only racecand,atomicmix,chanmisuse -baseline lint/baseline.json -stale-fatal \
		-guards-json results/guards.json ./...

# Machine-readable findings, as archived by CI. Exit code is preserved.
lint-json:
	$(GO) run ./cmd/mctlint -json -baseline lint/baseline.json ./...

# Rewrite lint/baseline.json in one step, dropping entries no finding
# matches anymore. One full-registry run: pruning per-pass would wrongly
# drop the other pass's entries (each pass sees only its own findings).
lint-update:
	$(GO) run ./cmd/mctlint -baseline lint/baseline.json -prune-baseline ./... || true

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick end-to-end check that the mctbench binary still runs an experiment
# and that the warm/cold evaluation micro-benchmarks still compile and run:
# the parallel-determinism tests exercise the engine, this exercises the CLI
# and the bench harness. The batched-step-loop benchmark is the streaming
# pipeline's allocation gate: its companion test asserts exactly 0
# allocs/op at steady state.
bench-smoke:
	$(GO) run ./cmd/mctbench -experiment space -quick -quiet
	$(GO) test -run '^$$' -bench 'BenchmarkEvaluate(WarmClone|ColdRebuild)' -benchtime 5x .
	$(GO) test -run '^$$' -bench 'Benchmark(Tiered)?BatchedStepLoop' -benchtime 200000x ./internal/sim
	$(GO) test -run 'Test(Tiered)?BatchedStepLoopZeroAllocs' -count 1 ./internal/sim

# Memory-boundedness smoke: stream a 50M-access evaluation under a fixed
# GOMEMLIMIT and fail unless cumulative allocation stays far below what
# materializing the trace (~1.2 GB) would need.
mem-smoke:
	GOMEMLIMIT=192MiB $(GO) run ./cmd/mctbench -mem-smoke 50000000 -mem-smoke-alloc-max 67108864

# Capture CPU+heap pprof profiles of the quick sweeps into results/.
profile:
	$(GO) run ./cmd/mctbench -profile -quick -quiet

# Wall-clock comparison of cold-rebuild vs warm-clone sweeps on every
# benchmark; verifies the two are identical and writes
# results/BENCH_sweep.json.
sweep-bench:
	$(GO) run ./cmd/mctbench -sweep-bench -quick -quiet

# Observability overhead gate: the identical MCT run with and without a
# metrics registry attached (best of 3 per arm) must stay within the
# tolerated slowdown. Writes results/BENCH_obs.json, exits 1 above the gate.
obs-bench:
	$(GO) run ./cmd/mctbench -obs-bench

# Determinism check on the metrics dump itself: the same run at -workers 1
# and -workers 4 must produce byte-identical stable dumps — once on the
# stock llc>nvm pipeline and once with the DRAM tier interposed (the
# dram.* metric family must be just as worker-count invariant).
metrics-check:
	$(GO) run ./cmd/mct -benchmark lbm -insts 6000000 -workers 1 -metrics-out results/metrics-w1.json >/dev/null
	$(GO) run ./cmd/mct -benchmark lbm -insts 6000000 -workers 4 -metrics-out results/metrics-w4.json >/dev/null
	cmp results/metrics-w1.json results/metrics-w4.json
	$(GO) run ./cmd/mct -benchmark lbm -insts 6000000 -dram -workers 1 -metrics-out results/metrics-dram-w1.json >/dev/null
	$(GO) run ./cmd/mct -benchmark lbm -insts 6000000 -dram -workers 4 -metrics-out results/metrics-dram-w4.json >/dev/null
	cmp results/metrics-dram-w1.json results/metrics-dram-w4.json

# End-to-end daemon smoke: boot mctd, prove CLI/daemon artifact parity over
# HTTP, then kill -9 mid-job and prove the restarted daemon resumes from the
# checkpoint with a byte-identical artifact.
serve-smoke:
	./scripts/serve_smoke.sh

verify: build vet lint test race bench-smoke mem-smoke serve-smoke
