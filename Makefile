# Standard verify recipe; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build vet lint lint-json test race bench-smoke sweep-bench verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/mctlint -baseline lint/baseline.json ./...

# Machine-readable findings, as archived by CI. Exit code is preserved.
lint-json:
	$(GO) run ./cmd/mctlint -json -baseline lint/baseline.json ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick end-to-end check that the mctbench binary still runs an experiment
# and that the warm/cold evaluation micro-benchmarks still compile and run:
# the parallel-determinism tests exercise the engine, this exercises the CLI
# and the bench harness.
bench-smoke:
	$(GO) run ./cmd/mctbench -experiment space -quick -quiet
	$(GO) test -run '^$$' -bench 'BenchmarkEvaluate(WarmClone|ColdRebuild)' -benchtime 5x .

# Wall-clock comparison of cold-rebuild vs warm-clone sweeps on every
# benchmark; verifies the two are identical and writes
# results/BENCH_sweep.json.
sweep-bench:
	$(GO) run ./cmd/mctbench -sweep-bench -quick -quiet

verify: build vet lint test race bench-smoke
