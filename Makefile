# Standard verify recipe; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build vet lint test race verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/mctlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

verify: build vet lint test race
