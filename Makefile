# Standard verify recipe; CI (.github/workflows/ci.yml) runs the same steps.

GO ?= go

.PHONY: all build vet lint test race bench-smoke verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/mctlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick end-to-end check that the mctbench binary still runs an experiment:
# the parallel-determinism tests exercise the engine, this exercises the CLI.
bench-smoke:
	$(GO) run ./cmd/mctbench -experiment space -quick -quiet

verify: build vet lint test race bench-smoke
