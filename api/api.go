// Package api is the versioned wire surface of the MCT system: the JSON
// document types (DTOs) spoken by every transport — the mct CLI's -job mode,
// the mctd job-server daemon, and future multi-node sharding. It exists so
// the serialized artifacts are a contract rather than an accident of
// internal struct layout:
//
//   - Field names are stable snake_case JSON identities, decoupled from the
//     internal Go structs they mirror (internal refactors cannot silently
//     change the wire format).
//   - Every top-level document carries a "v" schema version. Decoders reject
//     payloads from a different schema version loudly instead of dropping
//     fields on the floor.
//   - Decoding is strict: unknown fields are an error, so typos and
//     version-skewed producers fail at the boundary, not deep inside a run.
//   - Encoding is byte-stable: struct field order and encoding/json's
//     shortest-round-trip float formatting make Encode(Decode(Encode(x)))
//     byte-identical, which is what lets CI `cmp` a daemon artifact against
//     the CLI's output for the same job.
//
// The package depends only on the standard library and the internal model
// packages it translates (config, sim, experiments); it never imports the
// server or the facade.
package api

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Version is the wire-schema version this package encodes and decodes.
// Bump it only with a new decoder: v1 decoders must fail loudly on v2
// payloads, never reinterpret them.
const Version = 1

// Encode renders a DTO as indented JSON with a trailing newline. Field
// order follows struct declaration order and map-free documents round-trip
// byte-identically, so encoded artifacts are stable `cmp` targets.
func Encode(v any) []byte {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		// Unreachable for the package's own DTOs: they are structs of
		// finite scalars, strings and slices.
		panic(fmt.Sprintf("api: encode: %v", err))
	}
	return append(b, '\n')
}

// versionProbe reads just the schema version of a document.
type versionProbe struct {
	V int `json:"v"`
}

// decodeStrict decodes data into v after checking the document's schema
// version: a payload carrying any version other than Version fails loudly
// (the version check runs first, so a future-versioned payload reports the
// skew rather than an unknown-field error). Unknown fields and trailing
// data are errors.
func decodeStrict(data []byte, v any, kind string) error {
	var probe versionProbe
	if err := json.Unmarshal(data, &probe); err != nil {
		return fmt.Errorf("api: %s: %w", kind, err)
	}
	if probe.V != Version {
		return fmt.Errorf("api: %s payload has schema version %d; this decoder reads version %d", kind, probe.V, Version)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("api: %s: %w", kind, err)
	}
	if dec.More() {
		return fmt.Errorf("api: %s: trailing data after document", kind)
	}
	return nil
}
