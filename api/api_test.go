package api

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"mct/internal/config"
	"mct/internal/energy"
	"mct/internal/experiments"
	"mct/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files from current encodings")

// Fixture values exercise every wire field with non-zero, non-round floats so
// the goldens catch both field renames and float-formatting drift.

func fixtureConfig() Config {
	return FromConfig(config.Config{
		BankAware:          true,
		BankAwareThreshold: 3,
		EagerWritebacks:    true,
		EagerThreshold:     32,
		WearQuota:          true,
		WearQuotaTarget:    8,
		FastLatency:        1.25,
		SlowLatency:        3.5,
		FastCancellation:   false,
		SlowCancellation:   true,
	})
}

func fixtureMetrics() Metrics {
	return FromMetrics(sim.Metrics{
		Instructions:  123456789,
		CPUCycles:     2.468e8,
		IPC:           0.5002262,
		Seconds:       0.0823,
		LifetimeYears: 11.73,
		EnergyJ:       0.00912,
		Energy: energy.Breakdown{
			CPUDynamic:  0.0041,
			CPUStatic:   0.0012,
			NVMRead:     0.00071,
			NVMWrite:    0.0023,
			NVMStatic:   0.00031,
			DRAMDynamic: 0.00027,
			DRAMStatic:  0.00013,
		},
		MemReads:          55001,
		MemWrites:         17003,
		EagerWrites:       401,
		CancelledWrites:   77,
		ForcedWrites:      12,
		SlowWrites:        9000,
		FastWrites:        8003,
		QueueFullStalls:   5,
		LLCHitRate:        0.91,
		RowHitRate:        0.4403,
		DRAMHits:          1200,
		DRAMMisses:        340,
		DRAMWriteHits:     88,
		DRAMEagerAbsorbed: 31,
		DRAMPromotions:    12,
		DRAMWritebacks:    7,
		DRAMHitRate:       0.779,
		WearByBankDelta:   []float64{1.5, 0.25, 2.125, 0},
		WritesByRatio:     map[float64]uint64{1: 8003, 2.5: 4000, 3.5: 5000},
	})
}

func fixtureReport() ExperimentReport {
	return FromReport(&experiments.Report{
		ID: "table4",
		Tables: []experiments.Table{{
			Title:  "Sampled-point accuracy",
			Header: []string{"samples", "error"},
			Rows:   [][]string{{"77", "2.1%"}, {"120", "1.4%"}},
		}},
		Notes: []string{"quick fidelity"},
	})
}

func fixtureJobSpec() JobSpec {
	cfg := fixtureConfig()
	return JobSpec{
		V:              Version,
		Kind:           KindEvaluate,
		Benchmark:      "stream",
		Config:         &cfg,
		WarmupAccesses: 5000,
		Insts:          2_000_000,
	}
}

func fixtureJobStatus() JobStatus {
	return JobStatus{
		V:             Version,
		ID:            "j000007",
		Kind:          KindSweep,
		Client:        "ci",
		State:         StateDone,
		Done:          308,
		Total:         308,
		Resumes:       1,
		ArtifactBytes: 123456,
	}
}

func fixtureSweepResult() SweepResult {
	return SweepResult{
		V:         Version,
		Benchmark: "stream",
		Accesses:  20000,
		Stride:    100,
		SpaceSize: 308,
		Indices:   []int{0, 100, 200, 300},
		Metrics:   []Metrics{fixtureMetrics(), fixtureMetrics(), fixtureMetrics(), fixtureMetrics()},
	}
}

func fixtureEvent() Event {
	return Event{
		V:      Version,
		Scope:  "job",
		Item:   "stream",
		Kind:   "progress",
		Done:   64,
		Total:  308,
		Values: map[string]float64{"ipc": 0.51, "queue_depth": 3},
	}
}

// goldenDoc ties one document type's fixture to its golden file and decoder.
// decode re-decodes the golden bytes and returns the re-encoded result, so the
// test can assert Encode∘Decode is the identity on canonical documents.
type goldenDoc struct {
	name   string
	value  any
	decode func(data []byte) (any, error)
}

func goldenDocs() []goldenDoc {
	return []goldenDoc{
		{"config", fixtureConfig(), func(d []byte) (any, error) { return DecodeConfig(d) }},
		{"metrics", fixtureMetrics(), func(d []byte) (any, error) { return DecodeMetrics(d) }},
		{"report", fixtureReport(), func(d []byte) (any, error) { return DecodeReport(d) }},
		{"jobspec", fixtureJobSpec(), func(d []byte) (any, error) { return DecodeJobSpec(d) }},
		{"jobstatus", fixtureJobStatus(), func(d []byte) (any, error) { return DecodeJobStatus(d) }},
		{"sweep", fixtureSweepResult(), func(d []byte) (any, error) { return DecodeSweepResult(d) }},
		{"event", fixtureEvent(), func(d []byte) (any, error) { return DecodeEvent(d) }},
	}
}

// TestGoldenRoundTrip pins the wire format: each document's encoding must
// match its checked-in golden byte for byte, and decoding the golden and
// re-encoding must reproduce it exactly. A diff here is a wire-format change
// and needs a schema-version bump, not a golden refresh.
func TestGoldenRoundTrip(t *testing.T) {
	for _, d := range goldenDocs() {
		t.Run(d.name, func(t *testing.T) {
			path := filepath.Join("testdata", d.name+".golden.json")
			got := Encode(d.value)
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("encoding drifted from golden %s:\n--- golden ---\n%s--- got ---\n%s", path, want, got)
			}
			decoded, err := d.decode(want)
			if err != nil {
				t.Fatalf("decode golden: %v", err)
			}
			if re := Encode(decoded); !bytes.Equal(re, want) {
				t.Fatalf("decode∘encode not identity for %s:\n--- golden ---\n%s--- re-encoded ---\n%s", d.name, want, re)
			}
		})
	}
}

// TestUnknownFieldRejected injects a field no schema version defines into
// each golden document and requires every decoder to reject it: typos and
// newer-producer payloads must fail at the boundary.
func TestUnknownFieldRejected(t *testing.T) {
	for _, d := range goldenDocs() {
		t.Run(d.name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", d.name+".golden.json"))
			if err != nil {
				t.Fatal(err)
			}
			// Splice the bogus field right after the opening brace.
			mut := regexp.MustCompile(`\{`).ReplaceAllString(string(data), `{"bogus_field_xyz": 1,`)
			if _, err := d.decode([]byte(mut)); err == nil {
				t.Fatalf("decoder accepted an unknown field")
			} else if !strings.Contains(err.Error(), "bogus_field_xyz") {
				t.Fatalf("rejection does not name the unknown field: %v", err)
			}
		})
	}
}

// TestVersionSkew rewrites each golden's schema version and requires the
// decoder to fail loudly about the version — not about unknown fields, and
// never by silently reinterpreting the payload.
func TestVersionSkew(t *testing.T) {
	skewed := fmt.Sprintf(`"v": %d`, Version+1)
	for _, d := range goldenDocs() {
		t.Run(d.name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", d.name+".golden.json"))
			if err != nil {
				t.Fatal(err)
			}
			mut := strings.Replace(string(data), fmt.Sprintf(`"v": %d`, Version), skewed, 1)
			if mut == string(data) {
				t.Fatalf("golden has no top-level version field to skew")
			}
			_, err = d.decode([]byte(mut))
			if err == nil {
				t.Fatalf("decoder accepted a version-%d payload", Version+1)
			}
			if !strings.Contains(err.Error(), "version") {
				t.Fatalf("skew error does not mention the version: %v", err)
			}
		})
	}
}

// TestTrailingDataRejected: concatenated documents are not one document.
func TestTrailingDataRejected(t *testing.T) {
	data := Encode(fixtureConfig())
	if _, err := DecodeConfig(append(append([]byte(nil), data...), data...)); err == nil {
		t.Fatal("decoder accepted trailing data")
	}
}

// TestConverterRoundTrip checks the internal-type bridges: converting a model
// value to wire form and back must reproduce it exactly (including the
// float-keyed WritesByRatio map and the configuration's validated fields).
func TestConverterRoundTrip(t *testing.T) {
	cfg := config.StaticBaseline()
	back, err := FromConfig(cfg).Config()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, cfg) {
		t.Fatalf("config round trip drifted:\n in: %+v\nout: %+v", cfg, back)
	}

	wm := fixtureMetrics()
	m, err := wm.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(FromMetrics(m), wm) {
		t.Fatalf("metrics round trip drifted")
	}

	rep := fixtureReport()
	r, err := rep.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(FromReport(r), rep) {
		t.Fatalf("report round trip drifted")
	}
}

// TestJobSpecValidate covers the per-kind required-field checks.
func TestJobSpecValidate(t *testing.T) {
	cfg := fixtureConfig()
	cases := []struct {
		name    string
		spec    JobSpec
		wantErr string
	}{
		{"evaluate ok", fixtureJobSpec(), ""},
		{"sweep ok", JobSpec{V: Version, Kind: KindSweep, Benchmark: "stream", Accesses: 1000, Stride: 7}, ""},
		{"experiment ok", JobSpec{V: Version, Kind: KindExperiment, Experiment: "table4", Quick: true}, ""},
		{"missing kind", JobSpec{V: Version}, "missing kind"},
		{"unknown kind", JobSpec{V: Version, Kind: "train"}, "unknown kind"},
		{"bad version", JobSpec{V: Version + 1, Kind: KindSweep, Benchmark: "b", Accesses: 1}, "schema version"},
		{"evaluate no benchmark", JobSpec{V: Version, Kind: KindEvaluate, Config: &cfg, Insts: 1}, "missing benchmark"},
		{"evaluate no config", JobSpec{V: Version, Kind: KindEvaluate, Benchmark: "b", Insts: 1}, "missing config"},
		{"evaluate no insts", JobSpec{V: Version, Kind: KindEvaluate, Benchmark: "b", Config: &cfg}, "missing insts"},
		{"sweep no accesses", JobSpec{V: Version, Kind: KindSweep, Benchmark: "b"}, "missing accesses"},
		{"sweep negative stride", JobSpec{V: Version, Kind: KindSweep, Benchmark: "b", Accesses: 1, Stride: -1}, "negative stride"},
		{"experiment no id", JobSpec{V: Version, Kind: KindExperiment}, "missing experiment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %v", tc.wantErr, err)
			}
		})
	}
}

// TestSweepResultPairing: a sweep artifact with mismatched indices/metrics
// lengths must not decode.
func TestSweepResultPairing(t *testing.T) {
	r := fixtureSweepResult()
	r.Indices = r.Indices[:len(r.Indices)-1]
	if _, err := DecodeSweepResult(Encode(r)); err == nil {
		t.Fatal("decoder accepted mismatched indices/metrics")
	}
}
