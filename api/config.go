package api

import (
	"fmt"

	"mct/internal/config"
)

// Config is the wire form of one Mellow-Writes configuration point
// (mct.Config). Field names follow the paper's Table 2/3 vocabulary and
// match config.VectorNames.
type Config struct {
	V int `json:"v"`

	BankAware          bool `json:"bank_aware"`
	BankAwareThreshold int  `json:"bank_aware_threshold"`

	EagerWritebacks bool `json:"eager_writebacks"`
	EagerThreshold  int  `json:"eager_threshold"`

	WearQuota       bool    `json:"wear_quota"`
	WearQuotaTarget float64 `json:"wear_quota_target"`

	FastLatency float64 `json:"fast_latency"`
	SlowLatency float64 `json:"slow_latency"`

	FastCancellation bool `json:"fast_cancellation"`
	SlowCancellation bool `json:"slow_cancellation"`
}

// FromConfig converts a configuration (mct.Config / config.Config) to its
// wire form.
func FromConfig(c config.Config) Config {
	return Config{
		V:                  Version,
		BankAware:          c.BankAware,
		BankAwareThreshold: c.BankAwareThreshold,
		EagerWritebacks:    c.EagerWritebacks,
		EagerThreshold:     c.EagerThreshold,
		WearQuota:          c.WearQuota,
		WearQuotaTarget:    c.WearQuotaTarget,
		FastLatency:        c.FastLatency,
		SlowLatency:        c.SlowLatency,
		FastCancellation:   c.FastCancellation,
		SlowCancellation:   c.SlowCancellation,
	}
}

// Config converts the wire form back to the simulator's configuration type
// and validates it against the configuration space's structural
// constraints.
func (c Config) Config() (config.Config, error) {
	if c.V != Version {
		return config.Config{}, fmt.Errorf("api: config has schema version %d; this decoder reads version %d", c.V, Version)
	}
	out := config.Config{
		BankAware:          c.BankAware,
		BankAwareThreshold: c.BankAwareThreshold,
		EagerWritebacks:    c.EagerWritebacks,
		EagerThreshold:     c.EagerThreshold,
		WearQuota:          c.WearQuota,
		WearQuotaTarget:    c.WearQuotaTarget,
		FastLatency:        c.FastLatency,
		SlowLatency:        c.SlowLatency,
		FastCancellation:   c.FastCancellation,
		SlowCancellation:   c.SlowCancellation,
	}
	if err := out.Validate(); err != nil {
		return config.Config{}, err
	}
	return out, nil
}

// DecodeConfig strictly decodes a Config document.
func DecodeConfig(data []byte) (Config, error) {
	var c Config
	if err := decodeStrict(data, &c, "config"); err != nil {
		return Config{}, err
	}
	return c, nil
}
