package api

import "mct/internal/obs"

// Event is the wire form of one progress/trace observation (obs.Event), as
// carried in the data field of the daemon's SSE stream. obs.Event has no
// JSON identity of its own — this type is what pins the field names.
type Event struct {
	V      int                `json:"v"`
	Scope  string             `json:"scope,omitempty"`
	Item   string             `json:"item,omitempty"`
	Kind   string             `json:"kind,omitempty"`
	Done   int                `json:"done,omitempty"`
	Total  int                `json:"total,omitempty"`
	Text   string             `json:"text,omitempty"`
	Values map[string]float64 `json:"values,omitempty"`
}

// FromEvent converts an observation to its wire form. encoding/json sorts
// map keys, so Values encodes deterministically.
func FromEvent(e obs.Event) Event {
	out := Event{
		V:     Version,
		Scope: e.Scope,
		Item:  e.Item,
		Kind:  e.Kind,
		Done:  e.Done,
		Total: e.Total,
		Text:  e.Text,
	}
	if len(e.Values) > 0 {
		out.Values = make(map[string]float64, len(e.Values))
		for k, v := range e.Values {
			out.Values[k] = v
		}
	}
	return out
}

// DecodeEvent strictly decodes an Event document (one SSE data payload).
func DecodeEvent(data []byte) (Event, error) {
	var e Event
	if err := decodeStrict(data, &e, "event"); err != nil {
		return Event{}, err
	}
	return e, nil
}
