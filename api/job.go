package api

import "fmt"

// Job kinds: what a submitted job asks the server to compute.
const (
	// KindEvaluate runs one configuration on one benchmark for a fixed
	// instruction budget and returns its Metrics. Long evaluations are
	// checkpointed between instruction chunks, so a killed server resumes
	// mid-run.
	KindEvaluate = "evaluate"
	// KindSweep evaluates a strided slice of the configuration space on one
	// prepared benchmark and returns a SweepResult. The warm machine and
	// completed chunks are persisted, so a resume recomputes only the tail.
	KindSweep = "sweep"
	// KindExperiment regenerates one paper table/figure and returns an
	// ExperimentReport. Resume granularity is the on-disk sweep cache.
	KindExperiment = "experiment"
)

// Job states, in lifecycle order.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// JobSpec is the wire form of a job submission: one kind plus the fields
// that kind reads (Validate rejects specs missing them). The same spec runs
// identically through the daemon queue and the mct CLI's -job mode — that
// equivalence is what CI's serve-smoke cmp checks.
type JobSpec struct {
	V    int    `json:"v"`
	Kind string `json:"kind"`

	// Benchmark names the trace generator (evaluate, sweep).
	Benchmark string `json:"benchmark,omitempty"`

	// Evaluate: the configuration under test, the warmup length in accesses
	// (0 = the simulator default), and the measured instruction budget.
	Config         *Config `json:"config,omitempty"`
	WarmupAccesses int     `json:"warmup_accesses,omitempty"`
	Insts          uint64  `json:"insts,omitempty"`

	// Sweep: accesses measured per configuration and the stride over the
	// enumerated configuration space (1 = every configuration).
	Accesses int `json:"accesses,omitempty"`
	Stride   int `json:"stride,omitempty"`

	// Experiment: the experiment ID (see mct.Experiments) and whether to run
	// the reduced-fidelity quick variant.
	Experiment string `json:"experiment,omitempty"`
	Quick      bool   `json:"quick,omitempty"`

	// Hybrid hierarchy: interpose the DRAM cache tier, with an optional
	// promotion threshold override (0 = tier default).
	DRAMCache            bool `json:"dram_cache,omitempty"`
	DRAMPromoteThreshold int  `json:"dram_promote_threshold,omitempty"`
}

// Validate checks version, kind, and the kind's required fields. It does not
// resolve names (benchmark, experiment) — those fail at execution with the
// registry's own error.
func (s JobSpec) Validate() error {
	if s.V != Version {
		return fmt.Errorf("api: job spec has schema version %d; this decoder reads version %d", s.V, Version)
	}
	switch s.Kind {
	case KindEvaluate:
		if s.Benchmark == "" {
			return fmt.Errorf("api: evaluate job: missing benchmark")
		}
		if s.Config == nil {
			return fmt.Errorf("api: evaluate job: missing config")
		}
		if _, err := s.Config.Config(); err != nil {
			return err
		}
		if s.Insts == 0 {
			return fmt.Errorf("api: evaluate job: missing insts")
		}
	case KindSweep:
		if s.Benchmark == "" {
			return fmt.Errorf("api: sweep job: missing benchmark")
		}
		if s.Accesses <= 0 {
			return fmt.Errorf("api: sweep job: missing accesses")
		}
		if s.Stride < 0 {
			return fmt.Errorf("api: sweep job: negative stride %d", s.Stride)
		}
	case KindExperiment:
		if s.Experiment == "" {
			return fmt.Errorf("api: experiment job: missing experiment ID")
		}
	case "":
		return fmt.Errorf("api: job spec: missing kind")
	default:
		return fmt.Errorf("api: job spec: unknown kind %q", s.Kind)
	}
	return nil
}

// DecodeJobSpec strictly decodes and validates a JobSpec document.
func DecodeJobSpec(data []byte) (JobSpec, error) {
	var s JobSpec
	if err := decodeStrict(data, &s, "job spec"); err != nil {
		return JobSpec{}, err
	}
	if err := s.Validate(); err != nil {
		return JobSpec{}, err
	}
	return s, nil
}

// JobStatus is the wire form of one job's observable state, as returned by
// GET /v1/jobs/{id} and carried in SSE status frames.
type JobStatus struct {
	V      int    `json:"v"`
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Client string `json:"client,omitempty"`
	State  string `json:"state"`

	// Done/Total report progress in the job kind's own unit — instructions
	// for evaluate, configurations for sweep, sweep points for experiment.
	Done  int `json:"done"`
	Total int `json:"total"`

	// Resumes counts how many times a server restart re-adopted this job.
	Resumes int `json:"resumes,omitempty"`

	// Error is set when State is "failed".
	Error string `json:"error,omitempty"`

	// ArtifactBytes is the artifact document's size once State is "done".
	ArtifactBytes int `json:"artifact_bytes,omitempty"`
}

// DecodeJobStatus strictly decodes a JobStatus document.
func DecodeJobStatus(data []byte) (JobStatus, error) {
	var st JobStatus
	if err := decodeStrict(data, &st, "job status"); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// JobList is the wire form of GET /v1/jobs: every job the server knows, in
// submission order.
type JobList struct {
	V    int         `json:"v"`
	Jobs []JobStatus `json:"jobs"`
}

// DecodeJobList strictly decodes a JobList document.
func DecodeJobList(data []byte) (JobList, error) {
	var l JobList
	if err := decodeStrict(data, &l, "job list"); err != nil {
		return JobList{}, err
	}
	return l, nil
}
