package api

import (
	"fmt"
	"sort"

	"mct/internal/energy"
	"mct/internal/sim"
)

// EnergyBreakdown is the wire form of energy.Breakdown: where the joules of
// a run or window went.
type EnergyBreakdown struct {
	CPUDynamic  float64 `json:"cpu_dynamic_j"`
	CPUStatic   float64 `json:"cpu_static_j"`
	NVMRead     float64 `json:"nvm_read_j"`
	NVMWrite    float64 `json:"nvm_write_j"`
	NVMStatic   float64 `json:"nvm_static_j"`
	DRAMDynamic float64 `json:"dram_dynamic_j"`
	DRAMStatic  float64 `json:"dram_static_j"`
}

// RatioCount is one (write-latency ratio, write count) pair. The wire form
// replaces sim.Metrics' float-keyed map with a ratio-sorted slice so the
// encoding is legal JSON and byte-stable.
type RatioCount struct {
	Ratio float64 `json:"ratio"`
	Count uint64  `json:"count"`
}

// Metrics is the wire form of a measurement (mct.Metrics / sim.Metrics):
// the three tradeoff objectives plus the supporting window detail.
type Metrics struct {
	V int `json:"v"`

	Instructions uint64  `json:"instructions"`
	CPUCycles    float64 `json:"cpu_cycles"`
	IPC          float64 `json:"ipc"`

	Seconds       float64 `json:"seconds"`
	LifetimeYears float64 `json:"lifetime_years"`

	EnergyJ float64         `json:"energy_j"`
	Energy  EnergyBreakdown `json:"energy"`

	MemReads  uint64 `json:"mem_reads"`
	MemWrites uint64 `json:"mem_writes"`

	EagerWrites     uint64 `json:"eager_writes"`
	CancelledWrites uint64 `json:"cancelled_writes"`
	ForcedWrites    uint64 `json:"forced_writes"`
	SlowWrites      uint64 `json:"slow_writes"`
	FastWrites      uint64 `json:"fast_writes"`
	QueueFullStalls uint64 `json:"queue_full_stalls"`

	LLCHitRate float64 `json:"llc_hit_rate"`
	RowHitRate float64 `json:"row_hit_rate"`

	DRAMHits          uint64  `json:"dram_hits"`
	DRAMMisses        uint64  `json:"dram_misses"`
	DRAMWriteHits     uint64  `json:"dram_write_hits"`
	DRAMEagerAbsorbed uint64  `json:"dram_eager_absorbed"`
	DRAMPromotions    uint64  `json:"dram_promotions"`
	DRAMWritebacks    uint64  `json:"dram_writebacks"`
	DRAMHitRate       float64 `json:"dram_hit_rate"`

	WearByBankDelta []float64    `json:"wear_by_bank_delta,omitempty"`
	WritesByRatio   []RatioCount `json:"writes_by_ratio,omitempty"`
}

// FromMetrics converts a measurement (mct.Metrics / sim.Metrics) to its
// wire form. The float-keyed WritesByRatio map becomes a ratio-sorted
// slice, so conversion is deterministic.
func FromMetrics(m sim.Metrics) Metrics {
	out := Metrics{
		V:            Version,
		Instructions: m.Instructions,
		CPUCycles:    m.CPUCycles,
		IPC:          m.IPC,

		Seconds:       m.Seconds,
		LifetimeYears: m.LifetimeYears,

		EnergyJ: m.EnergyJ,
		Energy: EnergyBreakdown{
			CPUDynamic:  m.Energy.CPUDynamic,
			CPUStatic:   m.Energy.CPUStatic,
			NVMRead:     m.Energy.NVMRead,
			NVMWrite:    m.Energy.NVMWrite,
			NVMStatic:   m.Energy.NVMStatic,
			DRAMDynamic: m.Energy.DRAMDynamic,
			DRAMStatic:  m.Energy.DRAMStatic,
		},

		MemReads:  m.MemReads,
		MemWrites: m.MemWrites,

		EagerWrites:     m.EagerWrites,
		CancelledWrites: m.CancelledWrites,
		ForcedWrites:    m.ForcedWrites,
		SlowWrites:      m.SlowWrites,
		FastWrites:      m.FastWrites,
		QueueFullStalls: m.QueueFullStalls,

		LLCHitRate: m.LLCHitRate,
		RowHitRate: m.RowHitRate,

		DRAMHits:          m.DRAMHits,
		DRAMMisses:        m.DRAMMisses,
		DRAMWriteHits:     m.DRAMWriteHits,
		DRAMEagerAbsorbed: m.DRAMEagerAbsorbed,
		DRAMPromotions:    m.DRAMPromotions,
		DRAMWritebacks:    m.DRAMWritebacks,
		DRAMHitRate:       m.DRAMHitRate,
	}
	if len(m.WearByBankDelta) > 0 {
		out.WearByBankDelta = append([]float64(nil), m.WearByBankDelta...)
	}
	if len(m.WritesByRatio) > 0 {
		ratios := make([]float64, 0, len(m.WritesByRatio))
		for r := range m.WritesByRatio {
			ratios = append(ratios, r)
		}
		sort.Float64s(ratios)
		for _, r := range ratios {
			out.WritesByRatio = append(out.WritesByRatio, RatioCount{Ratio: r, Count: m.WritesByRatio[r]})
		}
	}
	return out
}

// Metrics converts the wire form back to the simulator's measurement type.
func (m Metrics) Metrics() (sim.Metrics, error) {
	if m.V != Version {
		return sim.Metrics{}, fmt.Errorf("api: metrics has schema version %d; this decoder reads version %d", m.V, Version)
	}
	out := sim.Metrics{
		Instructions: m.Instructions,
		CPUCycles:    m.CPUCycles,
		IPC:          m.IPC,

		Seconds:       m.Seconds,
		LifetimeYears: m.LifetimeYears,

		EnergyJ: m.EnergyJ,
		Energy: energy.Breakdown{
			CPUDynamic:  m.Energy.CPUDynamic,
			CPUStatic:   m.Energy.CPUStatic,
			NVMRead:     m.Energy.NVMRead,
			NVMWrite:    m.Energy.NVMWrite,
			NVMStatic:   m.Energy.NVMStatic,
			DRAMDynamic: m.Energy.DRAMDynamic,
			DRAMStatic:  m.Energy.DRAMStatic,
		},

		MemReads:  m.MemReads,
		MemWrites: m.MemWrites,

		EagerWrites:     m.EagerWrites,
		CancelledWrites: m.CancelledWrites,
		ForcedWrites:    m.ForcedWrites,
		SlowWrites:      m.SlowWrites,
		FastWrites:      m.FastWrites,
		QueueFullStalls: m.QueueFullStalls,

		LLCHitRate: m.LLCHitRate,
		RowHitRate: m.RowHitRate,

		DRAMHits:          m.DRAMHits,
		DRAMMisses:        m.DRAMMisses,
		DRAMWriteHits:     m.DRAMWriteHits,
		DRAMEagerAbsorbed: m.DRAMEagerAbsorbed,
		DRAMPromotions:    m.DRAMPromotions,
		DRAMWritebacks:    m.DRAMWritebacks,
		DRAMHitRate:       m.DRAMHitRate,
	}
	if len(m.WearByBankDelta) > 0 {
		out.WearByBankDelta = append([]float64(nil), m.WearByBankDelta...)
	}
	if len(m.WritesByRatio) > 0 {
		out.WritesByRatio = make(map[float64]uint64, len(m.WritesByRatio))
		for i, rc := range m.WritesByRatio {
			if i > 0 && rc.Ratio <= m.WritesByRatio[i-1].Ratio {
				return sim.Metrics{}, fmt.Errorf("api: metrics writes_by_ratio not strictly ascending at %g", rc.Ratio)
			}
			out.WritesByRatio[rc.Ratio] = rc.Count
		}
	}
	return out, nil
}

// DecodeMetrics strictly decodes a Metrics document.
func DecodeMetrics(data []byte) (Metrics, error) {
	var m Metrics
	if err := decodeStrict(data, &m, "metrics"); err != nil {
		return Metrics{}, err
	}
	return m, nil
}
