package api

import (
	"fmt"

	"mct/internal/experiments"
)

// Table is the wire form of one printable experiment table.
type Table struct {
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// ExperimentReport is the wire form of one regenerated table/figure
// artifact (mct.ExperimentReport).
type ExperimentReport struct {
	V      int      `json:"v"`
	ID     string   `json:"id"`
	Tables []Table  `json:"tables"`
	Notes  []string `json:"notes,omitempty"`
}

// FromReport converts an experiment report (mct.ExperimentReport /
// experiments.Report) to its wire form.
func FromReport(r *experiments.Report) ExperimentReport {
	out := ExperimentReport{V: Version, ID: r.ID}
	for _, t := range r.Tables {
		wt := Table{Title: t.Title, Header: append([]string(nil), t.Header...)}
		for _, row := range t.Rows {
			wt.Rows = append(wt.Rows, append([]string(nil), row...))
		}
		out.Tables = append(out.Tables, wt)
	}
	if len(r.Notes) > 0 {
		out.Notes = append([]string(nil), r.Notes...)
	}
	return out
}

// Report converts the wire form back to the experiment report type.
func (r ExperimentReport) Report() (*experiments.Report, error) {
	if r.V != Version {
		return nil, fmt.Errorf("api: report has schema version %d; this decoder reads version %d", r.V, Version)
	}
	out := &experiments.Report{ID: r.ID}
	for _, t := range r.Tables {
		wt := experiments.Table{Title: t.Title, Header: append([]string(nil), t.Header...)}
		for _, row := range t.Rows {
			wt.Rows = append(wt.Rows, append([]string(nil), row...))
		}
		out.Tables = append(out.Tables, wt)
	}
	if len(r.Notes) > 0 {
		out.Notes = append([]string(nil), r.Notes...)
	}
	return out, nil
}

// DecodeReport strictly decodes an ExperimentReport document.
func DecodeReport(data []byte) (ExperimentReport, error) {
	var r ExperimentReport
	if err := decodeStrict(data, &r, "experiment report"); err != nil {
		return ExperimentReport{}, err
	}
	return r, nil
}
