package api

import "fmt"

// SweepResult is the artifact of a sweep job: the metrics of every strided
// configuration, in configuration-space enumeration order. Indices[i] is the
// space index that produced Metrics[i], so a reader can rebuild the
// (configuration, metrics) pairs from config.Enumerate without the artifact
// repeating every configuration.
type SweepResult struct {
	V         int    `json:"v"`
	Benchmark string `json:"benchmark"`
	Accesses  int    `json:"accesses"`
	Stride    int    `json:"stride"`

	// SpaceSize is the full enumeration size the indices stride over,
	// recorded so a decoder can detect a space-grid drift.
	SpaceSize int `json:"space_size"`

	Indices []int     `json:"indices"`
	Metrics []Metrics `json:"metrics"`
}

// Validate checks version and the indices/metrics pairing.
func (r SweepResult) Validate() error {
	if r.V != Version {
		return fmt.Errorf("api: sweep result has schema version %d; this decoder reads version %d", r.V, Version)
	}
	if len(r.Indices) != len(r.Metrics) {
		return fmt.Errorf("api: sweep result: %d indices but %d metrics", len(r.Indices), len(r.Metrics))
	}
	return nil
}

// DecodeSweepResult strictly decodes and validates a SweepResult document.
func DecodeSweepResult(data []byte) (SweepResult, error) {
	var r SweepResult
	if err := decodeStrict(data, &r, "sweep result"); err != nil {
		return SweepResult{}, err
	}
	if err := r.Validate(); err != nil {
		return SweepResult{}, err
	}
	return r, nil
}
