package mct_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates the experiment's artifact
// through the same driver as `mctbench -experiment <id>` and reports
// domain-specific metrics (geomean IPC gains, prediction accuracies, etc.)
// via b.ReportMetric, so `go test -bench=.` reproduces the whole evaluation
// at reduced fidelity. For full fidelity run `go run ./cmd/mctbench`.

import (
	"context"
	"testing"

	"mct"
	"mct/internal/core"
	"mct/internal/experiments"
	"mct/internal/ml"
	"mct/internal/phase"
	"mct/internal/sim"
	"mct/internal/stats"
	"mct/internal/trace"
)

// benchOptions is the reduced-fidelity configuration used by the bench
// harness: a strided configuration space and short traces keep every
// benchmark in the seconds range on one core.
func benchOptions() experiments.Options {
	o := experiments.DefaultOptions()
	o.Accesses = 10_000
	o.Stride = 29
	return o
}

const benchInsts = 6_000_000

// BenchmarkConfigSpace regenerates the Tables 2/3 space accounting.
func BenchmarkConfigSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.SpaceSummary(benchOptions())
		if len(rep.Tables) == 0 {
			b.Fatal("empty report")
		}
	}
	b.ReportMetric(float64(mct.NewSpace(mct.SpaceOptions{IncludeWearQuota: true}).Len()), "configs")
}

// BenchmarkTable4IdealByLifetime regenerates Table 4: ideal configurations
// of leslie3d across lifetime targets (no wear quota).
func BenchmarkTable4IdealByLifetime(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.IdealByLifetime(context.Background(), "leslie3d", []float64{4, 6, 8, 10}, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 4 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkFig1IdealVsStatic regenerates Figure 1 / Table 5: per-app
// default vs static vs brute-force ideal.
func BenchmarkFig1IdealVsStatic(b *testing.B) {
	opt := benchOptions()
	var gain float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.IdealByApp(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		var ratios []float64
		for _, r := range res {
			ratios = append(ratios, r.IdealM.IPC/r.Baseline.IPC)
		}
		gain = geo(ratios)
	}
	b.ReportMetric(gain, "ideal/static-IPC")
}

// BenchmarkTable6TopFeatures regenerates Table 6: top quadratic-lasso
// features per application.
func BenchmarkTable6TopFeatures(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"lbm", "leslie3d", "GemsFDTD", "stream"}
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.TopQuadraticFeatures(context.Background(), core.MetricIPC, 3, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 4 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkFig2ModelComparison regenerates Figure 2 / Table 7: predictor
// accuracy and convergence versus sample count, plus measured overheads.
func BenchmarkFig2ModelComparison(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"lbm", "stream", "milc"}
	var gbAcc float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.ModelComparison(context.Background(), []int{20, 77}, 1, opt)
		if err != nil {
			b.Fatal(err)
		}
		acc := res.Acc[ml.NameGBoost]
		gbAcc = (acc[0][1] + acc[1][1] + acc[2][1]) / 3
	}
	b.ReportMetric(gbAcc, "gboost-R2@77")
}

// BenchmarkFig3WearQuotaAblation regenerates Figure 3: prediction accuracy
// with wear quota excluded vs included in the learning space.
func BenchmarkFig3WearQuotaAblation(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"lbm"}
	var degr float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.WearQuotaAblation(context.Background(), 60, 1, opt)
		if err != nil {
			b.Fatal(err)
		}
		r := res[0]
		degr = (r.ExcludeWQ[0] - r.IncludeWQ[0] + r.ExcludeWQ[2] - r.IncludeWQ[2]) / 2
	}
	b.ReportMetric(degr, "R2-degradation")
}

// BenchmarkFig4FeatureSampling regenerates Figure 4: lasso feature
// selection and feature-based vs random sampling accuracy.
func BenchmarkFig4FeatureSampling(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"lbm", "stream"}
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.LassoCoefficients(context.Background(), opt); err != nil {
			b.Fatal(err)
		}
		res, _, err := experiments.FeatureVsRandomSampling(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 2 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkFig6PhaseDetection regenerates Figure 6: t-test phase detection
// on ocean.
func BenchmarkFig6PhaseDetection(b *testing.B) {
	opt := benchOptions()
	var detected float64
	for i := 0; i < b.N; i++ {
		po := mctPhaseOptions()
		res, _, err := experiments.PhaseDetection(context.Background(), "ocean", 25_000_000, po, opt)
		if err != nil {
			b.Fatal(err)
		}
		detected = float64(res.Detected)
	}
	b.ReportMetric(detected, "phases-detected")
}

// BenchmarkFig7MCTvsBaselines regenerates Figure 7 / Table 10: the headline
// result — MCT against default, static and ideal policies.
func BenchmarkFig7MCTvsBaselines(b *testing.B) {
	opt := benchOptions()
	var gain float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.MCTComparison(context.Background(), []string{ml.NameGBoost}, benchInsts, opt)
		if err != nil {
			b.Fatal(err)
		}
		var ratios []float64
		for _, r := range res {
			ratios = append(ratios, r.MCT[ml.NameGBoost].Testing.IPC/r.Static.IPC)
		}
		gain = geo(ratios)
	}
	b.ReportMetric(gain, "MCT/static-IPC")
}

// BenchmarkFig8LifetimeSensitivity regenerates Figure 8: MCT across
// lifetime targets.
func BenchmarkFig8LifetimeSensitivity(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.LifetimeSensitivity(context.Background(), []string{"lbm", "stream"}, []float64{4, 8, 10}, benchInsts, opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != 6 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkFig9SamplingOverhead regenerates Figure 9: sampling-period
// overhead and the Equation 4 extrapolation.
func BenchmarkFig9SamplingOverhead(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"lbm", "stream"}
	var sampling float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.SamplingOverhead(context.Background(), []float64{1, 10}, benchInsts, opt)
		if err != nil {
			b.Fatal(err)
		}
		var r []float64
		for _, x := range res {
			r = append(r, x.SamplingIPCRatio)
		}
		sampling = geo(r)
	}
	b.ReportMetric(sampling, "sampling/static-IPC")
}

// BenchmarkFig10MultiProgram regenerates Figure 10 / Table 11: 4-core
// multi-program MCT.
func BenchmarkFig10MultiProgram(b *testing.B) {
	opt := benchOptions()
	var gain float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.MultiProgram(context.Background(), []string{"mix1", "mix3"}, 4_000_000, opt)
		if err != nil {
			b.Fatal(err)
		}
		var ratios []float64
		for _, r := range res {
			ratios = append(ratios, r.MCT.IPC/r.Static.IPC)
		}
		gain = geo(ratios)
	}
	b.ReportMetric(gain, "MCT/static-IPC")
}

// BenchmarkWearQuotaLearning regenerates §6.2.3: wear quota excluded vs
// included in the learning space, end to end.
func BenchmarkWearQuotaLearning(b *testing.B) {
	opt := benchOptions()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.WearQuotaLearning(context.Background(), []string{"lbm"}, benchInsts, opt)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res[0].Include.IPC / res[0].Exclude.IPC
	}
	b.ReportMetric(ratio, "incl/excl-IPC")
}

// BenchmarkAblationNormalization quantifies the §4.4 normalization
// technique: quadratic-lasso accuracy on baseline-normalized vs raw-scale
// targets.
func BenchmarkAblationNormalization(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"lbm"}
	var gain float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.NormalizationAblation(context.Background(), 60, 1, opt)
		if err != nil {
			b.Fatal(err)
		}
		gain = res[0].Normalized[2] - res[0].Raw[2]
	}
	b.ReportMetric(gain, "energy-R2-gain")
}

// BenchmarkAblationSettle quantifies the settle window after sample
// configuration switches.
func BenchmarkAblationSettle(b *testing.B) {
	opt := benchOptions()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.SettleAblation(context.Background(), []string{"lbm"}, benchInsts, opt)
		if err != nil {
			b.Fatal(err)
		}
		ratio = res[0].WithSettle.IPC / res[0].WithoutSettle.IPC
	}
	b.ReportMetric(ratio, "settle/none-IPC")
}

// BenchmarkAblationPowerBudget characterizes the write-power budget
// substitution (slow-write cost vs concurrent-write budget).
func BenchmarkAblationPowerBudget(b *testing.B) {
	opt := benchOptions()
	var spread float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.PowerBudgetAblation(context.Background(), []string{"stream"}, []int{2, 16}, opt)
		if err != nil {
			b.Fatal(err)
		}
		spread = res[1].SlowOverFast - res[0].SlowOverFast
	}
	b.ReportMetric(spread, "budget-IPC-spread")
}

// BenchmarkWearLevelValidation validates the Table 9 wear-leveling
// assumption with a real Start-Gap leveler.
func BenchmarkWearLevelValidation(b *testing.B) {
	opt := benchOptions()
	opt.Benchmarks = []string{"zeusmp", "stream"}
	var eff float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.WearLevelValidation(context.Background(), 100, 1<<12, opt)
		if err != nil {
			b.Fatal(err)
		}
		var v []float64
		for _, r := range res {
			v = append(v, r.Leveled)
		}
		eff = geo(v)
	}
	b.ReportMetric(eff, "leveling-efficiency")
}

// BenchmarkExtensionRetention demonstrates §4.4's generality claim: the
// MCT pipeline optimizing the write-latency-vs-retention technique.
func BenchmarkExtensionRetention(b *testing.B) {
	opt := benchOptions()
	var ofIdeal float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.RetentionExtension(context.Background(), []string{"stream"}, 8, opt)
		if err != nil {
			b.Fatal(err)
		}
		ofIdeal = res[0].OfIdealThroughput
	}
	b.ReportMetric(ofIdeal, "of-ideal-throughput")
}

// --- Micro-benchmarks of the substrates (testing.B in the classic sense).

// BenchmarkSimulatorThroughput measures raw simulation speed in accesses/s.
func BenchmarkSimulatorThroughput(b *testing.B) {
	spec, err := trace.ByName("lbm")
	if err != nil {
		b.Fatal(err)
	}
	m, err := sim.NewMachine(spec, mct.StaticBaseline(), sim.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	m.Warmup(60_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunInstructions(10_000)
	}
}

// BenchmarkGBoostFit measures the online training cost at the paper's
// 77-sample operating point.
func BenchmarkGBoostFit(b *testing.B) {
	space := mct.NewSpace(mct.SpaceOptions{})
	X := make([][]float64, 77)
	y := make([]float64, 77)
	for i := range X {
		c := space.At(i * space.Len() / 77)
		X[i] = c.Vector()
		y[i] = c.FastLatency + c.SlowLatency
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gb := ml.NewGBoost(ml.DefaultGBoostOptions())
		if err := gb.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQuadraticLassoFit measures the quadratic-lasso training cost.
func BenchmarkQuadraticLassoFit(b *testing.B) {
	space := mct.NewSpace(mct.SpaceOptions{})
	X := make([][]float64, 77)
	y := make([]float64, 77)
	for i := range X {
		c := space.At(i * space.Len() / 77)
		X[i] = c.Vector()
		y[i] = c.FastLatency * c.SlowLatency
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := ml.NewQuadraticLasso(ml.DefaultLassoLambda)
		if err := l.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredictSpace measures predicting the full configuration space
// (the per-decision inference cost of MCT).
func BenchmarkPredictSpace(b *testing.B) {
	space := mct.NewSpace(mct.SpaceOptions{})
	X := make([][]float64, 77)
	y := make([]float64, 77)
	for i := range X {
		c := space.At(i * space.Len() / 77)
		X[i] = c.Vector()
		y[i] = c.FastLatency
	}
	gb := ml.NewGBoost(ml.DefaultGBoostOptions())
	if err := gb.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < space.Len(); j++ {
			gb.Predict(space.At(j).Vector())
		}
	}
}

// BenchmarkEvaluateWarmClone measures one configuration evaluation on the
// warm-start fast path: clone the shared warmed machine, reconfigure, replay
// only the measurement window.
func BenchmarkEvaluateWarmClone(b *testing.B) {
	p, err := sim.Prepare("lbm", 0, 10_000, sim.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	cfg := mct.StaticBaseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Evaluate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateColdRebuild measures the reference path the warm-clone
// sweep replaced: a fresh machine plus a full warmup replay per
// configuration. The ratio to BenchmarkEvaluateWarmClone is the per-config
// saving of the snapshot contract.
func BenchmarkEvaluateColdRebuild(b *testing.B) {
	p, err := sim.Prepare("lbm", 0, 10_000, sim.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	cfg := mct.StaticBaseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.EvaluateCold(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func geo(xs []float64) float64 { return stats.GeoMean(xs) }

func mctPhaseOptions() phase.Options {
	return phase.Options{IntervalInsts: 25_000, ShortWindows: 40, LongWindows: 400, Threshold: 15}
}
