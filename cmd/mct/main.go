// Command mct runs Memory Cocktail Therapy on one workload and reports the
// learning outcome: the chosen configuration, the sampling overhead, the
// testing-period metrics, and the comparison against the default system and
// the static baseline on the identical workload.
//
// Usage:
//
//	mct -benchmark lbm -lifetime 8 -insts 15000000
//	mct -benchmark ocean -phases            # with phase detection
//	mct -mix mix1                           # 4-core multi-program run
package main

import (
	"flag"
	"fmt"
	"os"

	"mct"
)

func main() {
	var (
		bench    = flag.String("benchmark", "lbm", "workload (see -list)")
		mix      = flag.String("mix", "", "multi-program mix (overrides -benchmark)")
		list     = flag.Bool("list", false, "list workloads and mixes")
		lifetime = flag.Float64("lifetime", 8, "minimum lifetime target in years")
		insts    = flag.Uint64("insts", 15_000_000, "instructions to execute")
		model    = flag.String("model", "gboost", "predictor: gboost or quadratic-lasso")
		phases   = flag.Bool("phases", false, "enable phase detection")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:", mct.Benchmarks())
		fmt.Println("mixes:     ", mct.Mixes())
		return
	}

	obj := mct.DefaultObjective(*lifetime)
	ro := mct.DefaultRuntimeOptions()
	ro.Model = *model
	ro.EnablePhaseDetection = *phases

	var (
		res mct.Result
		err error
	)
	if *mix != "" {
		mm, e := mct.NewMixMachine(*mix, mct.StaticBaseline())
		if e != nil {
			fail(e)
		}
		rt, e := mct.NewMultiRuntime(mm, obj, ro)
		if e != nil {
			fail(e)
		}
		res, err = rt.Run(*insts)
	} else {
		m, e := mct.NewMachine(*bench, mct.StaticBaseline())
		if e != nil {
			fail(e)
		}
		rt, e := mct.NewRuntimeOpts(m, obj, ro)
		if e != nil {
			fail(e)
		}
		res, err = rt.Run(*insts)
	}
	if err != nil {
		fail(err)
	}

	name := *bench
	if *mix != "" {
		name = *mix
	}
	fmt.Printf("MCT on %s (%d instructions, %gy lifetime target, model %s)\n\n", name, *insts, *lifetime, *model)
	for i, ph := range res.Phases {
		fmt.Printf("phase %d:\n", i+1)
		fmt.Printf("  baseline window: IPC=%.3f  lifetime=%.2fy  energy=%.4gJ\n",
			ph.Baseline.IPC, ph.Baseline.LifetimeYears, ph.Baseline.EnergyJ)
		fmt.Printf("  sampling period: IPC=%.3f (overhead of exercising %d samples)\n",
			ph.Sampling.IPC, len(ph.Decision.SampleIndices))
		fmt.Printf("  chosen config:   %v (constraints satisfiable per prediction: %v)\n",
			ph.Decision.Chosen, ph.Decision.Satisfied)
		fmt.Printf("  testing period:  IPC=%.3f  lifetime=%.2fy  energy=%.4gJ  reverted=%v\n",
			ph.Testing.IPC, ph.Testing.LifetimeYears, ph.Testing.EnergyJ, ph.Reverted)
	}
	fmt.Printf("\noverall: IPC=%.3f  lifetime=%.2fy  energy=%.4gJ  (phases=%d, health reverts=%d)\n",
		res.Overall.IPC, res.Overall.LifetimeYears, res.Overall.EnergyJ, len(res.Phases), res.HealthReverts)

	if *mix == "" {
		// Reference runs on the identical workload.
		for _, ref := range []struct {
			label string
			cfg   mct.Config
		}{{"default", mct.DefaultConfig()}, {"static ", mct.StaticBaseline()}} {
			m, e := mct.NewMachine(*bench, ref.cfg)
			if e != nil {
				fail(e)
			}
			m.Warmup(60_000)
			w := m.RunInstructions(*insts)
			fmt.Printf("%s: IPC=%.3f  lifetime=%.2fy  energy=%.4gJ\n",
				ref.label, w.IPC, w.LifetimeYears, w.EnergyJ)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mct:", err)
	os.Exit(1)
}
