// Command mct runs Memory Cocktail Therapy on one workload and reports the
// learning outcome: the chosen configuration, the sampling overhead, the
// testing-period metrics, and the comparison against the default system and
// the static baseline on the identical workload.
//
// Usage:
//
//	mct -benchmark lbm -lifetime 8 -insts 15000000
//	mct -benchmark ocean -phases            # with phase detection
//	mct -mix mix1                           # 4-core multi-program run
//	mct -benchmark lbm -checkpoint-save results/lbm.ckpt
//	mct -checkpoint-load results/lbm.ckpt   # resume the saved machine
//
// Checkpoints capture the machine's complete state (trace position, PRNG
// stream, cache contents, controller queues and wear): a run resumed from
// -checkpoint-load continues the exact simulation the saved run would have
// executed. Checkpoints are single-core only.
//
// The reference runs (default system, static baseline) execute concurrently
// with the MCT run on separate simulated machines; -workers bounds that
// parallelism. Ctrl-C cancels between simulation stages.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"mct"
	"mct/api"
	"mct/internal/engine"
	"mct/internal/server"
)

// refRun is one finished reference simulation.
type refRun struct {
	label string
	m     mct.Metrics
}

func main() {
	var (
		bench    = flag.String("benchmark", "lbm", "workload (see -list)")
		mix      = flag.String("mix", "", "multi-program mix (overrides -benchmark)")
		list     = flag.Bool("list", false, "list workloads and mixes")
		lifetime = flag.Float64("lifetime", 8, "minimum lifetime target in years")
		insts    = flag.Uint64("insts", 15_000_000, "instructions to execute")
		model    = flag.String("model", "gboost", "predictor: gboost or quadratic-lasso")
		phases   = flag.Bool("phases", false, "enable phase detection")
		workers  = flag.Int("workers", 0, "parallel reference-run workers (0 = GOMAXPROCS)")
		ckptSave = flag.String("checkpoint-save", "", "save the machine state to this file after the run")
		ckptLoad = flag.String("checkpoint-load", "", "resume from a machine checkpoint instead of a fresh machine")
		metrics  = flag.String("metrics-out", "", "write a sorted JSON metrics dump (cache/nvm/core/engine families) to this file after the run")
		dram     = flag.Bool("dram", false, "insert the DRAM cache tier between LLC and NVM (hybrid hierarchy)")
		dramTh   = flag.Int("dram-promote", 0, "DRAM hot-page promotion threshold (0 = tier default; requires -dram)")
		jobSpec  = flag.String("job", "", "execute a job spec JSON (api.JobSpec) synchronously and write its artifact")
		jobOut   = flag.String("job-out", "", "artifact output path for -job (default stdout)")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:", mct.Benchmarks())
		fmt.Println("mixes:     ", mct.Mixes())
		return
	}

	// SIGTERM too: daemon-style supervisors send it, and a graceful stop is
	// what keeps checkpoints and sweep caches consistent.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *jobSpec != "" {
		runJob(ctx, *jobSpec, *jobOut, *workers)
		return
	}

	obj := mct.DefaultObjective(*lifetime)
	ro := mct.DefaultRuntimeOptions()
	ro.Model = *model
	ro.EnablePhaseDetection = *phases

	if *mix != "" && (*ckptSave != "" || *ckptLoad != "") {
		fail(errors.New("checkpoints are single-core only; drop -mix or the -checkpoint flags"))
	}
	if *dramTh != 0 && !*dram {
		fail(errors.New("-dram-promote requires -dram"))
	}
	if *dram && *ckptLoad != "" {
		fail(errors.New("a checkpoint carries its own tier composition; drop -dram or -checkpoint-load"))
	}
	// tiers is the hierarchy composition every machine of this run is built
	// with (MCT run and reference runs alike, so the comparison is fair).
	tiers := mct.TierConfig{DRAMCache: *dram, DRAMPromoteThreshold: *dramTh}

	// One registry serves every layer of the run: the machine's cache/nvm
	// families, the runtime's core family, and the reference-run engine
	// fan-out. Only schedule-independent instruments land in the stable
	// dump, so the -metrics-out file is byte-identical at any -workers.
	var reg *mct.Registry
	if *metrics != "" {
		reg = mct.NewRegistry()
	}

	// Kick off the reference runs (single-core only) so they overlap the
	// MCT run below; results are collected after the MCT output prints. A
	// resumed machine starts mid-trace, so fresh reference runs would not be
	// comparable and are skipped.
	var refCh chan refResult
	if *mix == "" && *ckptLoad == "" {
		refCh = startReferenceRuns(ctx, *bench, *insts, *workers, tiers, reg)
	}

	var (
		res mct.Result
		err error
	)
	if *mix != "" {
		mm, e := mct.NewMixMachine(ctx, *mix, mct.StaticBaseline(), mct.WithTiers(tiers), mct.WithObserver(reg))
		if e != nil {
			fail(e)
		}
		rt, e := mct.NewMultiRuntime(ctx, mm, obj, mct.WithRuntimeOptions(ro), mct.WithObserver(reg))
		if e != nil {
			fail(e)
		}
		res, err = rt.Run(*insts)
		if err == nil {
			mm.SyncObserver()
		}
	} else {
		var (
			m *mct.Machine
			e error
		)
		if *ckptLoad != "" {
			m, e = mct.LoadCheckpoint(*ckptLoad)
			// The loaded machine is already warm; the runtime's own warmup
			// would advance it past the saved point.
			ro.WarmupAccesses = 0
			// A checkpoint written under -metrics-out carries its registry;
			// resuming continues the same counters so the final dump matches
			// an uninterrupted run.
			if e == nil && reg != nil && m.Observer() != nil {
				reg = m.Observer()
			}
		} else {
			m, e = mct.NewMachine(ctx, *bench, mct.StaticBaseline(), mct.WithTiers(tiers), mct.WithObserver(reg))
		}
		if e != nil {
			fail(e)
		}
		if *ckptLoad != "" {
			fmt.Printf("resumed from %s (%d instructions executed)\n", *ckptLoad, m.Instructions())
		}
		rt, e := mct.NewRuntime(ctx, m, obj, mct.WithRuntimeOptions(ro), mct.WithObserver(reg))
		if e != nil {
			fail(e)
		}
		res, err = rt.Run(*insts)
		if err == nil && *ckptSave != "" {
			if e := mct.SaveCheckpoint(*ckptSave, m); e != nil {
				fail(e)
			}
			fmt.Fprintf(os.Stderr, "checkpoint saved to %s\n", *ckptSave)
		}
		if err == nil {
			m.SyncObserver()
		}
	}
	if err != nil {
		fail(err)
	}

	name := *bench
	if *mix != "" {
		name = *mix
	}
	fmt.Printf("MCT on %s (%d instructions, %gy lifetime target, model %s)\n\n", name, *insts, *lifetime, *model)
	for i, ph := range res.Phases {
		fmt.Printf("phase %d:\n", i+1)
		fmt.Printf("  baseline window: IPC=%.3f  lifetime=%.2fy  energy=%.4gJ\n",
			ph.Baseline.IPC, ph.Baseline.LifetimeYears, ph.Baseline.EnergyJ)
		fmt.Printf("  sampling period: IPC=%.3f (overhead of exercising %d samples)\n",
			ph.Sampling.IPC, len(ph.Decision.SampleIndices))
		fmt.Printf("  chosen config:   %v (constraints satisfiable per prediction: %v)\n",
			ph.Decision.Chosen, ph.Decision.Satisfied)
		fmt.Printf("  testing period:  IPC=%.3f  lifetime=%.2fy  energy=%.4gJ  reverted=%v\n",
			ph.Testing.IPC, ph.Testing.LifetimeYears, ph.Testing.EnergyJ, ph.Reverted)
	}
	fmt.Printf("\noverall: IPC=%.3f  lifetime=%.2fy  energy=%.4gJ  (phases=%d, health reverts=%d)\n",
		res.Overall.IPC, res.Overall.LifetimeYears, res.Overall.EnergyJ, len(res.Phases), res.HealthReverts)

	if refCh != nil {
		ref := <-refCh
		if ref.err != nil {
			fail(ref.err)
		}
		for _, r := range ref.runs {
			fmt.Printf("%s: IPC=%.3f  lifetime=%.2fy  energy=%.4gJ\n",
				r.label, r.m.IPC, r.m.LifetimeYears, r.m.EnergyJ)
		}
	}

	// Written last so the engine counters of the reference fan-out are
	// complete.
	if reg != nil {
		if e := os.WriteFile(*metrics, reg.DumpJSON(), 0o644); e != nil {
			fail(e)
		}
		fmt.Fprintf(os.Stderr, "metrics dump written to %s\n", *metrics)
	}
}

// refResult carries the reference runs (in presentation order) or the first
// error.
type refResult struct {
	runs []refRun
	err  error
}

// startReferenceRuns launches the default-system and static-baseline runs
// on the identical workload in the background and returns a channel with
// the ordered results.
func startReferenceRuns(ctx context.Context, bench string, insts uint64, workers int, tiers mct.TierConfig, reg *mct.Registry) chan refResult {
	refs := []struct {
		label string
		cfg   mct.Config
	}{{"default", mct.DefaultConfig()}, {"static ", mct.StaticBaseline()}}

	ch := make(chan refResult, 1)
	go func() {
		// The reference machines carry no per-machine observer (their
		// gauges would race the main run's); the registry only collects
		// the engine fan-out's deterministic counters here.
		runs, err := engine.Map(ctx, len(refs), engine.Options{Workers: workers, Obs: reg},
			func(ctx context.Context, i int) (refRun, error) {
				m, err := mct.NewMachine(ctx, bench, refs[i].cfg, mct.WithTiers(tiers))
				if err != nil {
					return refRun{}, err
				}
				m.Warmup(60_000)
				return refRun{label: refs[i].label, m: m.RunInstructions(insts)}, nil
			})
		ch <- refResult{runs: runs, err: err}
	}()
	return ch
}

// runJob is the CLI twin of one daemon job: the same api.JobSpec document
// through the same executor, minus queueing and persistence. For one spec
// the artifact bytes match the daemon's — byte-identical at any -workers —
// which is what CI's serve-smoke cmp relies on.
func runJob(ctx context.Context, specPath, outPath string, workers int) {
	data, err := os.ReadFile(specPath)
	if err != nil {
		fail(err)
	}
	spec, err := api.DecodeJobSpec(data)
	if err != nil {
		fail(err)
	}
	artifact, err := server.Execute(ctx, spec, server.ExecOptions{Workers: workers})
	if err != nil {
		fail(err)
	}
	if outPath == "" {
		os.Stdout.Write(artifact)
		return
	}
	if err := os.WriteFile(outPath, artifact, 0o644); err != nil {
		fail(err)
	}
}

func fail(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "mct: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "mct:", err)
	os.Exit(1)
}
