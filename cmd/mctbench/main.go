// Command mctbench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints the same rows/series the paper
// reports.
//
// Usage:
//
//	mctbench -experiment fig7              # one experiment, full fidelity
//	mctbench -experiment all -quick        # everything, reduced fidelity
//	mctbench -experiment fig1 -workers 8   # bound sweep parallelism
//	mctbench -list                         # list experiment IDs
//
// Ctrl-C cancels gracefully: the current experiment aborts promptly, and
// sweeps that already completed stay valid in the MCT_SWEEP_CACHE disk
// cache (entries are written atomically, only after a sweep finishes), so
// a rerun picks up where the caches left off.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"mct"
)

func main() {
	var (
		expID   = flag.String("experiment", "all", "experiment ID (see -list) or 'all'")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		quick   = flag.Bool("quick", false, "reduced fidelity: strided space, short traces")
		stride  = flag.Int("stride", 0, "override configuration-space stride (0 = preset)")
		acc     = flag.Int("accesses", 0, "override trace length per evaluation (0 = preset)")
		insts   = flag.Uint64("insts", 0, "override MCT run length in instructions (0 = preset)")
		benches = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
		workers = flag.Int("workers", 0, "parallel evaluation workers (0 = GOMAXPROCS)")
		quiet   = flag.Bool("quiet", false, "suppress progress output")
		asJSON  = flag.Bool("json", false, "emit structured JSON instead of text tables")
	)
	flag.Parse()

	if *list {
		for _, id := range mct.Experiments() {
			fmt.Println(id)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	opt := mct.DefaultExperimentOptions()
	if *quick {
		opt = mct.QuickExperimentOptions()
	}
	if *stride > 0 {
		opt.Stride = *stride
	}
	if *acc > 0 {
		opt.Accesses = *acc
	}
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}
	opt.Workers = *workers
	if !*quiet {
		opt.Events = mct.TextProgress(os.Stderr)
	}
	rp := mct.DefaultExperimentRunParams()
	if *insts > 0 {
		rp.TotalInsts = *insts
	}
	if *quick {
		rp.TotalInsts = 8_000_000
		rp.SampleCounts = []int{10, 20, 40, 77, 120}
		rp.Trials = 2
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = mct.Experiments()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for _, id := range ids {
		start := time.Now()
		if *asJSON {
			rep, err := mct.RunExperimentReportContext(ctx, id, opt, rp)
			if err != nil {
				fail(id, err)
			}
			if err := enc.Encode(rep); err != nil {
				fail(id, err)
			}
		} else {
			if err := mct.RunExperimentContext(ctx, id, os.Stdout, opt, rp); err != nil {
				fail(id, err)
			}
			fmt.Println()
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}

// fail reports an experiment error and exits. Interruption (ctrl-C) is
// reported distinctly — completed sweeps remain cached on disk — and uses
// the conventional 130 exit status.
func fail(id string, err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "mctbench: %s interrupted; completed sweeps remain cached\n", id)
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "mctbench: %s: %v\n", id, err)
	os.Exit(1)
}
