// Command mctbench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints the same rows/series the paper
// reports.
//
// Usage:
//
//	mctbench -experiment fig7              # one experiment, full fidelity
//	mctbench -experiment all -quick        # everything, reduced fidelity
//	mctbench -list                         # list experiment IDs
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mct"
)

func main() {
	var (
		expID   = flag.String("experiment", "all", "experiment ID (see -list) or 'all'")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		quick   = flag.Bool("quick", false, "reduced fidelity: strided space, short traces")
		stride  = flag.Int("stride", 0, "override configuration-space stride (0 = preset)")
		acc     = flag.Int("accesses", 0, "override trace length per evaluation (0 = preset)")
		insts   = flag.Uint64("insts", 0, "override MCT run length in instructions (0 = preset)")
		benches = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
		quiet   = flag.Bool("quiet", false, "suppress progress output")
		asJSON  = flag.Bool("json", false, "emit structured JSON instead of text tables")
	)
	flag.Parse()

	if *list {
		for _, id := range mct.Experiments() {
			fmt.Println(id)
		}
		return
	}

	opt := mct.DefaultExperimentOptions()
	if *quick {
		opt = mct.QuickExperimentOptions()
	}
	if *stride > 0 {
		opt.Stride = *stride
	}
	if *acc > 0 {
		opt.Accesses = *acc
	}
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}
	if !*quiet {
		opt.Progress = os.Stderr
	}
	rp := mct.DefaultExperimentRunParams()
	if *insts > 0 {
		rp.TotalInsts = *insts
	}
	if *quick {
		rp.TotalInsts = 8_000_000
		rp.SampleCounts = []int{10, 20, 40, 77, 120}
		rp.Trials = 2
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = mct.Experiments()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for _, id := range ids {
		start := time.Now()
		if *asJSON {
			rep, err := mct.RunExperimentReport(id, opt, rp)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mctbench: %s: %v\n", id, err)
				os.Exit(1)
			}
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(os.Stderr, "mctbench: %s: %v\n", id, err)
				os.Exit(1)
			}
		} else {
			if err := mct.RunExperiment(id, os.Stdout, opt, rp); err != nil {
				fmt.Fprintf(os.Stderr, "mctbench: %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
}
