// Command mctbench regenerates the tables and figures of the paper's
// evaluation. Each experiment prints the same rows/series the paper
// reports.
//
// Usage:
//
//	mctbench -experiment fig7              # one experiment, full fidelity
//	mctbench -experiment all -quick        # everything, reduced fidelity
//	mctbench -experiment fig1 -workers 8   # bound sweep parallelism
//	mctbench -list                         # list experiment IDs
//	mctbench -sweep-bench -quick           # time cold vs warm-clone sweeps
//	mctbench -obs-bench                    # gate observability overhead
//	mctbench -profile -quick               # pprof a sweep into results/
//	mctbench -mem-smoke 50000000           # memory-boundedness smoke
//	mctbench -experiment fig1 -quick -metrics-out results/BENCH_metrics.json
//
// -sweep-bench measures the warm-start refactor: for each benchmark it runs
// the brute-force configuration sweep twice — cold (fresh machine plus full
// warmup replay per configuration) and warm (one warmed machine cloned per
// configuration) — verifies the two produce identical metrics, prints the
// wall-clock comparison, and writes results/BENCH_sweep.json. Timing is
// wall-clock and therefore machine-dependent; that is why this lives behind
// a flag instead of in the deterministic experiment registry.
//
// Ctrl-C cancels gracefully: the current experiment aborts promptly, and
// sweeps that already completed stay valid in the MCT_SWEEP_CACHE disk
// cache (entries are written atomically, only after a sweep finishes), so
// a rerun picks up where the caches left off.
//
// -obs-bench measures the cost of the observability layer itself: it runs
// the identical MCT runtime twice — once with a metrics registry attached,
// once bare — takes the best of three trials per arm, writes
// results/BENCH_obs.json, and fails (exit 1) when the instrumented run is
// more than -obs-overhead-max slower. The layer publishes cumulative-stats
// deltas only at window boundaries, so the expected overhead is ~0%.
//
// -profile runs the selected benchmarks' sweeps under the CPU profiler and
// snapshots the post-run heap, mutex-contention, and blocking profiles,
// writing results/PROFILE_{cpu,heap,mutex,block}.pprof for
// `go tool pprof`. This is the profiling
// hook behind the streaming-pipeline optimizations: layout and allocation
// changes in the cache/nvm/trace hot paths are justified against these
// profiles, not intuition.
//
// -mem-smoke N streams N accesses through one evaluation and fails unless
// cumulative allocation stays under -mem-smoke-alloc-max — the
// memory-boundedness proof of the streaming pipeline (materializing the
// trace would allocate 24 bytes per access, ~1.2 GB at N=50M). Run it under
// a fixed GOMEMLIMIT to also demonstrate the live heap fits a small budget.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"reflect"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"mct"
	"mct/internal/config"
	"mct/internal/experiments"
	"mct/internal/sim"
)

func main() {
	var (
		expID    = flag.String("experiment", "all", "experiment ID (see -list) or 'all'")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		quick    = flag.Bool("quick", false, "reduced fidelity: strided space, short traces")
		stride   = flag.Int("stride", 0, "override configuration-space stride (0 = preset)")
		acc      = flag.Int("accesses", 0, "override trace length per evaluation (0 = preset)")
		insts    = flag.Uint64("insts", 0, "override MCT run length in instructions (0 = preset)")
		benches  = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
		workers  = flag.Int("workers", 0, "parallel evaluation workers (0 = GOMAXPROCS)")
		quiet    = flag.Bool("quiet", false, "suppress progress output")
		asJSON   = flag.Bool("json", false, "emit structured JSON instead of text tables")
		swBench  = flag.Bool("sweep-bench", false, "time cold-rebuild vs warm-clone sweeps and write results/BENCH_sweep.json")
		obBench  = flag.Bool("obs-bench", false, "gate observability overhead and write results/BENCH_obs.json")
		obMax    = flag.Float64("obs-overhead-max", 0.03, "maximum tolerated -obs-bench slowdown (fraction)")
		profile  = flag.Bool("profile", false, "capture CPU, heap, mutex and block pprof profiles of the sweeps into results/")
		memSmoke = flag.Int("mem-smoke", 0, "stream N accesses through one evaluation and gate total allocation (memory-boundedness smoke)")
		memMax   = flag.Int64("mem-smoke-alloc-max", 256<<20, "maximum tolerated cumulative allocation in bytes for -mem-smoke")
		metrics  = flag.String("metrics-out", "", "write a sorted JSON metrics dump of the experiment runs to this file")
		dram     = flag.Bool("dram", false, "run experiments on the hybrid hierarchy: DRAM cache tier between LLC and NVM")
		dramTh   = flag.Int("dram-promote", 0, "DRAM hot-page promotion threshold (0 = tier default; requires -dram)")
	)
	flag.Parse()

	if *list {
		for _, id := range mct.Experiments() {
			fmt.Println(id)
		}
		return
	}

	// SIGTERM too: daemon-style supervisors send it, and a graceful stop is
	// what keeps the sweep disk cache consistent.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := mct.DefaultExperimentOptions()
	if *quick {
		opt = mct.QuickExperimentOptions()
	}
	if *stride > 0 {
		opt.Stride = *stride
	}
	if *acc > 0 {
		opt.Accesses = *acc
	}
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}
	if *dramTh != 0 && !*dram {
		fail("flags", errors.New("-dram-promote requires -dram"))
	}
	// The tier composition rides in the simulator options, so every
	// machine of the invocation — experiments, benches, smokes — is built
	// on the same hierarchy, and sweep-cache entries stay distinct per
	// composition.
	tiers := config.TierConfig{DRAMCache: *dram, DRAMPromoteThreshold: *dramTh}
	opt.Sim.Tiers = tiers
	opt.Workers = *workers
	if !*quiet {
		opt.Events = mct.TextProgress(os.Stderr)
	}
	if *swBench {
		if err := runSweepBench(ctx, opt); err != nil {
			fail("sweep-bench", err)
		}
		return
	}
	if *obBench {
		if err := runObsBench(ctx, *obMax); err != nil {
			fail("obs-bench", err)
		}
		return
	}
	if *profile {
		if err := runProfile(ctx, opt); err != nil {
			fail("profile", err)
		}
		return
	}
	if *memSmoke > 0 {
		if *memMax <= 0 {
			fail("mem-smoke", fmt.Errorf("-mem-smoke-alloc-max must be positive, got %d", *memMax))
		}
		if err := runMemSmoke(*memSmoke, uint64(*memMax), tiers); err != nil { //mctlint:ignore cyclecast guarded: *memMax is rejected above unless positive
			fail("mem-smoke", err)
		}
		return
	}

	rp := mct.DefaultExperimentRunParams()
	if *insts > 0 {
		rp.TotalInsts = *insts
	}
	if *quick {
		rp.TotalInsts = 8_000_000
		rp.SampleCounts = []int{10, 20, 40, 77, 120}
		rp.Trials = 2
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = mct.Experiments()
	}
	// One registry spans every experiment of the invocation; the dump it
	// yields is byte-identical at any -workers because only
	// schedule-independent instruments land in it.
	var reg *mct.Registry
	if *metrics != "" {
		reg = mct.NewRegistry()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for _, id := range ids {
		start := time.Now()
		ropts := []mct.Option{
			mct.WithExperimentOptions(opt), mct.WithRunParams(rp), mct.WithObserver(reg),
		}
		if !*asJSON {
			ropts = append(ropts, mct.WithOutput(os.Stdout))
		}
		rep, err := mct.RunExperiment(ctx, id, ropts...)
		if err != nil {
			fail(id, err)
		}
		if *asJSON {
			if err := enc.Encode(rep); err != nil {
				fail(id, err)
			}
		} else {
			fmt.Println()
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(start).Round(time.Millisecond))
		}
	}
	if reg != nil {
		if err := writeFileMkdir(*metrics, reg.DumpJSON()); err != nil {
			fail("metrics-out", err)
		}
		fmt.Fprintf(os.Stderr, "metrics dump written to %s\n", *metrics)
	}
}

// writeFileMkdir writes data to path, creating the parent directory.
func writeFileMkdir(path string, data []byte) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}

// sweepBenchRow is one benchmark's cold-vs-warm timing.
type sweepBenchRow struct {
	Benchmark   string  `json:"benchmark"`
	Configs     int     `json:"configs"`
	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	Speedup     float64 `json:"speedup"`
	Identical   bool    `json:"identical"`
}

// sweepBenchReport is the results/BENCH_sweep.json payload.
type sweepBenchReport struct {
	Accesses         int             `json:"accesses"`
	Stride           int             `json:"stride"`
	Workers          int             `json:"workers"`
	Rows             []sweepBenchRow `json:"rows"`
	TotalColdSeconds float64         `json:"total_cold_seconds"`
	TotalWarmSeconds float64         `json:"total_warm_seconds"`
	Speedup          float64         `json:"speedup"`
}

// runSweepBench times the cold-rebuild sweep against the warm-clone sweep on
// every selected benchmark and records the comparison in
// results/BENCH_sweep.json.
func runSweepBench(ctx context.Context, opt experiments.Options) error {
	// Timing must measure real computation: neither the in-process nor the
	// disk sweep cache may serve either side.
	if err := os.Unsetenv("MCT_SWEEP_CACHE"); err != nil {
		return err
	}
	rep := sweepBenchReport{Accesses: opt.Accesses, Stride: opt.Stride, Workers: opt.Workers}
	for _, bench := range opt.Benchmarks {
		cold := opt
		cold.ColdSweep = true
		experiments.ResetSweepCache()
		t0 := time.Now()
		sc, err := experiments.RunSweep(ctx, bench, false, cold)
		if err != nil {
			return err
		}
		coldSec := time.Since(t0).Seconds()

		experiments.ResetSweepCache()
		t1 := time.Now()
		sw, err := experiments.RunSweep(ctx, bench, false, opt)
		if err != nil {
			return err
		}
		warmSec := time.Since(t1).Seconds()

		row := sweepBenchRow{
			Benchmark:   bench,
			Configs:     len(sc.Indices) + 2, // evaluated configs + baseline + default
			ColdSeconds: coldSec,
			WarmSeconds: warmSec,
			Speedup:     coldSec / warmSec,
			Identical: reflect.DeepEqual(sc.Indices, sw.Indices) &&
				reflect.DeepEqual(sc.Metrics, sw.Metrics) &&
				reflect.DeepEqual(sc.Baseline, sw.Baseline) &&
				reflect.DeepEqual(sc.Default, sw.Default),
		}
		rep.Rows = append(rep.Rows, row)
		rep.TotalColdSeconds += coldSec
		rep.TotalWarmSeconds += warmSec
		fmt.Printf("%-10s %4d configs  cold %7.2fs  warm %7.2fs  speedup %.2fx  identical=%v\n",
			bench, row.Configs, coldSec, warmSec, row.Speedup, row.Identical)
		if !row.Identical {
			return fmt.Errorf("%s: warm-clone sweep differs from cold rebuild (snapshot contract violated)", bench)
		}
	}
	rep.Speedup = rep.TotalColdSeconds / rep.TotalWarmSeconds
	fmt.Printf("total: cold %.2fs  warm %.2fs  speedup %.2fx\n",
		rep.TotalColdSeconds, rep.TotalWarmSeconds, rep.Speedup)

	out := filepath.Join("results", "BENCH_sweep.json")
	if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runProfile runs the selected benchmarks' warm sweeps under the CPU
// profiler, then snapshots the heap, mutex-contention, and blocking
// profiles, writing all four into results/. Caches are disabled so the
// profile measures real simulation, and the sweeps are the same workload
// -sweep-bench times — profile what you optimize. The mutex and block
// profiles are the contention side of the story: the parallel engine's
// fan-out is supposed to synchronize only at batch boundaries, and these
// profiles are where a lock that crept onto the hot path shows up.
func runProfile(ctx context.Context, opt experiments.Options) error {
	if err := os.Unsetenv("MCT_SWEEP_CACHE"); err != nil {
		return err
	}
	experiments.ResetSweepCache()
	cpuPath := filepath.Join("results", "PROFILE_cpu.pprof")
	heapPath := filepath.Join("results", "PROFILE_heap.pprof")
	mutexPath := filepath.Join("results", "PROFILE_mutex.pprof")
	blockPath := filepath.Join("results", "PROFILE_block.pprof")
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	// Sample every mutex-contention event and every blocking event for the
	// duration of the profiled sweeps; both collectors are off by default.
	runtime.SetMutexProfileFraction(1)
	defer runtime.SetMutexProfileFraction(0)
	runtime.SetBlockProfileRate(1)
	defer runtime.SetBlockProfileRate(0)
	cf, err := os.Create(cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(cf); err != nil {
		cf.Close() //mctlint:ignore uncheckederr the profiler start error is the one worth reporting
		return err
	}
	t0 := time.Now()
	for _, bench := range opt.Benchmarks {
		if _, err := experiments.RunSweep(ctx, bench, false, opt); err != nil {
			pprof.StopCPUProfile()
			cf.Close() //mctlint:ignore uncheckederr the sweep error is the one worth reporting
			return err
		}
	}
	pprof.StopCPUProfile()
	if err := cf.Close(); err != nil {
		return err
	}
	// Heap profile after a GC: what the sweeps left live, without transient
	// garbage — the number the O(batch) memory claim is about.
	runtime.GC()
	hf, err := os.Create(heapPath)
	if err != nil {
		return err
	}
	if err := pprof.WriteHeapProfile(hf); err != nil {
		hf.Close() //mctlint:ignore uncheckederr the profile write error is the one worth reporting
		return err
	}
	if err := hf.Close(); err != nil {
		return err
	}
	for _, p := range []struct{ name, path string }{
		{"mutex", mutexPath},
		{"block", blockPath},
	} {
		if err := writeLookupProfile(p.name, p.path); err != nil {
			return err
		}
	}
	fmt.Printf("profiled %d benchmark sweeps in %v\nwrote %s, %s, %s and %s\n",
		len(opt.Benchmarks), time.Since(t0).Round(time.Millisecond),
		cpuPath, heapPath, mutexPath, blockPath)
	fmt.Printf("inspect with: go tool pprof %s\n", cpuPath)
	return nil
}

// writeLookupProfile dumps one of the runtime's named profiles (mutex,
// block, ...) to path in pprof proto form.
func writeLookupProfile(name, path string) error {
	p := pprof.Lookup(name)
	if p == nil {
		return fmt.Errorf("no %s profile registered", name)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := p.WriteTo(f, 0); err != nil {
		f.Close() //mctlint:ignore uncheckederr the profile write error is the one worth reporting
		return err
	}
	return f.Close()
}

// runMemSmoke streams n accesses through a single evaluation and fails
// unless cumulative heap allocation stays under maxAlloc bytes. A
// materialize-everything pipeline cannot pass at large n: the trace slice
// alone allocates n × 24 bytes (1.2 GB at n=50M), while the streaming
// pipeline allocates machine construction plus a fixed batch buffer,
// independent of n.
func runMemSmoke(n int, maxAlloc uint64, tiers config.TierConfig) error {
	simOpt := sim.DefaultOptions()
	simOpt.Tiers = tiers
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	met, err := sim.Evaluate("lbm", n, config.Default(), simOpt)
	if err != nil {
		return err
	}
	sec := time.Since(t0).Seconds()
	runtime.ReadMemStats(&after)
	grew := after.TotalAlloc - before.TotalAlloc
	naive := uint64(n) * 24 //mctlint:ignore cyclecast n is a validated positive flag
	hier := "llc>nvm"
	if tiers.DRAMCache {
		hier = "llc>dram>nvm"
	}
	fmt.Printf("mem-smoke: %d accesses in %.1fs (%.1f M acc/s), IPC %.3f, hierarchy %s\n",
		n, sec, float64(n)/sec/1e6, met.IPC, hier)
	fmt.Printf("mem-smoke: allocated %.1f MiB cumulative (limit %.1f MiB; materialized trace alone would be %.1f MiB), live heap %.1f MiB\n",
		float64(grew)/(1<<20), float64(maxAlloc)/(1<<20), float64(naive)/(1<<20), float64(after.HeapAlloc)/(1<<20))
	if lim := os.Getenv("GOMEMLIMIT"); lim != "" {
		fmt.Printf("mem-smoke: ran under GOMEMLIMIT=%s\n", lim)
	}
	if grew > maxAlloc {
		return fmt.Errorf("cumulative allocation %d bytes exceeds the %d-byte gate: the pipeline is not memory-bounded", grew, maxAlloc)
	}
	return nil
}

// obsBenchReport is the results/BENCH_obs.json payload.
type obsBenchReport struct {
	Benchmark          string  `json:"benchmark"`
	Insts              uint64  `json:"insts"`
	Trials             int     `json:"trials"`
	BareSeconds        float64 `json:"bare_seconds"`
	InstrumentedSecond float64 `json:"instrumented_seconds"`
	Overhead           float64 `json:"overhead"`
	MaxOverhead        float64 `json:"max_overhead"`
	Identical          bool    `json:"identical"`
	Pass               bool    `json:"pass"`
}

// runObsBench times the identical MCT runtime run with and without a
// metrics registry attached (best of three trials per arm), verifies the
// two runs produce identical results, records the comparison in
// results/BENCH_obs.json, and fails when the instrumented run exceeds the
// tolerated slowdown.
func runObsBench(ctx context.Context, maxOverhead float64) error {
	// Long enough that each arm runs for a substantial fraction of a
	// second: the gate compares wall clocks, and sub-100ms arms would put
	// scheduler noise on the same order as the tolerance.
	const (
		bench  = "lbm"
		insts  = 15_000_000
		trials = 3
	)
	obj := mct.DefaultObjective(8)

	run := func(instrumented bool) (mct.Result, float64, error) {
		best := 0.0
		var res mct.Result
		for t := 0; t < trials; t++ {
			var opts []mct.Option
			if instrumented {
				opts = append(opts, mct.WithObserver(mct.NewRegistry()))
			}
			t0 := time.Now()
			m, err := mct.NewMachine(ctx, bench, mct.StaticBaseline(), opts...)
			if err != nil {
				return res, 0, err
			}
			rt, err := mct.NewRuntime(ctx, m, obj, opts...)
			if err != nil {
				return res, 0, err
			}
			r, err := rt.Run(insts)
			if err != nil {
				return res, 0, err
			}
			sec := time.Since(t0).Seconds()
			if t == 0 || sec < best {
				best = sec
			}
			res = r
		}
		return res, best, nil
	}

	bareRes, bareSec, err := run(false)
	if err != nil {
		return err
	}
	instRes, instSec, err := run(true)
	if err != nil {
		return err
	}

	rep := obsBenchReport{
		Benchmark:          bench,
		Insts:              insts,
		Trials:             trials,
		BareSeconds:        bareSec,
		InstrumentedSecond: instSec,
		Overhead:           instSec/bareSec - 1,
		MaxOverhead:        maxOverhead,
		Identical:          reflect.DeepEqual(bareRes, instRes),
	}
	rep.Pass = rep.Identical && rep.Overhead <= maxOverhead
	fmt.Printf("obs-bench %s (%d insts, best of %d): bare %.3fs  instrumented %.3fs  overhead %+.2f%%  identical=%v\n",
		bench, uint64(insts), trials, bareSec, instSec, 100*rep.Overhead, rep.Identical)

	out := filepath.Join("results", "BENCH_obs.json")
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := writeFileMkdir(out, append(data, '\n')); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	if !rep.Identical {
		return fmt.Errorf("instrumented run diverged from bare run (observability must not perturb simulation)")
	}
	if !rep.Pass {
		return fmt.Errorf("observability overhead %.2f%% exceeds the %.2f%% gate", 100*rep.Overhead, 100*maxOverhead)
	}
	return nil
}

// fail reports an experiment error and exits. Interruption (ctrl-C) is
// reported distinctly — completed sweeps remain cached on disk — and uses
// the conventional 130 exit status.
func fail(id string, err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "mctbench: %s interrupted; completed sweeps remain cached\n", id)
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "mctbench: %s: %v\n", id, err)
	os.Exit(1)
}
