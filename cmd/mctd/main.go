// Command mctd is the MCT job-server daemon: it serves the versioned
// HTTP/JSON job API (package api) over a durable state directory, so
// sweeps, experiments, and single evaluations run as asynchronous,
// resumable jobs instead of one-shot CLI invocations.
//
//	mctd -state /var/lib/mctd                 # serve on 127.0.0.1:8080
//	mctd -addr 127.0.0.1:0 -state ./state     # pick a free port (written to state/mctd.addr)
//
// Endpoints:
//
//	POST   /v1/jobs                submit a job spec       → 201 JobStatus (429 when full)
//	GET    /v1/jobs                list jobs               → JobList
//	GET    /v1/jobs/{id}           poll one job            → JobStatus
//	DELETE /v1/jobs/{id}           cancel a job            → JobStatus
//	GET    /v1/jobs/{id}/artifact  fetch the result        → artifact document (409 until done)
//	GET    /v1/jobs/{id}/events    progress stream         → SSE of api.Event frames
//	GET    /metrics                obs registry            → JSON (expvar bridge)
//	GET    /healthz                liveness                → {"ok":true}
//
// Jobs persist under the state directory and survive the process: on
// restart, unfinished jobs re-enter the queue and resume from their last
// checkpoint. SIGINT/SIGTERM shut down gracefully — the current job
// checkpoint stays consistent and resumes on the next start. Artifacts are
// byte-identical to `mct -job` on the same spec, at any worker count,
// killed or not.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"mct/internal/server"
)

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mctd:", err)
	os.Exit(1)
}

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		state      = flag.String("state", "mctd-state", "durable state directory")
		workers    = flag.Int("workers", 0, "intra-job parallel workers (0 = GOMAXPROCS)")
		queueCap   = flag.Int("queue-cap", 0, "max queued jobs in total (0 = default)")
		clientCap  = flag.Int("per-client", 0, "max queued jobs per client (0 = default)")
		chunkInsts = flag.Uint64("checkpoint-insts", 0, "instructions per evaluate-job checkpoint chunk (0 = default)")
		sweepChunk = flag.Int("sweep-chunk", 0, "configurations per sweep-job checkpoint chunk (0 = default)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Point the experiments sweep cache into the state directory unless the
	// operator chose one: completed sweeps then survive restarts, which is
	// what gives experiment jobs their resume granularity.
	if os.Getenv("MCT_SWEEP_CACHE") == "" {
		os.Setenv("MCT_SWEEP_CACHE", filepath.Join(*state, "sweepcache"))
	}

	srv, err := server.New(server.Options{
		StateDir:     *state,
		Workers:      *workers,
		QueueCap:     *queueCap,
		PerClientCap: *clientCap,
		ChunkInsts:   *chunkInsts,
		SweepChunk:   *sweepChunk,
	})
	if err != nil {
		fail(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	// The resolved address (meaningful with port 0) goes to a well-known
	// file so scripts can find the daemon they just started.
	if err := os.WriteFile(filepath.Join(*state, "mctd.addr"), []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("mctd: listening on http://%s (state %s)\n", ln.Addr(), *state)

	hs := &http.Server{Handler: srv.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }() //mctlint:ignore goleak Serve returns on Shutdown below; the send is drained before exit

	// The runner owns the main goroutine; it returns once ctx is cancelled
	// and the in-flight job has reached a consistent checkpoint.
	runErr := srv.Run(ctx)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "mctd: shutdown:", err)
	}
	<-httpDone

	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		fail(runErr)
	}
	fmt.Println("mctd: stopped")
}
