// JSON export of the interprocedural artifacts: the static call graph and
// the hot-path allocation worklist. Both render deterministically (node
// order is the program's function index, edge order is source-discovery
// order, the worklist arrives pre-ranked) so CI can archive and diff them
// like any other build artifact.
package main

import (
	"encoding/json"
	"go/token"
	"path/filepath"

	"mct/internal/analysis"
)

// jsonGraphEdge is one call-graph edge: caller and callee by printable
// function name, the edge kind (call, dispatch, ref), and the call site.
type jsonGraphEdge struct {
	Caller string `json:"caller"`
	Callee string `json:"callee"`
	Kind   string `json:"kind"`
	File   string `json:"file"`
	Line   int    `json:"line"`
}

// jsonGraph is the exported call-graph schema.
type jsonGraph struct {
	Nodes []string        `json:"nodes"`
	Edges []jsonGraphEdge `json:"edges"`
}

// graphJSON renders the program's call graph with module-relative paths.
func graphJSON(moduleDir string, g *analysis.CallGraph) ([]byte, error) {
	out := jsonGraph{Nodes: make([]string, 0, len(g.Nodes))}
	for _, fn := range g.Nodes {
		out.Nodes = append(out.Nodes, fn.Name)
	}
	for _, fn := range g.Nodes {
		for _, e := range g.Out[fn] {
			pos := g.Prog.Fset.Position(e.Pos)
			out.Edges = append(out.Edges, jsonGraphEdge{
				Caller: e.Caller.Name,
				Callee: e.Callee.Name,
				Kind:   e.Kind.String(),
				File:   relPath(moduleDir, pos),
				Line:   pos.Line,
			})
		}
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// jsonAllocSite is one worklist entry of the hot-path allocation audit.
type jsonAllocSite struct {
	Func   string `json:"func"`
	Kind   string `json:"kind"`
	InLoop bool   `json:"inLoop"`
	Depth  int    `json:"depth"`
	File   string `json:"file"`
	Line   int    `json:"line"`
}

// allochotJSON renders the ranked allocation worklist (already sorted by
// AllochotWorklist: in-loop first, then shallower call depth).
func allochotJSON(moduleDir string, sites []analysis.AllocSite) ([]byte, error) {
	if len(sites) == 0 {
		return []byte("[]\n"), nil
	}
	out := make([]jsonAllocSite, 0, len(sites))
	for _, s := range sites {
		out = append(out, jsonAllocSite{
			Func:   s.Func,
			Kind:   s.Kind,
			InLoop: s.InLoop,
			Depth:  s.Depth,
			File:   relPath(moduleDir, s.Pos),
			Line:   s.Pos.Line,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// relPath renders a position's file module-relative with forward slashes,
// falling back to the raw name for files outside the module.
func relPath(moduleDir string, pos token.Position) string {
	if rel, err := filepath.Rel(moduleDir, pos.Filename); err == nil && !filepath.IsAbs(rel) {
		return filepath.ToSlash(rel)
	}
	return pos.Filename
}
