// Command mctlint runs the simulator-aware static analyzers of
// internal/analysis over the module and reports findings as
//
//	file:line: [rule] message
//
// exiting non-zero when anything error-severity is found. It is
// dependency-free (stdlib go/ast + go/types only).
//
// Usage:
//
//	mctlint ./...                        # whole module
//	mctlint ./internal/...               # one subtree
//	mctlint ./internal/sim               # one package
//	mctlint -rules                       # list rules (severity, scope) and exit
//	mctlint -only detflow,lockflow ./... # run a subset of the registry
//	mctlint -skip allochot ./...         # run everything but a subset
//	mctlint -json ./...                  # machine-readable findings (stable order)
//	mctlint -baseline lint/baseline.json ./...  # fail only on NEW findings
//	mctlint -baseline lint/baseline.json -stale-fatal ./...     # CI: stale entries fail
//	mctlint -baseline lint/baseline.json -prune-baseline ./...  # rewrite dropping stale
//	mctlint -graph-json graph.json ./...        # export the static call graph
//	mctlint -allochot-json allocs.json ./...    # export the hot-path allocation worklist
//	mctlint -guards-json guards.json ./...      # export inferred shared-variable guard domains
//
// Rules are either package-scoped (one pass per package) or
// program-scoped: the interprocedural rules (detflow, allochot, lockflow)
// and the concurrency rules (racecand, atomicmix, chanmisuse) run over a
// whole-program view with a static call graph, so a run that selects any
// of them loads the transitive module dependencies of the requested
// packages too — findings are still reported only inside the requested
// packages. When lockbalance and lockflow both report the same lock leak
// on the same line (a direct acquisition that is also a call-derived
// hold), only the lockbalance finding survives.
//
// Severity: each rule is "error" or "warn" (see -rules). Error findings
// fail the run with exit 1; warn findings (audit-class, e.g. allochot's
// allocation worklist) are printed and exported but do not affect the exit
// code.
//
// -json emits the findings as a JSON array sorted by (file, line, col,
// rule), with module-relative forward-slash paths, so the bytes are stable
// across runs and machines — CI archives them as a build artifact.
//
// -baseline loads a committed findings file in the same JSON format and
// subtracts it: only findings not in the baseline fail the run. Matching
// ignores line numbers (edits above a finding must not churn the
// baseline); each baseline entry absorbs at most one finding. Stale
// baseline entries are reported on stderr; -stale-fatal makes them fail
// the run (CI uses this so the baseline only ever shrinks), and
// -prune-baseline rewrites the file in place keeping only entries that
// still match a finding.
//
// -graph-json writes the program's static call graph (nodes plus
// call/dispatch/ref edges), -allochot-json the ranked hot-path allocation
// worklist, and -guards-json the inferred guard domain of every shared
// variable (atomic / lock / confined / mixed / escaped / unguarded, with
// the goroutine contexts its accesses run under) — all in deterministic
// JSON for CI artifacts. Each implies the whole-program load even when no
// program-scoped rule is selected.
//
// Suppress a finding with a trailing comment (or one on the line above):
//
//	//mctlint:ignore <rule> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mct/internal/analysis"
)

func main() {
	rules := flag.Bool("rules", false, "list rules (name, severity, scope, doc) and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a stable JSON array")
	baselinePath := flag.String("baseline", "", "accepted-findings JSON file; fail only on findings not in it")
	only := flag.String("only", "", "comma-separated rule names to run exclusively")
	skip := flag.String("skip", "", "comma-separated rule names to skip")
	staleFatal := flag.Bool("stale-fatal", false, "fail when baseline entries match no finding")
	pruneFlag := flag.Bool("prune-baseline", false, "rewrite the -baseline file keeping only entries that still match")
	graphPath := flag.String("graph-json", "", "write the static call graph as JSON to this path")
	allocPath := flag.String("allochot-json", "", "write the ranked hot-path allocation worklist as JSON to this path")
	guardsPath := flag.String("guards-json", "", "write the inferred shared-variable guard domains as JSON to this path")
	flag.Parse()

	selected, err := selectRules(analysis.Analyzers(), *only, *skip)
	if err != nil {
		fatal(err)
	}

	if *rules {
		for _, a := range selected {
			scope := "package"
			if a.Interprocedural() {
				scope = "program"
			}
			fmt.Printf("%-14s %-5s %-8s %s\n", a.Name, a.EffectiveSeverity(), scope, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	moduleDir, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(moduleDir)
	if err != nil {
		fatal(err)
	}

	var paths []string
	seen := map[string]bool{}
	for _, arg := range args {
		ps, err := resolvePattern(loader, moduleDir, arg)
		if err != nil {
			fatal(err)
		}
		for _, p := range ps {
			if !seen[p] {
				seen[p] = true
				paths = append(paths, p)
			}
		}
	}

	var all []analysis.Diagnostic
	var pkgs []*analysis.Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		pkgs = append(pkgs, pkg)
		pass := analysis.NewPass(loader, pkg)
		all = append(all, analysis.RunAnalyzers(pass, selected)...)
	}

	interprocedural := false
	for _, a := range selected {
		if a.Interprocedural() {
			interprocedural = true
			break
		}
	}
	if interprocedural || *graphPath != "" || *allocPath != "" || *guardsPath != "" {
		prog := analysis.NewProgram(loader, pkgs)
		if interprocedural {
			all = append(all, analysis.RunProgramAnalyzers(prog, selected)...)
		}
		if *graphPath != "" {
			if err := writeArtifact(*graphPath, func() ([]byte, error) {
				return graphJSON(moduleDir, prog.CallGraph())
			}); err != nil {
				fatal(err)
			}
		}
		if *allocPath != "" {
			if err := writeArtifact(*allocPath, func() ([]byte, error) {
				return allochotJSON(moduleDir, analysis.AllochotWorklist(prog))
			}); err != nil {
				fatal(err)
			}
		}
		if *guardsPath != "" {
			if err := writeArtifact(*guardsPath, func() ([]byte, error) {
				return renderAnyJSON(analysis.GuardReport(prog))
			}); err != nil {
				fatal(err)
			}
		}
	}

	findings := dedupeOverlap(toJSONDiagnostics(moduleDir, all))
	applySeverities(findings, severityByRule(analysis.Analyzers()))

	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		var stale int
		findings, stale = filterBaseline(findings, base)
		if stale > 0 {
			fmt.Fprintf(os.Stderr, "mctlint: %d baseline entr%s no longer found (stale)\n",
				stale, plural(stale, "y", "ies"))
			if *pruneFlag {
				retained := pruneBaseline(base, toJSONDiagnostics(moduleDir, all))
				out, err := renderJSON(retained)
				if err != nil {
					fatal(err)
				}
				if err := os.WriteFile(*baselinePath, out, 0o644); err != nil {
					fatal(fmt.Errorf("prune baseline: %w", err))
				}
				fmt.Fprintf(os.Stderr, "mctlint: pruned %s to %d entr%s\n",
					*baselinePath, len(retained), plural(len(retained), "y", "ies"))
			} else if *staleFatal {
				fmt.Fprintln(os.Stderr, "mctlint: stale baseline entries are fatal (-stale-fatal); run with -prune-baseline to tidy")
				os.Exit(1)
			}
		}
	}

	if *jsonOut {
		out, err := renderJSON(findings)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
	} else {
		for _, d := range findings {
			fmt.Println(d)
		}
	}
	errs, warns := countBySeverity(findings)
	if warns > 0 {
		fmt.Fprintf(os.Stderr, "mctlint: %d warning(s)\n", warns)
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "mctlint: %d finding(s)\n", errs)
		os.Exit(1)
	}
}

// selectRules filters the registry through -only and -skip (comma-separated
// rule names). Unknown names are an error: a typo must not silently run
// nothing.
func selectRules(all []*analysis.Analyzer, only, skip string) ([]*analysis.Analyzer, error) {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	parse := func(flagName, csv string) (map[string]bool, error) {
		if csv == "" {
			return nil, nil
		}
		set := map[string]bool{}
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if byName[n] == nil {
				return nil, fmt.Errorf("-%s: unknown rule %q (see -rules)", flagName, n)
			}
			set[n] = true
		}
		return set, nil
	}
	onlySet, err := parse("only", only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse("skip", skip)
	if err != nil {
		return nil, err
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("rule selection left nothing to run")
	}
	return out, nil
}

// severityByRule maps every registry rule (plus the reserved "mctlint"
// directive-error rule) to its effective severity.
func severityByRule(all []*analysis.Analyzer) map[string]string {
	out := map[string]string{"mctlint": "error"}
	for _, a := range all {
		out[a.Name] = a.EffectiveSeverity()
	}
	return out
}

func countBySeverity(ds []jsonDiagnostic) (errs, warns int) {
	for _, d := range ds {
		if d.Severity == "warn" {
			warns++
		} else {
			errs++
		}
	}
	return errs, warns
}

// writeArtifact renders and writes one JSON artifact, creating parent
// directories as needed.
func writeArtifact(path string, render func() ([]byte, error)) error {
	out, err := render()
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, out, 0o644)
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// resolvePattern maps a ./dir or ./dir/... argument to import paths.
func resolvePattern(loader *analysis.Loader, moduleDir, arg string) ([]string, error) {
	recursive := false
	if arg == "..." {
		arg, recursive = ".", true
	} else if strings.HasSuffix(arg, "/...") {
		arg, recursive = strings.TrimSuffix(arg, "/..."), true
	}
	abs, err := filepath.Abs(arg)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(moduleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("mctlint: %s is outside module %s", arg, moduleDir)
	}
	if recursive {
		return loader.PackageDirs(abs)
	}
	ip := loader.ModulePath()
	if rel != "." {
		ip += "/" + filepath.ToSlash(rel)
	}
	return []string{ip}, nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("mctlint: no go.mod found above working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mctlint: %v\n", err)
	os.Exit(2)
}
