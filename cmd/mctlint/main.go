// Command mctlint runs the simulator-aware static analyzers of
// internal/analysis over the module and reports findings as
//
//	file:line: [rule] message
//
// exiting non-zero when anything is found. It is dependency-free (stdlib
// go/ast + go/types only).
//
// Usage:
//
//	mctlint ./...                        # whole module
//	mctlint ./internal/...               # one subtree
//	mctlint ./internal/sim               # one package
//	mctlint -rules                       # list rules and exit
//	mctlint -json ./...                  # machine-readable findings (stable order)
//	mctlint -baseline lint/baseline.json ./...  # fail only on NEW findings
//
// -json emits the findings as a JSON array sorted by (file, line, col,
// rule), with module-relative forward-slash paths, so the bytes are stable
// across runs and machines — CI archives them as a build artifact.
//
// -baseline loads a committed findings file in the same JSON format and
// subtracts it: only findings not in the baseline fail the run. Matching
// ignores line numbers (edits above a finding must not churn the
// baseline); each baseline entry absorbs at most one finding. Stale
// baseline entries are reported on stderr but do not fail the run.
//
// Suppress a finding with a trailing comment (or one on the line above):
//
//	//mctlint:ignore <rule> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mct/internal/analysis"
)

func main() {
	rules := flag.Bool("rules", false, "list rules and exit")
	jsonOut := flag.Bool("json", false, "emit findings as a stable JSON array")
	baselinePath := flag.String("baseline", "", "accepted-findings JSON file; fail only on findings not in it")
	flag.Parse()

	if *rules {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}

	moduleDir, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(moduleDir)
	if err != nil {
		fatal(err)
	}

	var paths []string
	seen := map[string]bool{}
	for _, arg := range args {
		ps, err := resolvePattern(loader, moduleDir, arg)
		if err != nil {
			fatal(err)
		}
		for _, p := range ps {
			if !seen[p] {
				seen[p] = true
				paths = append(paths, p)
			}
		}
	}

	var all []analysis.Diagnostic
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		pass := analysis.NewPass(loader, pkg)
		all = append(all, analysis.RunAnalyzers(pass, analysis.Analyzers())...)
	}

	findings := toJSONDiagnostics(moduleDir, all)

	if *baselinePath != "" {
		base, err := loadBaseline(*baselinePath)
		if err != nil {
			fatal(err)
		}
		var stale int
		findings, stale = filterBaseline(findings, base)
		if stale > 0 {
			fmt.Fprintf(os.Stderr, "mctlint: %d baseline entr%s no longer found (stale; tidy the baseline)\n",
				stale, plural(stale, "y", "ies"))
		}
	}

	if *jsonOut {
		out, err := renderJSON(findings)
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(out)
	} else {
		for _, d := range findings {
			fmt.Println(d)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "mctlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// resolvePattern maps a ./dir or ./dir/... argument to import paths.
func resolvePattern(loader *analysis.Loader, moduleDir, arg string) ([]string, error) {
	recursive := false
	if arg == "..." {
		arg, recursive = ".", true
	} else if strings.HasSuffix(arg, "/...") {
		arg, recursive = strings.TrimSuffix(arg, "/..."), true
	}
	abs, err := filepath.Abs(arg)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(moduleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("mctlint: %s is outside module %s", arg, moduleDir)
	}
	if recursive {
		return loader.PackageDirs(abs)
	}
	ip := loader.ModulePath()
	if rel != "." {
		ip += "/" + filepath.ToSlash(rel)
	}
	return []string{ip}, nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("mctlint: no go.mod found above working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mctlint: %v\n", err)
	os.Exit(2)
}
