package main

import (
	"strings"
	"testing"

	"mct/internal/analysis"
)

func ruleNames(as []*analysis.Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

func TestSelectRulesDefault(t *testing.T) {
	all := analysis.Analyzers()
	got, err := selectRules(all, "", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all) {
		t.Errorf("no filters must select the whole registry: %d != %d", len(got), len(all))
	}
}

func TestSelectRulesOnly(t *testing.T) {
	got, err := selectRules(analysis.Analyzers(), "detflow, lockflow", "")
	if err != nil {
		t.Fatal(err)
	}
	if names := ruleNames(got); len(names) != 2 || names[0] != "detflow" || names[1] != "lockflow" {
		t.Errorf("-only detflow,lockflow selected %v", names)
	}
}

func TestSelectRulesSkip(t *testing.T) {
	all := analysis.Analyzers()
	got, err := selectRules(all, "", "allochot")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all)-1 {
		t.Errorf("-skip allochot selected %d rules, want %d", len(got), len(all)-1)
	}
	for _, a := range got {
		if a.Name == "allochot" {
			t.Error("allochot survived -skip allochot")
		}
	}
}

func TestSelectRulesOnlyAndSkipCompose(t *testing.T) {
	got, err := selectRules(analysis.Analyzers(), "detflow,allochot,lockflow", "allochot")
	if err != nil {
		t.Fatal(err)
	}
	if names := ruleNames(got); len(names) != 2 || names[0] != "detflow" || names[1] != "lockflow" {
		t.Errorf("composed filters selected %v", names)
	}
}

func TestSelectRulesErrors(t *testing.T) {
	if _, err := selectRules(analysis.Analyzers(), "detfow", ""); err == nil {
		t.Error("typo in -only must error, not silently run nothing")
	}
	if _, err := selectRules(analysis.Analyzers(), "", "nosuchrule"); err == nil {
		t.Error("unknown rule in -skip must error")
	}
	if _, err := selectRules(analysis.Analyzers(), "detflow", "detflow"); err == nil {
		t.Error("empty selection must error")
	}
}

func TestSeverityStamping(t *testing.T) {
	sev := severityByRule(analysis.Analyzers())
	if sev["allochot"] != "warn" {
		t.Errorf("allochot severity = %q, want warn", sev["allochot"])
	}
	for _, rule := range []string{"detflow", "lockflow", "norandglobal", "mctlint"} {
		if sev[rule] != "error" {
			t.Errorf("%s severity = %q, want error", rule, sev[rule])
		}
	}

	ds := []jsonDiagnostic{
		{File: "a.go", Rule: "allochot", Message: "m"},
		{File: "a.go", Rule: "detflow", Message: "m"},
	}
	applySeverities(ds, sev)
	if ds[0].Severity != "warn" || ds[1].Severity != "error" {
		t.Errorf("stamped severities = %q, %q", ds[0].Severity, ds[1].Severity)
	}
	errs, warns := countBySeverity(ds)
	if errs != 1 || warns != 1 {
		t.Errorf("countBySeverity = (%d, %d), want (1, 1)", errs, warns)
	}
}

func TestPruneBaseline(t *testing.T) {
	baseline := []jsonDiagnostic{
		{File: "a.go", Line: 1, Rule: "goleak", Message: "m1"},
		{File: "a.go", Line: 2, Rule: "goleak", Message: "m1"}, // duplicate key
		{File: "gone.go", Line: 3, Rule: "floateq", Message: "old"},
		{File: "b.go", Line: 4, Rule: "maprange", Message: "m2"},
	}
	findings := []jsonDiagnostic{
		// Only ONE goleak instance remains, at a shifted line.
		{File: "a.go", Line: 50, Rule: "goleak", Message: "m1"},
		{File: "b.go", Line: 9, Rule: "maprange", Message: "m2"},
	}
	got := pruneBaseline(baseline, findings)
	if len(got) != 2 {
		t.Fatalf("retained %d entries, want 2: %+v", len(got), got)
	}
	// The first goleak entry is retained (order preserved), the duplicate
	// and the gone.go entry are dropped.
	if got[0] != baseline[0] || got[1] != baseline[3] {
		t.Errorf("retained the wrong entries: %+v", got)
	}
}

func TestPruneBaselineAllStale(t *testing.T) {
	baseline := []jsonDiagnostic{{File: "gone.go", Rule: "floateq", Message: "old"}}
	if got := pruneBaseline(baseline, nil); len(got) != 0 {
		t.Errorf("clean tree must prune everything, kept %+v", got)
	}
}

// TestStaleFatalSemantics pins the contract the CI gate relies on: the
// filter reports stale counts, pruning retains exactly the live multiset,
// and a pruned baseline re-filters with zero stale entries.
func TestStaleFatalSemantics(t *testing.T) {
	baseline := []jsonDiagnostic{
		{File: "a.go", Rule: "goleak", Message: "m1"},
		{File: "gone.go", Rule: "floateq", Message: "old"},
	}
	findings := []jsonDiagnostic{{File: "a.go", Line: 7, Rule: "goleak", Message: "m1"}}

	fresh, stale := filterBaseline(findings, baseline)
	if stale != 1 || len(fresh) != 0 {
		t.Fatalf("filter = (%d fresh, %d stale), want (0, 1)", len(fresh), stale)
	}
	pruned := pruneBaseline(baseline, findings)
	if _, stale := filterBaseline(findings, pruned); stale != 0 {
		t.Errorf("pruned baseline still has %d stale entries", stale)
	}
}

// TestArtifactRendering exercises the JSON exports over an empty worklist
// and a synthetic one: valid JSON, newline-terminated, rank order kept.
func TestArtifactRendering(t *testing.T) {
	out, err := allochotJSON("/m", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "[]\n" {
		t.Errorf("empty worklist = %q, want []\\n", out)
	}

	sites := []analysis.AllocSite{
		{Func: "mct/internal/sim.step", Kind: "append", InLoop: true, Depth: 0},
		{Func: "mct/internal/nvm.helper", Kind: "make", InLoop: false, Depth: 2},
	}
	out, err = allochotJSON("/m", sites)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	if !strings.HasSuffix(s, "\n") {
		t.Error("worklist JSON not newline-terminated")
	}
	if i, j := strings.Index(s, "sim.step"), strings.Index(s, "nvm.helper"); i < 0 || j < 0 || i > j {
		t.Errorf("worklist order not preserved in render:\n%s", s)
	}
}
