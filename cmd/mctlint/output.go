// Machine-readable output and the baseline gate.
//
// The JSON form exists so CI can both archive the findings and diff them
// against a committed baseline: paths are module-relative with forward
// slashes and the array is sorted by (file, line, col, rule, message), so
// the rendered bytes are identical across runs, working directories and
// operating systems.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mct/internal/analysis"
)

// jsonDiagnostic is one finding in the machine-readable schema shared by
// -json output and -baseline input.
type jsonDiagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	// Severity is derived from the rule ("error" or "warn"). It is omitted
	// from baseline files written before the field existed and deliberately
	// excluded from baseline matching.
	Severity string `json:"severity,omitempty"`
}

// String renders the finding in the driver's classic text format.
func (d jsonDiagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Rule, d.Message)
}

// toJSONDiagnostics converts analyzer diagnostics to the stable schema:
// module-relative slash paths, sorted.
func toJSONDiagnostics(moduleDir string, diags []analysis.Diagnostic) []jsonDiagnostic {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(moduleDir, file); err == nil && !filepath.IsAbs(rel) {
			file = filepath.ToSlash(rel)
		}
		out = append(out, jsonDiagnostic{
			File:    file,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Rule:    d.Rule,
			Message: d.Message,
		})
	}
	sortJSONDiagnostics(out)
	return out
}

func sortJSONDiagnostics(ds []jsonDiagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// renderJSON marshals findings as an indented JSON array terminated by a
// newline. An empty set renders as "[]" so the artifact is always valid
// JSON.
func renderJSON(ds []jsonDiagnostic) ([]byte, error) {
	if len(ds) == 0 {
		return []byte("[]\n"), nil
	}
	b, err := json.MarshalIndent(ds, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// renderAnyJSON marshals an arbitrary artifact value (guard domains, call
// graph wrappers) as indented JSON terminated by a newline.
func renderAnyJSON(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// dedupeOverlap collapses the intra/inter lock-leak overlap: a direct
// acquisition that leaks is reported by lockbalance (package pass), and
// when the same statement also carries a call-derived hold the lockflow
// pass reports the same file:line again. One leak, one finding: when both
// rules fire on the same line about the same lock expression (both
// messages lead with "<expr> is ..."), the lockflow duplicate is dropped
// — lockbalance is the more local, more actionable report.
func dedupeOverlap(ds []jsonDiagnostic) []jsonDiagnostic {
	type lineKey struct {
		file string
		line int
		expr string
	}
	exprOf := func(msg string) string {
		if i := strings.Index(msg, " is "); i >= 0 {
			return msg[:i]
		}
		return msg
	}
	balance := map[lineKey]bool{}
	for _, d := range ds {
		if d.Rule == "lockbalance" {
			balance[lineKey{d.File, d.Line, exprOf(d.Message)}] = true
		}
	}
	out := ds[:0:0]
	for _, d := range ds {
		if d.Rule == "lockflow" && balance[lineKey{d.File, d.Line, exprOf(d.Message)}] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// loadBaseline reads an accepted-findings file written by -json.
func loadBaseline(path string) ([]jsonDiagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("mctlint: baseline: %w", err)
	}
	var ds []jsonDiagnostic
	if err := json.Unmarshal(data, &ds); err != nil {
		return nil, fmt.Errorf("mctlint: baseline %s: %w", path, err)
	}
	return ds, nil
}

// applySeverities stamps each finding with its rule's severity.
func applySeverities(ds []jsonDiagnostic, sev map[string]string) {
	for i := range ds {
		ds[i].Severity = sev[ds[i].Rule]
	}
}

// baselineKey identifies a finding for baseline matching. Line and column
// are deliberately excluded: edits above a finding shift it without
// changing what it is, and a baseline that churns on every edit gets
// deleted, not maintained.
type baselineKey struct {
	file, rule, message string
}

// filterBaseline subtracts the baseline from the findings as a multiset:
// each baseline entry absorbs at most one finding with the same file, rule
// and message. It returns the surviving (new) findings and the number of
// stale baseline entries that matched nothing.
func filterBaseline(findings, baseline []jsonDiagnostic) (fresh []jsonDiagnostic, stale int) {
	credit := map[baselineKey]int{}
	for _, b := range baseline {
		credit[baselineKey{b.File, b.Rule, b.Message}]++
	}
	fresh = findings[:0:0]
	for _, d := range findings {
		k := baselineKey{d.File, d.Rule, d.Message}
		if credit[k] > 0 {
			credit[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	for _, left := range credit {
		stale += left
	}
	return fresh, stale
}

// pruneBaseline returns the baseline entries that still match a current
// finding, multiset-aware: n findings with one key retain at most n
// baseline entries with that key. Entry order (and so the rewritten file's
// bytes) is preserved.
func pruneBaseline(baseline, findings []jsonDiagnostic) []jsonDiagnostic {
	have := map[baselineKey]int{}
	for _, d := range findings {
		have[baselineKey{d.File, d.Rule, d.Message}]++
	}
	retained := baseline[:0:0]
	for _, b := range baseline {
		k := baselineKey{b.File, b.Rule, b.Message}
		if have[k] > 0 {
			have[k]--
			retained = append(retained, b)
		}
	}
	return retained
}
