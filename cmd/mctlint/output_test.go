package main

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"mct/internal/analysis"
)

func sampleFindings() []jsonDiagnostic {
	// Deliberately out of order: rendering must sort.
	return []jsonDiagnostic{
		{File: "internal/sim/sim.go", Line: 40, Col: 2, Rule: "maprange", Message: "b"},
		{File: "internal/energy/energy.go", Line: 87, Col: 3, Rule: "maprange", Message: "a"},
		{File: "internal/sim/sim.go", Line: 12, Col: 9, Rule: "goleak", Message: "c"},
		{File: "internal/sim/sim.go", Line: 12, Col: 9, Rule: "deferloop", Message: "d"},
	}
}

func TestRenderJSONStableAndSorted(t *testing.T) {
	ds := sampleFindings()
	sortJSONDiagnostics(ds)
	first, err := renderJSON(ds)
	if err != nil {
		t.Fatal(err)
	}

	// Same findings arriving in a different order must render to the same
	// bytes once sorted — the byte-stability contract CI relies on.
	ds2 := sampleFindings()
	ds2[0], ds2[3] = ds2[3], ds2[0]
	sortJSONDiagnostics(ds2)
	second, err := renderJSON(ds2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("renders differ:\n%s\nvs\n%s", first, second)
	}

	if first[len(first)-1] != '\n' {
		t.Error("rendered JSON not newline-terminated")
	}
	// Sorted order: energy.go first, then sim.go line 12 (deferloop before
	// goleak), then line 40.
	if ds2[0].File != "internal/energy/energy.go" ||
		ds2[1].Rule != "deferloop" || ds2[2].Rule != "goleak" || ds2[3].Line != 40 {
		t.Errorf("unexpected sort order: %+v", ds2)
	}
}

func TestRenderJSONEmpty(t *testing.T) {
	out, err := renderJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "[]\n" {
		t.Errorf("empty render = %q, want %q", out, "[]\n")
	}
}

func TestToJSONDiagnosticsModuleRelative(t *testing.T) {
	moduleDir := string(filepath.Separator) + filepath.Join("home", "x", "repo")
	ds := toJSONDiagnostics(moduleDir, []analysis.Diagnostic{
		{
			Pos:     token.Position{Filename: filepath.Join(moduleDir, "internal", "sim", "sim.go"), Line: 3, Column: 1},
			Rule:    "floateq",
			Message: "m",
		},
	})
	if len(ds) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(ds))
	}
	if ds[0].File != "internal/sim/sim.go" {
		t.Errorf("path %q not module-relative slash form", ds[0].File)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	ds := sampleFindings()
	sortJSONDiagnostics(ds)
	out, err := renderJSON(ds)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds) {
		t.Fatalf("round trip lost findings: %d != %d", len(got), len(ds))
	}
	for i := range got {
		if got[i] != ds[i] {
			t.Errorf("entry %d: %+v != %+v", i, got[i], ds[i])
		}
	}
}

func TestLoadBaselineErrors(t *testing.T) {
	if _, err := loadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing baseline file did not error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(bad); err == nil {
		t.Error("malformed baseline did not error")
	}
}

func TestFilterBaseline(t *testing.T) {
	findings := []jsonDiagnostic{
		{File: "a.go", Line: 10, Rule: "goleak", Message: "m1"},
		{File: "a.go", Line: 20, Rule: "goleak", Message: "m1"}, // same key, second instance
		{File: "b.go", Line: 5, Rule: "maprange", Message: "m2"},
	}
	baseline := []jsonDiagnostic{
		// Line differs: matching is line-agnostic.
		{File: "a.go", Line: 99, Rule: "goleak", Message: "m1"},
		// Stale: nothing matches this anymore.
		{File: "gone.go", Line: 1, Rule: "floateq", Message: "old"},
	}
	fresh, stale := filterBaseline(findings, baseline)
	if stale != 1 {
		t.Errorf("stale = %d, want 1", stale)
	}
	if len(fresh) != 2 {
		t.Fatalf("fresh = %+v, want 2 entries (one goleak instance absorbed)", fresh)
	}
	// The single baseline credit absorbs one of the two identical goleak
	// findings; the other plus the maprange one survive.
	if fresh[0].Rule != "goleak" || fresh[1].Rule != "maprange" {
		t.Errorf("unexpected survivors: %+v", fresh)
	}
}

func TestFilterBaselineEmptyBaseline(t *testing.T) {
	findings := sampleFindings()
	fresh, stale := filterBaseline(findings, nil)
	if stale != 0 || len(fresh) != len(findings) {
		t.Errorf("empty baseline changed findings: fresh=%d stale=%d", len(fresh), stale)
	}
}
