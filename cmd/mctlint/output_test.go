package main

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mct/internal/analysis"
)

func sampleFindings() []jsonDiagnostic {
	// Deliberately out of order: rendering must sort.
	return []jsonDiagnostic{
		{File: "internal/sim/sim.go", Line: 40, Col: 2, Rule: "maprange", Message: "b"},
		{File: "internal/energy/energy.go", Line: 87, Col: 3, Rule: "maprange", Message: "a"},
		{File: "internal/sim/sim.go", Line: 12, Col: 9, Rule: "goleak", Message: "c"},
		{File: "internal/sim/sim.go", Line: 12, Col: 9, Rule: "deferloop", Message: "d"},
	}
}

func TestRenderJSONStableAndSorted(t *testing.T) {
	ds := sampleFindings()
	sortJSONDiagnostics(ds)
	first, err := renderJSON(ds)
	if err != nil {
		t.Fatal(err)
	}

	// Same findings arriving in a different order must render to the same
	// bytes once sorted — the byte-stability contract CI relies on.
	ds2 := sampleFindings()
	ds2[0], ds2[3] = ds2[3], ds2[0]
	sortJSONDiagnostics(ds2)
	second, err := renderJSON(ds2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("renders differ:\n%s\nvs\n%s", first, second)
	}

	if first[len(first)-1] != '\n' {
		t.Error("rendered JSON not newline-terminated")
	}
	// Sorted order: energy.go first, then sim.go line 12 (deferloop before
	// goleak), then line 40.
	if ds2[0].File != "internal/energy/energy.go" ||
		ds2[1].Rule != "deferloop" || ds2[2].Rule != "goleak" || ds2[3].Line != 40 {
		t.Errorf("unexpected sort order: %+v", ds2)
	}
}

func TestRenderJSONEmpty(t *testing.T) {
	out, err := renderJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "[]\n" {
		t.Errorf("empty render = %q, want %q", out, "[]\n")
	}
}

func TestToJSONDiagnosticsModuleRelative(t *testing.T) {
	moduleDir := string(filepath.Separator) + filepath.Join("home", "x", "repo")
	ds := toJSONDiagnostics(moduleDir, []analysis.Diagnostic{
		{
			Pos:     token.Position{Filename: filepath.Join(moduleDir, "internal", "sim", "sim.go"), Line: 3, Column: 1},
			Rule:    "floateq",
			Message: "m",
		},
	})
	if len(ds) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(ds))
	}
	if ds[0].File != "internal/sim/sim.go" {
		t.Errorf("path %q not module-relative slash form", ds[0].File)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	ds := sampleFindings()
	sortJSONDiagnostics(ds)
	out, err := renderJSON(ds)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds) {
		t.Fatalf("round trip lost findings: %d != %d", len(got), len(ds))
	}
	for i := range got {
		if got[i] != ds[i] {
			t.Errorf("entry %d: %+v != %+v", i, got[i], ds[i])
		}
	}
}

func TestLoadBaselineErrors(t *testing.T) {
	if _, err := loadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing baseline file did not error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(bad); err == nil {
		t.Error("malformed baseline did not error")
	}
}

func TestFilterBaseline(t *testing.T) {
	findings := []jsonDiagnostic{
		{File: "a.go", Line: 10, Rule: "goleak", Message: "m1"},
		{File: "a.go", Line: 20, Rule: "goleak", Message: "m1"}, // same key, second instance
		{File: "b.go", Line: 5, Rule: "maprange", Message: "m2"},
	}
	baseline := []jsonDiagnostic{
		// Line differs: matching is line-agnostic.
		{File: "a.go", Line: 99, Rule: "goleak", Message: "m1"},
		// Stale: nothing matches this anymore.
		{File: "gone.go", Line: 1, Rule: "floateq", Message: "old"},
	}
	fresh, stale := filterBaseline(findings, baseline)
	if stale != 1 {
		t.Errorf("stale = %d, want 1", stale)
	}
	if len(fresh) != 2 {
		t.Fatalf("fresh = %+v, want 2 entries (one goleak instance absorbed)", fresh)
	}
	// The single baseline credit absorbs one of the two identical goleak
	// findings; the other plus the maprange one survive.
	if fresh[0].Rule != "goleak" || fresh[1].Rule != "maprange" {
		t.Errorf("unexpected survivors: %+v", fresh)
	}
}

func TestFilterBaselineEmptyBaseline(t *testing.T) {
	findings := sampleFindings()
	fresh, stale := filterBaseline(findings, nil)
	if stale != 0 || len(fresh) != len(findings) {
		t.Errorf("empty baseline changed findings: fresh=%d stale=%d", len(fresh), stale)
	}
}

// TestDedupeOverlap pins the lockbalance/lockflow merge: when both rules
// report the same lock expression on the same line, only the lockbalance
// finding survives; everything else passes through untouched.
func TestDedupeOverlap(t *testing.T) {
	ds := []jsonDiagnostic{
		// The overlapping pair: a direct Lock that is also a call-derived
		// hold, both firing at s.lockIt(); s.mu.Lock() on one line.
		{File: "a.go", Line: 10, Rule: "lockbalance", Message: "s.mu is locked here but not released on every path to return/panic; unlock on all paths or defer the unlock"},
		{File: "a.go", Line: 10, Rule: "lockflow", Message: "s.mu is acquired here through call to lockIt but not released on every path to return/panic; unlock on all paths or defer the release"},
		// Same line, different lock expression: NOT a duplicate.
		{File: "a.go", Line: 10, Rule: "lockflow", Message: "s.other is acquired here through call to lockIt but not released on every path to return/panic; unlock on all paths or defer the release"},
		// Same expression, different line: NOT a duplicate.
		{File: "a.go", Line: 20, Rule: "lockflow", Message: "s.mu is acquired here through call to lockIt but not released on every path to return/panic; unlock on all paths or defer the release"},
		// A lockflow finding with no lockbalance twin anywhere.
		{File: "b.go", Line: 5, Rule: "lockflow", Message: "c.mu is acquired here through call to helper but not released on every path to return/panic; unlock on all paths or defer the release"},
		// Unrelated rules are never touched.
		{File: "a.go", Line: 10, Rule: "racecand", Message: "x is written in f and read in g without a common lock; the accesses may happen in parallel"},
	}
	got := dedupeOverlap(ds)
	if len(got) != 5 {
		t.Fatalf("dedupeOverlap kept %d findings, want 5: %+v", len(got), got)
	}
	for _, d := range got {
		if d.Rule == "lockflow" && d.File == "a.go" && d.Line == 10 && strings.HasPrefix(d.Message, "s.mu ") {
			t.Errorf("overlapping lockflow finding survived: %+v", d)
		}
	}
	// The survivors keep their order and the non-overlap cases are intact.
	rules := make([]string, len(got))
	for i, d := range got {
		rules[i] = d.Rule
	}
	want := []string{"lockbalance", "lockflow", "lockflow", "lockflow", "racecand"}
	for i := range want {
		if rules[i] != want[i] {
			t.Fatalf("survivor order = %v, want %v", rules, want)
		}
	}
}

// TestDedupeOverlapEndToEnd drives the merge from real analyzer output: a
// snippet whose single statement is reported by both passes must yield
// exactly one finding on that line after the merge.
func TestDedupeOverlapEndToEnd(t *testing.T) {
	dir := t.TempDir()
	src := `package overlap

import "sync"

type store struct {
	mu sync.Mutex
	n  int
}

func (s *store) lockIt() { s.mu.Lock() }

func leak(s *store) {
	s.lockIt()
	s.mu.Lock()
	s.n++
}
`
	if err := os.WriteFile(filepath.Join(dir, "overlap.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	moduleDir, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadFixture(dir, loader.ModulePath()+"/internal/testdata/overlap")
	if err != nil {
		t.Fatal(err)
	}
	selected := analysis.Analyzers()
	all := analysis.RunAnalyzers(analysis.NewPass(loader, pkg), selected)
	prog := analysis.NewProgram(loader, []*analysis.Package{pkg})
	all = append(all, analysis.RunProgramAnalyzers(prog, selected)...)

	merged := dedupeOverlap(toJSONDiagnostics(moduleDir, all))
	perLine := map[int][]string{}
	for _, d := range merged {
		perLine[d.Line] = append(perLine[d.Line], d.Rule+": "+d.Message)
	}
	// The s.lockIt() line: lockflow's call-derived hold for s.mu leaks, and
	// the helper itself is a lockflow finding at its own line — but the
	// direct s.mu.Lock() line must carry exactly one finding (lockbalance),
	// its lockflow twin merged away.
	for line, msgs := range perLine {
		seen := map[string]bool{}
		for _, m := range msgs {
			expr := m[strings.Index(m, ": ")+2:]
			if i := strings.Index(expr, " is "); i >= 0 {
				expr = expr[:i]
			}
			if seen[expr] {
				t.Errorf("line %d still carries two findings for %q: %v", line, expr, msgs)
			}
			seen[expr] = true
		}
	}
	var direct []string
	for _, d := range merged {
		if d.Line == 14 { // the s.mu.Lock() line
			direct = append(direct, d.Rule)
		}
	}
	if len(direct) != 1 || direct[0] != "lockbalance" {
		t.Errorf("direct-lock line findings = %v, want exactly [lockbalance]", direct)
	}
}
