// Command mcttrace inspects the synthetic workload generators: per-window
// access intensity, read/write mix, footprint and locality — useful for
// verifying the cross-application diversity the learning framework relies
// on.
//
// Usage:
//
//	mcttrace                      # summary of all benchmarks
//	mcttrace -benchmark ocean -windows 40   # windowed profile (phases)
package main

import (
	"flag"
	"fmt"
	"os"

	"mct/internal/rng"
	"mct/internal/trace"
)

func main() {
	var (
		bench    = flag.String("benchmark", "", "profile a single benchmark by window")
		accesses = flag.Int("accesses", 200_000, "accesses to generate")
		windows  = flag.Int("windows", 20, "windows for the per-window profile")
		seed     = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	if *bench == "" {
		fmt.Printf("%-12s %8s %8s %9s %10s\n", "benchmark", "MPKI", "wr-frac", "insts(M)", "lines")
		for _, name := range trace.Names() {
			spec, _ := trace.ByName(name)
			tr := trace.Collect(trace.NewGenerator(spec, rng.NewRand(*seed)), *accesses)
			summary(name, tr)
		}
		return
	}

	spec, err := trace.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcttrace:", err)
		os.Exit(1)
	}
	tr := trace.Collect(trace.NewGenerator(spec, rng.NewRand(*seed)), *accesses)
	per := len(tr) / *windows
	if per == 0 {
		per = len(tr)
	}
	fmt.Printf("%-8s %10s %8s %8s\n", "window", "insts", "MPKI", "wr-frac")
	for w := 0; w*per < len(tr); w++ {
		chunk := tr[w*per : min((w+1)*per, len(tr))]
		var insts uint64
		var writes int
		for _, a := range chunk {
			insts += uint64(a.InstGap)
			if a.Write {
				writes++
			}
		}
		mpki := float64(len(chunk)) / float64(insts) * 1000
		fmt.Printf("%-8d %10d %8.2f %8.3f\n", w, insts, mpki, float64(writes)/float64(len(chunk)))
	}
}

func summary(name string, tr []trace.Access) {
	var insts uint64
	var writes int
	lines := map[uint64]struct{}{}
	for _, a := range tr {
		insts += uint64(a.InstGap)
		if a.Write {
			writes++
		}
		lines[a.Addr/trace.LineBytes] = struct{}{}
	}
	fmt.Printf("%-12s %8.2f %8.3f %9.2f %10d\n",
		name,
		float64(len(tr))/float64(insts)*1000,
		float64(writes)/float64(len(tr)),
		float64(insts)/1e6,
		len(lines))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
