// Command mcttrace inspects the synthetic workload generators: per-window
// access intensity, read/write mix, footprint and locality — useful for
// verifying the cross-application diversity the learning framework relies
// on. Traces are streamed in batches, never materialized, so arbitrarily
// long profiles run in O(batch) memory (plus the footprint line set).
//
// Usage:
//
//	mcttrace                      # summary of all benchmarks
//	mcttrace -benchmark ocean -windows 40   # windowed profile (phases)
package main

import (
	"flag"
	"fmt"
	"os"

	"mct/internal/rng"
	"mct/internal/trace"
)

// batchSize is the streaming granularity (matches sim.StepBatchSize).
const batchSize = 4096

func main() {
	var (
		bench    = flag.String("benchmark", "", "profile a single benchmark by window")
		accesses = flag.Int("accesses", 200_000, "accesses to generate")
		windows  = flag.Int("windows", 20, "windows for the per-window profile")
		seed     = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	buf := make([]trace.Access, batchSize)

	if *bench == "" {
		fmt.Printf("%-12s %8s %8s %9s %10s %8s\n", "benchmark", "MPKI", "wr-frac", "insts(M)", "lines", "pages")
		for _, name := range trace.Names() {
			spec, _ := trace.ByName(name)
			summary(name, trace.NewGenerator(spec, rng.NewRand(*seed)), *accesses, buf)
		}
		return
	}

	spec, err := trace.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcttrace:", err)
		os.Exit(1)
	}
	g := trace.NewGenerator(spec, rng.NewRand(*seed))
	per := *accesses / *windows
	if per == 0 {
		per = *accesses
	}
	fmt.Printf("%-8s %10s %8s %8s\n", "window", "insts", "MPKI", "wr-frac")
	for w, done := 0, 0; done < *accesses; w++ {
		n := min(per, *accesses-done)
		var insts uint64
		writes := 0
		for rem := n; rem > 0; {
			k := min(len(buf), rem)
			g.Fill(buf[:k])
			for _, a := range buf[:k] {
				insts += uint64(a.InstGap)
				if a.Write {
					writes++
				}
			}
			rem -= k
		}
		done += n
		mpki := float64(n) / float64(insts) * 1000
		fmt.Printf("%-8d %10d %8.2f %8.3f\n", w, insts, mpki, float64(writes)/float64(n))
	}
}

// summary streams n accesses of src and prints aggregate intensity, write
// mix, instruction count, and the footprint at both migration
// granularities: unique 64 B lines (LLC) and unique 4 KiB pages — the
// granularity the DRAM tier's hot-page promotion policy tracks, so
// lines/pages hints how much a page-grained migration can coalesce.
func summary(name string, src trace.Source, n int, buf []trace.Access) {
	const pageBytes = 4096
	var insts uint64
	var writes int
	lines := map[uint64]struct{}{}
	pages := map[uint64]struct{}{}
	for done := 0; done < n; {
		k := min(len(buf), n-done)
		src.Fill(buf[:k])
		for _, a := range buf[:k] {
			insts += uint64(a.InstGap)
			if a.Write {
				writes++
			}
			lines[a.Addr/trace.LineBytes] = struct{}{}
			pages[a.Addr/pageBytes] = struct{}{}
		}
		done += k
	}
	fmt.Printf("%-12s %8.2f %8.3f %9.2f %10d %8d\n",
		name,
		float64(n)/float64(insts)*1000,
		float64(writes)/float64(n),
		float64(insts)/1e6,
		len(lines),
		len(pages))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
