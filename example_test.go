package mct_test

import (
	"context"
	"fmt"

	"mct"
)

// ExampleEnumerateConfigs shows the Mellow-Writes configuration space
// sizes: 2,030 legal configurations under the Tables 2–3 grids, doubled
// when every configuration is also paired with wear quota.
func ExampleEnumerateConfigs() {
	learning := mct.EnumerateConfigs(mct.SpaceOptions{})
	full := mct.EnumerateConfigs(mct.SpaceOptions{IncludeWearQuota: true, WearQuotaTarget: 8})
	fmt.Println(len(learning), len(full))
	// Output: 2030 4060
}

// ExampleDefaultObjective shows the paper's default user-defined objective
// (§3.2): minimize energy subject to a lifetime floor and an IPC floor
// relative to the achievable maximum.
func ExampleDefaultObjective() {
	obj := mct.DefaultObjective(8)
	fmt.Println(obj.MinLifetime(), obj.RelativeIPCFloor, obj.Optimize)
	// Output: 8 0.95 energy
}

// ExampleStaticBaseline shows the best static policy from prior work that
// MCT is compared against: bank-aware mellow writes (threshold 1), eager
// writebacks (threshold 32), wear quota at 8 years, 1×/3× write latencies
// and cancellation on slow writes.
func ExampleStaticBaseline() {
	fmt.Println(mct.StaticBaseline())
	// Output: bank=T/1 eager=T/32 wq=T/8.0y lat=1.0/3.0 canc=F/T
}

// ExampleEvaluate measures one configuration on one synthetic workload —
// the primitive underneath the brute-force "ideal policy" sweeps.
func ExampleEvaluate() {
	m, err := mct.Evaluate(context.Background(), "zeusmp", 50_000, mct.DefaultConfig())
	if err != nil {
		panic(err)
	}
	fmt.Println(m.IPC > 0, m.LifetimeYears > 0, m.EnergyJ > 0)
	// Output: true true true
}

// ExampleNewRuntime is the canonical MCT flow: attach the runtime to a
// simulated machine and let it learn the best configuration for the
// workload under the default objective.
func ExampleNewRuntime() {
	ctx := context.Background()
	machine, err := mct.NewMachine(ctx, "lbm", mct.StaticBaseline())
	if err != nil {
		panic(err)
	}
	rt, err := mct.NewRuntime(ctx, machine, mct.DefaultObjective(8))
	if err != nil {
		panic(err)
	}
	result, err := rt.Run(10_000_000)
	if err != nil {
		panic(err)
	}
	decision := result.Phases[len(result.Phases)-1].Decision
	// The deployed configuration always carries the wear-quota fixup that
	// guarantees the lifetime floor (§5.3).
	fmt.Println(decision.Chosen.WearQuota, decision.Chosen.WearQuotaTarget)
	// Output: true 8
}

// ExampleMixMembers lists a Table 11 multi-program mix.
func ExampleMixMembers() {
	members, err := mct.MixMembers("mix4")
	if err != nil {
		panic(err)
	}
	fmt.Println(members)
	// Output: [lbm leslie3d zeusmp GemsFDTD]
}
