// Lifetime-target sweep: the paper's §3.3.2 motivation — the ideal NVM
// configuration changes dramatically with the user-defined lifetime target.
// This example brute-forces the configuration space of one workload at
// several targets (a small-scale Table 4) and then shows MCT adapting its
// choice to each target without the brute force.
//
//	go run ./examples/lifetimesweep
package main

import (
	"context"
	"fmt"
	"log"

	"mct"
)

const benchmark = "lbm"

func main() {
	ctx := context.Background()
	targets := []float64{4, 6, 8, 10}

	// Brute-force reference: evaluate a strided subset of the space once,
	// then re-apply each objective to the measured data.
	space := mct.NewSpace(mct.SpaceOptions{})
	fmt.Printf("evaluating %d of %d configurations of %s...\n",
		space.Len()/8, space.Len(), benchmark)

	type measured struct {
		cfg mct.Config
		m   mct.Metrics
	}
	var cfgs []mct.Config
	for i := 0; i < space.Len(); i += 8 {
		cfgs = append(cfgs, space.At(i))
	}
	metrics, err := mct.EvaluateMany(ctx, benchmark, 40_000, cfgs)
	if err != nil {
		log.Fatal(err)
	}
	sweep := make([]measured, len(cfgs))
	for i := range cfgs {
		sweep[i] = measured{cfgs[i], metrics[i]}
	}

	fmt.Printf("\n%-8s | %-60s | %8s %8s\n", "target", "ideal configuration (brute force)", "IPC", "life(y)")
	for _, t := range targets {
		best := -1
		var bestIPC float64
		// Pass 1: best IPC among lifetime-qualified configs.
		for i, s := range sweep {
			if s.m.LifetimeYears >= t && s.m.IPC > bestIPC {
				bestIPC = s.m.IPC
				best = i
			}
		}
		// Pass 2: minimum energy within 95% of that IPC.
		bestEnergy := -1
		for i, s := range sweep {
			if s.m.LifetimeYears >= t && s.m.IPC >= 0.95*bestIPC {
				if bestEnergy < 0 || s.m.EnergyJ < sweep[bestEnergy].m.EnergyJ {
					bestEnergy = i
				}
			}
		}
		if bestEnergy < 0 {
			fmt.Printf("%6.1fy | %-60s |\n", t, "(unsatisfiable)")
			continue
		}
		s := sweep[bestEnergy]
		fmt.Printf("%6.1fy | %-60v | %8.3f %8.2f\n", t, s.cfg, s.m.IPC, s.m.LifetimeYears)
		_ = best
	}

	// MCT: no brute force — a sampling period per target.
	fmt.Printf("\n%-8s | %-60s | %8s %8s\n", "target", "MCT-chosen configuration", "IPC", "life(y)")
	for _, t := range targets {
		machine, err := mct.NewMachine(ctx, benchmark, mct.StaticBaseline())
		if err != nil {
			log.Fatal(err)
		}
		rt, err := mct.NewRuntime(ctx, machine, mct.DefaultObjective(t))
		if err != nil {
			log.Fatal(err)
		}
		res, err := rt.Run(12_000_000)
		if err != nil {
			log.Fatal(err)
		}
		d := res.Phases[len(res.Phases)-1].Decision
		fmt.Printf("%6.1fy | %-60v | %8.3f %8.2f\n",
			t, d.Chosen, res.Testing.IPC, res.Testing.LifetimeYears)
	}
}
