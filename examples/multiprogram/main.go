// Multi-program workloads: the paper's §6.2.5 scenario — a 4-core system
// with a shared 8 MB LLC and an 8 GB, 32-bank resistive main memory running
// one benchmark per core. MCT tunes the shared memory controller for the
// whole mix, with performance reported as the geometric mean of per-core
// IPCs.
//
//	go run ./examples/multiprogram
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"mct"
)

func main() {
	ctx := context.Background()
	const insts = 12_000_000

	fmt.Printf("%-6s %-42s %10s %10s %10s %12s\n",
		"mix", "members", "def IPC", "static", "MCT", "MCT life(y)")

	for _, mix := range mct.Mixes() {
		// Reference runs under the two fixed policies.
		refIPC := map[string]float64{}
		for _, ref := range []struct {
			label string
			cfg   mct.Config
		}{
			{"default", mct.DefaultConfig()},
			{"static", mct.StaticBaseline()},
		} {
			mm, err := mct.NewMixMachine(ctx, mix, ref.cfg)
			if err != nil {
				log.Fatal(err)
			}
			mm.Warmup(240_000)
			w := mm.RunInstructions(insts)
			refIPC[ref.label] = w.IPC
		}

		// MCT controls the shared memory system.
		mm, err := mct.NewMixMachine(ctx, mix, mct.StaticBaseline())
		if err != nil {
			log.Fatal(err)
		}
		ro := mct.DefaultRuntimeOptions()
		ro.WarmupAccesses = 240_000
		rt, err := mct.NewMultiRuntime(ctx, mm, mct.DefaultObjective(8), mct.WithRuntimeOptions(ro))
		if err != nil {
			log.Fatal(err)
		}
		res, err := rt.Run(insts)
		if err != nil {
			log.Fatal(err)
		}

		members, err := mct.MixMembers(mix)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %-42s %10.3f %10.3f %10.3f %12.2f\n",
			mix, strings.Join(members, "+"),
			refIPC["default"]/refIPC["static"], 1.0,
			res.Testing.IPC/refIPC["static"], res.Testing.LifetimeYears)
	}
	fmt.Println("\nIPC columns are geometric-mean per-core IPC normalized to the static policy.")
}
