// Phase-adaptive MCT: the ocean workload alternates between stencil
// sweeps, compute-dominated spans, relaxation steps and boundary exchanges
// with very different memory behaviour (the paper's Figure 6 subject). With
// phase detection enabled, MCT's t-test detector recognizes dramatic shifts
// in memory workload and re-triggers the learning cycle, so each phase gets
// its own configuration.
//
//	go run ./examples/phaseadaptive
package main

import (
	"context"
	"fmt"
	"log"

	"mct"
)

func main() {
	ctx := context.Background()
	const insts = 40_000_000

	machine, err := mct.NewMachine(ctx, "ocean", mct.StaticBaseline())
	if err != nil {
		log.Fatal(err)
	}
	ro := mct.DefaultRuntimeOptions()
	ro.EnablePhaseDetection = true
	// Scale the detector to the simulated run length (the paper uses
	// I=1M instructions with 100·I/1000·I windows on 2B-instruction
	// runs): the short window must fit inside one of ocean's coarse
	// phases. The runtime observes once per testing chunk, so the chunk
	// size sets the detector interval.
	ro.TestChunkInsts = 25_000
	ro.Phase.ShortWindows = 40
	ro.Phase.LongWindows = 400
	ro.Phase.Threshold = 15

	runtime, err := mct.NewRuntime(ctx, machine, mct.DefaultObjective(8), mct.WithRuntimeOptions(ro))
	if err != nil {
		log.Fatal(err)
	}
	res, err := runtime.Run(insts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MCT on ocean with phase detection (%d instructions)\n\n", insts)
	fmt.Printf("%d phase changes detected, %d learning cycles\n\n", res.PhaseChanges, len(res.Phases))
	for i, ph := range res.Phases {
		end := "(budget exhausted)"
		if ph.PhaseChange {
			end = "(phase change detected)"
		}
		fmt.Printf("cycle %d %s\n", i+1, end)
		fmt.Printf("  chosen: %v\n", ph.Decision.Chosen)
		fmt.Printf("  testing: IPC=%.3f lifetime=%.1fy energy=%.4gJ over %.1fM insts\n\n",
			ph.Testing.IPC, ph.Testing.LifetimeYears, ph.Testing.EnergyJ,
			float64(ph.Testing.Instructions)/1e6)
	}

	// Static reference on the identical workload.
	ref, err := mct.NewMachine(ctx, "ocean", mct.StaticBaseline())
	if err != nil {
		log.Fatal(err)
	}
	ref.Warmup(60_000)
	w := ref.RunInstructions(insts)
	fmt.Printf("static policy reference: IPC=%.3f lifetime=%.1fy energy=%.4gJ\n",
		w.IPC, w.LifetimeYears, w.EnergyJ)
	fmt.Printf("MCT overall:             IPC=%.3f lifetime=%.1fy energy=%.4gJ\n",
		res.Overall.IPC, res.Overall.LifetimeYears, res.Overall.EnergyJ)
}
