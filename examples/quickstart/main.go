// Quickstart: run Memory Cocktail Therapy on one workload and compare the
// outcome against the default system and the best static policy.
//
// MCT samples a small set of NVM configurations at runtime, learns
// IPC/lifetime/energy predictors, and installs the configuration that
// minimizes energy while guaranteeing an 8-year lifetime and staying within
// 95% of the achievable IPC (the paper's default objective, §3.2).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mct"
)

func main() {
	const (
		benchmark = "lbm"      // the paper's flagship workload
		insts     = 15_000_000 // simulated instructions
		lifetime  = 8.0        // years
	)

	ctx := context.Background()

	// 1. Build the simulated system (Table 8/9 parameters) and attach the
	//    MCT runtime with the default objective.
	machine, err := mct.NewMachine(ctx, benchmark, mct.StaticBaseline())
	if err != nil {
		log.Fatal(err)
	}
	runtime, err := mct.NewRuntime(ctx, machine, mct.DefaultObjective(lifetime))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run: baseline calibration → cyclic fine-grained sampling →
	//    learning → constrained optimization → wear-quota fixup → testing
	//    with health checks.
	result, err := runtime.Run(insts)
	if err != nil {
		log.Fatal(err)
	}
	decision := result.Phases[len(result.Phases)-1].Decision

	fmt.Printf("MCT on %s (%.0fM instructions, %.0fy lifetime target)\n\n",
		benchmark, float64(insts)/1e6, lifetime)
	fmt.Printf("chosen configuration: %v\n", decision.Chosen)
	fmt.Printf("  sampled %d configurations during the sampling period\n\n",
		len(decision.SampleIndices))
	perMInst := func(m mct.Metrics) float64 {
		return m.EnergyJ / float64(m.Instructions) * 1e6
	}
	fmt.Printf("%-22s %8s %12s %14s\n", "", "IPC", "lifetime(y)", "energy(mJ/Mi)")
	fmt.Printf("%-22s %8.3f %12.2f %14.3f\n", "MCT (testing period)",
		result.Testing.IPC, result.Testing.LifetimeYears, perMInst(result.Testing)*1e3)

	// 3. Reference runs of the same workload under the two fixed policies.
	for _, ref := range []struct {
		label string
		cfg   mct.Config
	}{
		{"default (fast writes)", mct.DefaultConfig()},
		{"best static policy", mct.StaticBaseline()},
	} {
		m, err := mct.NewMachine(ctx, benchmark, ref.cfg)
		if err != nil {
			log.Fatal(err)
		}
		m.Warmup(60_000)
		w := m.RunInstructions(insts)
		fmt.Printf("%-22s %8.3f %12.2f %14.3f\n", ref.label, w.IPC, w.LifetimeYears, perMInst(w)*1e3)
	}

	fmt.Println("\nThe default system is fastest but wears the memory out in a")
	fmt.Println("couple of years; the static policy survives but overpays; MCT")
	fmt.Println("finds a configuration meeting the target with better tradeoffs.")
}
