module mct

go 1.22
