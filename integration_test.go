package mct_test

import (
	"context"
	"math"
	"testing"

	"mct"
)

// TestLifetimeGuaranteeEndToEnd is the headline property of the paper: no
// matter how the predictions come out, the deployed configuration carries a
// wear-quota fixup, so the testing-period lifetime lands at or above the
// target (up to quota-regulation slack on stressed workloads).
func TestLifetimeGuaranteeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration test")
	}
	const target = 8.0
	ctx := context.Background()
	for _, bench := range []string{"lbm", "gups", "milc"} {
		m, err := mct.NewMachine(ctx, bench, mct.StaticBaseline())
		if err != nil {
			t.Fatal(err)
		}
		rt, err := mct.NewRuntime(ctx, m, mct.DefaultObjective(target))
		if err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run(15_000_000)
		if err != nil {
			t.Fatal(err)
		}
		// The wear quota regulates at slice granularity; allow 15% slack
		// for workloads that saturate it.
		if res.Testing.LifetimeYears < target*0.85 {
			t.Errorf("%s: testing lifetime %.2fy below %gy target", bench, res.Testing.LifetimeYears, target)
		}
		d := res.Phases[len(res.Phases)-1].Decision
		if !d.Chosen.WearQuota || d.Chosen.WearQuotaTarget != target {
			t.Errorf("%s: fixup missing on %v", bench, d.Chosen)
		}
	}
}

// TestRunDeterministic: identical machines and runtimes must produce
// bit-identical decisions and metrics.
func TestRunDeterministic(t *testing.T) {
	ctx := context.Background()
	run := func() (mct.Result, error) {
		m, err := mct.NewMachine(ctx, "leslie3d", mct.StaticBaseline())
		if err != nil {
			return mct.Result{}, err
		}
		rt, err := mct.NewRuntime(ctx, m, mct.DefaultObjective(8))
		if err != nil {
			return mct.Result{}, err
		}
		return rt.Run(8_000_000)
	}
	a, err := run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Testing.IPC != b.Testing.IPC || a.Testing.EnergyJ != b.Testing.EnergyJ {
		t.Fatalf("nondeterministic runs: %v vs %v", a.Testing.Vector(), b.Testing.Vector())
	}
	da := a.Phases[len(a.Phases)-1].Decision.Chosen
	db := b.Phases[len(b.Phases)-1].Decision.Chosen
	if da != db {
		t.Fatalf("nondeterministic decisions: %v vs %v", da, db)
	}
}

// TestObjectiveVariety exercises non-default objectives end to end: an
// energy budget with IPC maximization, and a lifetime-maximizing goal.
func TestObjectiveVariety(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second integration test")
	}
	ctx := context.Background()
	m, err := mct.NewMachine(ctx, "milc", mct.StaticBaseline())
	if err != nil {
		t.Fatal(err)
	}
	obj := mct.Objective{
		Constraints: []mct.Constraint{{Metric: mct.MetricLifetime, Min: 4}},
		Optimize:    mct.MetricIPC,
		Maximize:    true,
	}
	rt, err := mct.NewRuntime(ctx, m, obj)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Testing.IPC <= 0 || math.IsNaN(res.Testing.IPC) {
		t.Fatalf("degenerate IPC: %v", res.Testing.IPC)
	}
}
