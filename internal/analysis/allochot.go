// allochot: allocation audit for the simulator's hot path.
//
// The per-access step loop is the simulator's inner loop — a single
// per-iteration heap allocation there dominates the profile at figure-
// sweep scale (millions of accesses × dozens of configurations). allochot
// makes that budget auditable: functions marked with a
//
//	//mctlint:hotpath
//
// directive in their doc comment are hot-path roots; every function
// reachable from a root through the call graph (calls, dispatch, and
// references — a closure handed to the worker pool runs on the hot path
// even though no call edge names it) is hot, and every allocation site in
// a hot function is reported, ranked loop-nested sites first, shallower
// call depth first.
//
// Recognized allocation kinds: make, new, append, &T{...}, map/slice
// composite literals, closure creation, []byte/string conversions, and
// non-constant string concatenation. The rule is an audit (severity
// "warn"), not a prohibition — amortized growth (an append that doubles a
// reusable buffer) is legitimate and gets a reasoned //mctlint:ignore.
// AllochotWorklist exposes the same sites suppression-blind, so the
// driver's -allochot-json artifact always carries the full ranked budget
// even where in-source ignores sanction individual sites (ROADMAP:
// "static worklist for the allocation-budget item").
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// AllocHot is the hot-path allocation audit rule.
var AllocHot = &Analyzer{
	Name:       "allochot",
	Doc:        "no unjustified heap allocation in functions reachable from a //mctlint:hotpath root; hoist, pool, or suppress with a reason",
	Severity:   "warn",
	RunProgram: runAllocHot,
}

const hotPathDirective = "mctlint:hotpath"

// AllocSite is one allocation in a hot-path function.
type AllocSite struct {
	// Func is the containing function's printable name.
	Func string
	// Kind is the allocation flavor: "make", "new", "append", "&composite",
	// "composite", "closure", "conversion", "string concat".
	Kind string
	// InLoop marks sites inside a loop of their own function — the
	// per-iteration multiplier that ranks them first.
	InLoop bool
	// Depth is the call distance from the nearest hot-path root (0 = in
	// the root itself).
	Depth int
	// Pos is the source position.
	Pos token.Position

	pos token.Pos
}

func runAllocHot(prog *Program) {
	for _, s := range AllochotWorklist(prog) {
		loop := ""
		if s.InLoop {
			loop = ", inside a loop"
		}
		prog.Reportf(s.pos, "allochot",
			"hot-path allocation: %s at call depth %d from a hotpath root%s; hoist it out of the loop, reuse a buffer, or suppress with a reason", s.Kind, s.Depth, loop)
	}
}

// HotPathRoots returns the functions marked //mctlint:hotpath, in
// deterministic order.
func HotPathRoots(prog *Program) []*FuncInfo {
	var roots []*FuncInfo
	for _, fn := range prog.Funcs() {
		if fn.Decl == nil || fn.Decl.Doc == nil {
			continue
		}
		for _, c := range fn.Decl.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == hotPathDirective || strings.HasPrefix(text, hotPathDirective+" ") {
				roots = append(roots, fn)
				break
			}
		}
	}
	return roots
}

// AllochotWorklist computes the full ranked allocation worklist:
// suppression-blind, whole-program (not restricted to the analyze scope),
// loop-nested sites first, then by call depth, then by position.
func AllochotWorklist(prog *Program) []AllocSite {
	roots := HotPathRoots(prog)
	if len(roots) == 0 {
		return nil
	}
	reach := prog.CallGraph().Reachable(roots)
	var sites []AllocSite
	for _, fn := range prog.Funcs() {
		depth, hot := reach[fn]
		if !hot {
			continue
		}
		sites = append(sites, allocSitesIn(prog, fn, depth)...)
	}
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.InLoop != b.InLoop {
			return a.InLoop
		}
		if a.Depth != b.Depth {
			return a.Depth < b.Depth
		}
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	return sites
}

// allocSitesIn walks one function body for allocation expressions. Nested
// literals are skipped (they are their own call-graph nodes and are walked
// when reachable); the literal expression itself is a closure-allocation
// site of the enclosing function.
func allocSitesIn(prog *Program, fn *FuncInfo, depth int) []AllocSite {
	info := fn.Pkg.Info
	g := fn.CFG()
	var sites []AllocSite
	add := func(n ast.Node, kind string) {
		inLoop := false
		if b := g.BlockContaining(n.Pos()); b != nil {
			inLoop = g.InLoop(b)
		}
		sites = append(sites, AllocSite{
			Func:   fn.Name,
			Kind:   kind,
			InLoop: inLoop,
			Depth:  depth,
			Pos:    prog.Fset.Position(n.Pos()),
			pos:    n.Pos(),
		})
	}

	// Composite literals consumed by an enclosing & are reported once, as
	// "&composite"; nested ADDs of a concat chain report once at the top.
	taken := map[*ast.CompositeLit]bool{}
	inConcat := map[*ast.BinaryExpr]bool{}

	ast.Inspect(fn.Body(), func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			add(x, "closure")
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					taken[cl] = true
					add(x, "&composite")
				}
			}
		case *ast.CompositeLit:
			if taken[x] {
				return true
			}
			switch info.Types[x].Type.Underlying().(type) {
			case *types.Map:
				add(x, "composite")
			case *types.Slice:
				add(x, "composite")
			}
		case *ast.CallExpr:
			fun := ast.Unparen(x.Fun)
			if id, ok := fun.(*ast.Ident); ok {
				if _, ok := info.Uses[id].(*types.Builtin); ok {
					switch id.Name {
					case "make":
						add(x, "make")
					case "new":
						add(x, "new")
					case "append":
						add(x, "append")
					}
					return true
				}
			}
			if tv, ok := info.Types[fun]; ok && tv.IsType() && len(x.Args) == 1 {
				if kind, ok := allocConversion(info, tv.Type, x.Args[0]); ok {
					add(x, kind)
				}
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isNonConstString(info, x) && !inConcat[x] {
				// Only the outermost concat of a chain reports: a+b+c is one
				// conceptual allocation, and Inspect visits the parent ADD
				// first.
				add(x, "string concat")
				markConcatOperands(x, inConcat)
			}
		}
		return true
	})
	return sites
}

// markConcatOperands flags the nested ADD nodes of a concat chain so only
// the outermost reports.
func markConcatOperands(e *ast.BinaryExpr, seen map[*ast.BinaryExpr]bool) {
	for _, op := range []ast.Expr{e.X, e.Y} {
		if b, ok := ast.Unparen(op).(*ast.BinaryExpr); ok && b.Op == token.ADD {
			seen[b] = true
			markConcatOperands(b, seen)
		}
	}
}

// allocConversion classifies string<->[]byte/[]rune conversions of
// non-constant operands, which copy.
func allocConversion(info *types.Info, target types.Type, arg ast.Expr) (string, bool) {
	if tv, ok := info.Types[arg]; ok && tv.Value != nil {
		return "", false // constant-folded
	}
	from := info.Types[arg].Type
	if from == nil {
		return "", false
	}
	toB, toOK := target.Underlying().(*types.Basic)
	fromB, fromOK := from.Underlying().(*types.Basic)
	toSlice, toSliceOK := target.Underlying().(*types.Slice)
	fromSlice, fromSliceOK := from.Underlying().(*types.Slice)
	byteOrRune := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	// string(bytes) / string(runes)
	if toOK && toB.Info()&types.IsString != 0 && fromSliceOK && byteOrRune(fromSlice.Elem()) {
		return "conversion", true
	}
	// []byte(s) / []rune(s)
	if toSliceOK && byteOrRune(toSlice.Elem()) && fromOK && fromB.Info()&types.IsString != 0 {
		return "conversion", true
	}
	return "", false
}

// isNonConstString reports whether e is a non-constant string-typed
// expression whose parent is not itself part of the same concat chain.
func isNonConstString(info *types.Info, e *ast.BinaryExpr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// FormatAllocSite renders one worklist row for human output.
func FormatAllocSite(s AllocSite) string {
	loop := ""
	if s.InLoop {
		loop = " loop"
	}
	return fmt.Sprintf("%s:%d: %s in %s (depth %d%s)", s.Pos.Filename, s.Pos.Line, s.Kind, s.Func, s.Depth, loop)
}
