// Package analysis is a dependency-free static-analysis framework for the
// MCT tree, built only on the standard library's go/ast, go/parser and
// go/types (no golang.org/x/tools). It exists because the reproduction's
// claims rest on the simulator being deterministic and numerically careful:
// a single draw from math/rand's global source or a silent float-equality
// branch can shift IPC/lifetime predictions and invalidate the reproduced
// figure shapes. The cmd/mctlint driver walks the module, runs the
// registered analyzers over every type-checked package, and reports
// findings as "file:line: [rule] message".
//
// Findings can be suppressed with a directive comment on the offending line
// or on the line directly above it:
//
//	//mctlint:ignore <rule> <reason>
//
// The reason is mandatory; a directive without one is itself reported and
// suppresses nothing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the driver's output format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Pass carries one type-checked package through the analyzers.
type Pass struct {
	Fset    *token.FileSet
	PkgPath string
	Pkg     *types.Package
	Files   []*ast.File
	Info    *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one lint rule.
type Analyzer struct {
	// Name is the rule identifier used in output and ignore directives.
	Name string
	// Doc is a one-line description for the driver's -rules listing.
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Analyzers returns the default registry: every simulator-aware rule
// shipped with mctlint. The first eight are syntactic; the last four are
// flow-sensitive, built on the CFG/dataflow layer of cfg.go and
// dataflow.go.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoRandGlobal,
		FloatEq,
		UncheckedErr,
		CycleCast,
		MutexCopy,
		CtxFirst,
		CloneFields,
		MapRange,
		ObsNames,
		LockBalance,
		GoLeak,
		DeferLoop,
	}
}

// ignoreDirective is one parsed //mctlint:ignore comment.
type ignoreDirective struct {
	rule   string
	reason string
	line   int
	pos    token.Pos
}

const ignorePrefix = "mctlint:ignore"

// parseIgnores extracts the ignore directives of a file, reporting
// malformed ones (missing rule or reason) under the reserved rule name
// "mctlint". Malformed directives suppress nothing.
func parseIgnores(pass *Pass, file *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				pass.Reportf(c.Pos(), "mctlint",
					"malformed ignore directive: want //mctlint:ignore <rule> <reason>")
				continue
			}
			out = append(out, ignoreDirective{
				rule:   fields[0],
				reason: strings.Join(fields[1:], " "),
				line:   pass.Fset.Position(c.Pos()).Line,
				pos:    c.Pos(),
			})
		}
	}
	return out
}

// RunAnalyzers runs every analyzer over the package, applies ignore
// directives, and returns the surviving findings sorted by position.
func RunAnalyzers(pass *Pass, analyzers []*Analyzer) []Diagnostic {
	for _, a := range analyzers {
		a.Run(pass)
	}

	// A directive on line L suppresses matching findings on L and L+1
	// (trailing comment or comment-above placement).
	type key struct {
		file string
		line int
		rule string
	}
	suppressed := map[key]bool{}
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		for _, d := range parseIgnores(pass, f) {
			suppressed[key{fname, d.line, d.rule}] = true
			suppressed[key{fname, d.line + 1, d.rule}] = true
		}
	}

	var out []Diagnostic
	for _, d := range pass.diags {
		if d.Rule != "mctlint" && suppressed[key{d.Pos.Filename, d.Pos.Line, d.Rule}] {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}
