// Package analysis is a dependency-free static-analysis framework for the
// MCT tree, built only on the standard library's go/ast, go/parser and
// go/types (no golang.org/x/tools). It exists because the reproduction's
// claims rest on the simulator being deterministic and numerically careful:
// a single draw from math/rand's global source or a silent float-equality
// branch can shift IPC/lifetime predictions and invalidate the reproduced
// figure shapes. The cmd/mctlint driver walks the module, runs the
// registered analyzers over every type-checked package, and reports
// findings as "file:line: [rule] message".
//
// Findings can be suppressed with a directive comment on the offending line
// or on the line directly above it:
//
//	//mctlint:ignore <rule> <reason>
//
// The reason is mandatory; a directive without one is itself reported and
// suppresses nothing.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the driver's output format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Pass carries one type-checked package through the analyzers.
type Pass struct {
	Fset    *token.FileSet
	PkgPath string
	Pkg     *types.Package
	Files   []*ast.File
	Info    *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, rule, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzer is one lint rule. A rule is either package-scoped (Run set:
// invoked once per type-checked package) or program-scoped (RunProgram set:
// invoked once over a whole-program view with a call graph — see
// program.go). Exactly one of the two should be set.
type Analyzer struct {
	// Name is the rule identifier used in output and ignore directives.
	Name string
	// Doc is a one-line description for the driver's -rules listing.
	Doc string
	// Severity classifies findings for drivers and humans: "error" (default
	// when empty — violates a correctness invariant) or "warn" (audit-class:
	// worth a look, not necessarily a bug).
	Severity string
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass)
	// RunProgram inspects the whole program and reports findings via
	// prog.Reportf.
	RunProgram func(prog *Program)
}

// EffectiveSeverity returns the rule's severity, defaulting to "error".
func (a *Analyzer) EffectiveSeverity() string {
	if a.Severity == "" {
		return "error"
	}
	return a.Severity
}

// Interprocedural reports whether the rule is program-scoped (built on the
// call-graph/summary layer rather than a single package pass).
func (a *Analyzer) Interprocedural() bool { return a.RunProgram != nil }

// Analyzers returns the default registry: every simulator-aware rule
// shipped with mctlint. The first eight are syntactic; the next four are
// flow-sensitive, built on the CFG/dataflow layer of cfg.go and
// dataflow.go; the next three are interprocedural, built on the call-graph
// and summary layer of callgraph.go and summaries.go; the next three are
// concurrency-aware, built on the MHP and guarded-by layers of mhp.go and
// guards.go; the last is the program-scoped deprecation gate.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoRandGlobal,
		FloatEq,
		UncheckedErr,
		CycleCast,
		MutexCopy,
		CtxFirst,
		CloneFields,
		MapRange,
		ObsNames,
		LockBalance,
		GoLeak,
		DeferLoop,
		DetFlow,
		AllocHot,
		LockFlow,
		RaceCand,
		AtomicMix,
		ChanMisuse,
		NoDeprecated,
	}
}

// ignoreDirective is one parsed //mctlint:ignore comment.
type ignoreDirective struct {
	rule   string
	reason string
	line   int
	pos    token.Pos
}

const ignorePrefix = "mctlint:ignore"

// parseIgnores extracts the ignore directives of a file. Malformed
// directives (missing rule or reason) suppress nothing; when malformed is
// non-nil it is called with their positions so the package pass can report
// them under the reserved rule name "mctlint".
func parseIgnores(fset *token.FileSet, file *ast.File, malformed func(token.Pos)) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				if malformed != nil {
					malformed(c.Pos())
				}
				continue
			}
			out = append(out, ignoreDirective{
				rule:   fields[0],
				reason: strings.Join(fields[1:], " "),
				line:   fset.Position(c.Pos()).Line,
				pos:    c.Pos(),
			})
		}
	}
	return out
}

// suppressKey identifies one (file, line, rule) suppression slot.
type suppressKey struct {
	file string
	line int
	rule string
}

// suppressionIndex collects the suppression slots of files: a directive on
// line L suppresses matching findings on L and L+1 (trailing comment or
// comment-above placement).
func suppressionIndex(fset *token.FileSet, files []*ast.File, malformed func(token.Pos)) map[suppressKey]bool {
	suppressed := map[suppressKey]bool{}
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		for _, d := range parseIgnores(fset, f, malformed) {
			suppressed[suppressKey{fname, d.line, d.rule}] = true
			suppressed[suppressKey{fname, d.line + 1, d.rule}] = true
		}
	}
	return suppressed
}

// applySuppression filters findings through the suppression index and
// returns the survivors sorted by position.
func applySuppression(diags []Diagnostic, suppressed map[suppressKey]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Rule != "mctlint" && suppressed[suppressKey{d.Pos.Filename, d.Pos.Line, d.Rule}] {
			continue
		}
		out = append(out, d)
	}
	sortDiagnostics(out)
	return out
}

func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// RunAnalyzers runs every package-scoped analyzer over the package, applies
// ignore directives, and returns the surviving findings sorted by position.
// Program-scoped analyzers in the list are skipped (see
// RunProgramAnalyzers).
func RunAnalyzers(pass *Pass, analyzers []*Analyzer) []Diagnostic {
	for _, a := range analyzers {
		if a.Run != nil {
			a.Run(pass)
		}
	}
	suppressed := suppressionIndex(pass.Fset, pass.Files, func(pos token.Pos) {
		pass.Reportf(pos, "mctlint",
			"malformed ignore directive: want //mctlint:ignore <rule> <reason>")
	})
	return applySuppression(pass.diags, suppressed)
}

// RunProgramAnalyzers runs every program-scoped analyzer over the program,
// applies ignore directives of the analyzed packages, and returns the
// surviving findings sorted by position. Malformed directives are not
// re-reported here: the package pass over the same files already owns that
// diagnostic.
func RunProgramAnalyzers(prog *Program, analyzers []*Analyzer) []Diagnostic {
	for _, a := range analyzers {
		if a.RunProgram != nil {
			a.RunProgram(prog)
		}
	}
	var files []*ast.File
	for _, p := range prog.Analyze {
		files = append(files, p.Files...)
	}
	suppressed := suppressionIndex(prog.Fset, files, nil)
	return applySuppression(prog.takeDiagnostics(), suppressed)
}
