package analysis

import (
	"bufio"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe matches trailing fixture markers of the form "// want rule [rule...]".
var wantRe = regexp.MustCompile(`//\s*want\s+([a-z][a-z ]*)$`)

func moduleRoot(t testing.TB) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Clean(filepath.Join(wd, "..", ".."))
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not found at %s: %v", root, err)
	}
	return root
}

// fixtureWants scans a fixture directory's .go files for "// want <rule>..."
// markers and returns the expected findings as "file:line rule" strings, one
// entry per rule occurrence on the marker.
func fixtureWants(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			for _, rule := range strings.Fields(m[1]) {
				want = append(want, fmt.Sprintf("%s:%d %s", name, line, rule))
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return want
}

// loadFixture type-checks testdata/src/<rule> under an internal/ import path
// (so internal-scoped rules apply) and returns the surviving findings of the
// analyzers given. Package-scoped analyzers run over the fixture package
// alone; program-scoped analyzers run over a whole-program view of the
// fixture plus whatever module packages it imports.
func loadFixture(t *testing.T, rule string, analyzers []*Analyzer) []Diagnostic {
	t.Helper()
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "src", rule)
	pkg, err := loader.LoadFixture(dir, loader.ModulePath()+"/internal/testdata/"+rule)
	if err != nil {
		t.Fatalf("load fixture %s: %v", rule, err)
	}
	diags := RunAnalyzers(NewPass(loader, pkg), analyzers)
	for _, a := range analyzers {
		if a.Interprocedural() {
			prog := NewProgram(loader, []*Package{pkg})
			diags = append(diags, RunProgramAnalyzers(prog, analyzers)...)
			sortDiagnostics(diags)
			break
		}
	}
	return diags
}

// TestAnalyzerFixtures asserts, for every registered rule, that the rule
// fires exactly on its fixture's "// want" lines — which also proves that
// //mctlint:ignore directives suppress findings, since every fixture contains
// suppressed violations with no marker.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			diags := loadFixture(t, a.Name, []*Analyzer{a})
			var got []string
			for _, d := range diags {
				if d.Rule != a.Name {
					continue
				}
				got = append(got, fmt.Sprintf("%s:%d %s",
					filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule))
			}
			want := fixtureWants(t, filepath.Join("testdata", "src", a.Name))
			if len(want) == 0 {
				t.Fatalf("fixture for %s has no want markers", a.Name)
			}
			sort.Strings(got)
			sort.Strings(want)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("findings mismatch for %s\n got: %v\nwant: %v", a.Name, got, want)
			}
		})
	}
}

// TestMalformedIgnoreReported asserts that a directive without a reason is
// itself reported under the reserved rule "mctlint" (the norandglobal fixture
// carries one in badignore.go) and — via the want marker on the line below
// the directive — that it suppresses nothing.
func TestMalformedIgnoreReported(t *testing.T) {
	diags := loadFixture(t, "norandglobal", []*Analyzer{NoRandGlobal})
	var malformed []Diagnostic
	for _, d := range diags {
		if d.Rule == "mctlint" {
			malformed = append(malformed, d)
		}
	}
	if len(malformed) != 1 {
		t.Fatalf("want exactly 1 malformed-directive finding, got %d: %v", len(malformed), malformed)
	}
	if base := filepath.Base(malformed[0].Pos.Filename); base != "badignore.go" {
		t.Errorf("malformed-directive finding in %s, want badignore.go", base)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pos:     token.Position{Filename: "internal/sim/sim.go", Line: 42},
		Rule:    "floateq",
		Message: "== on float64 operands",
	}
	const want = "internal/sim/sim.go:42: [floateq] == on float64 operands"
	if got := d.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestModuleTreeClean is the in-repo form of the acceptance criterion
// "go run ./cmd/mctlint ./... exits 0": every package of the module must be
// free of findings under the full registry.
func TestModuleTreeClean(t *testing.T) {
	root := moduleRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.PackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("suspiciously few packages found: %v", paths)
	}
	// The linter must lint itself: the default walk has to cover the
	// analysis framework and the driver, not just the simulator packages.
	mod := loader.ModulePath()
	for _, self := range []string{mod + "/internal/analysis", mod + "/cmd/mctlint"} {
		found := false
		for _, p := range paths {
			if p == self {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("default walk misses %s; the linter would not lint itself", self)
		}
	}
	var all []*Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		all = append(all, pkg)
		for _, d := range RunAnalyzers(NewPass(loader, pkg), Analyzers()) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	// The interprocedural rules must hold over the whole tree too: this is
	// the in-repo proof that the determinism surfaces (report writers,
	// obs.DumpJSON inputs, checkpoint encoders) are taint-free and that the
	// hot path carries no unsanctioned allocations.
	prog := NewProgram(loader, all)
	for _, d := range RunProgramAnalyzers(prog, Analyzers()) {
		t.Errorf("unexpected program finding: %s", d)
	}
}
