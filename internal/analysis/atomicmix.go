package analysis

import (
	"go/types"
	"sort"
)

// AtomicMix flags variables and struct fields accessed both through
// sync/atomic and plainly. Mixing the two disciplines voids the atomic
// guarantee: a plain read can observe a torn or stale value next to
// atomic.Add writers, and the race detector only notices when the
// scheduler interleaves the pair. The rule fires only when a plain access
// may actually happen in parallel with an atomic one — a plain
// initialization that happens-before the goroutines spawn is fine.
var AtomicMix = &Analyzer{
	Name:       "atomicmix",
	Doc:        "a variable or field accessed both via sync/atomic and plainly loses the atomic guarantee",
	Severity:   "error",
	RunProgram: runAtomicMix,
}

func runAtomicMix(prog *Program) {
	idx := sharedIndexOf(prog)
	conc := prog.Concurrency()
	var objs []*types.Var
	for obj := range idx.accesses {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		accs := idx.accesses[obj]
		var atomics, plains []*Access
		for _, a := range accs {
			if a.Atomic {
				atomics = append(atomics, a)
			} else {
				plains = append(plains, a)
			}
		}
		if len(atomics) == 0 || len(plains) == 0 {
			continue
		}
		reported := false
		for _, p := range plains {
			for _, at := range atomics {
				if idx.varMHP(conc, obj, p, at) {
					prog.Reportf(p.Pos, "atomicmix",
						"%s is accessed via sync/atomic in %s but plainly here in %s; mixing the disciplines voids the atomic guarantee",
						obj.Name(), shortFuncName(at.Fn.Name), shortFuncName(p.Fn.Name))
					reported = true
					break
				}
			}
			if reported {
				break
			}
		}
	}
}
