// Static call graph over go/types, the backbone of the interprocedural
// analyzers.
//
// Construction rules (documented in DESIGN.md):
//
//   - Direct calls to declared functions and methods become EdgeCall edges
//     (generic instantiations are collapsed onto their origin declaration).
//   - An immediately-invoked function literal is an EdgeCall to the
//     literal's own node; any other mention of a literal or a declared
//     function — a method value stored in a variable, a closure passed as
//     an engine.Map task — becomes an EdgeRef edge: the target may run
//     whenever the value is eventually invoked, so reachability analyses
//     must traverse it, while summary composition (which needs the call's
//     argument binding) must not.
//   - A call through an interface becomes EdgeDispatch edges to the
//     matching method of every named type in the program whose method set
//     implements the interface (conservative: every implementation may be
//     the dynamic callee).
//
// Soundness caveats: calls through plain function-typed variables are not
// resolved (the ref edge at the point the function value escaped covers
// reachability but not argument binding), and dynamic dispatch to types
// outside the loaded program is invisible.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// EdgeKind classifies one call-graph edge.
type EdgeKind int

const (
	// EdgeCall is a direct static call.
	EdgeCall EdgeKind = iota
	// EdgeDispatch is a conservative interface-dispatch candidate.
	EdgeDispatch
	// EdgeRef records a function value escaping (method value, closure or
	// function passed/stored rather than called).
	EdgeRef
)

// String names the edge kind for exports and messages.
func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeDispatch:
		return "dispatch"
	case EdgeRef:
		return "ref"
	}
	return "unknown"
}

// Edge is one directed call-graph edge.
type Edge struct {
	Caller, Callee *FuncInfo
	Kind           EdgeKind
	Pos            token.Pos
}

// CallGraph is the static call graph of a Program.
type CallGraph struct {
	Prog *Program
	// Nodes is every function body, in the program's deterministic order.
	Nodes []*FuncInfo
	// Out and In hold the edges by caller and by callee, deduplicated per
	// (caller, callee, kind), in discovery (source) order.
	Out map[*FuncInfo][]Edge
	In  map[*FuncInfo][]Edge

	implCache map[implKey][]*FuncInfo
}

type implKey struct {
	iface  *types.Interface
	method string
}

// CallGraph builds (and caches) the program's call graph.
func (prog *Program) CallGraph() *CallGraph {
	if prog.graph != nil {
		return prog.graph
	}
	g := &CallGraph{
		Prog:      prog,
		Nodes:     prog.Funcs(),
		Out:       map[*FuncInfo][]Edge{},
		In:        map[*FuncInfo][]Edge{},
		implCache: map[implKey][]*FuncInfo{},
	}
	type dedupKey struct {
		caller, callee *FuncInfo
		kind           EdgeKind
	}
	seen := map[dedupKey]bool{}
	add := func(e Edge) {
		k := dedupKey{e.Caller, e.Callee, e.Kind}
		if e.Callee == nil || seen[k] {
			return
		}
		seen[k] = true
		g.Out[e.Caller] = append(g.Out[e.Caller], e)
		g.In[e.Callee] = append(g.In[e.Callee], e)
	}
	for _, fn := range g.Nodes {
		g.edgesFrom(fn, add)
	}
	prog.graph = g
	return g
}

// edgesFrom walks one function body (excluding nested literal bodies, which
// are their own nodes) and emits its outgoing edges.
func (g *CallGraph) edgesFrom(fn *FuncInfo, add func(Edge)) {
	body := fn.Body()
	info := fn.Pkg.Info

	// First pass: note which expressions are the operator of a call, so the
	// second pass can tell a call from an escaping reference.
	called := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			called[ast.Unparen(call.Fun)] = true
		}
		return true
	})

	kindOf := func(e ast.Expr) EdgeKind {
		if called[e] {
			return EdgeCall
		}
		return EdgeRef
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			add(Edge{Caller: fn, Callee: g.Prog.LitOf(x), Kind: kindOf(x), Pos: x.Pos()})
			return false
		case *ast.SelectorExpr:
			g.selectorEdges(fn, x, kindOf(x), add)
			// The base expression can itself contain calls: f().M, a[i].M.
			ast.Inspect(x.X, func(m ast.Node) bool { return walk(m) })
			return false
		case *ast.Ident:
			if tf, ok := info.Uses[x].(*types.Func); ok {
				add(Edge{Caller: fn, Callee: g.Prog.FuncOf(tf), Kind: kindOf(x), Pos: x.Pos()})
			}
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool { return walk(n) })
}

// selectorEdges resolves a selector mentioning a function: a method
// call/value (possibly through an interface) or a package-qualified
// function.
func (g *CallGraph) selectorEdges(fn *FuncInfo, sel *ast.SelectorExpr, kind EdgeKind, add func(Edge)) {
	info := fn.Pkg.Info
	if s, ok := info.Selections[sel]; ok {
		if s.Kind() != types.MethodVal && s.Kind() != types.MethodExpr {
			return // field access
		}
		callee, _ := s.Obj().(*types.Func)
		if callee == nil {
			return
		}
		if s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
			dk := EdgeDispatch
			if kind == EdgeRef {
				dk = EdgeRef
			}
			for _, t := range g.implementers(s.Recv().Underlying().(*types.Interface), callee.Name()) {
				add(Edge{Caller: fn, Callee: t, Kind: dk, Pos: sel.Pos()})
			}
			return
		}
		add(Edge{Caller: fn, Callee: g.Prog.FuncOf(callee), Kind: kind, Pos: sel.Pos()})
		return
	}
	if tf, ok := info.Uses[sel.Sel].(*types.Func); ok {
		add(Edge{Caller: fn, Callee: g.Prog.FuncOf(tf), Kind: kind, Pos: sel.Pos()})
	}
}

// implementers returns the program functions implementing the named method
// of iface: for every package-scope named type T (and *T) whose method set
// satisfies the interface, the method with a body. Memoized per
// (interface, method).
func (g *CallGraph) implementers(iface *types.Interface, method string) []*FuncInfo {
	key := implKey{iface, method}
	if out, ok := g.implCache[key]; ok {
		return out
	}
	var out []*FuncInfo
	seen := map[*FuncInfo]bool{}
	for _, p := range g.Prog.Packages {
		scope := p.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			T := tn.Type()
			if types.IsInterface(T) {
				continue
			}
			for _, recv := range []types.Type{T, types.NewPointer(T)} {
				if !types.Implements(recv, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(recv, true, tn.Pkg(), method)
				if m, ok := obj.(*types.Func); ok {
					if fi := g.Prog.FuncOf(m); fi != nil && !seen[fi] {
						seen[fi] = true
						out = append(out, fi)
					}
				}
			}
		}
	}
	g.implCache[key] = out
	return out
}

// CalleesAt resolves one call expression inside fn to its possible
// program-internal callees (one for a static call, several for an
// interface dispatch, the literal for an immediately-invoked closure).
// Empty means the callee is external or dynamic.
func (g *CallGraph) CalleesAt(fn *FuncInfo, call *ast.CallExpr) []*FuncInfo {
	info := fn.Pkg.Info
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if li := g.Prog.LitOf(f); li != nil {
			return []*FuncInfo{li}
		}
	case *ast.Ident:
		if tf, ok := info.Uses[f].(*types.Func); ok {
			if fi := g.Prog.FuncOf(tf); fi != nil {
				return []*FuncInfo{fi}
			}
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[f]; ok {
			if callee, _ := s.Obj().(*types.Func); callee != nil {
				if s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
					return g.implementers(s.Recv().Underlying().(*types.Interface), callee.Name())
				}
				if fi := g.Prog.FuncOf(callee); fi != nil {
					return []*FuncInfo{fi}
				}
			}
			return nil
		}
		if tf, ok := info.Uses[f.Sel].(*types.Func); ok {
			if fi := g.Prog.FuncOf(tf); fi != nil {
				return []*FuncInfo{fi}
			}
		}
	}
	return nil
}

// callEdge reports whether kind participates in summary composition and
// SCC grouping (ref edges do not: they carry no argument binding).
func callEdge(k EdgeKind) bool { return k == EdgeCall || k == EdgeDispatch }

// SCCs returns the strongly connected components over call and dispatch
// edges in reverse topological order: every callee SCC precedes its
// callers, the order bottom-up summary solvers need. Tarjan's algorithm,
// iterative, deterministic given the program's node order.
func (g *CallGraph) SCCs() [][]*FuncInfo {
	index := map[*FuncInfo]int{}
	low := map[*FuncInfo]int{}
	onStack := map[*FuncInfo]bool{}
	var stack []*FuncInfo
	var sccs [][]*FuncInfo
	next := 0

	type frame struct {
		fn *FuncInfo
		ei int
	}
	for _, root := range g.Nodes {
		if _, ok := index[root]; ok {
			continue
		}
		work := []frame{{fn: root}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			fn := f.fn
			if f.ei == 0 {
				index[fn] = next
				low[fn] = next
				next++
				stack = append(stack, fn)
				onStack[fn] = true
			}
			advanced := false
			edges := g.Out[fn]
			for f.ei < len(edges) {
				e := edges[f.ei]
				f.ei++
				if !callEdge(e.Kind) {
					continue
				}
				w := e.Callee
				if _, ok := index[w]; !ok {
					work = append(work, frame{fn: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[fn] {
					low[fn] = index[w]
				}
			}
			if advanced {
				continue
			}
			// fn is done: pop, fold lowlink into parent, close SCC at root.
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].fn
				if low[fn] < low[p] {
					low[p] = low[fn]
				}
			}
			if low[fn] == index[fn] {
				var scc []*FuncInfo
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == fn {
						break
					}
				}
				// Stable member order for deterministic iteration.
				sort.Slice(scc, func(i, j int) bool { return scc[i].Pos() < scc[j].Pos() })
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// InSameSCC reports whether a and b are mutually recursive (share an SCC
// with more than themselves, or a == b with a self-loop).
func (g *CallGraph) InSameSCC(a, b *FuncInfo) bool {
	for _, scc := range g.SCCs() {
		ina, inb := false, false
		for _, f := range scc {
			ina = ina || f == a
			inb = inb || f == b
		}
		if ina || inb {
			return ina && inb
		}
	}
	return false
}

// Reachable returns every node reachable from the roots over the given
// edge kinds (all kinds when none given), mapped to the minimal edge depth
// from a root. Roots map to depth 0.
func (g *CallGraph) Reachable(roots []*FuncInfo, kinds ...EdgeKind) map[*FuncInfo]int {
	want := func(k EdgeKind) bool {
		if len(kinds) == 0 {
			return true
		}
		for _, w := range kinds {
			if w == k {
				return true
			}
		}
		return false
	}
	depth := map[*FuncInfo]int{}
	var queue []*FuncInfo
	for _, r := range roots {
		if _, ok := depth[r]; !ok && r != nil {
			depth[r] = 0
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, e := range g.Out[fn] {
			if !want(e.Kind) {
				continue
			}
			if _, ok := depth[e.Callee]; !ok {
				depth[e.Callee] = depth[fn] + 1
				queue = append(queue, e.Callee)
			}
		}
	}
	return depth
}
