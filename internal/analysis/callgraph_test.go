package analysis

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadSnippet type-checks one inline source file as a standalone package
// under an internal/ import path and returns the whole-program view over it
// (plus whatever module packages it imports).
func loadSnippet(t *testing.T, src string) *Program {
	t.Helper()
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snippet.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadFixture(dir, loader.ModulePath()+"/internal/testdata/snippet")
	if err != nil {
		t.Fatalf("load snippet: %v", err)
	}
	return NewProgram(loader, []*Package{pkg})
}

// snipName qualifies a snippet-level identifier with the snippet package path.
func snipName(prog *Program, name string) string {
	return prog.ModulePath + "/internal/testdata/snippet." + name
}

func mustFunc(t *testing.T, prog *Program, name string) *FuncInfo {
	t.Helper()
	fi := prog.LookupFunc(name)
	if fi == nil {
		var have []string
		for _, f := range prog.Funcs() {
			if strings.Contains(f.Name, "testdata/snippet") {
				have = append(have, f.Name)
			}
		}
		t.Fatalf("function %q not indexed; snippet functions: %v", name, have)
	}
	return fi
}

// edgeKinds returns the deduplicated caller→callee edge kinds, rendered as
// "calleeName:kind" strings sorted for comparison.
func edgeKinds(g *CallGraph, from *FuncInfo) []string {
	var out []string
	for _, e := range g.Out[from] {
		out = append(out, e.Callee.Name+":"+e.Kind.String())
	}
	sort.Strings(out)
	return out
}

func hasEdge(g *CallGraph, from, to *FuncInfo, kind EdgeKind) bool {
	for _, e := range g.Out[from] {
		if e.Callee == to && e.Kind == kind {
			return true
		}
	}
	return false
}

const cgSnippet = `package snippet

import (
	"context"

	"mct/internal/engine"
	"mct/internal/obs"
)

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

// closure returns a literal capturing the receiver: the literal is its own
// call-graph node with a call edge to the method.
func (c *counter) closure() func() {
	return func() { c.bump() }
}

func helper() {}

func direct() { helper() }

func iife() int {
	return func() int { return 1 }()
}

type shape interface{ area() float64 }

type square struct{ s float64 }

func (q square) area() float64 { return q.s * q.s }

type circle struct{ r float64 }

func (c circle) area() float64 { return 3 * c.r * c.r }

func dispatch(s shape) float64 { return s.area() }

// methodValue lets a bound method escape without calling it.
func methodValue(c *counter) func() {
	return c.bump
}

// mapTasks passes a closure as an engine.Map task: the closure escapes into
// the engine, so its body is reachable only over the ref edge.
func mapTasks(ctx context.Context) ([]int, error) {
	c := &counter{}
	return engine.Map(ctx, 4, engine.Options{}, func(ctx context.Context, i int) (int, error) {
		c.bump()
		return i, nil
	})
}

func onEvent(obs.Event) {}

// wire converts a named function to obs.TraceSink (a function type, not an
// interface): the function escapes as a value.
func wire() obs.TraceSink {
	return obs.TraceSink(onEvent)
}

// emit calls through a function-typed value: statically unresolvable.
func emit(sink obs.TraceSink, ev obs.Event) {
	sink(ev)
}

func even(n int) bool {
	if n == 0 {
		return true
	}
	return odd(n - 1)
}

func odd(n int) bool {
	if n == 0 {
		return false
	}
	return even(n - 1)
}

func self(n int) int {
	if n <= 0 {
		return 0
	}
	return self(n-1) + 1
}
`

func TestCallGraphDirectCallsAndLiterals(t *testing.T) {
	prog := loadSnippet(t, cgSnippet)
	g := prog.CallGraph()

	direct := mustFunc(t, prog, snipName(prog, "direct"))
	helper := mustFunc(t, prog, snipName(prog, "helper"))
	if !hasEdge(g, direct, helper, EdgeCall) {
		t.Errorf("direct → helper: want a call edge, got %v", edgeKinds(g, direct))
	}

	// An immediately-invoked literal is a call to the literal's node.
	iife := mustFunc(t, prog, snipName(prog, "iife"))
	iifeLit := mustFunc(t, prog, snipName(prog, "iife")+"$1")
	if !hasEdge(g, iife, iifeLit, EdgeCall) {
		t.Errorf("iife → iife$1: want a call edge, got %v", edgeKinds(g, iife))
	}
}

func TestCallGraphClosureCapturingReceiver(t *testing.T) {
	prog := loadSnippet(t, cgSnippet)
	g := prog.CallGraph()

	closure := mustFunc(t, prog, "(*"+snipName(prog, "counter")+").closure")
	lit := mustFunc(t, prog, closure.Name+"$1")
	bump := mustFunc(t, prog, "(*"+snipName(prog, "counter")+").bump")

	// The returned literal escapes (ref), and the literal's own node calls
	// the captured receiver's method.
	if !hasEdge(g, closure, lit, EdgeRef) {
		t.Errorf("closure → closure$1: want a ref edge, got %v", edgeKinds(g, closure))
	}
	if !hasEdge(g, lit, bump, EdgeCall) {
		t.Errorf("closure$1 → bump: want a call edge, got %v", edgeKinds(g, lit))
	}
	if hasEdge(g, closure, lit, EdgeCall) {
		t.Error("closure → closure$1 must not be a call edge: the literal is returned, not invoked")
	}
}

func TestCallGraphMethodValueEscapes(t *testing.T) {
	prog := loadSnippet(t, cgSnippet)
	g := prog.CallGraph()

	mv := mustFunc(t, prog, snipName(prog, "methodValue"))
	bump := mustFunc(t, prog, "(*"+snipName(prog, "counter")+").bump")
	if !hasEdge(g, mv, bump, EdgeRef) {
		t.Errorf("methodValue → bump: want a ref edge, got %v", edgeKinds(g, mv))
	}
	if hasEdge(g, mv, bump, EdgeCall) {
		t.Error("methodValue → bump must not be a call edge: the method value is returned, not invoked")
	}

	// A named function converted to obs.TraceSink escapes the same way.
	wire := mustFunc(t, prog, snipName(prog, "wire"))
	onEvent := mustFunc(t, prog, snipName(prog, "onEvent"))
	if !hasEdge(g, wire, onEvent, EdgeRef) {
		t.Errorf("wire → onEvent: want a ref edge, got %v", edgeKinds(g, wire))
	}

	// Calling through a function-typed value resolves to nothing.
	emit := mustFunc(t, prog, snipName(prog, "emit"))
	if out := g.Out[emit]; len(out) != 0 {
		t.Errorf("emit has %d out edges, want 0 (call through func value is dynamic): %v", len(out), edgeKinds(g, emit))
	}
}

func TestCallGraphEngineMapTask(t *testing.T) {
	prog := loadSnippet(t, cgSnippet)
	g := prog.CallGraph()

	mt := mustFunc(t, prog, snipName(prog, "mapTasks"))
	lit := mustFunc(t, prog, snipName(prog, "mapTasks")+"$1")
	bump := mustFunc(t, prog, "(*"+snipName(prog, "counter")+").bump")
	engMap := prog.LookupFunc("mct/internal/engine.Map")
	if engMap == nil {
		t.Fatal("engine.Map not indexed: the program view must include imported module packages")
	}
	if !hasEdge(g, mt, engMap, EdgeCall) {
		t.Errorf("mapTasks → engine.Map: want a call edge, got %v", edgeKinds(g, mt))
	}
	if !hasEdge(g, mt, lit, EdgeRef) {
		t.Errorf("mapTasks → mapTasks$1: want a ref edge (task escapes into the engine), got %v", edgeKinds(g, mt))
	}

	// Reachability over all edge kinds reaches the task body and its callees;
	// over call edges alone it must not — the task is never invoked
	// syntactically by mapTasks.
	all := g.Reachable([]*FuncInfo{mt})
	if d, ok := all[bump]; !ok || d != 2 {
		t.Errorf("bump depth over all edges = %d (ok=%v), want 2 (mapTasks → $1 → bump)", d, ok)
	}
	callsOnly := g.Reachable([]*FuncInfo{mt}, EdgeCall, EdgeDispatch)
	if _, ok := callsOnly[lit]; ok {
		t.Error("task literal must be unreachable over call/dispatch edges alone")
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	prog := loadSnippet(t, cgSnippet)
	g := prog.CallGraph()

	disp := mustFunc(t, prog, snipName(prog, "dispatch"))
	sq := mustFunc(t, prog, "("+snipName(prog, "square")+").area")
	ci := mustFunc(t, prog, "("+snipName(prog, "circle")+").area")
	if !hasEdge(g, disp, sq, EdgeDispatch) || !hasEdge(g, disp, ci, EdgeDispatch) {
		t.Errorf("dispatch: want dispatch edges to both area implementations, got %v", edgeKinds(g, disp))
	}
	if len(g.Out[disp]) != 2 {
		t.Errorf("dispatch has %d out edges, want exactly the 2 implementers: %v", len(g.Out[disp]), edgeKinds(g, disp))
	}
}

func TestCallGraphSCCs(t *testing.T) {
	prog := loadSnippet(t, cgSnippet)
	g := prog.CallGraph()

	even := mustFunc(t, prog, snipName(prog, "even"))
	odd := mustFunc(t, prog, snipName(prog, "odd"))
	direct := mustFunc(t, prog, snipName(prog, "direct"))
	helper := mustFunc(t, prog, snipName(prog, "helper"))
	self := mustFunc(t, prog, snipName(prog, "self"))

	if !g.InSameSCC(even, odd) {
		t.Error("even and odd are mutually recursive; want one SCC")
	}
	if g.InSameSCC(even, direct) {
		t.Error("even and direct must not share an SCC")
	}

	// Reverse topological order: every callee's SCC precedes its caller's.
	sccIndex := map[*FuncInfo]int{}
	for i, scc := range g.SCCs() {
		for _, fn := range scc {
			sccIndex[fn] = i
		}
	}
	if sccIndex[helper] >= sccIndex[direct] {
		t.Errorf("helper's SCC (%d) must precede direct's (%d): bottom-up solvers need callees first",
			sccIndex[helper], sccIndex[direct])
	}
	if sccIndex[even] != sccIndex[odd] {
		t.Errorf("even (%d) and odd (%d) must share an SCC index", sccIndex[even], sccIndex[odd])
	}
	_ = self // self-recursion is exercised by the solver test below
}

// TestSummarySolverConvergence runs the solver with a transitive-callee-set
// summary: over recursion the fixpoint must close the cycle (each member of
// a recursive SCC sees every other member in its own summary) and terminate.
func TestSummarySolverConvergence(t *testing.T) {
	prog := loadSnippet(t, cgSnippet)
	g := prog.CallGraph()

	computeCalls := 0
	solver := &SummarySolver[map[string]bool]{
		Graph:  g,
		Bottom: func() map[string]bool { return nil },
		Compute: func(fn *FuncInfo, get func(*FuncInfo) map[string]bool) map[string]bool {
			computeCalls++
			out := map[string]bool{}
			for _, e := range g.Out[fn] {
				if !callEdge(e.Kind) {
					continue
				}
				out[e.Callee.Name] = true
				for k := range get(e.Callee) {
					out[k] = true
				}
			}
			return out
		},
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	}
	sums := solver.Solve()

	even := mustFunc(t, prog, snipName(prog, "even"))
	odd := mustFunc(t, prog, snipName(prog, "odd"))
	self := mustFunc(t, prog, snipName(prog, "self"))

	// Mutual recursion: the transitive closure of each member contains both.
	for _, fn := range []*FuncInfo{even, odd} {
		s := sums[fn]
		if !s[even.Name] || !s[odd.Name] {
			t.Errorf("%s summary = %v, want both even and odd (cycle closed)", fn.Name, keysOf(s))
		}
	}
	// Self-recursion: the self-loop makes the function its own transitive
	// callee, which requires at least a second fixpoint round.
	if s := sums[self]; !s[self.Name] {
		t.Errorf("self summary = %v, want self itself (self-loop closed)", keysOf(s))
	}
	// Termination sanity: the rounds cap bounds Compute invocations.
	if max := len(g.Nodes) * (8 + 2*len(g.Nodes)); computeCalls > max {
		t.Errorf("solver ran Compute %d times, over the %d cap — fixpoint did not settle", computeCalls, max)
	}

	// Non-recursive nodes get exactly one Compute pass with final callee
	// summaries: direct's summary is helper alone.
	direct := mustFunc(t, prog, snipName(prog, "direct"))
	helper := mustFunc(t, prog, snipName(prog, "helper"))
	if s := sums[direct]; len(s) != 1 || !s[helper.Name] {
		t.Errorf("direct summary = %v, want exactly {helper}", keysOf(s))
	}
}

func keysOf(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
