// Intra-procedural control-flow graphs over go/ast function bodies.
//
// The syntactic analyzers of this package catch single-statement hazards;
// the remaining bug classes that threaten the simulator's determinism are
// flow-shaped (a lock released on some paths only, a defer registered once
// per loop iteration, map-iteration order leaking into a report). Those
// need a CFG. NewCFG builds one per function from pure syntax — no type
// information — so it is cheap, and the dataflow layer (dataflow.go) runs
// client transfer functions over it to a fixpoint.
//
// Shape of the graph:
//
//   - Blocks[0] is Entry, Blocks[1] is Exit. Every return, every call to a
//     terminating function (panic, os.Exit, log.Fatal*, runtime.Goexit) and
//     the fall-off-the-end of the body edge into Exit, so "every path to
//     function exit" is exactly "every path from Entry to Exit".
//   - A Block's Nodes are atomic units in execution order: simple
//     statements, plus the controlling expressions of compound statements
//     (an if condition, a range operand, a switch tag). Compound statement
//     bodies live in their own blocks, so walking a block's Nodes never
//     revisits a nested statement.
//   - Function literals are opaque: a FuncLit appearing in an expression is
//     part of that expression's node, and its body gets its own CFG via
//     ForEachFunc. Control flow never crosses a function boundary.
//   - defer is recorded both as an ordinary node (its arguments are
//     evaluated in sequence) and in CFG.Defers, since deferred calls run on
//     every exit path — normal or panicking — after their defer executes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// Block is one straight-line run of nodes with no internal control
// transfer.
type Block struct {
	Index int
	// Desc names the block's role ("entry", "if.then", "for.head", ...)
	// for tests and debugging.
	Desc string
	// Nodes are the block's atomic units in execution order: simple
	// statements and controlling expressions of compound statements.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

func (b *Block) String() string { return fmt.Sprintf("b%d(%s)", b.Index, b.Desc) }

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Fn is the *ast.FuncDecl or *ast.FuncLit the graph was built from.
	Fn     ast.Node
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists every defer statement of the function (not of nested
	// function literals), in source order.
	Defers []*ast.DeferStmt

	blockOf map[ast.Node]*Block
}

// BlockOf returns the block holding n, where n is a node the builder
// registered (a simple statement, a compound statement's header, or a
// controlling expression). Returns nil for nodes nested inside another
// block node.
func (g *CFG) BlockOf(n ast.Node) *Block { return g.blockOf[n] }

// BlockContaining returns the block owning the node whose source span
// covers pos, or nil. It resolves positions of expressions nested inside a
// block's atomic nodes.
func (g *CFG) BlockContaining(pos token.Pos) *Block {
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n.Pos() <= pos && pos < n.End() {
				return b
			}
		}
	}
	return nil
}

// ReachableFrom returns the set of blocks reachable from b, including b
// itself.
func (g *CFG) ReachableFrom(b *Block) map[*Block]bool {
	seen := map[*Block]bool{}
	var dfs func(*Block)
	dfs = func(x *Block) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, s := range x.Succs {
			dfs(s)
		}
	}
	dfs(b)
	return seen
}

// InLoop reports whether b lies on a cycle: whether b is reachable from one
// of its own successors. A defer or allocation in such a block executes an
// unbounded number of times.
func (g *CFG) InLoop(b *Block) bool {
	for _, s := range b.Succs {
		if g.ReachableFrom(s)[b] {
			return true
		}
	}
	return false
}

// NewCFG builds the control-flow graph of fn, which must be an
// *ast.FuncDecl or *ast.FuncLit. A declaration without a body (external
// linkage) yields the minimal entry→exit graph.
func NewCFG(fn ast.Node) *CFG {
	var body *ast.BlockStmt
	switch f := fn.(type) {
	case *ast.FuncDecl:
		body = f.Body
	case *ast.FuncLit:
		body = f.Body
	default:
		panic(fmt.Sprintf("analysis: NewCFG on %T, want *ast.FuncDecl or *ast.FuncLit", fn))
	}
	b := &cfgBuilder{
		g:      &CFG{Fn: fn, blockOf: map[ast.Node]*Block{}},
		labels: map[string]*labelInfo{},
	}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(b.g.Exit) // fall off the end
	b.wirePreds()
	return b.g
}

// ForEachFunc visits every function with a body in file — declarations and
// literals, in source order — and hands each to visit along with its CFG.
// Literals nested inside another function are visited separately; their
// statements belong only to their own graph.
func ForEachFunc(file *ast.File, visit func(fn ast.Node, body *ast.BlockStmt, g *CFG)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch f := n.(type) {
		case *ast.FuncDecl:
			if f.Body != nil {
				visit(f, f.Body, NewCFG(f))
			}
		case *ast.FuncLit:
			visit(f, f.Body, NewCFG(f))
		}
		return true
	})
}

// labelInfo tracks one label: its goto-target block (created on first
// reference, forward or backward) and, while its labeled statement is being
// built, the break/continue targets.
type labelInfo struct {
	target     *Block // start of the labeled statement
	breakTo    *Block
	continueTo *Block
}

// frame is one enclosing breakable construct (loop, switch, select) for
// resolving unlabeled break/continue.
type frame struct {
	breakTo    *Block
	continueTo *Block // nil for switch/select
}

type cfgBuilder struct {
	g      *CFG
	cur    *Block // nil while the current path is terminated
	labels map[string]*labelInfo
	frames []frame
	// pendingLabel carries a label down to the loop/switch statement it
	// annotates, so labeled break/continue resolve to that construct.
	pendingLabel *labelInfo
}

func (b *cfgBuilder) newBlock(desc string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Desc: desc}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// edge adds from→to.
func (b *cfgBuilder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// jump terminates the current path into to (no-op when already
// terminated; a nil target — e.g. a labeled break whose label annotates a
// non-loop statement — just terminates the path).
func (b *cfgBuilder) jump(to *Block) {
	if b.cur != nil && to != nil {
		b.edge(b.cur, to)
	}
	b.cur = nil
}

// startBlock makes blk current, assuming the previous path was terminated
// or should fall through into it.
func (b *cfgBuilder) startBlock(blk *Block) {
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
}

// add appends an atomic node to the current block, creating an unreachable
// block when the path was terminated (code after return/panic still gets a
// home so BlockOf works; it simply has no predecessors).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.g.blockOf[n] = b.cur
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// labelFor returns (creating if needed) the info for a label name.
func (b *cfgBuilder) labelFor(name string) *labelInfo {
	li, ok := b.labels[name]
	if !ok {
		li = &labelInfo{target: b.newBlock("label." + name)}
		b.labels[name] = li
	}
	return li
}

// pushFrame registers a breakable construct, attaching any pending label.
func (b *cfgBuilder) pushFrame(breakTo, continueTo *Block) {
	b.frames = append(b.frames, frame{breakTo: breakTo, continueTo: continueTo})
	if b.pendingLabel != nil {
		b.pendingLabel.breakTo = breakTo
		b.pendingLabel.continueTo = continueTo
		b.pendingLabel = nil
	}
}

func (b *cfgBuilder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

// stmt threads one statement through the graph.
func (b *cfgBuilder) stmt(s ast.Stmt) {
	// Any statement other than the one a label annotates clears the
	// pending label.
	if _, ok := s.(*ast.LabeledStmt); !ok {
		defer func() { b.pendingLabel = nil }()
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		li := b.labelFor(s.Label.Name)
		b.startBlock(li.target)
		b.pendingLabel = li
		b.stmt(s.Stmt)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminatingCall(call) {
			b.jump(b.g.Exit)
		}

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s, s.Body, false)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s, s.Body, false)

	case *ast.SelectStmt:
		b.switchBody(s, s.Body, true)

	default:
		// AssignStmt, DeclStmt, GoStmt, IncDecStmt, SendStmt, EmptyStmt.
		b.add(s)
	}
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.GOTO:
		b.jump(b.labelFor(s.Label.Name).target)
	case token.BREAK:
		if s.Label != nil {
			b.jump(b.labelFor(s.Label.Name).breakTo)
			return
		}
		if n := len(b.frames); n > 0 {
			b.jump(b.frames[n-1].breakTo)
			return
		}
		b.cur = nil // stray break: terminate defensively
	case token.CONTINUE:
		if s.Label != nil {
			b.jump(b.labelFor(s.Label.Name).continueTo)
			return
		}
		for i := len(b.frames) - 1; i >= 0; i-- {
			if b.frames[i].continueTo != nil {
				b.jump(b.frames[i].continueTo)
				return
			}
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled by switchBody via clause ordering; the node is recorded,
		// and the fall-through edge is added there.
	}
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	b.g.blockOf[s] = b.cur
	cond := b.cur
	after := b.newBlock("if.after")

	then := b.newBlock("if.then")
	b.edge(cond, then)
	b.cur = then
	b.stmtList(s.Body.List)
	b.jump(after)

	if s.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		b.jump(after)
	} else {
		b.edge(cond, after)
	}
	b.cur = after
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.newBlock("for.head")
	b.startBlock(head)
	if s.Cond != nil {
		b.add(s.Cond)
	}
	b.g.blockOf[s] = head
	after := b.newBlock("for.after")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}

	body := b.newBlock("for.body")
	b.edge(head, body)
	if s.Cond != nil {
		// A conditional loop may be skipped entirely.
		b.edge(head, after)
	}
	b.pushFrame(after, post)
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(post)
	b.popFrame()

	if s.Post != nil {
		b.cur = post
		b.stmt(s.Post)
		b.jump(head)
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	head := b.newBlock("range.head")
	b.startBlock(head)
	b.add(s.X)
	b.g.blockOf[s] = head
	after := b.newBlock("range.after")
	body := b.newBlock("range.body")
	b.edge(head, body)
	b.edge(head, after) // empty collection

	b.pushFrame(after, head)
	b.cur = body
	b.stmtList(s.Body.List)
	b.jump(head)
	b.popFrame()
	b.cur = after
}

// switchBody builds the clause blocks of a switch, type switch or select.
// For switches, a missing default adds a head→after edge and fallthrough
// chains a case body into the next clause's body.
func (b *cfgBuilder) switchBody(owner ast.Stmt, body *ast.BlockStmt, isSelect bool) {
	head := b.cur
	if head == nil {
		head = b.newBlock("switch.head")
		b.cur = head
	}
	b.g.blockOf[owner] = head
	after := b.newBlock("switch.after")
	b.pushFrame(after, nil)

	type clause struct {
		blk   *Block
		stmts []ast.Stmt
		hasFT bool // body ends in fallthrough
	}
	var clauses []clause
	hasDefault := false
	for _, cs := range body.List {
		var list []ast.Stmt
		var exprs []ast.Expr
		switch c := cs.(type) {
		case *ast.CaseClause:
			list, exprs = c.Body, c.List
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			list = c.Body
			if c.Comm == nil {
				hasDefault = true
			} else {
				list = append([]ast.Stmt{c.Comm}, list...)
			}
		}
		blk := b.newBlock("case")
		b.edge(head, blk)
		// Case guard expressions are evaluated against the tag in the
		// clause's block.
		b.cur = blk
		for _, e := range exprs {
			b.add(e)
		}
		ft := false
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				ft = true
			}
		}
		clauses = append(clauses, clause{blk: blk, stmts: list, hasFT: ft})
		b.cur = nil
	}
	if !hasDefault && !isSelect {
		// No case matched: execution continues after the switch. A select
		// without default blocks until some case is runnable, so it gets no
		// such edge.
		b.edge(head, after)
	}

	for i, c := range clauses {
		b.cur = c.blk
		b.stmtList(c.stmts)
		if c.hasFT && i+1 < len(clauses) {
			b.jump(clauses[i+1].blk)
		} else {
			b.jump(after)
		}
	}
	b.popFrame()
	b.cur = after
}

// isTerminatingCall reports whether a call never returns, syntactically:
// the builtin panic, os.Exit, runtime.Goexit, and the log.Fatal family.
// Shadowed names are misdetected; acceptable for lint precision.
func isTerminatingCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		case pkg.Name == "log" && (fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln" ||
			fun.Sel.Name == "Panic" || fun.Sel.Name == "Panicf" || fun.Sel.Name == "Panicln"):
			return true
		}
	}
	return false
}

// wirePreds fills in predecessor lists (and dedupes duplicate edges) once
// construction is done.
func (b *cfgBuilder) wirePreds() {
	for _, blk := range b.g.Blocks {
		seen := map[*Block]bool{}
		uniq := blk.Succs[:0]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				uniq = append(uniq, s)
			}
		}
		blk.Succs = uniq
	}
	for _, blk := range b.g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
}
