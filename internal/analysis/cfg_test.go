package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildCFG parses a single function body and returns its CFG.
func buildCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return NewCFG(fn)
}

// blockByDesc returns the first block with the given description.
func blockByDesc(t *testing.T, g *CFG, desc string) *Block {
	t.Helper()
	for _, b := range g.Blocks {
		if b.Desc == desc {
			return b
		}
	}
	t.Fatalf("no block %q in %v", desc, g.Blocks)
	return nil
}

func TestCFGStraightLine(t *testing.T) {
	g := buildCFG(t, "x := 1\n_ = x")
	if len(g.Entry.Nodes) != 2 {
		t.Errorf("entry holds %d nodes, want 2", len(g.Entry.Nodes))
	}
	if !g.ReachableFrom(g.Entry)[g.Exit] {
		t.Error("exit unreachable from entry")
	}
	if g.InLoop(g.Entry) {
		t.Error("straight-line entry reported as in a loop")
	}
}

func TestCFGBranch(t *testing.T) {
	g := buildCFG(t, `
	x := 0
	if x > 0 {
		x = 1
	} else {
		x = 2
	}
	_ = x`)
	then := blockByDesc(t, g, "if.then")
	els := blockByDesc(t, g, "if.else")
	after := blockByDesc(t, g, "if.after")
	reach := g.ReachableFrom(g.Entry)
	for _, b := range []*Block{then, els, after, g.Exit} {
		if !reach[b] {
			t.Errorf("%v unreachable from entry", b)
		}
	}
	// Both arms must flow into the join block.
	if len(after.Preds) != 2 {
		t.Errorf("if.after has %d preds, want 2 (then+else)", len(after.Preds))
	}
}

func TestCFGIfWithoutElse(t *testing.T) {
	g := buildCFG(t, `
	x := 0
	if x > 0 {
		x = 1
	}
	_ = x`)
	after := blockByDesc(t, g, "if.after")
	// Condition-false path and then-arm both reach the join.
	if len(after.Preds) != 2 {
		t.Errorf("if.after has %d preds, want 2 (cond+then)", len(after.Preds))
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	g := buildCFG(t, `
	for i := 0; i < 10; i++ {
		_ = i
	}`)
	body := blockByDesc(t, g, "for.body")
	head := blockByDesc(t, g, "for.head")
	if !g.InLoop(body) {
		t.Error("for.body not detected as in a loop")
	}
	if !g.InLoop(head) {
		t.Error("for.head not detected as in a loop")
	}
	after := blockByDesc(t, g, "for.after")
	if g.InLoop(after) {
		t.Error("for.after wrongly in a loop")
	}
	if !g.ReachableFrom(g.Entry)[g.Exit] {
		t.Error("exit unreachable (loop may exit)")
	}
}

func TestCFGInfiniteLoopUnreachableExit(t *testing.T) {
	g := buildCFG(t, `
	for {
		_ = 1
	}
	println("after")`)
	if g.ReachableFrom(g.Entry)[g.Exit] {
		t.Error("exit reachable through a condition-less for with no break")
	}
	if !g.InLoop(blockByDesc(t, g, "for.body")) {
		t.Error("infinite loop body not in a loop")
	}
}

func TestCFGLoopBreakReachesExit(t *testing.T) {
	g := buildCFG(t, `
	for {
		break
	}
	println("after")`)
	if !g.ReachableFrom(g.Entry)[g.Exit] {
		t.Error("break does not reach code after an infinite loop")
	}
}

func TestCFGRange(t *testing.T) {
	g := buildCFG(t, `
	m := map[int]int{}
	for k := range m {
		_ = k
	}`)
	body := blockByDesc(t, g, "range.body")
	if !g.InLoop(body) {
		t.Error("range body not in a loop")
	}
	after := blockByDesc(t, g, "range.after")
	if g.InLoop(after) {
		t.Error("range.after wrongly in a loop")
	}
}

func TestCFGReturnTerminates(t *testing.T) {
	g := buildCFG(t, `
	x := 1
	if x > 0 {
		return
	}
	_ = x`)
	// The statement after the if must be reachable only via the
	// condition-false path, and the return must edge into Exit.
	then := blockByDesc(t, g, "if.then")
	found := false
	for _, s := range then.Succs {
		if s == g.Exit {
			found = true
		}
	}
	if !found {
		t.Error("return block does not edge into Exit")
	}
	after := blockByDesc(t, g, "if.after")
	if len(after.Preds) != 1 {
		t.Errorf("statement after early return has %d preds, want 1", len(after.Preds))
	}
}

func TestCFGPanicTerminatesPath(t *testing.T) {
	g := buildCFG(t, `
	x := 1
	if x > 0 {
		panic("boom")
	}
	_ = x`)
	then := blockByDesc(t, g, "if.then")
	edgesExit := false
	for _, s := range then.Succs {
		if s == g.Exit {
			edgesExit = true
		}
	}
	if !edgesExit {
		t.Error("panic block does not edge into Exit")
	}
	if len(then.Succs) != 1 {
		t.Errorf("panic block has %d succs, want only Exit", len(then.Succs))
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	g := buildCFG(t, `
	return
	println("dead")`)
	reach := g.ReachableFrom(g.Entry)
	dead := blockByDesc(t, g, "unreachable")
	if reach[dead] {
		t.Error("code after unconditional return reported reachable")
	}
}

func TestCFGDefersRecorded(t *testing.T) {
	g := buildCFG(t, `
	defer println("a")
	for i := 0; i < 3; i++ {
		defer println("b")
	}`)
	if len(g.Defers) != 2 {
		t.Fatalf("recorded %d defers, want 2", len(g.Defers))
	}
	if b := g.BlockOf(g.Defers[0]); b == nil || g.InLoop(b) {
		t.Errorf("top-level defer block %v should exist outside any loop", b)
	}
	if b := g.BlockOf(g.Defers[1]); b == nil || !g.InLoop(b) {
		t.Errorf("loop-body defer block %v should be in a loop", b)
	}
}

func TestCFGFuncLitIsOpaque(t *testing.T) {
	g := buildCFG(t, `
	f := func() {
		for {
			defer println("x")
		}
	}
	f()`)
	if len(g.Defers) != 0 {
		t.Errorf("outer CFG recorded %d defers from a nested literal, want 0", len(g.Defers))
	}
	for _, b := range g.Blocks {
		if strings.HasPrefix(b.Desc, "for") {
			t.Errorf("outer CFG grew loop block %v from a nested literal", b)
		}
	}
}

func TestCFGGoto(t *testing.T) {
	g := buildCFG(t, `
	i := 0
loop:
	i++
	if i < 10 {
		goto loop
	}`)
	lbl := blockByDesc(t, g, "label.loop")
	if !g.InLoop(lbl) {
		t.Error("goto back-edge not detected as a loop")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildCFG(t, `
	x := 1
	switch x {
	case 1:
		x = 10
		fallthrough
	case 2:
		x = 20
	default:
		x = 30
	}
	_ = x`)
	// Three clause blocks, all reachable; the first falls through into the
	// second.
	var cases []*Block
	for _, b := range g.Blocks {
		if b.Desc == "case" {
			cases = append(cases, b)
		}
	}
	if len(cases) != 3 {
		t.Fatalf("found %d case blocks, want 3", len(cases))
	}
	ft := false
	for _, s := range cases[0].Succs {
		if s == cases[1] {
			ft = true
		}
	}
	if !ft {
		t.Error("fallthrough edge from case 1 to case 2 missing")
	}
	reach := g.ReachableFrom(g.Entry)
	for i, c := range cases {
		if !reach[c] {
			t.Errorf("case %d unreachable", i)
		}
	}
}

func TestCFGSelect(t *testing.T) {
	g := buildCFG(t, `
	ch := make(chan int)
	select {
	case v := <-ch:
		_ = v
	case ch <- 1:
	}
	println("after")`)
	after := blockByDesc(t, g, "switch.after")
	// A select without default only proceeds through a case: both cases
	// (and nothing else) feed the after block.
	if len(after.Preds) != 2 {
		t.Errorf("select after-block has %d preds, want 2 (one per case)", len(after.Preds))
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := buildCFG(t, `
outer:
	for {
		for {
			break outer
		}
	}
	println("after")`)
	if !g.ReachableFrom(g.Entry)[g.Exit] {
		t.Error("labeled break out of nested infinite loops does not reach exit")
	}
}

// TestForwardSolveReachingAssignments runs a small reaching-facts problem —
// "which println-ed strings may have been executed before this block" — and
// checks branch, loop and panic behavior of the solver.
func TestForwardSolveReachingAssignments(t *testing.T) {
	g := buildCFG(t, `
	println("a")
	x := 0
	if x > 0 {
		println("b")
		panic("dead end")
	}
	for i := 0; i < 3; i++ {
		println("c")
	}
	println("d")`)

	lits := func(b *Block) []string {
		var out []string
		for _, n := range b.Nodes {
			ast.Inspect(n, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "println" {
						if bl, ok := c.Args[0].(*ast.BasicLit); ok {
							out = append(out, strings.Trim(bl.Value, `"`))
						}
					}
				}
				return true
			})
		}
		return out
	}

	spec := FlowSpec[map[string]bool]{
		Entry:  map[string]bool{},
		Bottom: func() map[string]bool { return map[string]bool{} },
		Clone: func(f map[string]bool) map[string]bool {
			c := make(map[string]bool, len(f))
			for k := range f {
				c[k] = true
			}
			return c
		},
		Join: func(dst, src map[string]bool) map[string]bool {
			for k := range src {
				dst[k] = true
			}
			return dst
		},
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: func(b *Block, in map[string]bool) map[string]bool {
			for _, s := range lits(b) {
				in[s] = true
			}
			return in
		},
	}
	facts := ForwardSolve(g, spec)

	atExit := facts.In[g.Exit]
	// "a" always executes; "b" reaches exit via the panic edge; "c" may
	// have executed through the loop; "d" reaches exit on the normal path.
	for _, want := range []string{"a", "b", "c", "d"} {
		if !atExit[want] {
			t.Errorf("fact %q missing at exit: %v", want, atExit)
		}
	}

	// At the loop head, "d" has not executed yet.
	head := blockByDesc(t, g, "for.head")
	if facts.In[head]["d"] {
		t.Error(`"d" reported as reaching the loop head`)
	}
	if !facts.In[head]["a"] {
		t.Error(`"a" missing at the loop head`)
	}
}

func TestBlockContaining(t *testing.T) {
	g := buildCFG(t, `
	x := 1
	if x > 0 {
		x = 2
	}`)
	then := blockByDesc(t, g, "if.then")
	if len(then.Nodes) != 1 {
		t.Fatalf("then block has %d nodes, want 1", len(then.Nodes))
	}
	pos := then.Nodes[0].Pos()
	if got := g.BlockContaining(pos); got != then {
		t.Errorf("BlockContaining(%v) = %v, want %v", pos, got, then)
	}
}
