package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ChanMisuse flags three channel patterns that deadlock, panic, or burn a
// core at runtime without ever failing a type check:
//
//   - a send on a channel that never escapes the program's visible uses
//     and has no receive anywhere: the send blocks forever (or, buffered,
//     silently drops the value into a channel nobody drains);
//   - a channel closed at more than one site, or closed inside a loop:
//     the second close panics;
//   - a select with a default case inside a loop whose default body
//     neither blocks, breaks, nor calls anything: a busy-spin that pins a
//     worker while it polls.
//
// The checks are deliberately object-local: a channel that is passed to
// another function, returned, or stored is considered escaped and exempt
// (its protocol can't be judged from the uses in view).
var ChanMisuse = &Analyzer{
	Name:       "chanmisuse",
	Doc:        "channel protocol hazards: send with no receiver, double-close candidates, busy-spin select",
	Severity:   "warn",
	RunProgram: runChanMisuse,
}

// chanUse aggregates the visible uses of one channel variable.
type chanUse struct {
	obj      *types.Var
	sends    []token.Pos
	recvs    int
	closes   []token.Pos
	closeIn  []bool // closes[i] is inside a loop
	assigns  int    // fresh-channel bindings (declaration or = make(chan ...))
	escaped  bool
	firstUse token.Pos
}

func runChanMisuse(prog *Program) {
	uses := map[*types.Var]*chanUse{}
	rec := func(obj *types.Var, pos token.Pos) *chanUse {
		u := uses[obj]
		if u == nil {
			u = &chanUse{obj: obj, firstUse: pos}
			uses[obj] = u
		}
		return u
	}
	for _, fn := range prog.Funcs() {
		collectChanUses(prog, fn, rec)
		checkSelectSpin(prog, fn)
	}

	var objs []*types.Var
	for obj := range uses {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		u := uses[obj]
		if !u.escaped && len(u.sends) > 0 && u.recvs == 0 {
			prog.Reportf(u.sends[0], "chanmisuse",
				"send on %s but no receive anywhere in the program; the send blocks forever or the value is never drained", obj.Name())
		}
		// Double-close judgments need a single channel incarnation: a var
		// rebound with a fresh make between closes is fine.
		if u.assigns <= 1 {
			if len(u.closes) >= 2 {
				prog.Reportf(u.closes[1], "chanmisuse",
					"%s is closed at multiple sites; the second close panics", obj.Name())
			} else if len(u.closes) == 1 && u.closeIn[0] {
				prog.Reportf(u.closes[0], "chanmisuse",
					"%s is closed inside a loop; the second iteration panics", obj.Name())
			}
		}
	}
}

// chanVarOf resolves an expression to the channel-typed variable it names
// (a local, package var, or struct field), nil otherwise.
func chanVarOf(info *types.Info, e ast.Expr) *types.Var {
	id := rightmostVarIdent(info, e)
	if id == nil {
		return nil
	}
	v, ok := objOf(info, id).(*types.Var)
	if !ok {
		return nil
	}
	if _, isChan := v.Type().Underlying().(*types.Chan); !isChan {
		return nil
	}
	return v
}

// collectChanUses classifies every use of a channel variable in fn's body.
// Uses not recognized as send/receive/close/range/len/cap/fresh-binding
// mark the channel escaped.
func collectChanUses(prog *Program, fn *FuncInfo, rec func(*types.Var, token.Pos) *chanUse) {
	info := fn.Pkg.Info
	body := fn.Body()

	// Pass 1: mark the identifiers consumed by recognized channel
	// operations.
	handled := map[*ast.Ident]bool{}
	markOp := func(e ast.Expr) *ast.Ident {
		if chanVarOf(info, e) == nil {
			return nil
		}
		id := rightmostVarIdent(info, e)
		handled[id] = true
		return id
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			if id := markOp(x.Chan); id != nil {
				u := rec(chanVarOf(info, x.Chan), id.Pos())
				u.sends = append(u.sends, x.Arrow)
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if id := markOp(x.X); id != nil {
					rec(chanVarOf(info, x.X), id.Pos()).recvs++
				}
			}
		case *ast.RangeStmt:
			if id := markOp(x.X); id != nil {
				rec(chanVarOf(info, x.X), id.Pos()).recvs++
			}
		case *ast.CallExpr:
			fnID, ok := ast.Unparen(x.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if b, isB := objOf(info, fnID).(*types.Builtin); isB {
				switch b.Name() {
				case "close":
					if len(x.Args) == 1 {
						if id := markOp(x.Args[0]); id != nil {
							u := rec(chanVarOf(info, x.Args[0]), id.Pos())
							u.closes = append(u.closes, x.Pos())
							u.closeIn = append(u.closeIn, inLoopAt(fn, x.Pos()))
						}
					}
				case "len", "cap":
					if len(x.Args) == 1 {
						markOp(x.Args[0])
					}
				}
			}
		case *ast.AssignStmt:
			// ch := make(chan T) / ch = make(chan T): a fresh binding, not
			// an escape. Any other assignment touching the var (aliasing in
			// or out) is an escape, handled by pass 2.
			for i, lhs := range x.Lhs {
				v := chanVarOf(info, lhs)
				if v == nil {
					continue
				}
				rhs := ast.Expr(nil)
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				}
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
					if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
						if b, isB := objOf(info, fid).(*types.Builtin); isB && b.Name() == "make" {
							id := rightmostVarIdent(info, lhs)
							handled[id] = true
							rec(v, id.Pos()).assigns++
						}
					}
				}
			}
		}
		return true
	})

	// Pass 2: any remaining use of a channel variable is an escape.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || handled[id] {
			return true
		}
		if def, ok := info.Defs[id].(*types.Var); ok {
			if _, isChan := def.Type().Underlying().(*types.Chan); isChan {
				rec(def, id.Pos()).assigns++
			}
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if _, isChan := v.Type().Underlying().(*types.Chan); !isChan {
			return true
		}
		rec(v, id.Pos()).escaped = true
		return true
	})
}

// checkSelectSpin reports selects with a default clause inside a loop
// whose default body does nothing that would yield: no call, no channel
// operation, no return, and no break — a busy poll.
func checkSelectSpin(prog *Program, fn *FuncInfo) {
	var walk func(n ast.Node, loop bool)
	walk = func(n ast.Node, loop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m == n {
				return true
			}
			switch x := m.(type) {
			case *ast.FuncLit:
				return false // its own FuncInfo: visited separately
			case *ast.ForStmt:
				walk(x.Body, true)
				return false
			case *ast.RangeStmt:
				walk(x.Body, true)
				return false
			case *ast.SelectStmt:
				if loop {
					for _, c := range x.Body.List {
						cc := c.(*ast.CommClause)
						if cc.Comm == nil && !defaultYields(cc.Body) {
							prog.Reportf(x.Pos(), "chanmisuse",
								"select with default inside a loop busy-spins when no case is ready; block, sleep, or break in the default")
						}
					}
				}
				walk(x.Body, loop)
				return false
			}
			return true
		})
	}
	walk(fn.Body(), false)
}

// defaultYields reports whether the default clause's body contains
// something that stops the spin: a call (it may block, sleep, or at least
// do work), a channel operation, a return, or a break/goto out of the
// loop.
func defaultYields(body []ast.Stmt) bool {
	yields := false
	for _, s := range body {
		ast.Inspect(s, func(n ast.Node) bool {
			if yields {
				return false
			}
			switch x := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr, *ast.SendStmt, *ast.ReturnStmt:
				yields = true
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					yields = true
				}
			case *ast.BranchStmt:
				if x.Tok == token.BREAK || x.Tok == token.GOTO {
					yields = true
				}
			}
			return true
		})
	}
	return yields
}
