package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// cloneMethodNames are the snapshot-contract methods whose whole job is to
// account for every receiver field.
var cloneMethodNames = map[string]bool{
	"Clone":    true,
	"Snapshot": true,
	"Restore":  true,
}

// recvStruct resolves a method receiver to its named struct type, seeing
// through one level of pointer. It returns nil for non-struct receivers.
func recvStruct(pass *Pass, recv *ast.FieldList) *types.Struct {
	if recv == nil || len(recv.List) != 1 {
		return nil
	}
	tv, ok := pass.Info.Types[recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	return st
}

// CloneFields flags Clone/Snapshot/Restore methods on struct receivers that
// never reference one or more receiver fields. Those methods exist to
// account for every field — a field a Clone never mentions is state the copy
// silently shares with (or drops from) its parent, which breaks the
// simulator's snapshot contract in ways only long equivalence runs catch.
//
// A whole-struct copy (n := *c, or a bare use of a value receiver) counts as
// referencing every field; composite-literal field keys and selector
// accesses through any value — receiver or local copy — count as
// referencing the named field. Fields that are deliberately derived or
// rebuilt elsewhere can be suppressed with //mctlint:ignore clonefields and
// a reason.
var CloneFields = &Analyzer{
	Name: "clonefields",
	Doc:  "Clone/Snapshot/Restore methods must reference every receiver field (or suppress with a reason)",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !cloneMethodNames[fn.Name.Name] {
					continue
				}
				st := recvStruct(pass, fn.Recv)
				if st == nil || st.NumFields() == 0 {
					continue
				}
				fields := map[*types.Var]bool{}
				for i := 0; i < st.NumFields(); i++ {
					fields[st.Field(i)] = false
				}
				var recvObj types.Object
				if names := fn.Recv.List[0].Names; len(names) == 1 && names[0].Name != "_" {
					recvObj = pass.Info.Defs[names[0]]
				}

				// selBase holds identifiers appearing as the x of an x.f
				// selector: those uses read a single field, not the whole
				// receiver.
				selBase := map[*ast.Ident]bool{}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					if sel, ok := n.(*ast.SelectorExpr); ok {
						if id, ok := sel.X.(*ast.Ident); ok {
							selBase[id] = true
						}
					}
					return true
				})

				whole := false
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					// Field references: selector idents (x.field) and keyed
					// composite-literal fields (T{field: ...}) both resolve
					// to the field object in Info.Uses.
					if obj, isVar := pass.Info.Uses[id].(*types.Var); isVar {
						if _, isField := fields[obj]; isField {
							fields[obj] = true
							return true
						}
					}
					// A use of the receiver outside a selector base copies or
					// hands off the whole value (n := *c, return c, f(c)) and
					// accounts for every field at once.
					if recvObj != nil && pass.Info.Uses[id] == recvObj && !selBase[id] {
						whole = true
					}
					return true
				})
				if whole {
					continue
				}

				var missing []string
				for v, seen := range fields {
					if !seen {
						missing = append(missing, v.Name())
					}
				}
				if len(missing) == 0 {
					continue
				}
				sort.Strings(missing)
				pass.Reportf(fn.Name.Pos(), "clonefields",
					"%s on %s never references receiver field(s) %s: unreferenced state is silently shared or dropped by the copy",
					fn.Name.Name, typeName(pass, fn.Recv), strings.Join(missing, ", "))
			}
		}
	},
}

// typeName renders the receiver type for diagnostics (pointer elided).
func typeName(pass *Pass, recv *ast.FieldList) string {
	tv, ok := pass.Info.Types[recv.List[0].Type]
	if !ok {
		return "receiver"
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
