package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// CtxFirst enforces the module's context conventions, introduced with the
// parallel evaluation engine: a context.Context parameter is always the
// first parameter and is named ctx (blank _ is allowed for intentionally
// unused contexts), and internal/ packages never mint their own root
// contexts with context.Background or context.TODO — a fresh context there
// cuts the caller's cancellation chain, so ctrl-C would no longer reach the
// evaluation loops. Root contexts belong in package main and the public
// facade's compatibility wrappers.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context parameters come first and are named ctx; internal/ packages accept contexts instead of minting them with Background/TODO",
	Run: func(pass *Pass) {
		internal := strings.Contains("/"+pass.PkgPath+"/", "/internal/")
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.FuncType:
					checkCtxParams(pass, node)
				case *ast.CallExpr:
					if !internal {
						return true
					}
					sel, ok := node.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
					if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
						return true
					}
					if name := fn.Name(); name == "Background" || name == "TODO" {
						pass.Reportf(node.Pos(), "ctxfirst",
							"context.%s mints a fresh context inside internal/, cutting the caller's cancellation chain; accept a ctx parameter instead", name)
					}
				}
				return true
			})
		}
	},
}

// checkCtxParams reports context.Context parameters that are not in the
// leading position or carry a name other than ctx/_. It runs on every
// ast.FuncType, which covers declarations, literals, interface methods and
// function type declarations alike.
func checkCtxParams(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		isCtx := ok && isContextType(tv.Type)
		if isCtx {
			if pos != 0 {
				pass.Reportf(field.Pos(), "ctxfirst",
					"context.Context parameter is not first; move it to the front of the signature")
			}
			for _, name := range field.Names {
				if name.Name != "ctx" && name.Name != "_" {
					pass.Reportf(name.Pos(), "ctxfirst",
						"context.Context parameter named %q; name it ctx", name.Name)
				}
			}
		}
		if n := len(field.Names); n > 0 {
			pos += n
		} else {
			pos++
		}
	}
}
