package analysis

import (
	"go/ast"
	"go/types"
)

// narrowTarget lists integer conversion targets that cannot represent every
// uint64 (or, for the small ones, every int64) value on a 64-bit platform.
func narrowTarget(k types.BasicKind) (bits int, signed bool, ok bool) {
	switch k {
	case types.Int8:
		return 8, true, true
	case types.Int16:
		return 16, true, true
	case types.Int32:
		return 32, true, true
	case types.Int, types.Int64:
		return 64, true, true
	case types.Uint8:
		return 8, false, true
	case types.Uint16:
		return 16, false, true
	case types.Uint32:
		return 32, false, true
	case types.Uint, types.Uint64, types.Uintptr:
		return 64, false, true
	}
	return 0, false, false
}

// CycleCast flags narrowing conversions of 64-bit counters — e.g.
// int(uint64Expr) or int32(int64Expr) — which overflow silently once a long
// simulation's cycle/access counters pass 2³¹ or 2⁶³. Clamp explicitly and
// suppress with the justification, or keep the wide type.
var CycleCast = &Analyzer{
	Name: "cyclecast",
	Doc:  "no narrowing conversions of uint64/int64 counters (e.g. int(uint64Expr)); clamp and justify, or stay wide",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				funTV, ok := pass.Info.Types[call.Fun]
				if !ok || !funTV.IsType() {
					return true
				}
				dst, ok := funTV.Type.Underlying().(*types.Basic)
				if !ok {
					return true
				}
				argTV, ok := pass.Info.Types[call.Args[0]]
				if !ok || argTV.Value != nil {
					return true // constant conversions are checked at compile time
				}
				src, ok := argTV.Type.Underlying().(*types.Basic)
				if !ok {
					return true
				}
				bits, signed, ok := narrowTarget(dst.Kind())
				if !ok {
					return true
				}
				var narrowing bool
				switch src.Kind() {
				case types.Uint64, types.Uint, types.Uintptr:
					// Any signed target halves the range; unsigned targets
					// below 64 bits truncate.
					narrowing = signed || bits < 64
				case types.Int64:
					// Signed targets below 64 bits truncate; unsigned
					// targets wrap negatives.
					narrowing = (signed && bits < 64) || !signed
				case types.Int:
					// int→uint* is the ubiquitous non-negative loop-counter
					// idiom and stays allowed; narrower signed targets
					// truncate.
					narrowing = signed && bits < 64
				}
				if !narrowing {
					return true
				}
				pass.Reportf(call.Pos(), "cyclecast",
					"narrowing conversion %s(%s) overflows silently on long simulations; clamp and justify, or keep the wide type",
					types.TypeString(funTV.Type, types.RelativeTo(pass.Pkg)),
					types.TypeString(argTV.Type, types.RelativeTo(pass.Pkg)))
				return true
			})
		}
	},
}
