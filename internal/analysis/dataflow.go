// A generic forward dataflow solver over the CFGs of cfg.go.
//
// Clients describe their lattice with FlowSpec: an entry fact, a join
// (which must be monotone — joining can only grow facts toward a fixpoint)
// and a transfer function applying one block's effect. ForwardSolve
// iterates a worklist in reverse post-order until block-entry facts stop
// changing and returns the entry and exit fact of every block.
//
// The framework is deliberately small: the analyzers it serves (lockbalance,
// maprange) need may-analyses over finite fact domains (sets of held locks,
// reaching definitions), for which union joins converge in O(blocks ×
// domain) iterations. A safety cap guards against a non-monotone client.
package analysis

// FlowSpec describes one forward dataflow problem with facts of type F.
type FlowSpec[F any] struct {
	// Entry is the fact at function entry.
	Entry F
	// Bottom returns the identity element of Join, the initial fact of
	// every non-entry block.
	Bottom func() F
	// Clone returns an independent copy of a fact; transfer functions may
	// mutate their input freely.
	Clone func(F) F
	// Join merges src into dst and returns the result. It must be monotone
	// and may mutate dst.
	Join func(dst, src F) F
	// Equal reports whether two facts are equal (fixpoint detection).
	Equal func(a, b F) bool
	// Transfer applies block b's effect to the entry fact in, returning the
	// exit fact. It may mutate in.
	Transfer func(b *Block, in F) F
}

// FlowFacts holds the solved entry/exit facts per block.
type FlowFacts[F any] struct {
	In  map[*Block]F
	Out map[*Block]F
}

// ForwardSolve runs the problem to a fixpoint over g and returns the facts.
// Blocks unreachable from Entry keep Bottom facts.
func ForwardSolve[F any](g *CFG, spec FlowSpec[F]) FlowFacts[F] {
	in := make(map[*Block]F, len(g.Blocks))
	out := make(map[*Block]F, len(g.Blocks))
	for _, b := range g.Blocks {
		in[b] = spec.Bottom()
		out[b] = spec.Bottom()
	}
	in[g.Entry] = spec.Clone(spec.Entry)

	queued := make([]bool, len(g.Blocks))
	var work []*Block
	for _, b := range g.ReversePostorder() {
		work = append(work, b)
		queued[b.Index] = true
	}

	// Safety cap: a monotone problem over a finite domain terminates long
	// before this; a buggy client terminates here instead of hanging the
	// lint run.
	budget := 64 * (len(g.Blocks) + 1) * (len(g.Blocks) + 1)
	for len(work) > 0 && budget > 0 {
		budget--
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		fact := spec.Clone(in[b])
		if b != g.Entry {
			for _, p := range b.Preds {
				fact = spec.Join(fact, out[p])
			}
		}
		newOut := spec.Transfer(b, spec.Clone(fact))
		in[b] = fact
		if spec.Equal(newOut, out[b]) {
			continue
		}
		out[b] = newOut
		for _, s := range b.Succs {
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	return FlowFacts[F]{In: in, Out: out}
}

// ReversePostorder returns the blocks reachable from Entry in reverse
// post-order — the iteration order that lets forward problems converge in
// few passes.
func (g *CFG) ReversePostorder() []*Block {
	var post []*Block
	seen := map[*Block]bool{}
	var dfs func(*Block)
	dfs = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			dfs(s)
		}
		post = append(post, b)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
