package analysis

import (
	"go/ast"
	"go/types"
)

// DeferLoop reports defer statements whose block lies on a CFG cycle.
// Deferred calls run at function exit, not iteration end, so a
// per-iteration resource release written as `defer f.Close()` inside a
// loop accumulates one pending call (and one held resource) per iteration
// — on a sweep over thousands of configurations that is a file-descriptor
// or lock exhaustion, not a cleanup.
//
// A defer inside a function literal that is itself inside a loop is fine:
// the literal's body is its own function, so the defer runs when each
// invocation returns. The CFG makes that distinction structural — the
// literal's blocks belong to a different graph — and catches loops built
// from `goto` as well as for/range.
var DeferLoop = &Analyzer{
	Name: "deferloop",
	Doc:  "no defer inside a loop body; it runs at function exit, not iteration end",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ForEachFunc(f, func(fn ast.Node, body *ast.BlockStmt, g *CFG) {
				for _, d := range g.Defers {
					b := g.BlockOf(d)
					if b == nil || !g.InLoop(b) {
						continue
					}
					what := "deferred call"
					if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok {
						what = "defer " + types.ExprString(sel)
					} else if id, ok := d.Call.Fun.(*ast.Ident); ok {
						what = "defer " + id.Name
					}
					pass.Reportf(d.Pos(), "deferloop",
						"%s inside a loop runs at function exit, not iteration end; release explicitly or move the body into a helper", what)
				}
			})
		}
	},
}
