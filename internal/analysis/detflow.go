// detflow: interprocedural taint analysis from nondeterminism sources to
// determinism sinks.
//
// MCT's reproduction contract is that reports, stable metric dumps and
// checkpoints are byte-identical at any worker count. detflow proves the
// data-flow side of that contract statically: no value derived from a
// nondeterminism source may reach a determinism sink, no matter how many
// calls lie between them.
//
// Sources (two taint classes):
//   - value class: wall clock (time.Now/Since/Until), math/rand's global
//     source, environment reads (os.Getenv and friends, runtime.GOMAXPROCS,
//     runtime.NumCPU). The tainted value itself differs between runs.
//   - order class: map iteration order. The values are deterministic but
//     the sequence they arrive in is not, so they taint ordering-sensitive
//     consumers (report rows, gob streams, last-write-wins gauges) while
//     commutative consumers (counter adds, histogram observes, map/set
//     inserts) stay clean. sort.*/slices.Sort* calls sanitize the order
//     class of the sorted value.
//
// Sinks: report writers ((*experiments.Table).AddRow, appends to
// experiments.Report.Notes), stable obs instrument writes (Counter.Add/Inc,
// Gauge.Set, Histogram.Observe/ObserveN/SetValues — unless the instrument
// provably came from a Volatile* constructor, the sanctioned surface for
// wall-clock data), and gob checkpoint encoders ((*gob.Encoder).Encode).
//
// The engine: one flow-sensitive ForwardSolve per function over facts
// mapping objects to marker sets, composed across calls with bottom-up SCC
// summaries (summaries.go). A summary records, per parameter, whether its
// value/order taint reaches a sink inside the callee (transitively) and
// which results it flows to, plus intrinsic source taint of each result.
// Findings are reported at the frontier: the call or sink expression where
// a value tainted by a *real* source (not a summary parameter) meets a
// sink-reaching position, so each source/sink pair reports once, in the
// function that created the taint.
//
// Soundness caveats (documented in DESIGN.md): taint does not propagate
// through unknown callees outside a whitelist of value-shaping stdlib
// packages (fmt, strconv, strings, ...), through I/O round trips, channel
// sends, or global variables; nested function literals are swept
// flow-insensitively within their enclosing function's facts (captured
// variables share identity, so closure captures are tracked).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// DetFlow is the interprocedural nondeterminism-taint rule.
var DetFlow = &Analyzer{
	Name:       "detflow",
	Doc:        "no value tainted by time/rand/env/map-order may reach a report writer, stable obs instrument, or gob checkpoint encoder (any call depth)",
	Severity:   "error",
	RunProgram: runDetFlow,
}

// detClass is the taint class of a marker.
type detClass uint8

const (
	detValue detClass = iota
	detOrder
)

func (c detClass) String() string {
	if c == detOrder {
		return "nondeterministic ordering"
	}
	return "nondeterministic value"
}

// detMarker is one unit of taint: either a real source occurrence (param ==
// -1, pos/desc identify it) or the synthetic taint of parameter index param
// used while summarizing a function.
type detMarker struct {
	class detClass
	param int
	pos   token.Pos
	desc  string
}

// detMarks is a set of markers.
type detMarks map[detMarker]struct{}

func (m detMarks) union(src detMarks) detMarks {
	if len(src) == 0 {
		return m
	}
	if m == nil {
		m = make(detMarks, len(src))
	}
	for k := range src {
		m[k] = struct{}{}
	}
	return m
}

// filter returns the markers of one class (nil when none).
func (m detMarks) filter(c detClass) detMarks {
	var out detMarks
	for k := range m {
		if k.class == c {
			out = out.union(detMarks{k: {}})
		}
	}
	return out
}

// detFact maps objects to their taint markers.
type detFact map[types.Object]detMarks

func cloneDetFact(f detFact) detFact {
	c := make(detFact, len(f))
	for o, m := range f {
		cm := make(detMarks, len(m))
		for k := range m {
			cm[k] = struct{}{}
		}
		c[o] = cm
	}
	return c
}

func joinDetFact(dst, src detFact) detFact {
	for o, m := range src {
		dst[o] = dst[o].union(m)
	}
	return dst
}

func equalDetFact(a, b detFact) bool {
	if len(a) != len(b) {
		return false
	}
	for o, m := range a {
		bm, ok := b[o]
		if !ok || len(bm) != len(m) {
			return false
		}
		for k := range m {
			if _, ok := bm[k]; !ok {
				return false
			}
		}
	}
	return true
}

func factSize(f detFact) int {
	n := 0
	for _, m := range f {
		n += len(m)
	}
	return n
}

// detParamFlow is the summarized behavior of one parameter.
type detParamFlow struct {
	valueToResults map[int]bool
	orderToResults map[int]bool
	sinkValue      bool
	sinkOrder      bool
	sinkDesc       string
}

// detSummary is one function's memoized taint summary.
type detSummary struct {
	arity     int
	params    map[int]*detParamFlow
	intrinsic map[int]detMarks // result index → real-source markers
}

func newDetSummary(arity int) *detSummary {
	return &detSummary{arity: arity, params: map[int]*detParamFlow{}, intrinsic: map[int]detMarks{}}
}

func (s *detSummary) flow(i int) *detParamFlow {
	f := s.params[i]
	if f == nil {
		f = &detParamFlow{valueToResults: map[int]bool{}, orderToResults: map[int]bool{}}
		s.params[i] = f
	}
	return f
}

func detSummaryEqual(a, b *detSummary) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.arity != b.arity || len(a.params) != len(b.params) || len(a.intrinsic) != len(b.intrinsic) {
		return false
	}
	for i, af := range a.params {
		bf, ok := b.params[i]
		if !ok || af.sinkValue != bf.sinkValue || af.sinkOrder != bf.sinkOrder ||
			len(af.valueToResults) != len(bf.valueToResults) || len(af.orderToResults) != len(bf.orderToResults) {
			return false
		}
		for r := range af.valueToResults {
			if !bf.valueToResults[r] {
				return false
			}
		}
		for r := range af.orderToResults {
			if !bf.orderToResults[r] {
				return false
			}
		}
	}
	for r, am := range a.intrinsic {
		bm, ok := b.intrinsic[r]
		if !ok || len(am) != len(bm) {
			return false
		}
		for k := range am {
			if _, ok := bm[k]; !ok {
				return false
			}
		}
	}
	return true
}

// detPropagatePkgs are the value-shaping stdlib packages taint flows
// through when the callee body is outside the program. Everything else
// breaks the chain (an os.ReadFile with a tainted path does not taint the
// file's contents — content determinism is a property of the file, not of
// where it came from).
var detPropagatePkgs = map[string]bool{
	"fmt": true, "strconv": true, "strings": true, "bytes": true,
	"math": true, "time": true, "sort": true, "slices": true,
	"maps": true, "errors": true, "unicode": true, "unicode/utf8": true,
	"cmp": true,
}

// detState is the program-wide analysis state.
type detState struct {
	prog     *Program
	graph    *CallGraph
	volatile map[types.Object]bool
	sums     map[*FuncInfo]*detSummary
}

func runDetFlow(prog *Program) {
	d := &detState{prog: prog, graph: prog.CallGraph(), volatile: volatileInstruments(prog)}
	solver := &SummarySolver[*detSummary]{
		Graph:  d.graph,
		Bottom: func() *detSummary { return nil },
		Equal:  detSummaryEqual,
		Compute: func(fn *FuncInfo, get func(*FuncInfo) *detSummary) *detSummary {
			return d.analyze(fn, get, false)
		},
	}
	d.sums = solver.Solve()
	// Report phase: re-run each top-level function against the converged
	// summaries, with reporting on. Nested literals are swept inside their
	// encloser (shared captured objects), so only declarations and orphan
	// literals run standalone.
	for _, fn := range prog.Funcs() {
		if fn.Lit != nil && fn.Encl != nil {
			continue
		}
		d.analyze(fn, func(f *FuncInfo) *detSummary { return d.sums[f] }, true)
	}
}

// volatileInstruments collects objects (variables and struct fields)
// provably initialized from obs Volatile* constructors: writes through them
// are sanctioned wall-clock surfaces, not determinism sinks.
func volatileInstruments(prog *Program) map[types.Object]bool {
	obsPath := prog.ModulePath + "/internal/obs"
	out := map[types.Object]bool{}
	isVolatileCtor := func(info *types.Info, e ast.Expr) bool {
		return isVolatileCtorCall(info, obsPath, e)
	}
	for _, p := range prog.Packages {
		info := p.Info
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.AssignStmt:
					if len(x.Lhs) != len(x.Rhs) {
						return true
					}
					for i, rhs := range x.Rhs {
						if !isVolatileCtor(info, rhs) {
							continue
						}
						if id, ok := x.Lhs[i].(*ast.Ident); ok {
							if o := objOf(info, id); o != nil {
								out[o] = true
							}
						}
					}
				case *ast.ValueSpec:
					for i, v := range x.Values {
						if i < len(x.Names) && isVolatileCtor(info, v) {
							if o := objOf(info, x.Names[i]); o != nil {
								out[o] = true
							}
						}
					}
				case *ast.CompositeLit:
					st, ok := info.Types[x].Type.Underlying().(*types.Struct)
					if !ok {
						return true
					}
					for i, el := range x.Elts {
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							if !isVolatileCtor(info, kv.Value) {
								continue
							}
							if id, ok := kv.Key.(*ast.Ident); ok {
								if o := objOf(info, id); o != nil {
									out[o] = true
								}
							}
						} else if isVolatileCtor(info, el) && i < st.NumFields() {
							out[st.Field(i)] = true
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// detFuncCtx is the per-function analysis context.
type detFuncCtx struct {
	d      *detState
	fn     *FuncInfo
	info   *types.Info
	get    func(*FuncInfo) *detSummary
	sum    *detSummary
	rep    bool
	ranges map[*Block][]*ast.RangeStmt
	inLit  map[*ast.FuncLit]bool
}

// analyze runs the taint solve over fn, returning its summary. With report
// set it additionally re-walks every block against the solved facts and
// reports frontier findings via prog.Reportf.
func (d *detState) analyze(fn *FuncInfo, get func(*FuncInfo) *detSummary, report bool) *detSummary {
	params := detParams(fn)
	fc := &detFuncCtx{
		d:     d,
		fn:    fn,
		info:  fn.Pkg.Info,
		get:   get,
		sum:   newDetSummary(len(params)),
		inLit: map[*ast.FuncLit]bool{},
	}
	entry := detFact{}
	for i, p := range params {
		if p == nil || p.Name() == "" || p.Name() == "_" {
			continue
		}
		entry[p] = detMarks{
			{class: detValue, param: i}: {},
			{class: detOrder, param: i}: {},
		}
	}
	g := fn.CFG()
	fc.ranges = map[*Block][]*ast.RangeStmt{}
	ast.Inspect(fn.Body(), func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if r, ok := n.(*ast.RangeStmt); ok {
			if b := g.BlockOf(r); b != nil {
				fc.ranges[b] = append(fc.ranges[b], r)
			}
		}
		return true
	})

	facts := ForwardSolve(g, FlowSpec[detFact]{
		Entry:  entry,
		Bottom: func() detFact { return detFact{} },
		Clone:  cloneDetFact,
		Join:   joinDetFact,
		Equal:  equalDetFact,
		Transfer: func(b *Block, in detFact) detFact {
			fc.transfer(b, in)
			return in
		},
	})
	if report {
		fc.rep = true
		for _, b := range g.Blocks {
			fact := cloneDetFact(facts.In[b])
			fc.transfer(b, fact)
		}
	}
	return fc.sum
}

// detParams returns the receiver (if any) followed by the parameters — the
// index space summaries use.
func detParams(fn *FuncInfo) []*types.Var {
	sig := fn.Type()
	var out []*types.Var
	if r := sig.Recv(); r != nil {
		out = append(out, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		out = append(out, sig.Params().At(i))
	}
	return out
}

func (fc *detFuncCtx) transfer(b *Block, fact detFact) {
	for _, n := range b.Nodes {
		fc.scanNode(n, fact)
	}
	for _, r := range fc.ranges[b] {
		fc.bindRange(r, fact)
	}
}

// scanNode applies one block node's taint effects.
func (fc *detFuncCtx) scanNode(n ast.Node, fact detFact) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		fc.assign(s, fact)
	case *ast.ReturnStmt:
		fc.ret(s, fact)
	case *ast.DeferStmt:
		fc.eval(s.Call, fact)
	case *ast.GoStmt:
		fc.eval(s.Call, fact)
	case *ast.ExprStmt:
		fc.eval(s.X, fact)
	case *ast.IncDecStmt:
		fc.eval(s.X, fact)
	case *ast.SendStmt:
		fc.eval(s.Chan, fact)
		fc.eval(s.Value, fact)
	case *ast.DeclStmt:
		fc.declStmt(s, fact)
	case *ast.RangeStmt:
		fc.bindRange(s, fact)
	case ast.Expr:
		fc.eval(s, fact)
	}
}

func (fc *detFuncCtx) declStmt(s *ast.DeclStmt, fact detFact) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Values) == 1 && len(vs.Names) > 1 {
			results := fc.evalMulti(vs.Values[0], fact, len(vs.Names))
			for i, name := range vs.Names {
				fc.bind(name, results[i], fact)
			}
			continue
		}
		for i, v := range vs.Values {
			if i < len(vs.Names) {
				fc.bind(vs.Names[i], fc.eval(v, fact), fact)
			}
		}
	}
}

func (fc *detFuncCtx) assign(s *ast.AssignStmt, fact detFact) {
	compound := s.Tok != token.ASSIGN && s.Tok != token.DEFINE
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		results := fc.evalMulti(s.Rhs[0], fact, len(s.Lhs))
		for i, lhs := range s.Lhs {
			fc.bind(lhs, results[i], fact)
		}
		return
	}
	for i := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		marks := fc.eval(s.Rhs[i], fact)
		if compound {
			// Compound accumulation: values always propagate; ordering only
			// matters for non-commutative accumulators (float rounding,
			// string concatenation) — integer sums are order-insensitive.
			if !orderSensitiveAccum(fc.info, s.Lhs[i]) {
				marks = marks.filter(detValue)
			}
		}
		fc.bind(s.Lhs[i], marks, fact)
	}
}

// orderSensitiveAccum reports whether accumulating into e is sensitive to
// operand order (floats, complex, strings).
func orderSensitiveAccum(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return true // unknown: stay conservative
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return true
	}
	return b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0
}

// bind unions marks into the root object of lhs. Writes into map indexes
// drop order markers: map insertion is set-semantic, so insertion order
// cannot leak.
func (fc *detFuncCtx) bind(lhs ast.Expr, marks detMarks, fact detFact) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	fc.checkFieldSink(lhs, marks)
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		if tv, ok := fc.info.Types[ix.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				marks = marks.filter(detValue)
			}
		}
	}
	if len(marks) == 0 {
		return
	}
	root := rootObjExpr(fc.info, lhs)
	if root == nil {
		return
	}
	fact[root] = fact[root].union(marks)
}

// checkFieldSink treats a write into experiments.Report.Notes as a report
// sink: notes are printed verbatim by Report.Fprint.
func (fc *detFuncCtx) checkFieldSink(lhs ast.Expr, marks detMarks) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj := objOf(fc.info, sel.Sel)
	if obj == nil || obj.Pkg() == nil || obj.Name() != "Notes" {
		return
	}
	if obj.Pkg().Path() != fc.d.prog.ModulePath+"/internal/experiments" {
		return
	}
	fc.sink(marks, true, true, "report notes (Report.Notes)", lhs.Pos(), "")
}

// ret records return-value taint into the summary.
func (fc *detFuncCtx) ret(s *ast.ReturnStmt, fact detFact) {
	sig := fc.fn.Type()
	nres := sig.Results().Len()
	if len(s.Results) == 0 {
		// Bare return with named results.
		for i := 0; i < nres; i++ {
			fc.recordResult(i, fact[sig.Results().At(i)])
		}
		return
	}
	if len(s.Results) == 1 && nres > 1 {
		results := fc.evalMulti(s.Results[0], fact, nres)
		for i := range results {
			fc.recordResult(i, results[i])
		}
		return
	}
	for i, r := range s.Results {
		fc.recordResult(i, fc.eval(r, fact))
	}
}

func (fc *detFuncCtx) recordResult(i int, marks detMarks) {
	for m := range marks {
		if m.param >= 0 {
			f := fc.sum.flow(m.param)
			if m.class == detValue {
				f.valueToResults[i] = true
			} else {
				f.orderToResults[i] = true
			}
		} else {
			fc.sum.intrinsic[i] = fc.sum.intrinsic[i].union(detMarks{m: {}})
		}
	}
}

// eval computes the taint of a single-valued expression, applying call
// effects (sources, sinks, sanitizers, summaries) along the way.
func (fc *detFuncCtx) eval(e ast.Expr, fact detFact) detMarks {
	switch x := e.(type) {
	case *ast.Ident:
		return fact[objOf(fc.info, x)]
	case *ast.SelectorExpr:
		if s, ok := fc.info.Selections[x]; ok && s.Kind() != types.FieldVal {
			return nil // method value: no data taint
		}
		return fc.eval(x.X, fact)
	case *ast.CallExpr:
		return fc.evalMulti(x, fact, 1)[0]
	case *ast.BinaryExpr:
		return detMarks(nil).union(fc.eval(x.X, fact)).union(fc.eval(x.Y, fact))
	case *ast.UnaryExpr:
		return fc.eval(x.X, fact)
	case *ast.StarExpr:
		return fc.eval(x.X, fact)
	case *ast.ParenExpr:
		return fc.eval(x.X, fact)
	case *ast.IndexExpr:
		return detMarks(nil).union(fc.eval(x.X, fact)).union(fc.eval(x.Index, fact))
	case *ast.IndexListExpr:
		return fc.eval(x.X, fact)
	case *ast.SliceExpr:
		m := fc.eval(x.X, fact)
		for _, b := range []ast.Expr{x.Low, x.High, x.Max} {
			if b != nil {
				m = detMarks(nil).union(m).union(fc.eval(b, fact))
			}
		}
		return m
	case *ast.CompositeLit:
		var m detMarks
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if _, isField := kv.Key.(*ast.Ident); !isField || fc.info.Types[kv.Key].IsValue() {
					m = m.union(fc.eval(kv.Key, fact))
				}
				m = m.union(fc.eval(kv.Value, fact))
				continue
			}
			m = m.union(fc.eval(el, fact))
		}
		return m
	case *ast.TypeAssertExpr:
		return fc.eval(x.X, fact)
	case *ast.FuncLit:
		fc.sweepLit(x, fact)
		return nil
	}
	return nil
}

// evalMulti computes the taint of each result of an n-valued expression.
func (fc *detFuncCtx) evalMulti(e ast.Expr, fact detFact, n int) []detMarks {
	out := make([]detMarks, n)
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		// v, ok := m[k] / x.(T) / <-ch: every binding shares the operand's
		// taint.
		m := fc.eval(e, fact)
		for i := range out {
			out[i] = m
		}
		return out
	}
	fc.callEffects(call, fact, out)
	return out
}

// callEffects is the heart of the analysis: resolves one call, applies
// sources, sanitizers, sinks and callee summaries, and fills the result
// taints.
func (fc *detFuncCtx) callEffects(call *ast.CallExpr, fact detFact, results []detMarks) {
	info := fc.info
	fun := ast.Unparen(call.Fun)

	// Type conversion: taint passes through.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			m := fc.eval(call.Args[0], fact)
			for i := range results {
				results[i] = m
			}
		}
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := info.Uses[id].(*types.Builtin); ok {
			var m detMarks
			for _, a := range call.Args {
				m = m.union(fc.eval(a, fact))
			}
			switch id.Name {
			case "append", "min", "max", "len", "cap", "complex", "real", "imag":
				for i := range results {
					results[i] = m
				}
			}
			return
		}
	}

	// Argument taints: receiver (for method calls) then arguments, the
	// callee's parameter index space.
	var argMarks []detMarks
	var callee *types.Func
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			callee, _ = s.Obj().(*types.Func)
			argMarks = append(argMarks, fc.eval(sel.X, fact))
		} else if f, ok := info.Uses[sel.Sel].(*types.Func); ok {
			callee = f
		}
	} else if id, ok := fun.(*ast.Ident); ok {
		if f, ok := info.Uses[id].(*types.Func); ok {
			callee = f
		}
	} else {
		// Immediately-invoked literal or dynamic call: evaluate arguments
		// for their side effects, then compose the literal's summary if we
		// have one.
		for _, a := range call.Args {
			argMarks = append(argMarks, fc.eval(a, fact))
		}
		if lit, ok := fun.(*ast.FuncLit); ok {
			if li := fc.d.prog.LitOf(lit); li != nil {
				fc.applySummary(li, fc.get(li), argMarks, results, call.Pos())
			}
		}
		return
	}
	for _, a := range call.Args {
		argMarks = append(argMarks, fc.eval(a, fact))
	}

	// Sanitizers: sorting fixes iteration order.
	if fc.sanitize(callee, call, fact) {
		return
	}
	// External sources. The source marker replaces argument taint:
	// time.Since(start) is one nondeterministic value, not two (start's
	// time.Now marker would otherwise double-report every downstream sink).
	if desc, ok := detSource(callee); ok {
		m := detMarks{{class: detValue, param: -1, pos: call.Pos(), desc: desc}: {}}
		for i := range results {
			results[i] = m
		}
		return
	}
	// Direct sinks.
	if fc.directSink(callee, fun, call, argMarks) {
		return
	}

	// In-program callees: compose summaries.
	if targets := fc.d.graph.CalleesAt(fc.fn, call); len(targets) > 0 {
		for _, t := range targets {
			fc.applySummary(t, fc.get(t), argMarks, results, call.Pos())
		}
		return
	}

	// Unknown callee: propagate through value-shaping stdlib only.
	if callee != nil && callee.Pkg() != nil && detPropagatePkgs[callee.Pkg().Path()] {
		var m detMarks
		for _, am := range argMarks {
			m = m.union(am)
		}
		for i := range results {
			results[i] = m
		}
	}
}

// sanitize clears order taint of the argument of a sort call.
func (fc *detFuncCtx) sanitize(callee *types.Func, call *ast.CallExpr, fact detFact) bool {
	if callee == nil || callee.Pkg() == nil || len(call.Args) == 0 {
		return false
	}
	pkg := callee.Pkg().Path()
	name := callee.Name()
	isSort := (pkg == "sort" && name != "Search" && name != "SearchInts" && name != "SearchStrings" && name != "SearchFloat64s") ||
		(pkg == "slices" && (name == "Sort" || name == "SortFunc" || name == "SortStableFunc"))
	if !isSort {
		return false
	}
	if root := rootObjExpr(fc.info, call.Args[0]); root != nil {
		fact[root] = fact[root].filter(detValue)
	}
	// The sorted value is also the "result" for sort.* (in-place); nothing
	// to fill.
	for _, a := range call.Args[1:] {
		fc.eval(a, fact) // comparator literals may contain their own flows
	}
	return true
}

// detSource classifies an external callee as a nondeterminism source.
func detSource(callee *types.Func) (string, bool) {
	if callee == nil || callee.Pkg() == nil {
		return "", false
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return "", false // methods (e.g. on a seeded *rand.Rand) are not sources
	}
	pkg, name := callee.Pkg().Path(), callee.Name()
	switch pkg {
	case "time":
		if name == "Now" || name == "Since" || name == "Until" {
			return "wall clock (time." + name + ")", true
		}
	case "os":
		if name == "Getenv" || name == "LookupEnv" || name == "Environ" || name == "Hostname" || name == "Getpid" {
			return "process environment (os." + name + ")", true
		}
	case "runtime":
		if name == "GOMAXPROCS" || name == "NumCPU" || name == "NumGoroutine" {
			return "runtime environment (runtime." + name + ")", true
		}
	case "math/rand", "math/rand/v2":
		switch name {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			return "", false
		}
		return "global rand source (" + pkg + "." + name + ")", true
	}
	return "", false
}

// directSink handles calls into the known determinism sinks. Returns true
// when the call was a sink (results carry no taint).
func (fc *detFuncCtx) directSink(callee *types.Func, fun ast.Expr, call *ast.CallExpr, argMarks []detMarks) bool {
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	pkg, name := callee.Pkg().Path(), callee.Name()
	recv := recvTypeName(callee)
	mod := fc.d.prog.ModulePath

	var argsOnly detMarks
	for i, am := range argMarks {
		if i == 0 && recv != "" {
			continue // receiver taint is not data written to the sink
		}
		argsOnly = argsOnly.union(am)
	}

	switch {
	case pkg == "encoding/gob" && recv == "Encoder" && (name == "Encode" || name == "EncodeValue"):
		fc.sink(argsOnly, true, true, "gob checkpoint encoder (Encoder."+name+")", call.Pos(), "")
		return true
	case pkg == mod+"/internal/experiments" && recv == "Table" && name == "AddRow":
		fc.sink(argsOnly, true, true, "report table (Table.AddRow)", call.Pos(), "")
		return true
	case pkg == mod+"/internal/obs":
		var stableSink, orderSink bool
		switch recv + "." + name {
		case "Counter.Add", "Counter.Inc", "Histogram.Observe", "Histogram.ObserveN", "Histogram.SetValues":
			stableSink = true // commutative: order taint is harmless
		case "Gauge.Set":
			stableSink, orderSink = true, true // last write wins
		}
		if !stableSink {
			return false
		}
		// Sanctioned when the instrument provably came from a Volatile*
		// constructor — stored in a tracked variable or field, or written
		// through directly (r.VolatileGauge(...).Set(v)).
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			if root := volatileRoot(fc.info, sel.X); root != nil && fc.d.volatile[root] {
				return true
			}
			if isVolatileCtorCall(fc.info, mod+"/internal/obs", sel.X) {
				return true
			}
		}
		fc.sink(argsOnly, true, orderSink, "stable obs instrument ("+recv+"."+name+")", call.Pos(), "")
		return true
	}
	return false
}

// isVolatileCtorCall reports whether e is a direct call to an obs Volatile*
// instrument constructor.
func isVolatileCtorCall(info *types.Info, obsPath string, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != obsPath {
		return false
	}
	return fn.Name() == "VolatileGauge" || fn.Name() == "VolatileHistogram"
}

// volatileRoot resolves the instrument expression of an obs write to the
// variable or struct field it was stored in.
func volatileRoot(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return objOf(info, x)
	case *ast.SelectorExpr:
		return objOf(info, x.Sel) // field object
	}
	return nil
}

// recvTypeName returns the base name of a method's receiver type, "" for
// plain functions.
func recvTypeName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// sink processes tainted data meeting a sink: real markers report at the
// frontier, synthetic parameter markers record into the summary.
func (fc *detFuncCtx) sink(marks detMarks, valueSink, orderSink bool, desc string, pos token.Pos, via string) {
	for m := range marks {
		hit := (m.class == detValue && valueSink) || (m.class == detOrder && orderSink)
		if !hit {
			continue
		}
		if m.param >= 0 {
			f := fc.sum.flow(m.param)
			if m.class == detValue {
				f.sinkValue = true
			} else {
				f.sinkOrder = true
			}
			if f.sinkDesc == "" {
				f.sinkDesc = desc
			}
			continue
		}
		if fc.rep {
			msg := fmt.Sprintf("%s from %s (%s) reaches %s", m.class, m.desc, fc.d.prog.Position(m.pos), desc)
			if via != "" {
				msg += " through call to " + via
			}
			fc.d.prog.Reportf(pos, "detflow", msg)
		}
	}
}

// applySummary composes a callee summary at a call site: sink-reaching
// parameters act as sinks for the corresponding arguments, param→result
// flows and intrinsic source taint fill the results.
func (fc *detFuncCtx) applySummary(target *FuncInfo, su *detSummary, argMarks []detMarks, results []detMarks, pos token.Pos) {
	if su == nil {
		return
	}
	for i, am := range argMarks {
		pi := i
		if su.arity > 0 && pi >= su.arity {
			pi = su.arity - 1 // variadic tail
		}
		f := su.params[pi]
		if f == nil {
			continue
		}
		if f.sinkValue || f.sinkOrder {
			fc.sink(am, f.sinkValue, f.sinkOrder, f.sinkDesc, pos, shortFuncName(target.Name))
		}
		for r := range f.valueToResults {
			if r < len(results) {
				results[r] = results[r].union(am.filter(detValue))
			}
		}
		for r := range f.orderToResults {
			if r < len(results) {
				results[r] = results[r].union(am.filter(detOrder))
			}
		}
	}
	for r, m := range su.intrinsic {
		if r < len(results) {
			results[r] = results[r].union(m)
		}
	}
}

// shortFuncName trims the module-path noise off a FuncInfo name for
// messages.
func shortFuncName(name string) string {
	if i := lastSlash(name); i >= 0 {
		return name[i+1:]
	}
	return name
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

// bindRange binds a range statement's key/value variables: collection
// taint propagates, and ranging a map intrinsically adds order taint.
func (fc *detFuncCtx) bindRange(r *ast.RangeStmt, fact detFact) {
	xm := fc.eval(r.X, fact)
	m := detMarks(nil).union(xm)
	if tv, ok := fc.info.Types[r.X]; ok {
		if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
			m = m.union(detMarks{{class: detOrder, param: -1, pos: r.Pos(), desc: "map iteration order"}: {}})
		}
	}
	if len(m) == 0 {
		return
	}
	for _, v := range []ast.Expr{r.Key, r.Value} {
		if v != nil {
			fc.bind(v, m, fact)
		}
	}
}

// sweepLit analyzes a nested function literal flow-insensitively inside
// the enclosing facts: captured variables share type-checker objects, so
// taint flows in and out of the closure through the shared map.
func (fc *detFuncCtx) sweepLit(lit *ast.FuncLit, fact detFact) {
	if fc.inLit[lit] {
		return
	}
	fc.inLit[lit] = true
	defer delete(fc.inLit, lit)
	for pass := 0; pass < 4; pass++ {
		before := factSize(fact)
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.FuncLit:
				if s != lit {
					fc.sweepLit(s, fact)
					return false
				}
			case *ast.AssignStmt:
				fc.assign(s, fact)
				return false
			case *ast.ReturnStmt:
				return false // the literal's own results; out of scope here
			case *ast.ExprStmt:
				fc.eval(s.X, fact)
				return false
			case *ast.DeferStmt:
				fc.eval(s.Call, fact)
				return false
			case *ast.GoStmt:
				fc.eval(s.Call, fact)
				return false
			case *ast.SendStmt:
				fc.eval(s.Chan, fact)
				fc.eval(s.Value, fact)
				return false
			case *ast.DeclStmt:
				fc.declStmt(s, fact)
				return false
			case *ast.RangeStmt:
				fc.bindRange(s, fact)
				return true // body statements still need the walk
			case *ast.IfStmt:
				fc.eval(s.Cond, fact)
			case *ast.ForStmt:
				if s.Cond != nil {
					fc.eval(s.Cond, fact)
				}
			case *ast.SwitchStmt:
				if s.Tag != nil {
					fc.eval(s.Tag, fact)
				}
			case *ast.IncDecStmt:
				return false
			}
			return true
		})
		if factSize(fact) == before {
			break
		}
	}
}

// rootObjExpr peels selectors, indexes, derefs and slices off an expression
// down to its base identifier's object.
func rootObjExpr(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return objOf(info, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}
