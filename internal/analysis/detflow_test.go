package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestDetFlowInjectedSourceTwoLevels seeds a wall-clock source two call
// levels above a report-table sink and asserts the taint survives both
// summary compositions: the acceptance probe for the interprocedural depth
// of the analysis.
func TestDetFlowInjectedSourceTwoLevels(t *testing.T) {
	const src = `package snippet

import (
	"strconv"
	"time"

	"mct/internal/experiments"
)

// measure is the source: two call levels above the sink.
func measure() float64 { return float64(time.Now().UnixNano()) }

// mid launders the value through arithmetic and a second frame.
func mid() float64 { return measure() / 1e6 }

// emit sinks the still-tainted value into a report table.
func emit(tab *experiments.Table) {
	v := mid()
	tab.AddRow("latency_ms", strconv.FormatFloat(v, 'f', 3, 64))
}
`
	prog := loadSnippet(t, src)
	diags := RunProgramAnalyzers(prog, []*Analyzer{DetFlow})

	var hits []string
	for _, d := range diags {
		if d.Rule == "detflow" {
			hits = append(hits, d.Message)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("want exactly 1 detflow finding for the injected source, got %d: %v", len(hits), hits)
	}
	msg := hits[0]
	if !strings.Contains(msg, "time.Now") {
		t.Errorf("finding must name the source (time.Now): %q", msg)
	}
	if !strings.Contains(msg, "AddRow") {
		t.Errorf("finding must name the sink (AddRow): %q", msg)
	}
}

// TestDetFlowSanctionedVolatileInstrument asserts the sanctioning side of
// the rule: the identical wall-clock value is a finding on a stable gauge
// and silence on a Volatile one.
func TestDetFlowSanctionedVolatileInstrument(t *testing.T) {
	const src = `package snippet

import (
	"time"

	"mct/internal/obs"
)

func publish(r *obs.Registry) {
	elapsed := time.Since(time.Unix(0, 0)).Seconds()
	r.Gauge("snippet_elapsed").Set(elapsed)
	r.VolatileGauge("snippet_elapsed_wall").Set(elapsed)
}
`
	prog := loadSnippet(t, src)
	diags := RunProgramAnalyzers(prog, []*Analyzer{DetFlow})

	var hits []Diagnostic
	for _, d := range diags {
		if d.Rule == "detflow" {
			hits = append(hits, d)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("want exactly 1 detflow finding (stable gauge only), got %d: %v", len(hits), hits)
	}
	if !strings.Contains(hits[0].Message, "Gauge.Set") {
		t.Errorf("finding must be on the stable Gauge.Set sink: %q", hits[0].Message)
	}
}

// TestDetFlowSurfacesClean is the acceptance criterion in test form: the
// three determinism surfaces — experiment report writers (experiments),
// stable observability instruments (obs and every package publishing into
// them), and gob checkpoint encoders (sim) — carry zero unsuppressed
// nondeterminism findings.
func TestDetFlowSurfacesClean(t *testing.T) {
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	surfaces := []string{
		loader.ModulePath() + "/internal/experiments", // report writers (Table.AddRow, Report.Notes)
		loader.ModulePath() + "/internal/obs",         // stable instruments (Counter/Gauge/Histogram)
		loader.ModulePath() + "/internal/sim",         // checkpoint encoders (gob via SaveCheckpoint)
	}
	var pkgs []*Package
	for _, p := range surfaces {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	prog := NewProgram(loader, pkgs)
	for _, d := range RunProgramAnalyzers(prog, []*Analyzer{DetFlow}) {
		t.Errorf("determinism surface is tainted: %s", d)
	}
}

// TestAllochotWorklistRanked asserts the suppression-blind worklist export:
// in-loop sites first, then shallower call depth, with positions rendered
// for the CI artifact.
func TestAllochotWorklistRanked(t *testing.T) {
	const src = `package snippet

type job struct{ buf []byte }

//mctlint:hotpath
func step(js []*job) {
	for _, j := range js {
		j.buf = append(j.buf, expand(len(j.buf))...)
	}
	finish()
}

func expand(n int) []byte {
	return make([]byte, n+1)
}

func finish() {
	_ = new(job)
}
`
	prog := loadSnippet(t, src)
	sites := AllochotWorklist(prog)
	if len(sites) < 3 {
		t.Fatalf("want ≥3 alloc sites (append in loop, make in callee, new in finish), got %d: %+v", len(sites), sites)
	}
	// Rank: every in-loop site precedes every out-of-loop site; within a
	// group, shallower depth first.
	for i := 1; i < len(sites); i++ {
		a, b := sites[i-1], sites[i]
		if !a.InLoop && b.InLoop {
			t.Errorf("site %d (in loop) ranked after site %d (not in loop)", i, i-1)
		}
		if a.InLoop == b.InLoop && a.Depth > b.Depth {
			t.Errorf("equal loop class but depth %d ranked before %d", a.Depth, b.Depth)
		}
	}
	if sites[0].Pos.Filename == "" || sites[0].Pos.Line == 0 {
		t.Errorf("worklist positions must carry file and line, got %v", sites[0].Pos)
	}
	// The append inside the range loop is the top-ranked site.
	if !sites[0].InLoop {
		t.Error("top-ranked site must be the in-loop append")
	}
	if base := filepath.Base(sites[0].Pos.Filename); base != "snippet.go" {
		t.Errorf("top site in %s, want snippet.go", base)
	}
}
