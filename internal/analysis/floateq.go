package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// isFloat reports whether t's underlying type is a floating-point basic
// type (including untyped float constants).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isExactZero reports whether the expression is a compile-time constant
// equal to zero. Comparing against exact zero is well-defined (division
// guards, "unset" sentinels) and exempt from the rule.
func isExactZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

// FloatEq flags == and != between float-typed operands. Rounding error
// accumulated along the simulator's cycle/energy paths silently flips such
// branches; use internal/floats.Eq (epsilon comparison) or suppress with a
// written justification where exactness is genuinely intended.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= between float operands (except against literal 0); use internal/floats.Eq or justify with an ignore directive",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				xt, xok := pass.Info.Types[be.X]
				yt, yok := pass.Info.Types[be.Y]
				if !xok || !yok || !isFloat(xt.Type) || !isFloat(yt.Type) {
					return true
				}
				if isExactZero(pass, be.X) || isExactZero(pass, be.Y) {
					return true
				}
				pass.Reportf(be.OpPos, "floateq",
					"float %s comparison; use floats.Eq (epsilon) or justify exactness with an ignore directive", be.Op)
				return true
			})
		}
	},
}
