package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoLeak reports `go` statements whose goroutine is tied to no shutdown
// mechanism. A goroutine that neither watches a context.Context, nor is
// awaited through a sync.WaitGroup, nor runs under the engine package's
// worker pool can outlive the run that spawned it: it keeps mutating stats
// or holding a core busy after a sweep is cancelled, which both leaks
// memory under sustained load and lets a stale worker perturb the next
// experiment's timing.
//
// Evidence of tracking is any reference inside the spawned call (function
// expression, arguments, or literal body) to:
//
//   - a value of type context.Context (the goroutine can observe
//     cancellation),
//   - a sync.WaitGroup or one of its methods (someone waits for it),
//   - anything from mct/internal/engine (the pool already enforces the
//     contract).
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "every `go` statement must be tied to a context.Context, sync.WaitGroup, or engine primitive",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !goroutineTracked(pass, g) {
					pass.Reportf(g.Pos(), "goleak",
						"goroutine is tied to no context.Context, sync.WaitGroup, or engine primitive and can outlive the run")
				}
				return true
			})
		}
	},
}

// goroutineTracked scans the spawned call for shutdown-mechanism evidence.
func goroutineTracked(pass *Pass, g *ast.GoStmt) bool {
	tracked := false
	ast.Inspect(g.Call, func(n ast.Node) bool {
		if tracked {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := objOf(pass.Info, id)
		if obj == nil {
			return true
		}
		if fn, ok := obj.(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				if isTrackingType(sig.Recv().Type()) {
					tracked = true
					return false
				}
			}
			if fn.Pkg() != nil && isEnginePkg(fn.Pkg().Path()) {
				tracked = true
				return false
			}
		}
		if isTrackingType(obj.Type()) {
			tracked = true
			return false
		}
		if p := obj.Pkg(); p != nil && isEnginePkg(p.Path()) {
			tracked = true
			return false
		}
		return true
	})
	return tracked
}

// isTrackingType reports whether t (possibly behind a pointer) is
// context.Context, sync.WaitGroup, or a type defined in the engine package.
func isTrackingType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	switch {
	case path == "context" && obj.Name() == "Context":
		return true
	case path == "sync" && obj.Name() == "WaitGroup":
		return true
	case isEnginePkg(path):
		return true
	}
	return false
}

// isEnginePkg matches the module's worker-pool package (and its test
// fixture stand-ins).
func isEnginePkg(path string) bool {
	return strings.HasSuffix(path, "internal/engine")
}
