// Guarded-by inference: which synchronization domain protects each shared
// variable's accesses.
//
// The racecand/atomicmix analyzers need, for every access to a shared
// variable, an answer to "what made this access safe?". This file computes
// that answer in three steps:
//
//  1. Access collection. One walk over every function body records each
//     read/write of a *types.Var — package-level variables, locals
//     (including captures: the same object accessed from a nested
//     literal), and struct fields — classifying writes (assignment
//     left-hand sides, ++/--, range targets), sync/atomic accesses
//     (&x handed to an atomic.* function, or a method call on an
//     atomic.Int64-style typed field), and address escapes (&x anywhere
//     else, which ends precise tracking).
//
//  2. Guard stamping. For functions with lock activity, a must-held
//     forward dataflow (intersection at joins — a guard claimed on only
//     one path is no guard) computes the set of locks held at every
//     access. Direct Lock/Unlock calls move the set; calls into helpers
//     apply the lockflow summaries (a uniquely-resolved callee's
//     net-acquires enter the set, any possible callee's releases leave
//     it), so a critical section entered through s.lockIt() still counts.
//     Deferred unlocks do not end the critical section mid-body.
//
//  3. Key normalization. Held-lock keys are rewritten so the same mutex
//     gets the same name across functions: package-level locks by import
//     path ("mct/internal/experiments.sweepMu/w"), receiver- or
//     parameter-rooted locks by the root's type
//     ("mct/internal/obs.Registry.mu/w" — the standard guarded-by
//     assumption that an instance's fields are guarded by that same
//     instance's lock), captured locals by declaration site. The "/w" or
//     "/r" suffix keeps RWMutex modes apart: a write access is only
//     guarded by the exclusive mode.
//
// SharedVars exposes the package-level and captured variables (the
// racecand domain); GuardReport renders every variable's inferred domain
// — lock, atomic, confined, mixed, or unguarded — for the driver's
// -guards-json debugging dump.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Access is one read or write of a tracked variable.
type Access struct {
	// Fn is the function body containing the access.
	Fn *FuncInfo
	// Pos is the identifier's source position.
	Pos token.Pos
	// Write reports a mutation: assignment target, ++/--, range target,
	// write-through (index/field store rooted at the variable), address
	// escape, or a mutating atomic op.
	Write bool
	// Atomic reports the access happens through sync/atomic.
	Atomic bool

	guards map[string]bool // normalized must-held locks at the access
}

// SharedVar is one variable whose accesses may span goroutine contexts: a
// package-level variable or a function local captured by a nested
// literal.
type SharedVar struct {
	// Obj is the variable's type-checker object.
	Obj *types.Var
	// DeclFn is the declaring function for captured locals, nil for
	// package-level variables.
	DeclFn *FuncInfo
	// Escaped reports the address was taken outside sync/atomic: aliasing
	// makes further tracking unsound, so racecand skips the variable.
	Escaped bool
	// Accesses in deterministic program order.
	Accesses []*Access
}

// Name renders the variable for messages: import-path-qualified for
// package-level variables (module prefix trimmed), declaring-function
// qualified for captures.
func (sv *SharedVar) Name(prog *Program) string {
	if sv.DeclFn != nil {
		return shortFuncName(sv.DeclFn.Name) + "." + sv.Obj.Name()
	}
	path := sv.Obj.Pkg().Path()
	path = strings.TrimPrefix(path, prog.ModulePath+"/")
	return path + "." + sv.Obj.Name()
}

// sharedIndex is the cached result of the access-collection pass.
type sharedIndex struct {
	// accesses indexes every tracked variable (package vars, locals,
	// fields) — the atomicmix domain.
	accesses map[*types.Var][]*Access
	// declFn maps a local variable to its declaring function body.
	declFn map[*types.Var]*FuncInfo
	// escaped marks variables whose address was taken outside atomics.
	escaped map[*types.Var]bool
	// shared is the racecand domain: package vars plus captured locals,
	// deterministically ordered.
	shared []*SharedVar
}

// SharedVars returns the racecand domain: every package-level variable of
// the program and every function local accessed from a body other than
// its declaring function (a capture), with guard-stamped accesses.
func SharedVars(prog *Program) []*SharedVar { return sharedIndexOf(prog).shared }

func sharedIndexOf(prog *Program) *sharedIndex {
	if prog.shared != nil {
		return prog.shared
	}
	idx := &sharedIndex{
		accesses: map[*types.Var][]*Access{},
		declFn:   map[*types.Var]*FuncInfo{},
		escaped:  map[*types.Var]bool{},
	}
	for _, fn := range prog.Funcs() {
		idx.collect(prog, fn)
	}
	idx.stampGuards(prog)
	idx.buildShared(prog)
	prog.shared = idx
	return idx
}

// buildShared selects the shared variables out of the access index.
func (idx *sharedIndex) buildShared(prog *Program) {
	var objs []*types.Var
	for obj := range idx.accesses {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
	for _, obj := range objs {
		if obj.IsField() || isSynchronizerType(obj.Type()) {
			continue // fields are out of scope; synchronizers are the guard, not the guarded
		}
		var declFn *FuncInfo
		if !isPackageScope(obj) {
			declFn = idx.declFn[obj]
			if declFn == nil {
				continue // parameter/result of a bodiless function, or unindexed
			}
			captured := false
			for _, a := range idx.accesses[obj] {
				if a.Fn != declFn {
					captured = true
					break
				}
			}
			if !captured {
				continue // a plain local: each frame owns its own copy
			}
		}
		idx.shared = append(idx.shared, &SharedVar{
			Obj:      obj,
			DeclFn:   declFn,
			Escaped:  idx.escaped[obj],
			Accesses: idx.accesses[obj],
		})
	}
}

// isPackageScope reports whether v is a package-level variable.
func isPackageScope(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isSynchronizerType reports whether t is itself a synchronization
// primitive (mutex, wait group, once, atomic value, channel): those are
// accessed concurrently by design and judged by their own rules.
func isSynchronizerType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	}
	return false
}

// atomicCallTarget resolves a call to a sync/atomic package function
// ("atomic.AddUint64") and reports whether it mutates.
func atomicCallTarget(info *types.Info, call *ast.CallExpr) (mutates bool, ok bool) {
	fn := calleeFuncObj(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false, false
	}
	return !strings.HasPrefix(fn.Name(), "Load"), true
}

// atomicMethodRecv resolves a method call on a sync/atomic typed value
// ("c.hits.Add(1)") to the variable holding the value, reporting whether
// the method mutates.
func atomicMethodRecv(info *types.Info, call *ast.CallExpr) (*ast.Ident, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil, false, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil, false, false
	}
	id := rightmostVarIdent(info, sel.X)
	if id == nil {
		return nil, false, false
	}
	return id, fn.Name() != "Load", true
}

// rightmostVarIdent returns the identifier naming the accessed variable of
// a selector chain: the final field for "c.hits", the identifier itself
// for "hits".
func rightmostVarIdent(info *types.Info, e ast.Expr) *ast.Ident {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if _, ok := objOf(info, x).(*types.Var); ok {
			return x
		}
	case *ast.SelectorExpr:
		if _, ok := objOf(info, x.Sel).(*types.Var); ok {
			return x.Sel
		}
	}
	return nil
}

// collect records every variable access in fn's body (nested literals are
// their own FuncInfos and collected separately).
func (idx *sharedIndex) collect(prog *Program, fn *FuncInfo) {
	info := fn.Pkg.Info
	body := fn.Body()

	// Pass 1: classify identifiers that are written, atomically accessed,
	// or escaping, so the generic pass can label them.
	writes := map[*ast.Ident]bool{}
	atomics := map[*ast.Ident]bool{}
	atomicWrites := map[*ast.Ident]bool{}
	escapes := map[*ast.Ident]bool{}
	markTarget := func(e ast.Expr) {
		// The mutated object: the leftmost identifier of the chain (the
		// variable written or written through) and, for a field store, the
		// field itself.
		e = ast.Unparen(e)
		if sel, ok := e.(*ast.SelectorExpr); ok {
			if _, isVar := objOf(info, sel.Sel).(*types.Var); isVar {
				writes[sel.Sel] = true
			}
		}
		if id := leftmostIdent(e); id != nil {
			writes[id] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				markTarget(lhs)
			}
		case *ast.IncDecStmt:
			markTarget(x.X)
		case *ast.RangeStmt:
			if x.Key != nil {
				markTarget(x.Key)
			}
			if x.Value != nil {
				markTarget(x.Value)
			}
		case *ast.CallExpr:
			if mutates, ok := atomicCallTarget(info, x); ok {
				for _, arg := range x.Args {
					if u, isAddr := ast.Unparen(arg).(*ast.UnaryExpr); isAddr && u.Op == token.AND {
						if id := rightmostVarIdent(info, u.X); id != nil {
							atomics[id] = true
							if mutates {
								atomicWrites[id] = true
							}
						}
					}
				}
				return true
			}
			if id, mutates, ok := atomicMethodRecv(info, x); ok {
				atomics[id] = true
				if mutates {
					atomicWrites[id] = true
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if id := rightmostVarIdent(info, x.X); id != nil && !atomics[id] {
					escapes[id] = true
				}
			}
		}
		return true
	})

	// Pass 2: record one Access per identifier use. Declarations (Defs)
	// register the declaring function but are not accesses — an
	// initializer runs before the variable can be shared.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if def, ok := info.Defs[id].(*types.Var); ok {
			if _, tracked := idx.declFn[def]; !tracked && !isPackageScope(def) && !def.IsField() {
				idx.declFn[def] = fn
			}
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if escapes[id] && !atomics[id] {
			idx.escaped[obj] = true
		}
		idx.accesses[obj] = append(idx.accesses[obj], &Access{
			Fn:     fn,
			Pos:    id.Pos(),
			Write:  writes[id] || atomicWrites[id] || escapes[id],
			Atomic: atomics[id],
		})
		return true
	})
}

// mhFact is the must-held lock set; nil is ⊤ (block not yet reached), the
// identity of the intersection join.
type mhFact map[string]bool

func cloneMHFact(f mhFact) mhFact {
	if f == nil {
		return nil
	}
	c := make(mhFact, len(f))
	for k := range f {
		c[k] = true
	}
	return c
}

// stampGuards runs the must-held solve over every function with lock
// activity and stamps each of its accesses with the normalized lock set
// held at the access point.
func (idx *sharedIndex) stampGuards(prog *Program) {
	byFn := map[*FuncInfo][]*Access{}
	for _, accs := range idx.accesses {
		for _, a := range accs {
			byFn[a.Fn] = append(byFn[a.Fn], a)
		}
	}
	sums := lockSummariesOf(prog)
	graph := prog.CallGraph()
	for _, fn := range prog.Funcs() {
		accs := byFn[fn]
		if len(accs) == 0 || !fnHasLockActivity(fn, graph, sums) {
			continue
		}
		sort.Slice(accs, func(i, j int) bool { return accs[i].Pos < accs[j].Pos })
		stampFnGuards(prog, fn, accs, sums, graph)
	}
}

// fnHasLockActivity is the cheap pre-scan mirroring lockflow's: direct
// sync ops or calls to functions with lock effects.
func fnHasLockActivity(fn *FuncInfo, graph *CallGraph, sums map[*FuncInfo]*lockSummary) bool {
	info := fn.Pkg.Info
	found := false
	ast.Inspect(fn.Body(), func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := syncLockOp(info, call); ok {
			found = true
			return false
		}
		for _, t := range graph.CalleesAt(fn, call) {
			if !sums[t].empty() {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// stampFnGuards solves must-held facts over fn's CFG and replays each
// block to attribute the held set to every access position.
func stampFnGuards(prog *Program, fn *FuncInfo, accs []*Access, sums map[*FuncInfo]*lockSummary, graph *CallGraph) {
	g := fn.CFG()
	transfer := func(b *Block, in mhFact) mhFact {
		if in == nil {
			return nil // unreachable so far
		}
		for _, n := range b.Nodes {
			applyMustHeld(prog, fn, n, in, sums, graph, nil)
		}
		return in
	}
	facts := ForwardSolve(g, FlowSpec[mhFact]{
		Entry:  mhFact{},
		Bottom: func() mhFact { return nil },
		Clone:  cloneMHFact,
		Join: func(dst, src mhFact) mhFact {
			if dst == nil {
				return cloneMHFact(src)
			}
			if src == nil {
				return dst
			}
			for k := range dst {
				if !src[k] {
					delete(dst, k)
				}
			}
			return dst
		},
		Equal: func(a, b mhFact) bool {
			if (a == nil) != (b == nil) {
				return false
			}
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Transfer: transfer,
	})

	stamp := func(pos token.Pos, fact mhFact) {
		if len(fact) == 0 {
			return
		}
		// Binary search the sorted access slice for this position.
		i := sort.Search(len(accs), func(i int) bool { return accs[i].Pos >= pos })
		if i < len(accs) && accs[i].Pos == pos {
			accs[i].guards = cloneMHFact(fact)
		}
	}
	for _, b := range g.Blocks {
		fact := cloneMHFact(facts.In[b])
		if fact == nil {
			continue
		}
		for _, n := range b.Nodes {
			applyMustHeld(prog, fn, n, fact, sums, graph, stamp)
		}
	}
}

// applyMustHeld applies one block node's lock effects to fact in source
// order, reporting every identifier position to onIdent (when non-nil)
// with the fact current at that point. Calls take effect after their
// operands are visited, so an argument read is attributed the pre-call
// set. Deferred statements have no mid-body effect: a deferred unlock
// releases at exit, leaving the critical section open through the rest of
// the body.
func applyMustHeld(prog *Program, fn *FuncInfo, n ast.Node, fact mhFact, sums map[*FuncInfo]*lockSummary, graph *CallGraph, onIdent func(token.Pos, mhFact)) {
	if _, ok := n.(*ast.DeferStmt); ok {
		if onIdent != nil {
			ast.Inspect(n, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				if id, ok := m.(*ast.Ident); ok {
					onIdent(id.Pos(), fact)
				}
				return true
			})
		}
		return
	}
	info := fn.Pkg.Info
	var visit func(m ast.Node)
	visit = func(m ast.Node) {
		if m == nil {
			return
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return
		}
		if id, ok := m.(*ast.Ident); ok {
			if onIdent != nil {
				onIdent(id.Pos(), fact)
			}
			return
		}
		call, isCall := m.(*ast.CallExpr)
		// Children first: operand reads happen before the call's effect.
		ast.Inspect(m, func(ch ast.Node) bool {
			if ch == m {
				return true
			}
			visit(ch)
			return false
		})
		if !isCall {
			return
		}
		if op, ok := syncLockOp(info, call); ok {
			sel := call.Fun.(*ast.SelectorExpr)
			key, ok := normalizeLockExpr(prog, fn, sel.X, "/"+op.key[len(op.key)-1:])
			if !ok {
				return
			}
			if op.acquire {
				fact[key] = true
			} else {
				delete(fact, key)
			}
			return
		}
		targets := graph.CalleesAt(fn, call)
		unique := len(targets) == 1
		for _, t := range targets {
			su := sums[t]
			if su.empty() {
				continue
			}
			// A possible release must clear the must-held fact (claiming a
			// guard a callee may have dropped is unsound); an acquire is
			// trusted only when the callee is uniquely resolved.
			for _, pk := range sortedLockKeys(su.releases) {
				if key, ok := normalizeRewrittenKey(prog, fn, t, call, pk); ok {
					delete(fact, key)
				}
			}
			if !unique {
				continue
			}
			for _, pk := range sortedLockKeys(su.acquires) {
				if key, ok := normalizeRewrittenKey(prog, fn, t, call, pk); ok {
					fact[key] = true
				}
			}
		}
	}
	visit(n)
}

// normalizeRewrittenKey maps a callee's parameter-rooted lock to the
// caller's normalized key space at one call site.
func normalizeRewrittenKey(prog *Program, fn *FuncInfo, target *FuncInfo, call *ast.CallExpr, pk lockParamKey) (string, bool) {
	args := callerArgs(fn.Pkg.Info, target, call)
	if pk.param < 0 || pk.param >= len(args) || args[pk.param] == nil {
		return "", false
	}
	arg := ast.Unparen(args[pk.param])
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		arg = ast.Unparen(u.X)
	}
	return normalizeLockExpr(prog, fn, arg, pk.suffix)
}

// normalizeLockExpr renders the lock rooted at expr with the given
// field-path+mode suffix into the cross-function key space: package
// variables by import path, parameter- and receiver-rooted locks by the
// root's type (same-instance assumption), captured and plain locals by
// declaration site.
func normalizeLockExpr(prog *Program, fn *FuncInfo, expr ast.Expr, suffix string) (string, bool) {
	info := fn.Pkg.Info
	root := leftmostIdent(expr)
	if root == nil {
		return "", false
	}
	obj, ok := objOf(info, root).(*types.Var)
	if !ok {
		return "", false
	}
	path := strings.TrimPrefix(types.ExprString(ast.Unparen(expr)), root.Name)
	if isPackageScope(obj) {
		return obj.Pkg().Path() + "." + obj.Name() + path + suffix, true
	}
	for _, p := range detParams(fn) {
		if p == obj {
			return typeRootString(obj.Type()) + path + suffix, true
		}
	}
	pos := prog.Fset.Position(obj.Pos())
	return fmt.Sprintf("local:%s:%d.%s%s%s", shortBase(pos.Filename), pos.Line, obj.Name(), path, suffix), true
}

// typeRootString names a type for lock-key rooting, dereferencing
// pointers.
func typeRootString(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.TypeString(t, nil)
}

// shortBase trims a path to its base name.
func shortBase(name string) string {
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// accessMHP judges may-happen-in-parallel for two accesses of sv: a
// captured local exists once per invocation of its declaring function, so
// it gets the frame-relative relation; a package variable gets the global
// one.
func (sv *SharedVar) accessMHP(conc *Concurrency, a, b *Access) bool {
	if sv.DeclFn != nil {
		return conc.FrameMHP(sv.DeclFn, a.Fn, a.Pos, b.Fn, b.Pos)
	}
	return conc.MHP(a.Fn, a.Pos, b.Fn, b.Pos)
}

// varMHP is accessMHP generalized to any tracked object (the atomicmix
// domain includes fields and plain locals): locals are frame-relative,
// package variables and fields global.
func (idx *sharedIndex) varMHP(conc *Concurrency, obj *types.Var, a, b *Access) bool {
	if !isPackageScope(obj) && !obj.IsField() {
		if d := idx.declFn[obj]; d != nil {
			return conc.FrameMHP(d, a.Fn, a.Pos, b.Fn, b.Pos)
		}
		return false // unindexed declarer: no sharing in view
	}
	return conc.MHP(a.Fn, a.Pos, b.Fn, b.Pos)
}

// guardedPair reports whether accesses a and b share a lock that actually
// orders them: same lock base, and every write side holds the exclusive
// ("/w") mode — a writer under RLock is not guarded against readers.
func guardedPair(a, b *Access) bool {
	for ga := range a.guards {
		baseA, modeA := splitGuard(ga)
		if a.Write && modeA != "w" {
			continue
		}
		for gb := range b.guards {
			baseB, modeB := splitGuard(gb)
			if b.Write && modeB != "w" {
				continue
			}
			if baseA == baseB {
				return true
			}
		}
	}
	return false
}

// splitGuard separates a normalized key into lock base and mode.
func splitGuard(key string) (base, mode string) {
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		return key[:i], key[i+1:]
	}
	return key, ""
}

// GuardInfo is one shared variable's inferred guard domain, rendered for
// the -guards-json debugging dump.
type GuardInfo struct {
	// Var is the variable's printable name.
	Var string `json:"var"`
	// Kind is "package" or "captured".
	Kind string `json:"kind"`
	// Domain is the inferred classification: "atomic" (every access via
	// sync/atomic), "lock" (a common lock across all accesses), "confined"
	// (no two accesses may happen in parallel), "mixed" (atomic and plain
	// accesses coexist — atomicmix territory), "escaped" (address taken,
	// tracking ends), or "unguarded".
	Domain string `json:"domain"`
	// Guards lists the common lock bases of a "lock" classification.
	Guards []string `json:"guards,omitempty"`
	// Contexts renders the goroutine contexts the accesses run under.
	Contexts []string `json:"contexts"`
	// Accesses and Writes count the variable's uses.
	Accesses int `json:"accesses"`
	Writes   int `json:"writes"`
}

// GuardReport computes the guard domain of every shared variable, sorted
// by name then declaration position. It exists for humans debugging a
// racecand finding: the dump shows exactly which domain the inference put
// each variable in and under which contexts its accesses run.
func GuardReport(prog *Program) []GuardInfo {
	conc := prog.Concurrency()
	vars := SharedVars(prog)
	out := make([]GuardInfo, 0, len(vars))
	for _, sv := range vars {
		gi := GuardInfo{
			Var:      sv.Name(prog),
			Kind:     "package",
			Accesses: len(sv.Accesses),
		}
		if sv.DeclFn != nil {
			gi.Kind = "captured"
		}
		allAtomic, anyAtomic, anyPlain := true, false, false
		for _, a := range sv.Accesses {
			if a.Write {
				gi.Writes++
			}
			if a.Atomic {
				anyAtomic = true
			} else {
				allAtomic = false
				anyPlain = true
			}
		}
		gi.Guards = commonGuards(sv.Accesses)
		gi.Contexts = accessContexts(prog, conc, sv.Accesses)
		switch {
		case sv.Escaped:
			gi.Domain = "escaped"
		case allAtomic && anyAtomic:
			gi.Domain = "atomic"
		case len(gi.Guards) > 0:
			gi.Domain = "lock"
		case !anyMHPPair(conc, sv):
			gi.Domain = "confined"
		case anyAtomic && anyPlain:
			gi.Domain = "mixed"
		default:
			gi.Domain = "unguarded"
		}
		out = append(out, gi)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Var < out[j].Var })
	return out
}

// commonGuards returns the sorted lock bases held (in a write-compatible
// mode) across every access, empty when none.
func commonGuards(accs []*Access) []string {
	var common map[string]bool
	for _, a := range accs {
		bases := map[string]bool{}
		for g := range a.guards {
			base, mode := splitGuard(g)
			if a.Write && mode != "w" {
				continue
			}
			bases[base] = true
		}
		if common == nil {
			common = bases
			continue
		}
		for b := range common {
			if !bases[b] {
				delete(common, b)
			}
		}
	}
	out := make([]string, 0, len(common))
	for b := range common {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// anyMHPPair reports whether any two of sv's accesses may run in
// parallel.
func anyMHPPair(conc *Concurrency, sv *SharedVar) bool {
	accs := sv.Accesses
	for i := 0; i < len(accs); i++ {
		for j := i; j < len(accs); j++ {
			if sv.accessMHP(conc, accs[i], accs[j]) {
				return true
			}
		}
	}
	return false
}

// accessContexts renders the deduplicated goroutine contexts of the
// accesses ("root", "go engine.go:173 multi joined", ...).
func accessContexts(prog *Program, conc *Concurrency, accs []*Access) []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range accs {
		for _, id := range conc.ContextsOf(a.Fn) {
			var desc string
			if id == 0 {
				desc = "root"
			} else {
				s := conc.SiteByID(id)
				desc = s.Kind.String() + " " + prog.Position(s.Pos)
				if s.Multi {
					desc += " multi"
				}
				if s.Joined {
					desc += " joined"
				}
			}
			if !seen[desc] {
				seen[desc] = true
				out = append(out, desc)
			}
		}
	}
	sort.Strings(out)
	return out
}
