package analysis

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// runFullLint runs the full registry — package passes plus the
// interprocedural and concurrency program passes — over every module
// package, exactly like `mctlint ./...`, and returns the finding count.
func runFullLint(tb testing.TB, root string) int {
	tb.Helper()
	loader, err := NewLoader(root)
	if err != nil {
		tb.Fatal(err)
	}
	paths, err := loader.PackageDirs(root)
	if err != nil {
		tb.Fatal(err)
	}
	var all []*Package
	n := 0
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			tb.Fatalf("load %s: %v", p, err)
		}
		all = append(all, pkg)
		n += len(RunAnalyzers(NewPass(loader, pkg), Analyzers()))
	}
	prog := NewProgram(loader, all)
	n += len(RunProgramAnalyzers(prog, Analyzers()))
	return n
}

// BenchmarkLintTree measures one full-registry pass over the module: the
// number to watch when adding whole-program analyses.
func BenchmarkLintTree(b *testing.B) {
	root := moduleRoot(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runFullLint(b, root)
	}
}

// TestLintTreeWallClockBudget is the CI ceiling: a full mctlint run
// (intra + inter + concurrency, cold caches) must finish inside the
// budget, so a new whole-program pass cannot silently blow up lint time.
// Override with MCTLINT_BUDGET_SECONDS; the default leaves generous
// headroom over the observed single-digit-second runtime.
func TestLintTreeWallClockBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock budget check skipped in -short")
	}
	budget := 120 * time.Second
	if s := os.Getenv("MCTLINT_BUDGET_SECONDS"); s != "" {
		secs, err := strconv.Atoi(s)
		if err != nil || secs <= 0 {
			t.Fatalf("MCTLINT_BUDGET_SECONDS=%q: want a positive integer", s)
		}
		budget = time.Duration(secs) * time.Second
	}
	start := time.Now()
	runFullLint(t, moduleRoot(t))
	elapsed := time.Since(start)
	t.Logf("full lint pass: %v (budget %v)", elapsed, budget)
	if elapsed > budget {
		t.Fatalf("full mctlint pass took %v, over the %v budget", elapsed, budget)
	}
}
