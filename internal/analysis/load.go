package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of one module using only the
// standard library. Imports within the module are resolved recursively from
// source; standard-library imports come from the toolchain's importer.
type Loader struct {
	Fset       *token.FileSet
	moduleDir  string
	modulePath string

	std     types.Importer
	src     types.Importer      // fallback when no export data is installed
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// NewLoader returns a loader rooted at moduleDir (the directory holding
// go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	modPath, err := modulePathOf(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		moduleDir:  moduleDir,
		modulePath: modPath,
		std:        importer.ForCompiler(fset, "gc", nil),
		src:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// modulePathOf extracts the module path from a go.mod file.
func modulePathOf(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// ModulePath returns the module's import path.
func (l *Loader) ModulePath() string { return l.modulePath }

// Import implements types.Importer: module-internal paths load from source,
// everything else defers to the toolchain importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	pkg, err := l.std.Import(path)
	if err != nil {
		// Toolchains without installed export data (GOROOT/pkg) still
		// typecheck the standard library from source.
		return l.src.Import(path)
	}
	return pkg, nil
}

// dirOf maps a module-internal import path to its directory.
func (l *Loader) dirOf(path string) string {
	if path == l.modulePath {
		return l.moduleDir
	}
	return filepath.Join(l.moduleDir, filepath.FromSlash(strings.TrimPrefix(path, l.modulePath+"/")))
}

// load type-checks one module-internal package (non-test files only),
// caching the result.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	p, err := l.loadDirAs(l.dirOf(path), path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// loadDirAs parses and type-checks the non-test .go files of dir as import
// path path. It is used both for module packages and for test fixtures.
func (l *Loader) loadDirAs(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}

	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}

// LoadFixture loads a standalone fixture directory under the given import
// path (tests use paths like "mct/internal/testdata/<rule>" so rules scoped
// to internal/ apply).
func (l *Loader) LoadFixture(dir, path string) (*Package, error) {
	return l.loadDirAs(dir, path)
}

// PackageDirs returns the import paths of every package under root (a
// directory inside the module), skipping testdata, hidden and underscore
// directories.
func (l *Loader) PackageDirs(root string) ([]string, error) {
	var paths []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(l.moduleDir, filepath.Dir(p))
		if err != nil {
			return err
		}
		ip := l.modulePath
		if rel != "." {
			ip = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		if len(paths) == 0 || paths[len(paths)-1] != ip {
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	// WalkDir visits files of a directory consecutively, but dedupe
	// defensively in case of interleaving.
	out := paths[:0]
	for i, p := range paths {
		if i == 0 || paths[i-1] != p {
			out = append(out, p)
		}
	}
	return out, nil
}

// Load loads (and caches) the package at the given module-internal import
// path.
func (l *Loader) Load(path string) (*Package, error) { return l.load(path) }

// Loaded returns every module-internal package the loader has type-checked
// so far (requested packages and their transitive module dependencies),
// sorted by import path. Fixture packages loaded with LoadFixture are not
// cached and therefore not included.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// NewPass builds an analysis Pass for a loaded package.
func NewPass(l *Loader, p *Package) *Pass {
	return &Pass{
		Fset:    l.Fset,
		PkgPath: p.Path,
		Pkg:     p.Types,
		Files:   p.Files,
		Info:    p.Info,
	}
}
