package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lockOp classifies one sync lock/unlock call site.
type lockOp struct {
	key     string // receiver expression + mode, e.g. "mu/w", "c.mu/r"
	acquire bool
	pos     token.Pos
}

// syncLockOp resolves a call expression to a lock operation on a
// sync.Mutex, sync.RWMutex or sync.Locker receiver (including promoted
// methods of embedded mutexes). TryLock variants are ignored: their result
// is conditional, so balance cannot be judged from the call alone.
func syncLockOp(info *types.Info, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	var mode string
	var acquire bool
	switch fn.Name() {
	case "Lock":
		mode, acquire = "w", true
	case "Unlock":
		mode, acquire = "w", false
	case "RLock":
		mode, acquire = "r", true
	case "RUnlock":
		mode, acquire = "r", false
	default:
		return lockOp{}, false
	}
	return lockOp{key: types.ExprString(sel.X) + "/" + mode, acquire: acquire, pos: call.Pos()}, true
}

// lockFact is the may-be-held set: lock key → position of the acquiring
// call. A key present at function exit means some path returns (or
// panics) without releasing that acquisition and without a deferred
// release covering it.
type lockFact map[string]token.Pos

// lockCalls walks n (skipping nested function literals — their locking is
// analyzed in their own CFG) and yields the sync lock operations found, in
// source order.
func lockCalls(info *types.Info, n ast.Node, visit func(lockOp)) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			if op, ok := syncLockOp(info, call); ok {
				visit(op)
			}
		}
		return true
	})
}

// LockBalance reports mutex acquisitions with some path to function exit —
// return, panic, or falling off the end — that neither unlocks nor defers
// an unlock. On the simulator's hot paths an unlock skipped on an error
// return deadlocks the sweep cache or the worker pool on the next
// acquisition.
var LockBalance = &Analyzer{
	Name: "lockbalance",
	Doc:  "every mu.Lock()/RLock() must be released on all paths to return/panic (Unlock, RUnlock, or defer thereof)",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ForEachFunc(f, func(fn ast.Node, body *ast.BlockStmt, g *CFG) {
				runLockBalance(pass, g)
			})
		}
	},
}

func runLockBalance(pass *Pass, g *CFG) {
	// Fast path: functions without lock calls need no solve.
	any := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			lockCalls(pass.Info, n, func(lockOp) { any = true })
		}
	}
	if !any {
		return
	}

	transfer := func(b *Block, in lockFact) lockFact {
		for _, n := range b.Nodes {
			if d, ok := n.(*ast.DeferStmt); ok {
				// A deferred unlock runs on every subsequent exit path,
				// normal or panicking: the acquisition is covered from here
				// on. This handles both `defer mu.Unlock()` and deferred
				// literals that unlock, like `defer func() { mu.Unlock() }()`.
				if op, ok := syncLockOp(pass.Info, d.Call); ok && !op.acquire {
					delete(in, op.key)
				}
				if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
					ast.Inspect(lit.Body, func(x ast.Node) bool {
						if call, ok := x.(*ast.CallExpr); ok {
							if op, ok := syncLockOp(pass.Info, call); ok && !op.acquire {
								delete(in, op.key)
							}
						}
						return true
					})
				}
				continue
			}
			lockCalls(pass.Info, n, func(op lockOp) {
				if op.acquire {
					if _, held := in[op.key]; !held {
						in[op.key] = op.pos
					}
				} else {
					delete(in, op.key)
				}
			})
		}
		return in
	}

	facts := ForwardSolve(g, FlowSpec[lockFact]{
		Entry:  lockFact{},
		Bottom: func() lockFact { return lockFact{} },
		Clone: func(f lockFact) lockFact {
			c := make(lockFact, len(f))
			for k, v := range f {
				c[k] = v
			}
			return c
		},
		Join: func(dst, src lockFact) lockFact {
			// May-analysis: a lock held on any incoming path is held here.
			// Keep the earliest acquisition position for stable reporting.
			for k, v := range src {
				if old, ok := dst[k]; !ok || v < old {
					dst[k] = v
				}
			}
			return dst
		},
		Equal: func(a, b lockFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if w, ok := b[k]; !ok || w != v {
					return false
				}
			}
			return true
		},
		Transfer: transfer,
	})

	leaked := facts.In[g.Exit]
	keys := make([]string, 0, len(leaked))
	for k := range leaked {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		expr := k[:len(k)-2] // strip "/w" or "/r"
		pass.Reportf(leaked[k], "lockbalance",
			"%s is locked here but not released on every path to return/panic; unlock on all paths or defer the unlock", expr)
	}
}
