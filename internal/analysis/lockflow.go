// lockflow: lockbalance lifted across call boundaries.
//
// The intra-procedural lockbalance rule proves that a mutex locked in a
// function body is released on every path out of that body — but it cannot
// see acquisitions hidden behind helpers: a caller of
//
//	func (s *store) lockIt() { s.mu.Lock() }
//
// holds s.mu without any Lock call appearing in its own body. lockflow
// closes that gap with lock-effect summaries: each function is summarized
// by the set of parameter-rooted locks it net-acquires (still held at
// exit) and net-releases (released without acquiring). At a call site the
// summary is rewritten into the caller's expression space — the callee's
// "recv.mu/w" becomes "s.mu/w" for the call s.lockIt() — and composed into
// the same may-be-held dataflow lockbalance runs. A lock acquired through
// a call and not released on some path to exit (directly, through a
// releasing helper, or via defer of either) is reported at the call site.
//
// Division of labor: acquisitions made directly in the leaking function
// are lockbalance findings and are NOT re-reported here; lockflow reports
// only call-derived holds, so the two rules never double-report.
//
// Approximations (see DESIGN.md): effects are tracked only for locks
// rooted at a parameter or receiver of the callee; interface dispatch with
// multiple possible targets contributes acquisitions (may-analysis) but
// not releases (a release must be certain to cancel a hold); a helper
// that releases only on some of its paths is treated as releasing.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockFlow is the interprocedural lock-balance rule.
var LockFlow = &Analyzer{
	Name:       "lockflow",
	Doc:        "a mutex acquired through a callee (helper lock methods, any depth) must be released on all paths to return/panic in the caller",
	Severity:   "error",
	RunProgram: runLockFlow,
}

// lockParamKey names a lock rooted at a callee parameter: param is the
// index in receiver-then-parameters order, suffix the field path plus mode
// ("" + "/w" when the parameter is the mutex, ".mu/w" for a field).
type lockParamKey struct {
	param  int
	suffix string
}

// lockSummary is one function's lock effect.
type lockSummary struct {
	arity    int
	acquires map[lockParamKey]bool // held at exit on some path
	releases map[lockParamKey]bool // released without acquiring, on some path
}

func newLockSummary(arity int) *lockSummary {
	return &lockSummary{arity: arity, acquires: map[lockParamKey]bool{}, releases: map[lockParamKey]bool{}}
}

func lockSummaryEqual(a, b *lockSummary) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.arity != b.arity || len(a.acquires) != len(b.acquires) || len(a.releases) != len(b.releases) {
		return false
	}
	for k := range a.acquires {
		if !b.acquires[k] {
			return false
		}
	}
	for k := range a.releases {
		if !b.releases[k] {
			return false
		}
	}
	return true
}

func (s *lockSummary) empty() bool {
	return s == nil || (len(s.acquires) == 0 && len(s.releases) == 0)
}

// lfEnt is one held lock in the dataflow fact.
type lfEnt struct {
	pos     token.Pos    // acquiring call position
	via     string       // callee name for call-derived holds, "" for direct
	pk      lockParamKey // caller-parameter rooting, valid when isParam
	isParam bool
}

type lfFact map[string]lfEnt

func runLockFlow(prog *Program) {
	lf := &lockFlowState{prog: prog, graph: prog.CallGraph()}
	lf.sums = lockSummariesOf(prog)
	for _, fn := range prog.Funcs() {
		lf.analyze(fn, func(f *FuncInfo) *lockSummary { return lf.sums[f] }, true)
	}
}

// lockSummariesOf computes (and caches) every function's lock-effect
// summary. lockflow reports from them; the guard-domain inference of
// guards.go reuses them to see critical sections entered through helper
// lock methods.
func lockSummariesOf(prog *Program) map[*FuncInfo]*lockSummary {
	if prog.lockSums != nil {
		return prog.lockSums
	}
	lf := &lockFlowState{prog: prog, graph: prog.CallGraph()}
	solver := &SummarySolver[*lockSummary]{
		Graph:  lf.graph,
		Bottom: func() *lockSummary { return nil },
		Equal:  lockSummaryEqual,
		Compute: func(fn *FuncInfo, get func(*FuncInfo) *lockSummary) *lockSummary {
			return lf.analyze(fn, get, false)
		},
	}
	prog.lockSums = solver.Solve()
	return prog.lockSums
}

type lockFlowState struct {
	prog  *Program
	graph *CallGraph
	sums  map[*FuncInfo]*lockSummary
}

// analyze runs the interprocedural may-be-held solve over one function,
// returning its lock summary and (when report is set) reporting
// call-derived holds that survive to exit.
func (lf *lockFlowState) analyze(fn *FuncInfo, get func(*FuncInfo) *lockSummary, report bool) *lockSummary {
	params := detParams(fn)
	sum := newLockSummary(len(params))
	info := fn.Pkg.Info

	// Fast path: no sync ops and no calls with lock effects → empty summary.
	if !lf.hasLockActivity(fn, get) {
		return sum
	}

	g := fn.CFG()
	transfer := func(b *Block, in lfFact) lfFact {
		for _, n := range b.Nodes {
			if d, ok := n.(*ast.DeferStmt); ok {
				lf.applyDefer(fn, info, d, in, get)
				continue
			}
			lf.scanCalls(fn, info, n, in, get, sum, params)
		}
		return in
	}

	facts := ForwardSolve(g, FlowSpec[lfFact]{
		Entry:  lfFact{},
		Bottom: func() lfFact { return lfFact{} },
		Clone: func(f lfFact) lfFact {
			c := make(lfFact, len(f))
			for k, v := range f {
				c[k] = v
			}
			return c
		},
		Join: func(dst, src lfFact) lfFact {
			for k, v := range src {
				if old, ok := dst[k]; !ok || v.pos < old.pos {
					dst[k] = v
				}
			}
			return dst
		},
		Equal: func(a, b lfFact) bool {
			if len(a) != len(b) {
				return false
			}
			for k, v := range a {
				if w, ok := b[k]; !ok || w != v {
					return false
				}
			}
			return true
		},
		Transfer: transfer,
	})

	held := facts.In[g.Exit]
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		ent := held[k]
		if ent.isParam {
			sum.acquires[ent.pk] = true
		}
		if report && ent.via != "" {
			expr := k[:len(k)-2]
			lf.prog.Reportf(ent.pos, "lockflow",
				"%s is acquired here through call to %s but not released on every path to return/panic; unlock on all paths or defer the release",
				expr, shortFuncName(ent.via))
		}
	}
	return sum
}

// hasLockActivity is the cheap pre-scan: does the body contain a sync lock
// op or a call to a function with a non-empty lock summary?
func (lf *lockFlowState) hasLockActivity(fn *FuncInfo, get func(*FuncInfo) *lockSummary) bool {
	info := fn.Pkg.Info
	found := false
	ast.Inspect(fn.Body(), func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := syncLockOp(info, call); ok {
			found = true
			return false
		}
		for _, t := range lf.graph.CalleesAt(fn, call) {
			if !get(t).empty() {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// scanCalls applies the lock effects of every call under n, in source
// order, to the held set, recording param-rooted net releases into sum.
func (lf *lockFlowState) scanCalls(fn *FuncInfo, info *types.Info, n ast.Node, in lfFact, get func(*FuncInfo) *lockSummary, sum *lockSummary, params []*types.Var) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false // literals are their own call-graph nodes
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := syncLockOp(info, call); ok {
			sel := call.Fun.(*ast.SelectorExpr)
			pk, isParam := lockParamRoot(info, params, sel.X, op.key)
			if op.acquire {
				if _, held := in[op.key]; !held {
					in[op.key] = lfEnt{pos: op.pos, pk: pk, isParam: isParam}
				}
			} else {
				if _, held := in[op.key]; !held && isParam {
					sum.releases[pk] = true
				}
				delete(in, op.key)
			}
			return true
		}
		lf.applyCallSummary(fn, info, call, in, get, sum, params, false)
		return true
	})
}

// applyCallSummary rewrites one callee's lock effects into the caller's
// expression space and applies them. With releasesOnly set (deferred
// calls) acquisitions are ignored.
func (lf *lockFlowState) applyCallSummary(fn *FuncInfo, info *types.Info, call *ast.CallExpr, in lfFact, get func(*FuncInfo) *lockSummary, sum *lockSummary, params []*types.Var, releasesOnly bool) {
	targets := lf.graph.CalleesAt(fn, call)
	if len(targets) == 0 {
		return
	}
	// Releases must be certain to cancel a hold: only a uniquely-resolved
	// callee's releases apply. Acquisitions are may-facts: any target's
	// acquisition counts.
	applyReleases := len(targets) == 1
	for _, t := range targets {
		su := get(t)
		if su.empty() {
			continue
		}
		for _, pk := range sortedLockKeys(su.releases) {
			if !applyReleases {
				break
			}
			key, root, ok := rewriteLockKey(info, t, call, pk)
			if !ok {
				continue
			}
			if _, held := in[key]; !held {
				if cpk, isParam := callerParamKey(info, params, root, key); isParam {
					sum.releases[cpk] = true
				}
			}
			delete(in, key)
		}
		if releasesOnly {
			continue
		}
		for _, pk := range sortedLockKeys(su.acquires) {
			key, root, ok := rewriteLockKey(info, t, call, pk)
			if !ok {
				continue
			}
			if _, held := in[key]; held {
				continue
			}
			cpk, isParam := callerParamKey(info, params, root, key)
			in[key] = lfEnt{pos: call.Pos(), via: t.Name, pk: cpk, isParam: isParam}
		}
	}
}

// applyDefer cancels holds released by a deferred call: a direct deferred
// unlock, a deferred releasing helper, or a deferred literal containing
// either.
func (lf *lockFlowState) applyDefer(fn *FuncInfo, info *types.Info, d *ast.DeferStmt, in lfFact, get func(*FuncInfo) *lockSummary) {
	release := func(call *ast.CallExpr) {
		if op, ok := syncLockOp(info, call); ok {
			if !op.acquire {
				delete(in, op.key)
			}
			return
		}
		targets := lf.graph.CalleesAt(fn, call)
		if len(targets) != 1 {
			return
		}
		su := get(targets[0])
		if su.empty() {
			return
		}
		for _, pk := range sortedLockKeys(su.releases) {
			if key, _, ok := rewriteLockKey(info, targets[0], call, pk); ok {
				delete(in, key)
			}
		}
	}
	release(d.Call)
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			if call, ok := x.(*ast.CallExpr); ok {
				release(call)
			}
			return true
		})
	}
}

// sortedLockKeys returns a summary's keys in deterministic order.
func sortedLockKeys(m map[lockParamKey]bool) []lockParamKey {
	out := make([]lockParamKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].param != out[j].param {
			return out[i].param < out[j].param
		}
		return out[i].suffix < out[j].suffix
	})
	return out
}

// rewriteLockKey maps a callee's parameter-rooted lock key to the caller's
// expression space at one call site, returning the caller-side key and the
// caller argument expression the key is rooted at.
func rewriteLockKey(info *types.Info, target *FuncInfo, call *ast.CallExpr, pk lockParamKey) (string, ast.Expr, bool) {
	args := callerArgs(info, target, call)
	if pk.param < 0 || pk.param >= len(args) || args[pk.param] == nil {
		return "", nil, false
	}
	arg := ast.Unparen(args[pk.param])
	// Strip an explicit & — "&s.st" passed as *store roots the same lock
	// expression as "s.st".
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		arg = ast.Unparen(u.X)
	}
	return types.ExprString(arg) + pk.suffix, arg, true
}

// callerArgs aligns the call's argument expressions to the callee's
// receiver-then-parameters index space.
func callerArgs(info *types.Info, target *FuncInfo, call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if target.Type().Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
				out = append(out, sel.X)
			}
		}
		if len(out) == 0 {
			// Method expression T.M(recv, ...): receiver is args[0] already.
			if len(call.Args) > 0 {
				out = append(out, call.Args[0])
				out = append(out, call.Args[1:]...)
				return out
			}
			return nil
		}
	}
	out = append(out, call.Args...)
	return out
}

// lockParamRoot maps a direct lock op's receiver expression to a
// parameter-rooted key when its base identifier is a parameter or
// receiver.
func lockParamRoot(info *types.Info, params []*types.Var, recvExpr ast.Expr, key string) (lockParamKey, bool) {
	root := leftmostIdent(recvExpr)
	if root == nil {
		return lockParamKey{}, false
	}
	obj := objOf(info, root)
	if obj == nil {
		return lockParamKey{}, false
	}
	for i, p := range params {
		if p == obj {
			if !strings.HasPrefix(key, root.Name) {
				return lockParamKey{}, false
			}
			return lockParamKey{param: i, suffix: strings.TrimPrefix(key, root.Name)}, true
		}
	}
	return lockParamKey{}, false
}

// callerParamKey maps a caller-side lock key rooted at expression root to
// the caller's own parameter space, for transitive summaries.
func callerParamKey(info *types.Info, params []*types.Var, root ast.Expr, key string) (lockParamKey, bool) {
	if root == nil {
		return lockParamKey{}, false
	}
	return lockParamRoot(info, params, root, key)
}

// leftmostIdent returns the base identifier of a selector/index/deref
// chain, nil when the base is not an identifier.
func leftmostIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
