package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange reports ranges over maps whose iteration order can leak into an
// output or an ordering-sensitive accumulation. Go randomizes map iteration
// order per run, so a report row, a formatted line, or a float sum built
// directly from a map range differs between identically-seeded runs — the
// exact nondeterminism class the reproduction's byte-identical-report tests
// guard against.
//
// A range over a map is fine when its effects are order-insensitive
// (copying into another map, counting with integers) or when it only
// collects keys/values into a slice that is sorted before use — the
// canonical fix. The analyzer recognizes that idiom with the CFG: an
// accumulation is exempt when the collecting slice reaches a sort.* or
// slices.Sort* call in a block reachable from the loop.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "no map iteration whose order reaches output or an order-sensitive accumulation; sort keys first",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ForEachFunc(f, func(fn ast.Node, body *ast.BlockStmt, g *CFG) {
				runMapRange(pass, body, g)
			})
		}
	},
}

// fmtOutputFuncs are the fmt functions that write somewhere. The Sprint
// family returns a value instead; if that value lands in an accumulation,
// the accumulation rules catch it (with the sorted-slice exemption intact).
var fmtOutputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// outputMethods are method names that write to a sink (io.Writer
// implementations, string builders, report tables). Exact names, not
// prefixes: a domain method like WriteEnergy is a lookup, not a writer.
var outputMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"AddRow": true, "Note": true,
}

func runMapRange(pass *Pass, body *ast.BlockStmt, g *CFG) {
	// Find the map ranges of this function only; nested literals get their
	// own visit.
	var ranges []*ast.RangeStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if r, ok := n.(*ast.RangeStmt); ok {
			if tv, ok := pass.Info.Types[r.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					ranges = append(ranges, r)
				}
			}
		}
		return true
	})
	for _, r := range ranges {
		checkMapRange(pass, body, g, r)
	}
}

// objOf resolves an identifier to its object (definition or use).
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// rootIdent returns the leftmost identifier of an lvalue chain
// (b.NVMWrite → b, xs[i] → xs).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func checkMapRange(pass *Pass, fnBody *ast.BlockStmt, g *CFG, r *ast.RangeStmt) {
	// Taint starts at the loop variables and spreads through assignments
	// inside the body, so `s := m[k]; buf.WriteString(s)` is caught too.
	taint := map[types.Object]bool{}
	addTaint := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if o := objOf(pass.Info, id); o != nil {
				taint[o] = true
			}
		}
	}
	if r.Key != nil {
		addTaint(r.Key)
	}
	if r.Value != nil {
		addTaint(r.Value)
	}

	mentionsTaint := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok {
				if o := objOf(pass.Info, id); o != nil && taint[o] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	declaredOutsideLoop := func(o types.Object) bool {
		return o != nil && (o.Pos() < r.Body.Pos() || o.Pos() >= r.Body.End())
	}

	type accum struct {
		obj  types.Object // the collecting slice (exemption candidate)
		pos  token.Pos
		what string
	}
	var accums []accum

	ast.Inspect(r.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			// Taint propagation through straight assignments.
			if len(x.Lhs) == len(x.Rhs) {
				for i, rhs := range x.Rhs {
					if mentionsTaint(rhs) {
						if id, ok := x.Lhs[i].(*ast.Ident); ok {
							addTaint(id)
						}
					}
				}
			}
			switch x.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				// Order-sensitive compound accumulation: float rounding and
				// string concatenation depend on iteration order; integer
				// sums do not.
				lhs := x.Lhs[0]
				tv, ok := pass.Info.Types[lhs]
				if !ok {
					return true
				}
				basic, ok := tv.Type.Underlying().(*types.Basic)
				if !ok {
					return true
				}
				sensitive := basic.Info()&types.IsFloat != 0 ||
					basic.Info()&types.IsComplex != 0 ||
					(x.Tok == token.ADD_ASSIGN && basic.Info()&types.IsString != 0)
				if !sensitive || !mentionsTaint(x.Rhs[0]) {
					return true
				}
				if root := rootIdent(lhs); root != nil && declaredOutsideLoop(objOf(pass.Info, root)) {
					pass.Reportf(x.Pos(), "maprange",
						"map iteration accumulates into %s in random order (%s is order-sensitive); iterate sorted keys",
						types.ExprString(lhs), basic.String())
				}
			default:
				// Slice accumulation: xs = append(xs, ...tainted...).
				for i, rhs := range x.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || len(call.Args) < 2 {
						continue
					}
					id, ok := call.Fun.(*ast.Ident)
					if !ok || id.Name != "append" {
						continue
					}
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
						continue // user-defined append
					}
					tainted := false
					for _, a := range call.Args[1:] {
						if mentionsTaint(a) {
							tainted = true
						}
					}
					if !tainted || i >= len(x.Lhs) {
						continue
					}
					root := rootIdent(x.Lhs[i])
					if root == nil {
						continue
					}
					o := objOf(pass.Info, root)
					if declaredOutsideLoop(o) {
						accums = append(accums, accum{obj: o, pos: x.Pos(), what: types.ExprString(x.Lhs[i])})
					}
				}
			}

		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			argsTainted := false
			for _, a := range x.Args {
				if mentionsTaint(a) {
					argsTainted = true
				}
			}
			if !argsTainted {
				return true
			}
			if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
				if fn.Pkg().Path() == "fmt" && fmtOutputFuncs[fn.Name()] {
					pass.Reportf(x.Pos(), "maprange",
						"map iteration order reaches fmt.%s output; iterate sorted keys instead", fn.Name())
					return true
				}
			}
			if pass.Info.Selections[sel] != nil && outputMethods[sel.Sel.Name] {
				pass.Reportf(x.Pos(), "maprange",
					"map iteration order reaches output method %s; iterate sorted keys instead", sel.Sel.Name)
			}
		}
		return true
	})

	// Sorted-slice exemption: an accumulation is the first half of the
	// canonical collect-then-sort idiom when the slice flows into a sort
	// call in a block reachable from this loop.
	for _, a := range accums {
		if !sortReaches(pass, fnBody, g, r, a.obj) {
			pass.Reportf(a.pos, "maprange",
				"map iteration appends to %s in random order and %s is never sorted; sort it before use", a.what, a.what)
		}
	}
}

// sortReaches reports whether obj is passed to a sort.* or slices.* call
// located in a block reachable from the range's head block.
func sortReaches(pass *Pass, fnBody *ast.BlockStmt, g *CFG, r *ast.RangeStmt, obj types.Object) bool {
	head := g.BlockOf(r)
	var reach map[*Block]bool
	if head != nil {
		reach = g.ReachableFrom(head)
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		mentions := false
		for _, a := range call.Args {
			ast.Inspect(a, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok && objOf(pass.Info, id) == obj {
					mentions = true
				}
				return !mentions
			})
		}
		if !mentions {
			return true
		}
		if reach != nil {
			if b := g.BlockContaining(call.Pos()); b != nil && !reach[b] {
				// The sort happens on a path that cannot follow the loop
				// (e.g. an earlier return); it does not fix this range.
				return true
			}
		}
		found = true
		return false
	})
	return found
}
