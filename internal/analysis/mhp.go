// Goroutine topology and the may-happen-in-parallel (MHP) relation.
//
// The engine worker pool made "which two statements can run at the same
// time" a first-class correctness question: the determinism bar (byte
// identical results at any worker count) is only as strong as the absence
// of races, and `-race` observes just the interleavings one run happens to
// schedule. This layer answers the question statically, on top of the
// existing call graph.
//
// Construction:
//
//   - A SpawnSite is a place a new goroutine context is born: a `go`
//     statement (targets resolved like any call), or a task closure handed
//     to the engine package (engine.Map and friends run their function
//     arguments on a pool of workers — including progress callbacks
//     nested in an Options literal).
//   - Every function body is assigned the set of contexts it may run
//     under: the root context (id 0) for anything reachable from an
//     ordinary call chain, plus one context per spawn site whose targets
//     can reach it over call, dispatch or ref edges.
//   - A site is Multi when more than one instance of its goroutine can be
//     live at once: the `go` statement sits in a loop, the site is an
//     engine fan-out, or the spawner itself runs in a Multi context
//     (computed to a fixpoint).
//   - A site is Joined when the spawner provably waits for the goroutine
//     before continuing: engine fan-outs are synchronous by contract, and
//     a `go` whose body calls Done on a sync.WaitGroup that the spawner
//     Waits on downstream of the spawn counts as joined.
//
// MHP(a, b) then holds when some context of a's function and some context
// of b's function can be live simultaneously: two distinct spawn contexts,
// a Multi context against itself, or a spawn context against the root
// unless the site is Joined. One refinement uses the spawner's CFG: an
// instruction in the spawner that cannot be re-reached from the spawn
// block happens before the spawn and is therefore ordered with it.
//
// Known-unsound corners (see DESIGN.md): goroutines launched through
// plain function-typed values are invisible (no call-graph edge);
// WaitGroup join detection is may-not-must (a Wait on one path counts);
// channel synchronization does not order contexts. The relation
// over-approximates in every other direction.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpawnKind classifies how a goroutine context comes into being.
type SpawnKind int

const (
	// SpawnGo is a `go` statement.
	SpawnGo SpawnKind = iota
	// SpawnEngine is a function value handed to the engine worker pool.
	SpawnEngine
)

// String names the kind for messages and the guards dump.
func (k SpawnKind) String() string {
	if k == SpawnEngine {
		return "engine"
	}
	return "go"
}

// SpawnSite is one goroutine-creating location.
type SpawnSite struct {
	// ID is the context id, >= 1 (0 is the root context).
	ID int
	// Fn is the spawning function.
	Fn *FuncInfo
	// Pos is the `go` statement or engine call position.
	Pos token.Pos
	// Targets are the program functions the goroutine may start in.
	Targets []*FuncInfo
	// Kind distinguishes `go` statements from engine fan-outs.
	Kind SpawnKind
	// Multi reports that several instances of this goroutine can be live
	// at once.
	Multi bool
	// Joined reports that the spawner waits for the goroutine before its
	// own continuation runs.
	Joined bool

	reach map[*Block]bool // spawner blocks reachable from the spawn block
}

// Concurrency is the program's goroutine topology: spawn sites plus the
// context assignment the MHP relation is computed from.
type Concurrency struct {
	Prog *Program
	// Sites lists every spawn site in deterministic (spawner, position)
	// order; Sites[i].ID == i+1.
	Sites []*SpawnSite

	ctxs    map[*FuncInfo][]int
	litSite map[*FuncInfo]*SpawnSite
}

// Concurrency builds (and caches) the goroutine topology.
func (prog *Program) Concurrency() *Concurrency {
	if prog.conc != nil {
		return prog.conc
	}
	c := &Concurrency{Prog: prog, ctxs: map[*FuncInfo][]int{}}
	c.findSites()
	c.assignContexts()
	c.solveMulti()
	prog.conc = c
	return c
}

// ContextsOf returns the sorted context ids fn may run under (empty for a
// function the topology never reaches — dead code keeps no contexts).
func (c *Concurrency) ContextsOf(fn *FuncInfo) []int { return c.ctxs[fn] }

// SiteByID returns the spawn site with the given context id, nil for the
// root context.
func (c *Concurrency) SiteByID(id int) *SpawnSite {
	if id <= 0 || id > len(c.Sites) {
		return nil
	}
	return c.Sites[id-1]
}

// findSites walks every function body for `go` statements and engine
// fan-out calls. Nested literal bodies are skipped — they are their own
// FuncInfo and are visited in program order.
func (c *Concurrency) findSites() {
	for _, fn := range c.Prog.Funcs() {
		g := c.Prog.CallGraph()
		info := fn.Pkg.Info
		ast.Inspect(fn.Body(), func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			switch x := n.(type) {
			case *ast.GoStmt:
				c.addSite(&SpawnSite{
					Fn:      fn,
					Pos:     x.Pos(),
					Targets: g.CalleesAt(fn, x.Call),
					Kind:    SpawnGo,
					Multi:   inLoopAt(fn, x.Pos()),
					Joined:  goStmtJoined(c.Prog, fn, x),
				})
				// The spawned call's arguments (and a literal's body) are
				// walked separately; skipping here avoids treating the
				// argument expressions as part of the spawner's straight
				// line, but argument sub-calls can still spawn — keep
				// walking everything but the literal bodies.
				return true
			case *ast.CallExpr:
				if targets := engineTaskTargets(c.Prog, info, x); len(targets) > 0 {
					c.addSite(&SpawnSite{
						Fn:      fn,
						Pos:     x.Pos(),
						Targets: targets,
						Kind:    SpawnEngine,
						Multi:   true,
						Joined:  true,
					})
				}
			}
			return true
		})
	}
}

func (c *Concurrency) addSite(s *SpawnSite) {
	s.ID = len(c.Sites) + 1
	c.Sites = append(c.Sites, s)
}

// engineTaskTargets resolves the function-valued arguments of a call into
// the engine package: each is a task the worker pool may run concurrently.
func engineTaskTargets(prog *Program, info *types.Info, call *ast.CallExpr) []*FuncInfo {
	callee := calleeFuncObj(info, call)
	if callee == nil || callee.Pkg() == nil || !isEnginePkg(callee.Pkg().Path()) {
		return nil
	}
	var targets []*FuncInfo
	seen := map[*FuncInfo]bool{}
	add := func(fi *FuncInfo) {
		if fi != nil && !seen[fi] {
			seen[fi] = true
			targets = append(targets, fi)
		}
	}
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit:
				add(prog.LitOf(x))
				return false
			case *ast.Ident:
				if tf, ok := info.Uses[x].(*types.Func); ok {
					add(prog.FuncOf(tf))
				}
			}
			return true
		})
	}
	return targets
}

// calleeFuncObj resolves a call's operator to the declared function it
// names, nil for dynamic calls.
func calleeFuncObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		tf, _ := info.Uses[f].(*types.Func)
		return tf
	case *ast.SelectorExpr:
		tf, _ := info.Uses[f.Sel].(*types.Func)
		return tf
	}
	return nil
}

// goStmtJoined detects the WaitGroup join idiom: the spawned call
// references Done (or the group itself) on a sync.WaitGroup object that
// the spawner calls Wait on in a block reachable from the spawn. This is a
// may-join (a Wait on one path counts), documented as an unsound corner.
func goStmtJoined(prog *Program, fn *FuncInfo, g *ast.GoStmt) bool {
	groups := map[types.Object]bool{}
	info := fn.Pkg.Info
	ast.Inspect(g.Call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := objOf(info, id)
		if obj != nil && isWaitGroupType(obj.Type()) {
			groups[obj] = true
		}
		return true
	})
	if len(groups) == 0 {
		return false
	}
	spawnBlock := blockAt(fn, g.Pos())
	if spawnBlock == nil {
		return false
	}
	reach := fn.CFG().ReachableFrom(spawnBlock)
	joined := false
	ast.Inspect(fn.Body(), func(n ast.Node) bool {
		if joined {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			return true
		}
		root := leftmostIdent(sel.X)
		if root == nil || !groups[objOf(info, root)] {
			return true
		}
		if b := blockAt(fn, call.Pos()); b != nil && reach[b] {
			joined = true
		}
		return true
	})
	return joined
}

// isWaitGroupType reports whether t (possibly behind a pointer) is
// sync.WaitGroup.
func isWaitGroupType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// inLoopAt reports whether the statement at pos sits on a CFG cycle of fn.
func inLoopAt(fn *FuncInfo, pos token.Pos) bool {
	b := blockAt(fn, pos)
	return b != nil && fn.CFG().InLoop(b)
}

// blockAt resolves pos to fn's CFG block.
func blockAt(fn *FuncInfo, pos token.Pos) *Block {
	return fn.CFG().BlockContaining(pos)
}

// assignContexts computes, for every function, the contexts it may run
// under: a root BFS over every edge that is not a spawn edge, then one BFS
// per site from its targets over all edges.
func (c *Concurrency) assignContexts() {
	g := c.Prog.CallGraph()

	type pair struct{ caller, callee *FuncInfo }
	spawnEdge := map[pair]bool{}
	for _, s := range c.Sites {
		for _, t := range s.Targets {
			spawnEdge[pair{s.Fn, t}] = true
		}
	}

	add := func(fn *FuncInfo, ctx int) bool {
		for _, have := range c.ctxs[fn] {
			if have == ctx {
				return false
			}
		}
		c.ctxs[fn] = append(c.ctxs[fn], ctx)
		return true
	}

	// Root context: every declared function is a potential ordinary-call
	// root (exported or not — tests and main packages call them), as is a
	// package-scope initializer literal. Literals are reached only through
	// non-spawn edges: a closure that exists solely as a spawn target runs
	// in its spawn context alone.
	var queue []*FuncInfo
	for _, fn := range c.Prog.Funcs() {
		if fn.Decl != nil || fn.Encl == nil {
			if add(fn, 0) {
				queue = append(queue, fn)
			}
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, e := range g.Out[fn] {
			if spawnEdge[pair{e.Caller, e.Callee}] {
				continue
			}
			if add(e.Callee, 0) {
				queue = append(queue, e.Callee)
			}
		}
	}

	// Spawn contexts: everything reachable from a site's targets over any
	// edge kind runs (also) under that site.
	for _, s := range c.Sites {
		queue = queue[:0]
		for _, t := range s.Targets {
			if t != nil && add(t, s.ID) {
				queue = append(queue, t)
			}
		}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			for _, e := range g.Out[fn] {
				if add(e.Callee, s.ID) {
					queue = append(queue, e.Callee)
				}
			}
		}
	}
}

// solveMulti propagates multiplicity: a spawn whose spawner itself runs in
// a Multi context, or in two contexts that are parallel with each other,
// can have several live instances even if the `go` statement is not in a
// loop. Iterated to a fixpoint (Multi only ever flips false→true).
func (c *Concurrency) solveMulti() {
	for changed := true; changed; {
		changed = false
		for _, s := range c.Sites {
			if s.Multi {
				continue
			}
			ctxs := c.ctxs[s.Fn]
			for _, id := range ctxs {
				// Spawner recursive into its own spawn context, or running
				// under another Multi site.
				if id == s.ID || (id > 0 && c.Sites[id-1].Multi) {
					s.Multi = true
					changed = true
					break
				}
			}
			if s.Multi {
				continue
			}
			// Two distinct contexts of the spawner that are mutually
			// parallel also imply two live instances.
			for i := 0; i < len(ctxs) && !s.Multi; i++ {
				for j := i + 1; j < len(ctxs); j++ {
					if c.parallelCtx(ctxs[i], ctxs[j]) {
						s.Multi = true
						changed = true
						break
					}
				}
			}
		}
	}
}

// parallelCtx reports whether contexts x and y can be live simultaneously.
func (c *Concurrency) parallelCtx(x, y int) bool {
	if x == 0 && y == 0 {
		return false // one root context: ordinary sequential calls
	}
	if x == y {
		return c.Sites[x-1].Multi
	}
	if x == 0 || y == 0 {
		s := c.SiteByID(x + y) // the non-root one
		return !s.Joined
	}
	sx, sy := c.SiteByID(x), c.SiteByID(y)
	// Two joined fan-outs launched from the same body run sequentially —
	// unless that body itself has several live instances.
	if sx.Joined && sy.Joined && sx.Fn == sy.Fn && !c.selfParallel(sx.Fn) {
		return false
	}
	return true
}

// selfParallel reports whether two instances of fn can be live at once
// under any of its contexts.
func (c *Concurrency) selfParallel(fn *FuncInfo) bool {
	ctxs := c.ctxs[fn]
	for _, id := range ctxs {
		if id > 0 && c.Sites[id-1].Multi {
			return true
		}
	}
	for i := 0; i < len(ctxs); i++ {
		for j := i + 1; j < len(ctxs); j++ {
			x, y := ctxs[i], ctxs[j]
			if x == 0 || y == 0 {
				if s := c.SiteByID(x + y); !s.Joined {
					return true
				}
				continue
			}
			sx, sy := c.SiteByID(x), c.SiteByID(y)
			if sx.Joined && sy.Joined && sx.Fn == sy.Fn {
				continue
			}
			return true
		}
	}
	return false
}

// MHP reports whether the instruction at (af, apos) may execute in
// parallel with the instruction at (bf, bpos). Beyond the context-level
// relation it applies one happens-before refinement: an instruction in the
// spawner that the spawn block cannot re-reach is ordered before the
// spawn, so it cannot overlap that site's goroutine.
func (c *Concurrency) MHP(af *FuncInfo, apos token.Pos, bf *FuncInfo, bpos token.Pos) bool {
	for _, ca := range c.ctxs[af] {
		for _, cb := range c.ctxs[bf] {
			if !c.parallelCtx(ca, cb) {
				continue
			}
			if ca == 0 && cb > 0 && c.beforeSpawn(af, apos, c.SiteByID(cb)) {
				continue
			}
			if cb == 0 && ca > 0 && c.beforeSpawn(bf, bpos, c.SiteByID(ca)) {
				continue
			}
			return true
		}
	}
	return false
}

// frameCtx is an access's position in the spawn structure of one
// invocation frame: the innermost spawned ancestor of its function within
// the declaring function's closure family, plus the multiplicity and join
// behavior of the whole ancestor chain.
type frameCtx struct {
	site   *SpawnSite // innermost spawned ancestor's site; nil = the frame's own goroutine
	multi  bool       // some spawned ancestor can have several live instances
	joined bool       // every spawned ancestor is joined before its spawner continues
}

// FrameMHP judges whether two accesses to a variable owned by one
// invocation frame of declFn may run in parallel. The global MHP relation
// is wrong for locals: a function called from two goroutines runs in two
// contexts, but each invocation owns a fresh copy of its locals, so only
// the spawn structure *inside* one frame — the `go` statements and engine
// fan-outs in declFn and its nested literals — can make two accesses to a
// captured local race. Accesses from outside the closure family (only
// possible through an escaped address, tracked separately) report false.
func (c *Concurrency) FrameMHP(declFn *FuncInfo, af *FuncInfo, apos token.Pos, bf *FuncInfo, bpos token.Pos) bool {
	ca, oka := c.frameCtxOf(declFn, af)
	cb, okb := c.frameCtxOf(declFn, bf)
	if !oka || !okb {
		return false
	}
	if !frameParallel(ca, cb) {
		return false
	}
	if ca.site == nil && cb.site != nil && c.beforeSpawn(af, apos, cb.site) {
		return false
	}
	if cb.site == nil && ca.site != nil && c.beforeSpawn(bf, bpos, ca.site) {
		return false
	}
	return true
}

// frameCtxOf walks f's Encl chain up to declFn, collecting the spawn
// sites that separate the access's goroutine from the frame's own. The
// second result is false when f is not in declFn's closure family.
func (c *Concurrency) frameCtxOf(declFn, f *FuncInfo) (frameCtx, bool) {
	fc := frameCtx{joined: true}
	for f != declFn {
		if f == nil || f.Lit == nil {
			return frameCtx{}, false
		}
		if s := c.siteSpawning(f); s != nil {
			if fc.site == nil {
				fc.site = s
			}
			fc.multi = fc.multi || s.Multi
			fc.joined = fc.joined && s.Joined
		}
		f = f.Encl
	}
	return fc, true
}

// siteSpawning returns the spawn site that launches literal fn as a
// goroutine, nil when fn only runs by ordinary call.
func (c *Concurrency) siteSpawning(fn *FuncInfo) *SpawnSite {
	if c.litSite == nil {
		c.litSite = map[*FuncInfo]*SpawnSite{}
		for _, s := range c.Sites {
			for _, t := range s.Targets {
				if t != nil && t.Lit != nil && c.litSite[t] == nil {
					c.litSite[t] = s
				}
			}
		}
	}
	return c.litSite[fn]
}

// frameParallel applies the context rules within one frame: the frame's
// own goroutine is sequential with itself; a fully-joined spawn chain is
// ordered with the frame; a context is parallel with itself only when
// some ancestor is Multi; two sibling joined fan-outs from the same body
// run sequentially.
func frameParallel(ca, cb frameCtx) bool {
	switch {
	case ca.site == nil && cb.site == nil:
		return false
	case ca.site == nil:
		return !cb.joined
	case cb.site == nil:
		return !ca.joined
	case ca.site == cb.site:
		return ca.multi || cb.multi
	case ca.joined && cb.joined && ca.site.Fn == cb.site.Fn && !ca.multi && !cb.multi:
		return false
	}
	return true
}

// beforeSpawn reports whether the instruction at pos in fn is ordered
// before spawn site s: fn is the spawner and the spawn block cannot reach
// the instruction's block (so no iteration re-executes it after the
// spawn).
func (c *Concurrency) beforeSpawn(fn *FuncInfo, pos token.Pos, s *SpawnSite) bool {
	if s == nil || s.Fn != fn {
		return false
	}
	sb := blockAt(fn, s.Pos)
	if sb == nil {
		return false
	}
	if s.reach == nil {
		s.reach = fn.CFG().ReachableFrom(sb)
	}
	b := blockAt(fn, pos)
	if b == nil {
		return false
	}
	if b == sb {
		// Same straight-line block: textual order decides, unless the block
		// loops (then an earlier statement re-runs after the spawn).
		return pos < s.Pos && !fn.CFG().InLoop(b)
	}
	return !s.reach[b]
}
