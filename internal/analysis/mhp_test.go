package analysis

import (
	"go/token"
	"strings"
	"testing"
)

// accessPos finds the position of the n-th occurrence (1-based) of needle
// in the snippet function fn's body text span — used to anchor MHP
// queries to specific statements.
func posOf(t *testing.T, prog *Program, fn *FuncInfo, needle string, n int) token.Pos {
	t.Helper()
	file := prog.Fset.File(fn.Pos())
	if file == nil {
		t.Fatalf("no file for %s", fn.Name)
	}
	// Reconstruct the body's source via offsets over the file content held
	// by the fixture loader is overkill: scan the function's identifiers.
	var found token.Pos
	count := 0
	for _, a := range collectIdentPositions(prog, fn) {
		if a.name == needle {
			count++
			if count == n {
				found = a.pos
				break
			}
		}
	}
	if found == token.NoPos {
		t.Fatalf("needle %q (#%d) not found in %s", needle, n, fn.Name)
	}
	return found
}

type identPos struct {
	name string
	pos  token.Pos
}

func collectIdentPositions(prog *Program, fn *FuncInfo) []identPos {
	var out []identPos
	for _, sv := range SharedVars(prog) {
		for _, a := range sv.Accesses {
			if a.Fn == fn {
				out = append(out, identPos{sv.Obj.Name(), a.Pos})
			}
		}
	}
	return out
}

const topologySnippet = `package snippet

import "sync"

var counter int

// spawnLoop launches unjoined goroutines from a loop.
func spawnLoop() int {
	for i := 0; i < 3; i++ {
		go func() {
			counter++
		}()
	}
	return counter
}

// joined spawns once and waits.
func joined() int {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		counter++
	}()
	wg.Wait()
	return counter
}
`

func TestSpawnTopology(t *testing.T) {
	prog := loadSnippet(t, topologySnippet)
	conc := prog.Concurrency()

	var loopSite, joinSite *SpawnSite
	for _, s := range conc.Sites {
		switch s.Fn.Name {
		case snipName(prog, "spawnLoop"):
			loopSite = s
		case snipName(prog, "joined"):
			joinSite = s
		}
	}
	if loopSite == nil || joinSite == nil {
		t.Fatalf("expected spawn sites in both functions; have %d sites", len(conc.Sites))
	}
	if !loopSite.Multi {
		t.Errorf("go-in-loop site not Multi")
	}
	if loopSite.Joined {
		t.Errorf("unjoined go-in-loop site marked Joined")
	}
	if joinSite.Multi {
		t.Errorf("single wait-grouped spawn marked Multi")
	}
	if !joinSite.Joined {
		t.Errorf("WaitGroup-joined spawn not marked Joined")
	}
	if loopSite.Kind != SpawnGo || loopSite.Kind.String() != "go" {
		t.Errorf("go statement site kind = %v", loopSite.Kind)
	}

	// The spawned literals run only under their spawn context; the
	// declared functions run under root.
	lit := mustFunc(t, prog, snipName(prog, "spawnLoop")+"$1")
	if got := conc.ContextsOf(lit); len(got) != 1 || got[0] != loopSite.ID {
		t.Errorf("spawned literal contexts = %v, want [%d]", got, loopSite.ID)
	}
	root := mustFunc(t, prog, snipName(prog, "spawnLoop"))
	hasRoot := false
	for _, id := range conc.ContextsOf(root) {
		if id == 0 {
			hasRoot = true
		}
	}
	if !hasRoot {
		t.Errorf("declared function missing root context: %v", conc.ContextsOf(root))
	}
}

func TestMHPRelation(t *testing.T) {
	prog := loadSnippet(t, topologySnippet)
	conc := prog.Concurrency()

	loopFn := mustFunc(t, prog, snipName(prog, "spawnLoop"))
	loopLit := mustFunc(t, prog, snipName(prog, "spawnLoop")+"$1")
	joinFn := mustFunc(t, prog, snipName(prog, "joined"))
	joinLit := mustFunc(t, prog, snipName(prog, "joined")+"$1")

	wLoop := posOf(t, prog, loopLit, "counter", 1)
	rLoop := posOf(t, prog, loopFn, "counter", 1)
	wJoin := posOf(t, prog, joinLit, "counter", 1)
	rJoin := posOf(t, prog, joinFn, "counter", 1)

	// MHP is symmetric by construction; check both orders where it matters.
	if !conc.MHP(loopLit, wLoop, loopFn, rLoop) || !conc.MHP(loopFn, rLoop, loopLit, wLoop) {
		t.Errorf("unjoined goroutine write vs spawner read: want MHP")
	}
	if !conc.MHP(loopLit, wLoop, loopLit, wLoop) {
		t.Errorf("go-in-loop goroutine vs itself: want MHP (Multi)")
	}
	if conc.MHP(joinLit, wJoin, joinFn, rJoin) {
		t.Errorf("joined goroutine vs post-Wait read: want ordered")
	}
	if conc.MHP(joinLit, wJoin, joinLit, wJoin) {
		t.Errorf("single joined goroutine vs itself: want ordered")
	}
	// Cross-function: both goroutines exist (loop spawns are unjoined and
	// escape their spawner's lifetime ordering).
	if !conc.MHP(loopLit, wLoop, joinLit, wJoin) {
		t.Errorf("two distinct spawn contexts: want MHP")
	}
}

const frameSnippet = `package snippet

// perFrame's local is captured by its goroutine: only the frame's own
// spawn structure may parallelize accesses, not the fact that perFrame is
// itself callable from other goroutines.
func perFrame() int {
	n := 0
	n = 1
	go func() {
		_ = n
	}()
	return n
}

// caller runs perFrame under another goroutine context.
func caller() {
	go func() {
		_ = perFrame()
	}()
	_ = perFrame()
}
`

func TestFrameRelativeMHP(t *testing.T) {
	prog := loadSnippet(t, frameSnippet)
	conc := prog.Concurrency()

	fn := mustFunc(t, prog, snipName(prog, "perFrame"))
	lit := mustFunc(t, prog, snipName(prog, "perFrame")+"$1")

	wInit := posOf(t, prog, fn, "n", 1)  // n = 1, before the spawn
	rAfter := posOf(t, prog, fn, "n", 2) // return n, after the spawn
	rGo := posOf(t, prog, lit, "n", 1)   // the goroutine's read

	// perFrame runs under root AND under caller's go context, so the
	// global relation sees two parallel invocations — but each owns its
	// own n.
	if !conc.MHP(fn, rAfter, fn, rAfter) {
		t.Fatalf("global MHP should see perFrame parallel with itself (called from a goroutine)")
	}
	if conc.FrameMHP(fn, fn, rAfter, fn, rAfter) {
		t.Errorf("frame-relative: the frame body is one goroutine, not parallel with itself")
	}
	if conc.FrameMHP(fn, fn, wInit, lit, rGo) {
		t.Errorf("frame-relative: write before spawn is ordered with the goroutine")
	}
	if !conc.FrameMHP(fn, fn, rAfter, lit, rGo) {
		t.Errorf("frame-relative: post-spawn read vs unjoined goroutine read: want MHP")
	}
}

const guardSnippet = `package snippet

import "sync"

var mu sync.Mutex
var guarded int
var bare int

func worker() {
	go func() {
		mu.Lock()
		guarded++
		mu.Unlock()
		bare++
	}()
	mu.Lock()
	_ = guarded
	mu.Unlock()
	_ = bare
}

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) lockIt() { b.mu.Lock() }

var shared = &box{}

func helperGuard() {
	go func() {
		shared.lockIt()
		shared.n++
		shared.mu.Unlock()
	}()
}
`

func TestGuardDomains(t *testing.T) {
	prog := loadSnippet(t, guardSnippet)
	report := GuardReport(prog)
	domains := map[string]GuardInfo{}
	for _, gi := range report {
		short := gi.Var[strings.LastIndexByte(gi.Var, '.')+1:]
		domains[short] = gi
	}
	if gi := domains["guarded"]; gi.Domain != "lock" {
		t.Errorf("guarded: domain = %q (guards %v), want lock", gi.Domain, gi.Guards)
	} else if len(gi.Guards) != 1 || !strings.HasSuffix(gi.Guards[0], ".mu") {
		t.Errorf("guarded: guards = %v, want the package mutex", gi.Guards)
	}
	if gi := domains["bare"]; gi.Domain != "unguarded" {
		t.Errorf("bare: domain = %q, want unguarded", gi.Domain)
	}
}

// TestGuardSummaryReuse pins the lockflow-summary handoff: a critical
// section entered through a helper lock method still guards the accesses
// inside it.
func TestGuardSummaryReuse(t *testing.T) {
	prog := loadSnippet(t, guardSnippet)
	idx := sharedIndexOf(prog)
	lit := mustFunc(t, prog, snipName(prog, "helperGuard")+"$1")
	found := false
	for obj, accs := range idx.accesses {
		if obj.Name() != "n" {
			continue
		}
		for _, a := range accs {
			if a.Fn != lit || !a.Write {
				continue
			}
			found = true
			if len(a.guards) == 0 {
				t.Errorf("shared.n++ after shared.lockIt(): no guards stamped")
			}
			for g := range a.guards {
				// The receiver is the package var shared, so the key roots at
				// the instance: "<pkg>.shared.mu/w".
				if !strings.Contains(g, "shared") || !strings.HasSuffix(g, ".mu/w") {
					t.Errorf("unexpected guard key %q, want shared-rooted .mu/w", g)
				}
			}
		}
	}
	if !found {
		t.Fatalf("write access to shared.n not indexed")
	}
}

// TestGuardReportDeterministic runs the inference twice over fresh
// programs and requires identical dumps: the -guards-json artifact must
// be byte-stable.
func TestGuardReportDeterministic(t *testing.T) {
	a := GuardReport(loadSnippet(t, guardSnippet))
	b := GuardReport(loadSnippet(t, guardSnippet))
	if len(a) != len(b) {
		t.Fatalf("report lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		ga, gb := a[i], b[i]
		if ga.Var != gb.Var || ga.Domain != gb.Domain || ga.Accesses != gb.Accesses ||
			ga.Writes != gb.Writes || strings.Join(ga.Guards, ",") != strings.Join(gb.Guards, ",") ||
			strings.Join(ga.Contexts, ",") != strings.Join(gb.Contexts, ",") {
			t.Errorf("entry %d differs between runs:\n  %+v\n  %+v", i, ga, gb)
		}
	}
}
