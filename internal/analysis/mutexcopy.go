package analysis

import (
	"go/ast"
	"go/types"
)

// containsLock reports whether a value of type t copied by value would copy
// a sync.Mutex or sync.RWMutex (directly, or embedded in struct fields or
// arrays).
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

func lockByValue(t types.Type) bool {
	if _, ok := t.(*types.Pointer); ok {
		return false
	}
	return containsLock(t, map[types.Type]bool{})
}

// copiesExisting reports whether the expression copies an existing value
// (identifier, field, index, or dereference chains) rather than producing a
// fresh one (composite literal, function call).
func copiesExisting(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copiesExisting(x.X)
	}
	return false
}

// MutexCopy flags by-value copies of structs containing sync.Mutex or
// sync.RWMutex: the copy shares nothing with the original's lock state, so
// critical sections guarding shared data silently stop excluding each
// other.
var MutexCopy = &Analyzer{
	Name: "mutexcopy",
	Doc:  "no by-value copies of structs containing sync.Mutex/RWMutex (assignments, params, receivers, returns)",
	Run: func(pass *Pass) {
		checkFieldList := func(fl *ast.FieldList, what string) {
			if fl == nil {
				return
			}
			for _, field := range fl.List {
				tv, ok := pass.Info.Types[field.Type]
				if !ok || !lockByValue(tv.Type) {
					continue
				}
				pass.Reportf(field.Type.Pos(), "mutexcopy",
					"%s passes a lock-containing struct by value; use a pointer", what)
			}
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncDecl:
					checkFieldList(x.Recv, "receiver")
					checkFieldList(x.Type.Params, "parameter")
					checkFieldList(x.Type.Results, "result")
				case *ast.AssignStmt:
					for i, rhs := range x.Rhs {
						if len(x.Rhs) != len(x.Lhs) {
							break // f() multi-value: covered by result check
						}
						if id, ok := x.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
						tv, ok := pass.Info.Types[rhs]
						if !ok || !lockByValue(tv.Type) || !copiesExisting(rhs) {
							continue
						}
						pass.Reportf(rhs.Pos(), "mutexcopy",
							"assignment copies a lock-containing struct by value; use a pointer")
					}
				case *ast.GenDecl:
					for _, spec := range x.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, v := range vs.Values {
							tv, ok := pass.Info.Types[v]
							if !ok || !lockByValue(tv.Type) || !copiesExisting(v) {
								continue
							}
							pass.Reportf(v.Pos(), "mutexcopy",
								"declaration copies a lock-containing struct by value; use a pointer")
						}
					}
				case *ast.RangeStmt:
					// Ranging over []T or map[K]T with lock-containing T
					// copies every element.
					if x.Value == nil {
						return true
					}
					// With :=, the value is a defined ident and lives in
					// Info.Defs; with =, it is an evaluated expression in
					// Info.Types.
					var vt types.Type
					if tv, ok := pass.Info.Types[x.Value]; ok {
						vt = tv.Type
					} else if id, ok := x.Value.(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							vt = obj.Type()
						} else if obj := pass.Info.Uses[id]; obj != nil {
							vt = obj.Type()
						}
					}
					if vt != nil && lockByValue(vt) {
						pass.Reportf(x.Value.Pos(), "mutexcopy",
							"range copies lock-containing struct elements by value; range over indices or pointers")
					}
				}
				return true
			})
		}
	},
}
