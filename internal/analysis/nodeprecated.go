// nodeprecated: no new callers of deprecated identifiers.
//
// The facade retired its paired-variant functions behind the versioned api
// package (PR 10); this rule is what keeps them retired. Any declaration —
// function, method, type, constant or variable — whose doc comment carries
// a "Deprecated:" line marks its identifier, and every use of a marked
// identifier outside deprecated code is a finding. The rule is
// program-scoped because deprecation lives in the doc comments of *other*
// packages' declarations, which only the whole-program view carries; a
// single-package pass sees types.Objects but not the doc text behind them.
//
// Uses lexically inside a declaration that is itself deprecated are exempt:
// a deprecated shim may keep calling the older thing it wraps until both
// are deleted together.
package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoDeprecated reports uses of identifiers whose declarations carry a
// "Deprecated:" doc line.
var NoDeprecated = &Analyzer{
	Name:       "nodeprecated",
	Doc:        "use of a deprecated identifier (declaration doc says Deprecated:)",
	RunProgram: runNoDeprecated,
}

// deprecationNote returns the text after "Deprecated:" on the first doc
// line carrying the marker (the Go convention puts it at a paragraph
// start).
func deprecationNote(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if rest, ok := strings.CutPrefix(line, "Deprecated:"); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// specDeprecation resolves one GenDecl spec's deprecation: the spec's own
// doc wins, else the block doc covers every spec in the block.
func specDeprecation(spec ast.Spec, blockNote string, blockOK bool) (string, bool) {
	var doc *ast.CommentGroup
	switch sp := spec.(type) {
	case *ast.TypeSpec:
		doc = sp.Doc
	case *ast.ValueSpec:
		doc = sp.Doc
	}
	if note, ok := deprecationNote(doc); ok {
		return note, true
	}
	return blockNote, blockOK
}

func runNoDeprecated(prog *Program) {
	// Pass 1: collect every deprecated object across the whole view —
	// module-internal dependencies included, so a facade deprecation is
	// visible to its external callers.
	deprecated := map[types.Object]string{}
	for _, p := range prog.Packages {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				switch x := d.(type) {
				case *ast.FuncDecl:
					if note, ok := deprecationNote(x.Doc); ok {
						if obj := p.Info.Defs[x.Name]; obj != nil {
							deprecated[obj] = note
						}
					}
				case *ast.GenDecl:
					blockNote, blockOK := deprecationNote(x.Doc)
					for _, spec := range x.Specs {
						note, ok := specDeprecation(spec, blockNote, blockOK)
						if !ok {
							continue
						}
						switch sp := spec.(type) {
						case *ast.TypeSpec:
							if obj := p.Info.Defs[sp.Name]; obj != nil {
								deprecated[obj] = note
							}
						case *ast.ValueSpec:
							for _, name := range sp.Names {
								if obj := p.Info.Defs[name]; obj != nil {
									deprecated[obj] = note
								}
							}
						}
					}
				}
			}
		}
	}
	if len(deprecated) == 0 {
		return
	}

	// Pass 2: flag uses in the analyzed packages, skipping declarations
	// that are themselves deprecated.
	for _, p := range prog.Analyze {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				switch x := d.(type) {
				case *ast.FuncDecl:
					if _, ok := deprecationNote(x.Doc); ok {
						continue
					}
					reportDeprecatedUses(prog, p, x, deprecated)
				case *ast.GenDecl:
					blockNote, blockOK := deprecationNote(x.Doc)
					for _, spec := range x.Specs {
						if _, ok := specDeprecation(spec, blockNote, blockOK); ok {
							continue
						}
						reportDeprecatedUses(prog, p, spec, deprecated)
					}
				}
			}
		}
	}
}

// reportDeprecatedUses flags every identifier under n that resolves to a
// deprecated object.
func reportDeprecatedUses(prog *Program, p *Package, n ast.Node, deprecated map[types.Object]string) {
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Info.Uses[id]
		if obj == nil {
			return true
		}
		note, ok := deprecated[obj]
		if !ok {
			return true
		}
		name := obj.Name()
		if obj.Pkg() != nil && obj.Pkg() != p.Types {
			name = obj.Pkg().Name() + "." + name
		}
		if note != "" {
			prog.Reportf(id.Pos(), "nodeprecated", "use of deprecated %s (Deprecated: %s)", name, note)
		} else {
			prog.Reportf(id.Pos(), "nodeprecated", "use of deprecated %s", name)
		}
		return true
	})
}
