package analysis

import (
	"go/ast"
	"go/types"
)

// randGlobalFuncs are the math/rand package-level functions that draw from
// (or mutate) the process-global source.
var randGlobalFuncs = map[string]bool{
	"Float32": true, "Float64": true,
	"Int": true, "Int31": true, "Int31n": true, "Int63": true, "Int63n": true,
	"Intn": true, "Uint32": true, "Uint64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
	"NormFloat64": true, "ExpFloat64": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true,
}

// randConstructors mint new sources; library code must instead receive an
// injected *rand.Rand created by internal/rng (the audited chokepoint).
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func isMathRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// NoRandGlobal flags draws from math/rand's global source and ad-hoc RNG
// construction outside tests. Experiments must be a pure function of their
// seed flags, so all randomness flows through injected *rand.Rand values
// built by internal/rng.
var NoRandGlobal = &Analyzer{
	Name: "norandglobal",
	Doc:  "no math/rand global-source draws or ad-hoc rand.New/NewSource outside tests; inject a *rand.Rand from internal/rng",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || !isMathRandPkg(fn.Pkg().Path()) {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // method on an injected *rand.Rand: fine
				}
				name := fn.Name()
				switch {
				case randGlobalFuncs[name]:
					pass.Reportf(call.Pos(), "norandglobal",
						"rand.%s draws from the global source; take an injected *rand.Rand (internal/rng) so runs are seed-reproducible", name)
				case randConstructors[name]:
					pass.Reportf(call.Pos(), "norandglobal",
						"rand.%s constructs an ad-hoc source; build streams via internal/rng so all randomness derives from the seed flags", name)
				}
				return true
			})
		}
	},
}
