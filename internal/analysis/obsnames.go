package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// ObsNames checks metric registrations on obs.Registry. The observability
// layer's determinism contract rests on metric identity being static: a
// dump is byte-stable only when every instrument name is a compile-time
// string drawn from one grammar, and a name registered twice in one
// constructor is almost always a copy-paste error that the runtime
// collision check would only catch when that code path executes. The rule
// enforces, at every Counter/Gauge/Histogram/VolatileGauge/
// VolatileHistogram call site:
//
//   - the name argument is a compile-time string constant (no runtime
//     concatenation, no variables);
//   - the name matches the registry grammar [a-z0-9_.]+;
//   - within one function body, each name is registered at most once
//     (cross-function re-lookup, as in clone rebinding, is legitimate:
//     getOrCreate is idempotent).
var ObsNames = &Analyzer{
	Name: "obsnames",
	Doc:  "metric names must be literal [a-z0-9_.]+ strings, registered once per function",
	Run: func(pass *Pass) {
		for _, f := range pass.Files {
			ForEachFunc(f, func(fn ast.Node, body *ast.BlockStmt, g *CFG) {
				runObsNames(pass, body)
			})
		}
	},
}

// obsRegisterMethods are the registration entry points of obs.Registry.
var obsRegisterMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"VolatileGauge": true, "VolatileHistogram": true,
}

// obsNameRe mirrors the registry's runtime grammar check.
var obsNameRe = regexp.MustCompile(`^[a-z0-9_.]+$`)

// isObsRegistryMethod reports whether the call is one of the registration
// methods of the observability registry (package path ending in
// "internal/obs").
func isObsRegistryMethod(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !obsRegisterMethods[sel.Sel.Name] {
		return "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if ok && fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/obs") {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			return sel.Sel.Name, true
		}
	}
	return "", false
}

func runObsNames(pass *Pass, body *ast.BlockStmt) {
	seen := map[string]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// Nested literals get their own ForEachFunc visit (and their
			// own duplicate scope).
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := isObsRegistryMethod(pass, call)
		if !ok || len(call.Args) == 0 {
			return true
		}
		arg := call.Args[0]
		tv, ok := pass.Info.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.Reportf(arg.Pos(), "obsnames",
				"metric name passed to %s must be a compile-time string constant", method)
			return true
		}
		name := constant.StringVal(tv.Value)
		if !obsNameRe.MatchString(name) {
			pass.Reportf(arg.Pos(), "obsnames",
				"metric name %q does not match the registry grammar [a-z0-9_.]+", name)
			return true
		}
		if prev, dup := seen[name]; dup {
			pass.Reportf(arg.Pos(), "obsnames",
				"metric %q already registered in this function (first at line %d)",
				name, pass.Fset.Position(prev).Line)
			return true
		}
		seen[name] = arg.Pos()
		return true
	})
}
