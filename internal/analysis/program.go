// The whole-program view behind the interprocedural analyzers.
//
// A Program aggregates every package of one load (the packages requested
// for analysis plus their transitive module-internal dependencies) and
// indexes all function bodies — declarations and function literals — as
// FuncInfo nodes. The call graph (callgraph.go) and the summary solver
// (summaries.go) operate on these nodes; analyzers report through
// Program.Reportf, which scopes findings to the analyzed packages and
// deduplicates the repeats that naturally fall out of fixpoint iteration.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FuncInfo is one function body in the program: a declared function or
// method (Decl/Obj set) or a function literal (Lit/Encl set).
type FuncInfo struct {
	// Pkg is the package holding the body.
	Pkg *Package
	// Decl is the declaration, nil for literals.
	Decl *ast.FuncDecl
	// Obj is the type-checker object of a declared function, nil for
	// literals.
	Obj *types.Func
	// Lit is the literal, nil for declarations.
	Lit *ast.FuncLit
	// Encl is the function enclosing a literal (nil for declarations and
	// for literals in package-scope initializers).
	Encl *FuncInfo
	// Name is a stable printable identifier: the type-checker's FullName
	// for declarations ("mct/internal/sim.Evaluate",
	// "(*mct/internal/nvm.Controller).Read"), the enclosing name plus
	// "$<n>" for literals.
	Name string

	cfg *CFG
}

// Body returns the function's body block.
func (f *FuncInfo) Body() *ast.BlockStmt {
	if f.Decl != nil {
		return f.Decl.Body
	}
	return f.Lit.Body
}

// Node returns the declaration or literal node.
func (f *FuncInfo) Node() ast.Node {
	if f.Decl != nil {
		return f.Decl
	}
	return f.Lit
}

// Pos returns the function's source position.
func (f *FuncInfo) Pos() token.Pos { return f.Node().Pos() }

// Type returns the function's signature.
func (f *FuncInfo) Type() *types.Signature {
	if f.Obj != nil {
		return f.Obj.Type().(*types.Signature)
	}
	if tv, ok := f.Pkg.Info.Types[f.Lit]; ok {
		if sig, ok := tv.Type.(*types.Signature); ok {
			return sig
		}
	}
	return types.NewSignatureType(nil, nil, nil, nil, nil, false)
}

// CFG lazily builds (and caches) the function's control-flow graph.
func (f *FuncInfo) CFG() *CFG {
	if f.cfg == nil {
		f.cfg = NewCFG(f.Node())
	}
	return f.cfg
}

// Program is the whole-program view: every package of one load plus the
// function index over them.
type Program struct {
	Fset *token.FileSet
	// ModulePath is the module's import-path prefix.
	ModulePath string
	// Packages is every package in the view, sorted by import path.
	Packages []*Package
	// Analyze is the subset whose files findings may be reported in.
	Analyze []*Package

	funcs map[*types.Func]*FuncInfo
	lits  map[*ast.FuncLit]*FuncInfo
	infos []*FuncInfo // deterministic order: package, file, source position

	analyzeFile map[string]bool
	seen        map[Diagnostic]bool
	diags       []Diagnostic

	graph    *CallGraph
	conc     *Concurrency
	lockSums map[*FuncInfo]*lockSummary
	shared   *sharedIndex
}

// NewProgram builds the program view over everything the loader has loaded
// plus the given analysis-scope packages (which may include uncached
// fixture packages). Findings are reported only inside the analyze set.
func NewProgram(l *Loader, analyze []*Package) *Program {
	byPath := map[string]*Package{}
	for _, p := range l.Loaded() {
		byPath[p.Path] = p
	}
	for _, p := range analyze {
		byPath[p.Path] = p
	}
	pkgs := make([]*Package, 0, len(byPath))
	for _, p := range byPath {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })

	prog := &Program{
		Fset:        l.Fset,
		ModulePath:  l.ModulePath(),
		Packages:    pkgs,
		Analyze:     analyze,
		funcs:       map[*types.Func]*FuncInfo{},
		lits:        map[*ast.FuncLit]*FuncInfo{},
		analyzeFile: map[string]bool{},
		seen:        map[Diagnostic]bool{},
	}
	for _, p := range analyze {
		for _, f := range p.Files {
			prog.analyzeFile[l.Fset.Position(f.Pos()).Filename] = true
		}
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			prog.indexFile(p, f)
		}
	}
	return prog
}

// indexFile registers every function body of one file, declarations first
// in source order, literals nested under their enclosing function.
func (prog *Program) indexFile(p *Package, file *ast.File) {
	// Literal counter per enclosing function, for stable $n names.
	litCount := map[*FuncInfo]int{}
	fileLits := 0

	var walk func(n ast.Node, encl *FuncInfo) bool
	walk = func(n ast.Node, encl *FuncInfo) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body == nil {
				return false
			}
			obj, _ := p.Info.Defs[x.Name].(*types.Func)
			if obj == nil {
				return false
			}
			fi := &FuncInfo{Pkg: p, Decl: x, Obj: obj, Name: obj.FullName()}
			prog.funcs[obj] = fi
			prog.infos = append(prog.infos, fi)
			ast.Inspect(x.Body, func(m ast.Node) bool { return m == x.Body || walk(m, fi) })
			return false
		case *ast.FuncLit:
			fi := &FuncInfo{Pkg: p, Lit: x, Encl: encl}
			if encl != nil {
				litCount[encl]++
				fi.Name = fmt.Sprintf("%s$%d", encl.Name, litCount[encl])
			} else {
				fileLits++
				fi.Name = fmt.Sprintf("%s.init$%d", p.Path, fileLits)
			}
			prog.lits[x] = fi
			prog.infos = append(prog.infos, fi)
			ast.Inspect(x.Body, func(m ast.Node) bool { return m == x.Body || walk(m, fi) })
			return false
		}
		return true
	}
	ast.Inspect(file, func(n ast.Node) bool { return n == file || walk(n, nil) })
}

// Funcs returns every function body in the program in deterministic order.
func (prog *Program) Funcs() []*FuncInfo { return prog.infos }

// FuncOf returns the FuncInfo of a declared function object (resolved
// through Origin for generic instantiations), nil when the function has no
// body in the program.
func (prog *Program) FuncOf(obj *types.Func) *FuncInfo {
	if obj == nil {
		return nil
	}
	return prog.funcs[obj.Origin()]
}

// LitOf returns the FuncInfo of a function literal.
func (prog *Program) LitOf(lit *ast.FuncLit) *FuncInfo { return prog.lits[lit] }

// LookupFunc finds a function by its printable Name. Test helper-grade
// linear scan.
func (prog *Program) LookupFunc(name string) *FuncInfo {
	for _, fi := range prog.infos {
		if fi.Name == name {
			return fi
		}
	}
	return nil
}

// InternalPath reports whether path is inside the module.
func (prog *Program) InternalPath(path string) bool {
	return path == prog.ModulePath || strings.HasPrefix(path, prog.ModulePath+"/")
}

// Reportf records a finding at pos. Findings outside the analyzed packages
// are dropped (interprocedural analyzers traverse dependency bodies, but a
// run over ./internal/sim must not report inside ./internal/nvm), as are
// exact duplicates (summary fixpoints revisit functions).
func (prog *Program) Reportf(pos token.Pos, rule, format string, args ...any) {
	d := Diagnostic{
		Pos:     prog.Fset.Position(pos),
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	}
	if !prog.analyzeFile[d.Pos.Filename] || prog.seen[d] {
		return
	}
	prog.seen[d] = true
	prog.diags = append(prog.diags, d)
}

// takeDiagnostics returns and clears the accumulated findings.
func (prog *Program) takeDiagnostics() []Diagnostic {
	out := prog.diags
	prog.diags = nil
	return out
}

// Position renders a short file:line location for messages (base name only:
// messages must stay stable under baseline matching even when the tree
// moves).
func (prog *Program) Position(pos token.Pos) string {
	p := prog.Fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}
