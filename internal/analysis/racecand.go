package analysis

// RaceCand flags statically-detectable data-race candidates: a shared
// variable (package-level, or a local captured by a goroutine closure)
// with a plain write in one goroutine context and a plain access in
// another, where the two accesses may happen in parallel and share no
// mode-correct lock.
//
// This is the static complement of `go test -race`: the race detector
// only sees interleavings the scheduler exercises in one run, so a racy
// write on a rarely-taken branch ships silently. racecand judges the
// pairing from the MHP relation (mhp.go) and the guarded-by inference
// (guards.go) instead, so the branch need never execute.
//
// Out of scope, by design (see DESIGN.md "Concurrency analysis"):
// receiver fields (worker-local clones of simulator state would drown the
// signal), variables whose address escapes (aliased access is invisible),
// and pairs where one side is atomic (that discipline mix is atomicmix's
// finding).
var RaceCand = &Analyzer{
	Name:       "racecand",
	Doc:        "a shared variable written in one goroutine context and accessed without a common lock in a parallel context is a data-race candidate",
	Severity:   "error",
	RunProgram: runRaceCand,
}

func runRaceCand(prog *Program) {
	conc := prog.Concurrency()
	for _, sv := range SharedVars(prog) {
		if sv.Escaped {
			continue
		}
		w, other := findRacePair(conc, sv)
		if w == nil {
			continue
		}
		what := "read"
		if other.Write {
			what = "written"
		}
		prog.Reportf(w.Pos, "racecand",
			"%s is written in %s and %s in %s without a common lock; the accesses may happen in parallel",
			sv.Name(prog), shortFuncName(w.Fn.Name), what, shortFuncName(other.Fn.Name))
	}
}

// findRacePair returns the first (in program order) plain write that may
// happen in parallel with another plain access of the same variable
// without a shared mode-correct guard, plus that other access.
func findRacePair(conc *Concurrency, sv *SharedVar) (*Access, *Access) {
	for _, w := range sv.Accesses {
		if !w.Write || w.Atomic {
			continue
		}
		for _, a := range sv.Accesses {
			if a.Atomic || a == w {
				continue
			}
			if !sv.accessMHP(conc, w, a) {
				continue
			}
			if guardedPair(w, a) {
				continue
			}
			return w, a
		}
		// A write may race with itself when its own context is
		// self-parallel (go-in-loop, engine fan-out).
		if sv.accessMHP(conc, w, w) && !guardedPair(w, w) {
			return w, w
		}
	}
	return nil, nil
}
