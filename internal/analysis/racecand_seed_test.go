package analysis

import (
	"strings"
	"sync"
	"testing"
)

// seededRaceSnippet carries a deliberate data race on a branch the
// runtime mirror below never takes: workers bump a shared counter without
// a lock, but only when verbose stats are enabled. A single
// `go test -race` run of the mirror sees nothing — the racy statement
// never executes — while racecand flags it statically. This is the
// repo's proof that the static pass catches what one dynamic run misses.
const seededRaceSnippet = `package snippet

import "sync"

// statsEvery enables the (racy) progress counter; the production path
// leaves it zero.
var statsEvery int

var processed int

func process(items []int) int {
	var wg sync.WaitGroup
	sum := 0
	var mu sync.Mutex
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			sum += it
			mu.Unlock()
			if statsEvery > 0 {
				processed++ // the seeded bug: unguarded shared write
			}
		}()
	}
	wg.Wait()
	return sum
}
`

// TestRaceCandCatchesUnexercisedRace is the static half: the seeded bug
// is reported even though no execution reaches it.
func TestRaceCandCatchesUnexercisedRace(t *testing.T) {
	prog := loadSnippet(t, seededRaceSnippet)
	runRaceCand(prog)
	diags := prog.takeDiagnostics()
	var hit bool
	for _, d := range diags {
		if d.Rule == "racecand" && strings.Contains(d.Message, "processed") {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("racecand missed the seeded unguarded write; got %v", diags)
	}
	// The guarded accumulator must NOT be reported: the finding is the
	// seeded bug, not lock-discipline noise.
	for _, d := range diags {
		if strings.Contains(d.Message, "sum ") || strings.Contains(d.Message, ".sum is") {
			t.Errorf("false positive on the mutex-guarded accumulator: %s", d.Message)
		}
	}
}

// The runtime mirror of seededRaceSnippet, branch dormant. Kept textually
// parallel to the snippet: if you edit one, edit both.
var mirrorStatsEvery int
var mirrorProcessed int

func mirrorProcess(items []int) int {
	var wg sync.WaitGroup
	sum := 0
	var mu sync.Mutex
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			sum += it
			mu.Unlock()
			if mirrorStatsEvery > 0 {
				mirrorProcessed++
			}
		}()
	}
	wg.Wait()
	return sum
}

// TestSeededRaceSilentUnderSingleRaceRun is the dynamic half: executed
// under `go test -race` (the CI race-full job), the mirror runs the
// concurrent code with the stats branch off and the race detector reports
// nothing — the interleaving that would expose the bug never happens. The
// assertion is on the computed sum; the real assertion is the absence of
// a -race report for a function that racecand provably flags.
func TestSeededRaceSilentUnderSingleRaceRun(t *testing.T) {
	items := make([]int, 64)
	want := 0
	for i := range items {
		items[i] = i
		want += i
	}
	if got := mirrorProcess(items); got != want {
		t.Fatalf("mirrorProcess = %d, want %d", got, want)
	}
	if mirrorProcessed != 0 {
		t.Fatalf("stats branch unexpectedly executed")
	}
}
