// Bottom-up, memoized function summaries over call-graph SCCs.
//
// A summary-based interprocedural analysis describes each function by a
// finite abstraction of its behavior — which parameters flow to which
// results, which effects the body performs — and composes those summaries
// at call sites instead of inlining bodies. SummarySolver owns the
// scheduling half of that recipe: it walks the call graph's SCCs in
// reverse topological order (callees before callers, so a summary is
// usually final before its first use) and iterates mutually recursive
// components to a fixpoint. The analysis half — what a summary is and how
// one function's summary is computed given its callees' — is the client's
// Compute callback, which typically runs a FlowSpec dataflow solve (see
// dataflow.go) over the function body.
//
// Termination: Compute must be monotone in its callees' summaries (a
// bigger input summary can only produce a bigger output) and the summary
// domain finite, the same contract ForwardSolve imposes on facts. A
// rounds cap guards against a non-monotone client, mirroring the solver's
// budget.
package analysis

// SummarySolver computes one summary of type S per call-graph node.
type SummarySolver[S any] struct {
	// Graph is the call graph to walk.
	Graph *CallGraph
	// Bottom returns the summary assumed for a function not yet computed
	// (the identity the fixpoint grows from, and the final answer for
	// functions outside the program).
	Bottom func() S
	// Compute builds fn's summary. get returns the current summary of any
	// other node — final for callees in earlier SCCs, the running
	// approximation for members of fn's own SCC.
	Compute func(fn *FuncInfo, get func(*FuncInfo) S) S
	// Equal reports summary equality, the SCC fixpoint test.
	Equal func(a, b S) bool
	// MaxRounds caps fixpoint iterations per SCC (0 means an internal
	// default generous enough for any monotone client).
	MaxRounds int
}

// Solve computes every node's summary.
func (s *SummarySolver[S]) Solve() map[*FuncInfo]S {
	sums := make(map[*FuncInfo]S, len(s.Graph.Nodes))
	get := func(fn *FuncInfo) S {
		if v, ok := sums[fn]; ok {
			return v
		}
		return s.Bottom()
	}
	for _, scc := range s.Graph.SCCs() {
		recursive := len(scc) > 1 || s.selfLoop(scc[0])
		rounds := s.MaxRounds
		if rounds <= 0 {
			rounds = 8 + 2*len(scc)
		}
		for r := 0; r < rounds; r++ {
			changed := false
			for _, fn := range scc {
				next := s.Compute(fn, get)
				if !s.Equal(next, get(fn)) {
					sums[fn] = next
					changed = true
				}
			}
			if !changed || !recursive {
				break
			}
		}
	}
	return sums
}

// selfLoop reports whether fn calls itself directly.
func (s *SummarySolver[S]) selfLoop(fn *FuncInfo) bool {
	for _, e := range s.Graph.Out[fn] {
		if callEdge(e.Kind) && e.Callee == fn {
			return true
		}
	}
	return false
}
