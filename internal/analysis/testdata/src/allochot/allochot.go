// Fixture for the allochot rule: allocation sites in functions reachable
// from a //mctlint:hotpath root are reported (including through plain
// calls and closure references), unreachable functions stay silent, and
// reasoned ignores sanction amortized growth.
package allochot

var sink []int

var tasks []func()

// step is the marked hot-path root.
//
//mctlint:hotpath
func step(buf []int) []int {
	for i := 0; i < 4; i++ {
		buf = append(buf, i) // want allochot
	}
	//mctlint:ignore allochot fixture: amortized growth is sanctioned
	buf = append(buf, 99)
	enqueue(func() { // want allochot
		sink = helper(sink)
	})
	return helper(buf)
}

// helper is one call level below the root: still hot.
func helper(buf []int) []int {
	scratch := make([]int, 8) // want allochot
	_ = scratch
	return buf
}

// enqueue receives the closure; the closure body is hot through the
// reference edge, so helper's allocation above is found either way.
func enqueue(f func()) {
	tasks = append(tasks, f) // want allochot
}

// cold is unreachable from any root: its allocation is not hot.
func cold() *int {
	return new(int)
}
