// Fixture for the atomicmix rule: a variable or field with sync/atomic
// accesses in one goroutine context and plain accesses in a parallel one
// has lost the atomic guarantee. Plain initialization that happens-before
// the goroutines spawn is fine, as is a consistently-atomic or
// consistently-plain discipline.
package atomicmix

import "sync/atomic"

// mixedRead: workers update n atomically, the spawner polls it plainly
// while they run.
type gauge struct{ n uint64 }

var g gauge

func mixedRead() uint64 {
	for i := 0; i < 4; i++ {
		go func() {
			atomic.AddUint64(&g.n, 1)
		}()
	}
	return g.n // want atomicmix
}

// mixedWrite: a plain reset races the atomic adders.
type meter struct{ v uint64 }

var m meter

func atomicBump() {
	go func() {
		atomic.AddUint64(&m.v, 1)
	}()
}

func plainReset() {
	m.v = 0 // want atomicmix
}

// methodStyle: the typed-atomic API mixes just as badly with a plain
// field read (reading the Int64's cell through an embedded plain alias).
var spins int64

func methodAdd() {
	go func() {
		atomic.AddInt64(&spins, 1)
	}()
	_ = spins // want atomicmix
}

// initThenSpawn is the happens-before negative: the plain write is
// ordered before the goroutines exist.
type tally struct{ c uint64 }

func initThenSpawn() *tally {
	t := &tally{}
	t.c = 0
	go func() {
		atomic.AddUint64(&t.c, 1)
	}()
	return t
}

// allAtomic and allPlain are the single-discipline negatives.
var clean uint64

func allAtomic() uint64 {
	go func() {
		atomic.AddUint64(&clean, 1)
	}()
	return atomic.LoadUint64(&clean)
}

var plain int

func allPlain() int {
	plain = 1
	return plain
}

// suppressed proves the ignore directive covers atomicmix findings.
var quiet uint64

func atomicQuiet() {
	go func() {
		atomic.AddUint64(&quiet, 1)
	}()
}

func plainQuiet() uint64 {
	//mctlint:ignore atomicmix fixture: suppression must cover concurrency rules
	return quiet
}
