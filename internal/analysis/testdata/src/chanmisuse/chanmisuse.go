// Fixture for the chanmisuse rule: channel protocol hazards — a send on
// a channel nobody receives from, double-close candidates, and a
// busy-spinning select-with-default in a loop. Escaped channels (passed,
// returned, stored) are exempt from the send/receive accounting: their
// protocol can't be judged from the uses in view.
package chanmisuse

import "time"

// noReceiver: the channel never escapes and nothing receives — the send
// blocks forever (or, buffered as here, is never drained).
func noReceiver() {
	ch := make(chan int, 1)
	ch <- 1 // want chanmisuse
}

// doubleClose: the second close panics.
func doubleClose() {
	ch := make(chan int)
	go func() {
		<-ch
	}()
	close(ch)
	close(ch) // want chanmisuse
}

// closeInLoop: the second iteration panics.
func closeInLoop(n int) {
	ch := make(chan int)
	go func() {
		<-ch
	}()
	for i := 0; i < n; i++ {
		close(ch) // want chanmisuse
	}
}

// spin: the default arm does nothing, so the loop burns a core polling.
func spin(ch chan int) bool {
	for {
		select { // want chanmisuse
		case <-ch:
			return true
		default:
		}
	}
}

// sendRecv is the paired-protocol negative: a receive exists.
func sendRecv() int {
	ch := make(chan int, 4)
	go func() {
		ch <- 1
	}()
	return <-ch
}

// handoff escapes the channel into another function: the send is exempt
// because the receive may live behind the call.
func handoff() {
	ch := make(chan int, 1)
	ch <- 1
	sink(ch)
}

func sink(<-chan int) {}

// rebound closes two distinct incarnations of the variable: fine.
func rebound() {
	ch := make(chan int)
	close(ch)
	ch = make(chan int)
	close(ch)
}

// backoff yields in the default arm: a legitimate poll loop.
func backoff(ch chan int) bool {
	for {
		select {
		case <-ch:
			return true
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

// oneShot: select-with-default outside a loop is a plain non-blocking
// poll.
func oneShot(ch chan int) bool {
	select {
	case <-ch:
		return true
	default:
	}
	return false
}

// suppressed proves the ignore directive covers chanmisuse findings.
func suppressed() {
	ch := make(chan int, 1)
	//mctlint:ignore chanmisuse fixture: suppression must cover concurrency rules
	ch <- 1
}
