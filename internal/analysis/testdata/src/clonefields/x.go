// Package clonefields is an analyzer fixture with known violations.
package clonefields

type counter struct {
	hits  int
	names []string
}

func (c *counter) Clone() *counter { // want clonefields
	return &counter{hits: c.hits} // forgets names
}

type gauge struct {
	val  float64
	peak float64
}

// A whole-struct copy references every field.
func (g *gauge) Clone() *gauge {
	n := *g
	return &n
}

type histo struct {
	bins []int
	max  int
}

// Composite-literal field keys count as references.
func (h *histo) Clone() *histo {
	return &histo{bins: append([]int(nil), h.bins...), max: h.max}
}

type snap struct {
	a int
	b int
}

type snapState struct {
	A int
	B int
}

func (s *snap) Snapshot() snapState { // want clonefields
	return snapState{A: s.a} // drops b
}

func (s *snap) Restore(st snapState) { // want clonefields
	s.a = st.A // forgets to restore b
}

type stats struct {
	n   int
	ids []int
}

// A bare use of a value receiver copies the whole struct; fixing up one
// field afterwards still accounts for all of them.
func (s stats) Clone() stats {
	n := s
	n.ids = append([]int(nil), s.ids...)
	return n
}

type derived struct {
	raw    []byte
	cached int
}

//mctlint:ignore clonefields fixture: cached is derived from raw and recomputed lazily
func (d *derived) Clone() *derived {
	return &derived{raw: append([]byte(nil), d.raw...)}
}

type lines []string

// Non-struct receivers are out of scope.
func (l lines) Clone() lines {
	return append(lines(nil), l...)
}

// Plain functions named Clone are out of scope.
func Clone(x int) int { return x }
