// Package ctxfirst exercises the ctxfirst rule: context.Context parameters
// come first and are named ctx (or _), and internal packages never mint
// their own root contexts with Background/TODO.
package ctxfirst

import "context"

// Good takes ctx first under the canonical name: no findings.
func Good(ctx context.Context, n int) error {
	return run(ctx, n)
}

// Blank is acceptable for an intentionally unused context.
func Blank(_ context.Context, n int) error {
	if n < 0 {
		return context.Canceled
	}
	return nil
}

// Late buries the context behind another parameter.
func Late(n int, ctx context.Context) error { // want ctxfirst
	return run(ctx, n)
}

// Misnamed has the context first but under a different name.
func Misnamed(c context.Context, n int) error { // want ctxfirst
	return run(c, n)
}

// Handler shows the rule also covers function type declarations.
type Handler func(id string, ctx context.Context) error // want ctxfirst

// Mint builds a fresh context inside internal code, cutting the caller's
// cancellation chain.
func Mint(n int) error {
	return run(context.Background(), n) // want ctxfirst
}

// MintTODO is the TODO flavor.
func MintTODO(n int) error {
	return run(context.TODO(), n) // want ctxfirst
}

// bootstrap is an audited root: the directive keeps it finding-free, which
// the fixture test proves by carrying no want marker here.
func bootstrap(n int) error {
	return run(context.Background(), n) //mctlint:ignore ctxfirst fixture stand-in for a process entry point owning the root context
}

// run is a plain ctx-first helper the cases above call into.
func run(ctx context.Context, n int) error {
	if n < 0 {
		return context.Canceled
	}
	return ctx.Err()
}
