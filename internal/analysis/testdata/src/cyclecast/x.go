// Package cyclecast is an analyzer fixture with known violations.
package cyclecast

func sink(vs ...any) { _ = len(vs) }

func narrowing(cycles uint64, delta int64) {
	sink(int(cycles))    // want cyclecast
	sink(int64(cycles))  // want cyclecast
	sink(uint32(cycles)) // want cyclecast
	sink(int32(delta))   // want cyclecast
	sink(uint64(delta))  // want cyclecast
}

func allowed(cycles uint64, n int, delta int64) {
	sink(uint64(n))       // non-negative loop-counter idiom
	sink(int(delta))      // same width and signedness on 64-bit targets
	sink(float64(cycles)) // float targets are out of scope
	const k = 1 << 40
	sink(int(uint64(k))) // constant conversions are compile-checked
}

func suppressed(cycles uint64) int {
	return int(cycles % 8) //mctlint:ignore cyclecast remainder is bounded by 8
}
