// Package deferloop is an analyzer fixture with known violations; the
// `// want <rule>` markers are asserted by internal/analysis tests.
package deferloop

type handle struct{ open bool }

func acquire(name string) (*handle, error) { return &handle{open: true}, nil }

func (h *handle) release() { h.open = false }

func deferInRange(names []string) error {
	for _, n := range names {
		h, err := acquire(n)
		if err != nil {
			return err
		}
		defer h.release() // want deferloop
	}
	return nil
}

func deferInFor(n int) {
	for i := 0; i < n; i++ {
		h, _ := acquire("x")
		defer h.release() // want deferloop
	}
}

func deferInGotoLoop(names []string) {
	i := 0
loop:
	if i < len(names) {
		h, _ := acquire(names[i])
		defer h.release() // want deferloop
		i++
		goto loop
	}
}

// perIterationScope wraps the body in a function literal, so each
// iteration's defer runs when the literal returns. Clean.
func perIterationScope(names []string) error {
	for _, n := range names {
		if err := func() error {
			h, err := acquire(n)
			if err != nil {
				return err
			}
			defer h.release()
			return nil
		}(); err != nil {
			return err
		}
	}
	return nil
}

// topLevel defers once at function scope. Clean.
func topLevel(name string) error {
	h, err := acquire(name)
	if err != nil {
		return err
	}
	defer h.release()
	return nil
}

func suppressedBounded(names [2]string) {
	for _, n := range names {
		h, _ := acquire(n)
		defer h.release() //mctlint:ignore deferloop fixture: loop is bounded by a tiny array, defers are fine
	}
}
