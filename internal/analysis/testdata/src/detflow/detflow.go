// Fixture for the detflow rule: interprocedural taint from nondeterminism
// sources (wall clock, global rand, environment, map iteration order) to
// determinism sinks (report tables and notes, stable obs instruments, gob
// encoders), including a source injected two call levels above its sink.
package detflow

import (
	"encoding/gob"
	"io"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"time"

	"mct/internal/experiments"
	"mct/internal/obs"
)

func work() {}

// measure creates the taint: the wall-clock source lives here, two call
// levels above the AddRow sink reached through bad → record → sinkRow.
func measure() float64 {
	work()
	return float64(time.Now().UnixNano())
}

// record forwards its argument toward the sink one level down.
func record(t *experiments.Table, v float64) {
	sinkRow(t, v)
}

// sinkRow is the sink frame: the tainted value enters the report table.
func sinkRow(t *experiments.Table, v float64) {
	t.AddRow("metric", strconv.FormatFloat(v, 'f', 3, 64))
}

// bad is the frontier: the real source marker meets record's summarized
// sink here, so the finding lands on this call.
func bad(t *experiments.Table) {
	d := measure()
	record(t, d) // want detflow
}

// good passes a deterministic parameter: only synthetic taint reaches the
// sink, which feeds good's own summary instead of a report.
func good(t *experiments.Table, deterministic float64) {
	record(t, deterministic)
}

// env taints directly from the process environment.
func env(t *experiments.Table) {
	host, _ := os.LookupEnv("HOST")
	t.AddRow("host", host) // want detflow
}

// notes hits the Report.Notes sink with a global-rand value.
func notes(r *experiments.Report) {
	r.Notes = append(r.Notes, strconv.Itoa(rand.Int())) // want detflow
}

// orderToGob streams map keys in iteration order into a gob encoder.
func orderToGob(w io.Writer, m map[string]int) {
	enc := gob.NewEncoder(w)
	for k := range m {
		if err := enc.Encode(k); err != nil { // want detflow
			return
		}
	}
}

// sortedKeys is the sanctioned pattern: sorting sanitizes the order taint
// before the rows are emitted.
func sortedKeys(t *experiments.Table, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.AddRow(k, strconv.Itoa(m[k]))
	}
}

// countAll feeds order-tainted values into a commutative sink: counter
// adds are order-insensitive, so map iteration order is harmless here.
func countAll(c *obs.Counter, m map[string]uint64) {
	for _, v := range m {
		c.Add(v)
	}
}

// gauges contrasts the stable and volatile instrument surfaces: wall-clock
// data may flow into a Volatile* instrument but not a stable one.
func gauges(r *obs.Registry) {
	stable := r.Gauge("fixture_stable")
	vol := r.VolatileGauge("fixture_volatile")
	now := float64(time.Now().UnixNano())
	stable.Set(now) // want detflow
	vol.Set(now)
}

// suppressed proves the ignore directive applies to interprocedural
// findings too.
func suppressed(t *experiments.Table) {
	d := measure()
	//mctlint:ignore detflow fixture: suppression must cover program-scoped rules
	record(t, d)
}
