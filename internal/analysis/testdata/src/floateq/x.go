// Package floateq is an analyzer fixture with known violations.
package floateq

func cmpEq(a, b float64) bool {
	return a == b // want floateq
}

func cmpNeq(a, b float32) bool {
	return a != b // want floateq
}

func cmpConst(x float64) bool {
	return x == 1.5 // want floateq
}

func fieldCmp(v struct{ x, y float64 }) bool {
	return v.x != v.y // want floateq
}

func zeroGuard(x float64) bool {
	return x == 0 && x != 0.0 // comparisons against exact zero are allowed
}

func intCmp(a, b int) bool {
	return a == b // integers compare exactly
}

func ordered(a, b float64) bool {
	return a < b // ordering operators are fine
}

func suppressed(a, b float64) bool {
	return a == b //mctlint:ignore floateq fixture: provenance compare, both sides copied from the same source
}
