// Package goleak is an analyzer fixture with known violations; the
// `// want <rule>` markers are asserted by internal/analysis tests.
package goleak

import (
	"context"
	"sync"

	"mct/internal/engine"
)

func untracked() {
	go func() { // want goleak
		println("orphan")
	}()
}

func untrackedCall(ch chan int) {
	go drain(ch) // want goleak
}

func drain(ch chan int) {
	for range ch {
	}
}

// ctxLiteral watches its context: cancellation reaches it. Clean.
func ctxLiteral(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// ctxArgument passes the context into the spawned function. Clean.
func ctxArgument(ctx context.Context, ch chan int) {
	go watch(ctx, ch)
}

func watch(ctx context.Context, ch chan int) {
	select {
	case <-ctx.Done():
	case <-ch:
	}
}

// wgTracked is awaited through a WaitGroup. Clean.
func wgTracked(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// engineTracked runs under the engine package's primitives, which enforce
// the shutdown contract themselves. Clean.
func engineTracked(ch chan error) {
	var opt engine.Options
	go func() {
		opt.Workers = 1
		ch <- nil
	}()
}

func suppressedDaemon() {
	go func() { //mctlint:ignore goleak fixture: process-lifetime daemon by design
		for {
			println("tick")
		}
	}()
}
