// Package lockbalance is an analyzer fixture with known violations; the
// `// want <rule>` markers are asserted by internal/analysis tests.
package lockbalance

import (
	"errors"
	"sync"
)

type counter struct {
	mu sync.Mutex
	n  int
}

func leakOnErrorReturn(c *counter, fail bool) error {
	c.mu.Lock() // want lockbalance
	if fail {
		return errors.New("boom") // this path skips the unlock
	}
	c.n++
	c.mu.Unlock()
	return nil
}

func leakOnPanicPath(c *counter, bad bool) {
	c.mu.Lock() // want lockbalance
	if bad {
		panic("invariant violated") // deferless panic exits locked
	}
	c.n++
	c.mu.Unlock()
}

func rlockLeak(mu *sync.RWMutex, skip bool) {
	mu.RLock() // want lockbalance
	if skip {
		return
	}
	mu.RUnlock()
}

// balancedBranches unlocks on every path explicitly: clean.
func balancedBranches(c *counter, fail bool) error {
	c.mu.Lock()
	if fail {
		c.mu.Unlock()
		return errors.New("boom")
	}
	c.n++
	c.mu.Unlock()
	return nil
}

// deferredUnlock covers every later exit, including panics: clean.
func deferredUnlock(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	if c.n > 1<<30 {
		panic("overflow") // the deferred unlock still runs
	}
}

// deferredLiteralUnlock releases through a deferred closure: clean.
func deferredLiteralUnlock(c *counter) {
	c.mu.Lock()
	defer func() {
		c.n++
		c.mu.Unlock()
	}()
}

// readSide pairs RLock with a deferred RUnlock: clean.
func readSide(mu *sync.RWMutex) int {
	mu.RLock()
	defer mu.RUnlock()
	return 1
}

// lockInLoop is balanced within each iteration: clean.
func lockInLoop(c *counter, n int) {
	for i := 0; i < n; i++ {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}
}

func suppressedHandoff(c *counter) {
	c.mu.Lock() //mctlint:ignore lockbalance fixture: lock handoff — the caller releases
	c.n++
}
