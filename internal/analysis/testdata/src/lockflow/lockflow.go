// Fixture for the lockflow rule: a mutex acquired through a helper (any
// depth) must be released on every path out of the caller — directly,
// through a releasing helper, or via defer of either. Direct acquisitions
// leaking in their own function are lockbalance's findings, not lockflow's.
package lockflow

import "sync"

type store struct {
	mu sync.Mutex
	n  int
}

// lockIt hides the acquisition behind a call boundary.
func (s *store) lockIt() { s.mu.Lock() }

// unlockIt hides the release.
func (s *store) unlockIt() { s.mu.Unlock() }

// bad acquires through the helper and returns without any release.
func bad(s *store) {
	s.lockIt() // want lockflow
	s.n++
}

// good releases through the deferred helper.
func good(s *store) {
	s.lockIt()
	defer s.unlockIt()
	s.n++
}

// alsoGood releases directly: the helper-acquired key unifies with the
// direct unlock's expression key.
func alsoGood(s *store) {
	s.lockIt()
	s.n++
	s.mu.Unlock()
}

// deferredLiteral releases inside a deferred literal.
func deferredLiteral(s *store) {
	s.lockIt()
	defer func() {
		s.unlockIt()
	}()
	s.n++
}

// leaky releases on only one path: the early return leaks the hold.
func leaky(s *store, cond bool) int {
	s.lockIt() // want lockflow
	if cond {
		return 0
	}
	s.mu.Unlock()
	return s.n
}

// lockDeep proves transitivity: it is itself a call-derived hold (reported
// — a deliberate lock-helper carries a reasoned ignore in real code) and
// its summary propagates the acquisition one level further up.
func (s *store) lockDeep() { s.lockIt() } // want lockflow

func deepBad(s *store) {
	s.lockDeep() // want lockflow
	s.n++
}

// suppressed proves the ignore directive covers lockflow findings.
func suppressed(s *store) {
	//mctlint:ignore lockflow fixture: suppression must cover program-scoped rules
	s.lockIt()
	s.n++
}
