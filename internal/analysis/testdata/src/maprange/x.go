// Package maprange is an analyzer fixture with known violations; the
// `// want <rule>` markers are asserted by internal/analysis tests.
package maprange

import (
	"fmt"
	"sort"
	"strings"
)

func directOutput(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want maprange
	}
}

func throughLocal(w *strings.Builder, m map[string]float64) {
	for k := range m {
		s := k + "!"
		w.WriteString(s) // want maprange
	}
}

func floatAccumulation(m map[float64]uint64) float64 {
	var sum float64
	for r, n := range m {
		sum += float64(n) * r // want maprange
	}
	return sum
}

func stringAccumulation(m map[string]bool) string {
	out := ""
	for k := range m {
		out += k // want maprange
	}
	return out
}

func collectWithoutSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want maprange
	}
	return out
}

// collectThenSort is the canonical fix: the collected keys flow into a
// sort call reachable from the loop, so the range is clean.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedRender composes both halves of the idiom.
func sortedRender(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys { // slice range: order fixed by the sort above
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.String()
}

// keyedCopy writes under distinct keys — commutative, clean.
func keyedCopy(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v
	}
}

// integerTotal is order-insensitive: integer addition commutes exactly.
func integerTotal(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func suppressed(m map[string]int) {
	for k := range m {
		fmt.Println(k) //mctlint:ignore maprange fixture: debug dump where ordering is acceptable
	}
}
