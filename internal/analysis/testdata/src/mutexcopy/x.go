// Package mutexcopy is an analyzer fixture with known violations.
package mutexcopy

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

type wrapper struct{ c counter }

func byValueParam(c counter) int { // want mutexcopy
	return c.n
}

func (c counter) byValueRecv() int { // want mutexcopy
	return c.n
}

func byPointer(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func assigns() {
	var a counter
	b := a // want mutexcopy
	b.n++

	var w wrapper
	w2 := w // want mutexcopy
	w2.c.n++
}

func ranges(list []counter) int {
	total := 0
	for _, c := range list { // want mutexcopy
		total += c.n
	}
	for i := range list {
		total += list[i].n
	}
	return total
}

func fresh() *counter {
	c := counter{n: 1} // composite literals construct, not copy
	return &c
}

func suppressed() {
	var a counter
	b := a //mctlint:ignore mutexcopy fixture: copied before any goroutine can hold the lock
	b.n++
}
