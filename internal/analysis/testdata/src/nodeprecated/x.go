// Fixture for the nodeprecated rule: uses of identifiers whose
// declarations carry a "Deprecated:" doc line — functions, constants and
// type aliases — are findings; uses inside deprecated declarations and
// suppressed uses are not.
package nodeprecated

// oldSum adds the pre-options way.
//
// Deprecated: use sum.
func oldSum(a, b int) int { return a + b }

// sum is the replacement entry point.
func sum(a, b int) int { return a + b }

// OldLimit is the former queue cap.
//
// Deprecated: use Limit.
const OldLimit = 8

// Limit is the queue cap.
const Limit = 8

// oldTable is the legacy alias.
//
// Deprecated: use table.
type oldTable = map[string]int

// table maps names to counts.
type table = map[string]int

// use trips the rule on every deprecated reference.
func use() int {
	t := oldTable{"a": 1}           // want nodeprecated
	return oldSum(t["a"], OldLimit) // want nodeprecated nodeprecated
}

// okNew uses only the replacements: no findings.
func okNew() int {
	t := table{"a": 1}
	return sum(t["a"], Limit)
}

// oldWrap is itself deprecated, so its call into oldSum is exempt: a
// deprecated shim may keep wrapping the older thing until both go.
//
// Deprecated: use sum.
func oldWrap(a, b int) int { return oldSum(a, b) }

// suppressed keeps one violation alive under an ignore directive.
func suppressed() int {
	//mctlint:ignore nodeprecated migration scheduled with the next facade sweep
	return oldSum(1, 2)
}
