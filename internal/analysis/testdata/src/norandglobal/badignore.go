package norandglobal

import "math/rand"

// missingReason carries a directive without a reason: it is reported as
// malformed (rule "mctlint") and suppresses nothing, so the violation below
// still fires.
func missingReason() float64 {
	//mctlint:ignore norandglobal
	return rand.Float64() // want norandglobal
}
