// Package norandglobal is an analyzer fixture with known violations; the
// `// want <rule>` markers are asserted by internal/analysis tests.
package norandglobal

import (
	"math/rand"
	mrand "math/rand"
)

func globals() float64 {
	rand.Seed(1)        // want norandglobal
	x := rand.Float64() // want norandglobal
	n := rand.Intn(10)  // want norandglobal
	m := mrand.Int63()  // want norandglobal
	return x + float64(n) + float64(m)
}

func construct() *rand.Rand {
	return rand.New(rand.NewSource(1)) // want norandglobal norandglobal
}

func injected(r *rand.Rand) float64 {
	return r.Float64() + float64(r.Intn(3)) // methods on an injected source are fine
}

func suppressed() *rand.Rand {
	return rand.New(rand.NewSource(2)) //mctlint:ignore norandglobal fixture: stands in for the blessed internal/rng constructor
}

func suppressedAbove() float64 {
	//mctlint:ignore norandglobal fixture: directive on the line above also suppresses
	return rand.Float64()
}
