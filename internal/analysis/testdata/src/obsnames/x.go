// Package obsnames is an analyzer fixture with known violations.
package obsnames

import "mct/internal/obs"

// goodNames registers with literal names from the grammar — no findings.
func goodNames(r *obs.Registry) {
	_ = r.Counter("cache.hits")
	_ = r.Gauge("nvm.wear_total")
	_ = r.Histogram("engine.task_seconds", []float64{1, 2})
	_ = r.VolatileGauge("engine.workers")
	_ = r.VolatileHistogram("engine.queue_wait_seconds", []float64{1, 2})
}

const prefix = "core."

// constNames built from compile-time constants are still static identity.
func constNames(r *obs.Registry) {
	_ = r.Counter(prefix + "phases")
	_ = r.Counter("core." + "decisions")
}

// dynamicName defeats static metric identity: the dump's key set would
// depend on runtime data.
func dynamicName(r *obs.Registry, name string) {
	_ = r.Counter(name) // want obsnames
}

// badGrammar uses names the registry would reject at runtime.
func badGrammar(r *obs.Registry) {
	_ = r.Gauge("Cache.Hits")         // want obsnames
	_ = r.Counter("nvm reads")        // want obsnames
	_ = r.Histogram("", []float64{1}) // want obsnames
}

// duplicate re-registers one name inside a single constructor.
func duplicate(r *obs.Registry) {
	_ = r.Counter("sim.windows")
	_ = r.Counter("sim.windows") // want obsnames
}

// rebind looks the same name up in a different function — the legitimate
// clone-rebinding idiom, not a duplicate.
func rebind(r *obs.Registry) {
	_ = r.Counter("sim.windows")
}

// perLiteral duplicate scopes are per function literal.
func perLiteral(r *obs.Registry) {
	_ = r.Counter("cache.misses")
	f := func() { _ = r.Counter("cache.misses") }
	f()
}

// notRegistry has the same method names on an unrelated type — ignored.
type notRegistry struct{}

func (notRegistry) Counter(name string) int { return len(name) }

func unrelated(n notRegistry, name string) {
	_ = n.Counter(name)
}

// suppressed carries a justified runtime-validated name.
func suppressed(r *obs.Registry, name string) {
	_ = r.Counter(name) //mctlint:ignore obsnames fixture: name validated by caller against the registry grammar
}
