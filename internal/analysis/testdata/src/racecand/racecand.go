// Fixture for the racecand rule: a shared variable (package-level or
// captured) with a plain write in one goroutine context and a plain
// access in a parallel context, with no common mode-correct lock, is a
// data-race candidate. The negatives pin the suppression machinery:
// happens-before via write-before-spawn, WaitGroup joins, lock guards
// (direct and through helpers), atomic-only traffic, and escaped
// addresses are all out of scope.
package racecand

import (
	"sync"
	"sync/atomic"
)

// hits is written by an unjoined goroutine while the spawner reads it.
var hits int

func spawnUnguarded() int {
	go func() {
		hits++ // want racecand
	}()
	return hits
}

// loopCapture writes a captured local from a go-in-loop site: the
// goroutine instances race with each other and with the spawner's read.
func loopCapture() int {
	n := 0
	for i := 0; i < 4; i++ {
		go func() {
			n++ // want racecand
		}()
	}
	return n
}

// rlockWrite holds the wrong mode: an RLock on the writer side does not
// exclude the other readers.
var rwMu sync.RWMutex
var table int

func rlockWrite() {
	go func() {
		rwMu.RLock()
		table++ // want racecand
		rwMu.RUnlock()
	}()
	rwMu.RLock()
	_ = table
	rwMu.RUnlock()
}

// guarded is the lock-discipline negative: every access of count holds
// the same captured mutex, and the spawner's final read happens after the
// WaitGroup join.
func guarded() int {
	var mu sync.Mutex
	var wg sync.WaitGroup
	count := 0
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			count++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return count
}

// lockViaHelper proves guard inference sees critical sections entered
// through a helper: lockIt's summary marks s.mu held.
type store struct {
	mu sync.Mutex
	n  int
}

func (s *store) lockIt()   { s.mu.Lock() }
func (s *store) unlockIt() { s.mu.Unlock() }

var shared = &store{}
var total int

func lockViaHelper() {
	go func() {
		shared.lockIt()
		total++
		shared.unlockIt()
	}()
	shared.lockIt()
	_ = total
	shared.unlockIt()
}

// initThenSpawn writes before the spawn: ordered by happens-before, and
// the goroutine only reads.
func initThenSpawn() {
	cfg := 0
	cfg = 42
	go func() {
		_ = cfg
	}()
}

// atomicOnly keeps all traffic through sync/atomic: not racecand's
// finding (a mixed case would be atomicmix's).
var ticks uint64

func atomicOnly() uint64 {
	go func() {
		atomic.AddUint64(&ticks, 1)
	}()
	return atomic.LoadUint64(&ticks)
}

// escaped's address leaves the visible accesses: aliased writes are
// invisible, so the variable is exempt rather than mis-judged.
var leaked int

func escapes() {
	through(&leaked)
	go func() {
		leaked++
	}()
}

func through(p *int) { *p = 1 }

// suppressed proves the ignore directive covers racecand findings.
var quieted int

func suppressed() int {
	go func() {
		//mctlint:ignore racecand fixture: suppression must cover concurrency rules
		quieted++
	}()
	return quieted
}
