// Package uncheckederr is an analyzer fixture with known violations. The
// tests load it under an internal/ import path so the rule applies.
package uncheckederr

import (
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func value() (int, error) { return 1, nil }

func bareCall() {
	mayFail() // want uncheckederr
}

func blankAssign() {
	_ = mayFail() // want uncheckederr
}

func blankTuple() {
	_, _ = value() // want uncheckederr
}

func deadStore() {
	x := 1
	_ = x // want uncheckederr
}

func checked() error {
	if err := mayFail(); err != nil {
		return err
	}
	v, err := value()
	if v < 0 {
		return errors.New("negative")
	}
	return err
}

func exempt() string {
	fmt.Println("best-effort human output is exempt")
	var sb strings.Builder
	sb.WriteString("builder errors are nil by contract")
	return sb.String()
}

func suppressed() {
	mayFail() //mctlint:ignore uncheckederr fixture: best-effort, failure is benign by design
}
