package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type()

// resultHasError reports whether a call's result includes an error.
func resultHasError(t types.Type) bool {
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if types.Identical(rt.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errorType)
	}
}

// exemptCallee exempts callees whose errors are nil by contract or go to
// best-effort human output: fmt print functions and the Write*/String
// methods of strings.Builder and bytes.Buffer.
func exemptCallee(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if fn.Pkg().Path() == "fmt" && sig.Recv() == nil &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if p, ok := rt.(*types.Pointer); ok {
			rt = p.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				full := obj.Pkg().Path() + "." + obj.Name()
				if full == "strings.Builder" || full == "bytes.Buffer" {
					return true
				}
			}
		}
	}
	return false
}

// UncheckedErr flags discarded results in internal/ packages: bare call
// statements whose results include an error, blank assignments of
// error-typed values, and dead "_ = x" discards of locals. A swallowed
// error in the simulator or cache layers silently degrades an experiment
// into measuring the wrong thing.
var UncheckedErr = &Analyzer{
	Name: "uncheckederr",
	Doc:  "no discarded error returns (bare calls or `_ =`) and no dead `_ = x` stores in internal/ packages",
	Run: func(pass *Pass) {
		if !strings.Contains("/"+pass.PkgPath+"/", "/internal/") {
			return
		}
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					call, ok := st.X.(*ast.CallExpr)
					if !ok {
						return true
					}
					tv, ok := pass.Info.Types[call]
					if !ok || !resultHasError(tv.Type) || exemptCallee(pass, call) {
						return true
					}
					pass.Reportf(call.Pos(), "uncheckederr",
						"result of call includes an error that is silently discarded; handle or propagate it")
					return false
				case *ast.AssignStmt:
					// Only fully-blank assignments: `_ = x`, `_, _ = f()`.
					for _, lhs := range st.Lhs {
						id, ok := lhs.(*ast.Ident)
						if !ok || id.Name != "_" {
							return true
						}
					}
					for _, rhs := range st.Rhs {
						tv, ok := pass.Info.Types[rhs]
						if !ok {
							continue
						}
						if resultHasError(tv.Type) {
							if call, ok := rhs.(*ast.CallExpr); ok && exemptCallee(pass, call) {
								continue
							}
							pass.Reportf(rhs.Pos(), "uncheckederr",
								"error discarded with `_ =`; handle or propagate it")
							continue
						}
						if id, ok := rhs.(*ast.Ident); ok {
							pass.Reportf(rhs.Pos(), "uncheckederr",
								"dead discard `_ = %s`; delete the unused value or use it", id.Name)
						}
					}
				}
				return true
			})
		}
	},
}
