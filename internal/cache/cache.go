// Package cache implements the last-level cache model that feeds the NVM
// memory system: a set-associative write-back, write-allocate cache with
// true LRU replacement, per-LRU-stack-position hit counters, and the dirty
// line scanning needed by Eager Mellow Writes (§3.1).
//
// The eager-writeback rule of the paper: "If the highest N LRU stack
// positions of the last level cache contribute less than 1/eager_threshold
// of total hits in LLC, then we consider these N LRU stack positions to be
// useless and their corresponding LLC dirty entries can be eagerly written
// back." UselessPositions computes that N; NextEagerVictim yields dirty
// lines resident in those positions.
//
// Layout: the line array is struct-of-arrays — one flat []uint64 of tags
// and one flat []uint8 of valid/dirty bits, both indexed set*ways+pos with
// each set ordered MRU..LRU. The hot operations (tag probe, LRU shift) touch
// the tag lane almost exclusively, so SoA packs 8 tags per cache line of
// simulator memory instead of 5⅓ padded AoS entries, and the LRU shift of
// the metadata lane is a byte-wise copy.
package cache

import "fmt"

// LineBytes is the cache-line size in bytes.
const LineBytes = 64

// Metadata lane bits (one byte per line).
const (
	metaValid uint8 = 1 << 0
	metaDirty uint8 = 1 << 1
)

// Stats aggregates cache event counters.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Writebacks  uint64 // dirty evictions sent to memory
	EagerWrites uint64 // eager writebacks issued
	// HitsByPos counts hits by LRU stack position (0 = MRU).
	HitsByPos []uint64
}

// Cache is a set-associative write-back LLC. It is not safe for concurrent
// use.
type Cache struct {
	// tags and meta are the SoA line array: entry set*ways+pos holds the tag
	// and valid/dirty bits of the line at LRU stack position pos of that set
	// (0 = MRU).
	tags     []uint64
	meta     []uint8
	setCount int
	ways     int
	setMask  uint64
	// setShift is log2(setCount), hoisted at construction so the per-access
	// locate/reconstruct pair shifts by a constant instead of recounting
	// bits.
	setShift uint
	stats    Stats

	// eagerCursor remembers where the eager-victim scan left off so
	// repeated scans cover the whole cache round-robin.
	eagerCursor int
}

// New constructs a cache of sizeBytes capacity with the given associativity.
// sizeBytes must be a positive multiple of ways*LineBytes and yield a
// power-of-two set count.
func New(sizeBytes, ways int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cache: invalid size %d / ways %d", sizeBytes, ways)
	}
	lines := sizeBytes / LineBytes
	if lines*LineBytes != sizeBytes || lines%ways != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible into %d-way sets of %d-byte lines", sizeBytes, ways, LineBytes)
	}
	setCount := lines / ways
	if setCount&(setCount-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a power of two", setCount)
	}
	c := &Cache{
		tags:     make([]uint64, setCount*ways),
		meta:     make([]uint8, setCount*ways),
		setCount: setCount,
		ways:     ways,
		setMask:  uint64(setCount - 1),
		setShift: uint(log2(setCount)),
	}
	c.stats.HitsByPos = make([]uint64, ways)
	return c, nil
}

// Name identifies the cache as the front tier of the memory hierarchy
// (hierarchy.Tier).
func (c *Cache) Name() string { return "llc" }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.setCount }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.HitsByPos = append([]uint64(nil), c.stats.HitsByPos...)
	return s
}

// ResetStats clears the counters (the cache contents are preserved).
func (c *Cache) ResetStats() {
	hist := c.stats.HitsByPos
	for i := range hist {
		hist[i] = 0
	}
	c.stats = Stats{HitsByPos: hist}
}

func (c *Cache) locate(addr uint64) (setIdx int, tag uint64) {
	lineAddr := addr / LineBytes
	return int(lineAddr & c.setMask), lineAddr >> c.setShift //mctlint:ignore cyclecast masked value is bounded by the set count
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// Result describes the memory-side consequences of one cache access.
type Result struct {
	Hit bool
	// Miss fill: the line address fetched from memory (valid when !Hit).
	FillAddr uint64
	// Writeback reports a dirty eviction; WritebackAddr is its line-aligned
	// byte address.
	Writeback     bool
	WritebackAddr uint64
}

// Access performs a load (write=false) or store (write=true) at addr and
// returns what the memory system must do: nothing (hit), a fill (read
// miss), and possibly a dirty writeback (victim eviction). It is on the
// simulator's per-access hot path: the probe walks the set's tag lane, and
// the metadata lane is only touched on a hit or a fill.
func (c *Cache) Access(addr uint64, write bool) Result {
	setIdx, tag := c.locate(addr)
	base := setIdx * c.ways
	tags := c.tags[base : base+c.ways]
	meta := c.meta[base : base+c.ways]

	for pos := range tags {
		if meta[pos]&metaValid != 0 && tags[pos] == tag {
			c.stats.Hits++
			c.stats.HitsByPos[pos]++
			m := meta[pos]
			if write {
				m |= metaDirty
			}
			// Move to MRU.
			copy(tags[1:pos+1], tags[:pos])
			copy(meta[1:pos+1], meta[:pos])
			tags[0] = tag
			meta[0] = m
			return Result{Hit: true}
		}
	}

	// Miss: evict LRU (last position), fill at MRU.
	c.stats.Misses++
	res := Result{FillAddr: addr &^ uint64(LineBytes-1)}
	last := c.ways - 1
	if meta[last]&(metaValid|metaDirty) == metaValid|metaDirty {
		c.stats.Writebacks++
		res.Writeback = true
		res.WritebackAddr = c.reconstruct(setIdx, tags[last])
	}
	copy(tags[1:], tags[:last])
	copy(meta[1:], meta[:last])
	tags[0] = tag
	meta[0] = metaValid
	if write {
		meta[0] |= metaDirty
	}
	return res
}

func (c *Cache) reconstruct(setIdx int, tag uint64) uint64 {
	return (tag<<c.setShift | uint64(setIdx)) * LineBytes
}

// UselessPositions returns how many LRU stack positions (from the
// least-recently-used end) are considered useless for eager writeback: the
// positions outside the minimal MRU prefix that accumulates at least
// 1/eagerThreshold of all hits. A larger eagerThreshold shrinks the
// protected prefix, classifying more positions as useless — more eager
// writebacks, higher performance, shorter lifetime, matching the
// aggressiveness direction stated in §3.1. With no hits at all every
// position is useless.
func (c *Cache) UselessPositions(eagerThreshold int) int {
	if eagerThreshold <= 0 {
		return 0
	}
	var total uint64
	for _, h := range c.stats.HitsByPos {
		total += h
	}
	if total == 0 {
		return c.ways
	}
	need := float64(total) / float64(eagerThreshold)
	var cum uint64
	protected := 0
	for pos := 0; pos < c.ways; pos++ {
		protected++
		cum += c.stats.HitsByPos[pos]
		if float64(cum) >= need {
			break
		}
	}
	return c.ways - protected
}

// NextEagerVictim scans up to maxSets sets (round-robin from where the last
// scan stopped) for a dirty line residing in one of the uselessN
// least-recently-used positions. If found, the line is marked clean (its
// data is now considered written back — a later store re-dirties it, making
// the eager write wasted wear, as in the paper), and its address is
// returned. The scan reads only the one-byte metadata lane until it finds a
// victim, so skipping clean sets costs a few cache lines of simulator
// memory per set, not the full tag array.
func (c *Cache) NextEagerVictim(uselessN, maxSets int) (addr uint64, ok bool) {
	if uselessN <= 0 {
		return 0, false
	}
	if uselessN > c.ways {
		uselessN = c.ways
	}
	if maxSets <= 0 || maxSets > c.setCount {
		maxSets = c.setCount
	}
	const valadirty = metaValid | metaDirty
	for scanned := 0; scanned < maxSets; scanned++ {
		setIdx := c.eagerCursor
		c.eagerCursor = (c.eagerCursor + 1) % c.setCount
		base := setIdx * c.ways
		for pos := c.ways - uselessN; pos < c.ways; pos++ {
			if c.meta[base+pos]&valadirty == valadirty {
				c.meta[base+pos] &^= metaDirty
				c.stats.EagerWrites++
				return c.reconstruct(setIdx, c.tags[base+pos]), true
			}
		}
	}
	return 0, false
}

// Clone returns a deep copy of the cache — contents, statistics and scan
// cursor. Cloning a warmed cache lets many configuration evaluations share
// one warmup (cache state does not depend on the NVM configuration).
func (c *Cache) Clone() *Cache {
	n := &Cache{
		tags:        append([]uint64(nil), c.tags...),
		meta:        append([]uint8(nil), c.meta...),
		setCount:    c.setCount,
		ways:        c.ways,
		setMask:     c.setMask,
		setShift:    c.setShift,
		eagerCursor: c.eagerCursor,
	}
	n.stats = c.stats
	n.stats.HitsByPos = append([]uint64(nil), c.stats.HitsByPos...)
	return n
}

// DirtyLines counts the dirty lines currently resident (test/diagnostic
// helper).
func (c *Cache) DirtyLines() int {
	n := 0
	const valadirty = metaValid | metaDirty
	for _, m := range c.meta {
		if m&valadirty == valadirty {
			n++
		}
	}
	return n
}
