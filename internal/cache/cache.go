// Package cache implements the last-level cache model that feeds the NVM
// memory system: a set-associative write-back, write-allocate cache with
// true LRU replacement, per-LRU-stack-position hit counters, and the dirty
// line scanning needed by Eager Mellow Writes (§3.1).
//
// The eager-writeback rule of the paper: "If the highest N LRU stack
// positions of the last level cache contribute less than 1/eager_threshold
// of total hits in LLC, then we consider these N LRU stack positions to be
// useless and their corresponding LLC dirty entries can be eagerly written
// back." UselessPositions computes that N; NextEagerVictim yields dirty
// lines resident in those positions.
package cache

import "fmt"

// LineBytes is the cache-line size in bytes.
const LineBytes = 64

type line struct {
	tag   uint64
	valid bool
	dirty bool
}

// Stats aggregates cache event counters.
type Stats struct {
	Hits        uint64
	Misses      uint64
	Writebacks  uint64 // dirty evictions sent to memory
	EagerWrites uint64 // eager writebacks issued
	// HitsByPos counts hits by LRU stack position (0 = MRU).
	HitsByPos []uint64
}

// Cache is a set-associative write-back LLC. It is not safe for concurrent
// use.
type Cache struct {
	sets     [][]line // each set ordered MRU..LRU
	setCount int
	ways     int
	setMask  uint64
	stats    Stats

	// eagerCursor remembers where the eager-victim scan left off so
	// repeated scans cover the whole cache round-robin.
	eagerCursor int
}

// New constructs a cache of sizeBytes capacity with the given associativity.
// sizeBytes must be a positive multiple of ways*LineBytes and yield a
// power-of-two set count.
func New(sizeBytes, ways int) (*Cache, error) {
	if sizeBytes <= 0 || ways <= 0 {
		return nil, fmt.Errorf("cache: invalid size %d / ways %d", sizeBytes, ways)
	}
	lines := sizeBytes / LineBytes
	if lines*LineBytes != sizeBytes || lines%ways != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible into %d-way sets of %d-byte lines", sizeBytes, ways, LineBytes)
	}
	setCount := lines / ways
	if setCount&(setCount-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d is not a power of two", setCount)
	}
	c := &Cache{
		sets:     make([][]line, setCount),
		setCount: setCount,
		ways:     ways,
		setMask:  uint64(setCount - 1),
	}
	backing := make([]line, setCount*ways)
	for i := range c.sets {
		c.sets[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	c.stats.HitsByPos = make([]uint64, ways)
	return c, nil
}

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.setCount }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	s := c.stats
	s.HitsByPos = append([]uint64(nil), c.stats.HitsByPos...)
	return s
}

// ResetStats clears the counters (the cache contents are preserved).
func (c *Cache) ResetStats() {
	hist := c.stats.HitsByPos
	for i := range hist {
		hist[i] = 0
	}
	c.stats = Stats{HitsByPos: hist}
}

func (c *Cache) locate(addr uint64) (setIdx int, tag uint64) {
	lineAddr := addr / LineBytes
	return int(lineAddr & c.setMask), lineAddr >> uint(log2(c.setCount)) //mctlint:ignore cyclecast masked value is bounded by the set count
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// Result describes the memory-side consequences of one cache access.
type Result struct {
	Hit bool
	// Miss fill: the line address fetched from memory (valid when !Hit).
	FillAddr uint64
	// Writeback reports a dirty eviction; WritebackAddr is its line-aligned
	// byte address.
	Writeback     bool
	WritebackAddr uint64
}

// Access performs a load (write=false) or store (write=true) at addr and
// returns what the memory system must do: nothing (hit), a fill (read
// miss), and possibly a dirty writeback (victim eviction).
func (c *Cache) Access(addr uint64, write bool) Result {
	setIdx, tag := c.locate(addr)
	set := c.sets[setIdx]

	for pos := range set {
		if set[pos].valid && set[pos].tag == tag {
			c.stats.Hits++
			c.stats.HitsByPos[pos]++
			hitLine := set[pos]
			if write {
				hitLine.dirty = true
			}
			// Move to MRU.
			copy(set[1:pos+1], set[:pos])
			set[0] = hitLine
			return Result{Hit: true}
		}
	}

	// Miss: evict LRU (last position), fill at MRU.
	c.stats.Misses++
	res := Result{FillAddr: addr &^ uint64(LineBytes-1)}
	victim := set[c.ways-1]
	if victim.valid && victim.dirty {
		c.stats.Writebacks++
		res.Writeback = true
		res.WritebackAddr = c.reconstruct(setIdx, victim.tag)
	}
	copy(set[1:], set[:c.ways-1])
	set[0] = line{tag: tag, valid: true, dirty: write}
	return res
}

func (c *Cache) reconstruct(setIdx int, tag uint64) uint64 {
	return (tag<<uint(log2(c.setCount)) | uint64(setIdx)) * LineBytes
}

// UselessPositions returns how many LRU stack positions (from the
// least-recently-used end) are considered useless for eager writeback: the
// positions outside the minimal MRU prefix that accumulates at least
// 1/eagerThreshold of all hits. A larger eagerThreshold shrinks the
// protected prefix, classifying more positions as useless — more eager
// writebacks, higher performance, shorter lifetime, matching the
// aggressiveness direction stated in §3.1. With no hits at all every
// position is useless.
func (c *Cache) UselessPositions(eagerThreshold int) int {
	if eagerThreshold <= 0 {
		return 0
	}
	var total uint64
	for _, h := range c.stats.HitsByPos {
		total += h
	}
	if total == 0 {
		return c.ways
	}
	need := float64(total) / float64(eagerThreshold)
	var cum uint64
	protected := 0
	for pos := 0; pos < c.ways; pos++ {
		protected++
		cum += c.stats.HitsByPos[pos]
		if float64(cum) >= need {
			break
		}
	}
	return c.ways - protected
}

// NextEagerVictim scans up to maxSets sets (round-robin from where the last
// scan stopped) for a dirty line residing in one of the uselessN
// least-recently-used positions. If found, the line is marked clean (its
// data is now considered written back — a later store re-dirties it, making
// the eager write wasted wear, as in the paper), and its address is
// returned.
func (c *Cache) NextEagerVictim(uselessN, maxSets int) (addr uint64, ok bool) {
	if uselessN <= 0 {
		return 0, false
	}
	if uselessN > c.ways {
		uselessN = c.ways
	}
	if maxSets <= 0 || maxSets > c.setCount {
		maxSets = c.setCount
	}
	for scanned := 0; scanned < maxSets; scanned++ {
		setIdx := c.eagerCursor
		c.eagerCursor = (c.eagerCursor + 1) % c.setCount
		set := c.sets[setIdx]
		for pos := c.ways - uselessN; pos < c.ways; pos++ {
			if set[pos].valid && set[pos].dirty {
				set[pos].dirty = false
				c.stats.EagerWrites++
				return c.reconstruct(setIdx, set[pos].tag), true
			}
		}
	}
	return 0, false
}

// Clone returns a deep copy of the cache — contents, statistics and scan
// cursor. Cloning a warmed cache lets many configuration evaluations share
// one warmup (cache state does not depend on the NVM configuration).
func (c *Cache) Clone() *Cache {
	n := &Cache{
		sets:        make([][]line, c.setCount),
		setCount:    c.setCount,
		ways:        c.ways,
		setMask:     c.setMask,
		eagerCursor: c.eagerCursor,
	}
	backing := make([]line, c.setCount*c.ways)
	for i := range c.sets {
		dst := backing[i*c.ways : (i+1)*c.ways : (i+1)*c.ways]
		copy(dst, c.sets[i])
		n.sets[i] = dst
	}
	n.stats = c.stats
	n.stats.HitsByPos = append([]uint64(nil), c.stats.HitsByPos...)
	return n
}

// DirtyLines counts the dirty lines currently resident (test/diagnostic
// helper).
func (c *Cache) DirtyLines() int {
	n := 0
	for _, set := range c.sets {
		for _, ln := range set {
			if ln.valid && ln.dirty {
				n++
			}
		}
	}
	return n
}
