package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, size, ways int) *Cache {
	t.Helper()
	c, err := New(size, ways)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewErrors(t *testing.T) {
	cases := []struct{ size, ways int }{
		{0, 4}, {1024, 0}, {1000, 4} /* not divisible */, {3 * 64 * 4, 4}, /* 3 sets: not a power of two */
	}
	for _, c := range cases {
		if _, err := New(c.size, c.ways); err == nil {
			t.Errorf("New(%d,%d) should fail", c.size, c.ways)
		}
	}
	c := mustNew(t, 64*64*4, 4)
	if c.Ways() != 4 || c.Sets() != 64 {
		t.Fatalf("geometry wrong: %d ways, %d sets", c.Ways(), c.Sets())
	}
}

func TestHitMissAndLRU(t *testing.T) {
	// 1 set, 2 ways: the simplest LRU observable.
	c := mustNew(t, 2*64, 2)
	a, b, d := uint64(0), uint64(64), uint64(128) // all map to set 0

	if r := c.Access(a, false); r.Hit {
		t.Fatal("cold access must miss")
	}
	if r := c.Access(b, false); r.Hit {
		t.Fatal("second line must miss")
	}
	if r := c.Access(a, false); !r.Hit {
		t.Fatal("a must hit")
	}
	// LRU is b; filling d must evict b (clean — no writeback).
	if r := c.Access(d, false); r.Hit || r.Writeback {
		t.Fatalf("expected clean eviction, got %+v", r)
	}
	// b was evicted, a retained.
	if r := c.Access(a, false); !r.Hit {
		t.Fatal("a must still be resident")
	}
	if r := c.Access(b, false); r.Hit {
		t.Fatal("b must have been evicted")
	}
}

func TestDirtyWritebackAddress(t *testing.T) {
	c := mustNew(t, 2*64, 2)
	addr := uint64(4096 + 0) // set 0 in a 1-set cache
	c.Access(addr, true)     // dirty fill
	c.Access(64, false)
	// Evict the dirty line.
	r := c.Access(128, false)
	if !r.Writeback || r.WritebackAddr != addr {
		t.Fatalf("expected writeback of %#x, got %+v", addr, r)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatal("writeback counter wrong")
	}
}

func TestStoreDirtiesOnHit(t *testing.T) {
	c := mustNew(t, 2*64, 2)
	c.Access(0, false) // clean fill
	c.Access(0, true)  // store hit dirties
	c.Access(64, false)
	r := c.Access(128, false)
	if !r.Writeback || r.WritebackAddr != 0 {
		t.Fatalf("store hit must dirty the line: %+v", r)
	}
}

func TestHitHistogram(t *testing.T) {
	c := mustNew(t, 4*64, 4)
	c.Access(0, false)
	c.Access(0, false) // hit at MRU (pos 0)
	c.Access(64, false)
	c.Access(0, false) // hit at pos 1
	st := c.Stats()
	if st.HitsByPos[0] != 1 || st.HitsByPos[1] != 1 {
		t.Fatalf("hit histogram wrong: %v", st.HitsByPos)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("counters wrong: %+v", st)
	}
}

func TestUselessPositions(t *testing.T) {
	c := mustNew(t, 4*64, 4)
	// No hits at all: every position is useless.
	if got := c.UselessPositions(8); got != 4 {
		t.Fatalf("no-hit useless = %d, want 4", got)
	}
	// All hits at MRU: only the MRU position is protected.
	for i := 0; i < 100; i++ {
		c.Access(0, false)
	}
	if got := c.UselessPositions(8); got != 3 {
		t.Fatalf("MRU-only useless = %d, want 3", got)
	}
	// Monotonic in the threshold: a larger eager_threshold shrinks the
	// protected prefix, so the useless count can only grow (§3.1: higher
	// threshold ⇒ more aggressive eager writeback).
	c2 := mustNew(t, 4*64, 4)
	// Skewed reuse so hits spread across positions with a hot head.
	rng := rand.New(rand.NewSource(1))
	addrs := []uint64{0, 64, 128, 192}
	for i := 0; i < 4000; i++ {
		r := rng.Float64()
		j := 0
		switch {
		case r < 0.70:
			j = 0
		case r < 0.90:
			j = 1
		case r < 0.97:
			j = 2
		default:
			j = 3
		}
		c2.Access(addrs[j], false)
	}
	prev := 0
	for _, thr := range []int{1, 2, 4, 8, 16, 32} {
		n := c2.UselessPositions(thr)
		if n < prev {
			t.Fatalf("UselessPositions not monotonic: thr=%d gives %d < %d", thr, n, prev)
		}
		prev = n
	}
	if prev == 0 {
		t.Fatal("largest threshold should mark some positions useless")
	}
	if c.UselessPositions(0) != 0 {
		t.Fatal("non-positive threshold must yield 0")
	}
}

func TestNextEagerVictim(t *testing.T) {
	c := mustNew(t, 4*64, 4)
	dirtyAddr := uint64(0)
	c.Access(dirtyAddr, true)
	// Push the dirty line toward LRU.
	c.Access(64*4, false)
	c.Access(64*8, false)
	c.Access(64*12, false)

	if _, ok := c.NextEagerVictim(0, 0); ok {
		t.Fatal("uselessN=0 must find nothing")
	}
	addr, ok := c.NextEagerVictim(4, 0)
	if !ok || addr != dirtyAddr {
		t.Fatalf("eager victim = %#x,%v, want %#x", addr, ok, dirtyAddr)
	}
	if c.DirtyLines() != 0 {
		t.Fatal("eager writeback must clean the line")
	}
	// No more dirty lines: scan finds nothing.
	if _, ok := c.NextEagerVictim(4, 0); ok {
		t.Fatal("no dirty lines left")
	}
	// Re-dirty: the line is eligible again (the earlier eager write was
	// wasted wear).
	c.Access(dirtyAddr, true)
	if _, ok := c.NextEagerVictim(4, 0); !ok {
		t.Fatal("re-dirtied line must be found")
	}
	if c.Stats().EagerWrites != 2 {
		t.Fatalf("eager counter = %d, want 2", c.Stats().EagerWrites)
	}
}

func TestEagerVictimRespectsPositions(t *testing.T) {
	c := mustNew(t, 4*64, 4)
	c.Access(0, true) // dirty, currently MRU
	// Only the single LRU position is useless; the dirty line is at MRU.
	if _, ok := c.NextEagerVictim(1, 0); ok {
		t.Fatal("MRU dirty line must not be harvested with uselessN=1")
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := mustNew(t, 4*64, 4)
	c.Access(0, true)
	c.Access(64, false)
	cl := c.Clone()
	if cl.DirtyLines() != c.DirtyLines() || cl.Stats().Misses != c.Stats().Misses {
		t.Fatal("clone state mismatch")
	}
	// Mutating the original must not affect the clone.
	c.Access(128, true)
	c.Access(192, true)
	if cl.Stats().Misses == c.Stats().Misses {
		t.Fatal("clone aliases original stats")
	}
	before := cl.DirtyLines()
	c.NextEagerVictim(4, 0)
	if cl.DirtyLines() != before {
		t.Fatal("clone aliases original lines")
	}
}

func TestResetStats(t *testing.T) {
	c := mustNew(t, 4*64, 4)
	c.Access(0, true)
	c.Access(0, false)
	c.ResetStats()
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 || st.HitsByPos[0] != 0 {
		t.Fatalf("ResetStats left counters: %+v", st)
	}
	// Contents preserved.
	if r := c.Access(0, false); !r.Hit {
		t.Fatal("ResetStats must preserve contents")
	}
}

// Property: counters are consistent with the access stream, and writebacks
// never exceed misses.
func TestCounterConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(16*64*4, 4)
		if err != nil {
			return false
		}
		n := 2000
		wbSeen := uint64(0)
		for i := 0; i < n; i++ {
			addr := uint64(rng.Intn(256)) * 64
			r := c.Access(addr, rng.Intn(2) == 0)
			if r.Writeback {
				wbSeen++
				if r.WritebackAddr%64 != 0 {
					return false
				}
			}
		}
		st := c.Stats()
		if st.Hits+st.Misses != uint64(n) {
			return false
		}
		if st.Writebacks != wbSeen || st.Writebacks > st.Misses {
			return false
		}
		var histSum uint64
		for _, h := range st.HitsByPos {
			histSum += h
		}
		return histSum == st.Hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: a victim's reconstructed writeback address maps back to the set
// it was evicted from.
func TestWritebackAddressMapsToSameSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := New(8*64*2, 2) // 8 sets, 2 ways
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			addr := uint64(rng.Intn(64)) * 64
			r := c.Access(addr, true)
			if r.Writeback {
				wbSet := (r.WritebackAddr / 64) % 8
				inSet := (addr / 64) % 8
				if wbSet != inSet {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
