package cache

import "mct/internal/obs"

// Obs publishes cache telemetry into an obs.Registry. The cache itself
// keeps its cheap native Stats counters on the hot path; a publisher
// translates cumulative-stats deltas into registry updates at window
// boundaries, so instrumentation adds zero per-access cost.
//
// The baseline `last` holds the stats at attach (or last publish): a
// publisher attached mid-run only accounts activity from that point on,
// which is exactly what makes checkpoint restore — registry restored with
// totals-through-checkpoint, baseline rebased to the restore point — free
// of double counting.
type Obs struct {
	reg  *obs.Registry
	ways int

	hits        *obs.Counter
	misses      *obs.Counter
	writebacks  *obs.Counter
	eagerWrites *obs.Counter
	// lruPos buckets hits by LRU stack position (0 = MRU); bucket i is
	// position i, the overflow bucket is unused for a well-formed cache.
	lruPos *obs.Histogram
	// wbRate is writebacks per cache access over the last published window.
	wbRate *obs.Gauge

	last Stats
}

// NewObs registers the cache metric family on r for a cache of the given
// associativity. The returned publisher starts with a zero baseline; call
// Rebase with the cache's current stats when attaching to a warm cache.
func NewObs(r *obs.Registry, ways int) *Obs {
	bounds := make([]float64, ways)
	for i := range bounds {
		bounds[i] = float64(i)
	}
	return &Obs{
		reg:         r,
		ways:        ways,
		hits:        r.Counter("cache.hits"),
		misses:      r.Counter("cache.misses"),
		writebacks:  r.Counter("cache.writebacks"),
		eagerWrites: r.Counter("cache.eager_writes"),
		lruPos:      r.Histogram("cache.lru_hit_position", bounds),
		wbRate:      r.Gauge("cache.writeback_rate"),
	}
}

// Registry returns the registry this publisher feeds.
func (o *Obs) Registry() *obs.Registry { return o.reg }

// Rebase sets the delta baseline to s (a Stats snapshot) without
// publishing, so activity before s is never accounted.
func (o *Obs) Rebase(s Stats) { o.last = s }

// Publish accounts the delta between s (a Stats snapshot from
// Cache.Stats) and the previous baseline, then advances the baseline.
func (o *Obs) Publish(s Stats) {
	o.hits.Add(s.Hits - o.last.Hits)
	o.misses.Add(s.Misses - o.last.Misses)
	o.writebacks.Add(s.Writebacks - o.last.Writebacks)
	o.eagerWrites.Add(s.EagerWrites - o.last.EagerWrites)
	for pos := range s.HitsByPos {
		d := s.HitsByPos[pos]
		if pos < len(o.last.HitsByPos) {
			d -= o.last.HitsByPos[pos]
		}
		o.lruPos.ObserveN(float64(pos), d)
	}
	dAcc := (s.Hits + s.Misses) - (o.last.Hits + o.last.Misses)
	if dAcc > 0 {
		dWb := s.Writebacks - o.last.Writebacks
		o.wbRate.Set(float64(dWb) / float64(dAcc))
	}
	o.last = s
}

// CloneInto rebinds a copy of this publisher to r (a clone of the original
// registry), preserving the delta baseline so the cloned machine continues
// accounting exactly where the parent left off.
func (o *Obs) CloneInto(r *obs.Registry) *Obs {
	n := NewObs(r, o.ways)
	n.last = o.last.Clone()
	return n
}
