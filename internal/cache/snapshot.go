// Snapshot support for the LLC: an exported, serializable state for
// machine checkpoints (in-memory deep copies use Clone).
package cache

import "fmt"

// Clone returns a deep copy of s: mutating the clone's HitsByPos never
// perturbs the original.
func (s Stats) Clone() Stats {
	n := s
	n.HitsByPos = append([]uint64(nil), s.HitsByPos...)
	return n
}

// LineState is the serializable state of one cache line.
type LineState struct {
	Tag   uint64
	Valid bool
	Dirty bool
}

// Snapshot is the complete serializable state of a Cache. Lines are stored
// set-major in MRU..LRU order, so LRU recency survives the round trip.
type Snapshot struct {
	SizeBytes   int
	Ways        int
	Lines       []LineState
	EagerCursor int
	Stats       Stats
}

// Snapshot captures the cache's complete state for checkpointing. The
// in-memory SoA lanes are re-interleaved into LineState records, so the
// serialized format is layout-independent (and unchanged from the AoS era).
//
//mctlint:ignore clonefields setMask and setShift are derived from setCount and recomputed by New on restore
func (c *Cache) Snapshot() Snapshot {
	lines := make([]LineState, len(c.tags))
	for i, tag := range c.tags {
		lines[i] = LineState{Tag: tag, Valid: c.meta[i]&metaValid != 0, Dirty: c.meta[i]&metaDirty != 0}
	}
	st := c.stats
	st.HitsByPos = append([]uint64(nil), c.stats.HitsByPos...)
	return Snapshot{
		SizeBytes:   c.setCount * c.ways * LineBytes,
		Ways:        c.ways,
		Lines:       lines,
		EagerCursor: c.eagerCursor,
		Stats:       st,
	}
}

// FromSnapshot rebuilds a cache from a state captured with Snapshot. The
// rebuilt cache continues the identical simulation.
func FromSnapshot(s Snapshot) (*Cache, error) {
	c, err := New(s.SizeBytes, s.Ways)
	if err != nil {
		return nil, err
	}
	if len(s.Lines) != c.setCount*c.ways {
		return nil, fmt.Errorf("cache: snapshot has %d lines, geometry says %d", len(s.Lines), c.setCount*c.ways)
	}
	if len(s.Stats.HitsByPos) != c.ways {
		return nil, fmt.Errorf("cache: snapshot hit histogram has %d positions, geometry says %d", len(s.Stats.HitsByPos), c.ways)
	}
	if s.EagerCursor < 0 || s.EagerCursor >= c.setCount {
		return nil, fmt.Errorf("cache: snapshot eager cursor %d outside [0,%d)", s.EagerCursor, c.setCount)
	}
	for i, ls := range s.Lines {
		c.tags[i] = ls.Tag
		var m uint8
		if ls.Valid {
			m |= metaValid
		}
		if ls.Dirty {
			m |= metaDirty
		}
		c.meta[i] = m
	}
	c.eagerCursor = s.EagerCursor
	c.stats = s.Stats
	c.stats.HitsByPos = append([]uint64(nil), s.Stats.HitsByPos...)
	return c, nil
}
