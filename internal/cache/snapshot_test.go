package cache

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestSnapshotRoundTrip: FromSnapshot(c.Snapshot()) reproduces the exact
// contents, recency order, statistics and eager-scan cursor — the restored
// cache behaves identically under further traffic.
func TestSnapshotRoundTrip(t *testing.T) {
	c := mustNew(t, 16*64*4, 4)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		c.Access(uint64(rng.Intn(1<<12))*64, rng.Intn(3) == 0)
	}
	c.NextEagerVictim(2, 5) // move the cursor off zero

	r, err := FromSnapshot(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c.Stats(), r.Stats()) {
		t.Fatalf("stats diverged:\n%+v\n%+v", c.Stats(), r.Stats())
	}
	if c.DirtyLines() != r.DirtyLines() {
		t.Fatalf("dirty lines diverged: %d vs %d", c.DirtyLines(), r.DirtyLines())
	}
	// Identical further traffic must produce identical results (recency
	// order and cursor position both matter here).
	rng2 := rand.New(rand.NewSource(8))
	for i := 0; i < 3000; i++ {
		addr := uint64(rng2.Intn(1<<12)) * 64
		w := rng2.Intn(3) == 0
		a, b := c.Access(addr, w), r.Access(addr, w)
		if a != b {
			t.Fatalf("access %d diverged: %+v vs %+v", i, a, b)
		}
		if i%100 == 0 {
			ea, oka := c.NextEagerVictim(2, 3)
			eb, okb := r.NextEagerVictim(2, 3)
			if ea != eb || oka != okb {
				t.Fatalf("eager scan %d diverged: (%x,%t) vs (%x,%t)", i, ea, oka, eb, okb)
			}
		}
	}
}

// TestFromSnapshotValidates rejects inconsistent snapshots.
func TestFromSnapshotValidates(t *testing.T) {
	c := mustNew(t, 8*64*2, 2)
	c.Access(0, true)

	good := c.Snapshot()
	if _, err := FromSnapshot(good); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	bad := c.Snapshot()
	bad.Lines = bad.Lines[:1]
	if _, err := FromSnapshot(bad); err == nil {
		t.Error("line-count mismatch accepted")
	}

	bad = c.Snapshot()
	bad.Stats.HitsByPos = nil
	if _, err := FromSnapshot(bad); err == nil {
		t.Error("histogram mismatch accepted")
	}

	bad = c.Snapshot()
	bad.EagerCursor = 1 << 20
	if _, err := FromSnapshot(bad); err == nil {
		t.Error("out-of-range cursor accepted")
	}

	bad = c.Snapshot()
	bad.SizeBytes = 7
	if _, err := FromSnapshot(bad); err == nil {
		t.Error("invalid geometry accepted")
	}
}
