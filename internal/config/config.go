// Package config models the Mellow-Writes configuration space of the paper
// (§3.1, Tables 2–3): which techniques are enabled (bank-aware mellow
// writes, eager mellow writes, wear quota) and the aggressiveness parameters
// of each (latency ratios, thresholds, write cancellation). It provides the
// full legal enumeration of the space, the 10-dimensional vector encoding of
// §4.1.1, and the manually compressed 5-feature encoding of §4.4.
package config

import (
	"fmt"
	"math"
)

// Latency ratio bounds (Table 3): write pulse time is 150ns·ratio and
// endurance scales as ratio² (Table 9).
const (
	MinLatencyRatio = 1.0
	MaxLatencyRatio = 4.0
	// WearQuotaSlowRatio is the ratio enforced during an exhausted
	// wear-quota slice: "the whole coming time slice can only use the
	// slowest writes (in our implementation, 4×)".
	WearQuotaSlowRatio = 4.0
)

// Config is one point in the Mellow-Writes configuration space.
//
// The zero value is the paper's "default" system: no mellow-writes
// techniques, fast writes at 1× latency, no cancellation — except that the
// zero FastLatency is invalid, so use Default() instead of a zero literal.
type Config struct {
	// BankAware enables bank-aware mellow writes: a write is issued slow
	// when fewer than BankAwareThreshold requests for its bank sit in the
	// write queue.
	BankAware          bool
	BankAwareThreshold int

	// EagerWritebacks enables eager mellow writes: dirty LLC lines in
	// "useless" LRU stack positions (top-N positions contributing less than
	// 1/EagerThreshold of total hits) are written back early as slow writes
	// when the memory system is idle.
	EagerWritebacks bool
	EagerThreshold  int

	// WearQuota divides execution into slices with a wear budget derived
	// from WearQuotaTarget (years); once a slice's accumulated budget is
	// exhausted, all writes in the next slice are forced to the slowest
	// ratio with cancellation enforced.
	WearQuota       bool
	WearQuotaTarget float64

	// FastLatency and SlowLatency are normalized write latency ratios in
	// [1,4]; slow writes are used by the mellow-writes techniques and must
	// not be faster than fast writes.
	FastLatency float64
	SlowLatency float64

	// FastCancellation / SlowCancellation allow an incoming read to cancel
	// an in-flight fast/slow write to the same bank (the write re-queues,
	// costing extra wear). The space constrains FastCancellation ⇒
	// SlowCancellation (§3.3.1).
	FastCancellation bool
	SlowCancellation bool
}

// Default returns the paper's "default" configuration: no mellow-writes
// techniques, 1× fast writes, no cancellation (Table 5, row "default").
func Default() Config {
	return Config{FastLatency: 1.0, SlowLatency: 1.0}
}

// StaticBaseline returns the best static policy from prior work used as the
// paper's baseline (Table 5/10, row "baseline"/"static"): bank-aware with
// threshold 1, eager writebacks with threshold 32, wear quota at 8 years,
// 1× fast / 3× slow writes, cancellation on slow writes only.
func StaticBaseline() Config {
	return Config{
		BankAware:          true,
		BankAwareThreshold: 1,
		EagerWritebacks:    true,
		EagerThreshold:     32,
		WearQuota:          true,
		WearQuotaTarget:    8,
		FastLatency:        1.0,
		SlowLatency:        3.0,
		SlowCancellation:   true,
	}
}

// UsesSlowWrites reports whether any enabled technique can issue slow
// (mellow) writes at SlowLatency.
func (c Config) UsesSlowWrites() bool { return c.BankAware || c.EagerWritebacks }

// Validate checks the structural constraints of §3.3.1 and the parameter
// ranges of Table 3. Parameters belonging to disabled techniques are not
// checked (they are "meaningless and thus not considered").
func (c Config) Validate() error {
	if c.FastLatency < MinLatencyRatio || c.FastLatency > MaxLatencyRatio {
		return fmt.Errorf("config: fast_latency %.2f outside [%g,%g]", c.FastLatency, MinLatencyRatio, MaxLatencyRatio)
	}
	if c.UsesSlowWrites() {
		if c.SlowLatency < MinLatencyRatio || c.SlowLatency > MaxLatencyRatio {
			return fmt.Errorf("config: slow_latency %.2f outside [%g,%g]", c.SlowLatency, MinLatencyRatio, MaxLatencyRatio)
		}
		if c.SlowLatency < c.FastLatency {
			return fmt.Errorf("config: slow_latency %.2f < fast_latency %.2f", c.SlowLatency, c.FastLatency)
		}
		if c.FastCancellation && !c.SlowCancellation {
			return fmt.Errorf("config: fast_cancellation without slow_cancellation")
		}
	}
	if c.BankAware {
		if c.BankAwareThreshold < 1 || c.BankAwareThreshold > 4 {
			return fmt.Errorf("config: bank_aware_threshold %d outside [1,4]", c.BankAwareThreshold)
		}
	}
	if c.EagerWritebacks {
		if c.EagerThreshold < 4 || c.EagerThreshold > 32 {
			return fmt.Errorf("config: eager_threshold %d outside [4,32]", c.EagerThreshold)
		}
	}
	if c.WearQuota {
		if c.WearQuotaTarget < 1 || c.WearQuotaTarget > 20 {
			return fmt.Errorf("config: wear_quota_target %.1f outside [1,20] years", c.WearQuotaTarget)
		}
	}
	return nil
}

// Canonical returns c with the parameters of disabled techniques zeroed, so
// configurations that differ only in meaningless parameters compare equal.
func (c Config) Canonical() Config {
	if !c.BankAware {
		c.BankAwareThreshold = 0
	}
	if !c.EagerWritebacks {
		c.EagerThreshold = 0
	}
	if !c.WearQuota {
		c.WearQuotaTarget = 0
	}
	if !c.UsesSlowWrites() {
		c.SlowLatency = c.FastLatency
		c.SlowCancellation = false
	}
	return c
}

// String renders the configuration in the compact style of the paper's
// tables.
func (c Config) String() string {
	b1 := func(v bool) string {
		if v {
			return "T"
		}
		return "F"
	}
	ba, et, wq := "N/A", "N/A", "N/A"
	if c.BankAware {
		ba = fmt.Sprintf("%d", c.BankAwareThreshold)
	}
	if c.EagerWritebacks {
		et = fmt.Sprintf("%d", c.EagerThreshold)
	}
	if c.WearQuota {
		wq = fmt.Sprintf("%.1fy", c.WearQuotaTarget)
	}
	return fmt.Sprintf("bank=%s/%s eager=%s/%s wq=%s/%s lat=%.1f/%.1f canc=%s/%s",
		b1(c.BankAware), ba, b1(c.EagerWritebacks), et, b1(c.WearQuota), wq,
		c.FastLatency, c.SlowLatency, b1(c.FastCancellation), b1(c.SlowCancellation))
}

func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// VectorLen is the dimensionality of the full configuration encoding
// (§4.1.1, Eq. 1).
const VectorLen = 10

// Vector returns the 10-dimensional encoding of §4.1.1:
//
//	[bank_aware, bank_aware_threshold, eager_writebacks, eager_threshold,
//	 wear_quota, wear_quota_target, fast_latency, slow_latency,
//	 fast_cancellation, slow_cancellation]
func (c Config) Vector() []float64 {
	c = c.Canonical()
	return []float64{
		b2f(c.BankAware), float64(c.BankAwareThreshold),
		b2f(c.EagerWritebacks), float64(c.EagerThreshold),
		b2f(c.WearQuota), c.WearQuotaTarget,
		c.FastLatency, c.SlowLatency,
		b2f(c.FastCancellation), b2f(c.SlowCancellation),
	}
}

// VectorNames returns the feature names matching Vector indices.
func VectorNames() []string {
	return []string{
		"bank_aware", "bank_aware_threshold",
		"eager_writebacks", "eager_threshold",
		"wear_quota", "wear_quota_target",
		"fast_latency", "slow_latency",
		"fast_cancellation", "slow_cancellation",
	}
}

// CompressedLen is the dimensionality of the manually compressed feature
// encoding of §4.4.
const CompressedLen = 5

// Compressed returns the 5-feature encoding of §4.4, in which each
// technique's usage flag and aggressiveness parameter are merged:
//
//   - bank_aware: 0 (off) … 4 (threshold levels 1–4)
//   - eager_writebacks: 0 (off) or the eagerness level 1–4 for thresholds
//     {4,8,16,32} (a larger threshold is more eager, §3.1)
//   - fast_latency, slow_latency: the ratios
//   - cancellation: 0 (none), 1 (slow only), 2 (slow+fast)
//
// Wear quota is excluded, as in the paper's learning space.
func (c Config) Compressed() []float64 {
	c = c.Canonical()
	var bank float64
	if c.BankAware {
		bank = float64(c.BankAwareThreshold)
	}
	var eager float64
	if c.EagerWritebacks {
		switch {
		case c.EagerThreshold >= 32:
			eager = 4
		case c.EagerThreshold >= 16:
			eager = 3
		case c.EagerThreshold >= 8:
			eager = 2
		default:
			eager = 1
		}
	}
	var canc float64
	if c.SlowCancellation {
		canc = 1
	}
	if c.FastCancellation {
		canc = 2
	}
	return []float64{bank, eager, c.FastLatency, c.SlowLatency, canc}
}

// CompressedNames returns the feature names matching Compressed indices.
func CompressedNames() []string {
	return []string{"bank_aware", "eager_writebacks", "fast_latency", "slow_latency", "cancellation"}
}

// Key returns a canonical comparable identity for the configuration,
// suitable for use as a map key. Latency ratios are quantized to 1/100 so
// floating-point noise cannot split identical configurations.
func (c Config) Key() [10]int16 {
	v := c.Vector()
	var k [10]int16
	for i, x := range v {
		k[i] = int16(math.Round(x * 100))
	}
	return k
}
