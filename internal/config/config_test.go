package config

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultAndBaselineValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	if err := StaticBaseline().Validate(); err != nil {
		t.Fatalf("baseline invalid: %v", err)
	}
	b := StaticBaseline()
	if !b.BankAware || !b.EagerWritebacks || !b.WearQuota || b.SlowLatency != 3.0 {
		t.Fatalf("baseline fields wrong: %+v", b)
	}
}

func TestValidateRejectsIllegal(t *testing.T) {
	cases := []Config{
		{FastLatency: 0.5}, // fast too low
		{FastLatency: 5},   // fast too high
		{FastLatency: 2, SlowLatency: 1, BankAware: true, BankAwareThreshold: 1},                         // slow < fast
		{FastLatency: 1, SlowLatency: 2, BankAware: true, BankAwareThreshold: 9},                         // threshold range
		{FastLatency: 1, SlowLatency: 2, EagerWritebacks: true, EagerThreshold: 2},                       // eager range
		{FastLatency: 1, SlowLatency: 2, BankAware: true, BankAwareThreshold: 1, FastCancellation: true}, // fast canc without slow canc
		{FastLatency: 1, WearQuota: true, WearQuotaTarget: 0.5},                                          // wq target range
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d (%v) should be invalid", i, c)
		}
	}
}

func TestCanonicalZeroesDisabledParams(t *testing.T) {
	c := Config{
		FastLatency: 1.5, SlowLatency: 3,
		BankAwareThreshold: 3, EagerThreshold: 8, WearQuotaTarget: 8,
		SlowCancellation: true,
	}
	canon := c.Canonical()
	if canon.BankAwareThreshold != 0 || canon.EagerThreshold != 0 || canon.WearQuotaTarget != 0 {
		t.Fatalf("disabled params not zeroed: %+v", canon)
	}
	if canon.SlowLatency != canon.FastLatency || canon.SlowCancellation {
		t.Fatalf("slow-write params not normalized without slow techniques: %+v", canon)
	}
}

// Property: Canonical is idempotent.
func TestCanonicalIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		c := randomConfig(rand.New(rand.NewSource(seed)))
		once := c.Canonical()
		return once == once.Canonical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randomConfig(rng *rand.Rand) Config {
	lat := func() float64 { return LatencyGrid[rng.Intn(len(LatencyGrid))] }
	c := Config{
		BankAware:          rng.Intn(2) == 0,
		BankAwareThreshold: 1 + rng.Intn(4),
		EagerWritebacks:    rng.Intn(2) == 0,
		EagerThreshold:     EagerThresholdGrid[rng.Intn(len(EagerThresholdGrid))],
		WearQuota:          rng.Intn(2) == 0,
		WearQuotaTarget:    4 + float64(rng.Intn(7)),
		FastLatency:        lat(),
		SlowLatency:        lat(),
		SlowCancellation:   rng.Intn(2) == 0,
	}
	if c.SlowLatency < c.FastLatency {
		c.FastLatency, c.SlowLatency = c.SlowLatency, c.FastLatency
	}
	if c.SlowCancellation && rng.Intn(2) == 0 {
		c.FastCancellation = true
	}
	return c
}

func TestVectorEncoding(t *testing.T) {
	// The paper's example vector (§4.1.1): bank-aware threshold 1, eager
	// threshold 32, no wear quota, latencies 1.5/3.0, slow cancellation.
	c := Config{
		BankAware: true, BankAwareThreshold: 1,
		EagerWritebacks: true, EagerThreshold: 32,
		FastLatency: 1.5, SlowLatency: 3.0,
		SlowCancellation: true,
	}
	want := []float64{1, 1, 1, 32, 0, 0, 1.5, 3.0, 0, 1}
	got := c.Vector()
	if len(got) != VectorLen {
		t.Fatalf("vector length %d, want %d", len(got), VectorLen)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("vector[%d] = %v, want %v (%v)", i, got[i], want[i], got)
		}
	}
	if len(VectorNames()) != VectorLen {
		t.Fatal("VectorNames length mismatch")
	}
}

func TestCompressedEncoding(t *testing.T) {
	c := Config{
		BankAware: true, BankAwareThreshold: 3,
		EagerWritebacks: true, EagerThreshold: 4, // least eager → level 1
		FastLatency: 2, SlowLatency: 3,
		FastCancellation: true, SlowCancellation: true,
	}
	got := c.Compressed()
	want := []float64{3, 1, 2, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("compressed[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if len(CompressedNames()) != CompressedLen {
		t.Fatal("CompressedNames length mismatch")
	}
	// Eager threshold 32 is the most eager level (§3.1).
	c.EagerThreshold = 32
	if c.Compressed()[1] != 4 {
		t.Fatalf("eager level for threshold 32 = %v, want 4", c.Compressed()[1])
	}
	// Disabled techniques encode as 0.
	d := Default()
	for i, v := range d.Compressed()[:2] {
		if v != 0 {
			t.Fatalf("default compressed[%d] = %v, want 0", i, v)
		}
	}
}

func TestString(t *testing.T) {
	s := StaticBaseline().String()
	for _, frag := range []string{"bank=T/1", "eager=T/32", "wq=T/8.0y", "lat=1.0/3.0"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String() = %q missing %q", s, frag)
		}
	}
}

func TestEnumerateCounts(t *testing.T) {
	noWQ := Enumerate(SpaceOptions{})
	if len(noWQ) != 2030 {
		t.Fatalf("no-wq space size = %d, want 2030", len(noWQ))
	}
	full := Enumerate(SpaceOptions{IncludeWearQuota: true})
	if len(full) != 2*len(noWQ) {
		t.Fatalf("wq space size = %d, want %d", len(full), 2*len(noWQ))
	}

	// Case breakdown documented in DESIGN.md.
	count := func(cfgs []Config, keep func(Config) bool) int {
		n := 0
		for _, c := range cfgs {
			if keep(c) {
				n++
			}
		}
		return n
	}
	if n := count(noWQ, func(c Config) bool { return !c.BankAware && !c.EagerWritebacks }); n != 14 {
		t.Fatalf("neither case = %d, want 14", n)
	}
	if n := count(noWQ, func(c Config) bool { return c.BankAware && !c.EagerWritebacks }); n != 336 {
		t.Fatalf("bank-only case = %d, want 336", n)
	}
	if n := count(noWQ, func(c Config) bool { return !c.BankAware && c.EagerWritebacks }); n != 336 {
		t.Fatalf("eager-only case = %d, want 336", n)
	}
	if n := count(noWQ, func(c Config) bool { return c.BankAware && c.EagerWritebacks }); n != 1344 {
		t.Fatalf("both case = %d, want 1344", n)
	}
}

func TestEnumerateAllValid(t *testing.T) {
	for i, c := range Enumerate(SpaceOptions{IncludeWearQuota: true, WearQuotaTarget: 8}) {
		if err := c.Validate(); err != nil {
			t.Fatalf("config %d invalid: %v (%v)", i, err, c)
		}
		if c.UsesSlowWrites() && c.SlowLatency < c.FastLatency {
			t.Fatalf("config %d: slow < fast", i)
		}
		if c.FastCancellation && !c.SlowCancellation && c.UsesSlowWrites() {
			t.Fatalf("config %d: illegal cancellation combo", i)
		}
	}
}

func TestEnumerateDeterministicAndUnique(t *testing.T) {
	a := Enumerate(SpaceOptions{IncludeWearQuota: true})
	b := Enumerate(SpaceOptions{IncludeWearQuota: true})
	if len(a) != len(b) {
		t.Fatal("non-deterministic enumeration size")
	}
	seen := map[[10]int16]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("enumeration differs at %d", i)
		}
		k := a[i].Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("duplicate configs at %d and %d: %v", prev, i, a[i])
		}
		seen[k] = i
	}
}

func TestSpaceIndexOf(t *testing.T) {
	s := NewSpace(SpaceOptions{IncludeWearQuota: true, WearQuotaTarget: 8})
	for _, i := range []int{0, 1, 100, s.Len() - 1} {
		c := s.At(i)
		got, ok := s.IndexOf(c)
		if !ok || got != i {
			t.Fatalf("IndexOf(At(%d)) = %d,%v", i, got, ok)
		}
	}
	if _, ok := s.IndexOf(Config{FastLatency: 1.25, SlowLatency: 1.25}); ok {
		t.Fatal("off-grid config must not be found")
	}
	if got := len(s.Configs()); got != s.Len() {
		t.Fatalf("Configs() length %d != %d", got, s.Len())
	}
}

func TestSpaceFilterAndDistinct(t *testing.T) {
	s := NewSpace(SpaceOptions{})
	idx := s.Filter(func(c Config) bool { return c.FastLatency == 1.0 })
	if len(idx) == 0 {
		t.Fatal("filter found nothing")
	}
	for _, i := range idx {
		if s.At(i).FastLatency != 1.0 {
			t.Fatal("filter returned non-matching config")
		}
	}
	vals := s.DistinctValues(6) // fast_latency dimension
	if len(vals) != len(LatencyGrid) {
		t.Fatalf("distinct fast latencies = %v", vals)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] <= vals[i-1] {
			t.Fatal("DistinctValues not sorted")
		}
	}
}

func TestKeyQuantization(t *testing.T) {
	a := Config{FastLatency: 1.5, SlowLatency: 1.5}
	b := Config{FastLatency: 1.5 + 1e-9, SlowLatency: 1.5}
	if a.Key() != b.Key() {
		t.Fatal("keys must absorb float noise")
	}
	c := Config{FastLatency: 2.0, SlowLatency: 2.0}
	if a.Key() == c.Key() {
		t.Fatal("distinct configs must have distinct keys")
	}
}
