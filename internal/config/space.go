package config

import "sort"

// Grid values for the discretized configuration space. The paper reports
// 3,164 total configurations without giving the grids; with these grids the
// enumeration yields 4,060 (2,030 without wear quota) — same magnitude and
// structure (see DESIGN.md, "Known deviations").
var (
	// LatencyGrid holds the normalized write latency ratios explored for
	// both fast and slow writes (Tables 4/5/10 show multiples of 0.5).
	LatencyGrid = []float64{1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}
	// BankThresholdGrid holds bank_aware_threshold values (Table 3: [1,4]).
	BankThresholdGrid = []int{1, 2, 3, 4}
	// EagerThresholdGrid holds eager_threshold values (Table 3: [4,32];
	// Tables 4/5/10 show powers of two).
	EagerThresholdGrid = []int{4, 8, 16, 32}
)

// SpaceOptions controls enumeration of the configuration space.
type SpaceOptions struct {
	// IncludeWearQuota duplicates every configuration with wear quota
	// enabled at WearQuotaTarget. MCT excludes wear quota from its learning
	// space (§4.4) and re-adds it as a fixup.
	IncludeWearQuota bool
	// WearQuotaTarget is the target lifetime (years) used for wear-quota
	// configurations; 0 defaults to 8 (the paper's default objective).
	WearQuotaTarget float64
}

// Enumerate returns every legal configuration under the grids above and the
// structural constraints of §3.3.1:
//
//   - parameters are only enumerated for enabled techniques;
//   - slow_latency ≥ fast_latency (equality occurs in the paper's own ideal
//     configurations, Table 5);
//   - fast_cancellation ⇒ slow_cancellation, and cancellation choices only
//     exist where they are meaningful.
//
// The result is deterministic: configurations are produced in a fixed order.
func Enumerate(opt SpaceOptions) []Config {
	target := opt.WearQuotaTarget
	if target == 0 {
		target = 8
	}
	var out []Config

	emit := func(c Config) {
		c = c.Canonical()
		out = append(out, c)
		if opt.IncludeWearQuota {
			wq := c
			wq.WearQuota = true
			wq.WearQuotaTarget = target
			out = append(out, wq)
		}
	}

	// Case 1: no slow-write technique. Only fast parameters matter.
	for _, fl := range LatencyGrid {
		for _, fc := range []bool{false, true} {
			emit(Config{FastLatency: fl, SlowLatency: fl, FastCancellation: fc, SlowCancellation: fc})
		}
	}

	// Cancellation combinations legal when slow writes exist:
	// (fast, slow) ∈ {(F,F), (F,T), (T,T)}.
	canc := [][2]bool{{false, false}, {false, true}, {true, true}}

	// Cases 2–4: bank-aware only, eager only, both.
	for _, useBank := range []bool{false, true} {
		for _, useEager := range []bool{false, true} {
			if !useBank && !useEager {
				continue
			}
			bankThrs := []int{0}
			if useBank {
				bankThrs = BankThresholdGrid
			}
			eagerThrs := []int{0}
			if useEager {
				eagerThrs = EagerThresholdGrid
			}
			for _, bt := range bankThrs {
				for _, et := range eagerThrs {
					for _, fl := range LatencyGrid {
						for _, sl := range LatencyGrid {
							if sl < fl {
								continue
							}
							for _, cc := range canc {
								emit(Config{
									BankAware:          useBank,
									BankAwareThreshold: bt,
									EagerWritebacks:    useEager,
									EagerThreshold:     et,
									FastLatency:        fl,
									SlowLatency:        sl,
									FastCancellation:   cc[0],
									SlowCancellation:   cc[1],
								})
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Space is an immutable, indexed view of an enumerated configuration space.
type Space struct {
	configs []Config
	index   map[[10]int16]int
}

// NewSpace enumerates the space under opt and indexes it.
func NewSpace(opt SpaceOptions) *Space {
	cfgs := Enumerate(opt)
	s := &Space{configs: cfgs, index: make(map[[10]int16]int, len(cfgs))}
	for i, c := range cfgs {
		s.index[c.Key()] = i
	}
	return s
}

// Len returns the number of configurations in the space.
func (s *Space) Len() int { return len(s.configs) }

// At returns the configuration at index i.
func (s *Space) At(i int) Config { return s.configs[i] }

// Configs returns a copy of all configurations.
func (s *Space) Configs() []Config {
	out := make([]Config, len(s.configs))
	copy(out, s.configs)
	return out
}

// IndexOf returns the index of c in the space and whether it is present.
func (s *Space) IndexOf(c Config) (int, bool) {
	i, ok := s.index[c.Canonical().Key()]
	return i, ok
}

// Filter returns the indices of configurations satisfying keep, in order.
func (s *Space) Filter(keep func(Config) bool) []int {
	var idx []int
	for i, c := range s.configs {
		if keep(c) {
			idx = append(idx, i)
		}
	}
	return idx
}

// DistinctValues returns the sorted distinct values of the d-th dimension of
// the 10-dimensional vector encoding across the space. Useful for building
// stratified (feature-based) sample grids.
func (s *Space) DistinctValues(d int) []float64 {
	seen := map[float64]bool{}
	for _, c := range s.configs {
		seen[c.Vector()[d]] = true
	}
	vals := make([]float64, 0, len(seen))
	for v := range seen {
		vals = append(vals, v)
	}
	sort.Float64s(vals)
	return vals
}
