package config

import "fmt"

// PromoteThresholdGrid holds the DRAM hot-page promotion thresholds the
// hybrid-tier experiments sweep. Smaller is more aggressive (more of the
// working set migrates to DRAM).
var PromoteThresholdGrid = []int{1, 2, 4, 8}

// TierConfig selects the memory-hierarchy composition of a simulated
// machine. Unlike Config, which the MCT runtime retunes online, the tier
// composition is fixed at machine construction — it is a *scenario* knob,
// swept at the experiment level (one sweep per variant), with the
// promotion threshold joining the learned feature vector as an extra
// tradeoff dimension.
type TierConfig struct {
	// DRAMCache interposes the DRAM cache tier (internal/dram) between the
	// LLC and the NVM controller. False is the stock NVM-only hierarchy.
	DRAMCache bool
	// DRAMPromoteThreshold, when positive, overrides the DRAM tier's
	// hot-page promotion threshold (see dram.Params.PromoteThreshold).
	DRAMPromoteThreshold int
}

// Validate checks tier-composition sanity.
func (t TierConfig) Validate() error {
	if t.DRAMPromoteThreshold < 0 {
		return fmt.Errorf("config: negative DRAM promote threshold %d", t.DRAMPromoteThreshold)
	}
	if !t.DRAMCache && t.DRAMPromoteThreshold != 0 {
		return fmt.Errorf("config: DRAM promote threshold %d set without DRAM cache tier", t.DRAMPromoteThreshold)
	}
	return nil
}

// Canonical zeroes the threshold when the tier is disabled, so equal
// hierarchies compare equal.
func (t TierConfig) Canonical() TierConfig {
	if !t.DRAMCache {
		t.DRAMPromoteThreshold = 0
	}
	return t
}

// Vector encodes the tier composition as model features: [dram_cache,
// dram_promote_threshold]. Appended to Config.Vector by callers fitting
// models over the extended (hierarchy-aware) tradeoff space; the base
// 10-dimensional encoding is untouched.
func (t TierConfig) Vector() []float64 {
	v := make([]float64, 2)
	if t.DRAMCache {
		v[0] = 1
		v[1] = float64(t.DRAMPromoteThreshold)
	}
	return v
}

// TierVectorNames returns the feature names of TierConfig.Vector.
func TierVectorNames() []string {
	return []string{"dram_cache", "dram_promote_threshold"}
}
