package core

import (
	"fmt"

	"mct/internal/config"
	"mct/internal/ml"
	"mct/internal/sim"
)

// TradeoffModel bundles one predictor per objective, fitted on
// baseline-normalized targets (§4.4 "Normalization"): each model learns how
// a configuration differs from the baseline, and predictions are
// denormalized by the baseline's measured behaviour.
type TradeoffModel struct {
	modelName string
	preds     [3]ml.Predictor
	baseline  [3]float64
	fitted    bool
}

// NewTradeoffModel constructs the three predictors for a model family name
// (see ml.New for the accepted names).
func NewTradeoffModel(modelName string) (*TradeoffModel, error) {
	tm := &TradeoffModel{modelName: modelName}
	for i := range tm.preds {
		p, err := ml.New(modelName)
		if err != nil {
			return nil, err
		}
		tm.preds[i] = p
	}
	return tm, nil
}

// NewTradeoffModelWith wraps three caller-supplied predictors (used to plug
// in offline or hierarchical-Bayes models, which need offline data).
func NewTradeoffModelWith(name string, ipc, lifetime, energy ml.Predictor) *TradeoffModel {
	return &TradeoffModel{modelName: name, preds: [3]ml.Predictor{ipc, lifetime, energy}}
}

// Name returns the model family name.
func (tm *TradeoffModel) Name() string { return tm.modelName }

// Fit trains the three predictors on sample configurations and their
// measured metrics, normalizing every target to the baseline metrics.
// baseline must have strictly positive IPC, lifetime and energy.
func (tm *TradeoffModel) Fit(samples []config.Config, measured []sim.Metrics, baseline sim.Metrics) error {
	if len(samples) == 0 || len(samples) != len(measured) {
		return fmt.Errorf("core: %d samples vs %d measurements", len(samples), len(measured))
	}
	b := [3]float64{baseline.IPC, baseline.LifetimeYears, baseline.EnergyJ}
	for i, v := range b {
		if v <= 0 {
			return fmt.Errorf("core: non-positive baseline %v = %g", Metric(i), v)
		}
	}
	X := make([][]float64, len(samples))
	for i, c := range samples {
		X[i] = c.Vector()
	}
	var ys [3][]float64
	for m := 0; m < 3; m++ {
		ys[m] = make([]float64, len(measured))
	}
	for i, mt := range measured {
		ys[0][i] = mt.IPC / b[0]
		ys[1][i] = mt.LifetimeYears / b[1]
		ys[2][i] = mt.EnergyJ / b[2]
	}
	for m := 0; m < 3; m++ {
		if err := tm.preds[m].Fit(X, ys[m]); err != nil {
			return fmt.Errorf("core: fitting %v model: %w", Metric(m), err)
		}
	}
	tm.baseline = b
	tm.fitted = true
	return nil
}

// Predict returns the denormalized [IPC, lifetime, energy] prediction for
// one configuration.
func (tm *TradeoffModel) Predict(c config.Config) [3]float64 {
	x := c.Vector()
	var out [3]float64
	for m := 0; m < 3; m++ {
		out[m] = tm.preds[m].Predict(x) * tm.baseline[m]
	}
	return out
}

// PredictAll predicts every configuration of a space.
func (tm *TradeoffModel) PredictAll(space *config.Space) [][3]float64 {
	out := make([][3]float64, space.Len())
	for i := 0; i < space.Len(); i++ {
		out[i] = tm.Predict(space.At(i))
	}
	return out
}

// Fitted reports whether Fit has succeeded.
func (tm *TradeoffModel) Fitted() bool { return tm.fitted }
