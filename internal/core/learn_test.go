package core

import (
	"math"
	"testing"

	"mct/internal/config"
	"mct/internal/sim"
)

func sampleMetrics(ipc, life, energy float64) sim.Metrics {
	return sim.Metrics{IPC: ipc, LifetimeYears: life, EnergyJ: energy, Instructions: 1}
}

func TestTradeoffModelFitPredict(t *testing.T) {
	tm, err := NewTradeoffModel("gboost")
	if err != nil {
		t.Fatal(err)
	}
	if tm.Name() != "gboost" || tm.Fitted() {
		t.Fatal("fresh model state wrong")
	}

	// Synthetic relationship: IPC falls with fast latency, lifetime grows
	// quadratically, energy grows with latency.
	space := config.NewSpace(config.SpaceOptions{})
	var samples []config.Config
	var measured []sim.Metrics
	for i := 0; i < space.Len(); i += 25 {
		c := space.At(i)
		ipc := 1.0 / c.FastLatency
		life := 4 * c.FastLatency * c.SlowLatency
		energy := 0.01 * (1 + 0.2*c.SlowLatency)
		samples = append(samples, c)
		measured = append(measured, sampleMetrics(ipc, life, energy))
	}
	baseline := sampleMetrics(0.5, 10, 0.012)
	if err := tm.Fit(samples, measured, baseline); err != nil {
		t.Fatal(err)
	}
	if !tm.Fitted() {
		t.Fatal("model must be fitted")
	}

	// Predictions must approximately recover the synthetic law.
	probe := config.Config{FastLatency: 2, SlowLatency: 3, BankAware: true, BankAwareThreshold: 2}
	got := tm.Predict(probe)
	if math.Abs(got[MetricIPC]-0.5) > 0.1 {
		t.Fatalf("IPC prediction %v, want ≈0.5", got[MetricIPC])
	}
	if math.Abs(got[MetricLifetime]-24) > 6 {
		t.Fatalf("lifetime prediction %v, want ≈24", got[MetricLifetime])
	}

	preds := tm.PredictAll(space)
	if len(preds) != space.Len() {
		t.Fatal("PredictAll length mismatch")
	}
}

func TestTradeoffModelErrors(t *testing.T) {
	tm, err := NewTradeoffModel("quadratic-lasso")
	if err != nil {
		t.Fatal(err)
	}
	good := []config.Config{config.Default(), config.StaticBaseline()}
	m := []sim.Metrics{sampleMetrics(1, 8, 1), sampleMetrics(1, 8, 1)}

	if err := tm.Fit(nil, nil, sampleMetrics(1, 1, 1)); err == nil {
		t.Fatal("empty samples must fail")
	}
	if err := tm.Fit(good, m[:1], sampleMetrics(1, 1, 1)); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if err := tm.Fit(good, m, sampleMetrics(0, 8, 1)); err == nil {
		t.Fatal("zero baseline must fail")
	}
	if _, err := NewTradeoffModel("nope"); err == nil {
		t.Fatal("unknown model must fail")
	}
}

func TestTradeoffModelNormalization(t *testing.T) {
	// If every sample equals the baseline, every prediction must equal
	// the baseline.
	tm, _ := NewTradeoffModel("linear")
	space := config.NewSpace(config.SpaceOptions{})
	var samples []config.Config
	var measured []sim.Metrics
	base := sampleMetrics(0.8, 12, 0.02)
	for i := 0; i < space.Len(); i += 100 {
		samples = append(samples, space.At(i))
		measured = append(measured, base)
	}
	if err := tm.Fit(samples, measured, base); err != nil {
		t.Fatal(err)
	}
	got := tm.Predict(config.StaticBaseline())
	for i, v := range got {
		want := [3]float64{0.8, 12, 0.02}[i]
		if math.Abs(v-want) > 1e-6*want {
			t.Fatalf("constant-data prediction[%d] = %v, want %v", i, v, want)
		}
	}
}
