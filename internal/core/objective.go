// Package core implements Memory Cocktail Therapy itself — the paper's
// contribution. It composes the substrates: a sampling plan over the
// configuration space, the cyclic fine-grained sampling runtime,
// normalization to the baseline configuration, the learned predictors, the
// user-defined constrained optimization of §3.2, the wear-quota fixup of
// §5.3, and the monitoring / health-checking loop of §5.4 with phase
// detection (§5.1).
package core

import (
	"fmt"
	"math"

	"mct/internal/floats"
)

// Metric indexes the tradeoff space of §4.1.2.
type Metric int

// The three objectives.
const (
	MetricIPC Metric = iota
	MetricLifetime
	MetricEnergy
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricIPC:
		return "IPC"
	case MetricLifetime:
		return "lifetime"
	case MetricEnergy:
		return "energy"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Constraint bounds one metric. Zero-valued bounds are inactive.
type Constraint struct {
	Metric Metric
	Min    float64
	Max    float64
}

// Objective is a user-defined optimization goal: hard constraints, an
// optional relative-IPC floor ("within 95% of the maximum IPC"), and the
// metric to optimize among the survivors. The paper's default objective is
// Default(8): minimize energy subject to lifetime ≥ 8 years and IPC ≥
// 0.95·max.
type Objective struct {
	Constraints []Constraint
	// RelativeIPCFloor keeps only configurations whose predicted IPC is at
	// least this fraction of the best predicted IPC among
	// constraint-satisfying configurations (0 disables).
	RelativeIPCFloor float64
	Optimize         Metric
	Maximize         bool
}

// Default returns the paper's objective for a given minimum lifetime:
//
//	min Energy  s.t.  Lifetime ≥ years,  IPC ≥ 0.95·IPC*.
func Default(years float64) Objective {
	return Objective{
		Constraints:      []Constraint{{Metric: MetricLifetime, Min: years}},
		RelativeIPCFloor: 0.95,
		Optimize:         MetricEnergy,
		Maximize:         false,
	}
}

// MinLifetime returns the objective's lifetime floor (0 if none) — the
// wear-quota fixup target.
func (o Objective) MinLifetime() float64 {
	for _, c := range o.Constraints {
		if c.Metric == MetricLifetime && c.Min > 0 {
			return c.Min
		}
	}
	return 0
}

// Validate checks the objective's structure.
func (o Objective) Validate() error {
	if o.RelativeIPCFloor < 0 || o.RelativeIPCFloor > 1 {
		return fmt.Errorf("core: relative IPC floor %g outside [0,1]", o.RelativeIPCFloor)
	}
	if o.Optimize < MetricIPC || o.Optimize > MetricEnergy {
		return fmt.Errorf("core: unknown optimize metric %d", int(o.Optimize))
	}
	for _, c := range o.Constraints {
		if c.Metric < MetricIPC || c.Metric > MetricEnergy {
			return fmt.Errorf("core: unknown constraint metric %d", int(c.Metric))
		}
		if c.Max != 0 && c.Max < c.Min {
			return fmt.Errorf("core: constraint on %v has max %g < min %g", c.Metric, c.Max, c.Min)
		}
	}
	return nil
}

func (o Objective) satisfies(v [3]float64) bool {
	for _, c := range o.Constraints {
		x := v[c.Metric]
		if c.Min != 0 && x < c.Min {
			return false
		}
		if c.Max != 0 && x > c.Max {
			return false
		}
	}
	return true
}

// SelectOptimal applies the objective to per-configuration predictions
// (rows of [IPC, lifetime, energy]) and returns the winning index. ok is
// false when no configuration satisfies the constraints; in that case idx
// is the configuration with the largest margin on the most-violated
// constraint dimension (a best-effort fallback — MCT then relies on the
// wear-quota fixup for the lifetime guarantee).
func SelectOptimal(pred [][3]float64, o Objective) (idx int, ok bool) {
	if len(pred) == 0 {
		return -1, false
	}

	// Pass 1: constraint-qualified set and its best IPC.
	bestIPC := math.Inf(-1)
	anyQualified := false
	for _, v := range pred {
		if o.satisfies(v) {
			anyQualified = true
			if v[MetricIPC] > bestIPC {
				bestIPC = v[MetricIPC]
			}
		}
	}

	if !anyQualified {
		// Fallback: maximize the constrained metric that is hardest to
		// meet (the lifetime floor, under the paper's objective).
		best := 0
		bestScore := math.Inf(-1)
		for i, v := range pred {
			score := 0.0
			for _, c := range o.Constraints {
				if c.Min != 0 {
					score += v[c.Metric] / c.Min
				}
				if c.Max != 0 {
					score -= v[c.Metric] / c.Max
				}
			}
			if score > bestScore {
				bestScore = score
				best = i
			}
		}
		return best, false
	}

	floor := o.RelativeIPCFloor * bestIPC

	best := -1
	bestVal := math.Inf(1)
	if o.Maximize {
		bestVal = math.Inf(-1)
	}
	for i, v := range pred {
		if !o.satisfies(v) || v[MetricIPC] < floor {
			continue
		}
		x := v[o.Optimize]
		if (o.Maximize && x > bestVal) || (!o.Maximize && x < bestVal) {
			bestVal = x
			best = i
		}
	}
	if best < 0 {
		// Only possible through floating-point edge cases; fall back to
		// the best-IPC qualified configuration.
		for i, v := range pred {
			if o.satisfies(v) && floats.Eq(v[MetricIPC], bestIPC) {
				return i, true
			}
		}
	}
	return best, true
}
