package core

import (
	"testing"
)

func TestMetricString(t *testing.T) {
	if MetricIPC.String() != "IPC" || MetricLifetime.String() != "lifetime" || MetricEnergy.String() != "energy" {
		t.Fatal("metric names wrong")
	}
	if Metric(9).String() == "" {
		t.Fatal("unknown metric must render")
	}
}

func TestDefaultObjective(t *testing.T) {
	obj := Default(8)
	if err := obj.Validate(); err != nil {
		t.Fatal(err)
	}
	if obj.MinLifetime() != 8 {
		t.Fatalf("MinLifetime = %v", obj.MinLifetime())
	}
	if obj.Optimize != MetricEnergy || obj.Maximize {
		t.Fatal("default objective must minimize energy")
	}
	if obj.RelativeIPCFloor != 0.95 {
		t.Fatal("default IPC floor must be 0.95")
	}
}

func TestObjectiveValidate(t *testing.T) {
	bad := []Objective{
		{RelativeIPCFloor: 2},
		{Optimize: Metric(7)},
		{Constraints: []Constraint{{Metric: Metric(9)}}},
		{Constraints: []Constraint{{Metric: MetricIPC, Min: 5, Max: 2}}},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("objective %d should be invalid", i)
		}
	}
}

func TestSelectOptimalPaperSemantics(t *testing.T) {
	// Rows: [IPC, lifetime, energy].
	preds := [][3]float64{
		{1.00, 4, 10}, // fast but short-lived: fails lifetime
		{0.97, 9, 9},  // qualified, within 95% of best IPC, energy 9
		{0.98, 10, 8}, // qualified, best energy among floor-satisfiers
		{0.60, 20, 1}, // qualified but below the IPC floor
		{0.99, 8, 12}, // qualified, defines max IPC
	}
	idx, ok := SelectOptimal(preds, Default(8))
	if !ok {
		t.Fatal("constraints are satisfiable")
	}
	// Max qualified IPC = 0.99 → floor 0.9405; candidates {1,2,4};
	// min energy among them is row 2.
	if idx != 2 {
		t.Fatalf("selected %d, want 2", idx)
	}
}

func TestSelectOptimalMaximize(t *testing.T) {
	preds := [][3]float64{
		{0.5, 9, 5},
		{0.9, 9, 9},
		{0.8, 2, 1}, // fails lifetime
	}
	obj := Objective{
		Constraints: []Constraint{{Metric: MetricLifetime, Min: 8}},
		Optimize:    MetricIPC,
		Maximize:    true,
	}
	idx, ok := SelectOptimal(preds, obj)
	if !ok || idx != 1 {
		t.Fatalf("selected %d,%v, want 1,true", idx, ok)
	}
}

func TestSelectOptimalMaxConstraint(t *testing.T) {
	// Energy budget: at most 6 J; maximize IPC.
	preds := [][3]float64{
		{0.9, 9, 7}, // over budget
		{0.7, 9, 5},
		{0.8, 9, 6},
	}
	obj := Objective{
		Constraints: []Constraint{{Metric: MetricEnergy, Max: 6}},
		Optimize:    MetricIPC,
		Maximize:    true,
	}
	idx, ok := SelectOptimal(preds, obj)
	if !ok || idx != 2 {
		t.Fatalf("selected %d,%v, want 2,true", idx, ok)
	}
}

func TestSelectOptimalFallback(t *testing.T) {
	// Nothing satisfies the 8-year floor: fall back to the config with
	// the largest lifetime margin (the wear-quota fixup then guarantees
	// the target).
	preds := [][3]float64{
		{1.0, 2, 1},
		{0.9, 6, 2},
		{0.8, 5, 3},
	}
	idx, ok := SelectOptimal(preds, Default(8))
	if ok {
		t.Fatal("constraints are unsatisfiable")
	}
	if idx != 1 {
		t.Fatalf("fallback selected %d, want 1 (max lifetime)", idx)
	}
}

func TestSelectOptimalEmpty(t *testing.T) {
	if idx, ok := SelectOptimal(nil, Default(8)); ok || idx != -1 {
		t.Fatal("empty predictions must fail")
	}
}
