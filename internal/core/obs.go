package core

import (
	"fmt"

	"mct/internal/obs"
)

// runtimeObs is the runtime's metric family: decision-loop counters plus
// last-window IPC gauges. All writes happen on the runtime's own goroutine
// (the loop is single-threaded), so gauges are single-writer as the obs
// contract requires.
type runtimeObs struct {
	phases          *obs.Counter
	phaseChanges    *obs.Counter
	healthChecks    *obs.Counter
	healthReverts   *obs.Counter
	decisions       *obs.Counter
	decisionsUnsat  *obs.Counter
	samplesMeasured *obs.Counter

	baselineIPC *obs.Gauge
	samplingIPC *obs.Gauge
	testingIPC  *obs.Gauge
}

// newRuntimeObs registers the core metric family on r.
func newRuntimeObs(r *obs.Registry) *runtimeObs {
	return &runtimeObs{
		phases:          r.Counter("core.phases"),
		phaseChanges:    r.Counter("core.phase_changes"),
		healthChecks:    r.Counter("core.health_checks"),
		healthReverts:   r.Counter("core.health_reverts"),
		decisions:       r.Counter("core.decisions"),
		decisionsUnsat:  r.Counter("core.decisions_unsatisfiable"),
		samplesMeasured: r.Counter("core.samples_measured"),
		baselineIPC:     r.Gauge("core.baseline_ipc"),
		samplingIPC:     r.Gauge("core.sampling_ipc"),
		testingIPC:      r.Gauge("core.testing_ipc"),
	}
}

// emit sends a trace event to the configured sink, if any.
func (r *Runtime) emit(e obs.Event) {
	if r.opt.Events != nil {
		e.Scope = "runtime"
		r.opt.Events(e)
	}
}

// phaseItem renders the per-phase event Item.
func phaseItem(phaseNo int) string { return fmt.Sprintf("phase %d", phaseNo) }
