package core

import (
	"fmt"

	"mct/internal/config"
	"mct/internal/ml"
	"mct/internal/obs"
	"mct/internal/phase"
	"mct/internal/rng"
	"mct/internal/sampling"
	"mct/internal/sim"
)

// SamplerKind selects the sample-set strategy (Figure 4b).
type SamplerKind int

// Sampler kinds.
const (
	// SamplerFeatureBased grids the three lasso-selected primary features
	// (§4.4); MCT's default.
	SamplerFeatureBased SamplerKind = iota
	// SamplerRandom draws RandomSamples configurations uniformly.
	SamplerRandom
)

// Options configures the MCT runtime. Instruction budgets are scaled to the
// simulator's trace lengths; the ratios mirror the paper (unit ≪ burst
// length; sampling ≈ half the testing period in the proof-of-concept).
type Options struct {
	// Model is the ml predictor family (ml.NameGBoost or
	// ml.NameQuadraticLasso in the paper's final experiments).
	Model string

	// NewPredictor, when non-nil, overrides Model with a custom predictor
	// factory (three instances are created, one per objective). This is
	// the hook for offline or hierarchical-Bayesian predictors, which need
	// offline data the runtime cannot construct itself.
	NewPredictor func() (ml.Predictor, error)

	Sampler       SamplerKind
	RandomSamples int

	// Space options for the learning space. MCT excludes wear quota from
	// learning (§4.4) — IncludeWearQuota should stay false; the lifetime
	// guarantee instead comes from the fixup.
	Space config.SpaceOptions

	// BaselineInsts is the baseline calibration window run before sampling
	// (normalization denominator, §4.4).
	BaselineInsts uint64
	// SampleUnitInsts is the fine-grained sampling unit t (§5.2).
	SampleUnitInsts uint64
	// SamplingTotalInsts is the total sampling budget T; the schedule
	// loops all samples in units of t for T/(N·t) rounds.
	SamplingTotalInsts uint64
	// TestChunkInsts is the granularity of testing-period execution,
	// monitoring and phase observation.
	TestChunkInsts uint64

	// HealthCheckEvery runs the baseline for one chunk after this many
	// testing chunks and reverts to the baseline if the chosen
	// configuration's aggregate testing IPC underperforms the aggregate of
	// the baseline health windows by more than HealthMargin (§5.4).
	// 0 disables health checking.
	HealthCheckEvery int
	HealthMargin     float64

	// SampleSettleFrac is the fraction of a sampling unit run (but not
	// attributed to the sample) right after each configuration switch, so
	// queued writes issued under the previous sample's policy do not
	// contaminate the next sample's measurements.
	SampleSettleFrac float64

	// EnablePhaseDetection re-triggers learning when the detector fires
	// during the testing period.
	EnablePhaseDetection bool
	Phase                phase.Options

	// WearQuotaFixup adds wear quota at the objective's lifetime floor to
	// the chosen configuration (§5.3). Strongly recommended.
	WearQuotaFixup bool

	// WarmupAccesses warms the system (LLC fill) before the first
	// learning cycle; 0 skips warmup. Warmup instructions do not count
	// against the Run budget.
	WarmupAccesses int

	// KeepPredictions retains the full prediction matrix in each Decision
	// (memory-heavy for large spaces; useful for analysis).
	KeepPredictions bool

	// Seed drives sample-set randomness.
	Seed int64

	// Obs, when non-nil, receives the runtime's metric family
	// (core.phases, core.decisions, per-window IPC gauges, ...). The
	// registry is typically shared with the machine's observer so one
	// dump covers every layer.
	Obs *obs.Registry

	// Events, when non-nil, receives the runtime's decision-trace events
	// (baseline/sampling/decision/health_revert/phase_change) with window
	// metrics in Event.Values.
	Events obs.TraceSink
}

// DefaultOptions returns runtime options scaled to the simulator's
// 10⁶–10⁷-instruction runs.
func DefaultOptions() Options {
	return Options{
		Model:              "gboost",
		Sampler:            SamplerFeatureBased,
		RandomSamples:      80,
		BaselineInsts:      300_000,
		SampleUnitInsts:    25_000,
		SamplingTotalInsts: 4_500_000,
		TestChunkInsts:     100_000,
		HealthCheckEvery:   5,
		HealthMargin:       0.02,
		SampleSettleFrac:   0.2,
		// Detector windows scaled so the short window fits inside a
		// coarse phase (the paper's I=1M with 100/1000 windows assumes
		// billions of instructions; here phases are millions). The
		// runtime overrides IntervalInsts with TestChunkInsts.
		Phase: phase.Options{
			IntervalInsts: 25_000,
			ShortWindows:  40,
			LongWindows:   400,
			Threshold:     15,
		},
		WearQuotaFixup: true,
		WarmupAccesses: 60_000,
		Seed:           42,
	}
}

// Validate checks option sanity.
func (o Options) Validate() error {
	if o.BaselineInsts == 0 || o.SampleUnitInsts == 0 || o.SamplingTotalInsts == 0 || o.TestChunkInsts == 0 {
		return fmt.Errorf("core: zero instruction budget in options")
	}
	if o.Sampler == SamplerRandom && o.RandomSamples <= 0 {
		return fmt.Errorf("core: random sampler needs RandomSamples > 0")
	}
	if o.HealthMargin < 0 || o.HealthMargin > 1 {
		return fmt.Errorf("core: health margin %g outside [0,1]", o.HealthMargin)
	}
	if o.SampleSettleFrac < 0 || o.SampleSettleFrac > 1 {
		return fmt.Errorf("core: sample settle fraction %g outside [0,1]", o.SampleSettleFrac)
	}
	if o.EnablePhaseDetection {
		if err := o.Phase.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Decision records one learning outcome.
type Decision struct {
	ChosenIndex int
	Chosen      config.Config
	// Satisfied reports whether the predictor believed the constraints
	// were satisfiable; when false the fallback configuration was chosen
	// and the wear-quota fixup carries the lifetime guarantee.
	Satisfied bool
	// SampleIndices are the sampled configuration indices (into the
	// learning space).
	SampleIndices []int
	// SampleMetrics are the aggregated measurements per sample.
	SampleMetrics []sim.Metrics
	// Predictions is the full prediction matrix (only when
	// KeepPredictions).
	Predictions [][3]float64
}

// PhaseResult is the outcome of one phase's learn-and-run cycle.
type PhaseResult struct {
	Baseline sim.Metrics
	Sampling sim.Metrics
	Testing  sim.Metrics
	Decision Decision
	// PhaseChange is true when the detector ended this phase early.
	PhaseChange bool
	// Reverted is true when health checking switched back to the baseline.
	Reverted bool
}

// Result is the outcome of a Runtime.Run.
type Result struct {
	Phases []PhaseResult
	// Overall aggregates every executed window (baseline + sampling +
	// testing across phases).
	Overall sim.Metrics
	// Sampling and Testing aggregate those periods across phases
	// (the Figure 9 overhead accounting).
	Sampling sim.Metrics
	Testing  sim.Metrics

	PhaseChanges  int
	HealthReverts int
}

// System is the machine abstraction MCT controls: windowed execution plus
// online reconfiguration. *sim.Machine satisfies it directly; use
// MultiSystem for *sim.MultiMachine.
type System interface {
	RunInstructions(n uint64) sim.Metrics
	SetConfig(cfg config.Config) error
	Options() sim.Options
	// Warmup advances the system by n memory accesses without metric
	// accounting, returning the instructions consumed (LLC warmup — cold
	// caches produce no writebacks and meaningless lifetime samples).
	Warmup(n int) uint64
}

// MultiSystem adapts a multi-core machine to the System interface (its
// window IPC is the geometric mean of per-core IPCs).
type MultiSystem struct {
	MM *sim.MultiMachine
}

// RunInstructions implements System. The window's IPC is the geometric
// mean of per-core IPCs; CPUCycles is rescaled so that
// Instructions/CPUCycles equals that IPC — aggregating such windows in a
// sim.Accum then reproduces an instruction-weighted blend of the geomean
// (instead of silently switching to a throughput-over-wallclock metric,
// which is ~Cores× larger and not comparable to single-run geomeans).
func (a MultiSystem) RunInstructions(n uint64) sim.Metrics {
	mm := a.MM.RunInstructions(n)
	m := mm.Metrics
	if m.IPC > 0 {
		m.CPUCycles = float64(m.Instructions) / m.IPC
	}
	return m
}

// SetConfig implements System.
func (a MultiSystem) SetConfig(cfg config.Config) error { return a.MM.SetConfig(cfg) }

// Options implements System.
func (a MultiSystem) Options() sim.Options { return a.MM.Options() }

// Warmup implements System.
func (a MultiSystem) Warmup(n int) uint64 { return a.MM.Warmup(n) }

// Runtime drives MCT over a live machine.
type Runtime struct {
	machine  System
	space    *config.Space
	baseline config.Config
	obj      Objective
	opt      Options
	model    *TradeoffModel
	detector *phase.Detector
	robs     *runtimeObs // nil when Options.Obs is nil
}

// New constructs an MCT runtime controlling machine under objective obj.
func New(machine System, obj Objective, opt Options) (*Runtime, error) {
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	if err := obj.Validate(); err != nil {
		return nil, err
	}
	var tm *TradeoffModel
	var err error
	if opt.NewPredictor != nil {
		var preds [3]ml.Predictor
		for i := range preds {
			if preds[i], err = opt.NewPredictor(); err != nil {
				return nil, err
			}
		}
		tm = NewTradeoffModelWith("custom", preds[0], preds[1], preds[2])
	} else if tm, err = NewTradeoffModel(opt.Model); err != nil {
		return nil, err
	}
	r := &Runtime{
		machine:  machine,
		space:    config.NewSpace(opt.Space),
		baseline: config.StaticBaseline(),
		obj:      obj,
		opt:      opt,
		model:    tm,
	}
	if lt := obj.MinLifetime(); lt > 0 {
		r.baseline.WearQuotaTarget = lt
	}
	if opt.EnablePhaseDetection {
		po := opt.Phase
		po.IntervalInsts = opt.TestChunkInsts
		r.detector = phase.New(po)
	}
	if opt.Obs != nil {
		r.robs = newRuntimeObs(opt.Obs)
	}
	return r, nil
}

// Space returns the learning space.
func (r *Runtime) Space() *config.Space { return r.space }

// Baseline returns the static baseline configuration used for
// normalization and health checks.
func (r *Runtime) Baseline() config.Config { return r.baseline }

// plan builds the sample set for this phase.
func (r *Runtime) plan() sampling.Plan {
	// A fresh stream per call keeps every phase's plan identical for a
	// given seed, matching the paper's fixed sample set.
	switch r.opt.Sampler {
	case SamplerRandom:
		return sampling.Random(r.space, r.opt.RandomSamples, rng.New(r.opt.Seed))
	default:
		return sampling.FeatureBased(r.space, rng.New(r.opt.Seed))
	}
}

// Run executes MCT for totalInsts instructions and reports the aggregated
// outcome.
func (r *Runtime) Run(totalInsts uint64) (Result, error) {
	var res Result
	overall := sim.NewAccum(r.machine.Options())
	samplingAll := sim.NewAccum(r.machine.Options())
	testingAll := sim.NewAccum(r.machine.Options())

	if r.opt.WarmupAccesses > 0 {
		if err := r.machine.SetConfig(r.baseline); err != nil {
			return res, err
		}
		r.machine.Warmup(r.opt.WarmupAccesses)
	}

	remaining := totalInsts
	for remaining > 0 {
		pr, used, err := r.runPhase(len(res.Phases), remaining, overall, samplingAll, testingAll)
		if err != nil {
			return res, err
		}
		res.Phases = append(res.Phases, pr)
		if r.robs != nil {
			r.robs.phases.Inc()
		}
		if pr.PhaseChange {
			res.PhaseChanges++
			if r.robs != nil {
				r.robs.phaseChanges.Inc()
			}
		}
		if pr.Reverted {
			res.HealthReverts++
			if r.robs != nil {
				r.robs.healthReverts.Inc()
			}
		}
		if used >= remaining {
			remaining = 0
		} else {
			remaining -= used
		}
		if used == 0 {
			break // defensive: no forward progress
		}
	}
	res.Overall = overall.Metrics()
	res.Sampling = samplingAll.Metrics()
	res.Testing = testingAll.Metrics()
	return res, nil
}

// clampBudget bounds a requested window of n instructions to what remains of
// budget after used. ok is false when the budget is already exhausted
// (used ≥ budget) — computing budget-used in that state would underflow
// uint64 into a near-infinite allowance, so callers must not run at all.
// Windows can legitimately land in that state because the machine executes
// whole memory accesses and may overshoot a requested window slightly.
func clampBudget(n, budget, used uint64) (uint64, bool) {
	if used >= budget {
		return 0, false
	}
	if rem := budget - used; n > rem {
		return rem, true
	}
	return n, true
}

// runPhase performs one baseline→sample→learn→test cycle, bounded by
// budget instructions. It returns the phase outcome and instructions used.
// phaseNo labels the phase in trace events.
func (r *Runtime) runPhase(phaseNo int, budget uint64, overall, samplingAll, testingAll *sim.Accum) (PhaseResult, uint64, error) {
	var pr PhaseResult
	var used uint64

	run := func(n uint64) sim.Metrics {
		n, ok := clampBudget(n, budget, used)
		if !ok {
			return sim.Metrics{}
		}
		m := r.machine.RunInstructions(n)
		used += m.Instructions
		overall.Add(m)
		return m
	}

	// 1. Baseline calibration window.
	if err := r.machine.SetConfig(r.baseline); err != nil {
		return pr, used, err
	}
	pr.Baseline = run(r.opt.BaselineInsts)
	if r.robs != nil {
		r.robs.baselineIPC.Set(pr.Baseline.IPC)
	}
	r.emit(obs.Event{
		Item: phaseItem(phaseNo), Kind: "baseline",
		Values: map[string]float64{"ipc": pr.Baseline.IPC, "lifetime_years": pr.Baseline.LifetimeYears},
	})
	if used >= budget {
		pr.Testing = pr.Baseline // degenerate: budget too small to learn
		return pr, used, nil
	}

	// 2. Sampling period: cyclic fine-grained schedule (§5.2).
	plan := r.plan()
	sched, err := sampling.BuildSchedule(r.opt.SamplingTotalInsts, r.opt.SampleUnitInsts, plan.Len())
	if err != nil {
		return pr, used, err
	}
	accums := make([]*sim.Accum, plan.Len())
	for i := range accums {
		accums[i] = sim.NewAccum(r.machine.Options())
	}
	sampAgg := sim.NewAccum(r.machine.Options())
	settle := uint64(float64(sched.UnitInsts) * r.opt.SampleSettleFrac)
	for round := 0; round < sched.Rounds && used < budget; round++ {
		for si, cfgIdx := range plan.Indices {
			if used >= budget {
				break
			}
			if err := r.machine.SetConfig(r.space.At(cfgIdx)); err != nil {
				return pr, used, err
			}
			if settle > 0 {
				// Let queued work from the previous configuration drain
				// before attributing measurements to this sample.
				m := run(settle)
				sampAgg.Add(m)
				samplingAll.Add(m)
				if used >= budget {
					break
				}
			}
			m := run(sched.UnitInsts)
			accums[si].Add(m)
			sampAgg.Add(m)
			samplingAll.Add(m)
		}
	}
	pr.Sampling = sampAgg.Metrics()
	if r.robs != nil {
		r.robs.samplingIPC.Set(pr.Sampling.IPC)
	}
	r.emit(obs.Event{
		Item: phaseItem(phaseNo), Kind: "sampling",
		Values: map[string]float64{"ipc": pr.Sampling.IPC},
	})

	// 3. Learn and optimize.
	samples := make([]config.Config, 0, plan.Len())
	measured := make([]sim.Metrics, 0, plan.Len())
	for si, cfgIdx := range plan.Indices {
		if accums[si].Windows() == 0 {
			continue
		}
		samples = append(samples, r.space.At(cfgIdx))
		measured = append(measured, accums[si].Metrics())
	}
	pr.Decision = Decision{ChosenIndex: -1, SampleIndices: plan.Indices, SampleMetrics: measured}

	chosen := r.baseline
	if len(samples) >= 3 && pr.Baseline.IPC > 0 {
		if err := r.model.Fit(samples, measured, pr.Baseline); err != nil {
			return pr, used, fmt.Errorf("core: learning failed: %w", err)
		}
		preds := r.model.PredictAll(r.space)
		idx, ok := SelectOptimal(preds, r.obj)
		pr.Decision.ChosenIndex = idx
		pr.Decision.Satisfied = ok
		if r.opt.KeepPredictions {
			pr.Decision.Predictions = preds
		}
		if idx >= 0 {
			chosen = r.space.At(idx)
			// 4. Wear-quota fixup (§5.3): guarantee the lifetime floor
			// even under prediction error.
			if r.opt.WearQuotaFixup {
				if lt := r.obj.MinLifetime(); lt > 0 {
					chosen.WearQuota = true
					chosen.WearQuotaTarget = lt
				}
			}
		}
	}
	pr.Decision.Chosen = chosen
	if r.robs != nil {
		r.robs.decisions.Inc()
		r.robs.samplesMeasured.Add(uint64(len(measured)))
		if pr.Decision.ChosenIndex >= 0 && !pr.Decision.Satisfied {
			r.robs.decisionsUnsat.Inc()
		}
	}
	r.emit(obs.Event{
		Item: phaseItem(phaseNo), Kind: "decision",
		Text: fmt.Sprintf("phase %d: chose config %d (satisfied=%v, %d samples)",
			phaseNo, pr.Decision.ChosenIndex, pr.Decision.Satisfied, len(measured)),
		Values: map[string]float64{
			"chosen_index": float64(pr.Decision.ChosenIndex),
			"samples":      float64(len(measured)),
		},
	})

	// 5. Testing period with monitoring, health checks and phase
	// detection (§5.4).
	if err := r.machine.SetConfig(chosen); err != nil {
		return pr, used, err
	}
	testAgg := sim.NewAccum(r.machine.Options())
	chosenAgg := sim.NewAccum(r.machine.Options()) // chunks under the chosen config
	healthAgg := sim.NewAccum(r.machine.Options()) // baseline health-check chunks
	chunks := 0
	for used < budget {
		m := run(r.opt.TestChunkInsts)
		testAgg.Add(m)
		chosenAgg.Add(m)
		testingAll.Add(m)
		chunks++

		if r.detector != nil {
			if _, newPhase := r.detector.Observe(float64(m.MemReads + m.MemWrites)); newPhase {
				pr.PhaseChange = true
				break
			}
		}

		if !pr.Reverted && r.opt.HealthCheckEvery > 0 && chunks%r.opt.HealthCheckEvery == 0 && used < budget {
			if r.robs != nil {
				r.robs.healthChecks.Inc()
			}
			if err := r.machine.SetConfig(r.baseline); err != nil {
				return pr, used, err
			}
			bm := run(r.opt.TestChunkInsts)
			testAgg.Add(bm)
			healthAgg.Add(bm)
			testingAll.Add(bm)
			if r.detector != nil {
				if _, newPhase := r.detector.Observe(float64(bm.MemReads + bm.MemWrites)); newPhase {
					pr.PhaseChange = true
					break
				}
			}
			// Compare rolling aggregates (single chunks are too noisy for
			// a never-worse guarantee).
			if chosenAgg.Metrics().IPC < healthAgg.Metrics().IPC*(1-r.opt.HealthMargin) {
				// Never worse than the baseline system (§5.4).
				pr.Reverted = true
				chosen = r.baseline
				r.emit(obs.Event{
					Item: phaseItem(phaseNo), Kind: "health_revert",
					Text: fmt.Sprintf("phase %d: health check reverted to baseline", phaseNo),
					Values: map[string]float64{
						"chosen_ipc": chosenAgg.Metrics().IPC,
						"health_ipc": healthAgg.Metrics().IPC,
					},
				})
			}
			if err := r.machine.SetConfig(chosen); err != nil {
				return pr, used, err
			}
		}
	}
	pr.Testing = testAgg.Metrics()
	if r.robs != nil {
		r.robs.testingIPC.Set(pr.Testing.IPC)
	}
	if pr.PhaseChange {
		r.emit(obs.Event{
			Item: phaseItem(phaseNo), Kind: "phase_change",
			Text:   fmt.Sprintf("phase %d: phase change detected, relearning", phaseNo),
			Values: map[string]float64{"ipc": pr.Testing.IPC},
		})
	}
	return pr, used, nil
}
