package core

import (
	"testing"

	"mct/internal/config"
	"mct/internal/sim"
)

func TestClampBudget(t *testing.T) {
	cases := []struct {
		n, budget, used uint64
		want            uint64
		ok              bool
	}{
		{n: 1000, budget: 5000, used: 0, want: 1000, ok: true},
		{n: 1000, budget: 5000, used: 4500, want: 500, ok: true},
		{n: 1000, budget: 5000, used: 4000, want: 1000, ok: true},
		// Exhausted budget: used == budget and used > budget. Before the
		// clamp was extracted, budget-used underflowed uint64 here and the
		// window ran unclamped.
		{n: 1000, budget: 5000, used: 5000, want: 0, ok: false},
		{n: 1000, budget: 5000, used: 7000, want: 0, ok: false},
		{n: 0, budget: 5000, used: 5000, want: 0, ok: false},
	}
	for _, c := range cases {
		got, ok := clampBudget(c.n, c.budget, c.used)
		if got != c.want || ok != c.ok {
			t.Errorf("clampBudget(%d, %d, %d) = (%d, %t), want (%d, %t)",
				c.n, c.budget, c.used, got, ok, c.want, c.ok)
		}
	}
}

// fakeSystem is a scripted core.System: deterministic IPC per window chosen
// by configuration and progress, zero wear (lifetime pins at the simulator's
// 1000-year cap). It lets the tests steer the runtime into specific code
// paths — health reverts, phase changes, budget overshoot — that real traces
// only hit probabilistically.
type fakeSystem struct {
	opt      sim.Options
	baseline config.Config
	active   config.Config

	total uint64 // instructions executed so far
	calls int

	// degradeAfter > 0 drops non-baseline IPC from 2.2 to 1.0 once total
	// passes it (sampling looks great, testing disappoints → health revert).
	degradeAfter uint64
	// trafficJumpAfter > 0 multiplies memory traffic 10× once total passes
	// it (drives the phase detector).
	trafficJumpAfter uint64
	// instScale > 1 makes every window overshoot its requested length, the
	// way real machines overshoot by finishing whole memory accesses.
	instScale float64
}

func (f *fakeSystem) RunInstructions(n uint64) sim.Metrics {
	f.calls++
	ipc := 2.0
	if f.active != f.baseline {
		ipc = 2.2
		if f.degradeAfter > 0 && f.total >= f.degradeAfter {
			ipc = 1.0
		}
	}
	if f.instScale > 1 {
		n = uint64(float64(n) * f.instScale)
	}
	f.total += n
	instsPerRead := uint64(100)
	if f.trafficJumpAfter > 0 && f.total >= f.trafficJumpAfter {
		instsPerRead = 10
	}
	m := sim.Metrics{
		Instructions:  n,
		CPUCycles:     float64(n) / ipc,
		IPC:           ipc,
		Seconds:       float64(n) / ipc / 3.2e9,
		LifetimeYears: 1000,
		EnergyJ:       float64(n) * 1e-9,
	}
	// A little deterministic jitter keeps the phase detector's variances
	// finite (a perfectly constant history makes the t-score degenerate).
	m.MemReads = n/instsPerRead + uint64(f.calls%3)
	m.MemWrites = n / (2 * instsPerRead)
	return m
}

func (f *fakeSystem) SetConfig(cfg config.Config) error { f.active = cfg; return nil }
func (f *fakeSystem) Options() sim.Options              { return f.opt }
func (f *fakeSystem) Warmup(int) uint64                 { return 0 }

// fakeRuntimeOptions are small budgets tuned to the fakeSystem timeline:
// baseline ends at 100k instructions, sampling at 200k, testing after.
func fakeRuntimeOptions() Options {
	o := DefaultOptions()
	o.Sampler = SamplerRandom
	o.RandomSamples = 5
	o.BaselineInsts = 100_000
	o.SampleUnitInsts = 10_000
	o.SamplingTotalInsts = 100_000
	o.TestChunkInsts = 50_000
	o.HealthCheckEvery = 2
	o.HealthMargin = 0.02
	o.SampleSettleFrac = 0
	o.WarmupAccesses = 0
	return o
}

func newFakeRuntime(t *testing.T, f *fakeSystem, o Options) *Runtime {
	t.Helper()
	f.opt = sim.DefaultOptions()
	rt, err := New(f, Default(8), o)
	if err != nil {
		t.Fatal(err)
	}
	f.baseline = rt.Baseline()
	f.active = f.baseline
	return rt
}

// TestHealthRevertSwitchesBackToBaseline scripts the §5.4 never-worse
// guarantee: the chosen configuration samples well but degrades during
// testing, so the health check must revert the machine to the baseline and
// leave it there.
func TestHealthRevertSwitchesBackToBaseline(t *testing.T) {
	f := &fakeSystem{degradeAfter: 200_000}
	rt := newFakeRuntime(t, f, fakeRuntimeOptions())

	res, err := rt.Run(600_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.HealthReverts == 0 {
		t.Fatal("degraded testing IPC must trigger a health revert")
	}
	if !res.Phases[0].Reverted {
		t.Error("phase record must mark the revert")
	}
	if res.Phases[0].Decision.Chosen == f.baseline {
		t.Fatal("test is vacuous: the learner chose the baseline itself")
	}
	if f.active != f.baseline {
		t.Errorf("after a revert the machine must run the baseline, got %+v", f.active)
	}
}

// TestNoHealthRevertWhenChosenHolds is the control: a chosen configuration
// that keeps outperforming the baseline must never be reverted.
func TestNoHealthRevertWhenChosenHolds(t *testing.T) {
	f := &fakeSystem{} // non-baseline stays at IPC 2.2 forever
	rt := newFakeRuntime(t, f, fakeRuntimeOptions())

	res, err := rt.Run(600_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.HealthReverts != 0 {
		t.Errorf("healthy chosen configuration reverted %d times", res.HealthReverts)
	}
	if f.active == f.baseline {
		t.Error("machine should still run the chosen configuration")
	}
}

// TestPhaseChangeStartsNewLearningCycle scripts a workload shift mid-testing
// (memory traffic jumps 10×) and checks the detector ends the phase and the
// runtime starts a fresh learning cycle.
func TestPhaseChangeStartsNewLearningCycle(t *testing.T) {
	o := fakeRuntimeOptions()
	o.HealthCheckEvery = 0 // isolate the detector path
	o.EnablePhaseDetection = true
	o.Phase.ShortWindows = 3
	o.Phase.LongWindows = 20
	// A 10× traffic jump inflates the long window's variance along with its
	// mean, capping the Welch score near 4–5; steady-state scores stay below
	// 1, so 3 separates them cleanly.
	o.Phase.Threshold = 3
	// Jump after the detector has a primed history: testing starts at 200k,
	// 8 chunks of 50k pass before the shift.
	f := &fakeSystem{trafficJumpAfter: 600_000}
	rt := newFakeRuntime(t, f, o)

	res, err := rt.Run(2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.PhaseChanges == 0 {
		t.Fatal("traffic jump must trigger a phase change")
	}
	if len(res.Phases) < 2 {
		t.Fatalf("phase change must start a new learning cycle, got %d phase(s)", len(res.Phases))
	}
	if !res.Phases[0].PhaseChange {
		t.Error("first phase record must mark the early end")
	}
}

// TestRunBoundedUnderOvershoot: windows that overshoot their requested
// length (as real machines do by completing whole memory accesses) must not
// blow past the budget — the regression guarded by clampBudget.
func TestRunBoundedUnderOvershoot(t *testing.T) {
	f := &fakeSystem{instScale: 3}
	rt := newFakeRuntime(t, f, fakeRuntimeOptions())

	const budget = 150_000
	res, err := rt.Run(budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 1 {
		t.Fatalf("overshot budget must still terminate after one phase, got %d", len(res.Phases))
	}
	// The single baseline window overshoots to 300k and exhausts the budget:
	// nothing else may run.
	if f.calls != 1 {
		t.Errorf("budget exhausted after the first window, yet %d windows ran", f.calls)
	}
	if got := res.Overall.Instructions; got != 300_000 {
		t.Errorf("overall instructions %d, want exactly the one overshot window (300000)", got)
	}
}
