package core

import (
	"fmt"
	"testing"

	"mct/internal/config"
	"mct/internal/ml"
	"mct/internal/sim"
	"mct/internal/trace"
)

// quickRuntimeOptions shrinks budgets so tests run in milliseconds.
func quickRuntimeOptions() Options {
	o := DefaultOptions()
	o.BaselineInsts = 100_000
	o.SampleUnitInsts = 10_000
	o.SamplingTotalInsts = 900_000
	o.TestChunkInsts = 50_000
	o.WarmupAccesses = 60_000
	return o
}

func newRuntime(t *testing.T, bench string, obj Objective, opt Options) (*Runtime, *sim.Machine) {
	t.Helper()
	spec, err := trace.ByName(bench)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sim.NewMachine(spec, config.StaticBaseline(), sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := New(m, obj, opt)
	if err != nil {
		t.Fatal(err)
	}
	return rt, m
}

func TestOptionsValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Options){
		func(o *Options) { o.BaselineInsts = 0 },
		func(o *Options) { o.SampleUnitInsts = 0 },
		func(o *Options) { o.SamplingTotalInsts = 0 },
		func(o *Options) { o.TestChunkInsts = 0 },
		func(o *Options) { o.Sampler = SamplerRandom; o.RandomSamples = 0 },
		func(o *Options) { o.HealthMargin = 2 },
		func(o *Options) { o.EnablePhaseDetection = true; o.Phase.Threshold = 0 },
	}
	for i, mut := range bad {
		o := DefaultOptions()
		mut(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate options", i)
		}
	}
}

func TestNewRejectsBadInputs(t *testing.T) {
	spec, _ := trace.ByName("lbm")
	m, _ := sim.NewMachine(spec, config.StaticBaseline(), sim.DefaultOptions())
	if _, err := New(m, Objective{RelativeIPCFloor: 5}, DefaultOptions()); err == nil {
		t.Fatal("invalid objective must fail")
	}
	o := DefaultOptions()
	o.Model = "nope"
	if _, err := New(m, Default(8), o); err == nil {
		t.Fatal("unknown model must fail")
	}
}

func TestRunProducesDecisionAndBudget(t *testing.T) {
	rt, _ := newRuntime(t, "lbm", Default(8), quickRuntimeOptions())
	const budget = 3_000_000
	res, err := rt.Run(budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) == 0 {
		t.Fatal("no phases executed")
	}
	total := res.Overall.Instructions
	// The budget bounds execution; windows may overrun one chunk.
	if total < budget*95/100 || total > budget+500_000 {
		t.Fatalf("executed %d instructions for a %d budget", total, budget)
	}
	d := res.Phases[0].Decision
	if len(d.SampleIndices) == 0 || len(d.SampleMetrics) == 0 {
		t.Fatal("no samples recorded")
	}
	if d.ChosenIndex < 0 {
		t.Fatal("no configuration chosen")
	}
	// Wear-quota fixup must be applied to the deployed configuration.
	if !d.Chosen.WearQuota || d.Chosen.WearQuotaTarget != 8 {
		t.Fatalf("wear-quota fixup missing: %+v", d.Chosen)
	}
	if res.Testing.Instructions == 0 || res.Sampling.Instructions == 0 {
		t.Fatal("period aggregates empty")
	}
}

func TestRunKeepPredictions(t *testing.T) {
	o := quickRuntimeOptions()
	o.KeepPredictions = true
	rt, _ := newRuntime(t, "milc", Default(8), o)
	res, err := rt.Run(2_500_000)
	if err != nil {
		t.Fatal(err)
	}
	d := res.Phases[0].Decision
	if len(d.Predictions) != rt.Space().Len() {
		t.Fatalf("predictions %d, want %d", len(d.Predictions), rt.Space().Len())
	}
}

func TestRunRandomSampler(t *testing.T) {
	o := quickRuntimeOptions()
	o.Sampler = SamplerRandom
	o.RandomSamples = 30
	rt, _ := newRuntime(t, "stream", Default(8), o)
	res, err := rt.Run(2_500_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Phases[0].Decision.SampleIndices); got != 30 {
		t.Fatalf("random plan size %d, want 30", got)
	}
}

func TestRunQuadraticLassoModel(t *testing.T) {
	o := quickRuntimeOptions()
	o.Model = "quadratic-lasso"
	rt, _ := newRuntime(t, "leslie3d", Default(8), o)
	if _, err := rt.Run(2_500_000); err != nil {
		t.Fatal(err)
	}
}

func TestBaselineCarriesObjectiveTarget(t *testing.T) {
	rt, _ := newRuntime(t, "lbm", Default(6), quickRuntimeOptions())
	if got := rt.Baseline().WearQuotaTarget; got != 6 {
		t.Fatalf("baseline wear-quota target %v, want 6", got)
	}
}

func TestLearningSpaceExcludesWearQuota(t *testing.T) {
	rt, _ := newRuntime(t, "lbm", Default(8), quickRuntimeOptions())
	space := rt.Space()
	for i := 0; i < space.Len(); i++ {
		if space.At(i).WearQuota {
			t.Fatal("learning space must exclude wear quota (§4.4)")
		}
	}
}

func TestTinyBudgetDegradesGracefully(t *testing.T) {
	rt, _ := newRuntime(t, "gups", Default(8), quickRuntimeOptions())
	res, err := rt.Run(150_000) // smaller than baseline window + sampling
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) == 0 {
		t.Fatal("tiny budget must still produce a phase record")
	}
}

func TestPhaseDetectionTriggersRelearning(t *testing.T) {
	o := quickRuntimeOptions()
	o.EnablePhaseDetection = true
	o.Phase.ShortWindows = 4
	o.Phase.LongWindows = 30
	o.Phase.Threshold = 10
	rt, _ := newRuntime(t, "ocean", Default(8), o)
	res, err := rt.Run(20_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.PhaseChanges == 0 {
		t.Fatal("ocean must trigger phase changes")
	}
	if len(res.Phases) < 2 {
		t.Fatal("phase change must start a new learning cycle")
	}
}

func TestMultiSystemAdapter(t *testing.T) {
	specs, err := trace.MixByName("mix1")
	if err != nil {
		t.Fatal(err)
	}
	mm, err := sim.NewMultiMachine(specs, config.StaticBaseline(), sim.DefaultMultiOptions())
	if err != nil {
		t.Fatal(err)
	}
	sys := MultiSystem{MM: mm}
	if sys.Options().CacheBytes != 8<<20 {
		t.Fatal("adapter options wrong")
	}
	sys.Warmup(50_000)
	w := sys.RunInstructions(100_000)
	if w.Instructions == 0 || w.IPC <= 0 {
		t.Fatalf("adapter run produced %+v", w)
	}
	if err := sys.SetConfig(config.Default()); err != nil {
		t.Fatal(err)
	}
}

func TestCustomPredictorFactory(t *testing.T) {
	o := quickRuntimeOptions()
	o.NewPredictor = func() (ml.Predictor, error) { return ml.NewLinear(0), nil }
	rt, _ := newRuntime(t, "milc", Default(8), o)
	res, err := rt.Run(2_500_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases[0].Decision.ChosenIndex < 0 {
		t.Fatal("custom predictor made no decision")
	}
	// A failing factory must surface at construction.
	bad := quickRuntimeOptions()
	bad.NewPredictor = func() (ml.Predictor, error) { return nil, fmt.Errorf("boom") }
	spec, _ := trace.ByName("milc")
	m, _ := sim.NewMachine(spec, config.StaticBaseline(), sim.DefaultOptions())
	if _, err := New(m, Default(8), bad); err == nil {
		t.Fatal("factory error must propagate")
	}
}
