// Package dram implements the DRAM cache tier of the hybrid DRAM–NVM
// hierarchy (ROADMAP item 5; after the analytical hybrid model of
// Salkhordeh et al.): a set-associative write-back cache of NVM lines
// interposed between the LLC and the NVM controller on the hierarchy.Mem
// seam. The tier absorbs the traffic of hot pages — cutting both NVM
// latency and, more importantly, NVM write wear — at the cost of DRAM
// access/refresh energy, which is exactly the tradeoff dimension the
// learning stack optimizes over.
//
// Migration policy (write-back, hot-page promotion):
//
//   - A direct-mapped page-touch table counts LLC misses per
//     PageBytes-sized page. A page whose counter reaches the promotion
//     threshold is hot: its lines are installed in the DRAM cache as they
//     are touched (demand fills write-allocate on hot pages too).
//   - Read hits are serviced in HitLatency memory cycles; misses (and
//     cold-page traffic) forward to the NVM controller unchanged.
//   - LLC dirty writebacks that hit are absorbed — the NVM write is
//     elided entirely until the line is evicted (dirty eviction to NVM) —
//     the main wear win of the hybrid organization.
//   - Evictions of dirty victims and the end-of-run Drain write back
//     through the tier below, inheriting its backpressure semantics.
//
// A smaller promotion threshold is more aggressive: more of the working
// set migrates to DRAM (higher hit ratio, more DRAM energy, fewer NVM
// writes). The threshold is an online-settable knob (SetPromoteThreshold)
// so it can be swept and learned like the mellow-writes parameters.
//
// The tier obeys the package-wide hot-path discipline: the line and
// page-table arrays are flat SoA lanes allocated at construction, and no
// method allocates — the streaming 0-allocs/op gate covers the hybrid
// pipeline too.
package dram

import (
	"fmt"

	"mct/internal/hierarchy"
)

// LineBytes is the cached line size in bytes (matches the LLC line size:
// the tier caches exactly the lines the LLC misses on).
const LineBytes = 64

// MaxPromoteThreshold bounds the promotion knob's legal range.
const MaxPromoteThreshold = 64

// Metadata lane bits (one byte per line).
const (
	metaValid uint8 = 1 << 0
	metaDirty uint8 = 1 << 1
)

// hotCountCap stops the page-touch counters short of wrapping.
const hotCountCap = 1 << 30

// Params holds the DRAM tier geometry and policy defaults.
type Params struct {
	// CacheBytes is the tier capacity; must divide into power-of-two
	// sets of Ways lines.
	CacheBytes int
	Ways       int

	// HitLatency is the service time of a tier hit in memory-controller
	// cycles (DRAM row access + transfer; far below the NVM read path).
	HitLatency uint64

	// PageBytes is the hot-page tracking granularity (a power of two).
	PageBytes int
	// HotTableSize is the number of direct-mapped page-touch counters (a
	// power of two). Colliding pages steal each other's slot — a bounded,
	// deterministic approximation of per-page counting.
	HotTableSize int

	// PromoteThreshold is how many tracked touches make a page hot
	// (1 = promote on first touch). Online-settable on a live tier.
	PromoteThreshold int

	// DecayEpochMisses bounds counter history: every DecayEpochMisses
	// tier misses the touch table enters a new epoch and a slot's count
	// decays (halves) on its first touch of the epoch. Without decay every
	// page eventually exceeds any threshold and the knob degenerates; with
	// it the threshold separates touch *rates*, so streaming pages (many
	// line touches in a burst) promote while cold random traffic does not.
	DecayEpochMisses int
}

// DefaultParams returns the stock hybrid-tier geometry: a 16 MB, 8-way
// DRAM cache with 4 KB page tracking and a 4096-entry touch table.
func DefaultParams() Params {
	return Params{
		CacheBytes:       16 << 20,
		Ways:             8,
		HitLatency:       20, // 50 ns at the 400 MHz controller clock
		PageBytes:        4096,
		HotTableSize:     1 << 12,
		PromoteThreshold: 2,
		DecayEpochMisses: 4096,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.CacheBytes <= 0 || p.Ways <= 0 {
		return fmt.Errorf("dram: invalid geometry %d/%d", p.CacheBytes, p.Ways)
	}
	lines := p.CacheBytes / LineBytes
	if lines*LineBytes != p.CacheBytes || lines%p.Ways != 0 {
		return fmt.Errorf("dram: size %d not divisible into %d-way sets of %d-byte lines", p.CacheBytes, p.Ways, LineBytes)
	}
	if sets := lines / p.Ways; sets&(sets-1) != 0 {
		return fmt.Errorf("dram: set count %d is not a power of two", sets)
	}
	if p.HitLatency == 0 {
		return fmt.Errorf("dram: zero hit latency")
	}
	if p.PageBytes < LineBytes || p.PageBytes&(p.PageBytes-1) != 0 {
		return fmt.Errorf("dram: page size %d not a power of two ≥ %d", p.PageBytes, LineBytes)
	}
	if p.HotTableSize <= 0 || p.HotTableSize&(p.HotTableSize-1) != 0 {
		return fmt.Errorf("dram: hot-table size %d not a power of two", p.HotTableSize)
	}
	if p.PromoteThreshold < 1 || p.PromoteThreshold > MaxPromoteThreshold {
		return fmt.Errorf("dram: promote threshold %d outside [1,%d]", p.PromoteThreshold, MaxPromoteThreshold)
	}
	if p.DecayEpochMisses <= 0 {
		return fmt.Errorf("dram: non-positive decay epoch %d", p.DecayEpochMisses)
	}
	return nil
}

// Stats aggregates tier event counters. All fields are plain integers, so
// a Stats value copies by assignment.
type Stats struct {
	Hits   uint64 // demand fills serviced from the tier
	Misses uint64 // demand fills forwarded to the tier below

	WriteHits   uint64 // LLC writebacks absorbed (NVM write elided)
	WriteMisses uint64 // LLC writebacks forwarded or write-allocated

	EagerAbsorbed uint64 // eager writebacks absorbed by a resident line

	Promotions   uint64 // lines installed for hot pages
	Writebacks   uint64 // dirty evictions written to the tier below
	DrainFlushes uint64 // dirty lines flushed by Drain
}

// Clone returns a copy of s (value semantics; kept for contract symmetry
// with the other layers' Stats types).
func (s Stats) Clone() Stats { return s }

// HitRate returns the demand-fill hit ratio of the counted interval.
func (s Stats) HitRate() float64 {
	if tot := s.Hits + s.Misses; tot > 0 {
		return float64(s.Hits) / float64(tot)
	}
	return 0
}

// Cache is the DRAM cache tier. It is not safe for concurrent use.
type Cache struct {
	p    Params
	next hierarchy.Mem

	// tags and meta are the SoA line array (see internal/cache): entry
	// set*ways+pos holds the line at LRU stack position pos (0 = MRU).
	tags     []uint64
	meta     []uint8
	setCount int
	ways     int
	setMask  uint64
	setShift uint

	// hotTags/hotCnt/hotEpoch are the direct-mapped page-touch table;
	// hotEpoch tags the epoch a slot's count was last touched in, so
	// stale counts decay lazily (no sweep on the hot path).
	hotTags  []uint64
	hotCnt   []uint32
	hotEpoch []uint32
	hotMask  uint64

	// epoch/missCount drive the lazy counter decay: every
	// p.DecayEpochMisses tier misses open a new epoch.
	epoch     uint32
	missCount uint64

	// promote is the live promotion threshold (online knob).
	promote int

	st Stats
}

// New builds a DRAM cache tier over next (the tier its misses, evictions
// and drain flushes forward to).
func New(p Params, next hierarchy.Mem) (*Cache, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if next == nil {
		return nil, fmt.Errorf("dram: nil next tier")
	}
	lines := p.CacheBytes / LineBytes
	setCount := lines / p.Ways
	d := &Cache{
		p:        p,
		next:     next,
		tags:     make([]uint64, lines),
		meta:     make([]uint8, lines),
		setCount: setCount,
		ways:     p.Ways,
		setMask:  uint64(setCount - 1),
		setShift: uint(log2(setCount)),
		hotTags:  make([]uint64, p.HotTableSize),
		hotCnt:   make([]uint32, p.HotTableSize),
		hotEpoch: make([]uint32, p.HotTableSize),
		hotMask:  uint64(p.HotTableSize - 1),
		promote:  p.PromoteThreshold,
	}
	return d, nil
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// Name identifies the tier (hierarchy.Tier).
func (d *Cache) Name() string { return "dram" }

// Params returns the construction parameters.
func (d *Cache) Params() Params { return d.p }

// Next returns the tier below.
func (d *Cache) Next() hierarchy.Mem { return d.next }

// Stats returns a snapshot of the counters.
func (d *Cache) Stats() Stats { return d.st }

// PromoteThreshold returns the live promotion threshold.
func (d *Cache) PromoteThreshold() int { return d.promote }

// SetPromoteThreshold adjusts the promotion knob on a live tier; cached
// lines and page counters are preserved (online reconfiguration, like
// nvm.Controller.SetConfig).
func (d *Cache) SetPromoteThreshold(n int) error {
	if n < 1 || n > MaxPromoteThreshold {
		return fmt.Errorf("dram: promote threshold %d outside [1,%d]", n, MaxPromoteThreshold)
	}
	d.promote = n
	return nil
}

func (d *Cache) locate(addr uint64) (setIdx int, tag uint64) {
	lineAddr := addr / LineBytes
	return int(lineAddr & d.setMask), lineAddr >> d.setShift //mctlint:ignore cyclecast masked value is bounded by the set count
}

func (d *Cache) reconstruct(setIdx int, tag uint64) uint64 {
	return (tag<<d.setShift | uint64(setIdx)) * LineBytes
}

// touchPage counts a miss against addr's page and reports whether the
// page is (now) hot. Colliding pages evict each other's counter, so cold
// conflict traffic cannot pin a slot forever; counts from past epochs
// halve before the touch is added, so hotness means a sustained touch
// rate, not accumulated age.
func (d *Cache) touchPage(addr uint64) bool {
	d.missCount++
	if d.missCount%uint64(d.p.DecayEpochMisses) == 0 {
		d.epoch++
	}
	page := addr / uint64(d.p.PageBytes)
	// Fold high bits in so strided access patterns spread over the table.
	h := page ^ (page >> 7) ^ (page >> 14)
	slot := h & d.hotMask
	if d.hotTags[slot] == page && d.hotCnt[slot] > 0 {
		for d.hotEpoch[slot] != d.epoch {
			d.hotCnt[slot] /= 2
			d.hotEpoch[slot]++
			if d.hotCnt[slot] == 0 {
				d.hotEpoch[slot] = d.epoch
				break
			}
		}
		if d.hotCnt[slot] < hotCountCap {
			d.hotCnt[slot]++
		}
	} else {
		d.hotTags[slot] = page
		d.hotCnt[slot] = 1
		d.hotEpoch[slot] = d.epoch
	}
	return int(d.hotCnt[slot]) >= d.promote
}

// probe looks addr up and, on a hit, moves the line to MRU with dirty
// OR-ed in, returning true. One branchy pass over the set's tag lane —
// the tier's per-miss cost on the simulator hot path.
func (d *Cache) probe(addr uint64, markDirty bool) bool {
	setIdx, tag := d.locate(addr)
	base := setIdx * d.ways
	tags := d.tags[base : base+d.ways]
	meta := d.meta[base : base+d.ways]
	for pos := range tags {
		if meta[pos]&metaValid != 0 && tags[pos] == tag {
			m := meta[pos]
			if markDirty {
				m |= metaDirty
			}
			copy(tags[1:pos+1], tags[:pos])
			copy(meta[1:pos+1], meta[:pos])
			tags[0] = tag
			meta[0] = m
			return true
		}
	}
	return false
}

// fill installs addr's line at MRU, evicting the LRU victim (dirty
// victims write back to the tier below, whose backpressure advances now).
// The returned time carries any eviction backpressure.
func (d *Cache) fill(addr, now uint64, dirty bool) uint64 {
	setIdx, tag := d.locate(addr)
	base := setIdx * d.ways
	tags := d.tags[base : base+d.ways]
	meta := d.meta[base : base+d.ways]
	last := d.ways - 1
	if meta[last]&(metaValid|metaDirty) == metaValid|metaDirty {
		d.st.Writebacks++
		if acc := d.next.Write(d.reconstruct(setIdx, tags[last]), now); acc > now {
			now = acc
		}
	}
	copy(tags[1:], tags[:last])
	copy(meta[1:], meta[:last])
	tags[0] = tag
	meta[0] = metaValid
	if dirty {
		meta[0] |= metaDirty
	}
	d.st.Promotions++
	return now
}

// Read services a demand fill (hierarchy.Mem). Hits cost HitLatency;
// misses touch the page counter, promote on hot pages, and forward to
// the tier below for the data either way.
//
//mctlint:hotpath
func (d *Cache) Read(addr, now uint64) uint64 {
	if d.probe(addr, false) {
		d.st.Hits++
		return now + d.p.HitLatency
	}
	d.st.Misses++
	if d.touchPage(addr) {
		now = d.fill(addr, now, false)
	}
	return d.next.Read(addr, now)
}

// Write accepts an LLC dirty writeback (hierarchy.Mem). Resident lines
// absorb it (the NVM write is elided until eviction); hot-page misses
// write-allocate; cold misses forward to the tier below.
//
//mctlint:hotpath
func (d *Cache) Write(addr, now uint64) uint64 {
	if d.probe(addr, true) {
		d.st.WriteHits++
		return now
	}
	d.st.WriteMisses++
	if d.touchPage(addr) {
		return d.fill(addr, now, true)
	}
	return d.next.Write(addr, now)
}

// EagerWrite offers an eager writeback (hierarchy.Mem). A resident line
// absorbs it outright (marked dirty — its eventual eviction carries the
// data down); otherwise the offer forwards to the tier below. Eager
// offers do not heat pages: harvested victims are by definition lines the
// LLC considers useless.
//
//mctlint:hotpath
func (d *Cache) EagerWrite(addr, now uint64) bool {
	if d.probe(addr, true) {
		d.st.EagerAbsorbed++
		return true
	}
	return d.next.EagerWrite(addr, now)
}

// EagerSpace reports whether an eager offer could be accepted: a resident
// hit always can, so this delegates to the tier below (the conservative
// gate for the forwarding case).
func (d *Cache) EagerSpace() bool { return d.next.EagerSpace() }

// Drain flushes every dirty line to the tier below in deterministic
// set-major, MRU-to-LRU order — the writeback storm of a full dirty set —
// then drains the tier below so the flushed writes retire too.
func (d *Cache) Drain(now uint64) uint64 {
	const valadirty = metaValid | metaDirty
	for i, m := range d.meta {
		if m&valadirty != valadirty {
			continue
		}
		d.meta[i] &^= metaDirty
		d.st.Writebacks++
		d.st.DrainFlushes++
		setIdx := i / d.ways
		if acc := d.next.Write(d.reconstruct(setIdx, d.tags[i]), now); acc > now {
			now = acc
		}
	}
	return d.next.Drain(now)
}

// DirtyLines counts resident dirty lines (test/diagnostic helper).
func (d *Cache) DirtyLines() int {
	n := 0
	const valadirty = metaValid | metaDirty
	for _, m := range d.meta {
		if m&valadirty == valadirty {
			n++
		}
	}
	return n
}

// Contains reports whether addr's line is resident (test helper; does not
// touch LRU order or stats).
func (d *Cache) Contains(addr uint64) bool {
	setIdx, tag := d.locate(addr)
	base := setIdx * d.ways
	for pos := 0; pos < d.ways; pos++ {
		if d.meta[base+pos]&metaValid != 0 && d.tags[base+pos] == tag {
			return true
		}
	}
	return false
}
