package dram

import (
	"reflect"
	"testing"
)

// stubMem is a scripted tier-below: it records the traffic it receives and
// models a fixed per-write acceptance delay so backpressure propagation is
// observable.
type stubMem struct {
	reads      []uint64
	writes     []uint64
	eagers     []uint64
	eagerOK    bool
	writeDelay uint64
	drains     int
}

func (s *stubMem) Name() string                 { return "stub" }
func (s *stubMem) Read(addr, now uint64) uint64 { s.reads = append(s.reads, addr); return now + 100 }
func (s *stubMem) Write(addr, now uint64) uint64 {
	s.writes = append(s.writes, addr)
	return now + s.writeDelay
}
func (s *stubMem) EagerWrite(addr, now uint64) bool {
	if !s.eagerOK {
		return false
	}
	s.eagers = append(s.eagers, addr)
	return true
}
func (s *stubMem) EagerSpace() bool        { return s.eagerOK }
func (s *stubMem) Drain(now uint64) uint64 { s.drains++; return now }

// tinyParams is a 64-line, 4-way geometry with promote-on-first-touch, so
// tests control residency exactly.
func tinyParams() Params {
	return Params{
		CacheBytes:       64 * LineBytes, // 16 sets x 4 ways
		Ways:             4,
		HitLatency:       20,
		PageBytes:        4096,
		HotTableSize:     1 << 10,
		PromoteThreshold: 1,
		DecayEpochMisses: 1 << 20, // effectively no decay unless a test opts in
	}
}

func mustNew(t *testing.T, p Params, next *stubMem) *Cache {
	t.Helper()
	d, err := New(p, next)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// lineAddr builds the address of the line with the given set and tag.
func lineAddr(d *Cache, set, tag int) uint64 {
	return d.reconstruct(set, uint64(tag)) //mctlint:ignore cyclecast test values are small non-negative constants
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.CacheBytes = 0 },
		func(p *Params) { p.CacheBytes = 3 * LineBytes; p.Ways = 2 },  // odd set division
		func(p *Params) { p.CacheBytes = 96 * LineBytes; p.Ways = 8 }, // 12 sets, not a power of two
		func(p *Params) { p.HitLatency = 0 },
		func(p *Params) { p.PageBytes = 100 },
		func(p *Params) { p.PageBytes = LineBytes / 2 },
		func(p *Params) { p.HotTableSize = 100 },
		func(p *Params) { p.PromoteThreshold = 0 },
		func(p *Params) { p.PromoteThreshold = MaxPromoteThreshold + 1 },
		func(p *Params) { p.DecayEpochMisses = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params %+v passed validation", i, p)
		}
	}
}

// TestWritebackStormFullDirtySet: Drain on a completely dirty cache must
// flush every line to the tier below, propagating per-write backpressure,
// and leave the cache clean (but still resident).
func TestWritebackStormFullDirtySet(t *testing.T) {
	next := &stubMem{writeDelay: 5}
	d := mustNew(t, tinyParams(), next)

	lines := tinyParams().CacheBytes / LineBytes
	want := map[uint64]bool{}
	for set := 0; set < 16; set++ {
		for tag := 0; tag < 4; tag++ {
			addr := lineAddr(d, set, tag)
			d.Write(addr, 0) // miss -> hot (threshold 1) -> write-allocate dirty
			want[addr] = true
		}
	}
	if got := d.DirtyLines(); got != lines {
		t.Fatalf("dirty lines after fill = %d, want %d", got, lines)
	}
	if len(next.writes) != 0 {
		t.Fatalf("fill phase leaked %d writes below before any eviction", len(next.writes))
	}

	const start = 1000
	end := d.Drain(start)
	if wantEnd := uint64(start + uint64(lines)*next.writeDelay); end != wantEnd {
		t.Errorf("drain backpressure: end=%d, want %d (each of %d flushes stalls %d)", end, wantEnd, lines, next.writeDelay)
	}
	st := d.Stats()
	if st.Writebacks != uint64(lines) || st.DrainFlushes != uint64(lines) {
		t.Errorf("storm flushed %d writebacks / %d drain flushes, want %d each", st.Writebacks, st.DrainFlushes, lines)
	}
	if d.DirtyLines() != 0 {
		t.Errorf("drain left %d dirty lines", d.DirtyLines())
	}
	got := map[uint64]bool{}
	for _, a := range next.writes {
		got[a] = true
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("drained address set differs: got %d unique, want %d", len(got), len(want))
	}
	if next.drains != 1 {
		t.Errorf("tier below drained %d times, want 1", next.drains)
	}

	// A second drain is a no-op: nothing dirty remains.
	d.Drain(end)
	if st2 := d.Stats(); st2.DrainFlushes != uint64(lines) {
		t.Errorf("second drain flushed %d more lines", st2.DrainFlushes-uint64(lines))
	}
}

// TestPromotionEvictionConflict: a line promoted into a full set evicts the
// dirty LRU victim (writeback below), and the evicted line can itself be
// promoted again — residency and stats stay consistent through the churn.
func TestPromotionEvictionConflict(t *testing.T) {
	p := tinyParams()
	p.Ways = 2
	p.CacheBytes = 32 * LineBytes // 16 sets x 2 ways
	next := &stubMem{}
	d := mustNew(t, p, next)

	a := lineAddr(d, 3, 1)
	b := lineAddr(d, 3, 2)
	c := lineAddr(d, 3, 3)

	d.Write(a, 0)
	d.Write(b, 0)
	if !d.Contains(a) || !d.Contains(b) {
		t.Fatal("write-allocated lines not resident")
	}
	d.Write(c, 0) // set full: evicts a (LRU, dirty)
	if d.Contains(a) {
		t.Error("evicted line still resident")
	}
	if !d.Contains(b) || !d.Contains(c) {
		t.Error("surviving lines lost in eviction")
	}
	if len(next.writes) != 1 || next.writes[0] != a {
		t.Fatalf("eviction wrote back %v, want exactly [%d]", next.writes, a)
	}

	// The evicted line promotes again on its next touch; the set rotates.
	d.Read(a, 0)
	if !d.Contains(a) {
		t.Error("re-promoted line not resident")
	}
	if d.Contains(b) {
		t.Error("LRU victim of the re-promotion still resident")
	}
	if len(next.writes) != 2 || next.writes[1] != b {
		t.Fatalf("re-promotion wrote back %v, want [.., %d]", next.writes, b)
	}
	// The re-promoted line was installed clean; the demand fill still
	// forwards below for the data.
	if len(next.reads) != 1 || next.reads[0] != a {
		t.Errorf("demand fill below = %v, want [%d]", next.reads, a)
	}

	st := d.Stats()
	if st.WriteMisses != 3 || st.Promotions != 4 || st.Writebacks != 2 {
		t.Errorf("stats = %+v, want WriteMisses=3 Promotions=4 Writebacks=2", st)
	}
}

// TestCounterDecayGatesPromotion: with epoch decay, sparse touches spread
// across epochs never reach the threshold, while the same number of
// touches within one epoch promote — the threshold separates touch rates.
func TestCounterDecayGatesPromotion(t *testing.T) {
	p := tinyParams()
	p.PromoteThreshold = 2
	p.DecayEpochMisses = 4
	next := &stubMem{}
	d := mustNew(t, p, next)

	cold := lineAddr(d, 0, 0) // page 0
	d.Read(cold, 0)           // touch 1: below threshold, forwarded
	// 8 misses on distinct far-away pages advance two epochs.
	for i := 0; i < 8; i++ {
		d.Read(uint64(100+i)*uint64(p.PageBytes), 0) //mctlint:ignore cyclecast small loop constant
	}
	d.Read(cold+LineBytes, 0) // same page, two epochs later: count decayed to 0 first
	if d.Contains(cold + LineBytes) {
		t.Error("cold page promoted despite decayed counter")
	}
	if st := d.Stats(); st.Promotions != 0 {
		t.Errorf("sparse touches promoted %d lines, want 0", st.Promotions)
	}

	// A burst of touches on one page promotes: three consecutive misses
	// cross at most one epoch boundary, so at least two land in the same
	// epoch and the counter reaches the threshold.
	hot := lineAddr(d, 8, 0x4000) // a fresh page far from the cold one
	d.Read(hot, 0)
	d.Read(hot+LineBytes, 0)
	d.Read(hot+2*LineBytes, 0)
	if !d.Contains(hot + 2*LineBytes) {
		t.Error("burst-touched page not promoted")
	}
	if st := d.Stats(); st.Promotions == 0 {
		t.Error("burst promoted no lines")
	}
}

// TestEagerWriteAbsorption: resident lines absorb eager offers (marked
// dirty, nothing forwarded); non-resident offers pass through, and eager
// offers never heat pages.
func TestEagerWriteAbsorption(t *testing.T) {
	p := tinyParams()
	p.PromoteThreshold = 2 // eager offers alone must never install lines
	next := &stubMem{eagerOK: true}
	d := mustNew(t, p, next)

	resident := lineAddr(d, 1, 1)
	d.Read(resident, 0) // touch 1
	d.Read(resident, 0) // touch 2? no: hit path after install...
	// Promote explicitly: two misses on the same page.
	d.Read(resident+LineBytes, 0)
	if !d.Contains(resident + LineBytes) {
		t.Fatal("setup: line not promoted")
	}

	if !d.EagerWrite(resident+LineBytes, 0) {
		t.Error("resident line rejected an eager offer")
	}
	if len(next.eagers) != 0 {
		t.Error("absorbed eager offer leaked below")
	}
	if d.DirtyLines() != 1 {
		t.Errorf("absorbed eager offer left %d dirty lines, want 1", d.DirtyLines())
	}

	miss := lineAddr(d, 2, 7)
	if !d.EagerWrite(miss, 0) {
		t.Error("forwarded eager offer rejected by accepting tier below")
	}
	if len(next.eagers) != 1 || next.eagers[0] != miss {
		t.Errorf("forwarded eager offers = %v, want [%d]", next.eagers, miss)
	}
	if d.Contains(miss) {
		t.Error("eager offer heated a page into promotion")
	}

	next.eagerOK = false
	if d.EagerWrite(lineAddr(d, 2, 9), 0) {
		t.Error("eager offer accepted with no space anywhere")
	}
	if d.EagerSpace() {
		t.Error("EagerSpace true while the tier below has none")
	}
}

// TestSnapshotRoundTrip: a restored tier continues the identical
// simulation — same stats, same traffic below, same final state.
func TestSnapshotRoundTrip(t *testing.T) {
	p := tinyParams()
	p.PromoteThreshold = 2
	p.DecayEpochMisses = 16
	drive := func(d *Cache, rounds int) {
		now := uint64(0)
		for i := 0; i < rounds; i++ {
			a := uint64(i*37%512) * LineBytes //mctlint:ignore cyclecast bounded loop arithmetic
			if i%3 == 0 {
				now = d.Write(a, now)
			} else {
				now = d.Read(a, now)
			}
			if i%7 == 0 {
				d.EagerWrite(a, now)
			}
		}
	}

	orig := mustNew(t, p, &stubMem{eagerOK: true})
	drive(orig, 200)

	restored, err := FromSnapshot(orig.Snapshot(), &stubMem{eagerOK: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig.Snapshot(), restored.Snapshot()) {
		t.Fatal("snapshot round trip changed state")
	}

	// Identical further traffic must produce identical state and stats.
	drive(orig, 150)
	drive(restored, 150)
	if !reflect.DeepEqual(orig.Snapshot(), restored.Snapshot()) {
		t.Error("restored tier diverged from original under identical traffic")
	}
	if orig.Stats() != restored.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", orig.Stats(), restored.Stats())
	}
}

// TestCloneIsolation: churning a clone never perturbs the original.
func TestCloneIsolation(t *testing.T) {
	next := &stubMem{}
	d := mustNew(t, tinyParams(), next)
	for i := 0; i < 100; i++ {
		d.Write(uint64(i)*LineBytes, 0) //mctlint:ignore cyclecast small loop constant
	}
	before := d.Snapshot()

	cl := d.Clone(&stubMem{})
	for i := 0; i < 300; i++ {
		cl.Write(uint64(1000+i)*LineBytes, 0) //mctlint:ignore cyclecast small loop constant
	}
	cl.Drain(0)
	if err := cl.SetPromoteThreshold(8); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(before, d.Snapshot()) {
		t.Error("clone activity perturbed the original tier")
	}
}

// TestFromSnapshotRejects: geometry or knob mismatches fail loudly instead
// of corrupting state.
func TestFromSnapshotRejects(t *testing.T) {
	d := mustNew(t, tinyParams(), &stubMem{})
	good := d.Snapshot()

	s := good
	s.Lines = s.Lines[:len(s.Lines)-1]
	if _, err := FromSnapshot(s, &stubMem{}); err == nil {
		t.Error("truncated line state accepted")
	}

	s = good
	s.Hot = s.Hot[:len(s.Hot)-1]
	if _, err := FromSnapshot(s, &stubMem{}); err == nil {
		t.Error("truncated hot table accepted")
	}

	s = good
	s.Promote = 0
	if _, err := FromSnapshot(s, &stubMem{}); err == nil {
		t.Error("out-of-range promote threshold accepted")
	}
}

func TestSetPromoteThresholdBounds(t *testing.T) {
	d := mustNew(t, tinyParams(), &stubMem{})
	if err := d.SetPromoteThreshold(0); err == nil {
		t.Error("threshold 0 accepted")
	}
	if err := d.SetPromoteThreshold(MaxPromoteThreshold + 1); err == nil {
		t.Error("oversized threshold accepted")
	}
	if err := d.SetPromoteThreshold(8); err != nil || d.PromoteThreshold() != 8 {
		t.Errorf("legal threshold rejected: %v (now %d)", err, d.PromoteThreshold())
	}
}

// TestHitRateWindows: Stats deltas between two points form a correct
// windowed hit rate (the machine layer computes window metrics this way).
func TestHitRateWindows(t *testing.T) {
	next := &stubMem{}
	d := mustNew(t, tinyParams(), next)

	a := lineAddr(d, 5, 1)
	d.Read(a, 0) // miss + promote
	d.Read(a, 0) // hit
	w0 := d.Stats()
	if got := w0.HitRate(); got != 0.5 {
		t.Errorf("window-0 hit rate = %v, want 0.5", got)
	}

	// Window 2: three hits, one miss; the windowed rate uses deltas, not
	// cumulative counts.
	d.Read(a, 0)
	d.Read(a, 0)
	d.Read(a, 0)
	d.Read(lineAddr(d, 6, 1), 0)
	w1 := d.Stats()
	delta := Stats{Hits: w1.Hits - w0.Hits, Misses: w1.Misses - w0.Misses}
	if got := delta.HitRate(); got != 0.75 {
		t.Errorf("window-1 hit rate = %v, want 0.75 (delta %+v)", got, delta)
	}
	if cum := w1.HitRate(); cum == delta.HitRate() {
		t.Errorf("cumulative rate %v accidentally equals windowed rate; test lost its power", cum)
	}
}
