package dram

import "mct/internal/obs"

// Obs publishes DRAM-tier telemetry into an obs.Registry. Like the cache
// and nvm publishers, the tier keeps cheap native counters on the hot
// path and a publisher translates cumulative-stats deltas into registry
// updates at window boundaries, so instrumentation adds zero per-access
// cost. The family is only registered on hybrid machines: NVM-only runs
// carry no dram.* instruments and their metric dumps are unchanged.
type Obs struct {
	reg *obs.Registry

	hits          *obs.Counter
	misses        *obs.Counter
	writeHits     *obs.Counter
	writeMisses   *obs.Counter
	eagerAbsorbed *obs.Counter
	promotions    *obs.Counter
	writebacks    *obs.Counter
	drainFlushes  *obs.Counter
	// hitRate is the demand-fill hit ratio over the last published window.
	hitRate *obs.Gauge

	last Stats
}

// NewObs registers the dram metric family on r. The returned publisher
// starts with a zero baseline; call Rebase with the tier's current stats
// when attaching to a warm tier.
func NewObs(r *obs.Registry) *Obs {
	return &Obs{
		reg:           r,
		hits:          r.Counter("dram.hits"),
		misses:        r.Counter("dram.misses"),
		writeHits:     r.Counter("dram.write_hits"),
		writeMisses:   r.Counter("dram.write_misses"),
		eagerAbsorbed: r.Counter("dram.eager_absorbed"),
		promotions:    r.Counter("dram.promotions"),
		writebacks:    r.Counter("dram.writebacks"),
		drainFlushes:  r.Counter("dram.drain_flushes"),
		hitRate:       r.Gauge("dram.hit_rate"),
	}
}

// Registry returns the registry this publisher feeds.
func (o *Obs) Registry() *obs.Registry { return o.reg }

// Rebase sets the delta baseline to s without publishing, so activity
// before s is never accounted.
func (o *Obs) Rebase(s Stats) { o.last = s }

// Publish accounts the delta between s (a Stats snapshot from
// Cache.Stats) and the previous baseline, then advances the baseline.
func (o *Obs) Publish(s Stats) {
	o.hits.Add(s.Hits - o.last.Hits)
	o.misses.Add(s.Misses - o.last.Misses)
	o.writeHits.Add(s.WriteHits - o.last.WriteHits)
	o.writeMisses.Add(s.WriteMisses - o.last.WriteMisses)
	o.eagerAbsorbed.Add(s.EagerAbsorbed - o.last.EagerAbsorbed)
	o.promotions.Add(s.Promotions - o.last.Promotions)
	o.writebacks.Add(s.Writebacks - o.last.Writebacks)
	o.drainFlushes.Add(s.DrainFlushes - o.last.DrainFlushes)
	dFill := (s.Hits + s.Misses) - (o.last.Hits + o.last.Misses)
	if dFill > 0 {
		dHit := s.Hits - o.last.Hits
		o.hitRate.Set(float64(dHit) / float64(dFill))
	}
	o.last = s
}

// CloneInto rebinds a copy of this publisher to r (a clone of the
// original registry), preserving the delta baseline so the cloned machine
// continues accounting exactly where the parent left off.
func (o *Obs) CloneInto(r *obs.Registry) *Obs {
	n := NewObs(r)
	n.last = o.last.Clone()
	return n
}
