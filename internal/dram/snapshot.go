// Snapshot support for the DRAM cache tier: an exported, serializable
// state for machine checkpoints (in-memory deep copies use Clone).
package dram

import (
	"fmt"

	"mct/internal/hierarchy"
)

// LineState is the serializable state of one cached line.
type LineState struct {
	Tag   uint64
	Valid bool
	Dirty bool
}

// HotEntry is one serialized page-touch counter slot.
type HotEntry struct {
	Page  uint64
	Count uint32
	Epoch uint32
}

// Snapshot is the complete serializable state of a DRAM cache tier. Lines
// are stored set-major in MRU..LRU order, so recency survives the round
// trip; the tier below is not part of the snapshot — the caller restores
// the chain bottom-up and rewires it.
type Snapshot struct {
	Params    Params
	Promote   int
	Lines     []LineState
	Hot       []HotEntry
	Epoch     uint32
	MissCount uint64
	Stats     Stats
}

// Snapshot captures the tier's complete state for checkpointing. The
// in-memory SoA lanes are re-interleaved into LineState records, so the
// serialized format is layout-independent.
//
//mctlint:ignore clonefields setCount, ways, setMask, setShift and hotMask are derived from Params and recomputed by New on restore; next is external wiring supplied by the caller of FromSnapshot
func (d *Cache) Snapshot() Snapshot {
	lines := make([]LineState, len(d.tags))
	for i, tag := range d.tags {
		lines[i] = LineState{Tag: tag, Valid: d.meta[i]&metaValid != 0, Dirty: d.meta[i]&metaDirty != 0}
	}
	hot := make([]HotEntry, len(d.hotTags))
	for i, page := range d.hotTags {
		hot[i] = HotEntry{Page: page, Count: d.hotCnt[i], Epoch: d.hotEpoch[i]}
	}
	return Snapshot{
		Params:    d.p,
		Promote:   d.promote,
		Lines:     lines,
		Hot:       hot,
		Epoch:     d.epoch,
		MissCount: d.missCount,
		Stats:     d.st,
	}
}

// FromSnapshot rebuilds a DRAM cache tier from a state captured with
// Snapshot, forwarding to next. The rebuilt tier continues the identical
// simulation.
func FromSnapshot(s Snapshot, next hierarchy.Mem) (*Cache, error) {
	d, err := New(s.Params, next)
	if err != nil {
		return nil, err
	}
	if len(s.Lines) != len(d.tags) {
		return nil, fmt.Errorf("dram: snapshot has %d lines, geometry says %d", len(s.Lines), len(d.tags))
	}
	if len(s.Hot) != len(d.hotTags) {
		return nil, fmt.Errorf("dram: snapshot has %d hot-table slots, geometry says %d", len(s.Hot), len(d.hotTags))
	}
	if s.Promote < 1 || s.Promote > MaxPromoteThreshold {
		return nil, fmt.Errorf("dram: snapshot promote threshold %d outside [1,%d]", s.Promote, MaxPromoteThreshold)
	}
	for i, ls := range s.Lines {
		d.tags[i] = ls.Tag
		var m uint8
		if ls.Valid {
			m |= metaValid
		}
		if ls.Dirty {
			m |= metaDirty
		}
		d.meta[i] = m
	}
	for i, he := range s.Hot {
		d.hotTags[i] = he.Page
		d.hotCnt[i] = he.Count
		d.hotEpoch[i] = he.Epoch
	}
	d.epoch = s.Epoch
	d.missCount = s.MissCount
	d.promote = s.Promote
	d.st = s.Stats
	return d, nil
}

// Clone returns a deep copy of the tier forwarding to next (the caller
// clones the chain bottom-up and passes the cloned tier below). The copy
// shares no mutable state with the original.
func (d *Cache) Clone(next hierarchy.Mem) *Cache {
	n := &Cache{
		p:         d.p,
		next:      next,
		tags:      append([]uint64(nil), d.tags...),
		meta:      append([]uint8(nil), d.meta...),
		setCount:  d.setCount,
		ways:      d.ways,
		setMask:   d.setMask,
		setShift:  d.setShift,
		hotTags:   append([]uint64(nil), d.hotTags...),
		hotCnt:    append([]uint32(nil), d.hotCnt...),
		hotEpoch:  append([]uint32(nil), d.hotEpoch...),
		hotMask:   d.hotMask,
		epoch:     d.epoch,
		missCount: d.missCount,
		promote:   d.promote,
		st:        d.st,
	}
	return n
}
