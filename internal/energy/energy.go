// Package energy provides the analytical system-energy model standing in
// for McPAT (processor) and NVSim (NVM) from §6.1. System energy is the sum
// of CPU dynamic energy (per instruction), CPU static energy (per second),
// NVM access energy (per read and per write, with write energy depending on
// the latency ratio), and NVM background energy (per second).
//
// The write-energy/latency relationship follows the mellow-writes device
// model: slow writes use a lower write current, with power scaling ≈ r^-1.5
// so that energy per write scales as r^-0.5 — slower writes are mildly
// cheaper in energy but much cheaper in wear (endurance ∝ r²). Cancelled
// write attempts are charged in full, so aggressive cancellation wastes
// energy as well as lifetime.
package energy

import (
	"fmt"
	"math"
	"sort"

	"mct/internal/nvm"
)

// Model holds the energy coefficients. All energies in joules, powers in
// watts.
type Model struct {
	CPUDynamicPerInst float64 // J per committed instruction
	CPUStaticPower    float64 // W, core + cache leakage and clocking
	NVMReadEnergy     float64 // J per 64B read
	NVMWriteEnergy    float64 // J per 64B write at ratio 1.0
	// WriteEnergyExponent: energy per write = NVMWriteEnergy · r^exponent.
	// Negative: slower (lower-power) writes cost slightly less energy.
	WriteEnergyExponent float64
	NVMStaticPower      float64 // W, background/peripheral

	// DRAM cache tier coefficients (hybrid hierarchy only; unused by
	// Compute, charged by ComputeTiered). Refresh power is the static cost
	// the hybrid pays for keeping a DRAM tier powered at all — the energy
	// side of the DRAM-vs-NVM tradeoff dimension.
	DRAMReadEnergy   float64 // J per 64B DRAM array read
	DRAMWriteEnergy  float64 // J per 64B DRAM array write
	DRAMRefreshPower float64 // W, refresh + peripheral background
}

// Default returns the calibrated model used across the experiments.
func Default() Model {
	return Model{
		CPUDynamicPerInst:   0.3e-9,
		CPUStaticPower:      1.0,
		NVMReadEnergy:       2e-9,
		NVMWriteEnergy:      30e-9,
		WriteEnergyExponent: -0.5,
		NVMStaticPower:      0.3,
		DRAMReadEnergy:      0.5e-9,
		DRAMWriteEnergy:     0.5e-9,
		DRAMRefreshPower:    0.15,
	}
}

// Validate checks coefficient sanity.
func (m Model) Validate() error {
	if m.CPUDynamicPerInst < 0 || m.CPUStaticPower < 0 || m.NVMReadEnergy < 0 ||
		m.NVMWriteEnergy < 0 || m.NVMStaticPower < 0 ||
		m.DRAMReadEnergy < 0 || m.DRAMWriteEnergy < 0 || m.DRAMRefreshPower < 0 {
		return fmt.Errorf("energy: negative coefficient in %+v", m)
	}
	return nil
}

// WriteEnergy returns the energy of one write at latency ratio r.
func (m Model) WriteEnergy(ratio float64) float64 {
	if ratio <= 0 {
		ratio = 1
	}
	return m.NVMWriteEnergy * math.Pow(ratio, m.WriteEnergyExponent)
}

// Breakdown itemizes where the joules went. The DRAM components are zero
// for NVM-only systems, so appending them to Total leaves those sums
// bit-identical (x + 0.0 == x for the non-negative components here).
type Breakdown struct {
	CPUDynamic float64
	CPUStatic  float64
	NVMRead    float64
	NVMWrite   float64
	NVMStatic  float64

	DRAMDynamic float64 // DRAM tier array accesses
	DRAMStatic  float64 // DRAM tier refresh/background
}

// Total returns the system energy.
func (b Breakdown) Total() float64 {
	return b.CPUDynamic + b.CPUStatic + b.NVMRead + b.NVMWrite + b.NVMStatic + b.DRAMDynamic + b.DRAMStatic
}

// Compute evaluates the model for a finished simulation window.
// instructions is the committed instruction count, seconds the simulated
// wall time, st the controller statistics for the window.
func (m Model) Compute(instructions uint64, seconds float64, st nvm.Stats) Breakdown {
	var b Breakdown
	b.CPUDynamic = float64(instructions) * m.CPUDynamicPerInst
	b.CPUStatic = seconds * m.CPUStaticPower
	b.NVMRead = float64(st.Reads) * m.NVMReadEnergy
	// Sum write energy in sorted-ratio order: float addition is not
	// associative, so ranging the map directly would let Go's randomized
	// iteration order perturb the total between identically-seeded runs.
	ratios := make([]float64, 0, len(st.WritesByRatio))
	for ratio := range st.WritesByRatio {
		ratios = append(ratios, ratio)
	}
	sort.Float64s(ratios)
	for _, ratio := range ratios {
		b.NVMWrite += float64(st.WritesByRatio[ratio]) * m.WriteEnergy(ratio)
	}
	b.NVMStatic = seconds * m.NVMStaticPower
	return b
}

// ComputeTiered evaluates the model for a window of a hybrid DRAM–NVM
// system: the NVM-only breakdown plus the DRAM tier's array-access energy
// (dramReads/dramWrites are tier-serviced access counts — the traffic the
// NVM never saw) and refresh power. Plain counts keep this package free of
// a dram dependency.
func (m Model) ComputeTiered(instructions uint64, seconds float64, st nvm.Stats, dramReads, dramWrites uint64) Breakdown {
	b := m.Compute(instructions, seconds, st)
	b.DRAMDynamic = float64(dramReads)*m.DRAMReadEnergy + float64(dramWrites)*m.DRAMWriteEnergy
	b.DRAMStatic = seconds * m.DRAMRefreshPower
	return b
}
