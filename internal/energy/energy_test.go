package energy

import (
	"math"
	"testing"

	"mct/internal/nvm"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
	m := Default()
	m.NVMWriteEnergy = -1
	if err := m.Validate(); err == nil {
		t.Fatal("negative coefficient must fail validation")
	}
}

func TestWriteEnergyScaling(t *testing.T) {
	m := Default()
	e1 := m.WriteEnergy(1)
	e4 := m.WriteEnergy(4)
	if e1 != m.NVMWriteEnergy {
		t.Fatalf("unit-ratio write energy = %v, want %v", e1, m.NVMWriteEnergy)
	}
	// Exponent −0.5: 4× writes cost half the energy.
	if math.Abs(e4-e1/2) > 1e-15 {
		t.Fatalf("4x write energy = %v, want %v", e4, e1/2)
	}
	// Degenerate ratio treated as 1.
	if m.WriteEnergy(0) != e1 {
		t.Fatal("ratio 0 must fall back to 1")
	}
}

func TestComputeComponents(t *testing.T) {
	m := Model{
		CPUDynamicPerInst:   2e-9,
		CPUStaticPower:      1,
		NVMReadEnergy:       3e-9,
		NVMWriteEnergy:      10e-9,
		WriteEnergyExponent: 0, // flat for easy arithmetic
		NVMStaticPower:      0.5,
	}
	st := nvm.Stats{
		Reads:         100,
		WritesByRatio: map[float64]uint64{1: 10, 2: 5},
	}
	b := m.Compute(1000, 2.0, st)
	approx := func(got, want float64) bool { return math.Abs(got-want) <= 1e-12*math.Max(1, math.Abs(want)) }
	if !approx(b.CPUDynamic, 1000*2e-9) {
		t.Fatalf("CPU dynamic = %v", b.CPUDynamic)
	}
	if b.CPUStatic != 2.0 {
		t.Fatalf("CPU static = %v", b.CPUStatic)
	}
	if !approx(b.NVMRead, 100*3e-9) {
		t.Fatalf("NVM read = %v", b.NVMRead)
	}
	if !approx(b.NVMWrite, 15*10e-9) {
		t.Fatalf("NVM write = %v", b.NVMWrite)
	}
	if b.NVMStatic != 1.0 {
		t.Fatalf("NVM static = %v", b.NVMStatic)
	}
	want := b.CPUDynamic + b.CPUStatic + b.NVMRead + b.NVMWrite + b.NVMStatic
	if b.Total() != want {
		t.Fatalf("Total = %v, want %v", b.Total(), want)
	}
}

// TestComputeDeterministicOverManyRatios is the regression test for the
// map-iteration bug mctlint's maprange rule caught: NVMWrite used to be
// summed by ranging WritesByRatio directly, so Go's randomized map order
// perturbed the float total between identically-seeded runs. With enough
// ratios of wildly different magnitudes, repeated Compute calls expose any
// order sensitivity within a handful of iterations.
func TestComputeDeterministicOverManyRatios(t *testing.T) {
	m := Default()
	st := nvm.Stats{Reads: 1, WritesByRatio: map[float64]uint64{}}
	for i := 0; i < 16; i++ {
		ratio := 1.0 + float64(i)*0.37
		// Counts spanning nine orders of magnitude make float addition
		// maximally order-sensitive.
		st.WritesByRatio[ratio] = uint64(1) << uint(2*i)
	}
	want := m.Compute(12345, 0.5, st)
	for i := 0; i < 200; i++ {
		got := m.Compute(12345, 0.5, st)
		if got != want {
			t.Fatalf("iteration %d: Compute drifted: %+v != %+v", i, got, want)
		}
	}
}

func TestSlowWritesTradeEnergy(t *testing.T) {
	// The design tension of the paper: slow writes cost less write energy
	// but stretch execution time, costing static energy. Verify both
	// directions move as intended.
	m := Default()
	stFast := nvm.Stats{WritesByRatio: map[float64]uint64{1: 1000}}
	stSlow := nvm.Stats{WritesByRatio: map[float64]uint64{3: 1000}}
	fast := m.Compute(1e6, 0.010, stFast)
	slow := m.Compute(1e6, 0.013, stSlow) // 30% longer runtime
	if slow.NVMWrite >= fast.NVMWrite {
		t.Fatal("slow writes must cost less write energy")
	}
	if slow.CPUStatic <= fast.CPUStatic {
		t.Fatal("longer runtime must cost more static energy")
	}
}
