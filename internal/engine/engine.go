// Package engine is the parallel evaluation engine behind the experiment
// pipeline. The paper's evaluation burned 300,000 CPU-hours on brute-force
// sweeps; our substitute sweeps are embarrassingly parallel (every
// sim.Prepared evaluation clones a warmed LLC and replays an immutable
// trace), so the engine turns those serial loops into bounded worker pools
// without giving up the tree-wide determinism guarantee: results are
// returned in input order and depend only on their inputs, never on
// scheduling.
//
// The engine's contract:
//
//   - Bounded parallelism: at most Options.Workers tasks run at once
//     (default runtime.GOMAXPROCS(0)).
//   - Deterministic results: Map returns results indexed exactly like its
//     inputs, so downstream reductions see the same order at any worker
//     count.
//   - First-error cancellation: one failing task cancels the shared
//     context; the error reported is the failing task with the lowest
//     index among those that ran.
//   - Context cancellation: cancelling ctx stops the pool promptly (no new
//     tasks start; Map returns ctx.Err()).
//   - Structured progress: completion counts stream through an optional
//     callback, serialized and monotone, feeding Event sinks.
package engine

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
)

// Event is one structured progress notification from the evaluation
// pipeline. Scope names the coarse task (an experiment ID or "sweep"),
// Item the fine-grained unit (a benchmark or mix), Done/Total carry
// completion counts when known (Total 0 otherwise), and Text is the
// preformatted human-readable line.
type Event struct {
	Scope string
	Item  string
	Done  int
	Total int
	Text  string
}

// Sink consumes progress events. Sinks must be safe for concurrent use:
// parallel tasks emit from many goroutines.
type Sink func(Event)

// TextAdapter returns a Sink that writes each event's preformatted Text
// line to w — the drop-in replacement for the former `Progress io.Writer`
// option, reproducing its line output byte-for-byte. Events without Text
// are dropped. The adapter serializes writes, so interleaved emitters
// never tear lines.
func TextAdapter(w io.Writer) Sink {
	var mu sync.Mutex
	return func(e Event) {
		if e.Text == "" {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintln(w, e.Text)
	}
}

// Options configures one Map call.
type Options struct {
	// Workers bounds concurrent task executions; 0 (or negative) means
	// runtime.GOMAXPROCS(0). Workers=1 degenerates to the serial loop the
	// engine replaced, executing tasks in input order.
	Workers int

	// OnDone, when non-nil, observes completion counts after each
	// successful task. Calls are serialized and strictly monotone
	// (done = 1, 2, …, total regardless of completion order), so adapters
	// can thin progress to every Nth completion without missing counts.
	OnDone func(done, total int)
}

// workers resolves the effective pool size.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Map evaluates fn(ctx, i) for every i in [0, n) on a bounded worker pool
// and returns the n results in input order. The first task error cancels
// the pool's context and is returned (when several tasks fail, the one
// with the lowest index among those that ran wins, keeping error reporting
// deterministic); cancelling ctx makes Map return ctx.Err() promptly. fn
// must be safe for concurrent invocation when Workers > 1.
func Map[T any](ctx context.Context, n int, opt Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	w := opt.workers()
	if w > n {
		w = n
	}
	out := make([]T, n)

	if w <= 1 {
		// Serial fast path: identical execution order (and identical
		// floating-point accumulation order in callers) to the loops the
		// engine replaced.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
			if opt.OnDone != nil {
				opt.OnDone(i+1, n)
			}
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		next     int
		done     int
		errIdx   = -1
		firstErr error
	)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n || ctx.Err() != nil {
					return
				}
				v, err := fn(ctx, i)
				mu.Lock()
				if err != nil {
					if errIdx < 0 || i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					cancel()
					return
				}
				out[i] = v
				done++
				if opt.OnDone != nil {
					// Under the lock: OnDone observes a strictly
					// monotone completion count.
					opt.OnDone(done, n)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		// No task failed, so the cancellation came from the parent.
		return nil, err
	}
	return out, nil
}
