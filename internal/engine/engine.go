// Package engine is the parallel evaluation engine behind the experiment
// pipeline. The paper's evaluation burned 300,000 CPU-hours on brute-force
// sweeps; our substitute sweeps are embarrassingly parallel (every
// sim.Prepared evaluation clones a warmed LLC and replays an immutable
// trace), so the engine turns those serial loops into bounded worker pools
// without giving up the tree-wide determinism guarantee: results are
// returned in input order and depend only on their inputs, never on
// scheduling.
//
// The engine's contract:
//
//   - Bounded parallelism: at most Options.Workers tasks run at once
//     (default runtime.GOMAXPROCS(0)).
//   - Deterministic results: Map returns results indexed exactly like its
//     inputs, so downstream reductions see the same order at any worker
//     count.
//   - First-error cancellation: one failing task cancels the shared
//     context; the error reported is the failing task with the lowest
//     index among those that ran.
//   - Context cancellation: cancelling ctx stops the pool promptly (no new
//     tasks start; Map returns ctx.Err()).
//   - Structured progress: completion counts stream through an optional
//     callback, serialized and monotone, feeding Event sinks.
//   - Deterministic metrics: with Options.Obs set, the engine's counters
//     (map calls, tasks completed) land in the stable dump — they depend
//     only on the work, not the schedule — while wall-clock signals (task
//     duration buckets, worker count, queue wait) register as volatile and
//     never reach it.
package engine

import (
	"context"
	"io"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"mct/internal/obs"
)

// Event is the engine's progress notification, now shared with the whole
// observability layer: it is an alias of obs.Event, so progress events and
// runtime decision traces flow through one observer type.
type Event = obs.Event

// Sink consumes progress events (alias of obs.TraceSink). Sinks must be
// safe for concurrent use: parallel tasks emit from many goroutines.
type Sink = obs.TraceSink

// TextAdapter returns a Sink that writes each event's preformatted Text
// line to w — the drop-in replacement for the former `Progress io.Writer`
// option, reproducing its line output byte-for-byte. Events without Text
// are dropped; writes are serialized so interleaved emitters never tear
// lines. It is obs.TextSink under its historical engine name.
func TextAdapter(w io.Writer) Sink { return obs.TextSink(w) }

// taskSecondsBounds bucket per-task wall durations (volatile instrument).
var taskSecondsBounds = []float64{0.001, 0.01, 0.1, 1, 10, 100}

// engineObs is the engine's metric family on one registry.
type engineObs struct {
	mapCalls  *obs.Counter
	tasks     *obs.Counter
	workers   *obs.Gauge
	taskSecs  *obs.Histogram
	queueSecs *obs.Histogram
}

// newEngineObs registers the engine family on r. The deterministic half
// (counters) lands in the stable dump; the timing half is volatile.
func newEngineObs(r *obs.Registry) *engineObs {
	return &engineObs{
		mapCalls:  r.Counter("engine.map_calls"),
		tasks:     r.Counter("engine.tasks_completed"),
		workers:   r.VolatileGauge("engine.workers"),
		taskSecs:  r.VolatileHistogram("engine.task_seconds", taskSecondsBounds),
		queueSecs: r.VolatileHistogram("engine.queue_wait_seconds", taskSecondsBounds),
	}
}

// Options configures one Map call.
type Options struct {
	// Workers bounds concurrent task executions; 0 (or negative) means
	// runtime.GOMAXPROCS(0). Workers=1 degenerates to the serial loop the
	// engine replaced, executing tasks in input order.
	Workers int

	// OnDone, when non-nil, observes completion counts after each
	// successful task. Calls are serialized and strictly monotone
	// (done = 1, 2, …, total regardless of completion order), so adapters
	// can thin progress to every Nth completion without missing counts.
	OnDone func(done, total int)

	// Obs, when non-nil, receives the engine metric family: deterministic
	// work counters plus volatile utilization/timing instruments.
	Obs *obs.Registry
}

// workers resolves the effective pool size.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Map evaluates fn(ctx, i) for every i in [0, n) on a bounded worker pool
// and returns the n results in input order. The first task error cancels
// the pool's context and is returned (when several tasks fail, the one
// with the lowest index among those that ran wins, keeping error reporting
// deterministic); cancelling ctx makes Map return ctx.Err() promptly. fn
// must be safe for concurrent invocation when Workers > 1.
func Map[T any](ctx context.Context, n int, opt Options, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	w := opt.workers()
	if w > n {
		w = n
	}
	var eo *engineObs
	if opt.Obs != nil {
		eo = newEngineObs(opt.Obs)
		eo.mapCalls.Inc()
		eo.workers.Set(float64(w))
	}
	out := make([]T, n)

	if w <= 1 {
		// Serial fast path: identical execution order (and identical
		// floating-point accumulation order in callers) to the loops the
		// engine replaced.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			var start time.Time
			if eo != nil {
				start = time.Now()
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			out[i] = v
			if eo != nil {
				eo.tasks.Inc()
				eo.taskSecs.Observe(time.Since(start).Seconds())
			}
			if opt.OnDone != nil {
				opt.OnDone(i+1, n)
			}
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		next     int
		done     int
		errIdx   = -1
		firstErr error
	)
	poolStart := time.Now()
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		worker := k
		go func() {
			defer wg.Done()
			// pprof labels let CPU profiles of a sweep attribute samples
			// to engine workers (go tool pprof -tagfocus engine_worker).
			pprof.Do(ctx, pprof.Labels("engine_worker", strconv.Itoa(worker)), func(ctx context.Context) {
				for {
					mu.Lock()
					i := next
					next++
					mu.Unlock()
					if i >= n || ctx.Err() != nil {
						return
					}
					start := time.Now()
					if eo != nil && i >= w {
						// Tasks beyond the first wave waited for a free
						// worker; their start delay since pool launch is
						// the queue-wait signal (volatile only).
						eo.queueSecs.Observe(start.Sub(poolStart).Seconds())
					}
					v, err := fn(ctx, i)
					mu.Lock()
					if err != nil {
						if errIdx < 0 || i < errIdx {
							errIdx, firstErr = i, err
						}
						mu.Unlock()
						cancel()
						return
					}
					out[i] = v
					done++
					if eo != nil {
						eo.tasks.Inc()
						eo.taskSecs.Observe(time.Since(start).Seconds())
					}
					if opt.OnDone != nil {
						// Under the lock: OnDone observes a strictly
						// monotone completion count.
						opt.OnDone(done, n)
					}
					mu.Unlock()
				}
			})
		}()
	}
	wg.Wait()

	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		// No task failed, so the cancellation came from the parent.
		return nil, err
	}
	return out, nil
}
