package engine

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mct/internal/obs"
)

func TestMapOrdersResults(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		out, err := Map(context.Background(), 50, Options{Workers: workers},
			func(ctx context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 50 {
			t.Fatalf("workers=%d: got %d results, want 50", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Errorf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(context.Background(), 64, Options{Workers: workers},
		func(ctx context.Context, i int) (struct{}, error) {
			n := cur.Add(1)
			for {
				p := peak.Load()
				if n <= p || peak.CompareAndSwap(p, n) {
					break
				}
			}
			cur.Add(-1)
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent tasks, want at most %d", p, workers)
	}
}

func TestMapFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	_, err := Map(context.Background(), 100, Options{Workers: 4},
		func(ctx context.Context, i int) (int, error) {
			calls.Add(1)
			if i == 3 {
				return 0, fmt.Errorf("task %d: %w", i, boom)
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if n := calls.Load(); n >= 100 {
		t.Errorf("all %d tasks ran despite an early error; cancellation did not propagate", n)
	}
}

func TestMapSerialErrorShortCircuits(t *testing.T) {
	boom := errors.New("boom")
	var calls int
	_, err := Map(context.Background(), 10, Options{Workers: 1},
		func(ctx context.Context, i int) (int, error) {
			calls++
			if i == 3 {
				return 0, boom
			}
			return i, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if calls != 4 {
		t.Errorf("serial path ran %d tasks after the error at index 3, want exactly 4", calls)
	}
}

func TestMapLowestErrorIndexWins(t *testing.T) {
	// Every task fails; regardless of scheduling, the reported error must be
	// from the lowest index that actually ran — and index 0 always runs.
	for trial := 0; trial < 20; trial++ {
		_, err := Map(context.Background(), 8, Options{Workers: 8},
			func(ctx context.Context, i int) (int, error) {
				return 0, fmt.Errorf("task %d failed", i)
			})
		if err == nil {
			t.Fatal("want error")
		}
		if got := err.Error(); got != "task 0 failed" {
			t.Fatalf("trial %d: err = %q, want the lowest-index error %q", trial, got, "task 0 failed")
		}
	}
}

func TestMapParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	errCh := make(chan error, 1)
	go func() {
		_, err := Map(ctx, 10, Options{Workers: 2},
			func(ctx context.Context, i int) (int, error) {
				once.Do(func() { close(started) })
				<-ctx.Done()
				return 0, ctx.Err()
			})
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMapCancellationLeaksNoGoroutines(t *testing.T) {
	// Workers must exit once the context dies, even when every task blocks
	// until cancellation: Map's pool is WaitGroup-joined, so a worker that
	// outlived Map would be a leak visible in the process goroutine count.
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 16)
	errCh := make(chan error, 1)
	go func() {
		_, err := Map(ctx, 16, Options{Workers: 4},
			func(ctx context.Context, i int) (int, error) {
				started <- struct{}{}
				<-ctx.Done()
				return 0, ctx.Err()
			})
		errCh <- err
	}()
	for i := 0; i < 4; i++ {
		<-started // all four workers are blocked in a task
	}
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// Goroutine teardown is asynchronous after wg.Wait returns the workers
	// themselves, but the runtime may lag reclaiming them; poll briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to baseline: %d > %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestMapPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	_, err := Map(ctx, 10, Options{Workers: 4},
		func(ctx context.Context, i int) (int, error) {
			calls.Add(1)
			return i, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls.Load() != 0 {
		t.Errorf("%d tasks ran on a pre-cancelled context, want 0", calls.Load())
	}
}

func TestMapOnDoneMonotone(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var mu sync.Mutex
		var seen []int
		_, err := Map(context.Background(), 25, Options{
			Workers: workers,
			OnDone: func(done, total int) {
				if total != 25 {
					t.Errorf("workers=%d: total = %d, want 25", workers, total)
				}
				mu.Lock()
				seen = append(seen, done)
				mu.Unlock()
			},
		}, func(ctx context.Context, i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(seen) != 25 {
			t.Fatalf("workers=%d: OnDone called %d times, want 25", workers, len(seen))
		}
		for i, d := range seen {
			if d != i+1 {
				t.Fatalf("workers=%d: OnDone sequence %v not monotone at position %d", workers, seen, i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 0, Options{},
		func(ctx context.Context, i int) (int, error) { return i, nil })
	if err != nil || out != nil {
		t.Fatalf("Map(n=0) = (%v, %v), want (nil, nil)", out, err)
	}
}

func TestTextAdapter(t *testing.T) {
	var buf bytes.Buffer
	sink := TextAdapter(&buf)
	sink(Event{Scope: "sweep", Item: "lbm", Done: 500, Total: 4060, Text: "  sweep lbm: 500/4060 configs"})
	sink(Event{Scope: "sweep", Done: 1, Total: 10}) // no Text: dropped
	sink(Event{Text: "fig1: sweeping lbm"})
	want := "  sweep lbm: 500/4060 configs\nfig1: sweeping lbm\n"
	if got := buf.String(); got != want {
		t.Errorf("TextAdapter output:\n%q\nwant:\n%q", got, want)
	}
}

// TestMapObsCounters: with a registry attached, Map publishes the
// deterministic engine counters — identical at any worker count — while the
// wall-clock instruments stay out of the stable dump.
func TestMapObsCounters(t *testing.T) {
	dumpAt := func(workers int) []byte {
		reg := obs.NewRegistry()
		_, err := Map(context.Background(), 12, Options{Workers: workers, Obs: reg},
			func(ctx context.Context, i int) (int, error) { return i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if got := reg.Counter("engine.map_calls").Value(); got != 1 {
			t.Fatalf("map_calls = %d, want 1", got)
		}
		if got := reg.Counter("engine.tasks_completed").Value(); got != 12 {
			t.Fatalf("tasks_completed = %d, want 12", got)
		}
		return reg.DumpJSON()
	}
	d1 := dumpAt(1)
	d4 := dumpAt(4)
	if !bytes.Equal(d1, d4) {
		t.Errorf("engine dump differs across worker counts:\n%s\nvs\n%s", d1, d4)
	}
	if bytes.Contains(d1, []byte("engine.workers")) || bytes.Contains(d1, []byte("task_seconds")) {
		t.Errorf("volatile engine instrument leaked into the stable dump:\n%s", d1)
	}
}

// TestMapNoObsNoClock: without a registry the hot loop must not touch the
// clock or allocate observer state (guarded here only by it not panicking
// and by code review; the test pins the nil-Obs path's behaviour).
func TestMapNoObsNoClock(t *testing.T) {
	out, err := Map(context.Background(), 3, Options{Workers: 1},
		func(ctx context.Context, i int) (int, error) { return i * i, nil })
	if err != nil || len(out) != 3 || out[2] != 4 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}
