package experiments

import (
	"context"
	"fmt"

	"mct/internal/config"
	"mct/internal/core"
	"mct/internal/ml"
	"mct/internal/rng"
	"mct/internal/sim"
	"mct/internal/stats"
	"mct/internal/trace"
)

// NormalizationAblationResult holds one benchmark's raw-vs-normalized
// accuracy comparison.
type NormalizationAblationResult struct {
	Benchmark string
	// R² per metric with targets normalized to the baseline (§4.4) vs fit
	// on raw target scales, for the regularized quadratic-lasso model
	// (regularization strength is scale-sensitive, so normalization
	// matters; tree ensembles are scale-robust).
	Normalized [3]float64
	Raw        [3]float64
}

// NormalizationAblation quantifies the §4.4 "Normalization" technique: with
// a fixed lasso penalty, targets on raw physical scales (e.g. joules ≈
// 10⁻²) are crushed by the regularizer, while baseline-normalized targets
// (≈1) fit well.
func NormalizationAblation(ctx context.Context, samples, trials int, opt Options) ([]NormalizationAblationResult, *Report, error) {
	if samples <= 0 {
		samples = 77
	}
	if trials <= 0 {
		trials = 3
	}
	var results []NormalizationAblationResult
	tbl := Table{
		Title:  "Ablation (§4.4): quadratic-lasso R² with baseline-normalized vs raw targets",
		Header: []string{"benchmark", "ipc_norm", "ipc_raw", "life_norm", "life_raw", "en_norm", "en_raw"},
	}
	for _, bench := range opt.Benchmarks {
		sw, err := RunSweep(ctx, bench, false, opt)
		if err != nil {
			return nil, nil, err
		}
		X := sw.Vectors()
		r := NormalizationAblationResult{Benchmark: bench}
		rng := rng.Derive(opt.Seed, 31)
		for t := 0; t < 3; t++ {
			for variant := 0; variant < 2; variant++ {
				truth := sw.Targets(core.Metric(t), variant == 0)
				var acc float64
				for trial := 0; trial < trials; trial++ {
					n := samples
					if n > len(X) {
						n = len(X)
					}
					perm := rng.Perm(len(X))[:n]
					trX := make([][]float64, n)
					trY := make([]float64, n)
					inTrain := map[int]bool{}
					for i, p := range perm {
						trX[i], trY[i] = X[p], truth[p]
						inTrain[p] = true
					}
					lasso := ml.NewQuadraticLasso(ml.DefaultLassoLambda)
					if err := lasso.Fit(trX, trY); err != nil {
						return nil, nil, err
					}
					var pred, want []float64
					for i := range X {
						if inTrain[i] {
							continue
						}
						pred = append(pred, lasso.Predict(X[i]))
						want = append(want, truth[i])
					}
					acc += stats.R2(pred, want) / float64(trials)
				}
				if variant == 0 {
					r.Normalized[t] = acc
				} else {
					r.Raw[t] = acc
				}
			}
		}
		results = append(results, r)
		tbl.AddRow(bench,
			f3(r.Normalized[0]), f3(r.Raw[0]),
			f3(r.Normalized[1]), f3(r.Raw[1]),
			f3(r.Normalized[2]), f3(r.Raw[2]))
		emitf(opt, "ablation-norm", bench, "ablation-norm: %s done", bench)
	}
	rep := &Report{ID: "ablation-norm", Tables: []Table{tbl}}
	return results, rep, nil
}

// SettleAblationResult compares MCT with and without the settle sub-window
// after sample configuration switches.
type SettleAblationResult struct {
	Benchmark     string
	WithSettle    sim.Metrics // testing period
	WithoutSettle sim.Metrics
}

// SettleAblation quantifies this implementation's settle-window design
// choice: without it, queued writes issued under the previous sample's
// policy contaminate the next sample's labels, degrading the learned
// decision.
func SettleAblation(ctx context.Context, benchmarks []string, totalInsts uint64, opt Options) ([]SettleAblationResult, *Report, error) {
	var results []SettleAblationResult
	tbl := Table{
		Title:  "Ablation: sample settle window (testing-period metrics)",
		Header: []string{"benchmark", "ipc_settle", "ipc_none", "life_settle", "life_none"},
	}
	for _, bench := range benchmarks {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		spec, err := trace.ByName(bench)
		if err != nil {
			return nil, nil, err
		}
		run := func(frac float64) (sim.Metrics, error) {
			simOpt := opt.Sim
			simOpt.Seed = opt.Seed
			m, err := sim.NewMachine(spec, config.StaticBaseline(), simOpt)
			if err != nil {
				return sim.Metrics{}, err
			}
			ro := runtimeOptionsFor(ml.NameGBoost, totalInsts, opt.Seed)
			ro.SampleSettleFrac = frac
			rt, err := core.New(m, core.Default(opt.LifetimeTarget), ro)
			if err != nil {
				return sim.Metrics{}, err
			}
			res, err := rt.Run(totalInsts)
			if err != nil {
				return sim.Metrics{}, err
			}
			return res.Testing, nil
		}
		with, err := run(0.2)
		if err != nil {
			return nil, nil, err
		}
		without, err := run(0)
		if err != nil {
			return nil, nil, err
		}
		results = append(results, SettleAblationResult{Benchmark: bench, WithSettle: with, WithoutSettle: without})
		tbl.AddRow(bench, f3(with.IPC), f3(without.IPC), f2(with.LifetimeYears), f2(without.LifetimeYears))
	}
	rep := &Report{ID: "ablation-settle", Tables: []Table{tbl}}
	return results, rep, nil
}

// PowerBudgetAblationResult characterizes the write-power token pool: how
// the IPC cost of slow writes depends on the concurrent-write budget.
type PowerBudgetAblationResult struct {
	Benchmark string
	Budget    int
	// IPC of the all-slow (3×) configuration relative to the default
	// system under the same budget.
	SlowOverFast float64
}

// PowerBudgetAblation quantifies the simulator's write-power budget
// substitution (see DESIGN.md): with a small concurrent-write budget, slow
// writes consume scarce write bandwidth and cost real performance — the
// tension the mellow-writes techniques negotiate.
func PowerBudgetAblation(ctx context.Context, benchmarks []string, budgets []int, opt Options) ([]PowerBudgetAblationResult, *Report, error) {
	if len(budgets) == 0 {
		budgets = []int{2, 4, 8, 16}
	}
	var results []PowerBudgetAblationResult
	tbl := Table{
		Title:  "Ablation: write-power budget (IPC of all-slow 3x writes relative to default)",
		Header: []string{"benchmark", "budget", "slow/fast IPC"},
	}
	slowCfg := config.Default()
	slowCfg.FastLatency = 3.0
	slowCfg.SlowLatency = 3.0
	for _, bench := range benchmarks {
		for _, budget := range budgets {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			simOpt := opt.Sim
			simOpt.Seed = opt.Seed
			simOpt.Params.MaxConcurrentWrites = budget
			prep, err := sim.Prepare(bench, 0, opt.Accesses, simOpt)
			if err != nil {
				return nil, nil, err
			}
			fast, err := prep.Evaluate(config.Default())
			if err != nil {
				return nil, nil, err
			}
			slow, err := prep.Evaluate(slowCfg)
			if err != nil {
				return nil, nil, err
			}
			r := PowerBudgetAblationResult{Benchmark: bench, Budget: budget, SlowOverFast: slow.IPC / fast.IPC}
			results = append(results, r)
			tbl.AddRow(bench, fmt.Sprintf("%d", budget), f3(r.SlowOverFast))
		}
	}
	rep := &Report{ID: "ablation-power", Tables: []Table{tbl}}
	rep.Notes = append(rep.Notes, "smaller budgets make slow writes costlier, widening the performance/lifetime tradeoff the learner navigates")
	return results, rep, nil
}
