package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"mct/internal/sim"
)

// Sweeps are expensive (thousands of simulator runs), and separate mctbench
// invocations cannot share the in-process cache. Setting MCT_SWEEP_CACHE to
// a directory enables a JSON disk cache keyed by the sweep parameters.
// Cached entries retain the headline metrics used by the experiment drivers
// (IPC, lifetime, energy, traffic counters) — not the full per-bank wear
// vectors.
const cacheEnv = "MCT_SWEEP_CACHE"

type metricDTO struct {
	Instructions    uint64
	IPC             float64
	LifetimeYears   float64
	EnergyJ         float64
	Seconds         float64
	MemReads        uint64
	MemWrites       uint64
	EagerWrites     uint64
	CancelledWrites uint64
	ForcedWrites    uint64
	SlowWrites      uint64
	FastWrites      uint64

	// DRAM tier counters; zero for NVM-only sweeps (their cache files
	// carry an Options digest without a DRAM tier, so the two never mix).
	DRAMHits          uint64
	DRAMMisses        uint64
	DRAMWriteHits     uint64
	DRAMEagerAbsorbed uint64
	DRAMPromotions    uint64
	DRAMWritebacks    uint64
	DRAMHitRate       float64
}

func toDTO(m sim.Metrics) metricDTO {
	return metricDTO{
		Instructions:    m.Instructions,
		IPC:             m.IPC,
		LifetimeYears:   m.LifetimeYears,
		EnergyJ:         m.EnergyJ,
		Seconds:         m.Seconds,
		MemReads:        m.MemReads,
		MemWrites:       m.MemWrites,
		EagerWrites:     m.EagerWrites,
		CancelledWrites: m.CancelledWrites,
		ForcedWrites:    m.ForcedWrites,
		SlowWrites:      m.SlowWrites,
		FastWrites:      m.FastWrites,

		DRAMHits:          m.DRAMHits,
		DRAMMisses:        m.DRAMMisses,
		DRAMWriteHits:     m.DRAMWriteHits,
		DRAMEagerAbsorbed: m.DRAMEagerAbsorbed,
		DRAMPromotions:    m.DRAMPromotions,
		DRAMWritebacks:    m.DRAMWritebacks,
		DRAMHitRate:       m.DRAMHitRate,
	}
}

func fromDTO(d metricDTO) sim.Metrics {
	return sim.Metrics{
		Instructions:    d.Instructions,
		IPC:             d.IPC,
		LifetimeYears:   d.LifetimeYears,
		EnergyJ:         d.EnergyJ,
		Seconds:         d.Seconds,
		MemReads:        d.MemReads,
		MemWrites:       d.MemWrites,
		EagerWrites:     d.EagerWrites,
		CancelledWrites: d.CancelledWrites,
		ForcedWrites:    d.ForcedWrites,
		SlowWrites:      d.SlowWrites,
		FastWrites:      d.FastWrites,

		DRAMHits:          d.DRAMHits,
		DRAMMisses:        d.DRAMMisses,
		DRAMWriteHits:     d.DRAMWriteHits,
		DRAMEagerAbsorbed: d.DRAMEagerAbsorbed,
		DRAMPromotions:    d.DRAMPromotions,
		DRAMWritebacks:    d.DRAMWritebacks,
		DRAMHitRate:       d.DRAMHitRate,
	}
}

type sweepDTO struct {
	Benchmark string
	SpaceLen  int
	Indices   []int
	Metrics   []metricDTO
	Baseline  metricDTO
	Default   metricDTO
}

func (k sweepKey) filename() string {
	// The o%016x component is the sim.Options digest: sweeps of different
	// simulated systems must land in different cache files (entries from
	// before this component existed are simply never matched again).
	cold := ""
	if k.cold {
		cold = "_cold"
	}
	return fmt.Sprintf("sweep_%s_a%d_s%d_wq%t_t%g_seed%d_o%016x%s.json",
		k.bench, k.accesses, k.stride, k.wq, k.target, k.seed, k.sim, cold)
}

// loadSweepFromDisk returns a cached sweep or nil. spaceLen guards against
// stale caches from older space enumerations.
func loadSweepFromDisk(k sweepKey, spaceLen int) *sweepDTO {
	dir := os.Getenv(cacheEnv)
	if dir == "" {
		return nil
	}
	data, err := os.ReadFile(filepath.Join(dir, k.filename()))
	if err != nil {
		return nil
	}
	var dto sweepDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil
	}
	if dto.SpaceLen != spaceLen || len(dto.Indices) != len(dto.Metrics) {
		return nil
	}
	return &dto
}

// storeSweepToDisk persists a sweep; failures are silent (the cache is an
// optimization, never a correctness dependency).
func storeSweepToDisk(k sweepKey, s *Sweep) {
	dir := os.Getenv(cacheEnv)
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	dto := sweepDTO{
		Benchmark: s.Benchmark,
		SpaceLen:  s.Space.Len(),
		Indices:   s.Indices,
		Baseline:  toDTO(s.Baseline),
		Default:   toDTO(s.Default),
	}
	for _, m := range s.Metrics {
		dto.Metrics = append(dto.Metrics, toDTO(m))
	}
	data, err := json.Marshal(&dto)
	if err != nil {
		return
	}
	tmp := filepath.Join(dir, k.filename()+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, filepath.Join(dir, k.filename())); err != nil {
		os.Remove(tmp) //mctlint:ignore uncheckederr best-effort cleanup: the disk cache is an optimization, never a correctness dependency
	}
}
