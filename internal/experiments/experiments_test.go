package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"mct/internal/core"
	"mct/internal/ml"
)

// tinyOptions keeps integration tests fast: two benchmarks, a heavily
// strided space and short traces.
func tinyOptions() Options {
	o := DefaultOptions()
	o.Benchmarks = []string{"lbm", "stream"}
	o.Accesses = 6_000
	o.Stride = 67
	return o
}

const tinyInsts = 2_500_000

func TestRunSweepCachesAndShapes(t *testing.T) {
	ResetSweepCache()
	opt := tinyOptions()
	s1, err := RunSweep(context.Background(), "lbm", false, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Indices) != len(s1.Metrics) || len(s1.Indices) == 0 {
		t.Fatalf("sweep shape wrong: %d/%d", len(s1.Indices), len(s1.Metrics))
	}
	wantLen := (s1.Space.Len() + opt.Stride - 1) / opt.Stride
	if len(s1.Indices) != wantLen {
		t.Fatalf("sweep covered %d configs, want %d", len(s1.Indices), wantLen)
	}
	// Cached: second call returns the identical object.
	s2, err := RunSweep(context.Background(), "lbm", false, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("sweep cache miss for identical key")
	}
	// Different key → different sweep.
	s3, err := RunSweep(context.Background(), "lbm", true, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s1 || s3.Space.Len() != 2*s1.Space.Len() {
		t.Fatal("wear-quota sweep must differ")
	}
	// Targets and vectors align.
	y := s1.Targets(core.MetricIPC, true)
	if len(y) != len(s1.Indices) || len(s1.Vectors()) != len(s1.Indices) {
		t.Fatal("targets/vectors misaligned")
	}
	if s1.Baseline.IPC <= 0 || s1.Default.IPC <= 0 {
		t.Fatal("reference metrics missing")
	}
}

func TestSweepIdealRespectsObjective(t *testing.T) {
	opt := tinyOptions()
	sw, err := RunSweep(context.Background(), "stream", true, opt)
	if err != nil {
		t.Fatal(err)
	}
	pos, ok := sw.Ideal(core.Default(opt.LifetimeTarget))
	if pos < 0 || pos >= len(sw.Metrics) {
		t.Fatalf("ideal position %d out of range", pos)
	}
	if ok {
		m := sw.Metrics[pos]
		if m.LifetimeYears < opt.LifetimeTarget {
			t.Fatalf("ideal violates lifetime: %v < %v", m.LifetimeYears, opt.LifetimeTarget)
		}
		// IPC within 95% of the qualified maximum.
		var best float64
		for _, mm := range sw.Metrics {
			if mm.LifetimeYears >= opt.LifetimeTarget && mm.IPC > best {
				best = mm.IPC
			}
		}
		if m.IPC < 0.95*best-1e-12 {
			t.Fatalf("ideal IPC %v below floor of best %v", m.IPC, best)
		}
	}
}

func TestIdealByApp(t *testing.T) {
	opt := tinyOptions()
	results, rep, err := IdealByApp(context.Background(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(opt.Benchmarks) {
		t.Fatalf("results for %d benchmarks, want %d", len(results), len(opt.Benchmarks))
	}
	for _, r := range results {
		if err := r.Ideal.Validate(); err != nil {
			t.Fatalf("%s ideal invalid: %v", r.Benchmark, err)
		}
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	if !strings.Contains(buf.String(), "Figure 1") || !strings.Contains(buf.String(), "Table 5") {
		t.Fatal("report missing sections")
	}
}

func TestIdealByLifetime(t *testing.T) {
	opt := tinyOptions()
	results, _, err := IdealByLifetime(context.Background(), "lbm", []float64{4, 8}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d rows", len(results))
	}
	for _, r := range results {
		if r.Ideal.WearQuota {
			t.Fatal("Table 4 protocol excludes wear quota")
		}
	}
}

func TestModelComparisonQuick(t *testing.T) {
	opt := tinyOptions()
	res, rep, err := ModelComparison(context.Background(), []int{10, 25}, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range res.Models {
		acc := res.Acc[m]
		for tgt := 0; tgt < 3; tgt++ {
			for i, v := range acc[tgt] {
				if v < 0 || v > 1 {
					t.Fatalf("%s acc[%d][%d] = %v outside [0,1]", m, tgt, i, v)
				}
			}
		}
	}
	// The paper's Table 7 structure: offline and hbayes need offline
	// data; offline needs no online samples.
	if !res.NeedsOffline[ml.NameOffline] || !res.NeedsOffline[ml.NameHBayes] || res.NeedsOnline[ml.NameOffline] {
		t.Fatal("Table 7 columns wrong")
	}
	if len(res.FitMS) != len(res.Models) {
		t.Fatal("overheads missing")
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	if !strings.Contains(buf.String(), "Table 7") {
		t.Fatal("report missing Table 7")
	}
}

func TestTopQuadraticFeatures(t *testing.T) {
	results, _, err := TopQuadraticFeatures(context.Background(), core.MetricIPC, 3, tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if len(r.Top) == 0 || len(r.Top) > 3 {
			t.Fatalf("%s: %d ranked features", r.Benchmark, len(r.Top))
		}
		for _, f := range r.Top {
			if f.Name == "" || f.Weight == 0 {
				t.Fatalf("%s: empty ranked feature", r.Benchmark)
			}
		}
	}
}

func TestLassoCoefficients(t *testing.T) {
	results, _, err := LassoCoefficients(context.Background(), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		for tgt := 0; tgt < 3; tgt++ {
			if len(r.Coef[tgt]) != 5 {
				t.Fatalf("%s: %d coefficients, want 5", r.Benchmark, len(r.Coef[tgt]))
			}
		}
	}
}

func TestFeatureVsRandomSampling(t *testing.T) {
	results, _, err := FeatureVsRandomSampling(context.Background(), tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Samples == 0 {
			t.Fatalf("%s: empty plan", r.Benchmark)
		}
		for tgt := 0; tgt < 3; tgt++ {
			if r.FeatureBased[tgt] < 0 || r.FeatureBased[tgt] > 1 || r.Random[tgt] < 0 || r.Random[tgt] > 1 {
				t.Fatalf("%s: accuracy out of range", r.Benchmark)
			}
		}
	}
}

func TestWearQuotaAblation(t *testing.T) {
	opt := tinyOptions()
	opt.Benchmarks = []string{"lbm"}
	results, _, err := WearQuotaAblation(context.Background(), 30, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatal("one benchmark expected")
	}
}

func TestPhaseDetectionExperiment(t *testing.T) {
	opt := tinyOptions()
	po := fig6PhaseOptions()
	res, rep, err := PhaseDetection(context.Background(), "ocean", 12_000_000, po, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no observation points")
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	if !strings.Contains(buf.String(), "Figure 6") {
		t.Fatal("report missing title")
	}
}

func TestMCTComparisonQuick(t *testing.T) {
	opt := tinyOptions()
	results, rep, err := MCTComparison(context.Background(), []string{ml.NameGBoost}, tinyInsts, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		out, ok := r.MCT[ml.NameGBoost]
		if !ok || out.Testing.Instructions == 0 {
			t.Fatalf("%s: missing MCT outcome", r.Benchmark)
		}
		// The deployed configuration must carry the wear-quota fixup.
		if !out.Chosen.WearQuota {
			t.Fatalf("%s: chosen config lacks wear-quota fixup: %v", r.Benchmark, out.Chosen)
		}
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	if !strings.Contains(buf.String(), "GEOMEAN") || !strings.Contains(buf.String(), "Table 10") {
		t.Fatal("report incomplete")
	}
}

func TestLifetimeSensitivityQuick(t *testing.T) {
	opt := tinyOptions()
	results, _, err := LifetimeSensitivity(context.Background(), []string{"lbm"}, []float64{4, 10}, tinyInsts, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d rows, want 2", len(results))
	}
	for _, r := range results {
		if r.MCT.Testing.Instructions == 0 {
			t.Fatal("missing MCT outcome")
		}
	}
}

func TestSamplingOverheadQuick(t *testing.T) {
	opt := tinyOptions()
	opt.Benchmarks = []string{"stream"}
	results, rep, err := SamplingOverhead(context.Background(), []float64{1, 10}, tinyInsts, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.SamplingIPCRatio <= 0 || r.TestingIPCRatio <= 0 {
		t.Fatalf("ratios degenerate: %+v", r)
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	if !strings.Contains(buf.String(), "Equation 4") {
		t.Fatal("extrapolation table missing")
	}
}

func TestExtrapolateIPC(t *testing.T) {
	// Equation 4 sanity: α→∞ converges to the testing value; α=0 is the
	// sampling value.
	if got := ExtrapolateIPC(0.9, 1.1, 0); got != 0.9 {
		t.Fatalf("α=0: %v", got)
	}
	if got := ExtrapolateIPC(0.9, 1.1, 1e9); got < 1.0999 {
		t.Fatalf("α→∞: %v", got)
	}
	mid := ExtrapolateIPC(0.9, 1.1, 1)
	if mid != 1.0 {
		t.Fatalf("α=1: %v, want 1.0", mid)
	}
}

func TestMultiProgramQuick(t *testing.T) {
	opt := tinyOptions()
	results, rep, err := MultiProgram(context.Background(), []string{"mix3"}, 1_500_000, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if len(r.Members) != 4 || r.MCT.Instructions == 0 || r.Static.IPC <= 0 {
		t.Fatalf("mix result degenerate: %+v", r)
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	if !strings.Contains(buf.String(), "Table 11") {
		t.Fatal("report missing Table 11")
	}
}

func TestWearQuotaLearningQuick(t *testing.T) {
	opt := tinyOptions()
	results, _, err := WearQuotaLearning(context.Background(), []string{"lbm"}, tinyInsts, opt)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Exclude.Instructions == 0 || results[0].Include.Instructions == 0 {
		t.Fatal("missing run results")
	}
}

func TestSpaceSummary(t *testing.T) {
	rep := SpaceSummary(tinyOptions())
	var buf bytes.Buffer
	rep.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "2030") || !strings.Contains(out, "4060") {
		t.Fatalf("space sizes missing from report:\n%s", out)
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if len(IDs()) < 10 {
		t.Fatal("registry too small")
	}
	if _, err := Run(context.Background(), "nope", tinyOptions(), DefaultRunParams()); err == nil {
		t.Fatal("unknown id must error")
	}
	// Run the cheapest entry through the registry for coverage.
	rep, err := Run(context.Background(), "space", tinyOptions(), DefaultRunParams())
	if err != nil || rep.ID != "space" {
		t.Fatalf("registry run failed: %v", err)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{Title: "t", Header: []string{"a", "long-header"}}
	tbl.AddRow("x", "y")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== t ==") || !strings.Contains(out, "long-header") {
		t.Fatalf("table render wrong:\n%s", out)
	}
}

func TestAverage3(t *testing.T) {
	got := Average3([][3]float64{{1, 2, 3}, {3, 4, 5}})
	if got != [3]float64{2, 3, 4} {
		t.Fatalf("Average3 = %v", got)
	}
	if Average3(nil) != [3]float64{} {
		t.Fatal("empty Average3 must be zero")
	}
}

func TestNormalizationAblation(t *testing.T) {
	opt := tinyOptions()
	opt.Benchmarks = []string{"lbm"}
	res, _, err := NormalizationAblation(context.Background(), 25, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	for tgt := 0; tgt < 3; tgt++ {
		if r.Normalized[tgt] < 0 || r.Normalized[tgt] > 1 || r.Raw[tgt] < 0 || r.Raw[tgt] > 1 {
			t.Fatalf("accuracy out of range: %+v", r)
		}
	}
	// Energy on raw scales (~10⁻² J) is crushed by the fixed lasso
	// penalty; normalization must help.
	if r.Normalized[2] <= r.Raw[2] {
		t.Fatalf("normalization should improve energy accuracy: norm=%v raw=%v", r.Normalized[2], r.Raw[2])
	}
}

func TestSettleAblation(t *testing.T) {
	opt := tinyOptions()
	res, _, err := SettleAblation(context.Background(), []string{"stream"}, tinyInsts, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].WithSettle.Instructions == 0 || res[0].WithoutSettle.Instructions == 0 {
		t.Fatal("missing run results")
	}
}

func TestPowerBudgetAblation(t *testing.T) {
	opt := tinyOptions()
	res, _, err := PowerBudgetAblation(context.Background(), []string{"stream"}, []int{2, 16}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatal("missing rows")
	}
	// A tighter power budget must make all-slow writes relatively more
	// expensive (or at least not cheaper).
	if res[0].SlowOverFast > res[1].SlowOverFast+0.02 {
		t.Fatalf("budget=2 slow/fast %v should not exceed budget=16 %v",
			res[0].SlowOverFast, res[1].SlowOverFast)
	}
}

func TestWearLevelValidation(t *testing.T) {
	opt := tinyOptions()
	opt.Benchmarks = []string{"zeusmp", "stream"}
	res, rep, err := WearLevelValidation(context.Background(), 50, 1<<10, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatal("missing rows")
	}
	for _, r := range res {
		if r.Writes == 0 {
			t.Fatalf("%s: no writes observed", r.Benchmark)
		}
		if r.Leveled < r.Unleveled-0.05 {
			t.Fatalf("%s: leveling made wear worse: %v vs %v", r.Benchmark, r.Leveled, r.Unleveled)
		}
		if r.Leveled <= 0 || r.Leveled > 1 {
			t.Fatalf("%s: efficiency %v out of range", r.Benchmark, r.Leveled)
		}
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	if !strings.Contains(buf.String(), "Start-Gap") {
		t.Fatal("report missing title")
	}
}

func TestRetentionExtension(t *testing.T) {
	opt := tinyOptions()
	res, rep, err := RetentionExtension(context.Background(), []string{"stream"}, 8, opt)
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.SpaceSize == 0 || r.SamplesUsed >= r.SpaceSize {
		t.Fatalf("space/sample accounting wrong: %+v", r)
	}
	if r.IdealM.Throughput <= 0 || r.LearnedM.Throughput <= 0 {
		t.Fatal("degenerate throughputs")
	}
	// The learner should land within a sane factor of the ideal even at
	// tiny fidelity.
	if r.OfIdealThroughput < 0.5 {
		t.Fatalf("learned config far from ideal: %v", r.OfIdealThroughput)
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	if !strings.Contains(buf.String(), "Extension") {
		t.Fatal("report missing title")
	}
}
