package experiments

import (
	"context"
	"fmt"

	"mct/internal/core"
	"mct/internal/ml"
	"mct/internal/retention"
)

// RetentionExtensionResult demonstrates the generality claim of §4.4 on
// the write-latency-vs-retention technique (Table 1): the same sampling +
// learning + constrained-optimization pipeline picks a near-ideal
// configuration of a completely different NVM technique.
type RetentionExtensionResult struct {
	Benchmark string
	// Ideal from the (small) full sweep; Learned from a gboost model
	// trained on a subset of samples.
	Ideal       retention.Config
	IdealM      retention.Metrics
	Learned     retention.Config
	LearnedM    retention.Metrics
	SamplesUsed int
	SpaceSize   int
	// OfIdealThroughput = learned throughput / ideal throughput.
	OfIdealThroughput float64
}

// RetentionExtension runs the MCT pipeline on the retention-technique
// space: brute-force the small space for the ideal, then show the learner
// reaching a near-ideal choice from one third of the measurements.
func RetentionExtension(ctx context.Context, benchmarks []string, lifetimeTarget float64, opt Options) ([]RetentionExtensionResult, *Report, error) {
	p := retention.DefaultParams()
	// Only a-priori-valid configurations (scrub interval within the
	// device's retention at that ratio) enter the space, as a real
	// controller designer would enforce.
	var space []retention.Config
	for _, c := range retention.Space(p) {
		if c.WriteRatio >= 1 || float64(c.ScrubIntervalCycles) <= p.RetentionCycles(c.WriteRatio) {
			space = append(space, c)
		}
	}

	obj := core.Objective{
		Constraints:      []core.Constraint{{Metric: core.MetricLifetime, Min: lifetimeTarget}},
		RelativeIPCFloor: 0.95, // throughput plays the IPC role
		Optimize:         core.MetricEnergy,
	}

	accesses := opt.Accesses * 10
	if accesses < 200_000 {
		accesses = 200_000
	}

	var results []RetentionExtensionResult
	tbl := Table{
		Title:  fmt.Sprintf("Extension (Table 1): MCT pipeline on write-latency-vs-retention (lifetime ≥ %gy)", lifetimeTarget),
		Header: []string{"benchmark", "ideal (ratio,scrub)", "learned (ratio,scrub)", "ideal tput", "learned tput", "of-ideal"},
	}
	for _, bench := range benchmarks {
		// Full sweep (the space is small enough to brute-force — the
		// point is the learner, not the saved hours here).
		measured := make([]retention.Metrics, len(space))
		preds := make([][3]float64, len(space))
		for i, c := range space {
			if err := ctx.Err(); err != nil {
				return nil, nil, err
			}
			m, err := retention.Simulate(bench, accesses, c, p, opt.Seed)
			if err != nil {
				return nil, nil, err
			}
			measured[i] = m
			preds[i] = m.Vector()
		}
		idealPos, _ := core.SelectOptimal(preds, obj)

		// Learned: sample every third configuration, fit one gboost per
		// objective on the samples, predict the rest, select.
		var sampleIdx []int
		for i := 0; i < len(space); i += 3 {
			sampleIdx = append(sampleIdx, i)
		}
		X := make([][]float64, len(sampleIdx))
		var ys [3][]float64
		for t := range ys {
			ys[t] = make([]float64, len(sampleIdx))
		}
		for i, si := range sampleIdx {
			X[i] = space[si].Vector()
			v := measured[si].Vector()
			for t := 0; t < 3; t++ {
				ys[t][i] = v[t]
			}
		}
		predAll := make([][3]float64, len(space))
		for t := 0; t < 3; t++ {
			gb := ml.NewGBoost(ml.DefaultGBoostOptions())
			if err := gb.Fit(X, ys[t]); err != nil {
				return nil, nil, err
			}
			for i, c := range space {
				predAll[i][t] = gb.Predict(c.Vector())
			}
		}
		learnedPos, _ := core.SelectOptimal(predAll, obj)

		r := RetentionExtensionResult{
			Benchmark:   bench,
			Ideal:       space[idealPos],
			IdealM:      measured[idealPos],
			Learned:     space[learnedPos],
			LearnedM:    measured[learnedPos],
			SamplesUsed: len(sampleIdx),
			SpaceSize:   len(space),
		}
		if r.IdealM.Throughput > 0 {
			r.OfIdealThroughput = r.LearnedM.Throughput / r.IdealM.Throughput
		}
		results = append(results, r)
		tbl.AddRow(bench,
			fmt.Sprintf("%.2f/%d", r.Ideal.WriteRatio, r.Ideal.ScrubIntervalCycles),
			fmt.Sprintf("%.2f/%d", r.Learned.WriteRatio, r.Learned.ScrubIntervalCycles),
			f4(r.IdealM.Throughput), f4(r.LearnedM.Throughput), f3(r.OfIdealThroughput))
		emitf(opt, "extension-retention", bench, "extension-retention: %s done", bench)
	}
	rep := &Report{ID: "extension-retention", Tables: []Table{tbl}}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("same pipeline (sampling → gboost → constrained optimization) on a different technique family; %d of %d configurations sampled", results[0].SamplesUsed, results[0].SpaceSize))
	return results, rep, nil
}
