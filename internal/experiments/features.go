package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"mct/internal/config"
	"mct/internal/core"
	"mct/internal/ml"
	"mct/internal/rng"
	"mct/internal/sampling"
	"mct/internal/stats"
)

// compressedRows returns the 5-feature (§4.4) encodings of a sweep.
func compressedRows(sw *Sweep) [][]float64 {
	X := make([][]float64, len(sw.Indices))
	for i, idx := range sw.Indices {
		X[i] = sw.Space.At(idx).Compressed()
	}
	return X
}

// RankedFeature is one entry of a Table 6 ranking.
type RankedFeature struct {
	Name   string
	Weight float64
}

// TopFeaturesResult holds one benchmark's Table 6 row.
type TopFeaturesResult struct {
	Benchmark string
	Metric    core.Metric
	Top       []RankedFeature
}

// TopQuadraticFeatures reproduces Table 6: the most effective quadratic
// features per application, ranked by the magnitude of quadratic-lasso
// coefficients fitted on the (compressed-feature) ground truth.
func TopQuadraticFeatures(ctx context.Context, metric core.Metric, topN int, opt Options) ([]TopFeaturesResult, *Report, error) {
	if topN <= 0 {
		topN = 3
	}
	names := ml.QuadraticNames(config.CompressedNames())
	var results []TopFeaturesResult
	tbl := Table{
		Title:  fmt.Sprintf("Table 6: top-%d quadratic-lasso features per application (target: %v)", topN, metric),
		Header: []string{"benchmark", "rank", "feature", "weight"},
	}
	for _, bench := range opt.Benchmarks {
		sw, err := RunSweep(ctx, bench, false, opt)
		if err != nil {
			return nil, nil, err
		}
		lasso := ml.NewQuadraticLasso(ml.DefaultLassoLambda)
		if err := lasso.Fit(compressedRows(sw), sw.Targets(metric, true)); err != nil {
			return nil, nil, err
		}
		w, _ := lasso.Coefficients()
		type scored struct {
			j int
			v float64
		}
		var s []scored
		for j, v := range w {
			if v != 0 {
				s = append(s, scored{j, v})
			}
		}
		sort.Slice(s, func(a, b int) bool { return math.Abs(s[a].v) > math.Abs(s[b].v) })
		r := TopFeaturesResult{Benchmark: bench, Metric: metric}
		for k := 0; k < topN && k < len(s); k++ {
			r.Top = append(r.Top, RankedFeature{Name: names[s[k].j], Weight: s[k].v})
			sign := "+"
			if s[k].v < 0 {
				sign = "-"
			}
			tbl.AddRow(bench, fmt.Sprintf("%d", k+1), sign+names[s[k].j], f4(s[k].v))
		}
		results = append(results, r)
	}
	rep := &Report{ID: "table6", Tables: []Table{tbl}}
	rep.Notes = append(rep.Notes, "weights are on standardized features; sign shows impact direction, magnitude shows effectiveness")
	return results, rep, nil
}

// LassoCoefficientsResult holds Figure 4a data for one benchmark: linear
// lasso coefficients on the five compressed features, per objective.
type LassoCoefficientsResult struct {
	Benchmark string
	// Coef[metric][feature]; features ordered as config.CompressedNames().
	Coef [3][]float64
}

// LassoCoefficients reproduces Figure 4a: linear-model lasso coefficients
// of the compressed features. The paper's finding: bank_aware and
// eager_writebacks coefficients are near zero for all objectives of all
// applications, leaving fast_latency, slow_latency and cancellation as the
// three primary features.
func LassoCoefficients(ctx context.Context, opt Options) ([]LassoCoefficientsResult, *Report, error) {
	var results []LassoCoefficientsResult
	names := config.CompressedNames()
	tbl := Table{Title: "Figure 4a: linear lasso coefficients (standardized features)"}
	tbl.Header = append([]string{"benchmark", "objective"}, names...)

	metricNames := []string{"IPC", "lifetime", "energy"}
	for _, bench := range opt.Benchmarks {
		sw, err := RunSweep(ctx, bench, false, opt)
		if err != nil {
			return nil, nil, err
		}
		X := compressedRows(sw)
		r := LassoCoefficientsResult{Benchmark: bench}
		for t := 0; t < 3; t++ {
			lasso := ml.NewLinearLasso(ml.DefaultLassoLambda)
			if err := lasso.Fit(X, sw.Targets(core.Metric(t), true)); err != nil {
				return nil, nil, err
			}
			w, _ := lasso.Coefficients()
			r.Coef[t] = w
			row := []string{bench, metricNames[t]}
			for _, v := range w {
				row = append(row, f4(v))
			}
			tbl.AddRow(row...)
		}
		results = append(results, r)
	}
	rep := &Report{ID: "fig4a", Tables: []Table{tbl}}
	return results, rep, nil
}

// SamplingAccuracyResult holds Figure 4b data for one benchmark.
type SamplingAccuracyResult struct {
	Benchmark string
	// R² per metric for feature-based and random sampling with matched
	// sample counts.
	FeatureBased [3]float64
	Random       [3]float64
	Samples      int
}

// FeatureVsRandomSampling reproduces Figure 4b: gradient-boosting accuracy
// when trained on the feature-based sample set versus an equally sized
// random sample set.
func FeatureVsRandomSampling(ctx context.Context, opt Options) ([]SamplingAccuracyResult, *Report, error) {
	var results []SamplingAccuracyResult
	tbl := Table{
		Title:  "Figure 4b: gboost R², feature-based vs random sampling",
		Header: []string{"benchmark", "n", "ipc_fb", "ipc_rand", "life_fb", "life_rand", "en_fb", "en_rand"},
	}
	for _, bench := range opt.Benchmarks {
		sw, err := RunSweep(ctx, bench, false, opt)
		if err != nil {
			return nil, nil, err
		}
		// Sample plans are built over the swept subset: treat positions in
		// the sweep as the space (the strided sweep is itself a space
		// subsample in quick runs).
		posOf := make(map[int]int, len(sw.Indices))
		for pos, idx := range sw.Indices {
			posOf[idx] = pos
		}
		fbPlan := sampling.FeatureBased(sw.Space, rng.New(opt.Seed))
		var fbPos []int
		for _, idx := range fbPlan.Indices {
			if p, ok := posOf[idx]; ok {
				fbPos = append(fbPos, p)
			}
		}
		if len(fbPos) < 4 {
			// Strided sweep too sparse to contain the grid; sample from
			// what we have.
			for p := 0; p < len(sw.Indices) && len(fbPos) < 16; p += 3 {
				fbPos = append(fbPos, p)
			}
		}
		rndPlan := sampling.Random(sw.Space, len(fbPos), rng.Derive(opt.Seed, 9))
		var rndPos []int
		for _, idx := range rndPlan.Indices {
			if p, ok := posOf[idx]; ok {
				rndPos = append(rndPos, p)
			}
		}
		for p := 0; len(rndPos) < len(fbPos) && p < len(sw.Indices); p += 7 {
			rndPos = append(rndPos, p)
		}

		X := sw.Vectors()
		r := SamplingAccuracyResult{Benchmark: bench, Samples: len(fbPos)}
		for t := 0; t < 3; t++ {
			truth := sw.Targets(core.Metric(t), true)
			eval := func(train []int) float64 {
				gb := ml.NewGBoost(ml.DefaultGBoostOptions())
				trX := make([][]float64, len(train))
				trY := make([]float64, len(train))
				inTrain := map[int]bool{}
				for i, p := range train {
					trX[i], trY[i] = X[p], truth[p]
					inTrain[p] = true
				}
				if err := gb.Fit(trX, trY); err != nil {
					return 0
				}
				var pred, want []float64
				for i := range X {
					if inTrain[i] {
						continue
					}
					pred = append(pred, gb.Predict(X[i]))
					want = append(want, truth[i])
				}
				return stats.R2(pred, want)
			}
			r.FeatureBased[t] = eval(fbPos)
			r.Random[t] = eval(rndPos[:min(len(rndPos), len(fbPos))])
		}
		results = append(results, r)
		tbl.AddRow(bench, fmt.Sprintf("%d", r.Samples),
			f3(r.FeatureBased[0]), f3(r.Random[0]),
			f3(r.FeatureBased[1]), f3(r.Random[1]),
			f3(r.FeatureBased[2]), f3(r.Random[2]))
		emitf(opt, "fig4b", bench, "fig4b: %s done", bench)
	}
	rep := &Report{ID: "fig4b", Tables: []Table{tbl}}
	return results, rep, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Average3 is a helper returning the mean of a [3]float64 slice column
// across results (used by reports and tests).
func Average3(vals [][3]float64) [3]float64 {
	var out [3]float64
	if len(vals) == 0 {
		return out
	}
	for _, v := range vals {
		for i := 0; i < 3; i++ {
			out[i] += v[i]
		}
	}
	for i := 0; i < 3; i++ {
		out[i] /= float64(len(vals))
	}
	return out
}

// geoMeanOf is a small convenience for gain aggregation.
func geoMeanOf(xs []float64) float64 { return stats.GeoMean(xs) }
