// Golden equivalence gate for the tier-pipeline refactor at the report
// level: the fig1 experiment (sweep fan-out across benchmarks and
// configurations) rendered at Workers=1 and Workers=4 must stay
// byte-identical to the pre-refactor seed. Captured from the hard-coded
// llc/ctrl machine immediately before the hierarchy.Tier seam landed.
//
// Regenerate (only on an intentional, documented stream break):
//
//	MCT_UPDATE_GOLDEN=1 go test -run TestDefaultReportGolden ./internal/experiments
package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

const goldenReportFile = "testdata/golden_fig1_quick.txt"

func renderFig1(t *testing.T, workers int) string {
	t.Helper()
	ResetSweepCache()
	o := tinyOptions()
	o.Workers = workers
	rp := DefaultRunParams()
	rp.Trials = 1
	rep, err := Run(context.Background(), "fig1", o, rp)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	rep.Fprint(&buf)
	return buf.String()
}

func TestDefaultReportGolden(t *testing.T) {
	t.Setenv(cacheEnv, "")
	defer ResetSweepCache()

	w1 := renderFig1(t, 1)
	w4 := renderFig1(t, 4)
	if w1 != w4 {
		t.Fatalf("fig1 differs between Workers=1 and Workers=4\n--- w=1:\n%s--- w=4:\n%s", w1, w4)
	}

	if os.Getenv("MCT_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenReportFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenReportFile, []byte(w1), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", goldenReportFile)
		return
	}
	want, err := os.ReadFile(goldenReportFile)
	if err != nil {
		t.Fatalf("golden file missing (capture it on the pre-refactor tree with MCT_UPDATE_GOLDEN=1): %v", err)
	}
	if w1 != string(want) {
		t.Errorf("fig1 report drifted from the pre-refactor golden\n--- want:\n%s--- got:\n%s", want, w1)
	}
}
