package experiments

import (
	"context"
	"fmt"
	"math"
	"sort"

	"mct/internal/config"
	"mct/internal/core"
	"mct/internal/ml"
	"mct/internal/sim"
)

// HybridTierVariant is one hierarchy scenario's ideal-policy measurement
// on one benchmark: the stock NVM-only machine (PromoteThreshold 0) or a
// hybrid DRAM–NVM machine at one hot-page promotion threshold.
type HybridTierVariant struct {
	// PromoteThreshold is the DRAM tier's hot-page promotion threshold;
	// 0 marks the NVM-only scenario.
	PromoteThreshold int
	// IdealConfig and Ideal are the sweep's objective winner and its
	// measurement; ok is false when no configuration satisfied the
	// objective under this hierarchy.
	IdealConfig config.Config
	Ideal       sim.Metrics
	OK          bool
	// Default is the default-system measurement under this hierarchy.
	Default sim.Metrics
}

// HybridTierResult collects one benchmark's frontier across hierarchy
// variants.
type HybridTierResult struct {
	Benchmark string
	Variants  []HybridTierVariant
}

// variantLabel names a scenario row.
func variantLabel(threshold int) string {
	if threshold == 0 {
		return "nvm-only"
	}
	return fmt.Sprintf("dram t=%d", threshold)
}

// tierRows returns the extended (10+2)-dim hierarchy-aware encodings of a
// sweep: the configuration vector with the tier features appended.
func tierRows(sw *Sweep, tc config.TierConfig) [][]float64 {
	tv := tc.Vector()
	X := make([][]float64, len(sw.Indices))
	for i, idx := range sw.Indices {
		X[i] = append(sw.Space.At(idx).Vector(), tv...)
	}
	return X
}

// HybridTier runs the hybrid-tier frontier experiment: for every
// benchmark, the full configuration space is swept under the stock
// NVM-only hierarchy and under the hybrid DRAM–NVM hierarchy at each
// promotion threshold of config.PromoteThresholdGrid, and the paper's
// objective (min energy s.t. lifetime ≥ target, IPC ≥ 0.95·best) is
// applied per variant — an NVM-only-vs-hybrid frontier in which the DRAM
// hit ratio appears as a new tradeoff dimension. A quadratic lasso is
// then fitted on the pooled, hierarchy-extended feature vectors to show
// the tier knobs joining the learned model. Every sweep reuses the
// standard sweep/engine/obs/disk-cache machinery unchanged: the tier
// composition rides in sim.Options, so each variant lands in its own
// cache slot via the options digest.
func HybridTier(ctx context.Context, opt Options) ([]HybridTierResult, *Report, error) {
	obj := core.Default(opt.LifetimeTarget)
	thresholds := append([]int{0}, config.PromoteThresholdGrid...)

	frontier := Table{
		Title: fmt.Sprintf("Hybrid DRAM-NVM frontier: ideal per hierarchy variant (objective: min energy, lifetime >= %gy, IPC >= 0.95 best)",
			opt.LifetimeTarget),
		Header: []string{"benchmark", "hierarchy", "ideal IPC", "lifetime (y)", "energy (J)", "dram hit", "nvm writes", "dram wbs"},
	}

	var results []HybridTierResult
	type pooled struct {
		X [][]float64
		y []float64
	}
	pool := pooled{}

	for _, bench := range opt.Benchmarks {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		res := HybridTierResult{Benchmark: bench}
		for _, th := range thresholds {
			vopt := opt
			if th > 0 {
				vopt.Sim.Tiers = config.TierConfig{DRAMCache: true, DRAMPromoteThreshold: th}
			}
			sw, err := RunSweep(ctx, bench, false, vopt)
			if err != nil {
				return nil, nil, err
			}
			v := HybridTierVariant{PromoteThreshold: th, Default: sw.Default}
			if pos, ok := sw.Ideal(obj); ok {
				v.OK = true
				v.IdealConfig = sw.Space.At(sw.Indices[pos])
				v.Ideal = sw.Metrics[pos]
			}
			res.Variants = append(res.Variants, v)

			if v.OK {
				frontier.AddRow(bench, variantLabel(th),
					f3(v.Ideal.IPC), f2(v.Ideal.LifetimeYears), fmt.Sprintf("%.4g", v.Ideal.EnergyJ),
					f3(v.Ideal.DRAMHitRate), fmt.Sprintf("%d", v.Ideal.MemWrites),
					fmt.Sprintf("%d", v.Ideal.DRAMWritebacks))
			} else {
				frontier.AddRow(bench, variantLabel(th), "-", "-", "-", "-", "-", "-")
			}

			pool.X = append(pool.X, tierRows(sw, vopt.Sim.Tiers)...)
			pool.y = append(pool.y, sw.Targets(core.MetricEnergy, false)...)
			emitf(opt, "hybrid-tier", bench, "hybrid-tier: %s %s done", bench, variantLabel(th))
		}
		results = append(results, res)
	}

	// Learned tier dimension: fit the quadratic lasso over the pooled
	// hierarchy-extended vectors and rank the features touching a tier
	// knob. Raw (unnormalized) energy targets — normalizing per variant
	// would cancel exactly the cross-hierarchy effect being learned.
	learned := Table{
		Title:  "Learned hierarchy dimension: top quadratic-lasso features involving a tier knob (target: energy, pooled across variants)",
		Header: []string{"rank", "feature", "weight"},
	}
	names := ml.QuadraticNames(append(config.VectorNames(), config.TierVectorNames()...))
	lasso := ml.NewQuadraticLasso(ml.DefaultLassoLambda)
	if err := lasso.Fit(pool.X, pool.y); err != nil {
		return nil, nil, err
	}
	w, _ := lasso.Coefficients()
	type scored struct {
		j int
		v float64
	}
	var tierFeats []scored
	for j, v := range w {
		if v != 0 && isTierFeature(names[j]) {
			tierFeats = append(tierFeats, scored{j, v})
		}
	}
	sort.Slice(tierFeats, func(a, b int) bool { return math.Abs(tierFeats[a].v) > math.Abs(tierFeats[b].v) })
	for k := 0; k < 5 && k < len(tierFeats); k++ {
		learned.AddRow(fmt.Sprintf("%d", k+1), names[tierFeats[k].j], f4(tierFeats[k].v))
	}
	if len(tierFeats) == 0 {
		learned.AddRow("-", "(no tier feature selected at this lambda)", "-")
	}

	rep := &Report{ID: "hybrid-tier", Tables: []Table{frontier, learned}}
	rep.Notes = append(rep.Notes,
		"each hierarchy variant is a full sweep through the standard machinery; the tier composition rides in sim.Options, so variants occupy distinct sweep-cache slots",
		"the DRAM tier absorbs hot-page writes (fewer NVM writes, longer lifetime) at the cost of DRAM access and refresh energy — the hit ratio is the new learned tradeoff dimension")
	return results, rep, nil
}

// isTierFeature reports whether a quadratic feature name involves one of
// the hierarchy knobs.
func isTierFeature(name string) bool {
	for _, tn := range config.TierVectorNames() {
		for i := 0; i+len(tn) <= len(name); i++ {
			if name[i:i+len(tn)] == tn {
				return true
			}
		}
	}
	return false
}
