package experiments

import (
	"context"

	"mct/internal/config"
	"mct/internal/core"
	"mct/internal/engine"
	"mct/internal/sim"
)

// configRow renders a configuration in the column layout of Tables 4/5/10.
func configRow(label string, c config.Config) []string {
	na := func(on bool, v string) string {
		if !on {
			return "N/A"
		}
		return v
	}
	b := func(v bool) string {
		if v {
			return "True"
		}
		return "False"
	}
	return []string{
		label,
		b(c.BankAware), na(c.BankAware, f2(float64(c.BankAwareThreshold))),
		b(c.EagerWritebacks), na(c.EagerWritebacks, f2(float64(c.EagerThreshold))),
		b(c.WearQuota), na(c.WearQuota, f2(c.WearQuotaTarget)),
		f2(c.FastLatency), f2(c.SlowLatency),
		b(c.FastCancellation), b(c.SlowCancellation),
	}
}

var configHeader = []string{
	"", "bank_aware", "ba_thresh", "eager_wb", "eager_thresh",
	"wear_quota", "wq_target", "fast_lat", "slow_lat", "fast_canc", "slow_canc",
}

// IdealByAppResult holds the Figure 1 / Table 5 data for one benchmark.
type IdealByAppResult struct {
	Benchmark string
	Ideal     config.Config
	// Measurements on the identical trace.
	Default  sim.Metrics
	Baseline sim.Metrics
	IdealM   sim.Metrics
}

// IdealByApp reproduces Table 5 and Figure 1: the brute-force ideal
// configuration per application under the default objective (lifetime ≥
// target, IPC within 95% of max, minimize energy), compared against the
// default system and the best static policy. Benchmarks are swept
// concurrently (opt.Workers); rows render in benchmark order, so the report
// is identical at any worker count.
func IdealByApp(ctx context.Context, opt Options) ([]IdealByAppResult, *Report, error) {
	obj := core.Default(opt.LifetimeTarget)

	tbl5 := Table{Title: "Table 5: ideal configurations per application", Header: configHeader}
	tbl5.AddRow(configRow("default", config.Default())...)
	tbl5.AddRow(configRow("baseline", baselineAt(opt.LifetimeTarget))...)

	fig1 := Table{
		Title:  "Figure 1: IPC, lifetime, energy of default / baseline / ideal (IPC+energy normalized to baseline)",
		Header: []string{"benchmark", "ipc_def", "ipc_base", "ipc_ideal", "life_def(y)", "life_base(y)", "life_ideal(y)", "en_def", "en_base", "en_ideal"},
	}

	results, err := engine.Map(ctx, len(opt.Benchmarks), engine.Options{Workers: opt.Workers, Obs: opt.Obs},
		func(ctx context.Context, i int) (IdealByAppResult, error) {
			bench := opt.Benchmarks[i]
			emitf(opt, "fig1", bench, "fig1: sweeping %s", bench)
			sw, err := RunSweep(ctx, bench, true, opt)
			if err != nil {
				return IdealByAppResult{}, err
			}
			pos, _ := sw.Ideal(obj)
			return IdealByAppResult{
				Benchmark: bench,
				Ideal:     sw.Space.At(sw.Indices[pos]),
				Default:   sw.Default,
				Baseline:  sw.Baseline,
				IdealM:    sw.Metrics[pos],
			}, nil
		})
	if err != nil {
		return nil, nil, err
	}
	for _, r := range results {
		tbl5.AddRow(configRow(r.Benchmark+"_ideal", r.Ideal)...)
		fig1.AddRow(r.Benchmark,
			f3(r.Default.IPC/r.Baseline.IPC), "1.000", f3(r.IdealM.IPC/r.Baseline.IPC),
			f2(r.Default.LifetimeYears), f2(r.Baseline.LifetimeYears), f2(r.IdealM.LifetimeYears),
			f3(r.Default.EnergyJ/r.Baseline.EnergyJ), "1.000", f3(r.IdealM.EnergyJ/r.Baseline.EnergyJ),
		)
	}

	rep := &Report{ID: "fig1", Tables: []Table{fig1, tbl5}}
	rep.Notes = append(rep.Notes,
		"ideal = brute-force search of the configuration space under: lifetime ≥ target, IPC ≥ 0.95·max, min energy")
	return results, rep, nil
}

// IdealByLifetimeResult holds one Table 4 row.
type IdealByLifetimeResult struct {
	TargetYears float64
	Ideal       config.Config
	IdealM      sim.Metrics
}

// IdealByLifetime reproduces Table 4: ideal configurations of one
// application (leslie3d in the paper) as the minimum-lifetime constraint
// sweeps 4→10 years. As in the paper, wear quota is excluded from the
// explored space for this table.
func IdealByLifetime(ctx context.Context, benchmark string, targets []float64, opt Options) ([]IdealByLifetimeResult, *Report, error) {
	var results []IdealByLifetimeResult
	tbl := Table{Title: "Table 4: ideal configurations vs lifetime target (" + benchmark + ", no wear quota)", Header: configHeader}

	sw, err := RunSweep(ctx, benchmark, false, opt)
	if err != nil {
		return nil, nil, err
	}
	for _, t := range targets {
		pos, _ := sw.Ideal(core.Default(t))
		r := IdealByLifetimeResult{
			TargetYears: t,
			Ideal:       sw.Space.At(sw.Indices[pos]),
			IdealM:      sw.Metrics[pos],
		}
		results = append(results, r)
		tbl.AddRow(configRow(f2(t)+" years", r.Ideal)...)
	}
	rep := &Report{ID: "table4", Tables: []Table{tbl}}
	return results, rep, nil
}
