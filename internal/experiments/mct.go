package experiments

import (
	"context"
	"fmt"

	"mct/internal/config"
	"mct/internal/core"
	"mct/internal/ml"
	"mct/internal/sim"
	"mct/internal/trace"
)

// MCTRunOutcome is one MCT execution on one benchmark.
type MCTRunOutcome struct {
	Model    string
	Sampling sim.Metrics
	Testing  sim.Metrics
	Overall  sim.Metrics
	Chosen   config.Config
	Reverts  int
}

// MCTComparisonResult holds the Figure 7 / Table 10 data for one benchmark.
type MCTComparisonResult struct {
	Benchmark   string
	Default     sim.Metrics
	Static      sim.Metrics
	Ideal       sim.Metrics
	IdealConfig config.Config
	// MCT outcomes keyed by model name.
	MCT map[string]MCTRunOutcome
}

// EnergyPerInst returns energy normalized per instruction — the
// duration-independent energy measure used to compare runs of different
// lengths.
func EnergyPerInst(m sim.Metrics) float64 {
	if m.Instructions == 0 {
		return 0
	}
	return m.EnergyJ / float64(m.Instructions)
}

// runtimeOptionsFor scales the MCT budgets so short runs still get a
// baseline window, a sampling period (≈⅓ of the budget) and a testing
// period (the rest) — the paper's 1:2 sampling:testing proof-of-concept
// split.
func runtimeOptionsFor(model string, totalInsts uint64, seed int64) core.Options {
	ro := core.DefaultOptions()
	ro.Model = model
	ro.Seed = seed
	if ro.SamplingTotalInsts > totalInsts/3 {
		ro.SamplingTotalInsts = totalInsts / 3
		if ro.SamplingTotalInsts < 100_000 {
			ro.SamplingTotalInsts = 100_000
		}
	}
	if ro.BaselineInsts > totalInsts/20 {
		ro.BaselineInsts = totalInsts / 20
		if ro.BaselineInsts < 50_000 {
			ro.BaselineInsts = 50_000
		}
	}
	if unit := ro.SamplingTotalInsts / 100; unit < ro.SampleUnitInsts {
		ro.SampleUnitInsts = unit
		if ro.SampleUnitInsts < 2_000 {
			ro.SampleUnitInsts = 2_000
		}
	}
	return ro
}

// runMCT executes MCT with the given model on a fresh machine and returns
// the outcome. The run itself is one indivisible simulation; ctx is checked
// before it starts.
func runMCT(ctx context.Context, bench, model string, obj core.Objective, totalInsts uint64, opt Options) (MCTRunOutcome, error) {
	if err := ctx.Err(); err != nil {
		return MCTRunOutcome{}, err
	}
	spec, err := trace.ByName(bench)
	if err != nil {
		return MCTRunOutcome{}, err
	}
	simOpt := opt.Sim
	simOpt.Seed = opt.Seed
	m, err := sim.NewMachine(spec, config.StaticBaseline(), simOpt)
	if err != nil {
		return MCTRunOutcome{}, err
	}
	ro := runtimeOptionsFor(model, totalInsts, opt.Seed)
	rt, err := core.New(m, obj, ro)
	if err != nil {
		return MCTRunOutcome{}, err
	}
	res, err := rt.Run(totalInsts)
	if err != nil {
		return MCTRunOutcome{}, err
	}
	out := MCTRunOutcome{
		Model:    model,
		Sampling: res.Sampling,
		Testing:  res.Testing,
		Overall:  res.Overall,
		Reverts:  res.HealthReverts,
	}
	if n := len(res.Phases); n > 0 {
		out.Chosen = res.Phases[n-1].Decision.Chosen
	}
	return out, nil
}

// MCTComparison reproduces Figure 7 and Table 10: MCT (gradient boosting
// and quadratic-lasso) against the default system, the best static policy,
// and the brute-force ideal policy, under the default objective.
func MCTComparison(ctx context.Context, models []string, totalInsts uint64, opt Options) ([]MCTComparisonResult, *Report, error) {
	if len(models) == 0 {
		models = []string{ml.NameGBoost, ml.NameQuadraticLasso}
	}
	obj := core.Default(opt.LifetimeTarget)

	var results []MCTComparisonResult
	fig7 := Table{
		Title:  "Figure 7: MCT vs baselines (IPC and energy/inst normalized to static; lifetime in years)",
		Header: []string{"benchmark", "ipc_def", "ipc_ideal", "life_def", "life_static", "en_def", "en_ideal"},
	}
	for _, mn := range models {
		fig7.Header = append(fig7.Header, "ipc_"+mn, "life_"+mn, "en_"+mn)
	}
	t10 := Table{Title: "Table 10: optimal configurations selected by MCT (" + models[0] + ")", Header: configHeader}
	t10.AddRow(configRow("static", baselineAt(opt.LifetimeTarget))...)

	gains := map[string][]float64{}    // model -> per-bench IPC ratio vs static
	energies := map[string][]float64{} // model -> per-bench energy ratio vs static
	var idealIPCRatio, idealEnergyRatio []float64
	ofIdealIPC := map[string][]float64{}
	ofIdealEnergy := map[string][]float64{}

	for _, bench := range opt.Benchmarks {
		emitf(opt, "fig7", bench, "fig7: %s", bench)
		sw, err := RunSweep(ctx, bench, true, opt)
		if err != nil {
			return nil, nil, err
		}
		pos, _ := sw.Ideal(obj)
		r := MCTComparisonResult{
			Benchmark:   bench,
			Default:     sw.Default,
			Static:      sw.Baseline,
			Ideal:       sw.Metrics[pos],
			IdealConfig: sw.Space.At(sw.Indices[pos]),
			MCT:         map[string]MCTRunOutcome{},
		}
		for _, mn := range models {
			out, err := runMCT(ctx, bench, mn, obj, totalInsts, opt)
			if err != nil {
				return nil, nil, err
			}
			r.MCT[mn] = out
		}
		results = append(results, r)

		stIPC, stEn := r.Static.IPC, EnergyPerInst(r.Static)
		row := []string{
			bench,
			f3(r.Default.IPC / stIPC), f3(r.Ideal.IPC / stIPC),
			f2(r.Default.LifetimeYears), f2(r.Static.LifetimeYears),
			f3(EnergyPerInst(r.Default) / stEn), f3(EnergyPerInst(r.Ideal) / stEn),
		}
		idealIPCRatio = append(idealIPCRatio, r.Ideal.IPC/stIPC)
		idealEnergyRatio = append(idealEnergyRatio, EnergyPerInst(r.Ideal)/stEn)
		for _, mn := range models {
			out := r.MCT[mn]
			row = append(row, f3(out.Testing.IPC/stIPC), f2(out.Testing.LifetimeYears), f3(EnergyPerInst(out.Testing)/stEn))
			gains[mn] = append(gains[mn], out.Testing.IPC/stIPC)
			energies[mn] = append(energies[mn], EnergyPerInst(out.Testing)/stEn)
			ofIdealIPC[mn] = append(ofIdealIPC[mn], out.Testing.IPC/r.Ideal.IPC)
			ofIdealEnergy[mn] = append(ofIdealEnergy[mn], EnergyPerInst(out.Testing)/EnergyPerInst(r.Ideal))
		}
		fig7.Rows = append(fig7.Rows, row)
		t10.AddRow(configRow(bench, r.MCT[models[0]].Chosen)...)
	}

	// Geomean summary row.
	sumRow := []string{"GEOMEAN", "", f3(geoMeanOf(idealIPCRatio)), "", "", "", f3(geoMeanOf(idealEnergyRatio))}
	for _, mn := range models {
		sumRow = append(sumRow, f3(geoMeanOf(gains[mn])), "", f3(geoMeanOf(energies[mn])))
	}
	fig7.Rows = append(fig7.Rows, sumRow)

	rep := &Report{ID: "fig7", Tables: []Table{fig7, t10}}
	for _, mn := range models {
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"MCT(%s): %+.2f%% IPC, %+.2f%% energy vs static; %.2f%% of ideal IPC, %+.2f%% energy vs ideal",
			mn,
			100*(geoMeanOf(gains[mn])-1), 100*(geoMeanOf(energies[mn])-1),
			100*geoMeanOf(ofIdealIPC[mn]), 100*(geoMeanOf(ofIdealEnergy[mn])-1)))
	}
	return results, rep, nil
}

// LifetimeSensitivityResult holds Figure 8 data for one (benchmark, target)
// pair.
type LifetimeSensitivityResult struct {
	Benchmark string
	Target    float64
	Ideal     sim.Metrics
	Static    sim.Metrics
	MCT       MCTRunOutcome
}

// LifetimeSensitivity reproduces Figure 8: MCT (gradient boosting) versus
// the static policy and the ideal policy as the lifetime target sweeps 4–10
// years. As in the paper's Table 4 protocol, the brute-force ideal search
// uses the space without wear quota (sweeping every target's wear-quota
// space is computationally prohibitive even here).
func LifetimeSensitivity(ctx context.Context, benchmarks []string, targets []float64, totalInsts uint64, opt Options) ([]LifetimeSensitivityResult, *Report, error) {
	if len(targets) == 0 {
		targets = []float64{4, 6, 8, 10}
	}
	var results []LifetimeSensitivityResult
	tbl := Table{
		Title:  "Figure 8: sensitivity to lifetime targets (IPC and energy/inst normalized to the 8y static policy)",
		Header: []string{"benchmark", "target(y)", "ipc_static", "ipc_mct", "ipc_ideal", "life_mct", "en_static", "en_mct", "en_ideal"},
	}
	for _, bench := range benchmarks {
		sw, err := RunSweep(ctx, bench, false, opt)
		if err != nil {
			return nil, nil, err
		}
		for _, t := range targets {
			emitf(opt, "fig8", bench, "fig8: %s @ %gy", bench, t)
			obj := core.Default(t)
			pos, _ := sw.Ideal(obj)
			tOpt := opt
			tOpt.LifetimeTarget = t
			out, err := runMCT(ctx, bench, ml.NameGBoost, obj, totalInsts, tOpt)
			if err != nil {
				return nil, nil, err
			}
			r := LifetimeSensitivityResult{
				Benchmark: bench,
				Target:    t,
				Ideal:     sw.Metrics[pos],
				Static:    sw.Baseline,
				MCT:       out,
			}
			results = append(results, r)
			stIPC, stEn := sw.Baseline.IPC, EnergyPerInst(sw.Baseline)
			tbl.AddRow(bench, f2(t),
				"1.000", f3(out.Testing.IPC/stIPC), f3(r.Ideal.IPC/stIPC),
				f2(out.Testing.LifetimeYears),
				"1.000", f3(EnergyPerInst(out.Testing)/stEn), f3(EnergyPerInst(r.Ideal)/stEn))
		}
	}
	rep := &Report{ID: "fig8", Tables: []Table{tbl}}
	rep.Notes = append(rep.Notes, "higher targets force lower-IPC, higher-energy configurations; wear-quota fixup guarantees the floor when predictions overestimate lifetime")
	return results, rep, nil
}

// SamplingOverheadResult holds Figure 9 data for one benchmark.
type SamplingOverheadResult struct {
	Benchmark string
	// Normalized to the static policy over the same workload.
	SamplingIPCRatio    float64
	TestingIPCRatio     float64
	SamplingEnergyRatio float64
	TestingEnergyRatio  float64
}

// ExtrapolateIPC applies Equation 4: the total value when the testing
// period is alpha times the sampling period.
func ExtrapolateIPC(sampling, testing, alpha float64) float64 {
	return (sampling + alpha*testing) / (1 + alpha)
}

// SamplingOverhead reproduces Figure 9: the cost of running suboptimal
// sample configurations during the sampling period, the gains during the
// testing period, and the extrapolated net gain for testing:sampling
// ratios α.
func SamplingOverhead(ctx context.Context, alphas []float64, totalInsts uint64, opt Options) ([]SamplingOverheadResult, *Report, error) {
	if len(alphas) == 0 {
		alphas = []float64{1, 2, 5, 10, 20}
	}
	obj := core.Default(opt.LifetimeTarget)
	var results []SamplingOverheadResult

	tblA := Table{
		Title:  "Figure 9a: sampling-period overhead vs testing-period gains (normalized to static)",
		Header: []string{"benchmark", "ipc_sampling", "ipc_testing", "energy_sampling", "energy_testing"},
	}
	for _, bench := range opt.Benchmarks {
		emitf(opt, "fig9", bench, "fig9: %s", bench)
		sw, err := RunSweep(ctx, bench, true, opt)
		if err != nil {
			return nil, nil, err
		}
		out, err := runMCT(ctx, bench, ml.NameGBoost, obj, totalInsts, opt)
		if err != nil {
			return nil, nil, err
		}
		stIPC, stEn := sw.Baseline.IPC, EnergyPerInst(sw.Baseline)
		r := SamplingOverheadResult{
			Benchmark:           bench,
			SamplingIPCRatio:    out.Sampling.IPC / stIPC,
			TestingIPCRatio:     out.Testing.IPC / stIPC,
			SamplingEnergyRatio: EnergyPerInst(out.Sampling) / stEn,
			TestingEnergyRatio:  EnergyPerInst(out.Testing) / stEn,
		}
		results = append(results, r)
		tblA.AddRow(bench, f3(r.SamplingIPCRatio), f3(r.TestingIPCRatio), f3(r.SamplingEnergyRatio), f3(r.TestingEnergyRatio))
	}
	var sIPC, tIPC, sEn, tEn []float64
	for _, r := range results {
		sIPC = append(sIPC, r.SamplingIPCRatio)
		tIPC = append(tIPC, r.TestingIPCRatio)
		sEn = append(sEn, r.SamplingEnergyRatio)
		tEn = append(tEn, r.TestingEnergyRatio)
	}
	tblA.AddRow("GEOMEAN", f3(geoMeanOf(sIPC)), f3(geoMeanOf(tIPC)), f3(geoMeanOf(sEn)), f3(geoMeanOf(tEn)))

	tblB := Table{Title: "Figure 9b: extrapolated totals vs testing:sampling ratio α (Equation 4)", Header: []string{"alpha", "ipc_total", "energy_total"}}
	for _, a := range alphas {
		tblB.AddRow(fmt.Sprintf("%g", a),
			f3(ExtrapolateIPC(geoMeanOf(sIPC), geoMeanOf(tIPC), a)),
			f3(ExtrapolateIPC(geoMeanOf(sEn), geoMeanOf(tEn), a)))
	}
	rep := &Report{ID: "fig9", Tables: []Table{tblA, tblB}}
	return results, rep, nil
}
