package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"mct/internal/core"
	"mct/internal/engine"
	"mct/internal/ml"
	"mct/internal/rng"
	"mct/internal/stats"
)

// ModelComparisonResult holds the Figure 2 / Table 7 data.
type ModelComparisonResult struct {
	SampleCounts []int
	Models       []string
	// Acc[model][metric][k] is the mean R² across benchmarks when training
	// on SampleCounts[k] samples.
	Acc map[string][3][]float64
	// FitMS[model] is the measured fit+predict-all time in milliseconds at
	// the 77-sample operating point.
	FitMS map[string]float64
	// NeedsOffline/NeedsOnline mirror Table 7's columns.
	NeedsOffline map[string]bool
	NeedsOnline  map[string]bool
}

// modelComparisonModels is the Table 7 model list.
func modelComparisonModels() []string {
	return []string{
		ml.NameOffline,
		ml.NameLinear, ml.NameLinearLasso,
		ml.NameQuadratic, ml.NameQuadraticLasso,
		ml.NameGBoost, ml.NameHBayes,
	}
}

// hbTaskRows bounds the offline rows per task fed to the hierarchical
// Bayesian prior (keeps EM cost sane).
const hbTaskRows = 300

// ModelComparison reproduces Figure 2 and Table 7: convergence rate and
// prediction accuracy of all predictors versus the number of runtime
// samples, plus measured computation overheads. Ground truth is the
// brute-force sweep; targets are normalized to the baseline configuration.
//
// The driver fans out across benchmarks twice (sweeps, then per-benchmark
// accuracy evaluation) on opt.Workers workers. Accuracy is accumulated into
// per-benchmark partial sums in a fixed within-benchmark order and reduced
// across benchmarks in input order, so the floating-point result is
// bit-identical at any worker count.
func ModelComparison(ctx context.Context, sampleCounts []int, trials int, opt Options) (*ModelComparisonResult, *Report, error) {
	if len(sampleCounts) == 0 {
		sampleCounts = []int{10, 20, 40, 77, 120, 160, 200}
	}
	if trials <= 0 {
		trials = 3
	}
	models := modelComparisonModels()

	// Sweeps for every benchmark (ground truth + offline data). This stage
	// is a barrier: the leave-one-out training below reads every other
	// benchmark's sweep, so all must exist before stage two starts (the map
	// is read-only from then on).
	sweepList, err := engine.Map(ctx, len(opt.Benchmarks), engine.Options{Workers: opt.Workers, Obs: opt.Obs},
		func(ctx context.Context, i int) (*Sweep, error) {
			b := opt.Benchmarks[i]
			emitf(opt, "fig2", b, "fig2: sweeping %s", b)
			return RunSweep(ctx, b, false, opt)
		})
	if err != nil {
		return nil, nil, err
	}
	sweeps := make(map[string]*Sweep, len(opt.Benchmarks))
	for i, b := range opt.Benchmarks {
		sweeps[b] = sweepList[i]
	}

	res := &ModelComparisonResult{
		SampleCounts: sampleCounts,
		Models:       models,
		Acc:          map[string][3][]float64{},
		FitMS:        map[string]float64{},
		NeedsOffline: map[string]bool{
			ml.NameOffline: true, ml.NameHBayes: true,
		},
		NeedsOnline: map[string]bool{
			ml.NameLinear: true, ml.NameLinearLasso: true,
			ml.NameQuadratic: true, ml.NameQuadraticLasso: true,
			ml.NameGBoost: true, ml.NameHBayes: true,
		},
	}
	for _, m := range models {
		var acc [3][]float64
		for t := range acc {
			acc[t] = make([]float64, len(sampleCounts))
		}
		res.Acc[m] = acc
	}

	// offlineTables[bench][metric] is a leave-one-out offline predictor.
	buildOffline := func(bench string, metric core.Metric) *ml.Offline {
		var ds []ml.Dataset
		for _, other := range opt.Benchmarks {
			if other == bench {
				continue
			}
			sw := sweeps[other]
			ds = append(ds, ml.Dataset{X: sw.Vectors(), Y: sw.Targets(metric, true)})
		}
		return ml.NewOffline(ds)
	}
	buildHBayes := func(bench string, metric core.Metric, rng *rand.Rand) (*ml.HBayes, error) {
		var ds []ml.Dataset
		for _, other := range opt.Benchmarks {
			if other == bench {
				continue
			}
			sw := sweeps[other]
			X, Y := sw.Vectors(), sw.Targets(metric, true)
			if len(X) > hbTaskRows {
				perm := rng.Perm(len(X))[:hbTaskRows]
				xs := make([][]float64, hbTaskRows)
				ys := make([]float64, hbTaskRows)
				for i, p := range perm {
					xs[i], ys[i] = X[p], Y[p]
				}
				X, Y = xs, ys
			}
			ds = append(ds, ml.Dataset{X: X, Y: Y})
		}
		return ml.NewHierarchicalBayes(ds, 10)
	}

	// Per-benchmark accuracy evaluation. Each task accumulates its own
	// partial sums in the fixed within-benchmark loop order; the reduce
	// below folds them across benchmarks in input order. (The task derives
	// its own rng stream, so trials are reproducible per benchmark
	// regardless of scheduling.)
	partials, err := engine.Map(ctx, len(opt.Benchmarks), engine.Options{Workers: opt.Workers, Obs: opt.Obs},
		func(ctx context.Context, bi int) (map[string][3][]float64, error) {
			bench := opt.Benchmarks[bi]
			part := make(map[string][3][]float64, len(models))
			for _, m := range models {
				var acc [3][]float64
				for t := range acc {
					acc[t] = make([]float64, len(sampleCounts))
				}
				part[m] = acc
			}

			sw := sweeps[bench]
			X := sw.Vectors()
			var truth [3][]float64
			for t := 0; t < 3; t++ {
				truth[t] = sw.Targets(core.Metric(t), true)
			}
			rng := rng.Derive(opt.Seed, 77)

			for ci, n := range sampleCounts {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				// Keep a held-out set: accuracy over zero test rows is
				// meaningless (strided quick runs have few rows).
				if maxN := len(X) * 4 / 5; n > maxN {
					n = maxN
				}
				if n < 2 {
					n = 2
				}
				for trial := 0; trial < trials; trial++ {
					perm := rng.Perm(len(X))
					trainIdx := perm[:n]
					trX := make([][]float64, n)
					for i, p := range trainIdx {
						trX[i] = X[p]
					}
					inTrain := make(map[int]bool, n)
					for _, p := range trainIdx {
						inTrain[p] = true
					}

					for _, mname := range models {
						for t := 0; t < 3; t++ {
							metric := core.Metric(t)
							trY := make([]float64, n)
							for i, p := range trainIdx {
								trY[i] = truth[t][p]
							}
							var p ml.Predictor
							var err error
							switch mname {
							case ml.NameOffline:
								p = buildOffline(bench, metric)
							case ml.NameHBayes:
								p, err = buildHBayes(bench, metric, rng)
							default:
								p, err = ml.New(mname)
							}
							if err != nil {
								return nil, fmt.Errorf("experiments: %s: %w", mname, err)
							}
							if err := p.Fit(trX, trY); err != nil {
								return nil, fmt.Errorf("experiments: fit %s on %s: %w", mname, bench, err)
							}
							var pred, want []float64
							for i := range X {
								if inTrain[i] {
									continue
								}
								pred = append(pred, p.Predict(X[i]))
								want = append(want, truth[t][i])
							}
							acc := part[mname]
							acc[t][ci] += stats.R2(pred, want) / float64(trials)
							part[mname] = acc
						}
					}
				}
			}
			emitf(opt, "fig2", bench, "fig2: %s evaluated", bench)
			return part, nil
		})
	if err != nil {
		return nil, nil, err
	}
	nb := float64(len(opt.Benchmarks))
	for _, part := range partials {
		for _, mname := range models {
			acc, p := res.Acc[mname], part[mname]
			for t := 0; t < 3; t++ {
				for i := range acc[t] {
					acc[t][i] += p[t][i]
				}
			}
			res.Acc[mname] = acc
		}
	}
	for _, mname := range models {
		acc := res.Acc[mname]
		for t := 0; t < 3; t++ {
			for i := range acc[t] {
				acc[t][i] /= nb
			}
		}
		res.Acc[mname] = acc
	}

	// Measured computation overheads at the 77-sample point on the first
	// benchmark (fit + predict the full space), cf. Table 7.
	bench := opt.Benchmarks[0]
	sw := sweeps[bench]
	X := sw.Vectors()
	rng := rng.Derive(opt.Seed, 5)
	n := 77
	if n > len(X) {
		n = len(X)
	}
	perm := rng.Perm(len(X))[:n]
	trX := make([][]float64, n)
	trY := make([]float64, n)
	truth := sw.Targets(core.MetricIPC, true)
	for i, p := range perm {
		trX[i], trY[i] = X[p], truth[p]
	}
	// Render first. The report must be byte-identical across runs and
	// hosts, so the wall-clock overhead measurement below runs after the
	// tables are built and its values never enter them (detflow guards this
	// ordering): overheads live in the result's FitMS field and the
	// progress stream instead of Table 7's stable render.
	rep := &Report{ID: "fig2"}
	t7 := Table{Title: "Table 7: predictor comparison", Header: []string{"predictor", "offline data", "online data"}}
	yn := func(b bool) string {
		if b {
			return "Yes"
		}
		return "No"
	}
	for _, m := range models {
		t7.AddRow(m, yn(res.NeedsOffline[m]), yn(res.NeedsOnline[m]))
	}
	rep.Tables = append(rep.Tables, t7)
	rep.Notes = append(rep.Notes,
		"Table 7's overhead column is wall-clock and host-dependent; it is measured into the result's FitMS field and emitted on the progress stream, not in the stable table")

	metricNames := []string{"IPC", "lifetime", "energy"}
	for t := 0; t < 3; t++ {
		tb := Table{Title: fmt.Sprintf("Figure 2 (%s): mean R² vs #samples", metricNames[t])}
		tb.Header = append(tb.Header, "model")
		for _, n := range sampleCounts {
			tb.Header = append(tb.Header, fmt.Sprintf("n=%d", n))
		}
		for _, m := range models {
			row := []string{m}
			for i := range sampleCounts {
				row = append(row, f3(res.Acc[m][t][i]))
			}
			tb.AddRow(row...)
		}
		rep.Tables = append(rep.Tables, tb)
	}

	// Measure fit+predict overhead at the 77-sample operating point, after
	// every table is rendered.
	for _, mname := range models {
		var p ml.Predictor
		var err error
		switch mname {
		case ml.NameOffline:
			p = buildOffline(bench, core.MetricIPC)
		case ml.NameHBayes:
			// Prior training is offline; only the online cost measured
			// below counts toward the overhead figure.
			p, err = buildHBayes(bench, core.MetricIPC, rng)
			if err != nil {
				return nil, nil, err
			}
		default:
			if p, err = ml.New(mname); err != nil {
				return nil, nil, err
			}
		}
		start := time.Now()
		if err := p.Fit(trX, trY); err != nil {
			return nil, nil, err
		}
		for i := range X {
			p.Predict(X[i])
		}
		ms := float64(time.Since(start).Microseconds()) / 1000.0
		res.FitMS[mname] = ms
		emitf(opt, "fig2", mname, "fig2: %s fit+predict overhead %.3f ms", mname, ms)
	}
	return res, rep, nil
}
