package experiments

import (
	"context"
	"fmt"

	"mct/internal/config"
	"mct/internal/core"
	"mct/internal/engine"
	"mct/internal/ml"
	"mct/internal/sim"
	"mct/internal/trace"
)

// MultiProgramResult holds the Figure 10 data for one mix.
type MultiProgramResult struct {
	Mix     string
	Members []string
	Default sim.MultiMetrics
	Static  sim.MultiMetrics
	MCT     sim.Metrics
	Chosen  config.Config
}

// multiWarmupAccesses fills the 8 MB shared LLC (4× the single-core cache).
const multiWarmupAccesses = 4 * sim.DefaultWarmupAccesses

// MultiProgram reproduces Table 11 and Figure 10: MCT on a 4-core system
// running the multi-program mixes, compared to the default system and the
// static policy. As in the paper, no brute-force ideal is computed for the
// multi-core space ("computationally intractable"). Mixes run concurrently
// (opt.Workers); rows render in mix order, so the report is identical at
// any worker count.
func MultiProgram(ctx context.Context, mixes []string, totalInsts uint64, opt Options) ([]MultiProgramResult, *Report, error) {
	if len(mixes) == 0 {
		mixes = trace.MixNames()
	}
	obj := core.Default(opt.LifetimeTarget)
	t11 := Table{Title: "Table 11: multi-program workloads", Header: []string{"mix", "members"}}
	fig10 := Table{
		Title:  "Figure 10: multi-core MCT (geomean IPC normalized to static; lifetime in years)",
		Header: []string{"mix", "ipc_def", "ipc_mct", "life_def", "life_static", "life_mct"},
	}

	mo := sim.DefaultMultiOptions()
	mo.Seed = opt.Seed

	results, err := engine.Map(ctx, len(mixes), engine.Options{Workers: opt.Workers, Obs: opt.Obs},
		func(ctx context.Context, i int) (MultiProgramResult, error) {
			mix := mixes[i]
			emitf(opt, "fig10", mix, "fig10: %s", mix)
			specs, err := trace.MixByName(mix)
			if err != nil {
				return MultiProgramResult{}, err
			}
			var names []string
			for _, s := range specs {
				names = append(names, s.Name)
			}

			runStatic := func(cfg config.Config) (sim.MultiMetrics, error) {
				mm, err := sim.NewMultiMachine(specs, cfg, mo)
				if err != nil {
					return sim.MultiMetrics{}, err
				}
				mm.Warmup(multiWarmupAccesses)
				return mm.RunInstructions(totalInsts), nil
			}
			def, err := runStatic(config.Default())
			if err != nil {
				return MultiProgramResult{}, err
			}
			st, err := runStatic(baselineAt(opt.LifetimeTarget))
			if err != nil {
				return MultiProgramResult{}, err
			}

			mm, err := sim.NewMultiMachine(specs, config.StaticBaseline(), mo)
			if err != nil {
				return MultiProgramResult{}, err
			}
			ro := runtimeOptionsFor(ml.NameGBoost, totalInsts, opt.Seed)
			ro.WarmupAccesses = multiWarmupAccesses
			rt, err := core.New(core.MultiSystem{MM: mm}, obj, ro)
			if err != nil {
				return MultiProgramResult{}, err
			}
			res, err := rt.Run(totalInsts)
			if err != nil {
				return MultiProgramResult{}, err
			}

			r := MultiProgramResult{
				Mix:     mix,
				Members: names,
				Default: def,
				Static:  st,
				MCT:     res.Testing,
			}
			if n := len(res.Phases); n > 0 {
				r.Chosen = res.Phases[n-1].Decision.Chosen
			}
			return r, nil
		})
	if err != nil {
		return nil, nil, err
	}

	var ipcRatios []float64
	for _, r := range results {
		t11.AddRow(r.Mix, fmt.Sprintf("%v", r.Members))
		ipcRatios = append(ipcRatios, r.MCT.IPC/r.Static.IPC)
		fig10.AddRow(r.Mix,
			f3(r.Default.IPC/r.Static.IPC), f3(r.MCT.IPC/r.Static.IPC),
			f2(r.Default.LifetimeYears), f2(r.Static.LifetimeYears), f2(r.MCT.LifetimeYears))
	}
	fig10.AddRow("GEOMEAN", "", f3(geoMeanOf(ipcRatios)), "", "", "")

	rep := &Report{ID: "fig10", Tables: []Table{t11, fig10}}
	return results, rep, nil
}
