package experiments

import (
	"fmt"

	"mct/internal/config"
	"mct/internal/core"
	"mct/internal/ml"
	"mct/internal/sim"
	"mct/internal/trace"
)

// MultiProgramResult holds the Figure 10 data for one mix.
type MultiProgramResult struct {
	Mix     string
	Members []string
	Default sim.MultiMetrics
	Static  sim.MultiMetrics
	MCT     sim.Metrics
	Chosen  config.Config
}

// multiWarmupAccesses fills the 8 MB shared LLC (4× the single-core cache).
const multiWarmupAccesses = 4 * sim.DefaultWarmupAccesses

// MultiProgram reproduces Table 11 and Figure 10: MCT on a 4-core system
// running the multi-program mixes, compared to the default system and the
// static policy. As in the paper, no brute-force ideal is computed for the
// multi-core space ("computationally intractable").
func MultiProgram(mixes []string, totalInsts uint64, opt Options) ([]MultiProgramResult, *Report, error) {
	if len(mixes) == 0 {
		mixes = trace.MixNames()
	}
	obj := core.Default(opt.LifetimeTarget)
	var results []MultiProgramResult
	t11 := Table{Title: "Table 11: multi-program workloads", Header: []string{"mix", "members"}}
	fig10 := Table{
		Title:  "Figure 10: multi-core MCT (geomean IPC normalized to static; lifetime in years)",
		Header: []string{"mix", "ipc_def", "ipc_mct", "life_def", "life_static", "life_mct"},
	}

	mo := sim.DefaultMultiOptions()
	mo.Seed = opt.Seed

	var ipcRatios []float64
	for _, mix := range mixes {
		progress(opt.Progress, "fig10: %s", mix)
		specs, err := trace.MixByName(mix)
		if err != nil {
			return nil, nil, err
		}
		var names []string
		for _, s := range specs {
			names = append(names, s.Name)
		}
		t11.AddRow(mix, fmt.Sprintf("%v", names))

		runStatic := func(cfg config.Config) (sim.MultiMetrics, error) {
			mm, err := sim.NewMultiMachine(specs, cfg, mo)
			if err != nil {
				return sim.MultiMetrics{}, err
			}
			mm.Warmup(multiWarmupAccesses)
			return mm.RunInstructions(totalInsts), nil
		}
		def, err := runStatic(config.Default())
		if err != nil {
			return nil, nil, err
		}
		st, err := runStatic(baselineAt(opt.LifetimeTarget))
		if err != nil {
			return nil, nil, err
		}

		mm, err := sim.NewMultiMachine(specs, config.StaticBaseline(), mo)
		if err != nil {
			return nil, nil, err
		}
		ro := runtimeOptionsFor(ml.NameGBoost, totalInsts, opt.Seed)
		ro.WarmupAccesses = multiWarmupAccesses
		rt, err := core.New(core.MultiSystem{MM: mm}, obj, ro)
		if err != nil {
			return nil, nil, err
		}
		res, err := rt.Run(totalInsts)
		if err != nil {
			return nil, nil, err
		}

		r := MultiProgramResult{
			Mix:     mix,
			Members: names,
			Default: def,
			Static:  st,
			MCT:     res.Testing,
		}
		if n := len(res.Phases); n > 0 {
			r.Chosen = res.Phases[n-1].Decision.Chosen
		}
		results = append(results, r)
		ipcRatios = append(ipcRatios, r.MCT.IPC/st.IPC)
		fig10.AddRow(mix,
			f3(def.IPC/st.IPC), f3(r.MCT.IPC/st.IPC),
			f2(def.LifetimeYears), f2(st.LifetimeYears), f2(r.MCT.LifetimeYears))
	}
	fig10.AddRow("GEOMEAN", "", f3(geoMeanOf(ipcRatios)), "", "", "")

	rep := &Report{ID: "fig10", Tables: []Table{t11, fig10}}
	return results, rep, nil
}
