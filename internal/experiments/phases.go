package experiments

import (
	"context"
	"fmt"

	"mct/internal/config"
	"mct/internal/phase"
	"mct/internal/sim"
	"mct/internal/trace"
)

// PhasePoint is one observation interval of the Figure 6 trace.
type PhasePoint struct {
	Insts       uint64
	MemRequests uint64
	Score       float64
	NewPhase    bool
}

// PhaseDetectionResult holds the Figure 6 series.
type PhaseDetectionResult struct {
	Benchmark string
	Points    []PhasePoint
	Detected  int
}

// PhaseDetection reproduces Figure 6: run a workload (ocean in the paper)
// under the static configuration, observe the memory workload every
// interval, and record the t-test scores and detected phases.
func PhaseDetection(ctx context.Context, benchmark string, totalInsts uint64, po phase.Options, opt Options) (*PhaseDetectionResult, *Report, error) {
	spec, err := trace.ByName(benchmark)
	if err != nil {
		return nil, nil, err
	}
	simOpt := opt.Sim
	simOpt.Seed = opt.Seed
	m, err := sim.NewMachine(spec, config.StaticBaseline(), simOpt)
	if err != nil {
		return nil, nil, err
	}
	det := phase.New(po)

	res := &PhaseDetectionResult{Benchmark: benchmark}
	var insts uint64
	for insts < totalInsts {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		w := m.RunInstructions(po.IntervalInsts)
		insts += w.Instructions
		score, newPhase := det.Observe(float64(w.MemReads + w.MemWrites))
		res.Points = append(res.Points, PhasePoint{
			Insts:       insts,
			MemRequests: w.MemReads + w.MemWrites,
			Score:       score,
			NewPhase:    newPhase,
		})
		if newPhase {
			res.Detected++
		}
	}

	tbl := Table{
		Title:  fmt.Sprintf("Figure 6: phase detection on %s (I=%d insts, threshold=%.0f)", benchmark, po.IntervalInsts, po.Threshold),
		Header: []string{"insts(M)", "mem_requests", "t_score", "phase"},
	}
	for _, p := range res.Points {
		mark := ""
		if p.NewPhase {
			mark = "<-- new phase"
		}
		tbl.AddRow(f2(float64(p.Insts)/1e6), fmt.Sprintf("%d", p.MemRequests), f2(p.Score), mark)
	}
	rep := &Report{ID: "fig6", Tables: []Table{tbl}}
	rep.Notes = append(rep.Notes, fmt.Sprintf("%d phase changes detected over %.1fM instructions", res.Detected, float64(totalInsts)/1e6))
	return res, rep, nil
}
