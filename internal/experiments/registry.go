package experiments

import (
	"context"
	"fmt"
	"sort"

	"mct/internal/ml"
	"mct/internal/phase"
)

// RunParams tunes the per-experiment knobs used by Run.
type RunParams struct {
	// TotalInsts is the MCT end-to-end run length.
	TotalInsts uint64
	// SampleCounts drives the Figure 2 convergence axis.
	SampleCounts []int
	// Trials averages stochastic experiments.
	Trials int
}

// DefaultRunParams returns the standard experiment scales.
func DefaultRunParams() RunParams {
	return RunParams{
		TotalInsts:   15_000_000,
		SampleCounts: []int{10, 20, 40, 77, 120, 160, 200},
		Trials:       3,
	}
}

// fig6PhaseOptions scales the paper's detector (I=1M, 100/1000 windows) to
// the simulator's trace lengths while keeping the ratios' spirit: dramatic
// phases must dominate the short window.
func fig6PhaseOptions() phase.Options {
	return phase.Options{IntervalInsts: 25_000, ShortWindows: 40, LongWindows: 400, Threshold: 15}
}

// Run executes one experiment by ID and returns its report. Valid IDs are
// listed by IDs(). Cancelling ctx aborts the experiment with ctx.Err();
// opt.Workers bounds the parallelism of its sweeps and driver fan-out.
func Run(ctx context.Context, id string, opt Options, rp RunParams) (*Report, error) {
	switch id {
	case "space":
		return SpaceSummary(opt), nil
	case "table4":
		bench := "leslie3d"
		_, rep, err := IdealByLifetime(ctx, bench, []float64{4, 6, 8, 10}, opt)
		return rep, err
	case "fig1", "table5":
		_, rep, err := IdealByApp(ctx, opt)
		return rep, err
	case "table6":
		_, rep, err := TopQuadraticFeatures(ctx, 0 /* IPC */, 3, opt)
		return rep, err
	case "fig2", "table7":
		_, rep, err := ModelComparison(ctx, rp.SampleCounts, rp.Trials, opt)
		return rep, err
	case "fig3":
		_, rep, err := WearQuotaAblation(ctx, 77, rp.Trials, opt)
		return rep, err
	case "fig4a":
		_, rep, err := LassoCoefficients(ctx, opt)
		return rep, err
	case "fig4", "fig4b":
		_, rep, err := FeatureVsRandomSampling(ctx, opt)
		return rep, err
	case "fig6":
		_, rep, err := PhaseDetection(ctx, "ocean", 40_000_000, fig6PhaseOptions(), opt)
		return rep, err
	case "fig7", "table10":
		_, rep, err := MCTComparison(ctx, []string{ml.NameGBoost, ml.NameQuadraticLasso}, rp.TotalInsts, opt)
		return rep, err
	case "fig8":
		benches := []string{"lbm", "leslie3d", "GemsFDTD", "stream"}
		_, rep, err := LifetimeSensitivity(ctx, benches, []float64{4, 6, 8, 10}, rp.TotalInsts, opt)
		return rep, err
	case "fig9":
		_, rep, err := SamplingOverhead(ctx, nil, rp.TotalInsts, opt)
		return rep, err
	case "fig10", "table11":
		_, rep, err := MultiProgram(ctx, nil, rp.TotalInsts, opt)
		return rep, err
	case "wq-learning":
		_, rep, err := WearQuotaLearning(ctx, []string{"lbm", "leslie3d"}, rp.TotalInsts, opt)
		return rep, err
	case "ablation-norm":
		_, rep, err := NormalizationAblation(ctx, 77, rp.Trials, opt)
		return rep, err
	case "ablation-settle":
		_, rep, err := SettleAblation(ctx, []string{"lbm", "stream", "gups"}, rp.TotalInsts, opt)
		return rep, err
	case "extension-retention":
		_, rep, err := RetentionExtension(ctx, []string{"lbm", "stream", "zeusmp"}, opt.LifetimeTarget, opt)
		return rep, err
	case "validate-wearlevel":
		_, rep, err := WearLevelValidation(ctx, 0, 0, opt)
		return rep, err
	case "ablation-power":
		_, rep, err := PowerBudgetAblation(ctx, []string{"lbm", "stream", "zeusmp"}, nil, opt)
		return rep, err
	case "hybrid-tier":
		_, rep, err := HybridTier(ctx, opt)
		return rep, err
	default:
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
}

// IDs lists the runnable experiment identifiers.
func IDs() []string {
	ids := []string{
		"space", "table4", "fig1", "table6", "fig2", "fig3",
		"fig4a", "fig4b", "fig6", "fig7", "fig8", "fig9", "fig10",
		"wq-learning",
		"ablation-norm", "ablation-settle", "ablation-power",
		"validate-wearlevel", "extension-retention",
		"hybrid-tier",
	}
	sort.Strings(ids)
	return ids
}
