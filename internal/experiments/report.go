// Package experiments contains one driver per table and figure of the
// paper's evaluation (§3.3, §4.3–4.4, §6). Each driver runs the simulator
// and learning stack and renders the same rows/series the paper reports, so
// `mctbench -experiment <id>` (or the benchmarks in bench_test.go)
// regenerates every artifact. The drivers also return structured results
// for programmatic assertions in tests.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"mct/internal/engine"
)

// Table is a printable experiment artifact.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// Report bundles the artifacts of one experiment.
type Report struct {
	ID     string
	Tables []Table
	Notes  []string
}

// Fprint renders the whole report.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "### Experiment %s\n\n", r.ID)
	for i := range r.Tables {
		r.Tables[i].Fprint(w)
		fmt.Fprintln(w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// f2 formats a float at 2 decimals, f3 at 3, f4 at 4.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }

// emitf sends a formatted progress event to opt.Events when a sink is set.
// Scope names the experiment, item the benchmark/mix being processed.
func emitf(opt Options, scope, item, format string, args ...any) {
	if opt.Events != nil {
		opt.Events(engine.Event{Scope: scope, Item: item, Text: fmt.Sprintf(format, args...)})
	}
}
