package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestRunSweepConcurrent hammers RunSweep from goroutines racing on the same
// and on different keys. Under `go test -race` this audits the sweep cache's
// locking; the pointer-identity assertions prove single-flight behavior
// (concurrent callers of one key share one computation).
func TestRunSweepConcurrent(t *testing.T) {
	t.Setenv(cacheEnv, "")
	ResetSweepCache()
	defer ResetSweepCache()
	opt := tinyOptions()

	benches := []string{"lbm", "stream"}
	const perBench = 4
	n := perBench * len(benches)
	results := make([]*Sweep, n)
	errs := make([]error, n)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunSweep(context.Background(), benches[i%len(benches)], false, opt)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		same := results[i%len(benches)]
		if results[i] != same {
			t.Errorf("worker %d: got a distinct *Sweep for %s; want the single-flight shared one",
				i, benches[i%len(benches)])
		}
	}
	if results[0] == results[1] {
		t.Error("different benchmarks returned the same sweep")
	}
	for i, s := range results {
		if len(s.Indices) == 0 || len(s.Indices) != len(s.Metrics) {
			t.Fatalf("worker %d: malformed sweep: %d indices, %d metrics",
				i, len(s.Indices), len(s.Metrics))
		}
	}
}

// TestExperimentReportDeterminism runs a short experiment twice with the
// same seed in one process (cold caches both times) and asserts the rendered
// reports are byte-identical — the regression guard for the tree-wide rule
// that every random draw derives from the seed flags.
func TestExperimentReportDeterminism(t *testing.T) {
	t.Setenv(cacheEnv, "")
	defer ResetSweepCache()
	opt := tinyOptions()
	rp := DefaultRunParams()
	rp.Trials = 1

	render := func() string {
		ResetSweepCache()
		rep, err := Run(context.Background(), "fig4b", opt, rp)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rep.Fprint(&buf)
		return buf.String()
	}

	first := render()
	if first == "" {
		t.Fatal("empty report")
	}
	if second := render(); first != second {
		t.Errorf("same-seed reports differ\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}

// TestParallelDeterminismAcrossWorkers renders fig1 (sweep fan-out across
// configurations AND across benchmarks) at several worker counts with cold
// caches and asserts byte-identical reports — the engine's central
// guarantee: parallelism changes only wall-clock, never results.
func TestParallelDeterminismAcrossWorkers(t *testing.T) {
	t.Setenv(cacheEnv, "")
	defer ResetSweepCache()
	opt := tinyOptions()
	rp := DefaultRunParams()
	rp.Trials = 1

	render := func(workers int) string {
		ResetSweepCache()
		o := opt
		o.Workers = workers
		rep, err := Run(context.Background(), "fig1", o, rp)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		rep.Fprint(&buf)
		return buf.String()
	}

	counts := []int{1, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 4 {
		counts = append(counts, g)
	}
	want := render(counts[0])
	if want == "" {
		t.Fatal("empty report")
	}
	for _, w := range counts[1:] {
		if got := render(w); got != want {
			t.Errorf("report at Workers=%d differs from Workers=%d\n--- w=%d:\n%s\n--- w=%d:\n%s",
				w, counts[0], counts[0], want, w, got)
		}
	}
}

// TestEnergyPathParallelDeterminism targets the energy accounting that
// mctlint's maprange rule flagged: energy.Compute used to sum write energy
// by ranging Stats.WritesByRatio, so runs whose configurations write at
// several latency ratios (the wear-quota variants swept here) could produce
// different float totals per run. fig3 sweeps both the plain and the
// wear-quota space through the worker pool and regresses on energy targets,
// so a byte-identical report at Workers=1 and Workers=4 pins the fix
// end-to-end.
func TestEnergyPathParallelDeterminism(t *testing.T) {
	t.Setenv(cacheEnv, "")
	defer ResetSweepCache()
	opt := tinyOptions()
	opt.Benchmarks = []string{"lbm"}
	rp := DefaultRunParams()
	rp.Trials = 1

	render := func(workers int) string {
		ResetSweepCache()
		o := opt
		o.Workers = workers
		rep, err := Run(context.Background(), "fig3", o, rp)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		rep.Fprint(&buf)
		return buf.String()
	}

	want := render(1)
	if want == "" {
		t.Fatal("empty report")
	}
	if got := render(4); got != want {
		t.Errorf("fig3 report at Workers=4 differs from Workers=1\n--- w=1:\n%s\n--- w=4:\n%s", want, got)
	}
}

// TestRunSweepCancellation checks the cancellation contract: a cancelled
// context aborts a sweep with ctx.Err(), and both caches stay consistent —
// an immediate retry with a live context succeeds and writes the disk-cache
// entry only then.
func TestRunSweepCancellation(t *testing.T) {
	dir := t.TempDir()
	t.Setenv(cacheEnv, dir)
	ResetSweepCache()
	defer ResetSweepCache()
	opt := tinyOptions()
	opt.Workers = 2

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunSweep(ctx, "lbm", false, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}

	// The failed entry must not poison either cache: a retry recomputes.
	s, err := RunSweep(context.Background(), "lbm", false, opt)
	if err != nil {
		t.Fatalf("retry after cancellation failed: %v", err)
	}
	if len(s.Indices) == 0 || len(s.Indices) != len(s.Metrics) {
		t.Fatalf("retry produced malformed sweep: %d indices, %d metrics", len(s.Indices), len(s.Metrics))
	}

	// And the disk cache written by the successful retry round-trips.
	ResetSweepCache()
	s2, err := RunSweep(context.Background(), "lbm", false, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Indices) != len(s.Indices) {
		t.Fatalf("disk-cache round trip changed sweep size: %d != %d", len(s2.Indices), len(s.Indices))
	}
}

// TestSweepKeyIncludesSimOptions is the regression test for the cache-key
// bug: two Options differing only in sim.Options (here the LLC geometry)
// must produce distinct cache keys and distinct sweeps — before the fix
// they silently shared one cached sweep.
func TestSweepKeyIncludesSimOptions(t *testing.T) {
	t.Setenv(cacheEnv, "")
	ResetSweepCache()
	defer ResetSweepCache()

	a := tinyOptions()
	b := tinyOptions()
	b.Sim.CacheBytes = a.Sim.CacheBytes / 2

	ka := sweepKeyFor("lbm", false, a)
	kb := sweepKeyFor("lbm", false, b)
	if ka == kb {
		t.Fatalf("sweep keys identical for different sim.Options: %+v", ka)
	}
	if ka.filename() == kb.filename() {
		t.Fatalf("disk-cache filenames identical for different sim.Options: %s", ka.filename())
	}

	sa, err := RunSweep(context.Background(), "lbm", false, a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := RunSweep(context.Background(), "lbm", false, b)
	if err != nil {
		t.Fatal(err)
	}
	if sa == sb {
		t.Fatal("different simulated systems shared one cached *Sweep")
	}
	// A smaller LLC must actually change measurements (more writebacks), so
	// sharing would have been wrong, not just ugly.
	if fmt.Sprintf("%v", sa.Baseline) == fmt.Sprintf("%v", sb.Baseline) {
		t.Error("halving the LLC left baseline metrics identical; sim digest may not cover the changed field")
	}
}

// TestModelComparisonReportDeterminism renders fig2 (the model-comparison
// table that used to embed a wall-clock overhead column) twice and asserts
// byte-identical reports. This is the regression guard for the detflow
// finding that moved the fit/predict timing off the stable tables and onto
// the progress stream: before that fix fig2 could never have a
// byte-identity test at all.
func TestModelComparisonReportDeterminism(t *testing.T) {
	t.Setenv(cacheEnv, "")
	defer ResetSweepCache()
	opt := tinyOptions()
	rp := DefaultRunParams()
	rp.Trials = 1
	rp.SampleCounts = []int{40}

	render := func() string {
		ResetSweepCache()
		rep, err := Run(context.Background(), "fig2", opt, rp)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rep.Fprint(&buf)
		return buf.String()
	}

	first := render()
	if first == "" {
		t.Fatal("empty report")
	}
	if strings.Contains(first, "overhead") && strings.Contains(first, "ms") {
		// The stable table must not regrow a wall-clock column; overhead
		// lives in the result struct and the progress stream only.
		t.Errorf("fig2 report mentions a timing column again:\n%s", first)
	}
	if second := render(); first != second {
		t.Errorf("same-seed fig2 reports differ\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}
