package experiments

import (
	"bytes"
	"sync"
	"testing"
)

// TestRunSweepConcurrent hammers RunSweep from goroutines racing on the same
// and on different keys. Under `go test -race` this audits the sweep cache's
// locking; the pointer-identity assertions prove single-flight behavior
// (concurrent callers of one key share one computation).
func TestRunSweepConcurrent(t *testing.T) {
	t.Setenv(cacheEnv, "")
	ResetSweepCache()
	defer ResetSweepCache()
	opt := tinyOptions()

	benches := []string{"lbm", "stream"}
	const perBench = 4
	n := perBench * len(benches)
	results := make([]*Sweep, n)
	errs := make([]error, n)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = RunSweep(benches[i%len(benches)], false, opt)
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		same := results[i%len(benches)]
		if results[i] != same {
			t.Errorf("worker %d: got a distinct *Sweep for %s; want the single-flight shared one",
				i, benches[i%len(benches)])
		}
	}
	if results[0] == results[1] {
		t.Error("different benchmarks returned the same sweep")
	}
	for i, s := range results {
		if len(s.Indices) == 0 || len(s.Indices) != len(s.Metrics) {
			t.Fatalf("worker %d: malformed sweep: %d indices, %d metrics",
				i, len(s.Indices), len(s.Metrics))
		}
	}
}

// TestExperimentReportDeterminism runs a short experiment twice with the
// same seed in one process (cold caches both times) and asserts the rendered
// reports are byte-identical — the regression guard for the tree-wide rule
// that every random draw derives from the seed flags.
func TestExperimentReportDeterminism(t *testing.T) {
	t.Setenv(cacheEnv, "")
	defer ResetSweepCache()
	opt := tinyOptions()
	rp := DefaultRunParams()
	rp.Trials = 1

	render := func() string {
		ResetSweepCache()
		rep, err := Run("fig4b", opt, rp)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		rep.Fprint(&buf)
		return buf.String()
	}

	first := render()
	if first == "" {
		t.Fatal("empty report")
	}
	if second := render(); first != second {
		t.Errorf("same-seed reports differ\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}
