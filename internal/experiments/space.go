package experiments

import (
	"fmt"

	"mct/internal/config"
)

// SpaceSummary reproduces the Tables 2/3 configuration-space accounting:
// the techniques, their parameters and grids, and the size of the legal
// enumeration (the paper reports 3,164 configurations; see DESIGN.md for
// the grid deviation).
func SpaceSummary(opt Options) *Report {
	noWQ := config.NewSpace(config.SpaceOptions{})
	withWQ := config.NewSpace(config.SpaceOptions{IncludeWearQuota: true, WearQuotaTarget: opt.LifetimeTarget})

	t2 := Table{Title: "Tables 2/3: configuration-space structure", Header: []string{"parameter", "values"}}
	t2.AddRow("fast_latency / slow_latency", fmt.Sprintf("%v (slow ≥ fast)", config.LatencyGrid))
	t2.AddRow("fast/slow cancellation", "(F,F), (F,T), (T,T)")
	t2.AddRow("bank_aware_threshold", fmt.Sprintf("%v", config.BankThresholdGrid))
	t2.AddRow("eager_threshold", fmt.Sprintf("%v", config.EagerThresholdGrid))
	t2.AddRow("wear_quota_target", fmt.Sprintf("%.1f years (the objective's floor)", opt.LifetimeTarget))

	counts := Table{Title: "space sizes", Header: []string{"space", "configurations"}}
	counts.AddRow("without wear quota (learning space)", fmt.Sprintf("%d", noWQ.Len()))
	counts.AddRow("with wear quota (full space)", fmt.Sprintf("%d", withWQ.Len()))

	byCase := Table{Title: "breakdown by enabled techniques (no wear quota)", Header: []string{"techniques", "configurations"}}
	count := func(keep func(config.Config) bool) int { return len(noWQ.Filter(keep)) }
	byCase.AddRow("neither", fmt.Sprintf("%d", count(func(c config.Config) bool { return !c.BankAware && !c.EagerWritebacks })))
	byCase.AddRow("bank-aware only", fmt.Sprintf("%d", count(func(c config.Config) bool { return c.BankAware && !c.EagerWritebacks })))
	byCase.AddRow("eager only", fmt.Sprintf("%d", count(func(c config.Config) bool { return !c.BankAware && c.EagerWritebacks })))
	byCase.AddRow("both", fmt.Sprintf("%d", count(func(c config.Config) bool { return c.BankAware && c.EagerWritebacks })))

	rep := &Report{ID: "space", Tables: []Table{t2, counts, byCase}}
	rep.Notes = append(rep.Notes, "paper reports 3,164 configurations; the exact grids are unpublished — see DESIGN.md, Known deviations")
	return rep
}
