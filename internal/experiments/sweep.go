package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"

	"mct/internal/config"
	"mct/internal/core"
	"mct/internal/engine"
	"mct/internal/obs"
	"mct/internal/sim"
	"mct/internal/trace"
)

// Options configures the experiment drivers. The defaults balance fidelity
// against the cost of brute-force sweeps (the paper burned 300,000
// CPU-hours on its sweep; ours finishes in minutes).
type Options struct {
	// Benchmarks to evaluate (default: all ten).
	Benchmarks []string
	// Accesses is the trace length per configuration evaluation.
	Accesses int
	// Stride evaluates every Stride-th configuration of the space in
	// brute-force sweeps (1 = full space; tests use larger strides).
	Stride int
	// LifetimeTarget is the default minimum-lifetime objective (years).
	LifetimeTarget float64
	// Sim is the simulated system.
	Sim sim.Options
	// Seed drives workload and sampling randomness.
	Seed int64
	// Workers bounds the parallelism of sweep and driver fan-out; 0 means
	// runtime.GOMAXPROCS(0). Results are deterministic at any value.
	Workers int
	// Events, when non-nil, receives structured progress events. Use
	// engine.TextAdapter to recover the former plain-text progress lines.
	Events engine.Sink
	// Obs, when non-nil, receives the engine's metric family from every
	// evaluation fan-out (plus experiments.sweeps_computed). Only
	// schedule-independent counters land in the stable dump, so sweep
	// dumps stay byte-identical at any worker count.
	Obs *obs.Registry
	// ColdSweep evaluates each configuration on a freshly built machine
	// (replaying the full warmup per configuration) instead of cloning the
	// shared warm machine. Results are identical by the snapshot contract —
	// this exists as the reference path for equivalence tests and for the
	// cold-vs-warm sweep benchmarks.
	ColdSweep bool
}

// DefaultOptions returns full-fidelity settings (full space, all
// benchmarks).
func DefaultOptions() Options {
	return Options{
		Benchmarks:     trace.Names(),
		Accesses:       30_000,
		Stride:         1,
		LifetimeTarget: 8,
		Sim:            sim.DefaultOptions(),
		Seed:           1,
	}
}

// QuickOptions returns reduced-fidelity settings for tests: a strided
// subset of the space and shorter traces.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Accesses = 8_000
	o.Stride = 23
	return o
}

// Sweep holds the brute-force evaluation of (a strided subset of) a
// configuration space on one benchmark — the raw material for "ideal"
// selection and for training/validating predictors on ground truth.
type Sweep struct {
	Benchmark string
	Space     *config.Space
	// Indices are the evaluated configuration indices (ascending).
	Indices []int
	// Metrics[i] is the measurement of Space.At(Indices[i]).
	Metrics []sim.Metrics
	// Baseline and Default are the static-policy and default-system
	// measurements on the identical trace.
	Baseline sim.Metrics
	Default  sim.Metrics
}

// sweepKey identifies a cached sweep. Besides the sweep-shape parameters it
// carries a digest of the full sim.Options: two callers with different
// simulated systems (cache geometry, timing, energy model, …) must never
// share a cached sweep.
type sweepKey struct {
	bench    string
	accesses int
	stride   int
	wq       bool
	target   float64
	seed     int64
	sim      uint64
	// cold keeps warm-clone and cold-rebuild sweeps in distinct cache slots
	// so the equivalence tests actually compare two computations.
	cold bool
}

// simDigest hashes every sim.Options field into a cache-key component.
// Seed is normalized out because the key carries it separately (Options.Seed
// overwrites it before Prepare). The digest covers nested value structs
// (nvm.Params, energy.Model) via their printed representation.
func simDigest(o sim.Options) uint64 {
	o.Seed = 0
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", o)
	return h.Sum64()
}

// sweepKeyFor builds the cache key RunSweep uses (exported to tests via the
// package boundary).
func sweepKeyFor(benchmark string, includeWQ bool, opt Options) sweepKey {
	return sweepKey{
		bench:    benchmark,
		accesses: opt.Accesses,
		stride:   opt.Stride,
		wq:       includeWQ,
		target:   opt.LifetimeTarget,
		seed:     opt.Seed,
		sim:      simDigest(opt.Sim),
		cold:     opt.ColdSweep,
	}
}

// sweepEntry is one single-flight cache slot: the first caller of a key runs
// the computation inside once; concurrent callers of the same key block on
// once and then share the identical *Sweep.
type sweepEntry struct {
	once sync.Once
	s    *Sweep
	err  error
}

var (
	sweepMu    sync.Mutex
	sweepCache = map[sweepKey]*sweepEntry{}
)

// RunSweep evaluates the configuration space (wear quota included when
// includeWQ) on one benchmark, caching results in-process so experiments
// sharing a sweep don't recompute it. It is safe for concurrent use:
// callers racing on the same key share a single computation. Configurations
// are evaluated on a bounded worker pool (opt.Workers); results are
// identical at any worker count. Cancelling ctx aborts the computation with
// ctx.Err() and leaves both caches consistent — the failed in-process entry
// is dropped (a retry recomputes) and nothing partial reaches the disk
// cache (it is written atomically, only on success).
func RunSweep(ctx context.Context, benchmark string, includeWQ bool, opt Options) (*Sweep, error) {
	key := sweepKeyFor(benchmark, includeWQ, opt)
	sweepMu.Lock()
	e, ok := sweepCache[key]
	if !ok {
		e = &sweepEntry{}
		sweepCache[key] = e
	}
	sweepMu.Unlock()

	e.once.Do(func() { e.s, e.err = computeSweep(ctx, benchmark, includeWQ, key, opt) })
	if e.err != nil {
		// Don't cache failures: drop the entry (if it is still ours) so a
		// later call can retry. This is also what keeps the in-process
		// cache consistent across cancellation.
		sweepMu.Lock()
		if sweepCache[key] == e {
			delete(sweepCache, key)
		}
		sweepMu.Unlock()
	}
	return e.s, e.err
}

// computeSweep produces the sweep for key: from the optional disk cache if
// present, otherwise by brute-force evaluation on a worker pool.
func computeSweep(ctx context.Context, benchmark string, includeWQ bool, key sweepKey, opt Options) (*Sweep, error) {
	space := config.NewSpace(config.SpaceOptions{IncludeWearQuota: includeWQ, WearQuotaTarget: opt.LifetimeTarget})

	// Optional cross-process disk cache (MCT_SWEEP_CACHE).
	if dto := loadSweepFromDisk(key, space.Len()); dto != nil {
		s := &Sweep{
			Benchmark: benchmark,
			Space:     space,
			Indices:   dto.Indices,
			Baseline:  fromDTO(dto.Baseline),
			Default:   fromDTO(dto.Default),
		}
		for _, m := range dto.Metrics {
			s.Metrics = append(s.Metrics, fromDTO(m))
		}
		return s, nil
	}

	simOpt := opt.Sim
	simOpt.Seed = opt.Seed
	prep, err := sim.Prepare(benchmark, 0, opt.Accesses, simOpt)
	if err != nil {
		return nil, err
	}

	stride := opt.Stride
	if stride < 1 {
		stride = 1
	}
	indices := make([]int, 0, (space.Len()+stride-1)/stride)
	for i := 0; i < space.Len(); i += stride {
		indices = append(indices, i)
	}

	eopt := engine.Options{Workers: opt.Workers, Obs: opt.Obs}
	if opt.Obs != nil {
		opt.Obs.Counter("experiments.sweeps_computed").Inc()
	}
	if opt.Events != nil {
		events, total := opt.Events, len(indices)
		eopt.OnDone = func(done, _ int) {
			// Same thinning (every 500 completions) and text as the old
			// serial loop; OnDone counts are monotone at any worker count,
			// so the emitted lines are byte-identical.
			if done%500 == 0 {
				events(engine.Event{
					Scope: "sweep", Item: benchmark, Done: done, Total: total,
					Text: fmt.Sprintf("  sweep %s: %d/%d configs", benchmark, done, total),
				})
			}
		}
	}
	evaluate := prep.Evaluate
	if opt.ColdSweep {
		evaluate = prep.EvaluateCold
	}
	metrics, err := engine.Map(ctx, len(indices), eopt, func(ctx context.Context, k int) (sim.Metrics, error) {
		m, err := evaluate(space.At(indices[k]))
		if err != nil {
			return sim.Metrics{}, fmt.Errorf("experiments: sweep %s config %d: %w", benchmark, indices[k], err)
		}
		return m, nil
	})
	if err != nil {
		return nil, err
	}

	s := &Sweep{Benchmark: benchmark, Space: space, Indices: indices, Metrics: metrics}
	if s.Baseline, err = evaluate(baselineAt(opt.LifetimeTarget)); err != nil {
		return nil, err
	}
	if s.Default, err = evaluate(config.Default()); err != nil {
		return nil, err
	}

	storeSweepToDisk(key, s)
	return s, nil
}

// baselineAt is the static policy with its wear-quota target set to the
// objective's lifetime floor.
func baselineAt(target float64) config.Config {
	b := config.StaticBaseline()
	if target > 0 {
		b.WearQuotaTarget = target
	}
	return b
}

// ResetSweepCache clears the in-process sweep cache (tests). In-flight
// computations finish against their old entries and are not re-cached.
func ResetSweepCache() {
	sweepMu.Lock()
	sweepCache = map[sweepKey]*sweepEntry{}
	sweepMu.Unlock()
}

// Vectors returns the 10-dim encodings of the evaluated configurations.
func (s *Sweep) Vectors() [][]float64 {
	X := make([][]float64, len(s.Indices))
	for i, idx := range s.Indices {
		X[i] = s.Space.At(idx).Vector()
	}
	return X
}

// Targets returns the per-configuration values of one metric, optionally
// normalized to the baseline measurement.
func (s *Sweep) Targets(m core.Metric, normalize bool) []float64 {
	base := 1.0
	if normalize {
		switch m {
		case core.MetricIPC:
			base = s.Baseline.IPC
		case core.MetricLifetime:
			base = s.Baseline.LifetimeYears
		case core.MetricEnergy:
			base = s.Baseline.EnergyJ
		}
	}
	y := make([]float64, len(s.Metrics))
	for i, mt := range s.Metrics {
		switch m {
		case core.MetricIPC:
			y[i] = mt.IPC / base
		case core.MetricLifetime:
			y[i] = mt.LifetimeYears / base
		case core.MetricEnergy:
			y[i] = mt.EnergyJ / base
		}
	}
	return y
}

// TradeoffVectors returns the measured [IPC, lifetime, energy] rows.
func (s *Sweep) TradeoffVectors() [][3]float64 {
	out := make([][3]float64, len(s.Metrics))
	for i, mt := range s.Metrics {
		out[i] = mt.Vector()
	}
	return out
}

// Ideal applies an objective to the measured data and returns the winning
// position (index into s.Indices/Metrics) — the brute-force "ideal policy".
func (s *Sweep) Ideal(obj core.Objective) (pos int, ok bool) {
	return core.SelectOptimal(s.TradeoffVectors(), obj)
}
