package experiments

import (
	"context"
	"reflect"
	"testing"
)

// sweepFingerprint is the comparable content of a sweep (Space is a shared
// pointer and excluded).
type sweepFingerprint struct {
	Indices  []int
	Metrics  interface{}
	Baseline interface{}
	Default  interface{}
}

func fingerprint(s *Sweep) sweepFingerprint {
	return sweepFingerprint{Indices: s.Indices, Metrics: s.Metrics, Baseline: s.Baseline, Default: s.Default}
}

// TestWarmCloneSweepMatchesColdRebuild is the acceptance criterion of the
// warm-start refactor: for every benchmark in QuickOptions, the warm-clone
// sweep (one warm machine per benchmark, cloned per configuration) is
// identical to the cold-rebuild sweep (fresh machine + full warmup replay
// per configuration) at Workers=1 and Workers=4.
func TestWarmCloneSweepMatchesColdRebuild(t *testing.T) {
	if testing.Short() {
		t.Skip("full QuickOptions cold sweeps are slow; run without -short")
	}
	t.Setenv(cacheEnv, "")
	ResetSweepCache()
	defer ResetSweepCache()

	opt := QuickOptions()
	for _, bench := range opt.Benchmarks {
		cold := opt
		cold.ColdSweep = true
		cold.Workers = 4
		ref, err := RunSweep(context.Background(), bench, false, cold)
		if err != nil {
			t.Fatalf("%s cold: %v", bench, err)
		}
		for _, workers := range []int{1, 4} {
			// Warm sweeps at different worker counts share one cache entry;
			// reset so both worker counts are real computations (the held ref
			// pointer is unaffected).
			ResetSweepCache()
			warm := opt
			warm.Workers = workers
			got, err := RunSweep(context.Background(), bench, false, warm)
			if err != nil {
				t.Fatalf("%s warm workers=%d: %v", bench, workers, err)
			}
			if !reflect.DeepEqual(fingerprint(ref), fingerprint(got)) {
				t.Errorf("%s: warm-clone sweep at Workers=%d differs from cold rebuild", bench, workers)
			}
		}
	}
}

// TestColdSweepKeyDistinct: cold and warm sweeps must never share a cache
// slot (in-process or on disk) — otherwise the equivalence test above would
// compare a computation against itself.
func TestColdSweepKeyDistinct(t *testing.T) {
	warm := tinyOptions()
	cold := warm
	cold.ColdSweep = true
	kw := sweepKeyFor("lbm", false, warm)
	kc := sweepKeyFor("lbm", false, cold)
	if kw == kc {
		t.Fatal("cold and warm sweeps share an in-process cache key")
	}
	if kw.filename() == kc.filename() {
		t.Fatalf("cold and warm sweeps share a disk-cache filename: %s", kw.filename())
	}
}
