package experiments

import (
	"context"
	"fmt"

	"mct/internal/cache"
	"mct/internal/rng"
	"mct/internal/trace"
	"mct/internal/wearlevel"
)

// WearLevelResult validates the Table 9 wear-leveling assumption for one
// benchmark.
type WearLevelResult struct {
	Benchmark string
	// Leveled is the avg/max wear ratio achieved by Start-Gap; the NVM
	// model assumes 0.95.
	Leveled float64
	// Unleveled is the ratio with no leveling (raw write histogram).
	Unleveled float64
	// OverheadFrac is the fraction of extra writes spent on gap movements.
	OverheadFrac float64
	Writes       uint64
}

// WearLevelValidation reproduces the assumption behind the lifetime model:
// it replays each benchmark's memory-write stream (LLC writebacks, folded
// onto one bank-sized region) through an actual Start-Gap leveler and
// reports the achieved avg/max wear ratio against the paper's assumed 95%,
// alongside the unleveled ratio and the gap-movement write overhead.
func WearLevelValidation(ctx context.Context, psi, regionLines int, opt Options) ([]WearLevelResult, *Report, error) {
	if psi <= 0 {
		psi = 8
	}
	if regionLines <= 0 {
		// Downscaled so the run completes several gap rotations — the
		// steady-state regime the paper's 95% figure describes (a real
		// bank reaches it over months; one rotation is (N+1)·ψ writes).
		regionLines = 1 << 10
	}
	var results []WearLevelResult
	tbl := Table{
		Title:  fmt.Sprintf("Wear-leveling validation: Start-Gap (ψ=%d, %d-line region) vs the assumed 0.95", psi, regionLines),
		Header: []string{"benchmark", "writes", "rotations", "leveled avg/max", "unleveled avg/max", "gap overhead"},
	}
	for _, bench := range opt.Benchmarks {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		spec, err := trace.ByName(bench)
		if err != nil {
			return nil, nil, err
		}
		llc, err := cache.New(opt.Sim.CacheBytes, opt.Sim.CacheWays)
		if err != nil {
			return nil, nil, err
		}
		gen := trace.NewGenerator(spec, rng.NewRand(opt.Seed))
		sg := wearlevel.New(regionLines, psi)
		raw := make([]uint64, regionLines+1)
		var writes uint64
		// Enough accesses to wear the folded region meaningfully; the
		// cache warms within the first region's worth of traffic.
		n := opt.Accesses * 10
		if n < 500_000 {
			n = 500_000
		}
		for i := 0; i < n; i++ {
			a := gen.Next()
			res := llc.Access(a.Addr, a.Write)
			if !res.Hit && res.Writeback {
				line := int((res.WritebackAddr / cache.LineBytes) % uint64(regionLines)) //mctlint:ignore cyclecast remainder is bounded by regionLines
				sg.OnWrite(line)
				raw[line]++
				writes++
			}
		}
		r := WearLevelResult{
			Benchmark: bench,
			Leveled:   sg.Efficiency(),
			Unleveled: wearlevel.UnleveledEfficiency(raw),
			Writes:    writes,
		}
		if writes > 0 {
			r.OverheadFrac = float64(sg.GapMoves()) / float64(writes)
		}
		results = append(results, r)
		rotations := float64(sg.GapMoves()) / float64(regionLines+1)
		tbl.AddRow(bench, fmt.Sprintf("%d", writes), f2(rotations), f3(r.Leveled), f3(r.Unleveled), f3(r.OverheadFrac))
		emitf(opt, "validate-wearlevel", bench, "wearlevel: %s done", bench)
	}
	rep := &Report{ID: "validate-wearlevel", Tables: []Table{tbl}}
	rep.Notes = append(rep.Notes,
		"the NVM lifetime model assumes 95% leveling efficiency (Table 9); Start-Gap approaches it given enough rotations, while unleveled efficiency collapses for workloads with hot lines")
	return results, rep, nil
}
