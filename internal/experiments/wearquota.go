package experiments

import (
	"context"
	"fmt"

	"mct/internal/config"
	"mct/internal/core"
	"mct/internal/ml"
	"mct/internal/rng"
	"mct/internal/sim"
	"mct/internal/stats"
	"mct/internal/trace"
)

// WearQuotaAblationResult holds the Figure 3 data for one benchmark: gboost
// prediction accuracy when the learning space excludes vs includes
// wear-quota configurations.
type WearQuotaAblationResult struct {
	Benchmark string
	// ExcludeWQ / IncludeWQ are R² per metric.
	ExcludeWQ [3]float64
	IncludeWQ [3]float64
}

// WearQuotaAblation reproduces Figure 3: including wear quota in the
// configuration space makes the targets harder to predict (the paper
// observes a 2–6% accuracy degradation), which is why MCT excludes it from
// learning and re-adds it as a fixup.
func WearQuotaAblation(ctx context.Context, samples, trials int, opt Options) ([]WearQuotaAblationResult, *Report, error) {
	if samples <= 0 {
		samples = 77
	}
	if trials <= 0 {
		trials = 3
	}
	var results []WearQuotaAblationResult
	tbl := Table{
		Title:  "Figure 3: gboost R² excluding vs including wear quota in the learning space",
		Header: []string{"benchmark", "ipc_excl", "ipc_incl", "life_excl", "life_incl", "en_excl", "en_incl"},
	}

	for _, bench := range opt.Benchmarks {
		emitf(opt, "fig3", bench, "fig3: %s", bench)
		swNo, err := RunSweep(ctx, bench, false, opt)
		if err != nil {
			return nil, nil, err
		}
		swWQ, err := RunSweep(ctx, bench, true, opt)
		if err != nil {
			return nil, nil, err
		}
		r := WearQuotaAblationResult{Benchmark: bench}
		// Fixed slice order (not a map literal): variant 0/1 must evaluate
		// in a deterministic sequence for the derived RNG streams and the
		// report rows to be reproducible.
		for variant, sw := range []*Sweep{swNo, swWQ} {
			X := sw.Vectors()
			rng := rng.Derive(opt.Seed, int64(variant))
			for t := 0; t < 3; t++ {
				truth := sw.Targets(core.Metric(t), true)
				var acc float64
				for trial := 0; trial < trials; trial++ {
					n := samples
					if n > len(X) {
						n = len(X)
					}
					perm := rng.Perm(len(X))[:n]
					trX := make([][]float64, n)
					trY := make([]float64, n)
					inTrain := map[int]bool{}
					for i, p := range perm {
						trX[i], trY[i] = X[p], truth[p]
						inTrain[p] = true
					}
					gb := ml.NewGBoost(ml.DefaultGBoostOptions())
					if err := gb.Fit(trX, trY); err != nil {
						return nil, nil, err
					}
					var pred, want []float64
					for i := range X {
						if inTrain[i] {
							continue
						}
						pred = append(pred, gb.Predict(X[i]))
						want = append(want, truth[i])
					}
					acc += stats.R2(pred, want) / float64(trials)
				}
				if variant == 0 {
					r.ExcludeWQ[t] = acc
				} else {
					r.IncludeWQ[t] = acc
				}
			}
		}
		results = append(results, r)
		tbl.AddRow(bench,
			f3(r.ExcludeWQ[0]), f3(r.IncludeWQ[0]),
			f3(r.ExcludeWQ[1]), f3(r.IncludeWQ[1]),
			f3(r.ExcludeWQ[2]), f3(r.IncludeWQ[2]))
	}
	rep := &Report{ID: "fig3", Tables: []Table{tbl}}
	rep.Notes = append(rep.Notes, "paper observes 2–6% degradation when wear-quota configurations enter the learning space")
	return results, rep, nil
}

// WearQuotaLearningResult compares MCT end-to-end with wear quota excluded
// from learning (fixup only, MCT's design) versus included in the learning
// space (§6.2.3).
type WearQuotaLearningResult struct {
	Benchmark string
	// Exclude: learning space without wear quota + fixup (MCT default).
	Exclude sim.Metrics
	// Include: learning space with wear-quota configurations.
	Include sim.Metrics
}

// WearQuotaLearning reproduces §6.2.3's end-to-end comparison on the given
// benchmarks (the paper reports lbm and leslie3d).
func WearQuotaLearning(ctx context.Context, benchmarks []string, totalInsts uint64, opt Options) ([]WearQuotaLearningResult, *Report, error) {
	var results []WearQuotaLearningResult
	tbl := Table{
		Title:  "§6.2.3: MCT testing-period metrics, wear quota excluded vs included in learning",
		Header: []string{"benchmark", "ipc_excl", "ipc_incl", "life_excl", "life_incl", "en_excl", "en_incl"},
	}
	for _, bench := range benchmarks {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		spec, err := trace.ByName(bench)
		if err != nil {
			return nil, nil, err
		}
		run := func(includeWQ bool) (sim.Metrics, error) {
			simOpt := opt.Sim
			simOpt.Seed = opt.Seed
			m, err := sim.NewMachine(spec, config.StaticBaseline(), simOpt)
			if err != nil {
				return sim.Metrics{}, err
			}
			ro := runtimeOptionsFor("gboost", totalInsts, opt.Seed)
			ro.Space = config.SpaceOptions{IncludeWearQuota: includeWQ, WearQuotaTarget: opt.LifetimeTarget}
			rt, err := core.New(m, core.Default(opt.LifetimeTarget), ro)
			if err != nil {
				return sim.Metrics{}, err
			}
			res, err := rt.Run(totalInsts)
			if err != nil {
				return sim.Metrics{}, err
			}
			return res.Testing, nil
		}
		excl, err := run(false)
		if err != nil {
			return nil, nil, err
		}
		incl, err := run(true)
		if err != nil {
			return nil, nil, err
		}
		results = append(results, WearQuotaLearningResult{Benchmark: bench, Exclude: excl, Include: incl})
		tbl.AddRow(bench, f3(excl.IPC), f3(incl.IPC),
			f2(excl.LifetimeYears), f2(incl.LifetimeYears),
			fmt.Sprintf("%.4g", excl.EnergyJ), fmt.Sprintf("%.4g", incl.EnergyJ))
		emitf(opt, "wq-learning", bench, "wq-learning: %s done", bench)
	}
	rep := &Report{ID: "wq-learning", Tables: []Table{tbl}}
	return results, rep, nil
}
