// Package floats provides the epsilon comparison helpers required by the
// floateq analyzer (cmd/mctlint): exact ==/!= between float operands is
// forbidden outside tests because accumulated rounding error silently flips
// such branches and shifts simulated IPC/lifetime/energy, breaking the
// reproduced figure shapes.
package floats

import "math"

// Tol is the default relative tolerance used by Eq. It is loose enough to
// absorb double-rounding across the simulator's accumulation paths and
// tight enough to separate the discrete knob levels of the configuration
// space (which differ by ≥1e-2).
const Tol = 1e-9

// Eq reports whether a and b are equal within a relative tolerance of Tol
// (absolute near zero). NaN equals nothing, mirroring IEEE ==.
func Eq(a, b float64) bool {
	return EqTol(a, b, Tol)
}

// EqTol is Eq with an explicit tolerance.
func EqTol(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol { // covers exact equality, ±Inf vs itself excepted below
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b //mctlint:ignore floateq infinities compare exactly by definition
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}
