package floats

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{0, 0, true},
		{0, 1e-12, true},
		{1, 1 + 1e-12, true},
		{1, 1 + 1e-6, false},
		{1.5, 2.5, false},
		{1e18, 1e18 * (1 + 1e-12), true},
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 1, false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.Inf(1), 1e300, false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%g, %g) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEqTol(t *testing.T) {
	if !EqTol(1.0, 1.05, 0.1) {
		t.Error("EqTol(1, 1.05, 0.1) should hold")
	}
	if EqTol(1.0, 1.5, 0.1) {
		t.Error("EqTol(1, 1.5, 0.1) should not hold")
	}
}
