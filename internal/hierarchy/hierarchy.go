// Package hierarchy defines the composable memory-hierarchy seam of the
// simulator: the contracts a tier must satisfy to slot into the machine's
// ordered pipeline. The machine no longer hard-codes "an LLC and an NVM
// controller" — it drives a front (CPU-coupled) cache tier and a chain of
// memory-side tiers, each of which forwards its misses and evictions to
// the tier below. The stock two-tier system wires the LLC directly onto
// the NVM controller; a hybrid system interposes the DRAM cache tier
// (internal/dram); future scenarios (software wear-leveling tiers,
// multi-tenant partitions) wrap the chain the same way.
//
// Contracts every tier implementation must honour (see DESIGN.md,
// "Memory hierarchy"):
//
//   - Determinism: identical call sequences produce identical state and
//     return values; no wall-clock, no map iteration on any result path.
//   - Hot path: Read/Write/EagerWrite/Drain run once per LLC miss in the
//     streaming inner loop and must not allocate at steady state (the
//     allochot audit and TestBatchedStepLoopZeroAllocs enforce this).
//   - Snapshot: tiers carry Clone (deep copy, shares nothing mutable)
//     and a gob-serializable snapshot form so machines embedding them
//     keep the Clone/Snapshot/Restore contract.
//   - Time: all times are in memory-controller cycles; methods taking a
//     `now` may return completion times in the future, and a Write may
//     return an acceptance time later than `now` to signal backpressure
//     that fully stalls the core.
package hierarchy

// Tier is a named component of the memory hierarchy. Names are stable
// lowercase identifiers ("llc", "dram", "nvm") used in diagnostics and as
// obs metric-family prefixes.
type Tier interface {
	Name() string
}

// Mem is the memory-side tier contract: everything below the front cache
// speaks this interface. It is exactly the request surface the LLC layer
// generates — demand fills, dirty writebacks, opportunistic eager
// writebacks — plus the end-of-run drain. A caching Mem tier (the DRAM
// cache) absorbs what it can and forwards the rest to the tier below; the
// NVM controller is the terminal implementation.
type Mem interface {
	Tier

	// Read services a demand fill at time now and returns the cycle at
	// which the data has been delivered.
	Read(addr, now uint64) uint64

	// Write accepts a dirty writeback at time now and returns the cycle
	// at which it was accepted; a return later than now signals queue
	// backpressure (the core stalls until then).
	Write(addr, now uint64) uint64

	// EagerWrite offers an opportunistic (eager mellow) writeback; false
	// means the tier cannot take it now and the caller keeps the line
	// dirty.
	EagerWrite(addr, now uint64) bool

	// EagerSpace reports whether an EagerWrite could currently be
	// accepted; callers must check it before harvesting a victim, since
	// harvesting marks the line clean.
	EagerSpace() bool

	// Drain retires all buffered work (queued writes, dirty cached
	// lines) so its wear and energy are charged to the run, returning
	// the final time.
	Drain(now uint64) uint64
}
