// Package mat provides the small dense linear-algebra kernels used by the
// learning stack: row-major matrices, matrix products, Cholesky
// factorization, and triangular / symmetric positive-definite solves.
//
// The package is deliberately minimal — MCT's models never exceed a few
// hundred rows and ~65 columns, so simple O(n³) dense algorithms are both
// adequate and dependency-free.
package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotSPD is returned when a Cholesky factorization is attempted on a
// matrix that is not symmetric positive definite.
var ErrNotSPD = errors.New("mat: matrix is not symmetric positive definite")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("mat: dimension mismatch")

// Dense is a row-major dense matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a rows×cols zero matrix.
// It panics if rows or cols is not positive.
func NewDense(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseData wraps data (row-major, length rows*cols) in a Dense without
// copying. It panics on a length mismatch.
func NewDenseData(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: data}
}

// Dims returns the matrix dimensions.
func (m *Dense) Dims() (rows, cols int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy of the matrix.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the product a*b.
func Mul(a, b *Dense) (*Dense, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: (%dx%d)*(%dx%d)", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	c := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c, nil
}

// MulVec returns the matrix-vector product a*x.
func MulVec(a *Dense, x []float64) ([]float64, error) {
	if a.cols != len(x) {
		return nil, fmt.Errorf("%w: (%dx%d)*vec(%d)", ErrShape, a.rows, a.cols, len(x))
	}
	y := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y, nil
}

// AtA returns the Gram matrix aᵀa (symmetric, cols×cols).
func AtA(a *Dense) *Dense {
	g := NewDense(a.cols, a.cols)
	for r := 0; r < a.rows; r++ {
		row := a.Row(r)
		for i, vi := range row {
			if vi == 0 {
				continue
			}
			grow := g.Row(i)
			for j := i; j < len(row); j++ {
				grow[j] += vi * row[j]
			}
		}
	}
	// Mirror the upper triangle into the lower triangle.
	for i := 0; i < g.rows; i++ {
		for j := i + 1; j < g.cols; j++ {
			g.data[j*g.cols+i] = g.data[i*g.cols+j]
		}
	}
	return g
}

// AtVec returns aᵀy.
func AtVec(a *Dense, y []float64) ([]float64, error) {
	if a.rows != len(y) {
		return nil, fmt.Errorf("%w: (%dx%d)ᵀ*vec(%d)", ErrShape, a.rows, a.cols, len(y))
	}
	out := make([]float64, a.cols)
	for r := 0; r < a.rows; r++ {
		row := a.Row(r)
		yv := y[r]
		if yv == 0 {
			continue
		}
		for j, v := range row {
			out[j] += v * yv
		}
	}
	return out, nil
}

// Cholesky computes the lower-triangular factor L with m = L·Lᵀ.
// m must be symmetric positive definite.
func Cholesky(m *Dense) (*Dense, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("%w: cholesky of %dx%d", ErrShape, m.rows, m.cols)
	}
	n := m.rows
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 || math.IsNaN(sum) {
					return nil, ErrNotSPD
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves m·x = b given the lower Cholesky factor l of m.
func SolveCholesky(l *Dense, b []float64) ([]float64, error) {
	n := l.rows
	if len(b) != n {
		return nil, fmt.Errorf("%w: solve %dx%d with rhs %d", ErrShape, n, n, len(b))
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// SolveSPD solves m·x = b for symmetric positive-definite m.
func SolveSPD(m *Dense, b []float64) ([]float64, error) {
	l, err := Cholesky(m)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, b)
}

// SolveRidge solves the regularized least-squares problem
// (XᵀX + λI)·w = Xᵀy, the workhorse of the regression predictors.
// λ must be non-negative; a strictly positive λ guarantees solvability.
func SolveRidge(x *Dense, y []float64, lambda float64) ([]float64, error) {
	if x.rows != len(y) {
		return nil, fmt.Errorf("%w: %d rows vs %d targets", ErrShape, x.rows, len(y))
	}
	if lambda < 0 {
		return nil, fmt.Errorf("mat: negative ridge penalty %g", lambda)
	}
	g := AtA(x)
	for i := 0; i < g.rows; i++ {
		g.data[i*g.cols+i] += lambda
	}
	rhs, err := AtVec(x, y)
	if err != nil {
		return nil, err
	}
	w, err := SolveSPD(g, rhs)
	if err != nil {
		// The Gram matrix can be singular when columns are collinear and
		// lambda is zero; retry with a tiny jitter to stay useful.
		for i := 0; i < g.rows; i++ {
			g.data[i*g.cols+i] += 1e-8
		}
		return SolveSPD(g, rhs)
	}
	return w, nil
}

// Inverse returns the inverse of a symmetric positive-definite matrix.
func Inverse(m *Dense) (*Dense, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("%w: inverse of %dx%d", ErrShape, m.rows, m.cols)
	}
	l, err := Cholesky(m)
	if err != nil {
		return nil, err
	}
	n := m.rows
	inv := NewDense(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col, err := SolveCholesky(l, e)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Dot returns the inner product of two equal-length vectors.
// It panics on length mismatch, mirroring the behaviour of copy-style
// builtins for programmer errors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: dot of lengths %d and %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// AddScaled computes dst += alpha*src in place.
// It panics on length mismatch.
func AddScaled(dst []float64, alpha float64, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("mat: addscaled of lengths %d and %d", len(dst), len(src)))
	}
	for i, v := range src {
		dst[i] += alpha * v
	}
}
