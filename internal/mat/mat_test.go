package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewDensePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0x3 matrix")
		}
	}()
	NewDense(0, 3)
}

func TestNewDenseDataPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short data")
		}
	}()
	NewDenseData(2, 2, []float64{1, 2, 3})
}

func TestAtSetRow(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 5)
	if got := m.At(1, 2); got != 5 {
		t.Fatalf("At(1,2) = %v, want 5", got)
	}
	row := m.Row(1)
	if row[2] != 5 {
		t.Fatalf("Row(1)[2] = %v, want 5", row[2])
	}
	row[0] = 7 // views alias
	if m.At(1, 0) != 7 {
		t.Fatal("Row must be a view, not a copy")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone must not alias")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	r, c := tr.Dims()
	if r != 3 || c != 2 {
		t.Fatalf("T dims = %dx%d, want 3x2", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{5, 6, 7, 8})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.data[i] != w {
			t.Fatalf("Mul[%d] = %v, want %v", i, c.data[i], w)
		}
	}
}

func TestMulShapeError(t *testing.T) {
	a := NewDense(2, 3)
	b := NewDense(2, 3)
	if _, err := Mul(a, b); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestMulVecKnown(t *testing.T) {
	a := NewDenseData(2, 3, []float64{1, 0, 2, 0, 1, -1})
	y, err := MulVec(a, []float64{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 13 || y[1] != -1 {
		t.Fatalf("MulVec = %v, want [13 -1]", y)
	}
	if _, err := MulVec(a, []float64{1, 2}); err == nil {
		t.Fatal("expected shape error")
	}
}

func randomSPD(rng *rand.Rand, n int) *Dense {
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	spd := AtA(a)
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(n)) // well-conditioned
	}
	return spd
}

func TestCholeskyReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(8)
		m := randomSPD(rng, n)
		l, err := Cholesky(m)
		if err != nil {
			t.Fatal(err)
		}
		// L Lᵀ == m
		llt, err := Mul(l, l.T())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if !almostEq(llt.At(i, j), m.At(i, j), 1e-8*(1+math.Abs(m.At(i, j)))) {
					t.Fatalf("LLᵀ(%d,%d) = %v, want %v", i, j, llt.At(i, j), m.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	m := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // indefinite
	if _, err := Cholesky(m); err == nil {
		t.Fatal("expected ErrNotSPD")
	}
	if _, err := Cholesky(NewDense(2, 3)); err == nil {
		t.Fatal("expected shape error")
	}
}

// Property: solving A·x = b recovers x for random SPD systems.
func TestSolveSPDRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(10)
		a := randomSPD(r, n)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b, err := MulVec(a, x)
		if err != nil {
			return false
		}
		got, err := SolveSPD(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-6*(1+math.Abs(x[i]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInverseIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomSPD(rng, 5)
	inv, err := Inverse(m)
	if err != nil {
		t.Fatal(err)
	}
	id, err := Mul(m, inv)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(id.At(i, j), want, 1e-8) {
				t.Fatalf("M·M⁻¹(%d,%d) = %v, want %v", i, j, id.At(i, j), want)
			}
		}
	}
}

func TestSolveRidgeRecoversWeights(t *testing.T) {
	// y = 2x₀ - 3x₁ exactly; ridge with tiny lambda must recover it.
	rng := rand.New(rand.NewSource(4))
	n, d := 50, 2
	x := NewDense(n, d)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y[i] = 2*a - 3*b
	}
	w, err := SolveRidge(x, y, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(w[0], 2, 1e-4) || !almostEq(w[1], -3, 1e-4) {
		t.Fatalf("ridge weights = %v, want [2 -3]", w)
	}
}

func TestSolveRidgeErrors(t *testing.T) {
	x := NewDense(3, 2)
	if _, err := SolveRidge(x, []float64{1, 2}, 0.1); err == nil {
		t.Fatal("expected shape error for mismatched targets")
	}
	if _, err := SolveRidge(x, []float64{1, 2, 3}, -1); err == nil {
		t.Fatal("expected error for negative lambda")
	}
}

func TestSolveRidgeHandlesCollinear(t *testing.T) {
	// Duplicate columns: plain normal equations are singular; the ridge
	// fallback must still produce a finite solution.
	n := 20
	x := NewDense(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i)
		x.Set(i, 0, v)
		x.Set(i, 1, v)
		y[i] = 4 * v
	}
	w, err := SolveRidge(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, wi := range w {
		if math.IsNaN(wi) || math.IsInf(wi, 0) {
			t.Fatalf("non-finite weight %v", w)
		}
	}
	// Combined effect must reproduce the function.
	if !almostEq(w[0]+w[1], 4, 1e-2) {
		t.Fatalf("w0+w1 = %v, want 4", w[0]+w[1])
	}
}

func TestDotNormAddScaled(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-12) {
		t.Fatal("Norm2 wrong")
	}
	dst := []float64{1, 1}
	AddScaled(dst, 2, []float64{3, 4})
	if dst[0] != 7 || dst[1] != 9 {
		t.Fatalf("AddScaled = %v, want [7 9]", dst)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched Dot")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAtAMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := NewDense(7, 4)
	for i := 0; i < 7; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	g := AtA(a)
	explicit, err := Mul(a.T(), a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if !almostEq(g.At(i, j), explicit.At(i, j), 1e-10) {
				t.Fatalf("AtA(%d,%d) = %v, want %v", i, j, g.At(i, j), explicit.At(i, j))
			}
		}
	}
}

func TestAtVecMatchesExplicit(t *testing.T) {
	a := NewDenseData(3, 2, []float64{1, 2, 3, 4, 5, 6})
	y := []float64{1, -1, 2}
	got, err := AtVec(a, y)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1-3+10 || got[1] != 2-4+12 {
		t.Fatalf("AtVec = %v", got)
	}
	if _, err := AtVec(a, []float64{1}); err == nil {
		t.Fatal("expected shape error")
	}
}
