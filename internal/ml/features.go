package ml

import "fmt"

// ExpandQuadratic maps a d-dimensional vector to its quadratic feature
// expansion: d linear terms, d square terms, and d(d-1)/2 cross terms — for
// d=10 the 65-dimensional space of §4.3.1.
func ExpandQuadratic(x []float64) []float64 {
	d := len(x)
	out := make([]float64, 0, QuadraticLen(d))
	out = append(out, x...)
	for i := 0; i < d; i++ {
		out = append(out, x[i]*x[i])
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			out = append(out, x[i]*x[j])
		}
	}
	return out
}

// QuadraticLen returns the expanded dimensionality for d input features:
// 2d + d(d-1)/2.
func QuadraticLen(d int) int { return 2*d + d*(d-1)/2 }

// ExpandQuadraticAll expands every row.
func ExpandQuadraticAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = ExpandQuadratic(row)
	}
	return out
}

// QuadraticNames returns human-readable names for the expanded features
// given base feature names: "f", "f^2" and "f*g", in expansion order.
func QuadraticNames(base []string) []string {
	d := len(base)
	out := make([]string, 0, QuadraticLen(d))
	out = append(out, base...)
	for i := 0; i < d; i++ {
		out = append(out, fmt.Sprintf("%s^2", base[i]))
	}
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			out = append(out, fmt.Sprintf("%s*%s", base[i], base[j]))
		}
	}
	return out
}
