package ml

import (
	"math/rand"

	"mct/internal/rng"
)

// GBoostOptions configures the gradient-boosting ensemble.
type GBoostOptions struct {
	Trees     int     // number of boosting rounds
	Depth     int     // max tree depth
	Shrinkage float64 // learning rate
	Subsample float64 // stochastic row subsampling fraction (Friedman 2002)
	MinLeaf   int
	// Rand, when non-nil, is the injected subsampling source; otherwise
	// each Fit derives a fresh deterministic stream from Seed, so refits
	// with identical options reproduce identical ensembles.
	Rand *rand.Rand
	Seed int64
}

// DefaultGBoostOptions returns the configuration used by MCT's gradient
// boosting predictor.
func DefaultGBoostOptions() GBoostOptions {
	return GBoostOptions{Trees: 150, Depth: 3, Shrinkage: 0.1, Subsample: 0.8, MinLeaf: 2, Seed: 7}
}

// GBoost is stochastic gradient boosting with least-squares loss over
// regression trees (§4.3: "a state-of-art boosting algorithm for learning
// regression models"). For squared loss, each round fits a tree to the
// current residuals.
type GBoost struct {
	opt    GBoostOptions
	trees  []*regTree
	bias   float64
	fitted bool
}

// NewGBoost returns a gradient-boosting predictor.
func NewGBoost(opt GBoostOptions) *GBoost {
	if opt.Trees <= 0 {
		opt.Trees = 100
	}
	if opt.Depth <= 0 {
		opt.Depth = 3
	}
	if opt.Shrinkage <= 0 || opt.Shrinkage > 1 {
		opt.Shrinkage = 0.1
	}
	if opt.Subsample <= 0 || opt.Subsample > 1 {
		opt.Subsample = 1
	}
	if opt.MinLeaf <= 0 {
		opt.MinLeaf = 1
	}
	return &GBoost{opt: opt}
}

// Name implements Predictor.
func (g *GBoost) Name() string { return NameGBoost }

// Fit implements Predictor.
func (g *GBoost) Fit(X [][]float64, y []float64) error {
	if err := checkData(X, y); err != nil {
		return err
	}
	n := len(X)
	r := g.opt.Rand
	if r == nil {
		r = rng.New(g.opt.Seed)
	}

	var bias float64
	for _, v := range y {
		bias += v
	}
	bias /= float64(n)

	resid := make([]float64, n)
	for i, v := range y {
		resid[i] = v - bias
	}

	topt := treeOptions{maxDepth: g.opt.Depth, minLeaf: g.opt.MinLeaf}
	trees := make([]*regTree, 0, g.opt.Trees)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}

	sampleSize := int(g.opt.Subsample * float64(n))
	if sampleSize < 2 {
		sampleSize = n
	}

	for round := 0; round < g.opt.Trees; round++ {
		idx := all
		if sampleSize < n {
			perm := r.Perm(n)
			idx = perm[:sampleSize]
		}
		t := fitTree(X, resid, idx, topt, 0)
		trees = append(trees, t)
		for i := 0; i < n; i++ {
			resid[i] -= g.opt.Shrinkage * t.predict(X[i])
		}
	}
	g.trees = trees
	g.bias = bias
	g.fitted = true
	return nil
}

// Predict implements Predictor.
func (g *GBoost) Predict(x []float64) float64 {
	if !g.fitted {
		return 0
	}
	s := g.bias
	for _, t := range g.trees {
		s += g.opt.Shrinkage * t.predict(x)
	}
	return s
}
