package ml

import (
	"fmt"

	"mct/internal/mat"
)

// HBayes is a hierarchical Bayesian multi-task linear model in the spirit
// of LEO (§4.3, "Hierarchical Bayesian models"): per-application weight
// vectors w_t share a Gaussian prior N(μ, Σ) learned from offline
// applications by EM. The online Fit computes the posterior weights for the
// current application under that prior, so a handful of samples suffices
// when the new application resembles the training set.
//
// As in the paper, it is by far the most expensive predictor and requires
// offline data — MCT does not deploy it, but the model-comparison
// experiment (Table 7 / Figure 2) evaluates it.
type HBayes struct {
	emIters int

	d      int // feature width incl. bias
	mu     []float64
	sigma  *mat.Dense // prior covariance
	noise  float64    // observation variance σ²
	w      []float64  // posterior mean for the current task
	fitted bool
}

// NewHierarchicalBayes learns the shared prior from offline per-application
// datasets (raw feature rows; a bias column is appended internally).
func NewHierarchicalBayes(offline []Dataset, emIters int) (*HBayes, error) {
	if len(offline) == 0 {
		return nil, fmt.Errorf("ml: hierarchical Bayes needs offline data")
	}
	if emIters <= 0 {
		emIters = 20
	}
	h := &HBayes{emIters: emIters}
	if err := h.learnPrior(offline); err != nil {
		return nil, err
	}
	return h, nil
}

// Name implements Predictor.
func (h *HBayes) Name() string { return NameHBayes }

func withBias(x []float64) []float64 {
	out := make([]float64, len(x)+1)
	copy(out, x)
	out[len(x)] = 1
	return out
}

func designOf(X [][]float64) *mat.Dense {
	n := len(X)
	d := len(X[0]) + 1
	flat := make([]float64, 0, n*d)
	for _, row := range X {
		flat = append(flat, withBias(row)...)
	}
	return mat.NewDenseData(n, d, flat)
}

// learnPrior runs EM over the offline tasks.
func (h *HBayes) learnPrior(offline []Dataset) error {
	d := len(offline[0].X[0]) + 1
	h.d = d
	T := len(offline)

	designs := make([]*mat.Dense, T)
	var totalN int
	for t, ds := range offline {
		if err := checkData(ds.X, ds.Y); err != nil {
			return err
		}
		if len(ds.X[0])+1 != d {
			return fmt.Errorf("%w: task %d width mismatch", ErrBadData, t)
		}
		designs[t] = designOf(ds.X)
		totalN += len(ds.Y)
	}

	// Initialize: μ=0, Σ=I, σ²=var(y).
	mu := make([]float64, d)
	sigma := identity(d)
	noise := 1.0

	for iter := 0; iter < h.emIters; iter++ {
		sigmaInv, err := mat.Inverse(sigma)
		if err != nil {
			// Re-condition a collapsing covariance.
			for i := 0; i < d; i++ {
				sigma.Set(i, i, sigma.At(i, i)+1e-6)
			}
			sigmaInv, err = mat.Inverse(sigma)
			if err != nil {
				return err
			}
		}

		means := make([][]float64, T)
		covs := make([]*mat.Dense, T)
		var rss float64 // residual + trace terms for σ² update

		for t, ds := range offline {
			m, v, err := posterior(designs[t], ds.Y, mu, sigmaInv, noise)
			if err != nil {
				return err
			}
			means[t] = m
			covs[t] = v
			pred, err := mat.MulVec(designs[t], m)
			if err != nil {
				return err
			}
			for i, p := range pred {
				r := ds.Y[i] - p
				rss += r * r
			}
			// tr(X V Xᵀ) = Σ_i x_iᵀ V x_i
			n, _ := designs[t].Dims()
			for i := 0; i < n; i++ {
				row := designs[t].Row(i)
				vx, _ := mat.MulVec(v, row)
				rss += mat.Dot(row, vx)
			}
		}

		// M-step.
		newMu := make([]float64, d)
		for _, m := range means {
			mat.AddScaled(newMu, 1/float64(T), m)
		}
		newSigma := mat.NewDense(d, d)
		for t := range means {
			for i := 0; i < d; i++ {
				di := means[t][i] - newMu[i]
				for j := 0; j < d; j++ {
					dj := means[t][j] - newMu[j]
					newSigma.Set(i, j, newSigma.At(i, j)+(covs[t].At(i, j)+di*dj)/float64(T))
				}
			}
		}
		// Regularize the covariance diagonal for stability.
		for i := 0; i < d; i++ {
			newSigma.Set(i, i, newSigma.At(i, i)+1e-6)
		}
		mu = newMu
		sigma = newSigma
		noise = rss / float64(totalN)
		if noise < 1e-9 {
			noise = 1e-9
		}
	}

	h.mu = mu
	h.sigma = sigma
	h.noise = noise
	return nil
}

// posterior returns the Gaussian posterior (mean, covariance) of task
// weights given design X, targets y, prior mean mu / inverse covariance,
// and noise variance.
func posterior(X *mat.Dense, y []float64, mu []float64, sigmaInv *mat.Dense, noise float64) ([]float64, *mat.Dense, error) {
	_, d := X.Dims()
	prec := mat.AtA(X)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			prec.Set(i, j, prec.At(i, j)/noise+sigmaInv.At(i, j))
		}
	}
	v, err := mat.Inverse(prec)
	if err != nil {
		return nil, nil, err
	}
	xty, err := mat.AtVec(X, y)
	if err != nil {
		return nil, nil, err
	}
	simu, err := mat.MulVec(sigmaInv, mu)
	if err != nil {
		return nil, nil, err
	}
	rhs := make([]float64, d)
	for i := range rhs {
		rhs[i] = xty[i]/noise + simu[i]
	}
	m, err := mat.MulVec(v, rhs)
	if err != nil {
		return nil, nil, err
	}
	return m, v, nil
}

func identity(d int) *mat.Dense {
	m := mat.NewDense(d, d)
	for i := 0; i < d; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Fit implements Predictor: posterior inference for the current
// application's weights under the learned prior.
func (h *HBayes) Fit(X [][]float64, y []float64) error {
	if err := checkData(X, y); err != nil {
		return err
	}
	if len(X[0])+1 != h.d {
		return fmt.Errorf("%w: width %d, prior expects %d", ErrBadData, len(X[0]), h.d-1)
	}
	sigmaInv, err := mat.Inverse(h.sigma)
	if err != nil {
		return err
	}
	m, _, err := posterior(designOf(X), y, h.mu, sigmaInv, h.noise)
	if err != nil {
		return err
	}
	h.w = m
	h.fitted = true
	return nil
}

// Predict implements Predictor.
func (h *HBayes) Predict(x []float64) float64 {
	if !h.fitted {
		return 0
	}
	return mat.Dot(h.w, withBias(x))
}
