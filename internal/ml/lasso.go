package ml

import "math"

// DefaultLassoLambda is the regularization strength used by the
// experiments. Targets are normalized to the baseline configuration
// (≈ O(1) values), so a single default works across objectives.
const DefaultLassoLambda = 0.01

// Lasso is L1-regularized least squares fitted by cyclic coordinate descent
// on standardized features ("the least absolute shrinkage and selection
// operator", §4.3). It drives the coefficients of unimportant features to
// exactly zero — the paper uses this both to speed up convergence and to
// identify the three primary features (§4.4, Figure 4a).
type Lasso struct {
	lambda  float64
	expand  bool
	maxIter int
	tol     float64

	std    *Standardizer
	w      []float64
	bias   float64
	fitted bool
}

// NewLinearLasso returns "linear model, lasso regularization" (Table 7).
func NewLinearLasso(lambda float64) *Lasso {
	return &Lasso{lambda: lambda, maxIter: 1000, tol: 1e-7}
}

// NewQuadraticLasso returns "quadratic model, lasso regularization"
// (Table 7) — one of the two models MCT deploys.
func NewQuadraticLasso(lambda float64) *Lasso {
	return &Lasso{lambda: lambda, expand: true, maxIter: 1000, tol: 1e-7}
}

// Name implements Predictor.
func (l *Lasso) Name() string {
	if l.expand {
		return NameQuadraticLasso
	}
	return NameLinearLasso
}

func softThreshold(rho, lambda float64) float64 {
	switch {
	case rho > lambda:
		return rho - lambda
	case rho < -lambda:
		return rho + lambda
	default:
		return 0
	}
}

// Fit implements Predictor via cyclic coordinate descent.
func (l *Lasso) Fit(X [][]float64, y []float64) error {
	if err := checkData(X, y); err != nil {
		return err
	}
	if l.expand {
		X = ExpandQuadraticAll(X)
	}
	l.std = FitStandardizer(X)
	Z := l.std.ApplyAll(X)

	n := len(Z)
	d := len(Z[0])

	var ybar float64
	for _, v := range y {
		ybar += v
	}
	ybar /= float64(n)

	// Residuals start as centered targets (all weights zero).
	w := make([]float64, d)
	r := make([]float64, n)
	for i, v := range y {
		r[i] = v - ybar
	}

	// Column squared norms.
	colSq := make([]float64, d)
	for _, row := range Z {
		for j, v := range row {
			colSq[j] += v * v
		}
	}
	nl := l.lambda * float64(n)

	for iter := 0; iter < l.maxIter; iter++ {
		var maxDelta float64
		for j := 0; j < d; j++ {
			if colSq[j] == 0 {
				continue
			}
			// rho = Σ_i z_ij (r_i + z_ij w_j)
			var rho float64
			for i := 0; i < n; i++ {
				rho += Z[i][j] * r[i]
			}
			rho += colSq[j] * w[j]
			wNew := softThreshold(rho, nl) / colSq[j]
			if wNew != w[j] { //mctlint:ignore floateq exact no-op guard: epsilon would skip real (tiny) coordinate updates and change convergence
				delta := wNew - w[j]
				for i := 0; i < n; i++ {
					r[i] -= delta * Z[i][j]
				}
				if ad := math.Abs(delta); ad > maxDelta {
					maxDelta = ad
				}
				w[j] = wNew
			}
		}
		if maxDelta < l.tol {
			break
		}
	}
	l.w = w
	l.bias = ybar
	l.fitted = true
	return nil
}

// Predict implements Predictor.
func (l *Lasso) Predict(x []float64) float64 {
	if !l.fitted {
		return 0
	}
	if l.expand {
		x = ExpandQuadratic(x)
	}
	z := l.std.Apply(x)
	var s float64
	for j, v := range z {
		s += l.w[j] * v
	}
	return l.bias + s
}

// Coefficients returns the fitted weights on standardized features and the
// intercept (nil before fitting). Zero entries are features lasso deemed
// unimportant.
func (l *Lasso) Coefficients() (w []float64, bias float64) {
	if !l.fitted {
		return nil, 0
	}
	return append([]float64(nil), l.w...), l.bias
}

// SelectedFeatures returns the indices of features with non-zero
// coefficients, i.e. the features lasso selected.
func (l *Lasso) SelectedFeatures() []int {
	var idx []int
	for j, v := range l.w {
		if v != 0 {
			idx = append(idx, j)
		}
	}
	return idx
}
