package ml

import (
	"mct/internal/mat"
)

// Linear is ordinary (or ridge-stabilized) least-squares regression on
// standardized features with an intercept. Lambda 0 gives plain OLS with a
// tiny numerical jitter to keep collinear designs solvable.
type Linear struct {
	lambda float64
	expand bool // apply quadratic expansion before fitting

	std    *Standardizer
	w      []float64
	bias   float64
	fitted bool
}

// NewLinear returns a linear-model predictor ("linear model, no
// regularization" in Table 7; a positive lambda makes it ridge).
func NewLinear(lambda float64) *Linear { return &Linear{lambda: lambda} }

// NewQuadratic returns a quadratic-model predictor without regularization
// ("quadratic model, no regularization" in Table 7): quadratic feature
// expansion followed by least squares.
func NewQuadratic(lambda float64) *Linear { return &Linear{lambda: lambda, expand: true} }

// Name implements Predictor.
func (l *Linear) Name() string {
	if l.expand {
		return NameQuadratic
	}
	return NameLinear
}

// Fit implements Predictor.
func (l *Linear) Fit(X [][]float64, y []float64) error {
	if err := checkData(X, y); err != nil {
		return err
	}
	if l.expand {
		X = ExpandQuadraticAll(X)
	}
	l.std = FitStandardizer(X)
	Z := l.std.ApplyAll(X)

	// Center the target; the intercept absorbs the mean.
	var ybar float64
	for _, v := range y {
		ybar += v
	}
	ybar /= float64(len(y))
	yc := make([]float64, len(y))
	for i, v := range y {
		yc[i] = v - ybar
	}

	d := len(Z[0])
	flat := make([]float64, 0, len(Z)*d)
	for _, row := range Z {
		flat = append(flat, row...)
	}
	xm := mat.NewDenseData(len(Z), d, flat)
	lambda := l.lambda
	if lambda <= 0 {
		lambda = 1e-6 // numerical stabilizer for exact-OLS collinearity
	}
	w, err := mat.SolveRidge(xm, yc, lambda)
	if err != nil {
		return err
	}
	l.w = w
	l.bias = ybar
	l.fitted = true
	return nil
}

// Predict implements Predictor.
func (l *Linear) Predict(x []float64) float64 {
	if !l.fitted {
		return 0
	}
	if l.expand {
		x = ExpandQuadratic(x)
	}
	z := l.std.Apply(x)
	return l.bias + mat.Dot(l.w, z)
}

// Coefficients returns the fitted weights on standardized features (useful
// for feature-importance rankings) and the intercept. It returns nil before
// fitting.
func (l *Linear) Coefficients() (w []float64, bias float64) {
	if !l.fitted {
		return nil, 0
	}
	return append([]float64(nil), l.w...), l.bias
}
