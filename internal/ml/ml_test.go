package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mct/internal/stats"
)

// synth generates (X, y) from a target function with optional noise.
func synth(rng *rand.Rand, n, d int, f func([]float64) float64, noise float64) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := make([]float64, d)
		for j := range x {
			x[j] = rng.NormFloat64() * 2
		}
		X[i] = x
		y[i] = f(x) + rng.NormFloat64()*noise
	}
	return X, y
}

func testSet(rng *rand.Rand, n, d int, f func([]float64) float64) ([][]float64, []float64) {
	return synth(rng, n, d, f, 0)
}

func r2Of(p Predictor, X [][]float64, y []float64) float64 {
	pred := make([]float64, len(X))
	for i := range X {
		pred[i] = p.Predict(X[i])
	}
	return stats.R2(pred, y)
}

func TestCheckData(t *testing.T) {
	if err := checkData(nil, nil); err == nil {
		t.Fatal("empty data must fail")
	}
	if err := checkData([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if err := checkData([][]float64{{}}, []float64{1}); err == nil {
		t.Fatal("empty rows must fail")
	}
	if err := checkData([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Fatal("ragged rows must fail")
	}
}

func TestLinearRecoversLinearFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(x []float64) float64 { return 3*x[0] - 2*x[1] + 0.5*x[2] + 7 }
	X, y := synth(rng, 60, 3, f, 0)
	lin := NewLinear(0)
	if err := lin.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	tx, ty := testSet(rng, 40, 3, f)
	if acc := r2Of(lin, tx, ty); acc < 0.999 {
		t.Fatalf("linear R² = %v on a linear function", acc)
	}
}

func TestQuadraticRecoversQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(x []float64) float64 { return x[0]*x[0] - 2*x[0]*x[1] + x[1] + 1 }
	X, y := synth(rng, 80, 3, f, 0)

	lin := NewLinear(0)
	quad := NewQuadratic(0)
	if err := lin.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := quad.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	tx, ty := testSet(rng, 60, 3, f)
	la, qa := r2Of(lin, tx, ty), r2Of(quad, tx, ty)
	if qa < 0.999 {
		t.Fatalf("quadratic R² = %v on a quadratic function", qa)
	}
	if qa <= la {
		t.Fatalf("quadratic (%v) must beat linear (%v) on a quadratic function", qa, la)
	}
}

func TestLassoSelectsSparseFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Only features 0 and 3 matter out of 8.
	f := func(x []float64) float64 { return 5*x[0] - 4*x[3] }
	X, y := synth(rng, 100, 8, f, 0.01)
	lasso := NewLinearLasso(0.05)
	if err := lasso.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	w, _ := lasso.Coefficients()
	for j, v := range w {
		if j == 0 || j == 3 {
			if v == 0 {
				t.Fatalf("important feature %d zeroed", j)
			}
			continue
		}
		if math.Abs(v) > 0.1 {
			t.Fatalf("irrelevant feature %d has weight %v", j, v)
		}
	}
	sel := lasso.SelectedFeatures()
	if len(sel) > 4 {
		t.Fatalf("lasso kept too many features: %v", sel)
	}
}

func TestLassoShrinksWithLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(x []float64) float64 { return 2 * x[0] }
	X, y := synth(rng, 50, 4, f, 0.1)
	small := NewLinearLasso(0.001)
	big := NewLinearLasso(1.0)
	if err := small.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := big.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	ws, _ := small.Coefficients()
	wb, _ := big.Coefficients()
	var ns, nb float64
	for j := range ws {
		ns += math.Abs(ws[j])
		nb += math.Abs(wb[j])
	}
	if nb >= ns {
		t.Fatalf("larger lambda must shrink weights: %v vs %v", nb, ns)
	}
}

func TestQuadraticLassoConvergesFasterThanPlainQuadratic(t *testing.T) {
	// With few samples relative to the 65-dim expansion, regularization
	// must help — the paper's Figure 2 observation.
	rng := rand.New(rand.NewSource(5))
	f := func(x []float64) float64 {
		return x[0]*x[0] - x[1]*x[2] + 2*x[3] - x[4]
	}
	X, y := synth(rng, 30, 10, f, 0.05) // 30 samples, 65 expanded features
	tx, ty := testSet(rng, 200, 10, f)

	plain := NewQuadratic(0)
	lasso := NewQuadraticLasso(0.01)
	if err := plain.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := lasso.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pa, la := r2Of(plain, tx, ty), r2Of(lasso, tx, ty)
	if la <= pa {
		t.Fatalf("under-determined quadratic: lasso (%v) must beat plain (%v)", la, pa)
	}
}

func TestGBoostFitsNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// A step function linear models cannot express.
	f := func(x []float64) float64 {
		if x[0] > 0 && x[1] > 0 {
			return 5
		}
		if x[0] > 0 {
			return 2
		}
		return -3
	}
	X, y := synth(rng, 200, 4, f, 0)
	tx, ty := testSet(rng, 100, 4, f)
	gb := NewGBoost(DefaultGBoostOptions())
	lin := NewLinear(0)
	if err := gb.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := lin.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	ga, la := r2Of(gb, tx, ty), r2Of(lin, tx, ty)
	if ga < 0.95 {
		t.Fatalf("gboost R² = %v on a step function", ga)
	}
	if ga <= la {
		t.Fatalf("gboost (%v) must beat linear (%v) on a step function", ga, la)
	}
}

func TestGBoostDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(x []float64) float64 { return x[0] * x[1] }
	X, y := synth(rng, 80, 3, f, 0.1)
	a := NewGBoost(DefaultGBoostOptions())
	b := NewGBoost(DefaultGBoostOptions())
	if err := a.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	probe := []float64{0.3, -0.7, 1.1}
	if a.Predict(probe) != b.Predict(probe) {
		t.Fatal("same seed must give identical ensembles")
	}
}

func TestGBoostOptionClamping(t *testing.T) {
	g := NewGBoost(GBoostOptions{Trees: -1, Depth: 0, Shrinkage: 2, Subsample: -1, MinLeaf: 0})
	if g.opt.Trees <= 0 || g.opt.Depth <= 0 || g.opt.Shrinkage <= 0 || g.opt.Shrinkage > 1 || g.opt.Subsample != 1 || g.opt.MinLeaf <= 0 {
		t.Fatalf("options not clamped: %+v", g.opt)
	}
}

func TestPredictBeforeFit(t *testing.T) {
	for _, p := range []Predictor{NewLinear(0), NewLinearLasso(0.1), NewQuadratic(0), NewQuadraticLasso(0.1), NewGBoost(DefaultGBoostOptions())} {
		if got := p.Predict([]float64{1, 2, 3}); got != 0 {
			t.Errorf("%s unfitted Predict = %v, want 0", p.Name(), got)
		}
	}
}

func TestOfflinePredictor(t *testing.T) {
	// Two "applications" with known per-config values.
	x1 := [][]float64{{1, 0}, {0, 1}}
	x2 := [][]float64{{1, 0}, {0, 1}}
	off := NewOffline([]Dataset{
		{X: x1, Y: []float64{2, 4}},
		{X: x2, Y: []float64{4, 8}},
	})
	if got := off.Predict([]float64{1, 0}); got != 3 {
		t.Fatalf("offline mean = %v, want 3", got)
	}
	if got := off.Predict([]float64{0, 1}); got != 6 {
		t.Fatalf("offline mean = %v, want 6", got)
	}
	// Unknown config: global mean.
	if got := off.Predict([]float64{9, 9}); got != 4.5 {
		t.Fatalf("offline fallback = %v, want 4.5", got)
	}
	if err := off.Fit(nil, nil); err != nil {
		t.Fatal("offline Fit must be a no-op")
	}
}

// TestOfflineFallbackDeterministic is the regression test for the
// map-iteration bug mctlint's maprange rule caught: the unknown-config
// fallback used to sum the mean table by ranging the map, so the global mean
// could differ bit-for-bit between runs (and between rebuilt predictors).
// With many configurations of mixed magnitudes, rebuilding the predictor
// from the same data must keep the fallback bit-identical.
func TestOfflineFallbackDeterministic(t *testing.T) {
	build := func() *Offline {
		var ds Dataset
		for i := 0; i < 64; i++ {
			ds.X = append(ds.X, []float64{float64(i), float64(i % 7)})
			ds.Y = append(ds.Y, math.Pow(10, float64(i%18)-9)) // 10⁻⁹ … 10⁸
		}
		return NewOffline([]Dataset{ds})
	}
	unknown := []float64{-1, -1}
	want := build().Predict(unknown)
	for i := 0; i < 50; i++ {
		if got := build().Predict(unknown); got != want {
			t.Fatalf("rebuild %d: fallback mean drifted: %v != %v", i, got, want)
		}
	}
}

func TestHBayesTransfersAcrossTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Tasks share weights w ~ N([3,-2], small); a new task with very few
	// samples must beat cold OLS.
	makeTask := func() Dataset {
		w0 := 3 + rng.NormFloat64()*0.2
		w1 := -2 + rng.NormFloat64()*0.2
		X, y := synth(rng, 40, 2, func(x []float64) float64 { return w0*x[0] + w1*x[1] }, 0.05)
		return Dataset{X: X, Y: y}
	}
	var offline []Dataset
	for i := 0; i < 6; i++ {
		offline = append(offline, makeTask())
	}
	hb, err := NewHierarchicalBayes(offline, 15)
	if err != nil {
		t.Fatal(err)
	}
	// New task: only 3 samples.
	f := func(x []float64) float64 { return 3.1*x[0] - 1.9*x[1] }
	X, y := synth(rng, 3, 2, f, 0.05)
	if err := hb.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	tx, ty := testSet(rng, 100, 2, f)
	if acc := r2Of(hb, tx, ty); acc < 0.9 {
		t.Fatalf("hbayes R² with 3 samples = %v, want ≥0.9 via prior transfer", acc)
	}
}

func TestHBayesErrors(t *testing.T) {
	if _, err := NewHierarchicalBayes(nil, 5); err == nil {
		t.Fatal("empty offline data must fail")
	}
	hb, err := NewHierarchicalBayes([]Dataset{{X: [][]float64{{1, 2}}, Y: []float64{1}}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := hb.Fit([][]float64{{1}}, []float64{1}); err == nil {
		t.Fatal("width mismatch must fail")
	}
	if hb.Predict([]float64{1, 2}) != 0 {
		t.Fatal("unfitted hbayes must predict 0")
	}
}

func TestQuadraticExpansion(t *testing.T) {
	x := []float64{2, 3}
	got := ExpandQuadratic(x)
	want := []float64{2, 3, 4, 9, 6}
	if len(got) != QuadraticLen(2) {
		t.Fatalf("expansion length %d, want %d", len(got), QuadraticLen(2))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("expansion[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// The paper's dimensionality: 10 → 65.
	if QuadraticLen(10) != 65 {
		t.Fatalf("QuadraticLen(10) = %d, want 65", QuadraticLen(10))
	}
	names := QuadraticNames([]string{"a", "b"})
	if names[2] != "a^2" || names[4] != "a*b" {
		t.Fatalf("names wrong: %v", names)
	}
	if len(QuadraticNames(make([]string, 10))) != 65 {
		t.Fatal("names length mismatch")
	}
}

func TestStandardizer(t *testing.T) {
	X := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	s := FitStandardizer(X)
	Z := s.ApplyAll(X)
	// Column 0: mean 3, sd sqrt(8/3).
	var m0 float64
	for _, z := range Z {
		m0 += z[0]
	}
	if math.Abs(m0) > 1e-12 {
		t.Fatalf("standardized mean = %v, want 0", m0)
	}
	// Constant column: all zeros, no NaN.
	for _, z := range Z {
		if z[1] != 0 || math.IsNaN(z[0]) {
			t.Fatalf("constant column mishandled: %v", z)
		}
	}
}

func TestNewFactory(t *testing.T) {
	for _, name := range OnlineModelNames() {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if p.Name() != name {
			t.Fatalf("Name() = %s, want %s", p.Name(), name)
		}
	}
	if _, err := New("nope"); err == nil {
		t.Fatal("unknown model must error")
	}
}

// Property: every online model's prediction is finite after fitting random
// data.
func TestPredictionsFinite(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		X, y := synth(rng, 20+rng.Intn(50), 4, func(x []float64) float64 {
			return x[0] + x[1]*x[2]
		}, 0.5)
		for _, name := range OnlineModelNames() {
			p, err := New(name)
			if err != nil {
				return false
			}
			if err := p.Fit(X, y); err != nil {
				return false
			}
			probe := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
			v := p.Predict(probe)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
