package ml

import (
	"math"
	"sort"
)

// Dataset pairs feature rows with targets (one task/application).
type Dataset struct {
	X [][]float64
	Y []float64
}

// Offline is the baseline predictor of Table 7: it "averages data from
// training applications to predict the current application". It needs
// offline data for every configuration it will be asked about and ignores
// online samples entirely (zero runtime cost, low accuracy).
type Offline struct {
	table map[string]float64
	mean  float64 // global mean, the fallback for unknown configurations
}

// NewOffline builds the per-configuration cross-application mean table from
// offline datasets. Rows with identical feature vectors (the same
// configuration measured on different applications) are averaged.
func NewOffline(offline []Dataset) *Offline {
	sum := map[string]float64{}
	cnt := map[string]int{}
	for _, ds := range offline {
		for i, row := range ds.X {
			k := vecKey(row)
			sum[k] += ds.Y[i]
			cnt[k]++
		}
	}
	table := make(map[string]float64, len(sum))
	for k, s := range sum {
		table[k] = s / float64(cnt[k])
	}
	// Precompute the unknown-configuration fallback in sorted-key order:
	// float addition is order-sensitive, and the map's randomized iteration
	// order must not leak into predictions.
	keys := make([]string, 0, len(table))
	for k := range table {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var mean float64
	for _, k := range keys {
		mean += table[k]
	}
	if len(keys) > 0 {
		mean /= float64(len(keys))
	}
	return &Offline{table: table, mean: mean}
}

// Name implements Predictor.
func (o *Offline) Name() string { return NameOffline }

// Fit implements Predictor; the offline predictor does not learn online.
func (o *Offline) Fit(X [][]float64, y []float64) error { return nil }

// Predict implements Predictor by table lookup; unknown configurations
// return the global mean.
func (o *Offline) Predict(x []float64) float64 {
	if v, ok := o.table[vecKey(x)]; ok {
		return v
	}
	return o.mean
}

// vecKey quantizes a feature vector into a comparable key.
func vecKey(x []float64) string {
	b := make([]byte, 0, len(x)*4)
	for _, v := range x {
		q := int32(math.Round(v * 100))
		b = append(b, byte(q), byte(q>>8), byte(q>>16), byte(q>>24))
	}
	return string(b)
}
