// Package ml implements the learning stack of §4.3 from scratch: linear and
// quadratic regression with and without lasso regularization, stochastic
// gradient boosting over regression trees, a hierarchical Bayesian
// multi-task model, and the offline mean predictor — together with the
// quadratic feature expansion, per-feature standardization, and the
// normalization-to-baseline technique of §4.4.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotFitted is returned by Predict when Fit has not succeeded.
var ErrNotFitted = errors.New("ml: predictor is not fitted")

// ErrBadData is returned when the training data is malformed.
var ErrBadData = errors.New("ml: malformed training data")

// Predictor learns a scalar objective from configuration feature vectors.
type Predictor interface {
	// Fit trains on rows X with targets y (len(X) == len(y) > 0; all rows
	// the same width).
	Fit(X [][]float64, y []float64) error
	// Predict returns the estimate for one feature vector. It returns 0
	// before a successful Fit.
	Predict(x []float64) float64
	// Name identifies the model family.
	Name() string
}

// checkData validates the common Fit preconditions.
func checkData(X [][]float64, y []float64) error {
	if len(X) == 0 || len(X) != len(y) {
		return fmt.Errorf("%w: %d rows, %d targets", ErrBadData, len(X), len(y))
	}
	w := len(X[0])
	if w == 0 {
		return fmt.Errorf("%w: empty feature vectors", ErrBadData)
	}
	for i, row := range X {
		if len(row) != w {
			return fmt.Errorf("%w: row %d has width %d, want %d", ErrBadData, i, len(row), w)
		}
	}
	return nil
}

// Known model names accepted by New.
const (
	NameOffline        = "offline"
	NameLinear         = "linear"
	NameLinearLasso    = "linear-lasso"
	NameQuadratic      = "quadratic"
	NameQuadraticLasso = "quadratic-lasso"
	NameGBoost         = "gboost"
	NameHBayes         = "hbayes"
)

// OnlineModelNames lists the online predictors compared in Table 7/Figure 2
// (those that can be constructed without offline data).
func OnlineModelNames() []string {
	return []string{NameLinear, NameLinearLasso, NameQuadratic, NameQuadraticLasso, NameGBoost}
}

// New constructs a predictor by model name with the defaults used in the
// experiments. Offline and hierarchical-Bayes predictors need offline data
// and have dedicated constructors (NewOffline, NewHierarchicalBayes).
func New(name string) (Predictor, error) {
	switch name {
	case NameLinear:
		return NewLinear(0), nil
	case NameLinearLasso:
		return NewLinearLasso(DefaultLassoLambda), nil
	case NameQuadratic:
		return NewQuadratic(0), nil
	case NameQuadraticLasso:
		return NewQuadraticLasso(DefaultLassoLambda), nil
	case NameGBoost:
		return NewGBoost(DefaultGBoostOptions()), nil
	default:
		return nil, fmt.Errorf("ml: unknown model %q", name)
	}
}

// Standardizer performs per-column z-score standardization fitted on
// training data.
type Standardizer struct {
	mean, scale []float64
}

// FitStandardizer computes column means and scales (unit standard
// deviation; constant columns get scale 1 so they standardize to 0).
func FitStandardizer(X [][]float64) *Standardizer {
	d := len(X[0])
	n := float64(len(X))
	s := &Standardizer{mean: make([]float64, d), scale: make([]float64, d)}
	for _, row := range X {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.mean[j]
			s.scale[j] += d * d
		}
	}
	for j := range s.scale {
		s.scale[j] = math.Sqrt(s.scale[j] / n)
		if s.scale[j] == 0 {
			s.scale[j] = 1
		}
	}
	return s
}

// Apply standardizes one row into a new slice.
func (s *Standardizer) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.mean[j]) / s.scale[j]
	}
	return out
}

// ApplyAll standardizes all rows.
func (s *Standardizer) ApplyAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Apply(row)
	}
	return out
}
