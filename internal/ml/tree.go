package ml

import "sort"

// regTree is a depth-limited least-squares regression tree — the weak
// learner of the gradient-boosting ensemble.
type regTree struct {
	// Internal node: feature/threshold with left (<=) and right (>)
	// children. Leaf: value with left == nil.
	feature   int
	threshold float64
	left      *regTree
	right     *regTree
	value     float64
}

type treeOptions struct {
	maxDepth    int
	minLeaf     int
	minGain     float64
	featureSubs []int // candidate features (nil = all)
}

// fitTree builds a regression tree on rows idx of X/y.
func fitTree(X [][]float64, y []float64, idx []int, opt treeOptions, depth int) *regTree {
	mean := meanAt(y, idx)
	if depth >= opt.maxDepth || len(idx) < 2*opt.minLeaf {
		return &regTree{value: mean}
	}
	bestGain := opt.minGain
	bestFeat, bestThr := -1, 0.0

	features := opt.featureSubs
	if features == nil {
		features = make([]int, len(X[0]))
		for j := range features {
			features[j] = j
		}
	}

	// Pre-compute total sums for gain evaluation.
	var totSum float64
	for _, i := range idx {
		totSum += y[i]
	}
	n := float64(len(idx))

	order := make([]int, len(idx))
	for _, j := range features {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][j] < X[order[b]][j] })

		var leftSum float64
		for k := 0; k < len(order)-1; k++ {
			i := order[k]
			leftSum += y[i]
			// Can't split between equal feature values. The slice is
			// sorted ascending on feature j, so adjacent values are equal
			// exactly when the earlier one is not strictly smaller.
			if !(X[order[k]][j] < X[order[k+1]][j]) {
				continue
			}
			nl := float64(k + 1)
			nr := n - nl
			if int(nl) < opt.minLeaf || int(nr) < opt.minLeaf {
				continue
			}
			rightSum := totSum - leftSum
			// SSE reduction = total SSE - (left SSE + right SSE); with
			// the Σy² term fixed this maximizes leftSum²/nl + rightSum²/nr.
			gain := leftSum*leftSum/nl + rightSum*rightSum/nr - totSum*totSum/n
			if gain > bestGain {
				bestGain = gain
				bestFeat = j
				bestThr = (X[order[k]][j] + X[order[k+1]][j]) / 2
			}
		}
	}

	if bestFeat < 0 {
		return &regTree{value: mean}
	}
	var li, ri []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &regTree{value: mean}
	}
	return &regTree{
		feature:   bestFeat,
		threshold: bestThr,
		left:      fitTree(X, y, li, opt, depth+1),
		right:     fitTree(X, y, ri, opt, depth+1),
	}
}

func (t *regTree) predict(x []float64) float64 {
	for t.left != nil {
		if x[t.feature] <= t.threshold {
			t = t.left
		} else {
			t = t.right
		}
	}
	return t.value
}

func meanAt(y []float64, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}
