// Regression tests for the hot-path allocation fixes the allochot audit
// drove: the in-flight op is held by value (no per-issue *inflight), and a
// cancellation re-queues the write by shifting the existing queue storage
// in place (no per-cancel slice rebuild). Once the queues are warm, the
// controller's issue/read/cancel cycle allocates nothing.
package nvm

import (
	"testing"

	"mct/internal/config"
)

// TestWriteCancelSteadyStateAllocs drives the densest allocation path —
// write issue, cancelling read, re-queue, drain — on a warm controller and
// requires it to be allocation-free per operation.
func TestWriteCancelSteadyStateAllocs(t *testing.T) {
	p := smallParams()
	cfg := config.Default()
	cfg.FastCancellation = true
	cfg.SlowCancellation = true
	c := mustNew(t, cfg, p)

	now := uint64(100)
	cycle := func() {
		// Issue a write, let it start its pulse, cancel it with a read to
		// the same line, then drain so the re-queued write completes and
		// the queue returns to empty (capacity retained).
		now = c.Write(0, now)
		c.Advance(now + 1)
		now = c.Read(0, now+8)
		c.Drain(c.Now())
		if c.Now() > now {
			now = c.Now()
		}
		now++
	}
	// Warm: first cycles grow the queue slices to their steady capacity.
	for i := 0; i < 64; i++ {
		cycle()
	}

	const rounds = 100
	avg := testing.AllocsPerRun(5, func() {
		for i := 0; i < rounds; i++ {
			cycle()
		}
	})
	if perCycle := avg / rounds; perCycle > 0.01 {
		t.Errorf("write/cancel/drain cycle allocates %.4f objects (%.0f per %d cycles); "+
			"the op-by-value and in-place re-queue fixes have regressed", perCycle, avg, rounds)
	}
}
