// Package nvm implements the resistive-memory main-memory system of the
// paper (Table 9): a 16-bank ReRAM controller with prioritized read / write
// / eager-write queues, write-drain thresholds, a shared data bus, the
// write-latency-vs-endurance trade-off (tWP = 60·ratio cycles, endurance =
// 8·10⁶·ratio² writes), write cancellation, bank-aware and eager mellow
// writes, the wear-quota lifetime guarantee, and bank-level wear accounting
// under a Start-Gap-style wear-leveling assumption (95% efficiency).
//
// The controller is trace-driven: the CPU/cache layer calls Read, Write and
// EagerWrite with a current time in memory-controller cycles (400 MHz), and
// the controller advances bank state lazily. Reads are serviced immediately
// with highest priority (the simulated core blocks on reads, so at most one
// demand read is outstanding per core); queued writes are issued
// opportunistically per bank and drained under backpressure.
package nvm

import (
	"fmt"
	"math"

	"mct/internal/config"
)

// SecondsPerYear converts lifetimes (Julian year, as in endurance
// literature).
const SecondsPerYear = 31_557_600.0

// cancelAbortCycles is the bank turnaround after a cancelled write before
// the cancelling read can start.
const cancelAbortCycles = 4

// Params holds the memory-system parameters (defaults follow Table 9).
type Params struct {
	Banks        int
	LinesPerBank uint64 // 64-byte lines per bank

	MemCyclesPerSec float64 // controller clock (400 MHz)

	TRCD   uint64 // row-to-column delay, cycles (48 = 120 ns)
	TCAS   uint64 // column access, cycles (1 = 2.5 ns)
	TBurst uint64 // data-bus occupancy per 64B transfer, cycles
	TWP    uint64 // write pulse at ratio 1.0, cycles (60 = 150 ns)

	// RowBytes is the row-buffer size (Table 9: 1 KB, open-page policy).
	// Reads to the open row skip tRCD; writes are write-through and bypass
	// the row buffer. 0 disables row buffers (every read pays tRCD).
	RowBytes uint64

	EnduranceBase float64 // writes per line at ratio 1.0 (8e6)
	WearLevelEff  float64 // wear-leveling efficiency (0.95)
	// WearCalibration scales the endurance budget to place default-config
	// lifetimes of the synthetic workloads in the paper's 1–16-year band
	// (our traces are far shorter and denser than 2B-instruction SPEC
	// runs). It multiplies EnduranceBase everywhere, so relative behaviour
	// between configurations is unaffected.
	WearCalibration float64

	WriteQueueCap int // demand write queue capacity (64)
	EagerQueueCap int // eager mellow write queue capacity (32)
	DrainLow      int // write drain low threshold (32)
	DrainHigh     int // write drain high threshold (64)

	// MaxCancellations bounds how often a single write can be cancelled
	// before it becomes non-cancellable (livelock guard).
	MaxCancellations int

	// CancelProgressLimit: a write can only be cancelled while its pulse
	// has completed less than this fraction (Qureshi et al. cancel only
	// writes far from completion; a nearly-done write is allowed to
	// finish).
	CancelProgressLimit float64

	// MaxConcurrentWrites bounds the number of simultaneous write pulses
	// across all banks — the write-power budget of resistive memories
	// (write currents are large; cf. Hay et al., "Preventing PCM banks
	// from seizing too much power", cited by the paper). This is what
	// makes slow writes consume real system capacity: long pulses hold a
	// power token longer, so aggressive mellow writes can saturate the
	// write bandwidth of heavy writers.
	MaxConcurrentWrites int

	// WearQuotaSliceCycles is the wear-quota time-slice length.
	WearQuotaSliceCycles uint64
}

// DefaultParams returns the Table 9 configuration (4 GB, 16 banks).
func DefaultParams() Params {
	return Params{
		Banks:                16,
		LinesPerBank:         4 << 30 / 16 / 64, // 4 GB / 16 banks / 64 B lines
		MemCyclesPerSec:      400e6,
		TRCD:                 48,
		TCAS:                 1,
		TBurst:               8,
		TWP:                  60,
		RowBytes:             1024,
		EnduranceBase:        8e6,
		WearLevelEff:         0.95,
		WearCalibration:      0.45,
		WriteQueueCap:        64,
		EagerQueueCap:        32,
		DrainLow:             32,
		DrainHigh:            64,
		MaxCancellations:     4,
		CancelProgressLimit:  0.5,
		MaxConcurrentWrites:  4,
		WearQuotaSliceCycles: 100_000,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Banks <= 0 || p.LinesPerBank == 0 {
		return fmt.Errorf("nvm: invalid geometry: %d banks, %d lines/bank", p.Banks, p.LinesPerBank)
	}
	if p.MemCyclesPerSec <= 0 {
		return fmt.Errorf("nvm: invalid clock %g", p.MemCyclesPerSec)
	}
	if p.EnduranceBase <= 0 || p.WearLevelEff <= 0 || p.WearLevelEff > 1 || p.WearCalibration <= 0 {
		return fmt.Errorf("nvm: invalid endurance model (base %g, eff %g, cal %g)", p.EnduranceBase, p.WearLevelEff, p.WearCalibration)
	}
	if p.WriteQueueCap <= 0 || p.EagerQueueCap < 0 || p.DrainLow < 0 || p.DrainHigh < p.DrainLow {
		return fmt.Errorf("nvm: invalid queue parameters")
	}
	if p.CancelProgressLimit < 0 || p.CancelProgressLimit > 1 {
		return fmt.Errorf("nvm: cancel progress limit %g outside [0,1]", p.CancelProgressLimit)
	}
	if p.MaxConcurrentWrites <= 0 {
		return fmt.Errorf("nvm: MaxConcurrentWrites must be positive")
	}
	if p.WearQuotaSliceCycles == 0 {
		return fmt.Errorf("nvm: zero wear-quota slice")
	}
	return nil
}

// Stats aggregates controller event counters. Wear is measured in
// "line-lifetimes": a write at latency ratio r consumes
// 1/(EnduranceBase·Calibration·r²) of one line.
type Stats struct {
	Reads          uint64
	ReadLatencySum uint64 // cycles, enqueue to data delivered

	DemandWrites    uint64 // demand writebacks completed or in flight
	EagerWrites     uint64 // eager mellow writes issued
	FastWrites      uint64 // issued at FastLatency
	SlowWrites      uint64 // issued at SlowLatency (incl. eager)
	ForcedWrites    uint64 // issued at 4× under an exhausted wear quota
	CancelledWrites uint64 // write attempts aborted by a read

	WritesByRatio map[float64]uint64

	WearByBank []float64
	TotalWear  float64

	ReadCellCycles   uint64 // bank occupancy by reads
	WritePulseCycles uint64 // bank occupancy by write pulses (incl. cancelled portion's full pulse charge)

	RowHits   uint64 // open-page read hits (tRCD skipped)
	RowMisses uint64 // row activations

	QueueFullStalls uint64 // demand writes that hit a full write queue
	WriteQueuePeak  int
	ForcedSlices    uint64 // wear-quota slices in forced (slow) mode
	TotalSlices     uint64

	// BankQueueDepth histograms the per-bank write-queue depth observed at
	// each demand-write enqueue (depth after the enqueue, clamped to 16).
	BankQueueDepth [17]uint64
	EagerRejected  uint64 // eager writes refused at a full eager queue
	// EagerConversions counts eager mellow writes that an exhausted wear
	// quota forced to issue in the slowest (forced) class instead.
	EagerConversions uint64
}

// MaxBankWear returns the wear of the most-worn bank.
func (s *Stats) MaxBankWear() float64 {
	var m float64
	for _, w := range s.WearByBank {
		if w > m {
			m = w
		}
	}
	return m
}

type writeReq struct {
	addr    uint64
	enq     uint64
	cancels int
	eager   bool
}

type inflight struct {
	req         writeReq
	pulseStart  uint64
	done        uint64
	ratio       float64
	cancellable bool
	token       int // write-power token held for the pulse duration
}

type bankState struct {
	freeAt uint64
	// op is the write occupying the bank until freeAt, valid only while
	// opValid is set. Held by value: issueWrite runs once per write on the
	// simulator's hot path, and a pointer here would heap-allocate every
	// in-flight record.
	op      inflight
	opValid bool
	writes  []writeReq
	eager   []writeReq
	// openRow is the row held in the row buffer (open-page policy);
	// rowValid is false until the first activation.
	openRow  uint64
	rowValid bool
}

// Controller is the NVM memory controller. It is not safe for concurrent
// use.
type Controller struct {
	p   Params
	cfg config.Config

	banks     []bankState
	busFreeAt uint64
	// tokens[i] is the time write-power token i frees up.
	tokens []uint64
	now    uint64

	writeQLen int
	eagerQLen int
	// drainMode: the write queue crossed DrainHigh; writes get priority
	// (no cancellation) until occupancy falls to DrainLow.
	drainMode bool

	// wear quota state
	forced    bool
	nextSlice uint64

	st Stats
}

// New returns a controller for cfg with parameters p.
func New(cfg config.Config, p Params) (*Controller, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Controller{
		p:      p,
		cfg:    cfg.Canonical(),
		banks:  make([]bankState, p.Banks),
		tokens: make([]uint64, p.MaxConcurrentWrites),
	}
	c.nextSlice = p.WearQuotaSliceCycles
	c.st.WearByBank = make([]float64, p.Banks)
	c.st.WritesByRatio = make(map[float64]uint64)
	return c, nil
}

// Name identifies the controller as the terminal memory tier
// (hierarchy.Mem).
func (c *Controller) Name() string { return "nvm" }

// Config returns the controller's active configuration.
func (c *Controller) Config() config.Config { return c.cfg }

// SetConfig switches the controller to a new configuration at its current
// time. Queued requests, wear state and the wear-quota slice schedule are
// preserved — this is MCT's online reconfiguration mechanism (no hardware
// state is lost when the policy changes).
func (c *Controller) SetConfig(cfg config.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	c.cfg = cfg.Canonical()
	if !c.cfg.WearQuota {
		c.forced = false
	}
	return nil
}

// EagerSpace reports whether the eager queue can accept another entry.
// Callers must check this before harvesting a victim from the cache, since
// harvesting marks the line clean.
func (c *Controller) EagerSpace() bool { return c.eagerQLen < c.p.EagerQueueCap }

// Params returns the controller's memory parameters.
func (c *Controller) Params() Params { return c.p }

// Stats returns a snapshot of the counters.
func (c *Controller) Stats() Stats {
	s := c.st
	s.WearByBank = append([]float64(nil), c.st.WearByBank...)
	byRatio := make(map[float64]uint64, len(c.st.WritesByRatio))
	for k, v := range c.st.WritesByRatio {
		byRatio[k] = v
	}
	s.WritesByRatio = byRatio
	return s
}

// Now returns the controller's high-water-mark time in memory cycles.
func (c *Controller) Now() uint64 { return c.now }

// WriteQueueLen returns the current demand write queue occupancy.
func (c *Controller) WriteQueueLen() int { return c.writeQLen }

// EagerQueueLen returns the current eager queue occupancy.
func (c *Controller) EagerQueueLen() int { return c.eagerQLen }

// rowOf returns the global row index of an address (rows are the
// interleaving unit: the 16 lines of one 1 KB row live in one bank, so
// open-page locality works).
func (c *Controller) rowOf(addr uint64) uint64 {
	rb := c.p.RowBytes
	if rb == 0 {
		rb = 1024
	}
	return addr / rb
}

// bankOf maps an address to a bank with an XOR-folded hash of its row
// index. Folding higher bits in decorrelates bank index from cache set
// index, so a victim writeback and its fill do not systematically collide
// on one bank — the standard bank-XOR interleaving of memory controllers —
// while consecutive rows still spread round-robin across banks.
func (c *Controller) bankOf(addr uint64) int {
	row := c.rowOf(addr)
	h := row ^ (row >> 4) ^ (row >> 8) ^ (row >> 12) ^ (row >> 16)
	return int(h % uint64(c.p.Banks)) //mctlint:ignore cyclecast remainder is bounded by the bank count
}

// wearPerWrite returns the line-lifetime fraction consumed by one write at
// latency ratio r (endurance scales quadratically with the ratio, Table 9).
func (c *Controller) wearPerWrite(ratio float64) float64 {
	return 1.0 / (c.p.EnduranceBase * c.p.WearCalibration * ratio * ratio)
}

func (c *Controller) twp(ratio float64) uint64 {
	return uint64(math.Round(float64(c.p.TWP) * ratio))
}

// bankWearBudget is the total wear a bank tolerates before the memory is
// considered worn out, under the wear-leveling efficiency assumption.
func (c *Controller) bankWearBudget() float64 {
	return float64(c.p.LinesPerBank) * c.p.WearLevelEff
}

// WearBudget exposes the per-bank wear budget so observers can normalize
// wear distributions against end-of-life.
func (c *Controller) WearBudget() float64 { return c.bankWearBudget() }

// LifetimeYears projects the memory lifetime assuming the observed wear
// rate continues ("the system will cyclically execute the current workload
// until the main memory wears out", §6.1). elapsedCycles is the simulated
// duration. Lifetimes are capped at 1000 years to keep zero-write runs
// finite.
func (c *Controller) LifetimeYears(elapsedCycles uint64) float64 {
	maxWear := c.st.MaxBankWear()
	if maxWear <= 0 || elapsedCycles == 0 {
		return 1000
	}
	seconds := float64(elapsedCycles) / c.p.MemCyclesPerSec
	years := seconds * c.bankWearBudget() / maxWear / SecondsPerYear
	if years > 1000 {
		return 1000
	}
	return years
}

// Advance processes queued work on all banks up to time t, honouring
// wear-quota slice boundaries.
func (c *Controller) Advance(t uint64) {
	if t <= c.now {
		return
	}
	if c.cfg.WearQuota {
		for c.nextSlice <= t {
			boundary := c.nextSlice
			c.advanceBanks(boundary)
			c.now = boundary
			c.updateWearQuota(boundary)
			c.nextSlice += c.p.WearQuotaSliceCycles
		}
	}
	c.advanceBanks(t)
	c.now = t
}

// updateWearQuota re-evaluates the forced-slow flag at a slice boundary:
// forced when the most-worn bank has consumed more than its pro-rata share
// of the budget implied by the target lifetime.
func (c *Controller) updateWearQuota(atCycles uint64) {
	c.st.TotalSlices++
	targetCycles := c.cfg.WearQuotaTarget * SecondsPerYear * c.p.MemCyclesPerSec
	allowance := float64(atCycles) / targetCycles * c.bankWearBudget()
	c.forced = c.st.MaxBankWear() >= allowance
	if c.forced {
		c.st.ForcedSlices++
	}
}

func (c *Controller) advanceBanks(t uint64) {
	// Early out: with both queues empty there is no write to issue, and the
	// per-bank sweep would only clear completed-op markers — which every
	// reader already guards with a freeAt > now check, so leaving them stale
	// is unobservable. This makes the all-hits steady state (the common case
	// in cache-friendly phases, where Advance runs per access) O(1) instead
	// of O(banks).
	if c.writeQLen == 0 && c.eagerQLen == 0 {
		return
	}
	for b := range c.banks {
		c.advanceBank(b, t)
	}
}

// eagerAllowed reports whether the system is calm enough to issue eager
// (lowest-priority) writes: no demand writes waiting anywhere — eager
// pulses hold write-power tokens, so issuing them under demand-write
// pressure would invert priorities.
func (c *Controller) eagerAllowed() bool {
	return c.writeQLen == 0
}

// popFront removes q[0] by shifting the tail down one slot, preserving the
// slice's backing array so subsequent appends reuse its capacity.
func popFront(q []writeReq) []writeReq {
	copy(q, q[1:])
	return q[:len(q)-1]
}

func (c *Controller) advanceBank(b int, t uint64) {
	bank := &c.banks[b]
	for {
		if bank.freeAt > t {
			return
		}
		bank.opValid = false // any prior op has completed by freeAt ≤ t

		var req writeReq
		var isEager bool
		switch {
		// Pops shift in place rather than re-slicing from the front: a
		// [1:] pop drifts the slice base through its backing array, so
		// every refill append would reallocate. Keeping the base stable
		// makes the warm issue/cancel cycle allocation-free (the queues
		// are short, so the O(len) copy is cheap).
		case len(bank.writes) > 0 && bank.writes[0].enq <= t:
			req = bank.writes[0]
			bank.writes = popFront(bank.writes)
			c.writeQLen--
			c.updateDrainMode()
		case len(bank.eager) > 0 && bank.eager[0].enq <= t && c.eagerAllowed():
			req = bank.eager[0]
			bank.eager = popFront(bank.eager)
			c.eagerQLen--
			isEager = true
		default:
			return
		}
		c.issueWrite(b, req, isEager)
	}
}

// issueWrite starts a write on bank b. Timing: the data bus is occupied for
// TBurst, then the write pulse holds the bank for TWP·ratio.
func (c *Controller) issueWrite(b int, req writeReq, isEager bool) {
	bank := &c.banks[b]
	ratio, cancellable := c.writeClass(b, req, isEager)

	issueAt := max64(bank.freeAt, req.enq)
	busStart := max64(issueAt, c.busFreeAt)
	c.busFreeAt = busStart + c.p.TBurst
	// The write pulse needs a free power token; long (slow) pulses hold
	// tokens longer, so mellow writes consume more of the write-power
	// budget.
	tok := 0
	for i, free := range c.tokens {
		if free < c.tokens[tok] {
			tok = i
		}
	}
	pulseStart := max64(busStart+c.p.TBurst, c.tokens[tok])
	done := pulseStart + c.twp(ratio)
	c.tokens[tok] = done
	bank.freeAt = done
	bank.op = inflight{req: req, pulseStart: pulseStart, done: done, ratio: ratio, cancellable: cancellable, token: tok}
	bank.opValid = true

	// Accounting. Wear and energy are charged per attempt: a cancelled
	// attempt costs a full write of wear (the "extra writes" lifetime
	// penalty of cancellation, §2) and its rewrite is charged again on
	// reissue.
	c.st.WearByBank[b] += c.wearPerWrite(ratio)
	c.st.TotalWear += c.wearPerWrite(ratio)
	c.st.WritesByRatio[ratio]++
	c.st.WritePulseCycles += c.twp(ratio)
	if isEager {
		c.st.EagerWrites++
	} else {
		c.st.DemandWrites++
	}
	switch {
	case c.forced && c.cfg.WearQuota:
		c.st.ForcedWrites++
		if isEager {
			c.st.EagerConversions++
		}
	case ratio == c.cfg.FastLatency && !isEager: //mctlint:ignore floateq ratio is assigned verbatim from cfg.FastLatency/SlowLatency; provenance compare is exact
		c.st.FastWrites++
	default:
		c.st.SlowWrites++
	}
}

// writeClass decides the latency ratio and cancellability of a write about
// to issue on bank b (the request has already been popped from its queue).
func (c *Controller) writeClass(b int, req writeReq, isEager bool) (ratio float64, cancellable bool) {
	if c.cfg.WearQuota && c.forced {
		// Exhausted quota: "the whole coming time slice can only use the
		// slowest writes and write cancellation is enforced" (§3.1).
		return config.WearQuotaSlowRatio, req.cancels < c.p.MaxCancellations
	}
	if isEager {
		return c.cfg.SlowLatency, c.cfg.SlowCancellation && req.cancels < c.p.MaxCancellations
	}
	if c.cfg.BankAware && len(c.banks[b].writes) < c.cfg.BankAwareThreshold {
		// Bank not busy: issue slow.
		return c.cfg.SlowLatency, c.cfg.SlowCancellation && req.cancels < c.p.MaxCancellations
	}
	return c.cfg.FastLatency, c.cfg.FastCancellation && req.cancels < c.p.MaxCancellations
}

// Read services a demand read at time now and returns the cycle at which
// its data has been delivered over the bus. Reads have highest priority: an
// in-flight cancellable write on the target bank is aborted and re-queued
// at the head of that bank's write queue.
func (c *Controller) Read(addr uint64, now uint64) uint64 {
	c.Advance(now)
	b := c.bankOf(addr)
	bank := &c.banks[b]

	if op := &bank.op; bank.opValid && bank.freeAt > now && op.cancellable &&
		!c.drainMode && c.pulseProgress(op, now) < c.p.CancelProgressLimit {
		// Cancel the write in progress; it re-queues at the head. The read
		// pays a small abort turnaround before the bank is usable. The
		// requeue shifts in place instead of rebuilding the slice: this runs
		// on the hot path, and the queue's capacity is already amortized.
		c.st.CancelledWrites++
		req := op.req
		req.cancels++
		req.enq = now
		//mctlint:ignore allochot amortized: grows the existing queue capacity, no per-cancel rebuild
		bank.writes = append(bank.writes, writeReq{})
		copy(bank.writes[1:], bank.writes)
		bank.writes[0] = req
		c.writeQLen++
		c.updateDrainMode()
		if c.writeQLen > c.st.WriteQueuePeak {
			c.st.WriteQueuePeak = c.writeQLen
		}
		bank.freeAt = now + cancelAbortCycles
		// Release the power token held by the aborted pulse.
		if op.done == c.tokens[op.token] {
			c.tokens[op.token] = now
		}
		bank.opValid = false
	}

	start := max64(now, bank.freeAt)
	row := c.rowOf(addr)
	cell := c.p.TRCD + c.p.TCAS
	if c.p.RowBytes > 0 && bank.rowValid && bank.openRow == row {
		// Open-page hit: the row is already in the row buffer.
		cell = c.p.TCAS
		c.st.RowHits++
	} else {
		bank.openRow = row
		bank.rowValid = true
		c.st.RowMisses++
	}
	cellDone := start + cell
	bank.freeAt = cellDone
	bank.opValid = false
	busStart := max64(cellDone, c.busFreeAt)
	c.busFreeAt = busStart + c.p.TBurst
	final := busStart + c.p.TBurst

	c.st.Reads++
	c.st.ReadLatencySum += final - now
	c.st.ReadCellCycles += cell
	return final
}

// Write enqueues a demand writeback at time now. If the write queue is
// full, the controller drains until a slot frees (backpressure) and returns
// the cycle at which the write was accepted; otherwise it returns now.
func (c *Controller) Write(addr uint64, now uint64) uint64 {
	c.Advance(now)
	accepted := now
	if c.writeQLen >= c.p.WriteQueueCap {
		c.st.QueueFullStalls++
		accepted = c.drainUntilSpace(now)
	}
	b := c.bankOf(addr)
	//mctlint:ignore allochot amortized: bounded queue (WriteQueueCap) reuses its capacity across the run
	c.banks[b].writes = append(c.banks[b].writes, writeReq{addr: addr, enq: accepted})
	c.writeQLen++
	depth := len(c.banks[b].writes)
	if depth > 16 {
		depth = 16
	}
	c.st.BankQueueDepth[depth]++
	c.updateDrainMode()
	if c.writeQLen > c.st.WriteQueuePeak {
		c.st.WriteQueuePeak = c.writeQLen
	}
	// Give the controller a chance to issue immediately (idle bank).
	c.advanceBank(b, c.now)
	return accepted
}

// drainUntilSpace advances simulated time until a queued write issues,
// freeing a write-queue slot, and returns that time.
func (c *Controller) drainUntilSpace(now uint64) uint64 {
	for c.writeQLen >= c.p.WriteQueueCap {
		next := uint64(math.MaxUint64)
		for b := range c.banks {
			bank := &c.banks[b]
			if len(bank.writes) == 0 {
				continue
			}
			t := max64(bank.freeAt, bank.writes[0].enq)
			if t < next {
				next = t
			}
		}
		if next == math.MaxUint64 {
			// No queued writes anywhere yet the queue count says full —
			// impossible by construction; bail out defensively.
			return now
		}
		if next <= c.now {
			next = c.now + 1
		}
		c.Advance(next)
		if next > now {
			now = next
		}
	}
	return now
}

// EagerWrite offers an eager mellow writeback at time now. It returns false
// when the eager queue is full (the cache keeps the line dirty and may
// offer it again later).
func (c *Controller) EagerWrite(addr uint64, now uint64) bool {
	c.Advance(now)
	if c.eagerQLen >= c.p.EagerQueueCap {
		c.st.EagerRejected++
		return false
	}
	b := c.bankOf(addr)
	//mctlint:ignore allochot amortized: bounded queue (EagerQueueCap) reuses its capacity across the run
	c.banks[b].eager = append(c.banks[b].eager, writeReq{addr: addr, enq: now, eager: true})
	c.eagerQLen++
	c.advanceBank(b, c.now)
	return true
}

// Drain advances time until all queued demand and eager writes have issued,
// returning the final time. Used at end of simulation so queued work is
// charged.
func (c *Controller) Drain(now uint64) uint64 {
	c.Advance(now)
	for c.writeQLen > 0 || c.eagerQLen > 0 {
		next := uint64(math.MaxUint64)
		for b := range c.banks {
			bank := &c.banks[b]
			if len(bank.writes) > 0 {
				t := max64(bank.freeAt, bank.writes[0].enq)
				if t < next {
					next = t
				}
			}
			if len(bank.eager) > 0 && c.eagerAllowed() {
				t := max64(bank.freeAt, bank.eager[0].enq)
				if t < next {
					next = t
				}
			}
		}
		if next == math.MaxUint64 {
			break
		}
		if next <= c.now {
			next = c.now + 1
		}
		c.Advance(next)
		now = next
	}
	return now
}

// pulseProgress returns the completed fraction of an in-flight write's
// pulse at time now (0 while the data is still on the bus).
func (c *Controller) pulseProgress(op *inflight, now uint64) float64 {
	if now <= op.pulseStart {
		return 0
	}
	total := op.done - op.pulseStart
	if total == 0 {
		return 1
	}
	return float64(now-op.pulseStart) / float64(total)
}

// updateDrainMode re-evaluates drain mode against the watermarks.
func (c *Controller) updateDrainMode() {
	if c.writeQLen >= c.p.DrainHigh {
		c.drainMode = true
	} else if c.writeQLen <= c.p.DrainLow {
		c.drainMode = false
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
