package nvm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mct/internal/config"
)

// smallParams returns fast-to-reason-about parameters: one write token and
// a relaxed quota so tests control exactly what happens.
func smallParams() Params {
	p := DefaultParams()
	p.MaxConcurrentWrites = 4
	return p
}

func mustNew(t *testing.T, cfg config.Config, p Params) *Controller {
	t.Helper()
	c, err := New(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Banks = 0 },
		func(p *Params) { p.LinesPerBank = 0 },
		func(p *Params) { p.MemCyclesPerSec = 0 },
		func(p *Params) { p.EnduranceBase = 0 },
		func(p *Params) { p.WearLevelEff = 1.5 },
		func(p *Params) { p.WearCalibration = 0 },
		func(p *Params) { p.WriteQueueCap = 0 },
		func(p *Params) { p.DrainHigh = p.DrainLow - 1 },
		func(p *Params) { p.CancelProgressLimit = 2 },
		func(p *Params) { p.MaxConcurrentWrites = 0 },
		func(p *Params) { p.WearQuotaSliceCycles = 0 },
	}
	for i, mut := range bad {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate params", i)
		}
	}
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(config.Config{FastLatency: 9}, DefaultParams()); err == nil {
		t.Fatal("invalid config must be rejected")
	}
	p := DefaultParams()
	p.Banks = 0
	if _, err := New(config.Default(), p); err == nil {
		t.Fatal("invalid params must be rejected")
	}
}

func TestReadLatencyIdleBank(t *testing.T) {
	p := smallParams()
	c := mustNew(t, config.Default(), p)
	done := c.Read(0, 1000)
	want := uint64(1000) + p.TRCD + p.TCAS + p.TBurst
	if done != want {
		t.Fatalf("idle read done at %d, want %d", done, want)
	}
	st := c.Stats()
	if st.Reads != 1 || st.ReadLatencySum != p.TRCD+p.TCAS+p.TBurst {
		t.Fatalf("read stats wrong: %+v", st)
	}
}

func TestReadWaitsForUncancellableWrite(t *testing.T) {
	p := smallParams()
	c := mustNew(t, config.Default(), p) // no cancellation
	addr := uint64(0)
	c.Write(addr, 100)
	c.Advance(101) // issue the write
	st := c.Stats()
	if st.DemandWrites != 1 {
		t.Fatalf("write not issued: %+v", st)
	}
	// A read to the same bank mid-write must wait for the write.
	done := c.Read(addr, 120)
	writeDone := uint64(100) + p.TBurst + p.TWP // bus + 1× pulse
	if done < writeDone+p.TRCD+p.TCAS {
		t.Fatalf("read at %d finished before blocked bank freed (write done %d)", done, writeDone)
	}
	if c.Stats().CancelledWrites != 0 {
		t.Fatal("default config must not cancel")
	}
}

func TestReadCancelsCancellableWrite(t *testing.T) {
	p := smallParams()
	cfg := config.Default()
	cfg.FastCancellation = true
	cfg.SlowCancellation = true
	c := mustNew(t, cfg, p)
	addr := uint64(0)
	c.Write(addr, 100)
	c.Advance(101)
	// Read arrives early in the pulse: must cancel and start promptly.
	done := c.Read(addr, 115)
	want := uint64(115) + cancelAbortCycles + p.TRCD + p.TCAS + p.TBurst
	if done != want {
		t.Fatalf("cancelling read done at %d, want %d", done, want)
	}
	st := c.Stats()
	if st.CancelledWrites != 1 {
		t.Fatalf("cancellations = %d, want 1", st.CancelledWrites)
	}
	// The cancelled write re-queues and eventually completes, charging
	// wear twice (the "extra writes" penalty).
	c.Drain(c.Now())
	if got := c.Stats().DemandWrites; got != 2 {
		t.Fatalf("demand write issues = %d, want 2 (original + re-issue)", got)
	}
}

func TestCancelRespectsProgressLimit(t *testing.T) {
	p := smallParams()
	cfg := config.Default()
	cfg.FastCancellation = true
	cfg.SlowCancellation = true
	c := mustNew(t, cfg, p)
	c.Write(0, 100)
	c.Advance(101)
	// Pulse runs [108,168); at 160 progress is ~87% > 50%: no cancel.
	c.Read(0, 160)
	if c.Stats().CancelledWrites != 0 {
		t.Fatal("nearly-done write must not be cancelled")
	}
}

func TestMaxCancellationsBounded(t *testing.T) {
	p := smallParams()
	p.MaxCancellations = 2
	cfg := config.Default()
	cfg.FastCancellation = true
	cfg.SlowCancellation = true
	c := mustNew(t, cfg, p)
	c.Write(0, 100)
	now := uint64(101)
	c.Advance(now)
	cancels := uint64(0)
	for i := 0; i < 10; i++ {
		before := c.Stats().CancelledWrites
		now = c.Read(0, now+2)
		if c.Stats().CancelledWrites > before {
			cancels++
		}
	}
	if got := c.Stats().CancelledWrites; got > 2 {
		t.Fatalf("write cancelled %d times, cap is 2", got)
	}
	_ = cancels
}

func TestWriteQueueBackpressure(t *testing.T) {
	p := smallParams()
	p.WriteQueueCap = 4
	p.DrainLow = 2
	p.DrainHigh = 4
	c := mustNew(t, config.Default(), p)
	// Flood writes at the same instant; acceptance must eventually move
	// forward in time.
	var accepted uint64
	for i := 0; i < 64; i++ {
		accepted = c.Write(uint64(i*64), 100)
	}
	if accepted <= 100 {
		t.Fatalf("expected backpressure, last accepted at %d", accepted)
	}
	if c.Stats().QueueFullStalls == 0 {
		t.Fatal("queue-full stalls not recorded")
	}
	if c.Stats().WriteQueuePeak > p.WriteQueueCap {
		t.Fatalf("queue peak %d exceeded capacity %d", c.Stats().WriteQueuePeak, p.WriteQueueCap)
	}
}

func TestDrainCompletesAllWrites(t *testing.T) {
	c := mustNew(t, config.StaticBaseline(), smallParams())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		c.Write(uint64(rng.Intn(4096))*64, uint64(i))
	}
	for i := 0; i < 50; i++ {
		c.EagerWrite(uint64(rng.Intn(4096))*64, 200)
	}
	c.Drain(300)
	if c.WriteQueueLen() != 0 || c.EagerQueueLen() != 0 {
		t.Fatalf("drain left %d demand + %d eager writes", c.WriteQueueLen(), c.EagerQueueLen())
	}
}

func TestWearQuadraticInRatio(t *testing.T) {
	p := smallParams()
	// Two controllers, identical write streams at 1× and 2×.
	fast := mustNew(t, config.Default(), p)
	slowCfg := config.Default()
	slowCfg.FastLatency = 2.0
	slowCfg.SlowLatency = 2.0
	slow := mustNew(t, slowCfg, p)
	for i := 0; i < 100; i++ {
		fast.Write(uint64(i)*64, uint64(i)*100)
		slow.Write(uint64(i)*64, uint64(i)*100)
	}
	fast.Drain(1 << 30)
	slow.Drain(1 << 30)
	wf, ws := fast.Stats().TotalWear, slow.Stats().TotalWear
	if wf <= 0 || ws <= 0 {
		t.Fatal("no wear recorded")
	}
	ratio := wf / ws
	if ratio < 3.9 || ratio > 4.1 {
		t.Fatalf("wear ratio 1x/2x = %v, want ~4 (endurance ∝ ratio²)", ratio)
	}
}

func TestLifetimeScalesWithWriteRate(t *testing.T) {
	p := smallParams()
	a := mustNew(t, config.Default(), p)
	b := mustNew(t, config.Default(), p)
	// b writes twice as often over the same elapsed time.
	for i := 0; i < 100; i++ {
		a.Write(uint64(i)*64, uint64(i)*1000)
		b.Write(uint64(i)*64, uint64(i)*1000)
		b.Write(uint64(i+1000)*64, uint64(i)*1000+500)
	}
	elapsed := uint64(100 * 1000)
	a.Drain(elapsed)
	b.Drain(elapsed)
	la, lb := a.LifetimeYears(elapsed), b.LifetimeYears(elapsed)
	if la <= lb {
		t.Fatalf("lifetime must fall with write rate: %v vs %v", la, lb)
	}
}

func TestLifetimeNoWrites(t *testing.T) {
	c := mustNew(t, config.Default(), smallParams())
	if got := c.LifetimeYears(1000); got != 1000 {
		t.Fatalf("zero-write lifetime = %v, want cap 1000", got)
	}
}

func TestBankAwareIssuesSlowWhenIdle(t *testing.T) {
	p := smallParams()
	cfg := config.Default()
	cfg.BankAware = true
	cfg.BankAwareThreshold = 1
	cfg.FastLatency = 1.0
	cfg.SlowLatency = 3.0
	c := mustNew(t, cfg, p)
	// A single isolated write: bank queue is empty → slow write.
	c.Write(0, 100)
	c.Drain(1 << 30)
	st := c.Stats()
	if st.SlowWrites != 1 || st.FastWrites != 0 {
		t.Fatalf("isolated write must be slow: %+v", st)
	}
	if st.WritesByRatio[3.0] != 1 {
		t.Fatalf("ratio accounting wrong: %v", st.WritesByRatio)
	}
}

func TestBankAwareIssuesFastUnderPressure(t *testing.T) {
	p := smallParams()
	cfg := config.Default()
	cfg.BankAware = true
	cfg.BankAwareThreshold = 1
	cfg.SlowLatency = 3.0
	c := mustNew(t, cfg, p)
	// Many writes to one bank at the same time: the queue builds, so
	// later writes must issue fast.
	for i := 0; i < 16; i++ {
		c.Write(0, 100) // same address → same bank
	}
	c.Drain(1 << 30)
	st := c.Stats()
	if st.FastWrites == 0 {
		t.Fatalf("queued bank must trigger fast writes: %+v", st)
	}
}

func TestEagerQueueCapacity(t *testing.T) {
	p := smallParams()
	p.EagerQueueCap = 2
	cfg := config.Default()
	cfg.EagerWritebacks = true
	cfg.EagerThreshold = 8
	c := mustNew(t, cfg, p)
	if !c.EagerSpace() {
		t.Fatal("fresh controller must have eager space")
	}
	// Stuff the eager queue while the banks are still busy elsewhere.
	ok1 := c.EagerWrite(0, 1)
	ok2 := c.EagerWrite(64, 1)
	_ = ok1
	_ = ok2
	// Depending on immediate issue, space may already have freed; force a
	// state where the queue is full by blocking the bank with a write.
	c2 := mustNew(t, cfg, p)
	c2.Write(0, 0)
	c2.Advance(1) // bank busy with demand write
	if !c2.EagerWrite(0, 1) || !c2.EagerWrite(0, 1) {
		t.Fatal("eager enqueue should succeed up to capacity")
	}
	if c2.EagerWrite(0, 1) {
		t.Fatal("eager enqueue beyond capacity must fail")
	}
	if c2.EagerSpace() {
		t.Fatal("EagerSpace must report full")
	}
}

func TestWearQuotaForcesSlowWrites(t *testing.T) {
	p := smallParams()
	p.WearQuotaSliceCycles = 1000
	cfg := config.Default()
	cfg.WearQuota = true
	cfg.WearQuotaTarget = 10 // demanding target
	// Shrink the memory so the quota is immediately binding.
	p.LinesPerBank = 1000
	c := mustNew(t, cfg, p)
	now := uint64(0)
	for i := 0; i < 2000; i++ {
		now += 50
		c.Write(uint64(i)*64, now)
	}
	c.Drain(now + 1_000_000)
	st := c.Stats()
	if st.ForcedWrites == 0 || st.ForcedSlices == 0 {
		t.Fatalf("wear quota never forced: %+v", st)
	}
	if st.WritesByRatio[config.WearQuotaSlowRatio] == 0 {
		t.Fatal("forced writes must use the 4x ratio")
	}
}

func TestWearQuotaImprovesLifetime(t *testing.T) {
	p := smallParams()
	p.WearQuotaSliceCycles = 1000
	p.LinesPerBank = 2000
	run := func(wq bool) float64 {
		cfg := config.Default()
		cfg.WearQuota = wq
		cfg.WearQuotaTarget = 10
		c := mustNew(t, cfg, p)
		now := uint64(0)
		for i := 0; i < 3000; i++ {
			now += 40
			c.Write(uint64(i%512)*64, now)
		}
		end := c.Drain(now + 1000)
		return c.LifetimeYears(end)
	}
	without := run(false)
	with := run(true)
	if with <= without {
		t.Fatalf("wear quota must extend lifetime: %v vs %v", with, without)
	}
}

func TestSetConfigPreservesState(t *testing.T) {
	c := mustNew(t, config.Default(), smallParams())
	c.Write(0, 100)
	c.Drain(1 << 20)
	wearBefore := c.Stats().TotalWear
	if err := c.SetConfig(config.StaticBaseline()); err != nil {
		t.Fatal(err)
	}
	if c.Stats().TotalWear != wearBefore {
		t.Fatal("SetConfig must preserve wear state")
	}
	if c.Config().SlowLatency != 3.0 {
		t.Fatal("config not switched")
	}
	if err := c.SetConfig(config.Config{FastLatency: 99}); err == nil {
		t.Fatal("invalid config must be rejected")
	}
}

func TestWritePowerTokensSerializeWrites(t *testing.T) {
	p := smallParams()
	p.MaxConcurrentWrites = 1 // one pulse at a time
	c := mustNew(t, config.Default(), p)
	// Two writes to different banks at t=0: with one token, the second
	// pulse cannot overlap the first.
	c.Write(0, 0)
	c.Write(64, 0) // different bank under the XOR hash (adjacent lines)
	c.Drain(1 << 30)
	st := c.Stats()
	if st.DemandWrites != 2 {
		t.Fatalf("writes issued: %+v", st)
	}
	// Compare with a 2-token controller: total completion must be later
	// with 1 token. Measure via bank busy horizon.
	p2 := smallParams()
	p2.MaxConcurrentWrites = 2
	c2 := mustNew(t, config.Default(), p2)
	c2.Write(0, 0)
	c2.Write(64, 0)
	end1 := maxBankFree(c)
	end2 := maxBankFree(c2)
	if end1 <= end2 {
		t.Fatalf("serialized writes must finish later: 1-token end %d vs 2-token end %d", end1, end2)
	}
}

func maxBankFree(c *Controller) uint64 {
	var m uint64
	for i := range c.banks {
		if c.banks[i].freeAt > m {
			m = c.banks[i].freeAt
		}
	}
	return m
}

func TestAdvanceMonotonic(t *testing.T) {
	c := mustNew(t, config.Default(), smallParams())
	c.Advance(1000)
	c.Advance(500) // must not rewind
	if c.Now() != 1000 {
		t.Fatalf("Now = %d, want 1000", c.Now())
	}
}

// Property: controller counters are consistent under random traffic.
func TestRandomTrafficInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfgs := config.Enumerate(config.SpaceOptions{IncludeWearQuota: true, WearQuotaTarget: 8})
		cfg := cfgs[rng.Intn(len(cfgs))]
		c, err := New(cfg, smallParams())
		if err != nil {
			return false
		}
		now := uint64(0)
		for i := 0; i < 1500; i++ {
			now += uint64(rng.Intn(100))
			addr := uint64(rng.Intn(1<<14)) * 64
			switch rng.Intn(3) {
			case 0:
				if done := c.Read(addr, now); done < now {
					return false
				}
			case 1:
				if acc := c.Write(addr, now); acc < now {
					return false
				}
			default:
				c.EagerWrite(addr, now)
			}
		}
		end := c.Drain(now)
		st := c.Stats()
		if c.WriteQueueLen() != 0 {
			return false
		}
		// Wear is non-negative everywhere and total ≈ sum of banks.
		var sum float64
		for _, w := range st.WearByBank {
			if w < 0 {
				return false
			}
			sum += w
		}
		if sum > 0 && (st.TotalWear <= 0 || st.TotalWear < sum*0.999 || st.TotalWear > sum*1.001) {
			return false
		}
		// Ratio histogram covers all issued writes.
		var byRatio uint64
		for _, n := range st.WritesByRatio {
			byRatio += n
		}
		if byRatio != st.DemandWrites+st.EagerWrites {
			return false
		}
		return c.LifetimeYears(end) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
