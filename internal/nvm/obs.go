package nvm

import "mct/internal/obs"

// bankWearBounds are the buckets of the nvm.bank_wear histogram, as
// fractions of the per-bank wear budget (1.0 = end of life).
var bankWearBounds = []float64{1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// queueDepthBounds cover the 0..16 clamp of Stats.BankQueueDepth.
func queueDepthBounds() []float64 {
	b := make([]float64, 17)
	for i := range b {
		b[i] = float64(i)
	}
	return b
}

// Obs publishes controller telemetry into an obs.Registry from cumulative
// Stats snapshots at window boundaries — the controller's hot path keeps
// only its native counters. See cache.Obs for the baseline/rebase contract
// (identical here).
type Obs struct {
	reg        *obs.Registry
	wearBudget float64

	reads            *obs.Counter
	rowHits          *obs.Counter
	rowMisses        *obs.Counter
	demandWrites     *obs.Counter
	eagerWrites      *obs.Counter
	fastWrites       *obs.Counter
	slowWrites       *obs.Counter
	forcedWrites     *obs.Counter
	cancelledWrites  *obs.Counter
	queueFullStalls  *obs.Counter
	eagerRejected    *obs.Counter
	eagerConversions *obs.Counter
	readLatency      *obs.Counter
	readCellCycles   *obs.Counter
	writePulseCycles *obs.Counter
	forcedSlices     *obs.Counter
	totalSlices      *obs.Counter

	// queueDepth accumulates the per-bank write-queue depth distribution
	// sampled at each demand-write enqueue.
	queueDepth *obs.Histogram
	// bankWear is the current wear spread across banks as budget fractions
	// (a state distribution: replaced, not accumulated, each publish).
	bankWear *obs.Histogram

	wearMaxFrac    *obs.Gauge
	wearTotal      *obs.Gauge
	writeQueuePeak *obs.Gauge

	last Stats
}

// NewObs registers the nvm metric family on r. wearBudget is the per-bank
// wear budget (Controller.WearBudget) used to normalize wear gauges and
// the bank-wear histogram.
func NewObs(r *obs.Registry, wearBudget float64) *Obs {
	return &Obs{
		reg:              r,
		wearBudget:       wearBudget,
		reads:            r.Counter("nvm.reads"),
		rowHits:          r.Counter("nvm.row_hits"),
		rowMisses:        r.Counter("nvm.row_misses"),
		demandWrites:     r.Counter("nvm.demand_writes"),
		eagerWrites:      r.Counter("nvm.eager_writes"),
		fastWrites:       r.Counter("nvm.fast_writes"),
		slowWrites:       r.Counter("nvm.slow_writes"),
		forcedWrites:     r.Counter("nvm.forced_writes"),
		cancelledWrites:  r.Counter("nvm.cancelled_writes"),
		queueFullStalls:  r.Counter("nvm.queue_full_stalls"),
		eagerRejected:    r.Counter("nvm.eager_rejected"),
		eagerConversions: r.Counter("nvm.eager_conversions"),
		readLatency:      r.Counter("nvm.read_latency_cycles"),
		readCellCycles:   r.Counter("nvm.read_cell_cycles"),
		writePulseCycles: r.Counter("nvm.write_pulse_cycles"),
		forcedSlices:     r.Counter("nvm.forced_slices"),
		totalSlices:      r.Counter("nvm.total_slices"),
		queueDepth:       r.Histogram("nvm.bank_queue_depth", queueDepthBounds()),
		bankWear:         r.Histogram("nvm.bank_wear", bankWearBounds),
		wearMaxFrac:      r.Gauge("nvm.wear_max_frac"),
		wearTotal:        r.Gauge("nvm.wear_total"),
		writeQueuePeak:   r.Gauge("nvm.write_queue_peak"),
	}
}

// Registry returns the registry this publisher feeds.
func (o *Obs) Registry() *obs.Registry { return o.reg }

// Rebase sets the delta baseline to s without publishing.
func (o *Obs) Rebase(s Stats) { o.last = s }

// Publish accounts the delta between s (a snapshot from Controller.Stats)
// and the baseline, refreshes the state-distribution instruments, and
// advances the baseline.
func (o *Obs) Publish(s Stats) {
	o.reads.Add(s.Reads - o.last.Reads)
	o.rowHits.Add(s.RowHits - o.last.RowHits)
	o.rowMisses.Add(s.RowMisses - o.last.RowMisses)
	o.demandWrites.Add(s.DemandWrites - o.last.DemandWrites)
	o.eagerWrites.Add(s.EagerWrites - o.last.EagerWrites)
	o.fastWrites.Add(s.FastWrites - o.last.FastWrites)
	o.slowWrites.Add(s.SlowWrites - o.last.SlowWrites)
	o.forcedWrites.Add(s.ForcedWrites - o.last.ForcedWrites)
	o.cancelledWrites.Add(s.CancelledWrites - o.last.CancelledWrites)
	o.queueFullStalls.Add(s.QueueFullStalls - o.last.QueueFullStalls)
	o.eagerRejected.Add(s.EagerRejected - o.last.EagerRejected)
	o.eagerConversions.Add(s.EagerConversions - o.last.EagerConversions)
	o.readLatency.Add(s.ReadLatencySum - o.last.ReadLatencySum)
	o.readCellCycles.Add(s.ReadCellCycles - o.last.ReadCellCycles)
	o.writePulseCycles.Add(s.WritePulseCycles - o.last.WritePulseCycles)
	o.forcedSlices.Add(s.ForcedSlices - o.last.ForcedSlices)
	o.totalSlices.Add(s.TotalSlices - o.last.TotalSlices)
	for depth, n := range s.BankQueueDepth {
		o.queueDepth.ObserveN(float64(depth), n-o.last.BankQueueDepth[depth])
	}

	if o.wearBudget > 0 {
		fracs := make([]float64, len(s.WearByBank))
		maxFrac := 0.0
		for i, w := range s.WearByBank {
			fracs[i] = w / o.wearBudget
			if fracs[i] > maxFrac {
				maxFrac = fracs[i]
			}
		}
		o.bankWear.SetValues(fracs)
		o.wearMaxFrac.Set(maxFrac)
	}
	o.wearTotal.Set(s.TotalWear)
	o.writeQueuePeak.Set(float64(s.WriteQueuePeak))

	o.last = s
}

// CloneInto rebinds a copy of this publisher to r (a clone of the original
// registry), preserving the delta baseline.
func (o *Obs) CloneInto(r *obs.Registry) *Obs {
	n := NewObs(r, o.wearBudget)
	n.last = o.last.Clone()
	return n
}
