// Snapshot support for the controller: deep-copy cloning for warm-start
// sweeps and an exported, serializable state for machine checkpoints.
//
// The aliasing rules (see DESIGN.md, "Snapshot contract"): a clone shares
// nothing mutable with its parent. Per-bank queues are slices of value
// structs and are copied; the in-flight op is a fresh pointer; Stats is
// deep-copied (WearByBank slice, WritesByRatio map). Params and Config are
// pure value types and copy by assignment.
package nvm

import (
	"fmt"

	"mct/internal/config"
)

// Clone returns a deep copy of s: mutating the clone's WearByBank or
// WritesByRatio never perturbs the original.
func (s Stats) Clone() Stats {
	n := s
	n.WearByBank = append([]float64(nil), s.WearByBank...)
	if s.WritesByRatio != nil {
		n.WritesByRatio = make(map[float64]uint64, len(s.WritesByRatio))
		for k, v := range s.WritesByRatio {
			n.WritesByRatio[k] = v
		}
	}
	return n
}

func (b bankState) clone() bankState {
	n := b // op is held by value and copies with the struct
	n.writes = append([]writeReq(nil), b.writes...)
	n.eager = append([]writeReq(nil), b.eager...)
	return n
}

// Clone returns an independent deep copy of the controller at its current
// simulated time: banks (queues, in-flight ops, row buffers), write-power
// tokens, drain/wear-quota state and statistics. Advancing one controller
// never perturbs the other.
func (c *Controller) Clone() *Controller {
	n := *c
	n.banks = make([]bankState, len(c.banks))
	for i := range c.banks {
		n.banks[i] = c.banks[i].clone()
	}
	n.tokens = append([]uint64(nil), c.tokens...)
	n.st = c.st.Clone()
	return &n
}

// WriteReqState is the serializable form of one queued write.
type WriteReqState struct {
	Addr    uint64
	Enq     uint64
	Cancels int
	Eager   bool
}

// InflightState is the serializable form of a write pulse occupying a bank.
type InflightState struct {
	Req         WriteReqState
	PulseStart  uint64
	Done        uint64
	Ratio       float64
	Cancellable bool
	Token       int
}

// BankSnapshot is the serializable state of one bank.
type BankSnapshot struct {
	FreeAt   uint64
	Op       *InflightState
	Writes   []WriteReqState
	Eager    []WriteReqState
	OpenRow  uint64
	RowValid bool
}

// Snapshot is the complete serializable state of a Controller.
type Snapshot struct {
	Params Params
	Config config.Config

	Banks     []BankSnapshot
	BusFreeAt uint64
	Tokens    []uint64
	Now       uint64

	WriteQLen int
	EagerQLen int
	DrainMode bool

	Forced    bool
	NextSlice uint64

	Stats Stats
}

func reqToState(r writeReq) WriteReqState {
	return WriteReqState{Addr: r.addr, Enq: r.enq, Cancels: r.cancels, Eager: r.eager}
}

func reqFromState(s WriteReqState) writeReq {
	return writeReq{addr: s.Addr, enq: s.Enq, cancels: s.Cancels, eager: s.Eager}
}

func reqsToState(rs []writeReq) []WriteReqState {
	if rs == nil {
		return nil
	}
	out := make([]WriteReqState, len(rs))
	for i, r := range rs {
		out[i] = reqToState(r)
	}
	return out
}

func reqsFromState(ss []WriteReqState) []writeReq {
	if ss == nil {
		return nil
	}
	out := make([]writeReq, len(ss))
	for i, s := range ss {
		out[i] = reqFromState(s)
	}
	return out
}

// Snapshot captures the controller's complete state for checkpointing.
func (c *Controller) Snapshot() Snapshot {
	banks := make([]BankSnapshot, len(c.banks))
	for i := range c.banks {
		b := &c.banks[i]
		bs := BankSnapshot{
			FreeAt:   b.freeAt,
			Writes:   reqsToState(b.writes),
			Eager:    reqsToState(b.eager),
			OpenRow:  b.openRow,
			RowValid: b.rowValid,
		}
		if b.opValid {
			bs.Op = &InflightState{
				Req:         reqToState(b.op.req),
				PulseStart:  b.op.pulseStart,
				Done:        b.op.done,
				Ratio:       b.op.ratio,
				Cancellable: b.op.cancellable,
				Token:       b.op.token,
			}
		}
		banks[i] = bs
	}
	return Snapshot{
		Params:    c.p,
		Config:    c.cfg,
		Banks:     banks,
		BusFreeAt: c.busFreeAt,
		Tokens:    append([]uint64(nil), c.tokens...),
		Now:       c.now,
		WriteQLen: c.writeQLen,
		EagerQLen: c.eagerQLen,
		DrainMode: c.drainMode,
		Forced:    c.forced,
		NextSlice: c.nextSlice,
		Stats:     c.st.Clone(),
	}
}

// FromSnapshot rebuilds a controller from a state captured with Snapshot.
// The rebuilt controller continues the identical simulation.
func FromSnapshot(s Snapshot) (*Controller, error) {
	c, err := New(s.Config, s.Params)
	if err != nil {
		return nil, err
	}
	if len(s.Banks) != s.Params.Banks {
		return nil, fmt.Errorf("nvm: snapshot has %d banks, params say %d", len(s.Banks), s.Params.Banks)
	}
	if len(s.Tokens) != s.Params.MaxConcurrentWrites {
		return nil, fmt.Errorf("nvm: snapshot has %d tokens, params say %d", len(s.Tokens), s.Params.MaxConcurrentWrites)
	}
	if len(s.Stats.WearByBank) != s.Params.Banks {
		return nil, fmt.Errorf("nvm: snapshot wear vector has %d banks, params say %d", len(s.Stats.WearByBank), s.Params.Banks)
	}
	for i := range s.Banks {
		bs := &s.Banks[i]
		b := bankState{
			freeAt:   bs.FreeAt,
			writes:   reqsFromState(bs.Writes),
			eager:    reqsFromState(bs.Eager),
			openRow:  bs.OpenRow,
			rowValid: bs.RowValid,
		}
		if bs.Op != nil {
			b.op = inflight{
				req:         reqFromState(bs.Op.Req),
				pulseStart:  bs.Op.PulseStart,
				done:        bs.Op.Done,
				ratio:       bs.Op.Ratio,
				cancellable: bs.Op.Cancellable,
				token:       bs.Op.Token,
			}
			b.opValid = true
		}
		c.banks[i] = b
	}
	copy(c.tokens, s.Tokens)
	c.busFreeAt = s.BusFreeAt
	c.now = s.Now
	c.writeQLen = s.WriteQLen
	c.eagerQLen = s.EagerQLen
	c.drainMode = s.DrainMode
	c.forced = s.Forced
	c.nextSlice = s.NextSlice
	c.st = s.Stats.Clone()
	if c.st.WritesByRatio == nil {
		c.st.WritesByRatio = make(map[float64]uint64)
	}
	return c, nil
}
