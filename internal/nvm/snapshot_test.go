package nvm

import (
	"math/rand"
	"reflect"
	"testing"

	"mct/internal/config"
)

// applyTraffic drives a deterministic mixed op sequence derived from seed,
// starting at time start, and returns the final time. Used to replay the
// identical workload onto a controller and its clone/restored twin.
func applyTraffic(c *Controller, seed int64, n int, start uint64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	now := start
	for i := 0; i < n; i++ {
		now += uint64(rng.Intn(120))
		addr := uint64(rng.Intn(1<<14)) * 64
		switch rng.Intn(4) {
		case 0, 1:
			c.Read(addr, now)
		case 2:
			c.Write(addr, now)
		default:
			c.EagerWrite(addr, now)
		}
	}
	return now
}

// observable flattens everything a controller exposes for equality checks.
type observable struct {
	Now       uint64
	WriteQLen int
	EagerQLen int
	Stats     Stats
	Config    config.Config
}

func observe(c *Controller) observable {
	return observable{
		Now:       c.Now(),
		WriteQLen: c.WriteQueueLen(),
		EagerQLen: c.EagerQueueLen(),
		Stats:     c.Stats(),
		Config:    c.Config(),
	}
}

// TestControllerCloneEquivalence: a clone taken mid-simulation, driven with
// the identical remaining workload, produces byte-identical observable
// state — including after a full drain.
func TestControllerCloneEquivalence(t *testing.T) {
	for _, cfg := range []config.Config{
		config.Default(),
		config.StaticBaseline(),
	} {
		c := mustNew(t, cfg, smallParams())
		mid := applyTraffic(c, 11, 800, 0)

		cl := c.Clone()
		endA := applyTraffic(c, 12, 800, mid)
		endB := applyTraffic(cl, 12, 800, mid)
		if endA != endB {
			t.Fatalf("replay times diverged: %d vs %d", endA, endB)
		}
		c.Drain(endA)
		cl.Drain(endB)
		if a, b := observe(c), observe(cl); !reflect.DeepEqual(a, b) {
			t.Errorf("clone diverged from parent under identical traffic\nparent: %+v\nclone:  %+v", a, b)
		}
	}
}

// TestControllerCloneIsolation: churning a clone leaves every observable
// bit of the parent untouched.
func TestControllerCloneIsolation(t *testing.T) {
	c := mustNew(t, config.StaticBaseline(), smallParams())
	mid := applyTraffic(c, 21, 600, 0)

	before := observe(c)
	cl := c.Clone()
	end := applyTraffic(cl, 22, 2000, mid)
	cl.Drain(end)
	if err := cl.SetConfig(config.Default()); err != nil {
		t.Fatal(err)
	}
	if after := observe(c); !reflect.DeepEqual(before, after) {
		t.Errorf("clone activity perturbed the parent\nbefore: %+v\nafter:  %+v", before, after)
	}
}

// TestControllerSnapshotRoundTrip: FromSnapshot(c.Snapshot()) continues the
// identical simulation, including in-flight ops and queued writes.
func TestControllerSnapshotRoundTrip(t *testing.T) {
	c := mustNew(t, config.StaticBaseline(), smallParams())
	mid := applyTraffic(c, 31, 900, 0)

	r, err := FromSnapshot(c.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	endA := applyTraffic(c, 32, 900, mid)
	endB := applyTraffic(r, 32, 900, mid)
	c.Drain(endA)
	r.Drain(endB)
	if a, b := observe(c), observe(r); !reflect.DeepEqual(a, b) {
		t.Errorf("snapshot round trip diverged\noriginal: %+v\nrestored: %+v", a, b)
	}
}

// TestFromSnapshotValidates rejects geometry-inconsistent snapshots rather
// than building a controller that would index out of bounds.
func TestFromSnapshotValidates(t *testing.T) {
	c := mustNew(t, config.Default(), smallParams())
	applyTraffic(c, 41, 200, 0)

	good := c.Snapshot()
	if _, err := FromSnapshot(good); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	bad := c.Snapshot()
	bad.Banks = bad.Banks[:len(bad.Banks)-1]
	if _, err := FromSnapshot(bad); err == nil {
		t.Error("bank-count mismatch accepted")
	}

	bad = c.Snapshot()
	bad.Tokens = append(bad.Tokens, 0)
	if _, err := FromSnapshot(bad); err == nil {
		t.Error("token-count mismatch accepted")
	}

	bad = c.Snapshot()
	bad.Stats.WearByBank = nil
	if _, err := FromSnapshot(bad); err == nil {
		t.Error("wear-vector mismatch accepted")
	}
}

// TestStatsCloneIsDeep: mutating a cloned Stats' slice/map never shows up
// in the original.
func TestStatsCloneIsDeep(t *testing.T) {
	c := mustNew(t, config.StaticBaseline(), smallParams())
	end := applyTraffic(c, 51, 500, 0)
	c.Drain(end)

	orig := c.Stats()
	cl := orig.Clone()
	if !reflect.DeepEqual(orig, cl) {
		t.Fatalf("clone not equal to original:\n%+v\n%+v", orig, cl)
	}
	if len(cl.WearByBank) == 0 || len(cl.WritesByRatio) == 0 {
		t.Fatal("test traffic produced no writes; wear/ratio maps empty")
	}
	cl.WearByBank[0] += 42
	for k := range cl.WritesByRatio {
		cl.WritesByRatio[k] += 7
	}
	if reflect.DeepEqual(orig.WearByBank, cl.WearByBank) || reflect.DeepEqual(orig.WritesByRatio, cl.WritesByRatio) {
		t.Error("Stats.Clone shares backing storage with the original")
	}
}
