package obs

import (
	"encoding/json"
	"fmt"
	"math"
)

// histDump is the JSON form of one histogram.
type histDump struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
}

// dumpDoc is the JSON document shape of a registry dump. Maps marshal with
// sorted keys under encoding/json, which is what makes dumps byte-stable.
type dumpDoc struct {
	Counters   map[string]uint64   `json:"counters"`
	Gauges     map[string]float64  `json:"gauges"`
	Histograms map[string]histDump `json:"histograms"`
}

// dumpDoc builds the document, excluding volatile instruments unless
// includeVolatile is set. Non-finite gauge values are clamped to 0 so the
// document always marshals (encoding/json rejects NaN/Inf).
func (r *Registry) doc(includeVolatile bool) dumpDoc {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := dumpDoc{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]histDump{},
	}
	for name, in := range r.instruments {
		if in.volatile && !includeVolatile {
			continue
		}
		switch in.kind {
		case kindCounter:
			d.Counters[name] = in.counter.Value()
		case kindGauge:
			v := in.gauge.Value()
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			d.Gauges[name] = v
		case kindHistogram:
			d.Histograms[name] = histDump{
				Bounds: in.hist.Bounds(),
				Counts: in.hist.Counts(),
				Count:  in.hist.Count(),
			}
		}
	}
	return d
}

// DumpJSON renders the stable dump: every non-volatile instrument, sorted
// by name, indented, trailing newline. Two registries holding the same
// non-volatile values produce byte-identical dumps — this is the surface
// the determinism tests and the CI worker-count comparison diff.
func (r *Registry) DumpJSON() []byte {
	return marshalDoc(r.doc(false))
}

// DumpAllJSON renders the full dump including volatile (wall-clock /
// scheduling-dependent) instruments. Not byte-stable across runs.
func (r *Registry) DumpAllJSON() []byte {
	return marshalDoc(r.doc(true))
}

func marshalDoc(d dumpDoc) []byte {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		// Unreachable: the document is maps of finite scalars.
		panic(fmt.Sprintf("obs: dump marshal: %v", err))
	}
	return append(b, '\n')
}

// ExpvarFunc returns a snapshot function suitable for expvar.Publish
// (expvar.Func marshals the returned value on every scrape). The snapshot
// includes volatile instruments: a live debug endpoint wants wall-clock
// signals, unlike the stable dump.
func (r *Registry) ExpvarFunc() func() any {
	return func() any { return r.doc(true) }
}
