package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event is one observation on the trace stream. It generalizes the engine's
// progress event (Scope/Item/Done/Total/Text) with a Kind discriminator and
// an optional metric payload, so sweep progress, experiment phases and
// runtime decisions (sampling, learning, deciding, health-reverting) all
// flow through one observer type.
type Event struct {
	// Scope names the emitting activity, e.g. "sweep", "experiment fig1",
	// "runtime".
	Scope string
	// Item names the unit of work within the scope, e.g. a benchmark or a
	// config digest.
	Item string
	// Kind discriminates trace events ("baseline", "sampling", "decision",
	// "health_revert", "phase_change", ...). Progress events leave it empty.
	Kind string
	// Done/Total carry progress when known (Total 0 means unknown).
	Done  int
	Total int
	// Text is a preformatted human-readable line; sinks that only render
	// text may ignore everything else.
	Text string
	// Values carries window metrics keyed by metric-style names. Use
	// ValueKeys for deterministic iteration.
	Values map[string]float64
}

// ValueKeys returns the sorted keys of Values.
func (e Event) ValueKeys() []string {
	keys := make([]string, 0, len(e.Values))
	for k := range e.Values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TraceSink consumes events. Sinks must be safe to call from multiple
// goroutines when attached to parallel activities; a nil sink means "no
// observer" and emitters must tolerate it.
type TraceSink func(Event)

// TextSink returns a sink that prints each event's Text line to w,
// serialized by an internal mutex so concurrent emitters never interleave
// partial lines. Events with empty Text are dropped.
func TextSink(w io.Writer) TraceSink {
	var mu sync.Mutex
	return func(e Event) {
		if e.Text == "" {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintln(w, e.Text)
	}
}
