package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("test.counter") != c {
		t.Error("re-registration returned a different counter")
	}
	g := r.Gauge("test.gauge")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.hist", []float64{1, 2, 4})
	h.Observe(0.5)   // bucket 0 (<=1)
	h.Observe(1)     // bucket 0 (inclusive upper bound)
	h.Observe(1.5)   // bucket 1
	h.ObserveN(3, 2) // bucket 2, twice
	h.Observe(9)     // overflow bucket
	want := []uint64{2, 1, 2, 1}
	got := h.Counts()
	if len(got) != len(want) {
		t.Fatalf("counts len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
}

func TestHistogramSetValues(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test.dist", []float64{10, 20})
	h.Observe(5)
	h.SetValues([]float64{3, 15, 15, 99})
	want := []uint64{1, 2, 1}
	for i, c := range h.Counts() {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4 (SetValues must replace, not add)", h.Count())
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestRegistrationCollisionsPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup.name")
	mustPanic(t, "kind collision", func() { r.Gauge("dup.name") })
	r.Gauge("vol.gauge")
	mustPanic(t, "volatility collision", func() { r.VolatileGauge("vol.gauge") })
	r.Histogram("h.name", []float64{1, 2})
	mustPanic(t, "bounds collision", func() { r.Histogram("h.name", []float64{1, 3}) })
	mustPanic(t, "invalid name", func() { r.Counter("Bad-Name") })
	mustPanic(t, "empty bounds", func() { r.Histogram("h.empty", nil) })
	mustPanic(t, "unsorted bounds", func() { r.Histogram("h.unsorted", []float64{2, 1}) })
	mustPanic(t, "nan bound", func() { r.Histogram("h.nan", []float64{math.NaN()}) })
}

func TestDumpSortedAndStable(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("zz.last").Add(3)
		r.Counter("aa.first").Add(1)
		r.Gauge("mm.mid").Set(0.5)
		r.Histogram("hh.hist", []float64{1, 2}).Observe(1.5)
		return r
	}
	a, b := build().DumpJSON(), build().DumpJSON()
	if !bytes.Equal(a, b) {
		t.Errorf("dumps differ across identical registries:\n%s\n%s", a, b)
	}
	s := string(a)
	if strings.Index(s, "aa.first") > strings.Index(s, "zz.last") {
		t.Error("dump not sorted by name")
	}
	if !strings.HasSuffix(s, "\n") {
		t.Error("dump missing trailing newline")
	}
}

func TestVolatileExcludedFromStableDump(t *testing.T) {
	r := NewRegistry()
	r.Counter("stable.counter").Inc()
	r.VolatileGauge("volatile.gauge").Set(123)
	r.VolatileHistogram("volatile.hist", []float64{1}).Observe(0.5)
	stable := string(r.DumpJSON())
	if strings.Contains(stable, "volatile.") {
		t.Errorf("volatile instrument leaked into stable dump:\n%s", stable)
	}
	all := string(r.DumpAllJSON())
	for _, name := range []string{"stable.counter", "volatile.gauge", "volatile.hist"} {
		if !strings.Contains(all, name) {
			t.Errorf("DumpAllJSON missing %s", name)
		}
	}
}

func TestNonFiniteGaugeClampedInDump(t *testing.T) {
	r := NewRegistry()
	r.Gauge("bad.gauge").Set(math.NaN())
	if !strings.Contains(string(r.DumpJSON()), `"bad.gauge": 0`) {
		t.Errorf("NaN gauge not clamped:\n%s", r.DumpJSON())
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c.one").Add(7)
	r.Gauge("g.one").Set(1.25)
	r.Histogram("h.one", []float64{1, 2}).ObserveN(1.5, 3)
	r.VolatileGauge("v.one").Set(9)

	got, err := FromState(r.State())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.DumpJSON(), r.DumpJSON()) {
		t.Errorf("stable dump changed across State round-trip:\n%s\n%s",
			r.DumpJSON(), got.DumpJSON())
	}
	if !bytes.Equal(got.DumpAllJSON(), r.DumpAllJSON()) {
		t.Errorf("full dump changed across State round-trip (volatility lost?)")
	}
	// The rebuilt registry must keep enforcing identity.
	mustPanic(t, "kind collision after restore", func() { got.Gauge("c.one") })
}

func TestFromStateRejectsBadState(t *testing.T) {
	cases := []State{
		{Counters: map[string]uint64{"Bad Name": 1}},
		{Histograms: map[string]HistogramState{
			"h.bad": {Bounds: []float64{1, 2}, Counts: []uint64{1}}}},
		{Histograms: map[string]HistogramState{
			"h.bad": {Bounds: []float64{2, 1}, Counts: []uint64{0, 0, 0}}}},
	}
	for i, s := range cases {
		if _, err := FromState(s); err == nil {
			t.Errorf("case %d: FromState accepted invalid state", i)
		}
	}
}

func TestCloneIsolation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c.shared")
	c.Add(2)
	h := r.Histogram("h.shared", []float64{1})
	h.Observe(0.5)

	cl := r.Clone()
	before := cl.DumpJSON()

	// Advancing the parent must not perturb the clone, and vice versa.
	c.Add(100)
	h.ObserveN(0.5, 50)
	if !bytes.Equal(cl.DumpJSON(), before) {
		t.Error("advancing parent perturbed clone")
	}
	cl.Counter("c.shared").Add(1)
	if got := r.Counter("c.shared").Value(); got != 102 {
		t.Errorf("advancing clone perturbed parent: %d", got)
	}
	if got := cl.Counter("c.shared").Value(); got != 3 {
		t.Errorf("clone counter = %d, want 3", got)
	}
}

// TestConcurrentAddsDeterministic exercises the commutativity contract:
// counters and histograms reach the same totals regardless of goroutine
// interleaving (run under -race in CI).
func TestConcurrentAddsDeterministic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c.conc")
	h := r.Histogram("h.conc", []float64{5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(3)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

func TestExpvarFuncIncludesVolatile(t *testing.T) {
	r := NewRegistry()
	r.VolatileGauge("v.live").Set(4)
	doc, ok := r.ExpvarFunc()().(dumpDoc)
	if !ok {
		t.Fatalf("ExpvarFunc returned %T", r.ExpvarFunc()())
	}
	if doc.Gauges["v.live"] != 4 {
		t.Errorf("expvar snapshot missing volatile gauge: %+v", doc)
	}
}

func TestTextSink(t *testing.T) {
	var buf bytes.Buffer
	sink := TextSink(&buf)
	sink(Event{Text: "hello"})
	sink(Event{Scope: "sweep", Done: 1, Total: 2}) // empty Text: dropped
	sink(Event{Text: "world"})
	if got := buf.String(); got != "hello\nworld\n" {
		t.Errorf("TextSink output = %q", got)
	}
}

func TestEventValueKeys(t *testing.T) {
	e := Event{Values: map[string]float64{"z.v": 1, "a.v": 2}}
	keys := e.ValueKeys()
	if len(keys) != 2 || keys[0] != "a.v" || keys[1] != "z.v" {
		t.Errorf("ValueKeys = %v", keys)
	}
}
