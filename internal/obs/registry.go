// Package obs is the observability layer of the reproduction: a
// dependency-free, deterministic metrics-and-tracing subsystem. The paper's
// runtime lives on introspection — it watches IPC/lifetime/energy windows,
// detects phases and health-checks against a baseline (§3) — and the
// ROADMAP's production-scale goal makes the same demand of the system
// itself: you cannot tune what you cannot see.
//
// The package has two halves:
//
//   - a Registry of counters, gauges and fixed-bucket histograms with
//     stable identity (names are compile-time literals enforced by the
//     obsnames mctlint rule, dumps are sorted by name, collisions are
//     programmer errors), participating in the simulator's
//     Clone/State/FromState snapshot contract;
//   - a TraceSink event stream (event.go) that generalizes the engine's
//     progress sink so sweeps, experiments and runtime decisions flow
//     through one observer API.
//
// Determinism rules (see DESIGN.md, "Observability"):
//
//   - Instrument updates are commutative in exact arithmetic: counters and
//     histogram bucket counts are uint64 adds, so concurrent emitters at
//     any worker count produce identical totals. Histograms deliberately
//     carry no float sum — floating-point accumulation order would leak
//     scheduling into dumps.
//   - Wall-clock and scheduling-dependent signals (task durations, worker
//     counts) are second-class: they register through the Volatile*
//     constructors and are excluded from the stable dump (DumpJSON), so
//     stable dumps are byte-identical at any worker count.
//   - Gauges are last-write-wins and belong to single-writer contexts (a
//     machine window, the runtime loop) or to the volatile class.
package obs

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// nameRe is the metric-name grammar. Names are dotted lowercase paths
// ("cache.hits", "nvm.bank_queue_depth"); the obsnames mctlint rule enforces
// the same grammar — and literal-ness — statically at every registration
// site.
var nameRe = regexp.MustCompile(`^[a-z0-9_.]+$`)

// Counter is a monotonically increasing uint64 metric. Adds are atomic and
// commutative, so any number of goroutines may share one counter without
// perturbing determinism.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a last-write-wins float64 metric. Writes are atomic; gauges
// belong to single-writer contexts (or the volatile class) — concurrent
// last-write-wins is scheduling-dependent by nature.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: bounds are ascending upper
// bounds, counts has len(bounds)+1 entries (the last is the overflow
// bucket), and there is deliberately no float sum (see the package
// determinism rules).
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	total  uint64
}

// Observe records one observation of v.
func (h *Histogram) Observe(v float64) { h.ObserveN(v, 1) }

// ObserveN records n observations of v (the bulk form used by publishers
// that translate layer stat deltas into bucket increments).
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.counts[h.bucketOf(v)] += n
	h.total += n
}

// SetValues replaces the histogram's contents with the distribution of vs —
// the state-distribution form (e.g. per-bank wear: the current spread
// across banks, not a cumulative event stream). Deterministic given vs.
func (h *Histogram) SetValues(vs []float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	for _, v := range vs {
		h.counts[h.bucketOf(v)]++
	}
	h.total = uint64(len(vs))
}

// bucketOf returns the bucket index of v (callers hold h.mu).
func (h *Histogram) bucketOf(v float64) int {
	// sort.SearchFloat64s returns the first bound >= v for exact hits; we
	// want "first bound >= v" semantics (bounds are inclusive upper bounds).
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= v })
	return i
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...)
}

// Counts returns a copy of the bucket counts (len(Bounds())+1, last is
// overflow).
func (h *Histogram) Counts() []uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// kind discriminates instrument types within a registry.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// instrument is one named registration slot.
type instrument struct {
	kind     kind
	volatile bool
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
}

// clone deep-copies the instrument's current value into a fresh instrument.
func (in *instrument) clone() *instrument {
	n := &instrument{kind: in.kind, volatile: in.volatile}
	switch in.kind {
	case kindCounter:
		n.counter = &Counter{}
		n.counter.Add(in.counter.Value())
	case kindGauge:
		n.gauge = &Gauge{}
		n.gauge.Set(in.gauge.Value())
	case kindHistogram:
		n.hist = &Histogram{
			bounds: append([]float64(nil), in.hist.bounds...),
			counts: in.hist.Counts(),
			total:  in.hist.Count(),
		}
	}
	return n
}

// Registry is a set of named instruments with stable identity: names obey
// nameRe, registration is get-or-create, and re-registering a name under a
// different kind, volatility or bucket layout is a programmer error that
// panics immediately (metric identity must never be ambiguous). All methods
// are safe for concurrent use.
type Registry struct {
	mu          sync.Mutex
	instruments map[string]*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{instruments: map[string]*instrument{}}
}

// getOrCreate is the single registration chokepoint. It panics on invalid
// names and identity collisions — both are programmer errors the obsnames
// lint rule catches statically for literal registrations.
func (r *Registry) getOrCreate(name string, k kind, volatile bool, bounds []float64) *instrument {
	if !nameRe.MatchString(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q (want [a-z0-9_.]+)", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.instruments[name]; ok {
		if in.kind != k {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, k, in.kind))
		}
		if in.volatile != volatile {
			panic(fmt.Sprintf("obs: metric %q re-registered with different volatility", name))
		}
		if k == kindHistogram && !sameBounds(in.hist.bounds, bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
		}
		return in
	}
	in := &instrument{kind: k, volatile: volatile}
	switch k {
	case kindCounter:
		in.counter = &Counter{}
	case kindGauge:
		in.gauge = &Gauge{}
	case kindHistogram:
		if err := validBounds(bounds); err != nil {
			panic(fmt.Sprintf("obs: histogram %q: %v", name, err))
		}
		in.hist = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
	}
	r.instruments[name] = in
	return in
}

// sameBounds compares bucket layouts bitwise (bounds are construction
// constants; bit equality is the right identity notion and avoids float
// tolerance questions).
func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// validBounds checks a bucket layout: non-empty, finite, strictly
// ascending.
func validBounds(bounds []float64) error {
	if len(bounds) == 0 {
		return fmt.Errorf("empty bucket bounds")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return fmt.Errorf("non-finite bound %g", b)
		}
		if i > 0 && b <= bounds[i-1] {
			return fmt.Errorf("bounds not strictly ascending at %g", b)
		}
	}
	return nil
}

// Counter registers (or finds) a counter under name.
func (r *Registry) Counter(name string) *Counter {
	return r.getOrCreate(name, kindCounter, false, nil).counter
}

// Gauge registers (or finds) a gauge under name.
func (r *Registry) Gauge(name string) *Gauge {
	return r.getOrCreate(name, kindGauge, false, nil).gauge
}

// Histogram registers (or finds) a fixed-bucket histogram under name.
// bounds are ascending inclusive upper bounds; an implicit overflow bucket
// is appended.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	return r.getOrCreate(name, kindHistogram, false, bounds).hist
}

// VolatileGauge registers a gauge carrying wall-clock or
// scheduling-dependent data. Volatile instruments are excluded from the
// stable dump so DumpJSON stays byte-identical at any worker count.
func (r *Registry) VolatileGauge(name string) *Gauge {
	return r.getOrCreate(name, kindGauge, true, nil).gauge
}

// VolatileHistogram is the histogram flavor of VolatileGauge.
func (r *Registry) VolatileHistogram(name string, bounds []float64) *Histogram {
	return r.getOrCreate(name, kindHistogram, true, bounds).hist
}

// Names returns the sorted names of all registered instruments (volatile
// included).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.instruments))
	for name := range r.instruments {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Clone returns an independent deep copy of the registry: instrument
// identities and current values are preserved, and updating one registry
// never perturbs the other. This is what lets a registry ride along the
// simulator's machine Clone.
func (r *Registry) Clone() *Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := &Registry{instruments: make(map[string]*instrument, len(r.instruments))}
	for name, in := range r.instruments {
		n.instruments[name] = in.clone()
	}
	return n
}

// HistogramState is the serializable form of one histogram.
type HistogramState struct {
	Bounds []float64
	Counts []uint64
}

// State is the complete serializable state of a Registry — the payload the
// simulator embeds in versioned machine checkpoints.
type State struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistogramState
	// Volatile lists the names registered through the Volatile*
	// constructors, sorted.
	Volatile []string
}

// State captures the registry's contents.
func (r *Registry) State() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := State{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramState{},
	}
	for name, in := range r.instruments {
		if in.volatile {
			s.Volatile = append(s.Volatile, name)
		}
		switch in.kind {
		case kindCounter:
			s.Counters[name] = in.counter.Value()
		case kindGauge:
			s.Gauges[name] = in.gauge.Value()
		case kindHistogram:
			s.Histograms[name] = HistogramState{Bounds: in.hist.Bounds(), Counts: in.hist.Counts()}
		}
	}
	sort.Strings(s.Volatile)
	return s
}

// FromState rebuilds a registry from a state captured with State. The
// rebuilt registry carries the identical instruments and values.
func FromState(s State) (*Registry, error) {
	r := NewRegistry()
	vol := map[string]bool{}
	for _, name := range s.Volatile {
		vol[name] = true
	}
	for name, v := range s.Counters {
		if !nameRe.MatchString(name) {
			return nil, fmt.Errorf("obs: state counter name %q invalid", name)
		}
		r.getOrCreate(name, kindCounter, vol[name], nil).counter.Add(v)
	}
	for name, v := range s.Gauges {
		if !nameRe.MatchString(name) {
			return nil, fmt.Errorf("obs: state gauge name %q invalid", name)
		}
		//mctlint:ignore detflow one Set per distinct gauge key; restore iteration order cannot change final values
		r.getOrCreate(name, kindGauge, vol[name], nil).gauge.Set(v)
	}
	for name, hs := range s.Histograms {
		if !nameRe.MatchString(name) {
			return nil, fmt.Errorf("obs: state histogram name %q invalid", name)
		}
		if len(hs.Counts) != len(hs.Bounds)+1 {
			return nil, fmt.Errorf("obs: state histogram %q has %d counts for %d bounds", name, len(hs.Counts), len(hs.Bounds))
		}
		if err := validBounds(hs.Bounds); err != nil {
			return nil, fmt.Errorf("obs: state histogram %q: %w", name, err)
		}
		h := r.getOrCreate(name, kindHistogram, vol[name], hs.Bounds).hist
		h.mu.Lock()
		copy(h.counts, hs.Counts)
		var total uint64
		for _, c := range hs.Counts {
			total += c
		}
		h.total = total
		h.mu.Unlock()
	}
	return r, nil
}
