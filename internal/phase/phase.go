// Package phase implements the lightweight phase detector of §5.1: memory
// workload (read + write requests) is sampled from performance counters
// every I instructions; a two-sided Student's t-test (Welch) compares the
// last 100·I instructions against the history of up to 1000·I instructions,
// and a score above a threshold declares a new phase, clearing the history.
// The detector reacts only to dramatic shifts — minor variation is absorbed
// by normalization and fine-grained sampling.
package phase

import (
	"fmt"

	"mct/internal/stats"
)

// Options configures a Detector.
type Options struct {
	// IntervalInsts is I: one workload observation per I instructions.
	IntervalInsts uint64
	// ShortWindows is the number of recent intervals forming the test
	// window (paper: 100).
	ShortWindows int
	// LongWindows is the history length in intervals (paper: 1000).
	LongWindows int
	// Threshold is the t-score above which a new phase is declared
	// (paper: 15).
	Threshold float64
}

// DefaultOptions returns the paper's parameters: I = 1M instructions,
// 100·I / 1000·I windows, threshold 15.
func DefaultOptions() Options {
	return Options{IntervalInsts: 1_000_000, ShortWindows: 100, LongWindows: 1000, Threshold: 15}
}

// Validate checks option sanity.
func (o Options) Validate() error {
	if o.IntervalInsts == 0 {
		return fmt.Errorf("phase: zero interval")
	}
	if o.ShortWindows < 2 || o.LongWindows <= o.ShortWindows {
		return fmt.Errorf("phase: windows must satisfy 2 ≤ short < long (got %d/%d)", o.ShortWindows, o.LongWindows)
	}
	if o.Threshold <= 0 {
		return fmt.Errorf("phase: non-positive threshold %g", o.Threshold)
	}
	return nil
}

// Detector consumes per-interval memory-workload counts and reports phase
// changes. It is not safe for concurrent use.
type Detector struct {
	opt  Options
	hist []float64 // ring of recent interval workloads, oldest first
}

// New returns a Detector; it panics on invalid options (programmer error).
func New(opt Options) *Detector {
	if err := opt.Validate(); err != nil {
		panic(err)
	}
	return &Detector{opt: opt, hist: make([]float64, 0, opt.LongWindows)}
}

// Options returns the detector's configuration.
func (d *Detector) Options() Options { return d.opt }

// HistoryLen returns the number of intervals currently in the history.
func (d *Detector) HistoryLen() int { return len(d.hist) }

// Observe folds in the memory-request count of the latest interval and
// returns the current t-score and whether a new phase was declared. On a
// new phase the history is cleared ("clear off the counters and restart").
func (d *Detector) Observe(memRequests float64) (score float64, newPhase bool) {
	d.hist = append(d.hist, memRequests)
	if len(d.hist) > d.opt.LongWindows {
		d.hist = d.hist[1:]
	}
	score = d.Score()
	if score > d.opt.Threshold {
		d.Reset()
		return score, true
	}
	return score, false
}

// Score computes the Welch t-score between the most recent ShortWindows
// intervals and the full history. It returns 0 until the history holds at
// least 2·ShortWindows intervals (the test needs a meaningful long window).
func (d *Detector) Score() float64 {
	n := len(d.hist)
	short := d.opt.ShortWindows
	if n < 2*short {
		return 0
	}
	recent := d.hist[n-short:]
	long := d.hist // "the past 1000·I instructions" includes the recent window
	return stats.TScore(
		stats.Mean(recent), stats.Variance(recent), len(recent),
		stats.Mean(long), stats.Variance(long), len(long),
	)
}

// Reset clears the history (called automatically on a detected phase).
func (d *Detector) Reset() { d.hist = d.hist[:0] }
