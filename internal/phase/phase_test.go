package phase

import (
	"math/rand"
	"testing"
)

func opts() Options {
	return Options{IntervalInsts: 1000, ShortWindows: 10, LongWindows: 100, Threshold: 15}
}

func TestValidate(t *testing.T) {
	if err := DefaultOptions().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Options{
		{IntervalInsts: 0, ShortWindows: 10, LongWindows: 100, Threshold: 15},
		{IntervalInsts: 1, ShortWindows: 1, LongWindows: 100, Threshold: 15},
		{IntervalInsts: 1, ShortWindows: 10, LongWindows: 10, Threshold: 15},
		{IntervalInsts: 1, ShortWindows: 10, LongWindows: 100, Threshold: 0},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("options %d should be invalid", i)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Options{})
}

func TestStationaryWorkloadNoPhase(t *testing.T) {
	d := New(opts())
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		// Stationary noise around 100 requests/interval.
		if _, newPhase := d.Observe(100 + rng.NormFloat64()*5); newPhase {
			t.Fatalf("false phase detection at interval %d", i)
		}
	}
}

func TestStepChangeDetected(t *testing.T) {
	d := New(opts())
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		d.Observe(100 + rng.NormFloat64()*5)
	}
	detected := false
	for i := 0; i < 50; i++ {
		// Dramatic shift: 10x the traffic.
		if _, newPhase := d.Observe(1000 + rng.NormFloat64()*5); newPhase {
			detected = true
			break
		}
	}
	if !detected {
		t.Fatal("10x workload shift not detected")
	}
	// After detection the history is cleared.
	if d.HistoryLen() != 0 {
		t.Fatalf("history not cleared: %d", d.HistoryLen())
	}
}

func TestNoScoreBeforeWarm(t *testing.T) {
	d := New(opts())
	for i := 0; i < 2*opts().ShortWindows-1; i++ {
		if s, _ := d.Observe(float64(i * 100)); s != 0 {
			t.Fatalf("score before warm history = %v, want 0", s)
		}
	}
}

func TestGradualDriftTolerated(t *testing.T) {
	// Slow drift should not look like a dramatic phase: the long window
	// tracks it.
	d := New(opts())
	rng := rand.New(rand.NewSource(3))
	level := 100.0
	phases := 0
	for i := 0; i < 400; i++ {
		level += 0.2 // +0.2 per interval: 80 total over the run
		if _, np := d.Observe(level + rng.NormFloat64()*8); np {
			phases++
		}
	}
	if phases > 2 {
		t.Fatalf("gradual drift triggered %d phases", phases)
	}
}

func TestHistoryBounded(t *testing.T) {
	o := opts()
	d := New(o)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 3*o.LongWindows; i++ {
		d.Observe(50 + rng.NormFloat64())
	}
	if d.HistoryLen() > o.LongWindows {
		t.Fatalf("history %d exceeds cap %d", d.HistoryLen(), o.LongWindows)
	}
}

func TestReset(t *testing.T) {
	d := New(opts())
	for i := 0; i < 50; i++ {
		d.Observe(10)
	}
	d.Reset()
	if d.HistoryLen() != 0 {
		t.Fatal("Reset must clear history")
	}
	if d.Options() != opts() {
		t.Fatal("Options accessor wrong")
	}
}
