package retention

import (
	"fmt"
	"math"

	"mct/internal/rng"
	"mct/internal/trace"
)

// The fifth trade-off of the paper's Table 1 — "Read Latency VS. Read
// Disturbance" (Nair et al., HPCA 2015 "early read / turbo read"; Wang et
// al., DSN 2016) — completes the implementable rows of that table: fast
// reads use shorter sensing with a higher disturb rate, so a line must be
// refreshed (rewritten) after a bounded number of fast reads, costing wear,
// energy and bank time.

// ReadDisturbConfig is one point of the read-disturbance technique space.
type ReadDisturbConfig struct {
	// ReadRatio ∈ (0, 1]: read latency relative to nominal; 1.0 is a full
	// (non-disturbing) read.
	ReadRatio float64
	// DisturbThreshold is how many fast reads a line tolerates before it
	// must be refreshed (ignored at ReadRatio 1.0).
	DisturbThreshold int
}

// Validate checks structural constraints.
func (c ReadDisturbConfig) Validate() error {
	if c.ReadRatio <= 0 || c.ReadRatio > 1 {
		return fmt.Errorf("retention: read ratio %g outside (0,1]", c.ReadRatio)
	}
	if c.ReadRatio < 1 && c.DisturbThreshold <= 0 {
		return fmt.Errorf("retention: fast reads need a disturb threshold")
	}
	return nil
}

// Vector encodes the configuration for the learning stack.
func (c ReadDisturbConfig) Vector() []float64 {
	return []float64{c.ReadRatio, float64(c.DisturbThreshold)}
}

// DisturbBudget returns how many fast reads at the given ratio a line
// physically tolerates before its stored value degrades: nominal reads
// never disturb; the budget shrinks steeply as sensing gets faster.
func (p Params) DisturbBudget(ratio float64) int {
	if ratio >= 1 {
		return math.MaxInt32
	}
	// 10^4 reads at 0.9×, down to 10^2 at 0.5× (exponential sensitivity).
	decades := 4 - 2*(0.9-ratio)/0.4
	if decades < 1 {
		decades = 1
	}
	return int(math.Pow(10, decades))
}

// SimulateReadDisturb runs a benchmark's access stream under a
// read-disturbance configuration: reads complete in TRead·ratio cycles;
// every DisturbThreshold fast reads of a line trigger a refresh write
// (wear + bank occupancy). Configurations whose threshold exceeds the
// physical budget record violations.
func SimulateReadDisturb(benchmark string, accesses int, cfg ReadDisturbConfig, p Params, seed int64) (Metrics, error) {
	spec, err := trace.ByName(benchmark)
	if err != nil {
		return Metrics{}, err
	}
	return SimulateReadDisturbSpec(spec, accesses, cfg, p, seed)
}

// SimulateReadDisturbSpec is SimulateReadDisturb for an explicit workload
// spec.
func SimulateReadDisturbSpec(spec trace.Spec, accesses int, cfg ReadDisturbConfig, p Params, seed int64) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	gen := trace.NewGenerator(spec, rng.NewRand(seed))

	var m Metrics
	bankFree := make([]uint64, p.Banks)
	readCount := map[uint64]int{}
	budget := p.DisturbBudget(cfg.ReadRatio)
	readLat := uint64(math.Round(float64(p.TRead) * cfg.ReadRatio))

	var now uint64
	wearPerWrite := 1.0 / p.EnduranceBase
	var wear float64
	var served, reads uint64

	for i := 0; i < accesses; i++ {
		a := gen.Next()
		now += uint64(a.InstGap / 5)
		line := a.Addr / 64
		b := int(line % uint64(p.Banks)) //mctlint:ignore cyclecast remainder is bounded by the bank count
		start := max64(now, bankFree[b])
		if a.Write {
			bankFree[b] = start + p.TWP
			wear += wearPerWrite
			m.DemandWrites++
			delete(readCount, line) // a write restores the cell
		} else {
			bankFree[b] = start + readLat
			reads++
			if cfg.ReadRatio < 1 {
				readCount[line]++
				if readCount[line] > budget {
					m.Violations++
				}
				if readCount[line] >= cfg.DisturbThreshold {
					// Refresh: rewrite the disturbed line.
					bankFree[b] += p.TWP
					wear += wearPerWrite
					m.ScrubWrites++
					delete(readCount, line)
				}
			}
		}
		served++
		if bankFree[b] > now+1_000_000 {
			now = bankFree[b] - 1_000_000
		}
	}
	var end uint64 = now
	for _, f := range bankFree {
		if f > end {
			end = f
		}
	}
	m.Cycles = end
	if end > 0 {
		m.Throughput = float64(served) / float64(end)
	}
	seconds := float64(end) / p.MemCyclesPerSec
	poolBudget := float64(p.LinesPerBank) * p.WearLevelEff * float64(p.Banks)
	if wear > 0 && seconds > 0 {
		m.LifetimeYears = seconds * poolBudget / wear / 31_557_600.0
		if m.LifetimeYears > 1000 {
			m.LifetimeYears = 1000
		}
	} else {
		m.LifetimeYears = 1000
	}
	writes := float64(m.DemandWrites + m.ScrubWrites)
	m.EnergyJ = writes*p.WriteEnergy + float64(reads)*p.ReadEnergy*cfg.ReadRatio + seconds*p.StaticPower
	return m, nil
}

// ReadDisturbSpace enumerates the technique's configuration grid.
func ReadDisturbSpace(p Params) []ReadDisturbConfig {
	ratios := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	thresholds := []int{64, 256, 1024, 4096}
	var out []ReadDisturbConfig
	for _, r := range ratios {
		if r >= 1 {
			out = append(out, ReadDisturbConfig{ReadRatio: 1, DisturbThreshold: 1})
			continue
		}
		for _, th := range thresholds {
			out = append(out, ReadDisturbConfig{ReadRatio: r, DisturbThreshold: th})
		}
	}
	return out
}
