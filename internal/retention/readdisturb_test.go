package retention

import (
	"testing"

	"mct/internal/trace"
)

func TestReadDisturbValidate(t *testing.T) {
	if err := (ReadDisturbConfig{ReadRatio: 1, DisturbThreshold: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (ReadDisturbConfig{ReadRatio: 0.7, DisturbThreshold: 100}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []ReadDisturbConfig{
		{ReadRatio: 0},
		{ReadRatio: 1.2},
		{ReadRatio: 0.5}, // fast reads without a threshold
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestDisturbBudgetDecays(t *testing.T) {
	p := DefaultParams()
	b9 := p.DisturbBudget(0.9)
	b5 := p.DisturbBudget(0.5)
	if b9 <= b5 {
		t.Fatalf("budget must shrink with faster reads: %d vs %d", b9, b5)
	}
	if p.DisturbBudget(1.0) < 1<<30 {
		t.Fatal("nominal reads must not disturb")
	}
}

func TestReadDisturbSpace(t *testing.T) {
	sp := ReadDisturbSpace(DefaultParams())
	if len(sp) != 5*4+1 {
		t.Fatalf("space size %d, want 21", len(sp))
	}
	for _, c := range sp {
		if err := c.Validate(); err != nil {
			t.Fatalf("invalid member %+v: %v", c, err)
		}
	}
}

func TestFastReadsTriggerRefreshes(t *testing.T) {
	p := DefaultParams()
	// A read-hot region: lines accumulate reads quickly, so fast reads
	// with a small threshold must refresh.
	hot := trace.Spec{Name: "hotreads", Phases: []trace.Phase{{
		Insts: 1 << 40, MPKI: 40, WriteFrac: 0.05,
		HotFrac: 1.0, HotBytes: 64 * 1024,
	}}}
	slow, err := SimulateReadDisturbSpec(hot, 100_000, ReadDisturbConfig{ReadRatio: 1, DisturbThreshold: 1}, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := SimulateReadDisturbSpec(hot, 100_000, ReadDisturbConfig{ReadRatio: 0.5, DisturbThreshold: 64}, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if slow.ScrubWrites != 0 {
		t.Fatal("nominal reads must not refresh")
	}
	if fast.ScrubWrites == 0 {
		t.Fatal("fast reads on a hot region must refresh")
	}
	if fast.LifetimeYears >= slow.LifetimeYears {
		t.Fatalf("refreshes must cost lifetime: %v vs %v", fast.LifetimeYears, slow.LifetimeYears)
	}
}

func TestOverBudgetThresholdViolates(t *testing.T) {
	p := DefaultParams()
	// A tiny, read-only hot region: individual lines accumulate hundreds
	// of reads between writes. Budget at 0.5 is 100 reads; a 4096
	// threshold lets cells degrade.
	hot := trace.Spec{Name: "hotreads", Phases: []trace.Phase{{
		Insts: 1 << 40, MPKI: 40, WriteFrac: 0.01,
		HotFrac: 1.0, HotBytes: 4096,
	}}}
	m, err := SimulateReadDisturbSpec(hot, 100_000, ReadDisturbConfig{ReadRatio: 0.5, DisturbThreshold: 4096}, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Violations == 0 {
		t.Fatal("threshold beyond the disturb budget must violate")
	}
	safe, err := SimulateReadDisturbSpec(hot, 100_000, ReadDisturbConfig{ReadRatio: 0.5, DisturbThreshold: 64}, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if safe.Violations != 0 {
		t.Fatalf("safe threshold produced %d violations", safe.Violations)
	}
}

func TestReadDisturbDeterministic(t *testing.T) {
	cfg := ReadDisturbConfig{ReadRatio: 0.7, DisturbThreshold: 256}
	a, _ := SimulateReadDisturb("milc", 20_000, cfg, DefaultParams(), 2)
	b, _ := SimulateReadDisturb("milc", 20_000, cfg, DefaultParams(), 2)
	if a != b {
		t.Fatal("simulation must be deterministic")
	}
}
