// Package retention implements the second trade-off family of the paper's
// Table 1 — "Write Latency VS. Retention" (Li et al., DATE 2014; Zhang et
// al., HPCA 2017) — as an additional substrate demonstrating the
// generality claim of §4.4: MCT's learning framework applies to any NVM
// technique built from latency/endurance/retention knobs, not just mellow
// writes.
//
// The mechanism: a write faster than nominal (ratio < 1, e.g. truncated
// SET pulses in MLC PCM) completes sooner but retains data for a bounded
// time. A region retention monitor must scrub (rewrite) fast-written lines
// before their retention expires, costing extra writes (wear, energy) and
// bank occupancy. The knobs — write speed ratio and scrub interval — span
// a configuration space with exactly the structure MCT optimizes:
// performance vs lifetime vs energy under a hard correctness constraint
// (scrub interval ≤ retention).
package retention

import (
	"fmt"
	"math"
	"slices"

	"mct/internal/rng"
	"mct/internal/trace"
)

// Config is one point of the retention-technique space.
type Config struct {
	// WriteRatio ∈ (0, 1]: write pulse relative to nominal. 1.0 is a full
	// (non-volatile) write; smaller is faster but volatile.
	WriteRatio float64
	// ScrubIntervalCycles is the refresh period for fast-written lines
	// (ignored at WriteRatio 1.0, where retention is effectively
	// unbounded).
	ScrubIntervalCycles uint64
}

// Validate checks structural constraints.
func (c Config) Validate() error {
	if c.WriteRatio <= 0 || c.WriteRatio > 1 {
		return fmt.Errorf("retention: write ratio %g outside (0,1]", c.WriteRatio)
	}
	if c.WriteRatio < 1 && c.ScrubIntervalCycles == 0 {
		return fmt.Errorf("retention: fast writes need a scrub interval")
	}
	return nil
}

// Vector encodes the configuration for the learning stack.
func (c Config) Vector() []float64 {
	return []float64{c.WriteRatio, float64(c.ScrubIntervalCycles)}
}

// Params holds the device/system model.
type Params struct {
	MemCyclesPerSec float64
	TWP             uint64  // nominal write pulse, cycles
	TRead           uint64  // read service, cycles
	EnduranceBase   float64 // writes per line at nominal pulse
	// RetentionAt1 is the retention of a nominal write, in cycles
	// (effectively unbounded).
	RetentionAt1 float64
	// RetentionDecades: retention shrinks by this many decades as the
	// ratio goes 1.0 → 0.5 (exponential sensitivity of partial writes).
	RetentionDecades float64
	// Banks bounds write concurrency (one write per bank at a time in
	// this simplified model).
	Banks int
	// LinesPerBank and WearLevelEff mirror the main NVM model's lifetime
	// accounting.
	LinesPerBank uint64
	WearLevelEff float64
	// Energy coefficients (J); fast writes cost proportionally less.
	WriteEnergy float64
	ReadEnergy  float64
	StaticPower float64
}

// DefaultParams returns a device scaled to the simulator's millisecond
// runs: nominal retention is effectively infinite, while a 0.5× write
// retains data for RetentionAt1 / 10^RetentionDecades cycles.
func DefaultParams() Params {
	return Params{
		MemCyclesPerSec:  400e6,
		TWP:              60,
		TRead:            49,
		EnduranceBase:    8e6 * 0.45,
		RetentionAt1:     4e12, // ~3 hours of cycles: unbounded at run scale
		RetentionDecades: 7,
		Banks:            16,
		LinesPerBank:     4 << 30 / 16 / 64,
		WearLevelEff:     0.95,
		WriteEnergy:      30e-9,
		ReadEnergy:       2e-9,
		StaticPower:      1.3,
	}
}

// RetentionCycles returns the retention of a write at the given ratio.
func (p Params) RetentionCycles(ratio float64) float64 {
	if ratio >= 1 {
		return p.RetentionAt1
	}
	// Exponential decay: each (1-ratio) of pulse loses
	// RetentionDecades/0.5 decades.
	decades := p.RetentionDecades * (1 - ratio) / 0.5
	return p.RetentionAt1 / math.Pow(10, decades)
}

// Metrics reports a run's outcome in MCT's tradeoff space.
type Metrics struct {
	// Throughput is served requests per cycle (the performance proxy).
	Throughput float64
	// LifetimeYears projects wear (demand + scrub writes) as in the main
	// model.
	LifetimeYears float64
	EnergyJ       float64
	// Violations counts lines whose data would have expired before their
	// scrub — a correctness failure (such configurations must be rejected
	// by the optimizer via the constraint below).
	Violations   uint64
	ScrubWrites  uint64
	DemandWrites uint64
	Cycles       uint64
}

// Vector returns [throughput, lifetime, energy] for core.SelectOptimal.
func (m Metrics) Vector() [3]float64 {
	return [3]float64{m.Throughput, m.LifetimeYears, m.EnergyJ}
}

// Simulate runs a benchmark's memory-access stream under cfg. The model is
// bank-occupancy based: reads and writes serialize per bank; scrubs rewrite
// every live fast-written line each interval, at nominal (slow) pulses so
// scrubbed data becomes durable.
func Simulate(benchmark string, accesses int, cfg Config, p Params, seed int64) (Metrics, error) {
	if err := cfg.Validate(); err != nil {
		return Metrics{}, err
	}
	spec, err := trace.ByName(benchmark)
	if err != nil {
		return Metrics{}, err
	}
	gen := trace.NewGenerator(spec, rng.NewRand(seed))

	var m Metrics
	bankFree := make([]uint64, p.Banks)
	// liveFast maps line → deadline (cycle its retention expires).
	liveFast := map[uint64]uint64{}
	retention := p.RetentionCycles(cfg.WriteRatio)
	writePulse := uint64(math.Round(float64(p.TWP) * cfg.WriteRatio))

	var now uint64
	nextScrub := cfg.ScrubIntervalCycles
	wearPerDemand := 1.0 / (p.EnduranceBase * cfg.WriteRatio * cfg.WriteRatio)
	wearPerScrub := 1.0 / p.EnduranceBase
	var wear float64
	var served uint64

	for i := 0; i < accesses; i++ {
		a := gen.Next()
		// Time advances with the instruction stream (2 GHz core at IPC 1
		// → 0.2 memory cycles per instruction; a constant-rate proxy).
		now += uint64(a.InstGap / 5)

		// Scrub epoch: rewrite all live fast lines durably. The live set is
		// drained in sorted line order so bank-occupancy updates are applied
		// in a reproducible sequence — the final state happens to be
		// order-independent today, but future edits to this loop must not be
		// able to introduce map-order nondeterminism silently.
		for cfg.WriteRatio < 1 && now >= nextScrub {
			scrub := make([]uint64, 0, len(liveFast))
			for line := range liveFast {
				scrub = append(scrub, line)
			}
			slices.Sort(scrub)
			for _, line := range scrub {
				if nextScrub > liveFast[line] {
					m.Violations++
				}
				b := int(line % uint64(p.Banks)) //mctlint:ignore cyclecast remainder is bounded by the bank count
				start := max64(bankFree[b], nextScrub)
				bankFree[b] = start + p.TWP
				wear += wearPerScrub
				m.ScrubWrites++
				delete(liveFast, line)
			}
			nextScrub += cfg.ScrubIntervalCycles
		}

		line := a.Addr / 64
		b := int(line % uint64(p.Banks)) //mctlint:ignore cyclecast remainder is bounded by the bank count
		start := max64(now, bankFree[b])
		if a.Write {
			bankFree[b] = start + writePulse
			wear += wearPerDemand
			m.DemandWrites++
			if cfg.WriteRatio < 1 {
				liveFast[line] = now + uint64(retention)
			}
		} else {
			bankFree[b] = start + p.TRead
		}
		served++
		if bankFree[b] > now+1_000_000 {
			// Saturated: charge the backlog to elapsed time.
			now = bankFree[b] - 1_000_000
		}
	}
	var end uint64 = now
	for _, f := range bankFree {
		if f > end {
			end = f
		}
	}
	m.Cycles = end
	if end > 0 {
		m.Throughput = float64(served) / float64(end)
	}
	seconds := float64(end) / p.MemCyclesPerSec
	budget := float64(p.LinesPerBank) * p.WearLevelEff * float64(p.Banks)
	if wear > 0 && seconds > 0 {
		m.LifetimeYears = seconds * budget / wear / 31_557_600.0
		if m.LifetimeYears > 1000 {
			m.LifetimeYears = 1000
		}
	} else {
		m.LifetimeYears = 1000
	}
	writes := float64(m.DemandWrites)*cfg.WriteRatio + float64(m.ScrubWrites)
	m.EnergyJ = writes*p.WriteEnergy + float64(served-m.DemandWrites)*p.ReadEnergy + seconds*p.StaticPower
	return m, nil
}

// Space enumerates the technique's configuration grid.
func Space(p Params) []Config {
	ratios := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	intervals := []uint64{50_000, 100_000, 200_000, 400_000, 800_000}
	var out []Config
	for _, r := range ratios {
		if r >= 1 {
			out = append(out, Config{WriteRatio: 1})
			continue
		}
		for _, iv := range intervals {
			out = append(out, Config{WriteRatio: r, ScrubIntervalCycles: iv})
		}
	}
	return out
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
