package retention

import (
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{WriteRatio: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Config{WriteRatio: 0.7, ScrubIntervalCycles: 1000}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{WriteRatio: 0},
		{WriteRatio: 1.5},
		{WriteRatio: 0.5}, // fast writes without scrubbing
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestRetentionDecays(t *testing.T) {
	p := DefaultParams()
	r1 := p.RetentionCycles(1.0)
	r09 := p.RetentionCycles(0.9)
	r05 := p.RetentionCycles(0.5)
	if !(r1 > r09 && r09 > r05) {
		t.Fatalf("retention must decay with speed: %g %g %g", r1, r09, r05)
	}
	// Half pulse loses RetentionDecades decades.
	want := p.RetentionAt1 / 1e7
	if r05 < want*0.9 || r05 > want*1.1 {
		t.Fatalf("retention at 0.5 = %g, want ≈ %g", r05, want)
	}
}

func TestSpaceShape(t *testing.T) {
	sp := Space(DefaultParams())
	if len(sp) != 5*5+1 {
		t.Fatalf("space size %d, want 26", len(sp))
	}
	for _, c := range sp {
		if err := c.Validate(); err != nil {
			t.Fatalf("invalid space member %+v: %v", c, err)
		}
	}
}

func TestSimulateNominalBaseline(t *testing.T) {
	p := DefaultParams()
	m, err := Simulate("stream", 40_000, Config{WriteRatio: 1}, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Throughput <= 0 || m.Cycles == 0 {
		t.Fatalf("degenerate metrics: %+v", m)
	}
	if m.ScrubWrites != 0 || m.Violations != 0 {
		t.Fatal("nominal writes must not scrub")
	}
}

func TestFastWritesTradeLifetimeForThroughput(t *testing.T) {
	p := DefaultParams()
	slow, err := Simulate("stream", 300_000, Config{WriteRatio: 1}, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Simulate("stream", 300_000, Config{WriteRatio: 0.5, ScrubIntervalCycles: 100_000}, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fast.ScrubWrites == 0 {
		t.Fatal("fast writes must trigger scrubbing")
	}
	if fast.LifetimeYears >= slow.LifetimeYears {
		t.Fatalf("fast+scrub must cost lifetime: %v vs %v", fast.LifetimeYears, slow.LifetimeYears)
	}
}

func TestScrubBeyondRetentionViolates(t *testing.T) {
	p := DefaultParams()
	// Retention at 0.5 ≈ RetentionAt1/1e7 = 4e5 cycles; a 8e5 scrub
	// interval must violate.
	m, err := Simulate("gups", 400_000, Config{WriteRatio: 0.5, ScrubIntervalCycles: 800_000}, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Violations == 0 {
		t.Fatal("over-long scrub interval must produce retention violations")
	}
	safe, err := Simulate("gups", 400_000, Config{WriteRatio: 0.5, ScrubIntervalCycles: 100_000}, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if safe.Violations != 0 {
		t.Fatalf("safe interval produced %d violations", safe.Violations)
	}
}

func TestTighterScrubMoreWrites(t *testing.T) {
	p := DefaultParams()
	tight, _ := Simulate("lbm", 300_000, Config{WriteRatio: 0.7, ScrubIntervalCycles: 50_000}, p, 1)
	loose, _ := Simulate("lbm", 300_000, Config{WriteRatio: 0.7, ScrubIntervalCycles: 400_000}, p, 1)
	if tight.ScrubWrites <= loose.ScrubWrites {
		t.Fatalf("tighter scrubbing must rewrite more: %d vs %d", tight.ScrubWrites, loose.ScrubWrites)
	}
}

func TestSimulateUnknownBenchmark(t *testing.T) {
	if _, err := Simulate("nope", 100, Config{WriteRatio: 1}, DefaultParams(), 1); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{WriteRatio: 0.8, ScrubIntervalCycles: 200_000}
	a, _ := Simulate("milc", 20_000, cfg, DefaultParams(), 3)
	b, _ := Simulate("milc", 20_000, cfg, DefaultParams(), 3)
	if a != b {
		t.Fatal("simulation must be deterministic")
	}
}
