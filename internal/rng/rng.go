// Package rng is the single blessed constructor for deterministic random
// sources. Library code must never draw from math/rand's global source and
// must never mint its own *rand.Rand from rand.NewSource — both are flagged
// by the norandglobal analyzer (cmd/mctlint) — because an unseeded or
// ad-hoc stream makes experiment results irreproducible. Instead, every
// component takes an injected *rand.Rand, and the streams are created here,
// derived from the experiment seed flags, so all randomness in a run is
// auditable from one chokepoint.
package rng

import "math/rand"

// New returns a deterministic source seeded with seed. This is the only
// place in the tree (outside tests) allowed to construct a rand source.
func New(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) //mctlint:ignore norandglobal sole blessed RNG constructor; everything else takes an injected *rand.Rand
}

// Derive returns an independent deterministic stream for a named sub-use of
// an experiment seed (e.g. per-trial or per-variant streams). Distinct
// offsets yield decorrelated streams while keeping the whole run a pure
// function of the base seed.
func Derive(seed, offset int64) *rand.Rand {
	return New(seed + offset)
}
