// Package rng is the single blessed constructor for deterministic random
// sources. Library code must never draw from math/rand's global source and
// must never mint its own *rand.Rand from rand.NewSource — both are flagged
// by the norandglobal analyzer (cmd/mctlint) — because an unseeded or
// ad-hoc stream makes experiment results irreproducible. Instead, every
// component takes an injected *rand.Rand, and the streams are created here,
// derived from the experiment seed flags, so all randomness in a run is
// auditable from one chokepoint.
//
// The underlying source is an in-repo splitmix64 generator rather than the
// stdlib source. Its entire state is one uint64, which makes PRNG state
// capturable: components that must be snapshotted (trace generators,
// machines) hold a *Rand, whose Clone/State/SetState expose the stream
// position for deep copies and checkpoints. Stdlib sources keep their state
// unexported, which would make a cloned simulator silently share (or lose)
// its random stream.
package rng

import "math/rand"

// splitmix64 constants (Steele, Lea & Flood, "Fast Splittable Pseudorandom
// Number Generators", OOPSLA 2014; same parameters as Vigna's reference
// implementation).
const (
	splitmixGamma = 0x9e3779b97f4a7c15
	splitmixMulA  = 0xbf58476d1ce4e5b9
	splitmixMulB  = 0x94d049bb133111eb
)

// Source is a splitmix64 pseudo-random source implementing
// math/rand.Source64. Unlike the stdlib source, its complete state is a
// single exported-able uint64, so a stream can be captured, cloned, and
// restored exactly. It is not safe for concurrent use.
type Source struct {
	state uint64
}

var _ rand.Source64 = (*Source)(nil)

// NewSource returns a Source seeded with seed.
func NewSource(seed int64) *Source {
	s := &Source{}
	s.Seed(seed)
	return s
}

// Seed resets the source to the stream of seed.
func (s *Source) Seed(seed int64) {
	s.state = uint64(seed) //mctlint:ignore cyclecast seeding reinterprets the bit pattern; negative seeds are distinct valid streams
}

// Uint64 advances the stream and returns the next 64 random bits.
func (s *Source) Uint64() uint64 {
	s.state += splitmixGamma
	z := s.state
	z = (z ^ (z >> 30)) * splitmixMulA
	z = (z ^ (z >> 27)) * splitmixMulB
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1) //mctlint:ignore cyclecast top bit cleared by the shift, so the conversion is lossless and non-negative
}

// State returns the complete current state of the stream.
func (s *Source) State() uint64 { return s.state }

// SetState restores the stream to a state captured with State.
func (s *Source) SetState(state uint64) { s.state = state }

// Clone returns an independent copy at the same stream position.
func (s *Source) Clone() *Source {
	c := *s
	return &c
}

// Rand couples a *rand.Rand with the clonable Source feeding it, so the
// stream position survives Clone and checkpoint round trips. The embedded
// *rand.Rand provides the full stdlib distribution API (ExpFloat64,
// Float64, Int63n, ...); all of those methods are stateless beyond the
// source, so capturing the Source captures the stream.
//
// The one exception in the stdlib API is Rand.Read, which buffers partial
// draws internally; do not use Read on a Rand that will be cloned (nothing
// in this tree does).
type Rand struct {
	*rand.Rand
	src *Source
}

// NewRand returns a clonable deterministic stream seeded with seed.
func NewRand(seed int64) *Rand {
	return fromSource(NewSource(seed))
}

// DeriveRand is Derive returning the clonable wrapper.
func DeriveRand(seed, offset int64) *Rand {
	return NewRand(seed + offset)
}

func fromSource(src *Source) *Rand {
	return &Rand{
		Rand: rand.New(src), //mctlint:ignore norandglobal blessed constructor; the source is the in-repo clonable splitmix64
		src:  src,
	}
}

// Clone returns an independent stream at the same position: the clone and
// the original produce the identical remaining sequence, and draws on one
// never affect the other.
//
//mctlint:ignore clonefields the embedded *rand.Rand is rebuilt by fromSource around the cloned source
func (r *Rand) Clone() *Rand {
	return fromSource(r.src.Clone())
}

// State returns the complete PRNG state for checkpointing.
func (r *Rand) State() uint64 { return r.src.State() }

// SetState restores the stream to a state captured with State.
func (r *Rand) SetState(state uint64) { r.src.SetState(state) }

// New returns a deterministic source seeded with seed. This is the only
// place in the tree (outside tests) allowed to construct a rand source.
// Callers that need to snapshot the stream should use NewRand instead.
func New(seed int64) *rand.Rand {
	return NewRand(seed).Rand
}

// Derive returns an independent deterministic stream for a named sub-use of
// an experiment seed (e.g. per-trial or per-variant streams). Distinct
// offsets yield decorrelated streams while keeping the whole run a pure
// function of the base seed.
func Derive(seed, offset int64) *rand.Rand {
	return New(seed + offset)
}
