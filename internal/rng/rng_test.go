package rng

import (
	"math/rand"
	"testing"
)

func TestNewIsDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if av, bv := a.Int63(), b.Int63(); av != bv {
			t.Fatalf("draw %d diverged: %d vs %d", i, av, bv)
		}
	}
}

func TestDeriveDecorrelates(t *testing.T) {
	a, b := Derive(7, 1), Derive(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same == 100 {
		t.Fatal("derived streams with different offsets are identical")
	}
}

func TestSourceImplementsSource64(t *testing.T) {
	var _ rand.Source64 = NewSource(1)
}

func TestSourceStateRoundTrip(t *testing.T) {
	s := NewSource(42)
	for i := 0; i < 17; i++ {
		s.Uint64()
	}
	saved := s.State()
	var want [8]uint64
	for i := range want {
		want[i] = s.Uint64()
	}
	s.SetState(saved)
	for i := range want {
		if got := s.Uint64(); got != want[i] {
			t.Fatalf("draw %d after SetState: got %d, want %d", i, got, want[i])
		}
	}
}

// TestRandCloneEquivalence is the contract the snapshot layers rest on: a
// cloned stream replays the identical remaining sequence across every
// distribution method the simulator uses (ExpFloat64, Float64, Int63n).
func TestRandCloneEquivalence(t *testing.T) {
	r := NewRand(99)
	for i := 0; i < 31; i++ {
		r.ExpFloat64()
	}
	c := r.Clone()
	for i := 0; i < 200; i++ {
		if a, b := r.ExpFloat64(), c.ExpFloat64(); a != b { //mctlint:ignore floateq exact-replay equivalence check; any bit difference is the bug
			t.Fatalf("ExpFloat64 draw %d diverged: %v vs %v", i, a, b)
		}
		if a, b := r.Float64(), c.Float64(); a != b { //mctlint:ignore floateq exact-replay equivalence check; any bit difference is the bug
			t.Fatalf("Float64 draw %d diverged: %v vs %v", i, a, b)
		}
		if a, b := r.Int63n(1000), c.Int63n(1000); a != b {
			t.Fatalf("Int63n draw %d diverged: %d vs %d", i, a, b)
		}
	}
}

// TestRandCloneIsolation: draws on a clone never perturb the parent.
func TestRandCloneIsolation(t *testing.T) {
	r := NewRand(5)
	c := r.Clone()
	before := r.State()
	for i := 0; i < 100; i++ {
		c.Uint64()
	}
	if r.State() != before {
		t.Fatal("draws on the clone moved the parent's state")
	}
}

func TestRandStateRoundTrip(t *testing.T) {
	r := NewRand(123)
	for i := 0; i < 9; i++ {
		r.Float64()
	}
	saved := r.State()
	want := make([]float64, 50)
	for i := range want {
		want[i] = r.Float64()
	}
	r.SetState(saved)
	for i := range want {
		if got := r.Float64(); got != want[i] { //mctlint:ignore floateq exact-replay equivalence check; any bit difference is the bug
			t.Fatalf("draw %d after SetState: got %v, want %v", i, got, want[i])
		}
	}
}

// TestSourceUniformity is a coarse sanity check that splitmix64 output is
// well distributed: bucket 64k draws into 16 bins and require each bin to
// hold within 25% of the expected count.
func TestSourceUniformity(t *testing.T) {
	s := NewSource(2026)
	const draws = 1 << 16
	var bins [16]int
	for i := 0; i < draws; i++ {
		bins[s.Uint64()>>60]++
	}
	expect := draws / len(bins)
	for i, n := range bins {
		if n < expect*3/4 || n > expect*5/4 {
			t.Errorf("bin %d: %d draws, expected about %d", i, n, expect)
		}
	}
}

// TestNewSharesStreamWithNewRand: New is NewRand minus the wrapper, so both
// constructors produce the same stream for one seed.
func TestNewSharesStreamWithNewRand(t *testing.T) {
	a, b := New(11), NewRand(11)
	for i := 0; i < 50; i++ {
		if av, bv := a.Int63(), b.Int63(); av != bv {
			t.Fatalf("draw %d diverged: %d vs %d", i, av, bv)
		}
	}
}
