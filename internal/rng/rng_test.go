package rng

import "testing"

func TestNewIsDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 100; i++ {
		if av, bv := a.Int63(), b.Int63(); av != bv {
			t.Fatalf("draw %d diverged: %d vs %d", i, av, bv)
		}
	}
}

func TestDeriveDecorrelates(t *testing.T) {
	a, b := Derive(7, 1), Derive(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same == 100 {
		t.Fatal("derived streams with different offsets are identical")
	}
}
