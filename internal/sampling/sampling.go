// Package sampling selects which configurations MCT exercises during its
// sampling period and how they are scheduled. It implements the two
// sample-set strategies compared in Figure 4b — uniform random sampling and
// feature-based sampling guided by the lasso-selected primary features
// (fast_latency, slow_latency, cancellation) — and the cyclic fine-grained
// schedule of §5.2 that interleaves all samples within each memory burst.
package sampling

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mct/internal/config"
)

// Plan is an ordered set of sample configurations, as indices into a
// configuration space.
type Plan struct {
	Indices []int
}

// Len returns the number of samples.
func (p Plan) Len() int { return len(p.Indices) }

// Random draws n distinct configuration indices uniformly from the space.
// The caller injects the random source (internal/rng) so plans are a pure
// function of the experiment seed.
func Random(space *config.Space, n int, rng *rand.Rand) Plan {
	if n > space.Len() {
		n = space.Len()
	}
	perm := rng.Perm(space.Len())
	idx := append([]int(nil), perm[:n]...)
	sort.Ints(idx)
	return Plan{Indices: idx}
}

// FeatureBased builds the feature-guided sample set of §4.4: one sample per
// combination of the three primary features — fast_latency, slow_latency
// and cancellation level — with the remaining knobs (bank_aware,
// eager_writebacks) chosen randomly among configurations matching that
// combination. The paper obtains 77 samples this way; the exact count
// depends on which combinations exist in the space. The caller injects the
// random source (internal/rng).
func FeatureBased(space *config.Space, rng *rand.Rand) Plan {
	type key struct {
		fast, slow float64
		canc       float64
	}
	groups := map[key][]int{}
	for i := 0; i < space.Len(); i++ {
		c := space.At(i).Compressed() // [bank, eager, fast, slow, canc]
		k := key{fast: c[2], slow: c[3], canc: c[4]}
		groups[k] = append(groups[k], i)
	}

	keys := make([]key, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		ka, kb := keys[a], keys[b]
		if ka.fast < kb.fast {
			return true
		}
		if ka.fast > kb.fast {
			return false
		}
		if ka.slow < kb.slow {
			return true
		}
		if ka.slow > kb.slow {
			return false
		}
		return ka.canc < kb.canc
	})

	idx := make([]int, 0, len(keys))
	for _, k := range keys {
		g := groups[k]
		idx = append(idx, g[rng.Intn(len(g))])
	}
	sort.Ints(idx)
	return Plan{Indices: idx}
}

// Schedule is the cyclic fine-grained sampling schedule of §5.2: each
// sample configuration runs for UnitInsts instructions per round, looping
// over all samples for Rounds rounds, so every sample experiences the full
// spread of bursty memory behaviour.
type Schedule struct {
	UnitInsts uint64
	Rounds    int
}

// BuildSchedule divides a total sampling budget of totalInsts instructions
// across n samples in units of unitInsts: Rounds = totalInsts/(n·unitInsts),
// floored at one round.
func BuildSchedule(totalInsts, unitInsts uint64, n int) (Schedule, error) {
	if n <= 0 {
		return Schedule{}, fmt.Errorf("sampling: no samples to schedule")
	}
	if unitInsts == 0 || totalInsts == 0 {
		return Schedule{}, fmt.Errorf("sampling: zero budget or unit")
	}
	q := totalInsts / (uint64(n) * unitInsts)
	if q > math.MaxInt32 {
		q = math.MaxInt32
	}
	rounds := int(q) //mctlint:ignore cyclecast clamped to MaxInt32 above
	if rounds < 1 {
		rounds = 1
	}
	return Schedule{UnitInsts: unitInsts, Rounds: rounds}, nil
}

// TotalInsts returns the instruction cost of running the schedule over n
// samples.
func (s Schedule) TotalInsts(n int) uint64 {
	return s.UnitInsts * uint64(s.Rounds) * uint64(n)
}
