package sampling

import (
	"testing"

	"mct/internal/config"
	"mct/internal/rng"
)

func space() *config.Space { return config.NewSpace(config.SpaceOptions{}) }

func TestRandomPlan(t *testing.T) {
	s := space()
	p := Random(s, 50, rng.New(7))
	if p.Len() != 50 {
		t.Fatalf("plan size %d, want 50", p.Len())
	}
	seen := map[int]bool{}
	for i, idx := range p.Indices {
		if idx < 0 || idx >= s.Len() {
			t.Fatalf("index %d out of range", idx)
		}
		if seen[idx] {
			t.Fatalf("duplicate index %d", idx)
		}
		seen[idx] = true
		if i > 0 && p.Indices[i] <= p.Indices[i-1] {
			t.Fatal("indices not sorted")
		}
	}
	// Deterministic by seed; different seeds differ.
	q := Random(s, 50, rng.New(7))
	for i := range p.Indices {
		if p.Indices[i] != q.Indices[i] {
			t.Fatal("same seed must give the same plan")
		}
	}
	r := Random(s, 50, rng.New(8))
	same := 0
	for i := range p.Indices {
		if p.Indices[i] == r.Indices[i] {
			same++
		}
	}
	if same == len(p.Indices) {
		t.Fatal("different seeds should differ")
	}
	// Oversized request clamps to the space.
	if Random(s, s.Len()+100, rng.New(1)).Len() != s.Len() {
		t.Fatal("oversized plan must clamp")
	}
}

func TestFeatureBasedPlanCoversPrimaryGrid(t *testing.T) {
	s := space()
	p := FeatureBased(s, rng.New(42))
	// One sample per (fast, slow, cancellation) combination present in
	// the space — the paper gets 77; our grids yield a similar count.
	if p.Len() < 60 || p.Len() > 100 {
		t.Fatalf("feature-based plan size %d outside expected band", p.Len())
	}
	type key struct{ fast, slow, canc float64 }
	want := map[key]bool{}
	for i := 0; i < s.Len(); i++ {
		c := s.At(i).Compressed()
		want[key{c[2], c[3], c[4]}] = true
	}
	got := map[key]bool{}
	for _, idx := range p.Indices {
		c := s.At(idx).Compressed()
		got[key{c[2], c[3], c[4]}] = true
	}
	if len(got) != len(want) {
		t.Fatalf("plan covers %d/%d primary-feature combinations", len(got), len(want))
	}
	// Deterministic.
	q := FeatureBased(s, rng.New(42))
	for i := range p.Indices {
		if p.Indices[i] != q.Indices[i] {
			t.Fatal("feature-based plan must be deterministic per seed")
		}
	}
}

func TestBuildSchedule(t *testing.T) {
	sched, err := BuildSchedule(1_000_000, 10_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Rounds != 10 || sched.UnitInsts != 10_000 {
		t.Fatalf("schedule = %+v", sched)
	}
	if sched.TotalInsts(10) != 1_000_000 {
		t.Fatalf("TotalInsts = %d", sched.TotalInsts(10))
	}
	// Budget smaller than one round still yields one round.
	sched, err = BuildSchedule(1000, 10_000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Rounds != 1 {
		t.Fatalf("minimum rounds = %d, want 1", sched.Rounds)
	}
	if _, err := BuildSchedule(0, 10, 5); err == nil {
		t.Fatal("zero budget must fail")
	}
	if _, err := BuildSchedule(10, 0, 5); err == nil {
		t.Fatal("zero unit must fail")
	}
	if _, err := BuildSchedule(10, 10, 0); err == nil {
		t.Fatal("zero samples must fail")
	}
}
