// Package server is the serving layer behind cmd/mctd: a bounded,
// client-fair job queue over the api wire types, a single-runner scheduler
// that executes jobs on the engine worker pool, durable job state under a
// state directory, and the HTTP/SSE surface that exposes it all.
//
// The package splits along three seams:
//
//   - exec.go: Execute turns an api.JobSpec into its artifact bytes. It is
//     transport-free — the mct CLI's -job mode calls it directly — and
//     checkpoint-aware: given a Checkpoints dir it persists resumable
//     progress (machine checkpoints, partial sweep results) after every
//     chunk, and on a rerun resumes from whatever it finds there.
//   - queue.go / job.go / store.go: admission control, per-client fairness,
//     the job state machine with SSE fan-out, and the on-disk layout.
//   - server.go: the HTTP handlers and the runner loop.
//
// Determinism contract: for one spec, the artifact bytes are identical
// whether the job ran in the daemon or the CLI, at any worker count, and
// whether or not the run was interrupted and resumed — that is what lets CI
// cmp a daemon artifact against the CLI's output, and what makes a kill -9
// mid-job invisible in the result.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"mct/api"
	"mct/internal/config"
	"mct/internal/engine"
	"mct/internal/experiments"
	"mct/internal/obs"
	"mct/internal/sim"
	"mct/internal/trace"
)

// Execution tuning defaults: how much work runs between two persistence
// points. Chunk boundaries never change results (see sim.StepInstructions),
// only how much a crash can lose.
const (
	// DefaultChunkInsts is the instruction budget per evaluate-job chunk.
	DefaultChunkInsts = 1_000_000
	// DefaultSweepChunk is the number of configurations per sweep-job chunk.
	DefaultSweepChunk = 64
)

// Checkpoints names the directory where Execute persists resumable state
// for one job: a machine checkpoint (machine.ckpt) and, for sweeps, the
// completed prefix of results (partial.json). Nil Checkpoints in
// ExecOptions disables persistence entirely — the CLI's synchronous mode.
type Checkpoints struct {
	Dir string
}

func (c *Checkpoints) machinePath() string { return c.Dir + "/machine.ckpt" }
func (c *Checkpoints) partialPath() string { return c.Dir + "/partial.json" }

// ExecOptions tunes one Execute call.
type ExecOptions struct {
	// Workers bounds intra-job parallelism (engine.Map fan-out); 0 means
	// GOMAXPROCS. Artifacts are identical at any value.
	Workers int
	// Events, when non-nil, receives progress observations (chunk
	// completions, sweep progress). The daemon fans these out over SSE.
	Events obs.TraceSink
	// Obs, when non-nil, receives the engine metric family from sweep
	// fan-out; the daemon passes its /metrics registry.
	Obs *obs.Registry
	// Checkpoints, when non-nil, enables resumable persistence (see
	// Checkpoints). Nil runs the job in memory only.
	Checkpoints *Checkpoints
	// ChunkInsts / SweepChunk override the persistence granularity
	// (0 = the package defaults).
	ChunkInsts uint64
	SweepChunk int

	// onChunk, when non-nil, runs after each persisted chunk — a test seam
	// for interrupting a job at a deterministic point.
	onChunk func(done, total int)
}

func (o ExecOptions) chunkInsts() uint64 {
	if o.ChunkInsts > 0 {
		return o.ChunkInsts
	}
	return DefaultChunkInsts
}

func (o ExecOptions) sweepChunk() int {
	if o.SweepChunk > 0 {
		return o.SweepChunk
	}
	return DefaultSweepChunk
}

func (o ExecOptions) emit(e obs.Event) {
	if o.Events != nil {
		o.Events(e)
	}
}

func (o ExecOptions) chunkDone(done, total int) {
	if o.onChunk != nil {
		o.onChunk(done, total)
	}
}

// Execute runs one job to completion and returns its artifact document:
// api.Metrics for evaluate, api.SweepResult for sweep, api.ExperimentReport
// for experiment. With opt.Checkpoints set it persists resumable state
// after every chunk and resumes from that state when rerun; a context
// cancellation returns ctx.Err() with the persisted state intact, so the
// next Execute continues where this one stopped.
func Execute(ctx context.Context, spec api.JobSpec, opt ExecOptions) ([]byte, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case api.KindEvaluate:
		return execEvaluate(ctx, spec, opt)
	case api.KindSweep:
		return execSweep(ctx, spec, opt)
	case api.KindExperiment:
		return execExperiment(ctx, spec, opt)
	}
	return nil, fmt.Errorf("server: unknown job kind %q", spec.Kind)
}

func simOptions(spec api.JobSpec) sim.Options {
	o := sim.DefaultOptions()
	o.Tiers = config.TierConfig{
		DRAMCache:            spec.DRAMCache,
		DRAMPromoteThreshold: spec.DRAMPromoteThreshold,
	}
	return o
}

// execEvaluate measures one configuration for spec.Insts instructions,
// checkpointing the whole machine between instruction chunks. Window-start
// markers ride the checkpoint, so the final WindowMetrics of a resumed run
// equals a straight RunInstructions — byte-identical artifact either way.
func execEvaluate(ctx context.Context, spec api.JobSpec, opt ExecOptions) ([]byte, error) {
	cfg, err := spec.Config.Config()
	if err != nil {
		return nil, err
	}
	var m *sim.Machine
	if ck := opt.Checkpoints; ck != nil {
		if _, serr := os.Stat(ck.machinePath()); serr == nil {
			m, err = sim.LoadCheckpoint(ck.machinePath())
			if err != nil {
				return nil, fmt.Errorf("server: resume evaluate: %w", err)
			}
		}
	}
	if m == nil {
		ts, err := trace.ByName(spec.Benchmark)
		if err != nil {
			return nil, err
		}
		m, err = sim.NewMachine(ts, cfg, simOptions(spec))
		if err != nil {
			return nil, err
		}
		warm := spec.WarmupAccesses
		if warm <= 0 {
			warm = sim.DefaultWarmupAccesses
		}
		m.Warmup(warm) // ends by opening the measurement window
	}
	total := spec.Insts
	chunk := opt.chunkInsts()
	for {
		done := m.WindowInstructions()
		if done >= total {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := total - done
		if n > chunk {
			n = chunk
		}
		m.StepInstructions(n)
		if ck := opt.Checkpoints; ck != nil {
			if err := sim.SaveCheckpoint(ck.machinePath(), m); err != nil {
				return nil, err
			}
		}
		di, ti := int(m.WindowInstructions()), int(total) //mctlint:ignore cyclecast instruction budgets come from the wire spec, far below 2^62
		opt.emit(obs.Event{Scope: "job", Item: spec.Benchmark, Done: di, Total: ti})
		opt.chunkDone(di, ti)
	}
	return api.Encode(api.FromMetrics(m.WindowMetrics())), nil
}

// sweepPartial is the persisted completed prefix of a sweep job. Metrics
// are stored in wire form, which round-trips exactly (shortest-round-trip
// float encoding), so a resumed sweep's artifact is byte-identical to an
// uninterrupted one.
type sweepPartial struct {
	V       int           `json:"v"`
	Metrics []api.Metrics `json:"metrics"`
}

// execSweep evaluates every stride-th configuration of the enumerated space
// on one prepared benchmark. The warm machine is checkpointed once after
// Prepare, and the completed result prefix is persisted after every chunk;
// a resume restores both and recomputes only the tail. Chunks fan out on
// the engine worker pool and results keep enumeration order at any worker
// count.
func execSweep(ctx context.Context, spec api.JobSpec, opt ExecOptions) ([]byte, error) {
	stride := spec.Stride
	if stride < 1 {
		stride = 1
	}
	space := config.NewSpace(config.SpaceOptions{})
	var indices []int
	for i := 0; i < space.Len(); i += stride {
		indices = append(indices, i)
	}

	var done []api.Metrics
	var prep *sim.Prepared
	if ck := opt.Checkpoints; ck != nil {
		if _, serr := os.Stat(ck.machinePath()); serr == nil {
			m, err := sim.LoadCheckpoint(ck.machinePath())
			if err != nil {
				return nil, fmt.Errorf("server: resume sweep: %w", err)
			}
			prep, err = sim.PreparedFromMachine(m, 0, spec.Accesses)
			if err != nil {
				return nil, err
			}
			if data, rerr := os.ReadFile(ck.partialPath()); rerr == nil {
				var p sweepPartial
				if err := decodePartial(data, &p); err != nil {
					return nil, fmt.Errorf("server: resume sweep: %w", err)
				}
				if len(p.Metrics) > len(indices) {
					return nil, fmt.Errorf("server: resume sweep: partial has %d results for %d indices", len(p.Metrics), len(indices))
				}
				done = p.Metrics
			}
		}
	}
	if prep == nil {
		var err error
		prep, err = sim.Prepare(spec.Benchmark, 0, spec.Accesses, simOptions(spec))
		if err != nil {
			return nil, err
		}
		if ck := opt.Checkpoints; ck != nil {
			if err := prep.Checkpoint(ck.machinePath()); err != nil {
				return nil, err
			}
		}
	}

	chunk := opt.sweepChunk()
	for start := len(done); start < len(indices); start += chunk {
		end := start + chunk
		if end > len(indices) {
			end = len(indices)
		}
		ms, err := engine.Map(ctx, end-start, engine.Options{Workers: opt.Workers, Obs: opt.Obs},
			func(ctx context.Context, i int) (sim.Metrics, error) {
				return prep.Evaluate(space.At(indices[start+i]))
			})
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			done = append(done, api.FromMetrics(m))
		}
		if ck := opt.Checkpoints; ck != nil {
			if err := writeFileAtomic(ck.partialPath(), api.Encode(sweepPartial{V: api.Version, Metrics: done})); err != nil {
				return nil, err
			}
		}
		opt.emit(obs.Event{Scope: "job", Item: spec.Benchmark, Done: len(done), Total: len(indices)})
		opt.chunkDone(len(done), len(indices))
	}

	res := api.SweepResult{
		V:         api.Version,
		Benchmark: spec.Benchmark,
		Accesses:  spec.Accesses,
		Stride:    stride,
		SpaceSize: space.Len(),
		Indices:   indices,
		Metrics:   done,
	}
	return api.Encode(res), nil
}

// execExperiment regenerates one paper table/figure. Resume granularity is
// the sweep disk cache (MCT_SWEEP_CACHE): completed sweeps reload from disk
// on a rerun, so only unfinished sweep work repeats. The daemon points the
// cache at its state directory for exactly this reason.
func execExperiment(ctx context.Context, spec api.JobSpec, opt ExecOptions) ([]byte, error) {
	eopt := experiments.DefaultOptions()
	rp := experiments.DefaultRunParams()
	if spec.Quick {
		eopt = experiments.QuickOptions()
		rp.TotalInsts = 8_000_000
		rp.SampleCounts = []int{10, 20, 40, 77, 120}
		rp.Trials = 2
	}
	eopt.Sim = simOptions(spec)
	eopt.Workers = opt.Workers
	eopt.Events = opt.Events
	eopt.Obs = opt.Obs
	rep, err := experiments.Run(ctx, spec.Experiment, eopt, rp)
	if err != nil {
		return nil, err
	}
	return api.Encode(api.FromReport(rep)), nil
}

// decodePartial decodes a persisted sweep prefix strictly enough to catch a
// truncated or foreign file, without rejecting same-version field growth
// the way the api decoders do (the partial is private to one job dir).
func decodePartial(data []byte, p *sweepPartial) error {
	if err := json.Unmarshal(data, p); err != nil {
		return err
	}
	if p.V != api.Version {
		return errors.New("partial result has a different schema version")
	}
	return nil
}
