package server

import (
	"context"
	"sync"

	"mct/api"
	"mct/internal/obs"
)

// job is one submitted job's in-memory state: the authoritative JobStatus,
// the SSE subscriber set, and the cancellation handle while running.
// status.json on disk trails this by at most one transition/chunk.
type job struct {
	spec api.JobSpec

	mu     sync.Mutex
	status api.JobStatus
	// cancel aborts the running execution (client cancellation). cancelled
	// distinguishes that from a server shutdown, which must leave the job
	// resumable instead of failing it.
	cancel    context.CancelFunc
	cancelled bool
	// subs receive wire events; done is closed on reaching a terminal
	// state. Subscriber channels are buffered and lossy (droppedEvent
	// placeholder on overflow) so a slow SSE client can never stall the
	// runner.
	subs    map[int]chan api.Event
	nextSub int
	done    chan struct{}
}

func newJob(spec api.JobSpec, status api.JobStatus) *job {
	return &job{
		spec:   spec,
		status: status,
		subs:   make(map[int]chan api.Event),
		done:   make(chan struct{}),
	}
}

// snapshot returns a copy of the current status.
func (j *job) snapshot() api.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

func (j *job) terminal() bool {
	st := j.snapshot().State
	return st == api.StateDone || st == api.StateFailed
}

// subscribe registers an SSE listener and returns its channel plus an
// unsubscribe handle.
func (j *job) subscribe() (ch chan api.Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	id := j.nextSub
	j.nextSub++
	ch = make(chan api.Event, 64)
	j.subs[id] = ch
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		delete(j.subs, id)
	}
}

// publish fans an event out to every subscriber, dropping (not blocking) on
// full buffers: progress events are snapshots, so a lossy stream is still
// truthful — and the runner must never wait on a slow client.
func (j *job) publish(e api.Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, ch := range j.subs {
		//mctlint:ignore chanmisuse non-blocking fan-out by design: a full subscriber buffer drops the frame instead of stalling the runner
		select {
		case ch <- e: //mctlint:ignore chanmisuse receiver lives in the SSE handler (handleEvents), reached through the subscription map
		default:
		}
	}
}

// progress folds an execution observation into the status and republishes
// it to subscribers.
func (j *job) progress(e obs.Event) {
	j.mu.Lock()
	if e.Total > 0 {
		j.status.Done, j.status.Total = e.Done, e.Total
	}
	j.mu.Unlock()
	j.publish(api.FromEvent(e))
}

// statusEvent renders a status transition as a wire event (Kind "status").
func statusEvent(st api.JobStatus) api.Event {
	return api.Event{V: api.Version, Scope: "job", Item: st.ID, Kind: "status", Done: st.Done, Total: st.Total, Text: st.State}
}

// setRunning transitions queued → running and installs the cancel handle.
func (j *job) setRunning(cancel context.CancelFunc) api.JobStatus {
	j.mu.Lock()
	j.status.State = api.StateRunning
	j.cancel = cancel
	st := j.status
	j.mu.Unlock()
	j.publish(statusEvent(st))
	return st
}

// finish transitions to a terminal state, closes done, and wakes
// subscribers with a final status event.
func (j *job) finish(state, errText string, artifactBytes int) api.JobStatus {
	j.mu.Lock()
	j.status.State = state
	j.status.Error = errText
	j.status.ArtifactBytes = artifactBytes
	j.cancel = nil
	st := j.status
	j.mu.Unlock()
	j.publish(statusEvent(st))
	close(j.done)
	return st
}

// requestCancel marks the job client-cancelled and aborts the execution if
// running. It reports whether there was a running execution to abort.
func (j *job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cancelled = true
	if j.cancel != nil {
		j.cancel()
		return true
	}
	return false
}

func (j *job) wasCancelled() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancelled
}
