package server

import (
	"errors"
	"sync"
)

// Admission errors, mapped to HTTP 429 by the handlers.
var (
	// ErrQueueFull rejects a submission when the total queued backlog is at
	// capacity.
	ErrQueueFull = errors.New("server: job queue full")
	// ErrClientQuota rejects a submission when one client's queued backlog
	// is at its per-client cap, independent of total capacity — one greedy
	// client cannot occupy the whole queue.
	ErrClientQuota = errors.New("server: per-client queue quota exceeded")
)

// fairQueue is a bounded FIFO-per-client queue drained round-robin across
// clients: the next job comes from the next client in rotation that has
// anything queued, so a client submitting one job behind another client's
// fifty waits one job, not fifty. Admission is capped both in total and per
// client.
type fairQueue struct {
	mu        sync.Mutex
	capTotal  int
	capClient int
	queued    int
	byClient  map[string][]*job
	// rotation is the round-robin order; clients join on first enqueue and
	// leave when drained.
	rotation []string
	next     int
	// wake signals the runner loop that work may be available.
	wake chan struct{}
}

func newFairQueue(capTotal, capClient int) *fairQueue {
	return &fairQueue{
		capTotal:  capTotal,
		capClient: capClient,
		byClient:  make(map[string][]*job),
		wake:      make(chan struct{}, 1),
	}
}

// push enqueues j for its client, enforcing both caps.
func (q *fairQueue) push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	client := j.status.Client
	if q.queued >= q.capTotal {
		return ErrQueueFull
	}
	if len(q.byClient[client]) >= q.capClient {
		return ErrClientQuota
	}
	if len(q.byClient[client]) == 0 {
		q.rotation = append(q.rotation, client)
	}
	q.byClient[client] = append(q.byClient[client], j)
	q.queued++
	select {
	case q.wake <- struct{}{}:
	default:
	}
	return nil
}

// pop removes and returns the next job in client rotation, or nil when the
// queue is empty.
func (q *fairQueue) pop() *job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.queued == 0 {
		return nil
	}
	if q.next >= len(q.rotation) {
		q.next = 0
	}
	client := q.rotation[q.next]
	jobs := q.byClient[client]
	j := jobs[0]
	if len(jobs) == 1 {
		delete(q.byClient, client)
		q.rotation = append(q.rotation[:q.next], q.rotation[q.next+1:]...)
		// q.next now points at the following client; wrap handled above.
	} else {
		q.byClient[client] = jobs[1:]
		q.next++
	}
	q.queued--
	return j
}

// remove deletes a queued job by ID (client cancellation). It reports
// whether the job was found.
func (q *fairQueue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, client := range q.rotation {
		jobs := q.byClient[client]
		for i, j := range jobs {
			if j.status.ID != id {
				continue
			}
			jobs = append(jobs[:i], jobs[i+1:]...)
			if len(jobs) == 0 {
				delete(q.byClient, client)
				for k, c := range q.rotation {
					if c == client {
						q.rotation = append(q.rotation[:k], q.rotation[k+1:]...)
						if q.next > k {
							q.next--
						}
						break
					}
				}
			} else {
				q.byClient[client] = jobs
			}
			q.queued--
			return true
		}
	}
	return false
}

// depth returns the total queued backlog.
func (q *fairQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.queued
}
