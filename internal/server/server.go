package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"

	"mct/api"
	"mct/internal/obs"
)

// Options configures a Server.
type Options struct {
	// StateDir is the durable state directory (required).
	StateDir string
	// Workers bounds intra-job parallelism; 0 means GOMAXPROCS.
	Workers int
	// QueueCap / PerClientCap bound the queued backlog (0 = defaults).
	QueueCap     int
	PerClientCap int
	// ChunkInsts / SweepChunk set checkpoint granularity (0 = defaults).
	ChunkInsts uint64
	SweepChunk int
	// Obs receives the server's own counters and the engine family from
	// job fan-out, and backs /metrics. Nil creates a private registry.
	Obs *obs.Registry
}

const (
	defaultQueueCap     = 64
	defaultPerClientCap = 16
)

// serverObs is the server's own metric family.
type serverObs struct {
	submitted *obs.Counter
	rejected  *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	cancelled *obs.Counter
	resumed   *obs.Counter
	// persistErrors counts best-effort status/cleanup writes that failed;
	// the in-memory state stays authoritative and the next transition
	// rewrites the file, so a failure is observable rather than fatal.
	persistErrors *obs.Counter
}

func newServerObs(r *obs.Registry) serverObs {
	return serverObs{
		submitted: r.Counter("server.jobs_submitted"),
		rejected:  r.Counter("server.jobs_rejected"),
		completed: r.Counter("server.jobs_completed"),
		failed:    r.Counter("server.jobs_failed"),
		cancelled: r.Counter("server.jobs_cancelled"),
		resumed:   r.Counter("server.jobs_resumed"),

		persistErrors: r.Counter("server.persist_errors"),
	}
}

// Server is the mctd serving core: durable job store, fair queue, a single
// runner goroutine executing one job at a time (intra-job parallelism comes
// from the engine worker pool), and the HTTP handlers. Create with New —
// which also re-adopts unfinished jobs from a previous process — then serve
// Handler() and drive the queue with Run.
type Server struct {
	opt   Options
	reg   *obs.Registry
	stats serverObs
	store *store
	queue *fairQueue

	mu    sync.Mutex
	jobs  map[string]*job
	order []string
	seq   int
}

// New opens (or creates) the state directory and recovers it: finished jobs
// become poll/fetchable history, and unfinished ones — queued or running at
// the previous process's death — re-enter the queue with their Resumes
// count bumped, oldest first. Their checkpoints stay on disk, so Execute
// continues them rather than starting over.
func New(opt Options) (*Server, error) {
	if opt.StateDir == "" {
		return nil, errors.New("server: Options.StateDir is required")
	}
	if opt.QueueCap <= 0 {
		opt.QueueCap = defaultQueueCap
	}
	if opt.PerClientCap <= 0 {
		opt.PerClientCap = defaultPerClientCap
	}
	reg := opt.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	st, err := openStore(opt.StateDir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opt:   opt,
		reg:   reg,
		stats: newServerObs(reg),
		store: st,
		queue: newFairQueue(opt.QueueCap, opt.PerClientCap),
		jobs:  make(map[string]*job),
	}
	records, err := st.load()
	if err != nil {
		return nil, err
	}
	s.seq = nextID(records)
	for _, r := range records {
		j := newJob(r.spec, r.status)
		switch r.status.State {
		case api.StateDone, api.StateFailed:
			//mctlint:ignore chanmisuse one close per job: a terminal-at-load job is never queued, so finish (the other close site) cannot run on it
			close(j.done)
		case api.StateQueued, api.StateRunning:
			j.status.State = api.StateQueued
			if r.status.State == api.StateRunning {
				j.status.Resumes++
				s.stats.resumed.Add(1)
			}
			if err := st.writeStatus(j.status); err != nil {
				return nil, err
			}
			if err := s.queue.push(j); err != nil {
				// Recovery exceeding admission caps still must not drop
				// durable jobs.
				return nil, fmt.Errorf("server: recover %s: %w", r.status.ID, err)
			}
		default:
			return nil, fmt.Errorf("server: job %s has unknown state %q", r.status.ID, r.status.State)
		}
		s.jobs[r.status.ID] = j
		s.order = append(s.order, r.status.ID)
	}
	return s, nil
}

// Registry returns the registry backing /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Run drives the queue until ctx is cancelled: pop the next job in client
// rotation, execute it with checkpointing, persist the outcome. One job
// runs at a time. On ctx cancellation mid-job the job's state stays
// "running" on disk — exactly what New resumes from.
func (s *Server) Run(ctx context.Context) error {
	for {
		j := s.queue.pop()
		if j == nil {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-s.queue.wake:
				continue
			}
		}
		s.runJob(ctx, j)
		if err := ctx.Err(); err != nil {
			return err
		}
	}
}

func (s *Server) runJob(ctx context.Context, j *job) {
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	st := j.setRunning(cancel)
	if err := s.store.writeStatus(st); err != nil {
		s.failJob(j, err)
		return
	}
	lastPersisted := -1
	sink := func(e obs.Event) {
		j.progress(e)
		cur := j.snapshot()
		// Persist progress at chunk granularity; skip unchanged repeats.
		if cur.Done != lastPersisted {
			lastPersisted = cur.Done
			s.persistStatus(cur)
		}
	}
	artifact, err := Execute(jctx, j.spec, ExecOptions{
		Workers:     s.opt.Workers,
		Events:      sink,
		Obs:         s.reg,
		Checkpoints: &Checkpoints{Dir: s.store.jobDir(j.snapshot().ID)},
		ChunkInsts:  s.opt.ChunkInsts,
		SweepChunk:  s.opt.SweepChunk,
	})
	switch {
	case err == nil:
		id := j.snapshot().ID
		if werr := s.store.writeArtifact(id, artifact); werr != nil {
			s.failJob(j, werr)
			return
		}
		s.stats.completed.Add(1)
		// The artifact is durable; the resume state has served its purpose.
		ck := Checkpoints{Dir: s.store.jobDir(id)}
		for _, p := range []string{ck.machinePath(), ck.partialPath()} {
			if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
				s.stats.persistErrors.Add(1)
			}
		}
		s.persistStatus(j.finish(api.StateDone, "", len(artifact)))
	case errors.Is(err, context.Canceled) && ctx.Err() != nil && !j.wasCancelled():
		// Server shutdown, not failure: leave state "running" on disk so
		// the next process resumes from the last checkpoint.
	case errors.Is(err, context.Canceled) && j.wasCancelled():
		s.stats.cancelled.Add(1)
		s.persistStatus(j.finish(api.StateFailed, "cancelled by client", 0))
	default:
		s.failJob(j, err)
	}
}

func (s *Server) failJob(j *job, err error) {
	s.stats.failed.Add(1)
	s.persistStatus(j.finish(api.StateFailed, err.Error(), 0))
}

// persistStatus writes a status transition to disk, counting (not
// propagating) failures: the in-memory status is authoritative, every later
// transition rewrites the whole file, and a dying disk shows up on
// /metrics as server.persist_errors.
func (s *Server) persistStatus(st api.JobStatus) {
	if err := s.store.writeStatus(st); err != nil {
		s.stats.persistErrors.Add(1)
	}
}

// Submit validates, persists, and enqueues a job for client, returning its
// initial status. It is the programmatic form of POST /v1/jobs.
func (s *Server) Submit(client string, spec api.JobSpec) (api.JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return api.JobStatus{}, err
	}
	if client == "" {
		client = "anonymous"
	}
	s.mu.Lock()
	id := jobID(s.seq)
	s.seq++
	s.mu.Unlock()
	st := api.JobStatus{V: api.Version, ID: id, Kind: spec.Kind, Client: client, State: api.StateQueued}
	j := newJob(spec, st)
	// Persist before enqueueing: the runner may pop the job the instant it
	// is queued, and must find its directory on disk.
	if err := s.store.createJob(id, spec); err != nil {
		return api.JobStatus{}, err
	}
	if err := s.store.writeStatus(st); err != nil {
		return api.JobStatus{}, err
	}
	if err := s.queue.push(j); err != nil {
		s.stats.rejected.Add(1)
		if rerr := os.RemoveAll(s.store.jobDir(id)); rerr != nil {
			s.stats.persistErrors.Add(1)
		}
		return api.JobStatus{}, err
	}
	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.mu.Unlock()
	s.stats.submitted.Add(1)
	return st, nil
}

func (s *Server) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// Handler returns the daemon's HTTP surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/artifact", s.handleArtifact)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, "{\"ok\":true}\n") //mctlint:ignore uncheckederr a failed response write means the client is gone; nothing to do
	})
	return mux
}

// httpError writes a JSON error document.
func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{%q: %q}\n", "error", err.Error()) //mctlint:ignore uncheckederr a failed response write means the client is gone; nothing to do
}

func writeDoc(w http.ResponseWriter, code int, doc []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(doc) //mctlint:ignore uncheckederr a failed response write means the client is gone; nothing to do
}

// clientKey identifies the submitting client for fairness: the X-MCT-Client
// header when set, else the remote host.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-MCT-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

const maxSpecBytes = 1 << 20

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxSpecBytes {
		httpError(w, http.StatusRequestEntityTooLarge, errors.New("job spec exceeds 1 MiB"))
		return
	}
	spec, err := api.DecodeJobSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	st, err := s.Submit(clientKey(r), spec)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClientQuota):
		httpError(w, http.StatusTooManyRequests, err)
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
	default:
		writeDoc(w, http.StatusCreated, api.Encode(st))
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	list := api.JobList{V: api.Version}
	for _, id := range ids {
		if j := s.job(id); j != nil {
			list.Jobs = append(list.Jobs, j.snapshot())
		}
	}
	writeDoc(w, http.StatusOK, api.Encode(list))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeDoc(w, http.StatusOK, api.Encode(j.snapshot()))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.job(id)
	if j == nil {
		httpError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	if j.terminal() {
		httpError(w, http.StatusConflict, errors.New("job already finished"))
		return
	}
	if s.queue.remove(id) {
		s.stats.cancelled.Add(1)
		s.persistStatus(j.finish(api.StateFailed, "cancelled by client", 0))
	} else {
		j.requestCancel()
	}
	writeDoc(w, http.StatusOK, api.Encode(j.snapshot()))
}

func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	st := j.snapshot()
	switch st.State {
	case api.StateDone:
		artifact, err := s.store.readArtifact(st.ID)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeDoc(w, http.StatusOK, artifact)
	case api.StateFailed:
		httpError(w, http.StatusConflict, fmt.Errorf("job failed: %s", st.Error))
	default:
		httpError(w, http.StatusConflict, fmt.Errorf("job is %s; artifact not ready", st.State))
	}
}

// handleEvents streams the job's progress as server-sent events: one
// "data:" frame per api.Event document, ending with the terminal status
// frame. A subscriber joining a finished job gets exactly that final frame.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	writeFrame := func(e api.Event) {
		// api.Encode is indented; SSE data frames must be single-line.
		data, err := json.Marshal(e)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "data: %s\n\n", data) //mctlint:ignore uncheckederr a failed stream write means the client is gone; the next select exits on request context
		flusher.Flush()
	}

	ch, unsub := j.subscribe()
	defer unsub()
	// A job that finished before we subscribed publishes nothing more;
	// deliver the terminal frame ourselves.
	if j.terminal() {
		writeFrame(statusEvent(j.snapshot()))
		return
	}
	writeFrame(statusEvent(j.snapshot()))
	for {
		select {
		case e := <-ch:
			writeFrame(e)
			if e.Kind == "status" && (e.Text == api.StateDone || e.Text == api.StateFailed) {
				return
			}
		case <-j.done:
			// Drain anything published before done closed, then finish
			// with the terminal status.
			for {
				select {
				case e := <-ch:
					writeFrame(e)
				default:
					writeFrame(statusEvent(j.snapshot()))
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleMetrics serves the obs registry — stable families plus volatile
// runtime gauges — as one JSON document via the registry's expvar bridge.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	v := s.reg.ExpvarFunc()()
	data, err := json.Marshal(v)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n')) //mctlint:ignore uncheckederr a failed response write means the client is gone; nothing to do
}
