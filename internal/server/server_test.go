package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"mct/api"
	"mct/internal/config"
)

func evalSpec(insts uint64) api.JobSpec {
	cfg := api.FromConfig(config.StaticBaseline())
	return api.JobSpec{
		V:              api.Version,
		Kind:           api.KindEvaluate,
		Benchmark:      "stream",
		Config:         &cfg,
		WarmupAccesses: 5000,
		Insts:          insts,
	}
}

func sweepSpec() api.JobSpec {
	return api.JobSpec{
		V:         api.Version,
		Kind:      api.KindSweep,
		Benchmark: "lbm",
		Accesses:  1500,
		Stride:    200,
	}
}

func queuedStatus(id, client string) api.JobStatus {
	return api.JobStatus{V: api.Version, ID: id, Client: client, State: api.StateQueued}
}

// waitDone blocks until the job reaches a terminal state, failing the test on
// timeout rather than hanging it.
func waitDone(t *testing.T, j *job) {
	t.Helper()
	select {
	case <-j.done:
	case <-time.After(2 * time.Minute):
		t.Fatal("timed out waiting for job to finish")
	}
}

// --- queue -----------------------------------------------------------------

// TestFairQueueRotation: a client submitting one job behind another client's
// backlog waits one job, not the whole backlog.
func TestFairQueueRotation(t *testing.T) {
	q := newFairQueue(10, 5)
	a1 := newJob(api.JobSpec{}, queuedStatus("a1", "alice"))
	a2 := newJob(api.JobSpec{}, queuedStatus("a2", "alice"))
	a3 := newJob(api.JobSpec{}, queuedStatus("a3", "alice"))
	b1 := newJob(api.JobSpec{}, queuedStatus("b1", "bob"))
	for _, j := range []*job{a1, a2, a3, b1} {
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	for j := q.pop(); j != nil; j = q.pop() {
		order = append(order, j.status.ID)
	}
	if got, want := strings.Join(order, ","), "a1,b1,a2,a3"; got != want {
		t.Fatalf("pop order %s, want %s", got, want)
	}
	if q.depth() != 0 {
		t.Fatalf("queue not drained: depth %d", q.depth())
	}
}

func TestFairQueueCaps(t *testing.T) {
	q := newFairQueue(3, 2)
	if err := q.push(newJob(api.JobSpec{}, queuedStatus("a1", "alice"))); err != nil {
		t.Fatal(err)
	}
	if err := q.push(newJob(api.JobSpec{}, queuedStatus("a2", "alice"))); err != nil {
		t.Fatal(err)
	}
	if err := q.push(newJob(api.JobSpec{}, queuedStatus("a3", "alice"))); !errors.Is(err, ErrClientQuota) {
		t.Fatalf("third job for one client: got %v, want ErrClientQuota", err)
	}
	if err := q.push(newJob(api.JobSpec{}, queuedStatus("b1", "bob"))); err != nil {
		t.Fatal(err)
	}
	if err := q.push(newJob(api.JobSpec{}, queuedStatus("c1", "carol"))); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over total capacity: got %v, want ErrQueueFull", err)
	}
}

func TestFairQueueRemove(t *testing.T) {
	q := newFairQueue(10, 5)
	for _, id := range []string{"a1", "a2"} {
		if err := q.push(newJob(api.JobSpec{}, queuedStatus(id, "alice"))); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.push(newJob(api.JobSpec{}, queuedStatus("b1", "bob"))); err != nil {
		t.Fatal(err)
	}
	if !q.remove("a1") {
		t.Fatal("remove a1 reported not found")
	}
	if q.remove("a1") {
		t.Fatal("removed a1 twice")
	}
	var order []string
	for j := q.pop(); j != nil; j = q.pop() {
		order = append(order, j.status.ID)
	}
	if got, want := strings.Join(order, ","), "a2,b1"; got != want {
		t.Fatalf("pop order after remove %s, want %s", got, want)
	}
}

// --- Execute: resume determinism ------------------------------------------

// interruptAfter returns an onChunk hook that cancels the context after n
// persisted chunks — a deterministic stand-in for kill -9 at a chunk boundary.
func interruptAfter(n int, cancel context.CancelFunc) func(done, total int) {
	calls := 0
	return func(done, total int) {
		calls++
		if calls == n {
			cancel()
		}
	}
}

// TestExecuteEvaluateResume interrupts a checkpointed evaluate job after its
// first chunk and reruns it in the same directory: the resumed run must finish
// from the checkpoint and produce an artifact byte-identical to an
// uninterrupted run's.
func TestExecuteEvaluateResume(t *testing.T) {
	spec := evalSpec(200_000)
	want, err := Execute(context.Background(), spec, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}

	ck := &Checkpoints{Dir: t.TempDir()}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = Execute(ctx, spec, ExecOptions{
		Checkpoints: ck,
		ChunkInsts:  40_000,
		onChunk:     interruptAfter(1, cancel),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted Execute: got %v, want context.Canceled", err)
	}
	if _, err := os.Stat(ck.machinePath()); err != nil {
		t.Fatalf("no machine checkpoint after interrupt: %v", err)
	}

	got, err := Execute(context.Background(), spec, ExecOptions{Checkpoints: ck, ChunkInsts: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed artifact differs from uninterrupted run:\n--- resumed ---\n%s--- straight ---\n%s", got, want)
	}
}

// TestExecuteSweepResume does the same for a sweep: interrupt after the first
// chunk of configurations, resume with a different worker count, and require
// the artifact byte-identical to an uninterrupted single-worker run.
func TestExecuteSweepResume(t *testing.T) {
	spec := sweepSpec()
	want, err := Execute(context.Background(), spec, ExecOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	ck := &Checkpoints{Dir: t.TempDir()}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = Execute(ctx, spec, ExecOptions{
		Workers:     1,
		Checkpoints: ck,
		SweepChunk:  4,
		onChunk:     interruptAfter(1, cancel),
	})
	if err == nil {
		t.Fatal("interrupted Execute returned no error")
	}
	if _, err := os.Stat(ck.partialPath()); err != nil {
		t.Fatalf("no partial result after interrupt: %v", err)
	}

	got, err := Execute(context.Background(), spec, ExecOptions{Workers: 4, Checkpoints: ck, SweepChunk: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed sweep artifact differs from uninterrupted run")
	}
	res, err := api.DecodeSweepResult(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Metrics) != len(res.Indices) || len(res.Metrics) == 0 {
		t.Fatalf("sweep artifact shape: %d metrics for %d indices", len(res.Metrics), len(res.Indices))
	}
}

// --- Server: lifecycle over HTTP ------------------------------------------

// startRunner drives srv.Run in the background and returns a stop function
// that cancels it and waits for exit.
func startRunner(t *testing.T, srv *Server) (stop func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Run(ctx) }() //mctlint:ignore goleak stop() cancels the context and drains the exit error
	return func() {
		cancel()
		if err := <-done; err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("runner exit: %v", err)
		}
	}
}

func TestServerHTTPLifecycle(t *testing.T) {
	srv, err := New(Options{StateDir: t.TempDir(), ChunkInsts: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	stop := startRunner(t, srv)
	defer stop()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	spec := evalSpec(100_000)
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(api.Encode(spec)))
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	st, err := api.DecodeJobStatus(body)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv.job(st.ID))

	resp, err = http.Get(hs.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	st, err = api.DecodeJobStatus(readAll(t, resp))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != api.StateDone {
		t.Fatalf("job state %q (error %q), want done", st.State, st.Error)
	}

	resp, err = http.Get(hs.URL + "/v1/jobs/" + st.ID + "/artifact")
	if err != nil {
		t.Fatal(err)
	}
	artifact := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("artifact: status %d: %s", resp.StatusCode, artifact)
	}
	want, err := Execute(context.Background(), spec, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(artifact, want) {
		t.Fatal("daemon artifact differs from direct Execute for the same spec")
	}
	if st.ArtifactBytes != len(artifact) {
		t.Fatalf("status reports %d artifact bytes, artifact has %d", st.ArtifactBytes, len(artifact))
	}

	resp, err = http.Get(hs.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	list, err := api.DecodeJobList(readAll(t, resp))
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("job list %+v, want the one submitted job", list.Jobs)
	}

	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if m := string(readAll(t, resp)); !strings.Contains(m, "server.jobs_completed") {
		t.Fatalf("/metrics missing server counters: %s", m)
	}

	resp, err = http.Get(hs.URL + "/v1/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close() //mctlint:ignore uncheckederr test helper; the read error is the one worth reporting
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServerAdmission: with no runner draining the queue, submissions beyond
// the caps are rejected and mapped to 429.
func TestServerAdmission(t *testing.T) {
	srv, err := New(Options{StateDir: t.TempDir(), QueueCap: 2, PerClientCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit("alice", evalSpec(1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Submit("alice", evalSpec(1000)); !errors.Is(err, ErrClientQuota) {
		t.Fatalf("second job for alice: got %v, want ErrClientQuota", err)
	}
	if _, err := srv.Submit("bob", evalSpec(1000)); err != nil {
		t.Fatal(err)
	}

	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", bytes.NewReader(api.Encode(evalSpec(1000))))
	if err != nil {
		t.Fatal(err)
	}
	if body := readAll(t, resp); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: status %d (%s), want 429", resp.StatusCode, body)
	}

	// A rejected submission must leave no job directory behind. (The total
	// cap is also at capacity here, and it is checked first.)
	if _, err := srv.Submit("alice", evalSpec(1000)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	records, err := srv.store.load()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("%d job dirs on disk, want 2 (rejected submissions must clean up)", len(records))
	}
}

// TestServerBadRequests: malformed, version-skewed, and invalid specs all
// fail at the boundary with 400.
func TestServerBadRequests(t *testing.T) {
	srv, err := New(Options{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	for name, body := range map[string]string{
		"not json":     "{",
		"version skew": `{"v": 2, "kind": "sweep", "benchmark": "lbm", "accesses": 10}`,
		"missing kind": `{"v": 1}`,
	} {
		resp, err := http.Post(hs.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if b := readAll(t, resp); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%s), want 400", name, resp.StatusCode, b)
		}
	}
}

// TestServerCancelQueued: cancelling a queued job fails it without running it.
func TestServerCancelQueued(t *testing.T) {
	srv, err := New(Options{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv.Submit("alice", evalSpec(1000))
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	req, err := http.NewRequest(http.MethodDelete, hs.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := api.DecodeJobStatus(readAll(t, resp))
	if err != nil {
		t.Fatal(err)
	}
	if got.State != api.StateFailed || !strings.Contains(got.Error, "cancelled") {
		t.Fatalf("cancelled job status %+v, want failed/cancelled", got)
	}
	if srv.queue.depth() != 0 {
		t.Fatal("cancelled job still queued")
	}

	// Cancelling a finished job conflicts.
	resp, err = http.DefaultClient.Do(req.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if readAll(t, resp); resp.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel: status %d, want 409", resp.StatusCode)
	}
}

// TestServerRestartResume is the kill -9 acceptance check at the server
// layer: a job interrupted mid-run (state "running" on disk, checkpoint
// present) must be re-adopted by a new Server, resume from the checkpoint,
// and finish with an artifact byte-identical to an uninterrupted run — with
// its Resumes count recording the restart.
func TestServerRestartResume(t *testing.T) {
	spec := evalSpec(200_000)
	want, err := Execute(context.Background(), spec, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Fabricate the post-crash state deterministically: a job directory whose
	// status says "running" and whose checkpoint covers exactly one chunk.
	stateDir := t.TempDir()
	st, err := openStore(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	const id = "j000000"
	if err := st.createJob(id, spec); err != nil {
		t.Fatal(err)
	}
	status := api.JobStatus{V: api.Version, ID: id, Kind: spec.Kind, Client: "alice", State: api.StateRunning}
	if err := st.writeStatus(status); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = Execute(ctx, spec, ExecOptions{
		Checkpoints: &Checkpoints{Dir: st.jobDir(id)},
		ChunkInsts:  40_000,
		onChunk:     interruptAfter(1, cancel),
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupt: got %v, want context.Canceled", err)
	}

	srv, err := New(Options{StateDir: stateDir, ChunkInsts: 40_000})
	if err != nil {
		t.Fatal(err)
	}
	j := srv.job(id)
	if j == nil {
		t.Fatal("restarted server does not know the job")
	}
	if got := j.snapshot(); got.State != api.StateQueued || got.Resumes != 1 {
		t.Fatalf("re-adopted job is %s with %d resumes, want queued with 1", got.State, got.Resumes)
	}

	stop := startRunner(t, srv)
	defer stop()
	waitDone(t, j)

	final := j.snapshot()
	if final.State != api.StateDone {
		t.Fatalf("resumed job state %q (error %q), want done", final.State, final.Error)
	}
	if final.Resumes != 1 {
		t.Fatalf("resumed job records %d resumes, want 1", final.Resumes)
	}
	got, err := srv.store.readArtifact(id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("artifact after restart differs from uninterrupted run")
	}
	// The resume state must be cleaned up once the artifact is durable.
	if _, err := os.Stat((&Checkpoints{Dir: st.jobDir(id)}).machinePath()); !os.IsNotExist(err) {
		t.Fatalf("machine checkpoint not cleaned up after completion: %v", err)
	}
}

// TestServerRestartKeepsHistory: finished jobs stay poll- and fetchable
// across restarts.
func TestServerRestartKeepsHistory(t *testing.T) {
	stateDir := t.TempDir()
	srv, err := New(Options{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv.Submit("alice", evalSpec(20_000))
	if err != nil {
		t.Fatal(err)
	}
	stop := startRunner(t, srv)
	waitDone(t, srv.job(st.ID))
	stop()
	artifact, err := srv.store.readArtifact(st.ID)
	if err != nil {
		t.Fatal(err)
	}

	srv2, err := New(Options{StateDir: stateDir})
	if err != nil {
		t.Fatal(err)
	}
	j := srv2.job(st.ID)
	if j == nil || j.snapshot().State != api.StateDone {
		t.Fatalf("restarted server lost the finished job")
	}
	again, err := srv2.store.readArtifact(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(artifact, again) {
		t.Fatal("artifact changed across restart")
	}
	// And a fresh submission must not collide with the recovered ID.
	st2, err := srv2.Submit("alice", evalSpec(1000))
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID == st.ID {
		t.Fatalf("ID %s reused across restart", st.ID)
	}
}

// TestServerSSE: the events stream always ends with the terminal status
// frame, whether the subscriber joins before, during, or after the run.
func TestServerSSE(t *testing.T) {
	srv, err := New(Options{StateDir: t.TempDir(), ChunkInsts: 25_000})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	st, err := srv.Submit("alice", evalSpec(100_000))
	if err != nil {
		t.Fatal(err)
	}

	// Subscribe while the job is still queued, then start the runner.
	resp, err := http.Get(hs.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //mctlint:ignore uncheckederr test stream; the scan error is the one worth reporting
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	stop := startRunner(t, srv)
	defer stop()

	var last api.Event
	frames := 0
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		e, err := api.DecodeEvent([]byte(strings.TrimPrefix(line, "data: ")))
		if err != nil {
			t.Fatalf("bad SSE frame %q: %v", line, err)
		}
		frames++
		last = e
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if frames == 0 {
		t.Fatal("no SSE frames received")
	}
	if last.Kind != "status" || last.Text != api.StateDone {
		t.Fatalf("last frame %+v, want terminal done status", last)
	}

	// A subscriber joining after completion gets exactly the terminal frame.
	resp2, err := http.Get(hs.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	data := readAll(t, resp2)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1 || !strings.HasPrefix(lines[0], "data: ") {
		t.Fatalf("late subscriber got %q, want one terminal frame", data)
	}
	e, err := api.DecodeEvent([]byte(strings.TrimPrefix(lines[0], "data: ")))
	if err != nil {
		t.Fatal(err)
	}
	if e.Kind != "status" || e.Text != api.StateDone {
		t.Fatalf("late subscriber frame %+v, want terminal done status", e)
	}
}

// TestCLIDaemonParity: Execute without checkpoints (the mct -job path) and a
// daemon job produce byte-identical artifacts for the same sweep spec.
func TestCLIDaemonParity(t *testing.T) {
	spec := sweepSpec()
	cli, err := Execute(context.Background(), spec, ExecOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	srv, err := New(Options{StateDir: t.TempDir(), Workers: 3, SweepChunk: 4})
	if err != nil {
		t.Fatal(err)
	}
	st, err := srv.Submit("ci", spec)
	if err != nil {
		t.Fatal(err)
	}
	stop := startRunner(t, srv)
	defer stop()
	waitDone(t, srv.job(st.ID))
	daemon, err := srv.store.readArtifact(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cli, daemon) {
		t.Fatal("daemon artifact differs from CLI Execute for the same spec")
	}
}
